// Measured structural properties of constructed networks -- the raw material
// for regenerating Figures 1 and 2 of the paper from real graphs rather than
// from the closed-form claims (the claims are cross-checked in tests).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "graph/graph.hpp"

namespace hbnet {

/// Everything a Figure-1/Figure-2 row needs about one network instance.
struct TopologySummary {
  std::string name;
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  bool regular = false;
  std::optional<std::uint32_t> diameter;       // exact, when affordable
  std::optional<std::uint32_t> connectivity;   // exact or sampled lower bound
  bool connectivity_exact = false;
};

struct SummaryOptions {
  /// Compute the exact diameter when nodes <= this (all-sources BFS).
  std::uint64_t diameter_node_cap = 20000;
  /// The graph is vertex transitive: one BFS suffices for the diameter.
  bool vertex_transitive = false;
  /// Compute exact vertex connectivity when nodes <= this.
  std::uint64_t connectivity_node_cap = 600;
  /// Otherwise estimate connectivity from this many sampled pairs (0 = skip).
  std::uint32_t connectivity_samples = 32;
  std::uint64_t seed = 7;
};

/// Measures `g` under the given budget caps.
[[nodiscard]] TopologySummary summarize(const std::string& name,
                                        const Graph& g,
                                        const SummaryOptions& options = {});

}  // namespace hbnet
