// Channel-dependency-graph (CDG) deadlock analysis of routing algorithms
// (Dally & Seitz). A routing function is deadlock free under wormhole /
// hold-and-wait buffering iff its channel dependency graph -- vertices =
// directed channels (u,v), arcs = "a route holds channel c1 while
// requesting c2" -- is acyclic.
//
// We build the CDG of a source-routing function by replaying routes between
// vertex pairs and recording consecutive channel pairs, then run a DFS
// cycle check. Two extraction modes: exhaustive over all ordered pairs
// (small instances) or a sampled subset. Classic results reproduced in
// tests: greedy e-cube routing on the hypercube is deadlock free; routing
// around the wrapped butterfly's level cycle is not (wrap dependencies
// close cycles) -- the standard argument for virtual channels.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace hbnet {

/// A routing function for CDG extraction: full vertex path from s to t.
using RouteFn =
    std::function<std::vector<std::uint32_t>(std::uint32_t, std::uint32_t)>;

/// Result of the deadlock analysis.
struct CdgAnalysis {
  std::uint64_t channels = 0;      // directed channels seen in some route
  std::uint64_t dependencies = 0;  // distinct consecutive channel pairs
  bool acyclic = false;            // true => deadlock free (Dally-Seitz)
  /// A witness dependency cycle as channel endpoints (u0,v0),(u1,v1),...
  /// when cyclic; empty when acyclic.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> witness_cycle;
};

/// Builds and analyzes the CDG of `route` over all ordered pairs of
/// vertices in [0, num_nodes) (pass sample_stride > 1 to thin the pair set:
/// pairs (s, t) with (s*num_nodes+t) % stride == 0).
[[nodiscard]] CdgAnalysis analyze_routing_deadlock(std::uint32_t num_nodes,
                                                   const RouteFn& route,
                                                   std::uint32_t sample_stride = 1);

}  // namespace hbnet
