#include "analysis/properties.hpp"

#include <algorithm>
#include <random>

#include "graph/bfs.hpp"
#include "graph/connectivity.hpp"
#include "graph/parallel_bfs.hpp"

namespace hbnet {

TopologySummary summarize(const std::string& name, const Graph& g,
                          const SummaryOptions& options) {
  TopologySummary s;
  s.name = name;
  s.nodes = g.num_nodes();
  s.edges = g.num_edges();
  auto [lo, hi] = g.degree_range();
  s.min_degree = lo;
  s.max_degree = hi;
  s.regular = (lo == hi);

  if (options.vertex_transitive) {
    s.diameter = diameter_vertex_transitive(g);
  } else if (s.nodes <= options.diameter_node_cap) {
    s.diameter = parallel_diameter(g);  // exact; thread-parallel sweep
  }

  if (s.nodes >= 2) {
    if (s.nodes <= options.connectivity_node_cap) {
      s.connectivity = vertex_connectivity(g);
      s.connectivity_exact = true;
    } else if (options.connectivity_samples > 0) {
      // Sampled upper-bound refinement: kappa <= min degree always; check
      // random pairs and remember the smallest local connectivity seen.
      std::mt19937_64 rng(options.seed);
      std::uniform_int_distribution<NodeId> pick(
          0, static_cast<NodeId>(s.nodes - 1));
      std::uint32_t best = s.min_degree;
      for (std::uint32_t i = 0; i < options.connectivity_samples; ++i) {
        NodeId a = pick(rng), b = pick(rng);
        while (b == a) b = pick(rng);
        best = std::min(best, max_disjoint_paths(g, a, b));
      }
      s.connectivity = best;
      s.connectivity_exact = false;
    }
  }
  return s;
}

}  // namespace hbnet
