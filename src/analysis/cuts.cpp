#include "analysis/cuts.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace hbnet {

std::uint64_t cut_width(const Graph& g, const std::vector<char>& side) {
  if (side.size() != g.num_nodes()) {
    throw std::invalid_argument("cut_width: side mask size mismatch");
  }
  std::uint64_t crossing = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v && side[u] != side[v]) ++crossing;
    }
  }
  return crossing;
}

std::vector<NamedCut> hb_dimension_cuts(const HyperButterfly& hb) {
  if (hb.num_nodes() > (HbIndex{1} << 31)) {
    throw std::length_error("hb_dimension_cuts: instance too large");
  }
  Graph g = hb.to_graph();
  const NodeId n = g.num_nodes();
  std::vector<NamedCut> cuts;
  auto eval = [&](const std::string& name, auto&& pred) {
    std::vector<char> side(n);
    NodeId ones = 0;
    for (NodeId v = 0; v < n; ++v) {
      side[v] = pred(hb.node_at(v)) ? 1 : 0;
      ones += side[v];
    }
    NamedCut c;
    c.name = name;
    c.width = cut_width(g, side);
    c.balanced = (2 * static_cast<std::uint64_t>(ones) + 1 >= n) &&
                 (2 * static_cast<std::uint64_t>(ones) <= n + 1);
    cuts.push_back(std::move(c));
  };
  for (unsigned i = 0; i < hb.cube_dimension(); ++i) {
    eval("cube bit " + std::to_string(i),
         [i](const HbNode& v) { return (v.cube >> i) & 1u; });
  }
  for (unsigned j = 0; j < hb.butterfly_dimension(); ++j) {
    eval("butterfly word bit " + std::to_string(j),
         [j](const HbNode& v) { return (v.bfly.word >> j) & 1u; });
  }
  const unsigned half = hb.butterfly_dimension() / 2;
  eval("level half", [half](const HbNode& v) { return v.bfly.level < half; });
  return cuts;
}

std::uint64_t sampled_bisection_upper_bound(const Graph& g, unsigned restarts,
                                            std::uint64_t seed,
                                            unsigned max_passes) {
  const NodeId n = g.num_nodes();
  if (n < 2) return 0;
  std::mt19937_64 rng(seed);
  std::uint64_t best = ~std::uint64_t{0};
  for (unsigned r = 0; r < restarts; ++r) {
    // Random balanced start.
    std::vector<NodeId> perm(n);
    for (NodeId v = 0; v < n; ++v) perm[v] = v;
    std::shuffle(perm.begin(), perm.end(), rng);
    std::vector<char> side(n, 0);
    for (NodeId i = 0; i < n / 2; ++i) side[perm[i]] = 1;

    // Gain of flipping v = (same-side neighbors) - (cross neighbors);
    // descend by swapping the best positive-gain pair, a lightweight
    // Kernighan-Lin.
    auto gain = [&](NodeId v) {
      std::int64_t same = 0, cross = 0;
      for (NodeId w : g.neighbors(v)) {
        (side[w] == side[v] ? same : cross) += 1;
      }
      return same - cross;
    };
    for (unsigned pass = 0; pass < max_passes; ++pass) {
      // Pick the best candidate from each side and swap if jointly
      // improving.
      NodeId best0 = kInvalidNode, best1 = kInvalidNode;
      std::int64_t g0 = 0, g1 = 0;
      for (NodeId v = 0; v < n; ++v) {
        std::int64_t gv = gain(v);
        if (side[v] == 0 && (best0 == kInvalidNode || gv > g0)) {
          best0 = v;
          g0 = gv;
        }
        if (side[v] == 1 && (best1 == kInvalidNode || gv > g1)) {
          best1 = v;
          g1 = gv;
        }
      }
      if (best0 == kInvalidNode || best1 == kInvalidNode) break;
      std::int64_t joint = g0 + g1 - 2 * (g.has_edge(best0, best1) ? 1 : 0);
      if (joint <= 0) break;
      side[best0] = 1;
      side[best1] = 0;
    }
    best = std::min(best, cut_width(g, side));
  }
  return best;
}

std::uint64_t thompson_area_lower_bound(std::uint64_t bisection) {
  return bisection * bisection;
}

}  // namespace hbnet
