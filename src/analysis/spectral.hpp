// Spectral analysis of regular networks: the second-largest eigenvalue of
// the lazy random walk and the spectral gap it implies. The gap controls
// mixing time and expansion -- a quantitative companion to the bisection
// bounds (analysis/cuts.hpp) when judging an interconnection topology's
// communication quality.
//
// Method: power iteration on the lazy walk matrix P = (I + A/d) / 2
// (eigenvalues in [0,1], so the second-largest in absolute value is the
// second-largest, full stop) with deflation of the known dominant
// eigenvector (the all-ones vector, exact for regular graphs). Anchored in
// tests against closed forms: cycles (lambda_2(A)/d = cos(2*pi/n)) and
// hypercubes (lambda_2(A)/d = 1 - 2/m).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace hbnet {

struct SpectralEstimate {
  double lambda2 = 0.0;  // second eigenvalue of A/d (normalized adjacency)
  double gap = 0.0;      // 1 - lambda2
  unsigned iterations = 0;
  bool converged = false;
};

/// Estimates lambda_2 of the normalized adjacency A/d of a *regular*
/// connected graph by deflated power iteration on the lazy walk.
/// Throws for irregular graphs (the deflation would be wrong).
[[nodiscard]] SpectralEstimate spectral_gap_regular(const Graph& g,
                                                    unsigned max_iters = 2000,
                                                    double tolerance = 1e-9,
                                                    std::uint64_t seed = 1);

}  // namespace hbnet
