#include "analysis/spectral.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

namespace hbnet {

SpectralEstimate spectral_gap_regular(const Graph& g, unsigned max_iters,
                                      double tolerance, std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("spectral_gap_regular: need n >= 2");
  auto [lo, hi] = g.degree_range();
  if (lo != hi || lo == 0) {
    throw std::invalid_argument("spectral_gap_regular: graph must be regular");
  }
  const double d = static_cast<double>(lo);

  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<double> x(n), y(n);
  for (NodeId v = 0; v < n; ++v) x[v] = gauss(rng);

  auto deflate = [&](std::vector<double>& vec) {
    // Remove the all-ones component (dominant eigenvector of a regular,
    // connected graph).
    double mean = 0;
    for (double t : vec) mean += t;
    mean /= static_cast<double>(n);
    for (double& t : vec) t -= mean;
  };
  auto norm = [&](const std::vector<double>& vec) {
    double s = 0;
    for (double t : vec) s += t * t;
    return std::sqrt(s);
  };

  deflate(x);
  double nx = norm(x);
  if (nx == 0) throw std::logic_error("spectral_gap_regular: degenerate start");
  for (double& t : x) t /= nx;

  SpectralEstimate est;
  double prev = 2.0;
  for (unsigned it = 0; it < max_iters; ++it) {
    // y = P x with P = (I + A/d)/2.
    for (NodeId v = 0; v < n; ++v) {
      double acc = 0;
      for (NodeId w : g.neighbors(v)) acc += x[w];
      y[v] = 0.5 * (x[v] + acc / d);
    }
    deflate(y);  // fight numerical drift back into the ones-direction
    double ny = norm(y);
    est.iterations = it + 1;
    if (ny == 0) {
      // x was (numerically) orthogonal to everything with nonzero lazy
      // eigenvalue; gap is maximal.
      est.lambda2 = -1.0;
      est.gap = 2.0;
      est.converged = true;
      break;
    }
    double lazy = ny;  // Rayleigh-style estimate |P x| for unit x
    for (NodeId v = 0; v < n; ++v) x[v] = y[v] / ny;
    if (std::abs(lazy - prev) < tolerance) {
      est.lambda2 = 2.0 * lazy - 1.0;  // invert the lazy transform
      est.gap = 1.0 - est.lambda2;
      est.converged = true;
      break;
    }
    prev = lazy;
    est.lambda2 = 2.0 * lazy - 1.0;
    est.gap = 1.0 - est.lambda2;
  }
  return est;
}

}  // namespace hbnet
