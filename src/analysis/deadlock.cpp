#include "analysis/deadlock.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace hbnet {
namespace {

using Channel = std::uint64_t;  // (u << 32) | v

Channel make_channel(std::uint32_t u, std::uint32_t v) {
  return (static_cast<Channel>(u) << 32) | v;
}

}  // namespace

CdgAnalysis analyze_routing_deadlock(std::uint32_t num_nodes,
                                     const RouteFn& route,
                                     std::uint32_t sample_stride) {
  if (sample_stride == 0) sample_stride = 1;
  // Dense channel ids assigned on first sight.
  std::unordered_map<Channel, std::uint32_t> channel_id;
  std::vector<Channel> channel_of;
  std::vector<std::unordered_set<std::uint32_t>> deps;  // adjacency (dedup)
  auto id_of = [&](Channel c) {
    auto [it, fresh] = channel_id.emplace(
        c, static_cast<std::uint32_t>(channel_of.size()));
    if (fresh) {
      channel_of.push_back(c);
      deps.emplace_back();
    }
    return it->second;
  };

  CdgAnalysis result;
  std::uint64_t pair_index = 0;
  for (std::uint32_t s = 0; s < num_nodes; ++s) {
    for (std::uint32_t t = 0; t < num_nodes; ++t, ++pair_index) {
      if (s == t || pair_index % sample_stride != 0) continue;
      std::vector<std::uint32_t> path = route(s, t);
      for (std::size_t i = 2; i < path.size(); ++i) {
        std::uint32_t c1 = id_of(make_channel(path[i - 2], path[i - 1]));
        std::uint32_t c2 = id_of(make_channel(path[i - 1], path[i]));
        if (deps[c1].insert(c2).second) ++result.dependencies;
      }
      if (path.size() >= 2) {
        id_of(make_channel(path[path.size() - 2], path.back()));
      }
    }
  }
  result.channels = channel_of.size();

  // Iterative DFS cycle detection with color marking; reconstructs one
  // witness cycle when found.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(channel_of.size(), kWhite);
  std::vector<std::uint32_t> parent(channel_of.size(), ~0u);
  result.acyclic = true;
  for (std::uint32_t root = 0;
       root < channel_of.size() && result.acyclic; ++root) {
    if (color[root] != kWhite) continue;
    // Stack of (node, iterator position into a snapshot of deps). The
    // snapshot is sorted: deps[c] is a hash set, and leaving its iteration
    // order visible would make the traversal -- and therefore the reported
    // witness cycle -- depend on the standard library's hashing. Sorting
    // pins the witness for a given input on every platform.
    std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> stack;
    auto push = [&](std::uint32_t c) {
      color[c] = kGray;
      std::vector<std::uint32_t> snapshot(deps[c].begin(), deps[c].end());
      std::sort(snapshot.begin(), snapshot.end());
      stack.emplace_back(c, std::move(snapshot));
    };
    push(root);
    while (!stack.empty() && result.acyclic) {
      auto& [c, todo] = stack.back();
      if (todo.empty()) {
        color[c] = kBlack;
        stack.pop_back();
        continue;
      }
      std::uint32_t next = todo.back();
      todo.pop_back();
      if (color[next] == kGray) {
        // Cycle: walk the gray stack from `next` to top.
        result.acyclic = false;
        bool collecting = false;
        for (const auto& frame : stack) {
          if (frame.first == next) collecting = true;
          if (collecting) {
            Channel ch = channel_of[frame.first];
            result.witness_cycle.emplace_back(
                static_cast<std::uint32_t>(ch >> 32),
                static_cast<std::uint32_t>(ch & 0xffffffffu));
          }
        }
      } else if (color[next] == kWhite) {
        parent[next] = c;
        push(next);
      }
    }
  }
  if (!result.acyclic) {
    // Witness collected above.
  }
  return result;
}

}  // namespace hbnet
