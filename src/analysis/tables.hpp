// Regenerates the paper's two comparison tables.
//
// Figure 1 compares, for given (m,n): the hypercube H_{m+n}, the wrapped
// butterfly B_{m+n}, the hyper-deBruijn HD(m,n') and the hyper-butterfly
// HB(m,n) -- parameters (nodes, edges, regularity, degree, diameter, fault
// tolerance) plus the embedding rows. Figure 2 instantiates the comparison
// at matched node counts: HB(3,8) vs HD(3,11) vs HD(6,8) (16384 nodes each).
//
// Rows carry both the paper's closed-form value and the value measured on
// the constructed graph, so a reader can see at a glance which claims
// reproduce. print_* write an aligned ASCII table to the stream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hbnet {

/// One cell of a comparison table: formula (paper) and measurement (ours).
struct TableCell {
  std::string formula;
  std::string measured;
};

struct ComparisonTable {
  std::vector<std::string> columns;           // network names
  std::vector<std::string> rows;              // parameter names
  std::vector<std::vector<TableCell>> cells;  // [row][column]
};

/// Figure 1 for the given (m, n): columns H_{m+n}, B_{m+n}, HD(m,n),
/// HB(m,n). `measure` toggles the (possibly expensive) measured column
/// entries; instances beyond the caps show "-".
[[nodiscard]] ComparisonTable figure1_table(unsigned m, unsigned n,
                                            bool measure = true);

/// Figure 2: HB(3,8) vs HD(3,11) vs HD(6,8). `exact_diameters` enables the
/// full all-sources BFS on the two (non-vertex-transitive) hyper-deBruijn
/// instances (~seconds).
[[nodiscard]] ComparisonTable figure2_table(bool exact_diameters = true);

/// Writes an aligned two-line-per-cell ("paper | measured") ASCII rendering.
void print_table(std::ostream& os, const ComparisonTable& table);

}  // namespace hbnet
