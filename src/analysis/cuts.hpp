// Cut widths and VLSI-layout estimates -- the paper's announced VLSI
// future-work item, substituted per DESIGN.md by measurable graph
// quantities: exact widths of the canonical "dimension" bisections, a
// sampled upper bound on the true bisection width, and the Thompson-model
// area lower bound (area = Omega(bisection^2)) these imply.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hyper_butterfly.hpp"
#include "graph/graph.hpp"

namespace hbnet {

/// Number of edges crossing the 0/1 partition `side` (size num_nodes).
[[nodiscard]] std::uint64_t cut_width(const Graph& g,
                                      const std::vector<char>& side);

/// A named balanced cut and its width.
struct NamedCut {
  std::string name;
  std::uint64_t width = 0;
  bool balanced = false;  // |sides| differ by at most 1
};

/// The canonical cuts of HB(m,n): one per cube bit (split on h_i), one per
/// butterfly word bit, and the "level half" cut (levels < n/2 vs rest).
/// Each is an upper bound on the bisection width (when balanced).
[[nodiscard]] std::vector<NamedCut> hb_dimension_cuts(const HyperButterfly& hb);

/// Best (smallest) balanced cut found by local search from `restarts`
/// random balanced partitions (Kernighan-Lin style single-swap descent).
/// An upper bound on the true bisection width.
[[nodiscard]] std::uint64_t sampled_bisection_upper_bound(
    const Graph& g, unsigned restarts = 4, std::uint64_t seed = 1,
    unsigned max_passes = 8);

/// Thompson-grid VLSI area lower bound implied by a bisection width b:
/// Omega(b^2). Returned as b*b.
[[nodiscard]] std::uint64_t thompson_area_lower_bound(std::uint64_t bisection);

}  // namespace hbnet
