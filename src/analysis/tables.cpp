#include "analysis/tables.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "analysis/properties.hpp"
#include "core/hyper_butterfly.hpp"
#include "topology/butterfly.hpp"
#include "topology/hyper_debruijn.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {
namespace {

std::string num(std::uint64_t v) { return std::to_string(v); }

std::string opt(const std::optional<std::uint32_t>& v, bool exact = true) {
  if (!v) return "-";
  return exact ? num(*v) : ("<=" + num(*v));
}

/// Measured cells shared by both tables.
struct MeasuredColumn {
  TopologySummary s;
};

void fill_parameter_rows(ComparisonTable& t,
                         const std::vector<std::vector<std::string>>& formulas,
                         const std::vector<MeasuredColumn>& measured) {
  t.rows = {"Nodes",    "Edges",          "Regular",
            "Degree",   "Diameter",       "Fault-tolerance"};
  t.cells.assign(t.rows.size(),
                 std::vector<TableCell>(t.columns.size()));
  for (std::size_t c = 0; c < t.columns.size(); ++c) {
    const TopologySummary& s = measured[c].s;
    t.cells[0][c] = {formulas[c][0], num(s.nodes)};
    t.cells[1][c] = {formulas[c][1], num(s.edges)};
    t.cells[2][c] = {formulas[c][2], s.regular ? "yes" : "no"};
    t.cells[3][c] = {formulas[c][3],
                     s.regular ? num(s.min_degree)
                               : (num(s.min_degree) + ".." + num(s.max_degree))};
    t.cells[4][c] = {formulas[c][4], opt(s.diameter)};
    t.cells[5][c] = {formulas[c][5],
                     opt(s.connectivity, s.connectivity_exact)};
  }
}

void append_embedding_rows(ComparisonTable& t,
                           const std::vector<std::vector<std::string>>& rows) {
  const std::vector<std::string> names = {"Cycles", "Mesh", "Binary tree",
                                          "Mesh of trees"};
  for (std::size_t r = 0; r < names.size(); ++r) {
    t.rows.push_back(names[r]);
    std::vector<TableCell> line(t.columns.size());
    for (std::size_t c = 0; c < t.columns.size(); ++c) {
      line[c] = {rows[c][r], ""};
    }
    t.cells.push_back(std::move(line));
  }
}

}  // namespace

ComparisonTable figure1_table(unsigned m, unsigned n, bool measure) {
  const unsigned mn = m + n;
  ComparisonTable t;
  t.columns = {"H(" + num(mn) + ")", "B(" + num(mn) + ")",
               "HD(" + num(m) + "," + num(n) + ")",
               "HB(" + num(m) + "," + num(n) + ")"};

  // Paper formulas (Figure 1), instantiated at (m, n).
  auto p2 = [](unsigned e) { return std::uint64_t{1} << e; };
  std::vector<std::vector<std::string>> formulas = {
      // H_{m+n}
      {num(p2(mn)), num(std::uint64_t{mn} * p2(mn - 1)), "yes", num(mn),
       num(mn), num(mn)},
      // B_{m+n}
      {num(std::uint64_t{mn} * p2(mn)), num(std::uint64_t{mn} * p2(mn + 1)),
       "yes", "4", num(3 * mn / 2), "4"},
      // HD(m,n)
      {num(p2(mn)), "~" + num(std::uint64_t{m + 4} * p2(mn - 1)), "no",
       num(m + 2) + ".." + num(m + 4), num(mn), num(m + 2)},
      // HB(m,n)
      {num(std::uint64_t{n} * p2(mn)),
       num(std::uint64_t{m + 4} * n * p2(mn - 1)), "yes", num(m + 4),
       num(m + (3 * n + 1) / 2), num(m + 4)}};

  std::vector<MeasuredColumn> measured(4);
  if (measure) {
    SummaryOptions vt;
    vt.vertex_transitive = true;
    SummaryOptions general;
    measured[0].s = summarize(t.columns[0], Hypercube(mn).to_graph(), vt);
    measured[1].s = summarize(t.columns[1], Butterfly(mn).to_graph(), vt);
    measured[2].s =
        summarize(t.columns[2], HyperDeBruijn(m, n).to_graph(), general);
    measured[3].s =
        summarize(t.columns[3], HyperButterfly(m, n).to_graph(), vt);
  } else {
    for (auto& col : measured) col.s = TopologySummary{};
  }
  fill_parameter_rows(t, formulas, measured);

  // Embedding rows as stated in Figure 1.
  append_embedding_rows(
      t, {// H
          {"even cycles", "yes", "T(" + num(mn - 1) + ")", "yes"},
          // B
          {"even cycles", "no", "T(" + num(mn + 1) + ")", "yes"},
          // HD
          {"pancyclic", "yes", "T(" + num(mn - 1) + ")", "yes"},
          // HB
          {"even cycles", "yes", "T(" + num(mn - 1) + ")", "yes"}});
  return t;
}

ComparisonTable figure2_table(bool exact_diameters) {
  ComparisonTable t;
  t.columns = {"HB(3,8)", "HD(3,11)", "HD(6,8)"};

  // Paper values (Figure 2).
  std::vector<std::vector<std::string>> formulas = {
      {"16384", "57344", "yes", "7", "15", "7"},
      {"16384", "~57344", "no", "5..7", "14", "5"},
      {"16384", "~81920", "no", "8..10", "14", "8"}};

  std::vector<MeasuredColumn> measured(3);
  SummaryOptions vt;
  vt.vertex_transitive = true;
  SummaryOptions hd;
  hd.diameter_node_cap = exact_diameters ? 20000 : 0;
  measured[0].s = summarize("HB(3,8)", HyperButterfly(3, 8).to_graph(), vt);
  measured[1].s = summarize("HD(3,11)", HyperDeBruijn(3, 11).to_graph(), hd);
  measured[2].s = summarize("HD(6,8)", HyperDeBruijn(6, 8).to_graph(), hd);
  fill_parameter_rows(t, formulas, measured);

  append_embedding_rows(t, {{"even cycles", "yes", "T(10)", "MT(2^1,2^8)"},
                            {"pancyclic", "yes", "T(13)", "MT(2^1,2^10)"},
                            {"pancyclic", "yes", "T(13)", "MT(2^4,2^6)"}});
  return t;
}

void print_table(std::ostream& os, const ComparisonTable& table) {
  const int name_width = 16, cell_width = 22;
  os << std::left << std::setw(name_width) << "Parameter";
  for (const std::string& col : table.columns) {
    os << std::setw(cell_width) << col;
  }
  os << '\n';
  os << std::string(name_width + cell_width * table.columns.size(), '-')
     << '\n';
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    os << std::left << std::setw(name_width) << table.rows[r];
    for (const TableCell& cell : table.cells[r]) {
      std::string text = cell.formula;
      if (!cell.measured.empty()) {
        text += " | " + cell.measured;
      }
      os << std::setw(cell_width) << text;
    }
    os << '\n';
  }
}

}  // namespace hbnet
