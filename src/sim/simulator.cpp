#include "sim/simulator.hpp"

#include <algorithm>
#include <deque>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace hbnet {
namespace {

struct Packet {
  std::vector<std::uint32_t> path;  // source-routed vertex sequence
  std::uint32_t hop = 0;            // index into path of current node
  std::uint64_t injected_at = 0;
  bool measured = false;  // injected inside the measurement window
};

/// Store-and-forward telemetry, active only when a sink is attached. Shared
/// by the static-fault and fault-event runs so both report identically.
struct SfTelemetry {
  obs::Sink* sink = nullptr;
  std::unordered_map<std::uint64_t, std::uint64_t> link_moves;
  std::vector<std::uint64_t> node_occ;
  obs::TimeSeries* inject_ts = nullptr;
  obs::TimeSeries* deliver_ts = nullptr;
  // Live progress slots (dedicated channel; never feeds back into the
  // run). Resolved once so per-cycle updates are plain relaxed stores.
  obs::ProgressBoard::Slot* prog_cycle = nullptr;
  obs::ProgressBoard::Slot* prog_in_flight = nullptr;
  obs::ProgressBoard::Slot* prog_delivered = nullptr;

  SfTelemetry(obs::Sink* s, std::uint32_t n, const SimConfig& config,
              obs::ProgressBoard* progress)
      : sink(s) {
    if (progress != nullptr) {
      prog_cycle = &progress->slot("sim.cycle");
      prog_in_flight = &progress->slot("sim.in_flight_packets");
      prog_delivered = &progress->slot("sim.delivered");
    }
    if (sink == nullptr) return;
    node_occ.assign(n, 0);
    const std::uint64_t bucket = std::max<std::uint64_t>(
        1, (config.warmup_cycles + config.measure_cycles) / 64);
    inject_ts = &sink->time_series("sim.injected", bucket);
    deliver_ts = &sink->time_series("sim.delivered", bucket);
  }

  void on_inject(std::uint64_t cycle) {
    if (inject_ts != nullptr) inject_ts->bump(cycle);
  }
  void on_move(std::uint32_t u, std::uint32_t v) {
    if (sink != nullptr) {
      ++link_moves[(static_cast<std::uint64_t>(u) << 32) | v];
    }
  }
  void on_deliver(std::uint64_t cycle, const Packet& pkt) {
    if (prog_delivered != nullptr) prog_delivered->add(1);
    if (deliver_ts != nullptr) deliver_ts->bump(cycle);
    HBNET_TRACE_COMPLETE(sink, "packet", "pkt", 0, pkt.path.front(),
                         pkt.injected_at, cycle + 1 - pkt.injected_at,
                         {{"src", pkt.path.front()},
                          {"dst", pkt.path.back()},
                          {"hops", pkt.path.size() - 1}});
  }
  void sweep(const std::vector<std::deque<Packet>>& queue,
             std::uint64_t cycle, std::uint64_t in_flight) {
    if (prog_cycle != nullptr) {
      prog_cycle->set(cycle);
      prog_in_flight->set(in_flight);
    }
    if (sink == nullptr) return;
    for (std::size_t v = 0; v < queue.size(); ++v) {
      node_occ[v] += queue[v].size();
    }
    HBNET_TRACE_COUNTER(sink, "in_flight_packets", 0, cycle, in_flight);
  }
  // Routing-drop causes, counted separately so a dropped-by-design packet
  // (faults really disconnect the pair: kNoPath) is distinguishable from a
  // misconfigured run (the adapter has no fault-tolerant algorithm at all:
  // kUnsupported). Bumped exactly when the matching record_drop() happens in
  // a routing decision; fault-event queue losses are neither.
  std::uint64_t dropped_unroutable = 0;
  std::uint64_t dropped_unsupported = 0;

  void on_route_drop(FaultRouteStatus status) {
    if (status == FaultRouteStatus::kUnsupported) {
      ++dropped_unsupported;
    } else {
      ++dropped_unroutable;
    }
  }

  void finish(std::uint64_t cycles, const SimStats& stats) {
    if (sink == nullptr) return;
    sink->set_run_cycles(cycles);
    // Sorted extraction: link_moves is a hash map, so its iteration order is
    // an implementation detail. The exported link table is ordered by
    // (src, dst) -- the packed key -- so telemetry output is canonical and
    // byte-identical across runs and standard libraries.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> by_key(
        link_moves.begin(), link_moves.end());
    std::sort(by_key.begin(), by_key.end());
    std::uint64_t moves_total = 0;
    sink->links().reserve(sink->links().size() + by_key.size());
    for (const auto& [key, count] : by_key) {
      obs::LinkStats link;
      link.src = static_cast<std::uint32_t>(key >> 32);
      link.dst = static_cast<std::uint32_t>(key & 0xffffffffu);
      link.forwarded = count;
      moves_total += count;
      sink->links().push_back(std::move(link));
    }
    sink->node_occupancy() = node_occ;
    obs::MetricsRegistry& reg = sink->metrics();
    reg.counter("sim.injected").inc(stats.injected());
    reg.counter("sim.delivered").inc(stats.delivered());
    reg.counter("sim.dropped").inc(stats.dropped());
    reg.counter("sim.dropped_unroutable").inc(dropped_unroutable);
    reg.counter("sim.dropped_unsupported").inc(dropped_unsupported);
    reg.counter("sim.packet_moves").inc(moves_total);
    reg.counter("sim.cycles").inc(cycles);
    reg.histogram("sim.packet_latency").merge(stats.latency_histogram());
  }
};

}  // namespace

SimStats run_simulation(const SimTopology& topo, const SimConfig& config,
                        const std::vector<char>& faulty, obs::Sink* sink,
                        obs::ProgressBoard* progress) {
  const std::uint32_t n = topo.num_nodes();
  HBNET_CHECK_MSG(faulty.empty() || faulty.size() == n,
                  "run_simulation: fault mask must be empty or num_nodes()");
  const bool have_faults = !faulty.empty();

  SimStats stats;
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  TrafficGenerator traffic(config.pattern, n, config.seed ^ 0x9e3779b97f4a7c15ull);

  std::vector<std::deque<Packet>> queue(n);
  const std::uint64_t horizon =
      config.warmup_cycles + config.measure_cycles + config.drain_cycles;
  std::uint64_t in_flight = 0;
  SfTelemetry telem(sink, n, config, progress);
  // Hoisted per-cycle scratch: cleared each cycle, capacity persists.
  std::vector<std::pair<std::uint32_t, Packet>> moving;

  std::uint64_t cycle = 0;
  for (; cycle < horizon; ++cycle) {
    const bool injecting =
        cycle < config.warmup_cycles + config.measure_cycles;
    const bool measuring =
        cycle >= config.warmup_cycles && injecting;

    // Injection phase.
    if (injecting) {
      for (std::uint32_t src = 0; src < n; ++src) {
        if (have_faults && faulty[src]) continue;
        if (coin(rng) >= config.injection_rate) continue;
        std::uint32_t dst = traffic.destination(src);
        if (have_faults && faulty[dst]) continue;  // dead destination
        Packet pkt;
        if (have_faults) {
          SimFaultRoute r = topo.route_avoiding(src, dst, faulty);
          if (!r.ok()) {
            if (measuring) {
              stats.record_injection();
              stats.record_drop();
              telem.on_route_drop(r.status);
            }
            continue;
          }
          pkt.path = std::move(r.path);
        } else if (config.routing == RoutingMode::kValiant && src != dst) {
          // Valiant two-phase routing: src -> random intermediate -> dst.
          std::uniform_int_distribution<std::uint32_t> mid(0, n - 1);
          std::uint32_t w = mid(rng);
          pkt.path = topo.route(src, w);
          if (w != dst) {
            std::vector<std::uint32_t> tail = topo.route(w, dst);
            pkt.path.insert(pkt.path.end(), tail.begin() + 1, tail.end());
          }
        } else {
          pkt.path = topo.route(src, dst);
        }
        pkt.injected_at = cycle;
        pkt.measured = measuring;
        if (measuring) stats.record_injection();
        telem.on_inject(cycle);
        if (pkt.path.size() <= 1) {
          if (pkt.measured) stats.record_delivery(0, 0);
          continue;
        }
        queue[src].push_back(std::move(pkt));
        ++in_flight;
      }
    }

    // Forwarding phase: each node services up to service_rate head packets.
    // Two-phase update (collect then place) keeps per-cycle semantics: a
    // packet moves one hop per cycle at most.
    moving.clear();
    for (std::uint32_t v = 0; v < n; ++v) {
      for (unsigned s = 0; s < config.service_rate && !queue[v].empty(); ++s) {
        Packet pkt = std::move(queue[v].front());
        queue[v].pop_front();
        ++pkt.hop;
        HBNET_DCHECK(pkt.hop < pkt.path.size());
        std::uint32_t next = pkt.path[pkt.hop];
        telem.on_move(v, next);
        if (pkt.hop + 1 == pkt.path.size()) {
          // Delivered at `next`.
          if (pkt.measured) {
            stats.record_delivery(cycle + 1 - pkt.injected_at,
                                  pkt.path.size() - 1);
          }
          telem.on_deliver(cycle, pkt);
          HBNET_DCHECK(in_flight > 0);
          --in_flight;
        } else {
          moving.emplace_back(next, std::move(pkt));
        }
      }
    }
    for (auto& [node, pkt] : moving) {
      queue[node].push_back(std::move(pkt));
    }
    telem.sweep(queue, cycle, in_flight);
    if (!injecting && in_flight == 0) break;
  }
  telem.finish(std::min(cycle + 1, horizon), stats);
  return stats;
}

SimStats run_simulation_with_fault_events(const SimTopology& topo,
                                          const SimConfig& config,
                                          std::vector<FaultEvent> events,
                                          obs::Sink* sink,
                                          obs::ProgressBoard* progress) {
  const std::uint32_t n = topo.num_nodes();
  for (const FaultEvent& ev : events) {
    HBNET_CHECK_MSG(ev.node < n,
                    "run_simulation_with_fault_events: event node out of "
                    "range");
  }
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.cycle < b.cycle;
            });
  std::vector<char> faulty(n, 0);
  std::size_t next_event = 0;

  SimStats stats;
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  TrafficGenerator traffic(config.pattern, n,
                           config.seed ^ 0x9e3779b97f4a7c15ull);

  std::vector<std::deque<Packet>> queue(n);
  const std::uint64_t horizon =
      config.warmup_cycles + config.measure_cycles + config.drain_cycles;
  std::uint64_t in_flight = 0;
  SfTelemetry telem(sink, n, config, progress);
  // Hoisted per-cycle scratch: cleared each cycle, capacity persists.
  std::vector<std::pair<std::uint32_t, Packet>> moving;

  std::uint64_t cycle = 0;
  for (; cycle < horizon; ++cycle) {
    // Fault arrivals: kill nodes, losing their queued packets.
    while (next_event < events.size() && events[next_event].cycle <= cycle) {
      std::uint32_t dead = events[next_event].node;
      if (!faulty[dead]) {
        faulty[dead] = 1;
        HBNET_TRACE_INSTANT(sink, "fault", "node_death", 0, dead, cycle,
                            {{"node", dead},
                             {"lost_packets", queue[dead].size()}});
        for (const Packet& pkt : queue[dead]) {
          if (pkt.measured) stats.record_drop();
          --in_flight;
        }
        queue[dead].clear();
      }
      ++next_event;
    }

    const bool injecting = cycle < config.warmup_cycles + config.measure_cycles;
    const bool measuring = cycle >= config.warmup_cycles && injecting;

    if (injecting) {
      for (std::uint32_t src = 0; src < n; ++src) {
        if (faulty[src]) continue;
        if (coin(rng) >= config.injection_rate) continue;
        std::uint32_t dst = traffic.destination(src);
        if (faulty[dst]) continue;
        Packet pkt;
        SimFaultRoute planned = topo.route_avoiding(src, dst, faulty);
        if (planned.ok()) {
          pkt.path = std::move(planned.path);
        } else {
          // Fall back to the native route when no surviving path is known
          // yet (or the adapter lacks fault routing): drops are then counted
          // below when the packet actually hits a dead hop.
          pkt.path = topo.route(src, dst);
        }
        pkt.injected_at = cycle;
        pkt.measured = measuring;
        if (measuring) stats.record_injection();
        telem.on_inject(cycle);
        if (pkt.path.size() <= 1) {
          if (pkt.measured) stats.record_delivery(0, 0);
          continue;
        }
        queue[src].push_back(std::move(pkt));
        ++in_flight;
      }
    }

    moving.clear();
    for (std::uint32_t v = 0; v < n; ++v) {
      for (unsigned s = 0; s < config.service_rate && !queue[v].empty(); ++s) {
        Packet pkt = std::move(queue[v].front());
        queue[v].pop_front();
        std::uint32_t next = pkt.path[pkt.hop + 1];
        if (faulty[next]) {
          // Online repair: re-source-route from here around the faults.
          std::uint32_t dst = pkt.path.back();
          SimFaultRoute repaired;
          if (faulty[dst]) {
            // A dead destination is unroutable by design, not an adapter
            // limitation.
            repaired.status = FaultRouteStatus::kNoPath;
          } else {
            repaired = topo.route_avoiding(v, dst, faulty);
          }
          if (!repaired.ok() || repaired.path.size() <= 1) {
            if (pkt.measured) {
              stats.record_drop();
              telem.on_route_drop(repaired.status);
            }
            --in_flight;
            continue;
          }
          pkt.path = std::move(repaired.path);
          pkt.hop = 0;
          next = pkt.path[1];
        }
        ++pkt.hop;
        telem.on_move(v, next);
        if (pkt.hop + 1 == pkt.path.size()) {
          if (pkt.measured) {
            stats.record_delivery(cycle + 1 - pkt.injected_at, pkt.hop);
          }
          telem.on_deliver(cycle, pkt);
          --in_flight;
        } else {
          moving.emplace_back(next, std::move(pkt));
        }
      }
    }
    for (auto& [node, pkt] : moving) queue[node].push_back(std::move(pkt));
    telem.sweep(queue, cycle, in_flight);
    if (!injecting && in_flight == 0 && next_event >= events.size()) break;
  }
  telem.finish(std::min(cycle + 1, horizon), stats);
  return stats;
}

}  // namespace hbnet
