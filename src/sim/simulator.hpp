// Synchronous source-routed store-and-forward packet simulator.
//
// Model (deliberately simple and deterministic -- the paper's claims are
// about path structure, not microarchitecture):
//  * packets are source routed with the topology's own algorithm at
//    injection time;
//  * every node forwards at most `service_rate` packets per cycle from its
//    FIFO (the router bottleneck); buffers are unbounded, so contention
//    shows up as queueing latency rather than drops;
//  * injection is Bernoulli(rate) per node per cycle;
//  * faulty nodes neither inject nor forward; packets are rerouted at
//    injection with the topology's fault-tolerant algorithm when it has one
//    (otherwise the packet is dropped and counted).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/sink.hpp"
#include "sim/stats.hpp"
#include "sim/topology.hpp"
#include "sim/traffic.hpp"

namespace hbnet {

namespace obs {
class ProgressBoard;
}

/// How packets are source-routed at injection.
enum class RoutingMode {
  kNative,   // the topology's own (usually minimal) algorithm
  kValiant,  // two-phase randomized: route to a random intermediate first
             // (classic load balancing for adversarial permutations)
};

struct SimConfig {
  double injection_rate = 0.05;  // packets/node/cycle
  std::uint64_t warmup_cycles = 200;
  std::uint64_t measure_cycles = 1000;
  std::uint64_t drain_cycles = 4000;  // extra cycles to flush in-flight load
  unsigned service_rate = 1;          // packets a node may forward per cycle
  std::uint64_t seed = 42;
  TrafficPattern pattern = TrafficPattern::kUniform;
  RoutingMode routing = RoutingMode::kNative;
};

/// Runs the simulation on `topo` with optional node faults.
/// `faulty` may be empty (no faults) or sized exactly num_nodes(); any
/// other size is a caller bug and fails an HBNET_CHECK (process abort).
///
/// A non-null `sink` collects per-link traversal counts, per-node queue
/// occupancy integrals, injection/delivery time series, counters, the
/// latency histogram, and (when tracing is enabled on the sink) packet
/// lifetime spans. A null sink adds no per-packet work.
///
/// A non-null `progress` receives live sim.cycle / sim.in_flight_packets /
/// sim.delivered slot updates each cycle (relaxed atomic stores on a
/// dedicated channel; results are unaffected).
[[nodiscard]] SimStats run_simulation(const SimTopology& topo,
                                      const SimConfig& config,
                                      const std::vector<char>& faulty = {},
                                      obs::Sink* sink = nullptr,
                                      obs::ProgressBoard* progress = nullptr);

/// A node failure occurring *during* the run.
struct FaultEvent {
  std::uint64_t cycle;    // when the node dies
  std::uint32_t node;
};

/// Dynamic-fault run: nodes die mid-simulation. In-flight packets whose
/// next hop just died are re-source-routed on the spot with the topology's
/// fault-tolerant algorithm (dropped if it has none or no path survives);
/// packets queued *at* a dying node are lost outright. Measures how the
/// Theorem-5 machinery behaves online rather than only at injection time.
/// Every event's node must be < topo.num_nodes(); an out-of-range node is
/// a caller bug and fails an HBNET_CHECK (process abort).
[[nodiscard]] SimStats run_simulation_with_fault_events(
    const SimTopology& topo, const SimConfig& config,
    std::vector<FaultEvent> events, obs::Sink* sink = nullptr,
    obs::ProgressBoard* progress = nullptr);

}  // namespace hbnet
