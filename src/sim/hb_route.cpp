#include "sim/hb_route.hpp"

#include <type_traits>

#include "check/check.hpp"

namespace hbnet::sim {

static_assert(std::is_trivially_copyable_v<HbRouteState> &&
                  sizeof(HbRouteState) <= 16,
              "HbRouteState is the per-packet route footprint");

HbRouteState HbImplicitRouter::plan(HbNode src, HbNode dst) const {
  HbRouteState st;
  st.cube_diff = src.cube ^ dst.cube;
  st.word_diff = src.bfly.word ^ dst.bfly.word;
  const CoveringWalkPlan walk =
      plan_covering_walk(n_, src.bfly.level, dst.bfly.level, st.word_diff);
  for (unsigned i = 0; i < 3; ++i) {
    st.run[i] = static_cast<std::uint8_t>(walk.run(i));
  }
  st.dir0 = static_cast<std::int8_t>(walk.dir(0));
  return st;
}

}  // namespace hbnet::sim
