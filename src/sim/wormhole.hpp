// Flit-level wormhole simulator with virtual channels.
//
// The store-and-forward model (sim/simulator.hpp) abstracts switching; this
// module models what a VLSI router of the paper's era actually did:
// packets travel as worms of flits, a head flit allocates one virtual
// channel (VC) per hop and the body follows through bounded flit buffers,
// so a blocked head stalls a chain of channels -- the mechanism that makes
// wormhole networks deadlock-prone exactly when the channel dependency
// graph (analysis/deadlock.hpp) is cyclic.
//
// VC allocation policies (classes are computed per hop at injection from
// the ring structure of the level/position coordinate, `ring_arity`):
//
//  * kAnyFree -- grab any free VC; no protection. The level-ring CDG cycles
//    materialize as real deadlocks under pressure (tests demonstrate it).
//  * kDateline -- the classical 2-class ring dateline (bump the class after
//    crossing the wrap edge). Sufficient for *monotone* ring routes -- but
//    the exact covering-walk routes of the butterfly/CCC/HB reverse
//    direction up to twice, and two opposite-direction packets can block
//    each other within one class: measurably INSUFFICIENT here (a finding
//    the tests pin down deliberately).
//  * kSegmentDateline -- 6 classes: class = 2 * (monotone-segment index) +
//    (crossed-wrap-within-segment). An optimal covering walk has at most 3
//    monotone segments and each spans at most n offsets, so it crosses the
//    wrap at most once per segment; within a class every packet moves in
//    one direction without wrap, making each class's dependency subgraph
//    acyclic and the whole scheme deadlock free. Needs >= 6 VCs.
//  * kFaultAdaptive -- the 6 segment-dateline classes plus one reserved
//    *escape* class (Duato-style): a packet whose next hop is blocked by a
//    static node/link fault re-plans the rest of its route online via the
//    Theorem-5 disjoint-path alternatives (SimTopology::route_avoiding) and
//    runs the replanned suffix entirely in the escape class, which routes
//    minimally on the fault-free subnetwork. Needs >= 7 VCs. Required
//    whenever a fault set is passed to run_wormhole.
//
// The minimum VC count for any policy is vc_classes(policy);
// validate_wormhole_config derives its diagnostic from that function, so
// policy minimums cannot drift out of sync with the implementation.
//
// Deadlock is detected operationally: if flits are in flight and nothing
// moves for `deadlock_patience` cycles, the run aborts and reports it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/sink.hpp"
#include "sim/stats.hpp"
#include "sim/topology.hpp"
#include "sim/traffic.hpp"

namespace hbnet {

namespace obs {
class ProgressBoard;
}

enum class VcPolicy { kAnyFree, kDateline, kSegmentDateline, kFaultAdaptive };

/// Number of VC classes a policy distinguishes. This is also the minimum
/// `vcs` the policy runs with (validate_wormhole_config enforces it).
[[nodiscard]] constexpr unsigned vc_classes(VcPolicy policy) {
  switch (policy) {
    case VcPolicy::kAnyFree:
      return 1;
    case VcPolicy::kDateline:
      return 2;
    case VcPolicy::kSegmentDateline:
      return 6;
    case VcPolicy::kFaultAdaptive:
      return 7;  // 6 segment-dateline classes + 1 reserved escape class
  }
  return 1;
}

/// The CLI spelling of a policy ("any" / "dateline" / "segment" /
/// "adaptive").
[[nodiscard]] const char* vc_policy_name(VcPolicy policy);

/// Static fault set for the wormhole datapath. `nodes` is a per-node mask
/// (empty, or exactly num_nodes() entries); `links` is a list of *directed*
/// faulted channels (u, v) -- a link fault kills one direction only. Faults
/// require VcPolicy::kFaultAdaptive (the online re-planner needs the
/// reserved escape class to stay deadlock free).
struct WormholeFaults {
  std::vector<char> nodes;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> links;
  [[nodiscard]] bool any() const { return !nodes.empty() || !links.empty(); }
};

struct WormholeConfig {
  unsigned vcs = 2;                 // virtual channels per physical channel
  unsigned buffer_depth = 4;        // flits per VC buffer
  unsigned flits_per_packet = 4;    // head + body + tail
  double injection_rate = 0.02;     // packets/node/cycle
  std::uint64_t warmup_cycles = 100;
  std::uint64_t measure_cycles = 400;
  std::uint64_t drain_cycles = 20000;
  std::uint64_t deadlock_patience = 2000;  // stall cycles before declaring
  std::uint64_t seed = 42;
  TrafficPattern pattern = TrafficPattern::kUniform;
  VcPolicy policy = VcPolicy::kSegmentDateline;
  unsigned misroute_limit = 32;  // online re-plans per packet before it is
                                 // declared unroutable and killed
};

struct WormholeStats {
  SimStats packets;          // latency = head injection .. tail delivery
  bool deadlocked = false;   // aborted by the stall detector
  std::uint64_t cycles = 0;  // cycles actually simulated
  std::uint64_t misroutes = 0;    // online re-plans around discovered faults
  std::uint64_t escape_hops = 0;  // hops assigned to the escape VC class
  std::uint64_t unroutable = 0;   // worms killed: no fault-free route left
};

/// Validates a WormholeConfig against its own policy: empty string when
/// runnable, otherwise a diagnostic naming the minimum VC count for the
/// chosen policy (derived from vc_classes(policy), so the message can never
/// disagree with the enforcement). Guards the classic footgun:
/// WormholeConfig{} defaults to vcs = 2, which the default kSegmentDateline
/// policy (6 classes) rejects -- callers sweeping policies must bump vcs
/// accordingly (the campaign engine defaults its wormhole config to
/// vcs = vc_classes(kFaultAdaptive) for this reason). run_wormhole and
/// campaign::enumerate_trials both throw std::invalid_argument with this
/// message on a non-empty result.
[[nodiscard]] std::string validate_wormhole_config(
    const WormholeConfig& config);

/// Runs the wormhole simulation. `ring_arity` is the modulus of the
/// level/position coordinate in the node indexing (node id % arity), used
/// to detect ring direction and wrap hops for the dateline policies; pass
/// 0 for topologies without a ring coordinate (all hops stay class 0).
///
/// A non-null `faults` with any() == true injects static faults into the
/// datapath: faulty sources never inject, packets to faulty destinations
/// are skipped uncounted (mirroring the store-and-forward engine), and a
/// head flit whose next hop is faulted re-plans online through
/// topo.route_avoiding, escalating the replanned suffix to the escape VC
/// class. Requires config.policy == VcPolicy::kFaultAdaptive (throws
/// std::invalid_argument otherwise) and, for the node mask, exactly
/// num_nodes() entries. Worms with no surviving route (or past
/// config.misroute_limit re-plans) are killed in place and counted in
/// WormholeStats::unroutable; their buffered flits drain so the network
/// cannot false-deadlock on them.
///
/// When `sink` is non-null the run additionally reports per-link/per-VC
/// utilization (sink->links()), injection/delivery time series, counters
/// and the latency histogram (sink->metrics()), and -- if the sink has
/// tracing enabled -- Chrome-trace packet lifetime spans plus an in-flight
/// flit counter track. A null sink costs nothing on the hot path.
///
/// A non-null `progress` receives live wormhole.cycle /
/// wormhole.in_flight_flits / wormhole.delivered slot updates each cycle
/// (relaxed atomic stores on a dedicated channel; results are unaffected).
[[nodiscard]] WormholeStats run_wormhole(const SimTopology& topo,
                                         const WormholeConfig& config,
                                         unsigned ring_arity = 0,
                                         const WormholeFaults* faults = nullptr,
                                         obs::Sink* sink = nullptr,
                                         obs::ProgressBoard* progress = nullptr);

}  // namespace hbnet
