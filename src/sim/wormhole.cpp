#include "sim/wormhole.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "check/check.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

// Datapath layout (rewritten for single-thread speed; cycle-exact with the
// original full-scan implementation -- same seed => same WormholeStats,
// tested):
//
//  * Every packet's per-hop channel ids are resolved once at injection
//    (PktState::chan), so the advance loop never touches the channel hash
//    map.
//  * VC buffers are fixed-capacity (buffer_depth) ring buffers carved out
//    of one flat arena: slot (c, q, i) lives at ((c*vcs + q)*depth + i).
//    No per-flit allocation, no deque churn; the arena only grows when a
//    new channel is first registered -- at injection, or when the online
//    fault re-planner splices a detour into a packet's route. The advance
//    loop therefore works through indices (vi, c) that stay valid across
//    growth and re-resolves the downstream channel after any re-plan
//    instead of holding references into the arrays.
//  * The advance loop walks an *active-channel worklist* instead of every
//    channel: a channel is listed iff it holds at least one flit. The list
//    is kept sorted ascending (the scan order of the original full sweep),
//    compacted and merged with newly-activated channels once per cycle.
//    Channels that gain their first flit mid-cycle contribute no move that
//    cycle in the full-scan model either (their head flit carries this
//    cycle's last_move stamp), so deferring them to the next cycle is
//    behavior preserving.
//  * Per-link/per-VC occupancy telemetry integrates push/pop deltas
//    (occupancy * cycles-held) instead of an O(channels * vcs) sweep per
//    cycle, so a Sink-enabled run costs O(1) extra per flit movement plus
//    O(1) per cycle -- the end-of-cycle sampling semantics of the original
//    sweep are reproduced exactly (tested via the occupancy-sum invariant).

namespace hbnet {
namespace {

struct Flit {
  std::uint32_t pkt;
  std::uint16_t index;      // 0 = head, F-1 = tail
  std::uint16_t hop;        // channel position in the packet's path
  std::uint64_t last_move;  // cycle stamp to avoid double moves
};

/// One virtual channel: owner + ring-buffer cursor into the flit arena.
struct VcState {
  std::int64_t owner = -1;   // packet id holding this VC, -1 = free
  std::uint32_t head = 0;    // ring-buffer read position
  std::uint32_t count = 0;   // buffered flits
};

struct PktState {
  std::vector<std::uint32_t> path;  // node sequence, path.size() >= 2
  std::vector<std::uint32_t> chan;  // channel id per hop (size-1 entries)
  std::vector<std::uint8_t> cls;    // VC class per hop
  std::uint64_t injected_at = 0;
  std::uint16_t next_flit = 0;  // flits not yet streamed into hop 0
  unsigned replans = 0;         // online fault re-plans consumed
  bool measured = false;
  bool dead = false;  // killed as unroutable; buffered flits drain in place
};

/// Per-hop VC classes from the ring structure: direction of a hop is the
/// +-1 movement of (id % arity); a direction reversal starts a new
/// monotone segment; crossing the wrap edge bumps the within-segment
/// dateline bit. Non-ring hops (cube edges: level unchanged) keep the
/// current class and do not end a segment. kFaultAdaptive uses the same
/// six segment-dateline base classes; its seventh (escape) class is never
/// assigned here -- only the online re-planner places hops there.
std::vector<std::uint8_t> hop_classes(const std::vector<std::uint32_t>& path,
                                      unsigned arity, VcPolicy policy) {
  std::vector<std::uint8_t> cls(path.size() - 1, 0);
  if (policy == VcPolicy::kAnyFree || arity == 0) return cls;
  int last_dir = 0;       // 0 = none yet
  unsigned segment = 0;   // monotone segment index (0..2 for our routers)
  unsigned wrapped = 0;   // crossed wrap within this segment
  for (std::size_t h = 0; h + 1 < path.size(); ++h) {
    std::uint32_t lu = path[h] % arity, lv = path[h + 1] % arity;
    int dir = 0;
    bool wrap = false;
    if (lv == (lu + 1) % arity && lu != lv) {
      dir = 1;
      wrap = (lu == arity - 1);
    } else if (lu == (lv + 1) % arity && lu != lv) {
      dir = -1;
      wrap = (lu == 0);
    }
    if (dir != 0) {
      if (last_dir != 0 && dir != last_dir) {
        ++segment;
        wrapped = 0;
      }
      last_dir = dir;
    }
    if (policy == VcPolicy::kDateline) {
      cls[h] = static_cast<std::uint8_t>(wrapped ? 1 : 0);
      if (wrap) wrapped = 1;
    } else {  // kSegmentDateline / kFaultAdaptive base classes
      unsigned seg_capped = segment > 2 ? 2 : segment;
      cls[h] = static_cast<std::uint8_t>(2 * seg_capped + wrapped);
      if (wrap) wrapped = 1;
    }
  }
  return cls;
}

}  // namespace

const char* vc_policy_name(VcPolicy policy) {
  switch (policy) {
    case VcPolicy::kAnyFree:
      return "any";
    case VcPolicy::kDateline:
      return "dateline";
    case VcPolicy::kSegmentDateline:
      return "segment";
    case VcPolicy::kFaultAdaptive:
      return "adaptive";
  }
  return "?";
}

std::string validate_wormhole_config(const WormholeConfig& config) {
  if (config.vcs < 1 || config.flits_per_packet < 1 ||
      config.buffer_depth < 1) {
    return "wormhole config: vcs, flits_per_packet, and buffer_depth must "
           "all be at least 1";
  }
  const unsigned need = vc_classes(config.policy);
  if (config.vcs < need) {
    // The footnote is derived from vc_classes() over every policy, split by
    // whether the default-constructed config's vcs covers it -- so adding a
    // policy (or changing a minimum) can never leave this message stale.
    const unsigned default_vcs = WormholeConfig{}.vcs;
    std::string fits, needs_more;
    for (VcPolicy p :
         {VcPolicy::kAnyFree, VcPolicy::kDateline, VcPolicy::kSegmentDateline,
          VcPolicy::kFaultAdaptive}) {
      std::string& bucket = vc_classes(p) <= default_vcs ? fits : needs_more;
      if (!bucket.empty()) bucket += "/";
      bucket += std::string("'") + vc_policy_name(p) + "'";
    }
    return std::string("wormhole config: policy '") +
           vc_policy_name(config.policy) + "' needs at least " +
           std::to_string(need) + " virtual channels, got " +
           std::to_string(config.vcs) +
           " (note the WormholeConfig{} default vcs = " +
           std::to_string(default_vcs) + " only suits " + fits +
           "; pass vcs explicitly for " + needs_more + ")";
  }
  return {};
}

WormholeStats run_wormhole(const SimTopology& topo,
                           const WormholeConfig& config, unsigned ring_arity,
                           const WormholeFaults* faults, obs::Sink* sink,
                           obs::ProgressBoard* progress) {
  if (const std::string err = validate_wormhole_config(config);
      !err.empty()) {
    throw std::invalid_argument("run_wormhole: " + err);
  }
  const std::uint32_t n = topo.num_nodes();
  const bool have_faults = faults != nullptr && faults->any();
  if (have_faults) {
    if (config.policy != VcPolicy::kFaultAdaptive) {
      throw std::invalid_argument(
          "run_wormhole: a fault set requires the 'adaptive' policy (the "
          "online re-planner needs the reserved escape VC class)");
    }
    if (!faults->nodes.empty() && faults->nodes.size() != n) {
      throw std::invalid_argument(
          "run_wormhole: node fault mask must be empty or num_nodes()");
    }
    for (const auto& [lu, lv] : faults->links) {
      if (lu >= n || lv >= n) {
        throw std::invalid_argument(
            "run_wormhole: link fault endpoint out of range");
      }
    }
  }
  const std::uint16_t flits =
      static_cast<std::uint16_t>(config.flits_per_packet);
  const unsigned classes = vc_classes(config.policy);
  const std::uint32_t vcs = config.vcs;
  const std::uint32_t depth = config.buffer_depth;
  // Fault lookups. Node faults index the mask; link faults live in a hash
  // set keyed by the packed directed edge (lookup only -- never iterated).
  const std::vector<char> no_node_faults;
  const std::vector<char>& node_fault =
      have_faults ? faults->nodes : no_node_faults;
  std::unordered_set<std::uint64_t> link_fault;
  if (have_faults) {
    for (const auto& [lu, lv] : faults->links) {
      link_fault.insert((static_cast<std::uint64_t>(lu) << 32) | lv);
    }
  }
  auto node_dead = [&](std::uint32_t v) {
    return !node_fault.empty() && node_fault[v] != 0;
  };
  auto edge_blocked = [&](std::uint32_t u, std::uint32_t v) {
    if (node_dead(v)) return true;
    return !link_fault.empty() &&
           link_fault.count((static_cast<std::uint64_t>(u) << 32) | v) != 0;
  };
  // The reserved escape class is always the highest one (only meaningful
  // for kFaultAdaptive; unused otherwise).
  const std::uint8_t escape_cls = static_cast<std::uint8_t>(classes - 1);

  WormholeStats stats;
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  TrafficGenerator traffic(config.pattern, n,
                           config.seed ^ 0x5bf03635dcd66425ull);

  std::uint64_t cycle = 0;

  // -- channel storage -----------------------------------------------------
  // The id map is consulted only when a packet is injected; the advance loop
  // works off precomputed per-packet channel ids. All per-channel state is
  // in flat arrays indexed by channel id (and vi = c*vcs + q per VC).
  std::unordered_map<std::uint64_t, std::uint32_t> chan_id;
  std::uint32_t num_chans = 0;
  std::vector<VcState> vc;          // num_chans * vcs
  std::vector<Flit> arena;          // num_chans * vcs * depth ring slots
  std::vector<unsigned> rr;         // round-robin arbiter position per chan
  std::vector<std::uint32_t> chan_flits;  // total buffered flits per chan
  std::vector<std::pair<std::uint32_t, std::uint32_t>> chan_ends;
  // Active-channel worklist: `active` holds (sorted ascending) every channel
  // with chan_flits > 0 as of the start of the cycle; channels gaining their
  // first flit mid-cycle collect in `newly` and are merged at end of cycle.
  std::vector<std::uint32_t> active, newly;
  std::vector<std::uint8_t> in_active;  // member of active or newly
  // Telemetry state, grown/updated only under a sink.
  std::vector<std::uint64_t> link_forwarded;       // per channel
  std::vector<std::uint64_t> occ_integral;         // per VC (flit-cycles)
  std::vector<std::uint64_t> occ_since;            // first cycle not yet
                                                   // integrated, per VC

  auto channel = [&](std::uint32_t u, std::uint32_t v) -> std::uint32_t {
    std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    auto [it, fresh] = chan_id.emplace(key, num_chans);
    if (fresh) {
      ++num_chans;
      vc.resize(std::size_t{num_chans} * vcs);
      arena.resize(std::size_t{num_chans} * vcs * depth);
      rr.push_back(0);
      chan_flits.push_back(0);
      in_active.push_back(0);
      chan_ends.emplace_back(u, v);
      if (sink != nullptr) {
        link_forwarded.push_back(0);
        occ_integral.resize(std::size_t{num_chans} * vcs, 0);
        occ_since.resize(std::size_t{num_chans} * vcs, 0);
      }
    }
    return it->second;
  };

  // Integrates a VC's occupancy up to (but not including) the current
  // cycle's end-of-cycle sample; call BEFORE changing the flit count.
  auto occ_touch = [&](std::size_t vi) {
    occ_integral[vi] += std::uint64_t{vc[vi].count} * (cycle - occ_since[vi]);
    occ_since[vi] = cycle;
  };
  auto push_flit = [&](std::uint32_t c, std::size_t vi, const Flit& f) {
    VcState& s = vc[vi];
    HBNET_DCHECK(s.count < depth);  // caller checked capacity
    if (sink != nullptr) occ_touch(vi);
    std::uint32_t tail = s.head + s.count;
    if (tail >= depth) tail -= depth;  // branch beats %: depth is runtime
    arena[vi * depth + tail] = f;
    ++s.count;
    ++chan_flits[c];
    if (!in_active[c]) {
      in_active[c] = 1;
      newly.push_back(c);
    }
  };
  auto pop_flit = [&](std::uint32_t c, std::size_t vi) {
    VcState& s = vc[vi];
    HBNET_DCHECK(s.count > 0 && chan_flits[c] > 0);
    if (sink != nullptr) occ_touch(vi);
    if (++s.head == depth) s.head = 0;
    --s.count;
    --chan_flits[c];
  };

  std::vector<PktState> pkts;
  std::vector<std::vector<std::uint32_t>> inject_q(n);
  std::vector<std::uint32_t> inject_head(n, 0);  // index of queue front
  std::uint64_t in_flight = 0;
  std::uint64_t stall = 0;

  // Observability accumulators. `buffered` counts flits currently sitting
  // in VC buffers (incremented on buffer entry, decremented on final-hop
  // exit); integrating it per cycle gives total buffered flit-cycles, which
  // the per-link occupancy integrals must sum to exactly (tested).
  std::uint64_t buffered = 0;
  std::uint64_t flit_cycles_buffered = 0;
  obs::TimeSeries* inject_ts = nullptr;
  obs::TimeSeries* deliver_ts = nullptr;
  if (sink != nullptr) {
    const std::uint64_t bucket =
        std::max<std::uint64_t>(1, (config.warmup_cycles +
                                    config.measure_cycles) / 64);
    inject_ts = &sink->time_series("wormhole.injected", bucket);
    deliver_ts = &sink->time_series("wormhole.delivered", bucket);
  }
  // Live progress slots, resolved once; per-cycle updates are relaxed
  // atomic stores into the board and never feed back into the run.
  obs::ProgressBoard::Slot* prog_cycle = nullptr;
  obs::ProgressBoard::Slot* prog_in_flight = nullptr;
  obs::ProgressBoard::Slot* prog_delivered = nullptr;
  if (progress != nullptr) {
    prog_cycle = &progress->slot("wormhole.cycle");
    prog_in_flight = &progress->slot("wormhole.in_flight_flits");
    prog_delivered = &progress->slot("wormhole.delivered");
  }

  // VC q belongs to class q * classes / vcs (classes partition the range).
  auto vc_allowed = [&](const PktState& p, std::uint16_t hop, unsigned q) {
    unsigned cls_of_q = q * classes / vcs;
    return cls_of_q == p.cls[hop];
  };

  // Per-cycle move counter, hoisted so the fault helpers below can count
  // kills as progress; reset at the top of every cycle.
  std::uint64_t moves = 0;

  // Declares a worm unroutable: drop it from the stats, unblock its source
  // queue if it was still streaming, and mark it dead so any buffered flits
  // drain in place (the advance loop pops dead flits one per channel per
  // cycle without forwarding them).
  auto kill_worm = [&](PktState& p) {
    p.dead = true;
    ++stats.unroutable;
    if (p.measured) stats.packets.record_drop();
    HBNET_DCHECK(in_flight > 0);
    --in_flight;
    if (p.next_flit < flits) {
      // Still streaming: the packet is by construction the front of its
      // source queue; advance past it so later packets are not wedged.
      const std::uint32_t src = p.path.front();
      p.next_flit = flits;
      if (++inject_head[src] == inject_q[src].size()) {
        inject_q[src].clear();
        inject_head[src] = 0;
      }
    }
    // Killing is progress: a cycle that only killed worms must not trip
    // the stall detector.
    ++moves;
  };

  // Scratch for replan: the faulted outgoing links of the current node,
  // passed as banned first hops so one re-plan clears them all at once
  // (re-banning one link at a time could ping-pong).
  std::vector<std::uint32_t> banned_scratch;
  // Re-plans packet p from p.path[keep] to its destination around the
  // static faults via the Theorem-5 alternatives; the replanned suffix runs
  // entirely in the reserved escape class. May register new channels
  // (growing the flat per-channel arrays), so callers re-resolve any
  // downstream channel index afterwards. Returns false when the packet
  // exhausted its misroute budget or no fault-free alternative exists; the
  // caller then kills the worm.
  auto replan = [&](PktState& p, std::size_t keep) -> bool {
    if (p.replans >= config.misroute_limit) return false;
    const std::uint32_t cur = p.path[keep];
    const std::uint32_t dst = p.path.back();
    banned_scratch.clear();
    for (const auto& [lu, lv] : faults->links) {
      if (lu == cur) banned_scratch.push_back(lv);
    }
    const SimFaultRoute r =
        topo.route_avoiding(cur, dst, node_fault, banned_scratch);
    if (!r.ok() || r.path.size() < 2) return false;
    ++p.replans;
    ++stats.misroutes;
    stats.escape_hops += r.path.size() - 1;
    p.path.resize(keep + 1);
    p.chan.resize(keep);
    p.cls.resize(keep);
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      p.path.push_back(r.path[i + 1]);
      p.chan.push_back(channel(r.path[i], r.path[i + 1]));
      p.cls.push_back(escape_cls);
    }
    return true;
  };

  const std::uint64_t horizon =
      config.warmup_cycles + config.measure_cycles + config.drain_cycles;
  for (; cycle < horizon; ++cycle) {
    bool injecting = cycle < config.warmup_cycles + config.measure_cycles;
    bool measuring = cycle >= config.warmup_cycles && injecting;
    moves = 0;

    // 1. Packet creation. Channels of the native route are registered here;
    // the online re-planner (phases 2-3) is the only other channel creator.
    // Faulty endpoints mirror the store-and-forward engine: a dead source
    // never draws its injection coin, a packet to a dead destination is
    // skipped after the destination draw, both uncounted.
    if (injecting) {
      for (std::uint32_t src = 0; src < n; ++src) {
        if (have_faults && node_dead(src)) continue;
        if (coin(rng) >= config.injection_rate) continue;
        std::uint32_t dst = traffic.destination(src);
        if (have_faults && node_dead(dst)) continue;  // dead destination
        PktState p;
        p.path = topo.route(src, dst);
        if (p.path.size() < 2) continue;
        p.injected_at = cycle;
        p.measured = measuring;
        p.cls = hop_classes(p.path, ring_arity, config.policy);
        p.chan.resize(p.path.size() - 1);
        for (std::size_t h = 0; h + 1 < p.path.size(); ++h) {
          p.chan[h] = channel(p.path[h], p.path[h + 1]);
        }
        if (p.measured) stats.packets.record_injection();
        if (inject_ts != nullptr) inject_ts->bump(cycle);
        pkts.push_back(std::move(p));
        inject_q[src].push_back(static_cast<std::uint32_t>(pkts.size() - 1));
        ++in_flight;
      }
    }

    // 2. Source streaming: head packet per node feeds hop-0 channel.
    for (std::uint32_t src = 0; src < n; ++src) {
      if (inject_head[src] >= inject_q[src].size()) continue;
      std::uint32_t pid = inject_q[src][inject_head[src]];
      PktState& p = pkts[pid];
      if (have_faults && p.next_flit == 0 &&
          edge_blocked(p.path[0], p.path[1])) {
        // Online discovery at hop-0 VC allocation: re-plan before the head
        // flit ever enters the network, or kill the packet unrouted (no
        // flits exist yet, so the kill only advances the queue).
        if (!replan(p, 0)) {
          kill_worm(p);
          continue;
        }
      }
      const std::uint32_t c0 = p.chan[0];
      const std::size_t base0 = std::size_t{c0} * vcs;
      int vc_idx = -1;
      for (unsigned q = 0; q < vcs; ++q) {
        if (vc[base0 + q].owner == pid) {
          vc_idx = static_cast<int>(q);
          break;
        }
      }
      if (vc_idx < 0 && p.next_flit == 0) {
        for (unsigned q = 0; q < vcs; ++q) {
          if (vc[base0 + q].owner == -1 && vc_allowed(p, 0, q)) {
            vc[base0 + q].owner = pid;
            vc_idx = static_cast<int>(q);
            break;
          }
        }
      }
      if (vc_idx >= 0 && p.next_flit < flits &&
          vc[base0 + vc_idx].count < depth) {
        push_flit(c0, base0 + static_cast<unsigned>(vc_idx),
                  {pid, p.next_flit, 0, cycle});
        ++p.next_flit;
        ++moves;
        ++buffered;
        if (p.next_flit == flits) {
          if (++inject_head[src] == inject_q[src].size()) {
            inject_q[src].clear();
            inject_head[src] = 0;
          }
        }
      }
    }

    // 3. Channel advance: one flit per physical channel per cycle, walking
    // only the channels that held flits at the start of the cycle.
    for (std::uint32_t c : active) {
      const std::size_t base = std::size_t{c} * vcs;
      for (unsigned probe = 0; probe < vcs; ++probe) {
        unsigned q = (rr[c] + probe) % vcs;
        const std::size_t vi = base + q;
        // VC state is addressed through vc[vi] (not a held reference): the
        // online re-planner below can register new channels and grow the
        // array mid-iteration; the indices stay valid, references do not.
        if (vc[vi].count == 0) continue;
        Flit f = arena[vi * depth + vc[vi].head];
        if (f.last_move == cycle) continue;  // arrived this very cycle
        PktState& p = pkts[f.pkt];
        if (p.dead) {
          // Drain one flit of a killed worm in place: not a forward (the
          // packet was dropped), but progress for the stall detector.
          pop_flit(c, vi);
          --buffered;
          if (vc[vi].count == 0) vc[vi].owner = -1;
          ++moves;
          rr[c] = (q + 1) % vcs;
          break;
        }
        const bool last_hop = (f.hop + 2u == p.path.size());
        if (last_hop) {
          pop_flit(c, vi);
          --buffered;
          if (sink != nullptr) ++link_forwarded[c];
          if (f.index + 1u == flits) {
            vc[vi].owner = -1;
            HBNET_DCHECK(in_flight > 0);
            --in_flight;
            if (p.measured) {
              stats.packets.record_delivery(cycle + 1 - p.injected_at,
                                            p.path.size() - 1);
            }
            if (deliver_ts != nullptr) deliver_ts->bump(cycle);
            HBNET_TRACE_COMPLETE(sink, "packet", "pkt", 0, p.path.front(),
                                 p.injected_at, cycle + 1 - p.injected_at,
                                 {{"pkt", f.pkt},
                                  {"src", p.path.front()},
                                  {"dst", p.path.back()},
                                  {"hops", p.path.size() - 1}});
          }
          ++moves;
          rr[c] = (q + 1) % vcs;
          break;
        }
        std::uint32_t c2 = p.chan[f.hop + 1];
        std::size_t base2 = std::size_t{c2} * vcs;
        int vc2 = -1;
        for (unsigned r = 0; r < vcs; ++r) {
          if (vc[base2 + r].owner == f.pkt) {
            vc2 = static_cast<int>(r);
            break;
          }
        }
        if (vc2 < 0 && f.index == 0) {
          if (have_faults &&
              edge_blocked(p.path[f.hop + 1], p.path[f.hop + 2])) {
            // Online fault discovery at VC allocation: the head sits at
            // p.path[f.hop + 1] and its planned next hop is faulted.
            if (replan(p, f.hop + 1)) {
              // The re-plan kept p.chan[0 .. f.hop] (this flit's channel
              // included) and spliced a fresh escape-class suffix; it may
              // have grown the VC arrays, so re-resolve the downstream
              // channel before allocating.
              c2 = p.chan[f.hop + 1];
              base2 = std::size_t{c2} * vcs;
            } else {
              kill_worm(p);
              pop_flit(c, vi);
              --buffered;
              if (vc[vi].count == 0) vc[vi].owner = -1;
              rr[c] = (q + 1) % vcs;
              break;
            }
          }
          for (unsigned r = 0; r < vcs; ++r) {
            if (vc[base2 + r].owner == -1 &&
                vc_allowed(p, static_cast<std::uint16_t>(f.hop + 1), r)) {
              vc[base2 + r].owner = f.pkt;
              vc2 = static_cast<int>(r);
              break;
            }
          }
        }
        if (vc2 < 0 || vc[base2 + static_cast<unsigned>(vc2)].count >= depth) {
          continue;  // blocked; try another VC of this channel
        }
        pop_flit(c, vi);
        if (sink != nullptr) ++link_forwarded[c];
        if (f.index + 1u == flits) vc[vi].owner = -1;  // tail frees upstream
        push_flit(c2, base2 + static_cast<unsigned>(vc2),
                  {f.pkt, f.index, static_cast<std::uint16_t>(f.hop + 1),
                   cycle});
        ++moves;
        rr[c] = (q + 1) % vcs;
        break;
      }
    }

    // Worklist upkeep: drop emptied channels, fold in the ones that gained
    // their first flit this cycle, keep ascending order (= scan order).
    {
      std::size_t keep = 0;
      for (std::uint32_t c : active) {
        if (chan_flits[c] > 0) {
          active[keep++] = c;
        } else {
          in_active[c] = 0;
        }
      }
      active.resize(keep);
      if (!newly.empty()) {
        std::sort(newly.begin(), newly.end());
        const std::size_t mid = active.size();
        active.insert(active.end(), newly.begin(), newly.end());
        std::inplace_merge(active.begin(),
                           active.begin() + static_cast<std::ptrdiff_t>(mid),
                           active.end());
        newly.clear();
      }
    }

    // 4. Cycle telemetry (only under a sink): the per-VC occupancy is
    // integrated incrementally by push/pop above; here only the O(1)
    // global counter and trace sample remain.
    if (sink != nullptr) {
      flit_cycles_buffered += buffered;
      HBNET_TRACE_COUNTER(sink, "in_flight_flits", 0, cycle, buffered);
    }
    if (prog_cycle != nullptr) {
      prog_cycle->set(cycle);
      prog_in_flight->set(buffered);
      prog_delivered->set(stats.packets.delivered());
    }

    // 5. Termination and deadlock detection.
    if (!injecting && in_flight == 0) break;
    if (moves == 0 && in_flight > 0) {
      if (++stall > config.deadlock_patience) {
        stats.deadlocked = true;
        HBNET_TRACE_INSTANT(sink, "wormhole", "deadlock", 0, 0, cycle,
                            {{"in_flight", in_flight}});
        break;
      }
    } else {
      stall = 0;
    }
  }
  stats.cycles = cycle;

  // End-of-run export: link table, registry counters, latency histogram.
  if (sink != nullptr) {
    // Close the occupancy integrals: every cycle in [0, sampled_end) took
    // an end-of-cycle sample (the loop samples before it breaks, so a break
    // at cycle k includes k).
    const std::uint64_t sampled_end = cycle < horizon ? cycle + 1 : horizon;
    for (std::size_t vi = 0; vi < vc.size(); ++vi) {
      occ_integral[vi] += std::uint64_t{vc[vi].count} *
                          (sampled_end - occ_since[vi]);
    }
    sink->set_run_cycles(stats.cycles);
    // Channel ids are assigned in registration (= injection) order, which
    // is deterministic but not meaningful to a reader. Export the link
    // table sorted by (src, dst) so telemetry is canonical -- the same
    // order the store-and-forward simulator emits.
    std::vector<std::uint32_t> by_ends(num_chans);
    std::iota(by_ends.begin(), by_ends.end(), 0u);
    std::sort(by_ends.begin(), by_ends.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return chan_ends[a] < chan_ends[b];
              });
    std::uint64_t forwarded_total = 0;
    sink->links().reserve(sink->links().size() + num_chans);
    for (std::uint32_t c : by_ends) {
      obs::LinkStats link;
      link.src = chan_ends[c].first;
      link.dst = chan_ends[c].second;
      link.forwarded = link_forwarded[c];
      link.vc_occupancy.assign(occ_integral.begin() + std::size_t{c} * vcs,
                               occ_integral.begin() + std::size_t{c + 1} * vcs);
      forwarded_total += link.forwarded;
      sink->links().push_back(std::move(link));
    }
    obs::MetricsRegistry& reg = sink->metrics();
    reg.counter("wormhole.injected").inc(stats.packets.injected());
    reg.counter("wormhole.delivered").inc(stats.packets.delivered());
    reg.counter("wormhole.dropped").inc(stats.packets.dropped());
    reg.counter("wormhole.flits_forwarded").inc(forwarded_total);
    reg.counter("wormhole.flit_cycles_buffered").inc(flit_cycles_buffered);
    reg.counter("wormhole.misroutes").inc(stats.misroutes);
    reg.counter("wormhole.escape_hops").inc(stats.escape_hops);
    reg.counter("wormhole.cycles").inc(stats.cycles);
    reg.gauge("wormhole.deadlocked").set(stats.deadlocked ? 1.0 : 0.0);
    reg.gauge("wormhole.unroutable")
        .set(static_cast<double>(stats.unroutable));
    reg.histogram("wormhole.packet_latency")
        .merge(stats.packets.latency_histogram());
  }
  return stats;
}

}  // namespace hbnet
