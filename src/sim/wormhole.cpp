#include "sim/wormhole.hpp"

#include <algorithm>
#include <deque>
#include <random>
#include <stdexcept>
#include <unordered_map>

#include "obs/trace.hpp"

namespace hbnet {
namespace {

struct Flit {
  std::uint32_t pkt;
  std::uint16_t index;      // 0 = head, F-1 = tail
  std::uint16_t hop;        // channel position in the packet's path
  std::uint64_t last_move;  // cycle stamp to avoid double moves
};

struct VcState {
  std::deque<Flit> buf;
  std::int64_t owner = -1;  // packet id holding this VC, -1 = free
};

struct ChanState {
  std::vector<VcState> vc;
  unsigned rr = 0;  // round-robin arbiter position
};

struct PktState {
  std::vector<std::uint32_t> path;
  std::vector<std::uint8_t> cls;  // VC class per hop
  std::uint64_t injected_at = 0;
  std::uint16_t next_flit = 0;  // flits not yet streamed into hop 0
  bool measured = false;
};

/// Per-hop VC classes from the ring structure: direction of a hop is the
/// +-1 movement of (id % arity); a direction reversal starts a new
/// monotone segment; crossing the wrap edge bumps the within-segment
/// dateline bit. Non-ring hops (cube edges: level unchanged) keep the
/// current class and do not end a segment.
std::vector<std::uint8_t> hop_classes(const std::vector<std::uint32_t>& path,
                                      unsigned arity, VcPolicy policy) {
  std::vector<std::uint8_t> cls(path.size() - 1, 0);
  if (policy == VcPolicy::kAnyFree || arity == 0) return cls;
  int last_dir = 0;       // 0 = none yet
  unsigned segment = 0;   // monotone segment index (0..2 for our routers)
  unsigned wrapped = 0;   // crossed wrap within this segment
  for (std::size_t h = 0; h + 1 < path.size(); ++h) {
    std::uint32_t lu = path[h] % arity, lv = path[h + 1] % arity;
    int dir = 0;
    bool wrap = false;
    if (lv == (lu + 1) % arity && lu != lv) {
      dir = 1;
      wrap = (lu == arity - 1);
    } else if (lu == (lv + 1) % arity && lu != lv) {
      dir = -1;
      wrap = (lu == 0);
    }
    if (dir != 0) {
      if (last_dir != 0 && dir != last_dir) {
        ++segment;
        wrapped = 0;
      }
      last_dir = dir;
    }
    if (policy == VcPolicy::kDateline) {
      cls[h] = static_cast<std::uint8_t>(wrapped ? 1 : 0);
      if (wrap) wrapped = 1;
    } else {  // kSegmentDateline
      unsigned seg_capped = segment > 2 ? 2 : segment;
      cls[h] = static_cast<std::uint8_t>(2 * seg_capped + wrapped);
      if (wrap) wrapped = 1;
    }
  }
  return cls;
}

}  // namespace

WormholeStats run_wormhole(const SimTopology& topo,
                           const WormholeConfig& config, unsigned ring_arity,
                           obs::Sink* sink) {
  if (config.vcs < 1 || config.flits_per_packet < 1 ||
      config.buffer_depth < 1) {
    throw std::invalid_argument("run_wormhole: degenerate config");
  }
  if (config.vcs < vc_classes(config.policy)) {
    throw std::invalid_argument(
        "run_wormhole: policy needs at least vc_classes(policy) VCs");
  }
  const std::uint32_t n = topo.num_nodes();
  const std::uint16_t flits =
      static_cast<std::uint16_t>(config.flits_per_packet);
  const unsigned classes = vc_classes(config.policy);

  WormholeStats stats;
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  TrafficGenerator traffic(config.pattern, n,
                           config.seed ^ 0x5bf03635dcd66425ull);

  std::unordered_map<std::uint64_t, std::uint32_t> chan_id;
  std::vector<ChanState> chans;
  // Channel endpoints and per-link telemetry, parallel to `chans`. The
  // endpoint list is maintained unconditionally (touched only on channel
  // creation); the telemetry vectors are only grown/updated under a sink.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> chan_ends;
  std::vector<std::uint64_t> link_forwarded;
  std::vector<std::vector<std::uint64_t>> link_vc_occ;
  auto channel = [&](std::uint32_t u, std::uint32_t v) -> std::uint32_t {
    std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    auto [it, fresh] = chan_id.emplace(
        key, static_cast<std::uint32_t>(chans.size()));
    if (fresh) {
      chans.emplace_back();
      chans.back().vc.resize(config.vcs);
      chan_ends.emplace_back(u, v);
      if (sink != nullptr) {
        link_forwarded.push_back(0);
        link_vc_occ.emplace_back(config.vcs, 0);
      }
    }
    return it->second;
  };

  std::vector<PktState> pkts;
  std::vector<std::deque<std::uint32_t>> inject_q(n);
  std::uint64_t in_flight = 0;
  std::uint64_t stall = 0;

  // Observability accumulators. `buffered` counts flits currently sitting
  // in VC buffers (incremented on buffer entry, decremented on final-hop
  // exit); integrating it per cycle gives total buffered flit-cycles, which
  // the per-link occupancy sweep must sum to exactly (tested).
  std::uint64_t buffered = 0;
  std::uint64_t flit_cycles_buffered = 0;
  obs::TimeSeries* inject_ts = nullptr;
  obs::TimeSeries* deliver_ts = nullptr;
  if (sink != nullptr) {
    const std::uint64_t bucket =
        std::max<std::uint64_t>(1, (config.warmup_cycles +
                                    config.measure_cycles) / 64);
    inject_ts = &sink->time_series("wormhole.injected", bucket);
    deliver_ts = &sink->time_series("wormhole.delivered", bucket);
  }

  // VC q belongs to class q * classes / vcs (classes partition the range).
  auto vc_allowed = [&](const PktState& p, std::uint16_t hop, unsigned q) {
    unsigned cls_of_q = q * classes / config.vcs;
    return cls_of_q == p.cls[hop];
  };

  const std::uint64_t horizon =
      config.warmup_cycles + config.measure_cycles + config.drain_cycles;
  std::uint64_t cycle = 0;
  for (; cycle < horizon; ++cycle) {
    bool injecting = cycle < config.warmup_cycles + config.measure_cycles;
    bool measuring = cycle >= config.warmup_cycles && injecting;
    std::uint64_t moves = 0;

    // 1. Packet creation.
    if (injecting) {
      for (std::uint32_t src = 0; src < n; ++src) {
        if (coin(rng) >= config.injection_rate) continue;
        std::uint32_t dst = traffic.destination(src);
        PktState p;
        p.path = topo.route(src, dst);
        if (p.path.size() < 2) continue;
        p.injected_at = cycle;
        p.measured = measuring;
        p.cls = hop_classes(p.path, ring_arity, config.policy);
        // Register every channel of the path now so `chans` never grows
        // during the advance loop (which holds references into it).
        for (std::size_t h = 0; h + 1 < p.path.size(); ++h) {
          (void)channel(p.path[h], p.path[h + 1]);
        }
        if (p.measured) stats.packets.record_injection();
        if (inject_ts != nullptr) inject_ts->bump(cycle);
        pkts.push_back(std::move(p));
        inject_q[src].push_back(static_cast<std::uint32_t>(pkts.size() - 1));
        ++in_flight;
      }
    }

    // 2. Source streaming: head packet per node feeds hop-0 channel.
    for (std::uint32_t src = 0; src < n; ++src) {
      if (inject_q[src].empty()) continue;
      std::uint32_t pid = inject_q[src].front();
      PktState& p = pkts[pid];
      std::uint32_t c0 = channel(p.path[0], p.path[1]);
      ChanState& ch = chans[c0];
      int vc_idx = -1;
      for (unsigned q = 0; q < config.vcs; ++q) {
        if (ch.vc[q].owner == pid) {
          vc_idx = static_cast<int>(q);
          break;
        }
      }
      if (vc_idx < 0 && p.next_flit == 0) {
        for (unsigned q = 0; q < config.vcs; ++q) {
          if (ch.vc[q].owner == -1 && vc_allowed(p, 0, q)) {
            ch.vc[q].owner = pid;
            vc_idx = static_cast<int>(q);
            break;
          }
        }
      }
      if (vc_idx >= 0 && p.next_flit < flits &&
          ch.vc[vc_idx].buf.size() < config.buffer_depth) {
        ch.vc[vc_idx].buf.push_back({pid, p.next_flit, 0, cycle});
        ++p.next_flit;
        ++moves;
        ++buffered;
        if (p.next_flit == flits) inject_q[src].pop_front();
      }
    }

    // 3. Channel advance: one flit per physical channel per cycle.
    for (std::uint32_t c = 0; c < chans.size(); ++c) {
      ChanState& ch = chans[c];
      for (unsigned probe = 0; probe < config.vcs; ++probe) {
        unsigned q = (ch.rr + probe) % config.vcs;
        VcState& vc = ch.vc[q];
        if (vc.buf.empty()) continue;
        Flit f = vc.buf.front();
        if (f.last_move == cycle) continue;  // arrived this very cycle
        PktState& p = pkts[f.pkt];
        const bool last_hop = (f.hop + 2u == p.path.size());
        if (last_hop) {
          vc.buf.pop_front();
          --buffered;
          if (sink != nullptr) ++link_forwarded[c];
          if (f.index + 1u == flits) {
            vc.owner = -1;
            --in_flight;
            if (p.measured) {
              stats.packets.record_delivery(cycle + 1 - p.injected_at,
                                            p.path.size() - 1);
            }
            if (deliver_ts != nullptr) deliver_ts->bump(cycle);
            HBNET_TRACE_COMPLETE(sink, "packet", "pkt", 0, p.path.front(),
                                 p.injected_at, cycle + 1 - p.injected_at,
                                 {{"pkt", f.pkt},
                                  {"src", p.path.front()},
                                  {"dst", p.path.back()},
                                  {"hops", p.path.size() - 1}});
          }
          ++moves;
          ch.rr = (q + 1) % config.vcs;
          break;
        }
        std::uint32_t c2 = channel(p.path[f.hop + 1], p.path[f.hop + 2]);
        ChanState& next = chans[c2];
        int vc2 = -1;
        for (unsigned r = 0; r < config.vcs; ++r) {
          if (next.vc[r].owner == f.pkt) {
            vc2 = static_cast<int>(r);
            break;
          }
        }
        if (vc2 < 0 && f.index == 0) {
          for (unsigned r = 0; r < config.vcs; ++r) {
            if (next.vc[r].owner == -1 &&
                vc_allowed(p, static_cast<std::uint16_t>(f.hop + 1), r)) {
              next.vc[r].owner = f.pkt;
              vc2 = static_cast<int>(r);
              break;
            }
          }
        }
        if (vc2 < 0 || next.vc[vc2].buf.size() >= config.buffer_depth) {
          continue;  // blocked; try another VC of this channel
        }
        vc.buf.pop_front();
        if (sink != nullptr) ++link_forwarded[c];
        if (f.index + 1u == flits) vc.owner = -1;  // tail frees upstream VC
        next.vc[vc2].buf.push_back(
            {f.pkt, f.index, static_cast<std::uint16_t>(f.hop + 1), cycle});
        ++moves;
        ch.rr = (q + 1) % config.vcs;
        break;
      }
    }

    // 4. Telemetry sweep (only under a sink): integrate buffered flits per
    // link/VC, and sample the in-flight counter into the trace.
    if (sink != nullptr) {
      flit_cycles_buffered += buffered;
      for (std::uint32_t c = 0; c < chans.size(); ++c) {
        for (unsigned q = 0; q < config.vcs; ++q) {
          link_vc_occ[c][q] += chans[c].vc[q].buf.size();
        }
      }
      HBNET_TRACE_COUNTER(sink, "in_flight_flits", 0, cycle, buffered);
    }

    // 5. Termination and deadlock detection.
    if (!injecting && in_flight == 0) break;
    if (moves == 0 && in_flight > 0) {
      if (++stall > config.deadlock_patience) {
        stats.deadlocked = true;
        HBNET_TRACE_INSTANT(sink, "wormhole", "deadlock", 0, 0, cycle,
                            {{"in_flight", in_flight}});
        break;
      }
    } else {
      stall = 0;
    }
  }
  stats.cycles = cycle;

  // End-of-run export: link table, registry counters, latency histogram.
  if (sink != nullptr) {
    sink->set_run_cycles(stats.cycles);
    std::uint64_t forwarded_total = 0;
    sink->links().reserve(sink->links().size() + chans.size());
    for (std::uint32_t c = 0; c < chans.size(); ++c) {
      obs::LinkStats link;
      link.src = chan_ends[c].first;
      link.dst = chan_ends[c].second;
      link.forwarded = link_forwarded[c];
      link.vc_occupancy = link_vc_occ[c];
      forwarded_total += link.forwarded;
      sink->links().push_back(std::move(link));
    }
    obs::MetricsRegistry& reg = sink->metrics();
    reg.counter("wormhole.injected").inc(stats.packets.injected());
    reg.counter("wormhole.delivered").inc(stats.packets.delivered());
    reg.counter("wormhole.flits_forwarded").inc(forwarded_total);
    reg.counter("wormhole.flit_cycles_buffered").inc(flit_cycles_buffered);
    reg.counter("wormhole.cycles").inc(stats.cycles);
    reg.gauge("wormhole.deadlocked").set(stats.deadlocked ? 1.0 : 0.0);
    reg.histogram("wormhole.packet_latency")
        .merge(stats.packets.latency_histogram());
  }
  return stats;
}

}  // namespace hbnet
