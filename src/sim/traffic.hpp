// Synthetic traffic patterns for the packet simulator.
//
// The paper's motivation is multiprocessor interconnection; since it has no
// workload traces (1998, analytical evaluation only), we use the standard
// synthetic patterns of the interconnection-network literature: uniform
// random, bit-complement, bit-reversal, transpose-like shuffle, and hotspot.
#pragma once

#include <cstdint>
#include <random>
#include <string>

namespace hbnet {

enum class TrafficPattern {
  kUniform,        // destination chosen uniformly at random
  kBitComplement,  // dst = ~src (mod N)
  kBitReversal,    // dst = reverse of src's bits (within ceil(log2 N))
  kShuffle,        // dst = rotate-left of src's bits
  kHotspot,        // 10%: node 0; else uniform
};

[[nodiscard]] const char* to_string(TrafficPattern p);

/// Destination generator over a dense id space [0, num_nodes).
class TrafficGenerator {
 public:
  TrafficGenerator(TrafficPattern pattern, std::uint32_t num_nodes,
                   std::uint64_t seed);

  /// Destination for a packet injected at `src` (never returns src).
  [[nodiscard]] std::uint32_t destination(std::uint32_t src);

  [[nodiscard]] TrafficPattern pattern() const { return pattern_; }

 private:
  [[nodiscard]] std::uint32_t permuted(std::uint32_t src) const;

  TrafficPattern pattern_;
  std::uint32_t num_nodes_;
  unsigned bits_;
  std::mt19937_64 rng_;
  std::uniform_int_distribution<std::uint32_t> pick_;
  std::uniform_real_distribution<double> coin_{0.0, 1.0};
};

}  // namespace hbnet
