// Synthetic traffic patterns for the packet simulator.
//
// The paper's motivation is multiprocessor interconnection; since it has no
// workload traces (1998, analytical evaluation only), we use the standard
// synthetic patterns of the interconnection-network literature: uniform
// random, bit-complement, bit-reversal, transpose-like shuffle, and hotspot.
#pragma once

#include <cstdint>
#include <random>
#include <string>

namespace hbnet {

enum class TrafficPattern {
  kUniform,        // destination chosen uniformly at random
  kBitComplement,  // dst = ~src (mod N)
  kBitReversal,    // dst = reverse of src's bits (within ceil(log2 N))
  kShuffle,        // dst = rotate-left of src's bits
  kHotspot,        // 10%: node 0; else uniform
};

[[nodiscard]] const char* to_string(TrafficPattern p);

/// The deterministic permutation behind the bit-permutation patterns
/// (complement/reversal/shuffle) over a `bits`-bit id space; identity for
/// the random patterns. Shared by both traffic generators and pinned
/// directly in tests.
[[nodiscard]] std::uint32_t permute_bits(TrafficPattern pattern, unsigned bits,
                                         std::uint32_t src);

/// SplitMix64 finalizer: the stateless traffic primitive. Pure function --
/// statistically independent outputs for distinct inputs, identical outputs
/// for identical inputs on every platform.
[[nodiscard]] constexpr std::uint64_t traffic_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Counter-based (stateless) traffic: every decision is a pure hash of
/// (seed, cycle, node, stream), so the sharded engine can evaluate nodes in
/// any order -- across shards, threads, or reruns -- and draw identical
/// traffic. Contrast TrafficGenerator below, whose mt19937_64 stream makes
/// draws order-dependent (fine for the serial engine, fatal for sharding).
///
/// Random draws differ from TrafficGenerator's at equal seeds (different
/// RNG); the bit-permutation patterns and the dst==src avoidance rule
/// (bump to (dst+1) % N) are identical.
class StatelessTraffic {
 public:
  /// `rate` is the per-node per-cycle injection probability in [0, 1].
  StatelessTraffic(TrafficPattern pattern, std::uint32_t num_nodes,
                   std::uint64_t seed, double rate);

  /// View of one cycle with the cycle-level hash precomputed: a draw costs
  /// a single finalizer application. The sharded engine's injection scan
  /// evaluates every node every cycle, so hoisting the inner mix out of
  /// that loop matters (the compiler cannot prove it loop-invariant across
  /// the engine's stores).
  class CycleView {
   public:
    /// Does `src` inject a packet this cycle?
    [[nodiscard]] bool injects(std::uint32_t src) const {
      return (draw(src, 0) >> 11) < t_->rate_bits_;
    }

    /// Destination for a packet injected at `src` this cycle (never src).
    [[nodiscard]] std::uint32_t destination(std::uint32_t src) const {
      return t_->destination_with_key(key_, src);
    }

    /// Uniform node draw on an independent stream -- the sharded engine's
    /// Valiant intermediate (may equal src or the destination; callers
    /// handle the degenerate cases).
    [[nodiscard]] std::uint32_t intermediate(std::uint32_t src) const {
      return static_cast<std::uint32_t>(draw(src, 3) % t_->num_nodes_);
    }

   private:
    friend class StatelessTraffic;
    CycleView(const StatelessTraffic* t, std::uint64_t key)
        : t_(t), key_(key) {}

    [[nodiscard]] std::uint64_t draw(std::uint32_t src,
                                     unsigned stream) const {
      return traffic_mix(key_ ^ ((std::uint64_t{src} << 2) | stream));
    }

    const StatelessTraffic* t_;
    std::uint64_t key_;  // traffic_mix(seed + cycle)
  };

  [[nodiscard]] CycleView at(std::uint64_t cycle) const {
    return CycleView(this, traffic_mix(seed_ + cycle));
  }

  /// Does `src` inject a packet this cycle?
  [[nodiscard]] bool injects(std::uint64_t cycle, std::uint32_t src) const {
    return at(cycle).injects(src);
  }

  /// Destination for a packet injected at `src` this cycle (never src).
  [[nodiscard]] std::uint32_t destination(std::uint64_t cycle,
                                          std::uint32_t src) const {
    return at(cycle).destination(src);
  }

  /// Valiant intermediate draw; see CycleView::intermediate.
  [[nodiscard]] std::uint32_t intermediate(std::uint64_t cycle,
                                           std::uint32_t src) const {
    return at(cycle).intermediate(src);
  }

  [[nodiscard]] TrafficPattern pattern() const { return pattern_; }

 private:
  [[nodiscard]] std::uint32_t destination_with_key(std::uint64_t key,
                                                   std::uint32_t src) const;

  TrafficPattern pattern_;
  std::uint32_t num_nodes_;
  unsigned bits_;
  std::uint64_t seed_;
  std::uint64_t rate_bits_;  // rate as a 53-bit threshold (exact compare)
};

/// Destination generator over a dense id space [0, num_nodes).
class TrafficGenerator {
 public:
  TrafficGenerator(TrafficPattern pattern, std::uint32_t num_nodes,
                   std::uint64_t seed);

  /// Destination for a packet injected at `src` (never returns src).
  [[nodiscard]] std::uint32_t destination(std::uint32_t src);

  [[nodiscard]] TrafficPattern pattern() const { return pattern_; }

 private:
  [[nodiscard]] std::uint32_t permuted(std::uint32_t src) const;

  TrafficPattern pattern_;
  std::uint32_t num_nodes_;
  unsigned bits_;
  std::mt19937_64 rng_;
  std::uniform_int_distribution<std::uint32_t> pick_;
  std::uniform_real_distribution<double> coin_{0.0, 1.0};
};

}  // namespace hbnet
