#include "sim/traffic.hpp"

namespace hbnet {

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniform:
      return "uniform";
    case TrafficPattern::kBitComplement:
      return "bit-complement";
    case TrafficPattern::kBitReversal:
      return "bit-reversal";
    case TrafficPattern::kShuffle:
      return "shuffle";
    case TrafficPattern::kHotspot:
      return "hotspot";
  }
  return "?";
}

TrafficGenerator::TrafficGenerator(TrafficPattern pattern,
                                   std::uint32_t num_nodes, std::uint64_t seed)
    : pattern_(pattern),
      num_nodes_(num_nodes),
      bits_(0),
      rng_(seed),
      pick_(0, num_nodes - 1) {
  while ((std::uint64_t{1} << bits_) < num_nodes_) ++bits_;
}

std::uint32_t TrafficGenerator::permuted(std::uint32_t src) const {
  switch (pattern_) {
    case TrafficPattern::kBitComplement:
      return (~src) & ((bits_ >= 32 ? ~0u : (1u << bits_) - 1));
    case TrafficPattern::kBitReversal: {
      std::uint32_t out = 0;
      for (unsigned i = 0; i < bits_; ++i) {
        if ((src >> i) & 1u) out |= 1u << (bits_ - 1 - i);
      }
      return out;
    }
    case TrafficPattern::kShuffle:
      return ((src << 1) | (src >> (bits_ - 1))) & ((1u << bits_) - 1);
    default:
      return src;
  }
}

std::uint32_t TrafficGenerator::destination(std::uint32_t src) {
  std::uint32_t dst;
  switch (pattern_) {
    case TrafficPattern::kUniform:
      dst = pick_(rng_);
      break;
    case TrafficPattern::kHotspot:
      dst = (coin_(rng_) < 0.10) ? 0u : pick_(rng_);
      break;
    default:
      dst = permuted(src) % num_nodes_;
      break;
  }
  if (dst == src) dst = (dst + 1) % num_nodes_;
  return dst;
}

}  // namespace hbnet
