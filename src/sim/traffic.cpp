#include "sim/traffic.hpp"

namespace hbnet {

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniform:
      return "uniform";
    case TrafficPattern::kBitComplement:
      return "bit-complement";
    case TrafficPattern::kBitReversal:
      return "bit-reversal";
    case TrafficPattern::kShuffle:
      return "shuffle";
    case TrafficPattern::kHotspot:
      return "hotspot";
  }
  return "?";
}

TrafficGenerator::TrafficGenerator(TrafficPattern pattern,
                                   std::uint32_t num_nodes, std::uint64_t seed)
    : pattern_(pattern),
      num_nodes_(num_nodes),
      bits_(0),
      rng_(seed),
      pick_(0, num_nodes - 1) {
  while ((std::uint64_t{1} << bits_) < num_nodes_) ++bits_;
}

std::uint32_t permute_bits(TrafficPattern pattern, unsigned bits,
                           std::uint32_t src) {
  switch (pattern) {
    case TrafficPattern::kBitComplement:
      return (~src) & ((bits >= 32 ? ~0u : (1u << bits) - 1));
    case TrafficPattern::kBitReversal: {
      std::uint32_t out = 0;
      for (unsigned i = 0; i < bits; ++i) {
        if ((src >> i) & 1u) out |= 1u << (bits - 1 - i);
      }
      return out;
    }
    case TrafficPattern::kShuffle:
      return ((src << 1) | (src >> (bits - 1))) & ((1u << bits) - 1);
    default:
      return src;
  }
}

std::uint32_t TrafficGenerator::permuted(std::uint32_t src) const {
  return permute_bits(pattern_, bits_, src);
}

StatelessTraffic::StatelessTraffic(TrafficPattern pattern,
                                   std::uint32_t num_nodes, std::uint64_t seed,
                                   double rate)
    : pattern_(pattern), num_nodes_(num_nodes), bits_(0), seed_(seed) {
  while ((std::uint64_t{1} << bits_) < num_nodes_) ++bits_;
  // Clamp to [0, 1] and quantize to 53 bits so injects() is a pure integer
  // compare (no float rounding ambiguity in the hot loop).
  const double r = rate < 0.0 ? 0.0 : rate > 1.0 ? 1.0 : rate;
  rate_bits_ = static_cast<std::uint64_t>(r * 9007199254740992.0);  // 2^53
}

std::uint32_t StatelessTraffic::destination_with_key(std::uint64_t key,
                                                     std::uint32_t src) const {
  const auto draw = [key, src](unsigned stream) {
    return traffic_mix(key ^ ((std::uint64_t{src} << 2) | stream));
  };
  std::uint32_t dst;
  switch (pattern_) {
    case TrafficPattern::kUniform:
      dst = static_cast<std::uint32_t>(draw(1) % num_nodes_);
      break;
    case TrafficPattern::kHotspot:
      // Exactly 10% of draws hit node 0 (the serial generator flips a
      // double-precision coin; one in ten is the same load).
      dst = draw(2) % 10 == 0
                ? 0u
                : static_cast<std::uint32_t>(draw(1) % num_nodes_);
      break;
    default:
      dst = permute_bits(pattern_, bits_, src) % num_nodes_;
      break;
  }
  if (dst == src) dst = (dst + 1) % num_nodes_;
  return dst;
}

std::uint32_t TrafficGenerator::destination(std::uint32_t src) {
  std::uint32_t dst;
  switch (pattern_) {
    case TrafficPattern::kUniform:
      dst = pick_(rng_);
      break;
    case TrafficPattern::kHotspot:
      dst = (coin_(rng_) < 0.10) ? 0u : pick_(rng_);
      break;
    default:
      dst = permuted(src) % num_nodes_;
      break;
  }
  if (dst == src) dst = (dst + 1) % num_nodes_;
  return dst;
}

}  // namespace hbnet
