#include "sim/topology.hpp"

#include <stdexcept>

#include "topology/ccc.hpp"

namespace hbnet {
namespace {

class HypercubeSim final : public SimTopology {
 public:
  explicit HypercubeSim(unsigned m) : cube_(m) {}
  [[nodiscard]] std::string name() const override {
    return "H(" + std::to_string(cube_.dimension()) + ")";
  }
  [[nodiscard]] std::uint32_t num_nodes() const override {
    return cube_.num_nodes();
  }
  [[nodiscard]] unsigned degree_hint() const override {
    return cube_.degree();
  }
  [[nodiscard]] std::vector<std::uint32_t> route(
      std::uint32_t src, std::uint32_t dst) const override {
    return cube_.route(src, dst);
  }

 private:
  Hypercube cube_;
};

class ButterflySim final : public SimTopology {
 public:
  explicit ButterflySim(unsigned n) : bfly_(n) {}
  [[nodiscard]] std::string name() const override {
    return "B(" + std::to_string(bfly_.dimension()) + ")";
  }
  [[nodiscard]] std::uint32_t num_nodes() const override {
    return bfly_.num_nodes();
  }
  [[nodiscard]] unsigned degree_hint() const override { return 4; }
  [[nodiscard]] std::vector<std::uint32_t> route(
      std::uint32_t src, std::uint32_t dst) const override {
    std::vector<std::uint32_t> out;
    for (BflyNode v : bfly_.route_nodes(bfly_.node_at(src),
                                        bfly_.node_at(dst))) {
      out.push_back(bfly_.index_of(v));
    }
    return out;
  }

 private:
  Butterfly bfly_;
};

class CccSim final : public SimTopology {
 public:
  explicit CccSim(unsigned n) : ccc_(n) {}
  [[nodiscard]] std::string name() const override {
    return "CCC(" + std::to_string(ccc_.dimension()) + ")";
  }
  [[nodiscard]] std::uint32_t num_nodes() const override {
    return ccc_.num_nodes();
  }
  [[nodiscard]] unsigned degree_hint() const override { return 3; }
  [[nodiscard]] std::vector<std::uint32_t> route(
      std::uint32_t src, std::uint32_t dst) const override {
    std::vector<std::uint32_t> out;
    for (CccNode v :
         ccc_.route_nodes(ccc_.node_at(src), ccc_.node_at(dst))) {
      out.push_back(ccc_.index_of(v));
    }
    return out;
  }

 private:
  CubeConnectedCycles ccc_;
};

class HyperDeBruijnSim final : public SimTopology {
 public:
  HyperDeBruijnSim(unsigned m, unsigned n) : hd_(m, n) {}
  [[nodiscard]] std::string name() const override {
    return "HD(" + std::to_string(hd_.cube_dimension()) + "," +
           std::to_string(hd_.db_dimension()) + ")";
  }
  [[nodiscard]] std::uint32_t num_nodes() const override {
    return hd_.num_nodes();
  }
  [[nodiscard]] unsigned degree_hint() const override {
    return hd_.max_degree();
  }
  [[nodiscard]] std::vector<std::uint32_t> route(
      std::uint32_t src, std::uint32_t dst) const override {
    std::vector<std::uint32_t> out;
    std::vector<HdNode> path = hd_.route(hd_.node_at(src), hd_.node_at(dst));
    for (const HdNode& v : path) out.push_back(hd_.index_of(v));
    // The de Bruijn phase may produce a walk that revisits vertices; the
    // simulator only needs consecutive adjacency, which holds.
    return out;
  }

 private:
  HyperDeBruijn hd_;
};

class HyperButterflySim final : public SimTopology {
 public:
  HyperButterflySim(unsigned m, unsigned n) : hb_(m, n) {
    if (hb_.num_nodes() > (HbIndex{1} << 31)) {
      throw std::length_error("HyperButterflySim: instance too large");
    }
  }
  [[nodiscard]] std::string name() const override {
    return "HB(" + std::to_string(hb_.cube_dimension()) + "," +
           std::to_string(hb_.butterfly_dimension()) + ")";
  }
  [[nodiscard]] std::uint32_t num_nodes() const override {
    return static_cast<std::uint32_t>(hb_.num_nodes());
  }
  [[nodiscard]] unsigned degree_hint() const override { return hb_.degree(); }
  [[nodiscard]] std::vector<std::uint32_t> route(
      std::uint32_t src, std::uint32_t dst) const override {
    std::vector<std::uint32_t> out;
    for (const HbNode& v : hb_.route(hb_.node_at(src), hb_.node_at(dst))) {
      out.push_back(static_cast<std::uint32_t>(hb_.index_of(v)));
    }
    return out;
  }
  [[nodiscard]] bool has_fault_routing() const override { return true; }
  [[nodiscard]] std::vector<std::uint32_t> neighbors(
      std::uint32_t v) const override {
    std::vector<std::uint32_t> out;
    for (const HbNode& w : hb_.neighbors(hb_.node_at(v))) {
      out.push_back(static_cast<std::uint32_t>(hb_.index_of(w)));
    }
    return out;
  }
  using SimTopology::route_avoiding;
  [[nodiscard]] SimFaultRoute route_avoiding(
      std::uint32_t src, std::uint32_t dst, const std::vector<char>& faulty,
      const std::vector<std::uint32_t>& banned_first_hops) const override {
    HbFaultSet faults;
    for (std::uint32_t id = 0; id < faulty.size(); ++id) {
      if (faulty[id]) faults.add(hb_, hb_.node_at(id));
    }
    FaultRouteResult r;
    if (banned_first_hops.empty()) {
      r = route_around_faults(hb_, hb_.node_at(src), hb_.node_at(dst), faults,
                              /*bfs_fallback=*/false);
    } else {
      std::vector<HbNode> banned;
      banned.reserve(banned_first_hops.size());
      for (std::uint32_t id : banned_first_hops) {
        banned.push_back(hb_.node_at(id));
      }
      r = route_around_faults(hb_, hb_.node_at(src), hb_.node_at(dst), faults,
                              banned);
    }
    SimFaultRoute out;
    out.status = r.ok() ? FaultRouteStatus::kOk : FaultRouteStatus::kNoPath;
    out.path.reserve(r.path.size());
    for (const HbNode& v : r.path) {
      out.path.push_back(static_cast<std::uint32_t>(hb_.index_of(v)));
    }
    return out;
  }

 private:
  HyperButterfly hb_;
};

}  // namespace

std::unique_ptr<SimTopology> make_hypercube_sim(unsigned m) {
  return std::make_unique<HypercubeSim>(m);
}
std::unique_ptr<SimTopology> make_butterfly_sim(unsigned n) {
  return std::make_unique<ButterflySim>(n);
}
std::unique_ptr<SimTopology> make_ccc_sim(unsigned n) {
  return std::make_unique<CccSim>(n);
}
std::unique_ptr<SimTopology> make_hyper_debruijn_sim(unsigned m, unsigned n) {
  return std::make_unique<HyperDeBruijnSim>(m, n);
}
std::unique_ptr<SimTopology> make_hyper_butterfly_sim(unsigned m, unsigned n) {
  return std::make_unique<HyperButterflySim>(m, n);
}

}  // namespace hbnet
