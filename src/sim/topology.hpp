// Simulator-facing topology adapters.
//
// The packet simulator (sim/simulator.hpp) is topology agnostic: it source-
// routes packets over any SimTopology. Adapters wrap the four networks the
// paper compares (hypercube, wrapped butterfly, hyper-deBruijn,
// hyper-butterfly) and expose each network's *own* routing algorithm -- not
// BFS -- so the simulation exercises the algorithms the paper describes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fault_routing.hpp"
#include "core/hyper_butterfly.hpp"
#include "topology/butterfly.hpp"
#include "topology/debruijn.hpp"
#include "topology/hyper_debruijn.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {

/// Outcome of a SimTopology::route_avoiding request. The simulators must
/// distinguish "dropped by design: the faults really cut off this pair"
/// (kNoPath) from "misconfigured run: the adapter has no fault-tolerant
/// algorithm at all" (kUnsupported) — the two outcomes are counted under
/// distinct metrics (sim.dropped_unroutable vs sim.dropped_unsupported).
enum class FaultRouteStatus {
  kOk,           // a path on the fault-free subnetwork was found
  kNoPath,       // the adapter has fault routing, but no route survives
  kUnsupported,  // the adapter has no fault-tolerant algorithm
};

/// Result of SimTopology::route_avoiding.
struct SimFaultRoute {
  FaultRouteStatus status = FaultRouteStatus::kUnsupported;
  std::vector<std::uint32_t> path;  // non-empty iff status == kOk
  [[nodiscard]] bool ok() const { return status == FaultRouteStatus::kOk; }
};

/// Abstract network as seen by the simulator. Node ids are dense.
class SimTopology {
 public:
  virtual ~SimTopology() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::uint32_t num_nodes() const = 0;
  [[nodiscard]] virtual unsigned degree_hint() const = 0;
  /// Full route src -> dst (inclusive) using the network's own algorithm.
  [[nodiscard]] virtual std::vector<std::uint32_t> route(
      std::uint32_t src, std::uint32_t dst) const = 0;
  /// True when the adapter implements a fault-tolerant routing algorithm,
  /// i.e. route_avoiding can return something other than kUnsupported.
  [[nodiscard]] virtual bool has_fault_routing() const { return false; }
  /// Neighbors of `v` in the network's deterministic (generator/dimension)
  /// order; empty when the adapter does not expose adjacency. Used to derive
  /// link fault sets and by the online wormhole router's tests.
  [[nodiscard]] virtual std::vector<std::uint32_t> neighbors(
      std::uint32_t v) const {
    (void)v;
    return {};
  }
  /// Route src -> dst avoiding every node marked in `faulty` (indexed by
  /// node id; may be shorter than num_nodes() — unmarked means healthy) and
  /// never leaving src through an edge src -> b for b in `banned_first_hops`
  /// (faulted outgoing *links* an online router has discovered). Default:
  /// kUnsupported.
  [[nodiscard]] virtual SimFaultRoute route_avoiding(
      std::uint32_t src, std::uint32_t dst, const std::vector<char>& faulty,
      const std::vector<std::uint32_t>& banned_first_hops) const {
    (void)src;
    (void)dst;
    (void)faulty;
    (void)banned_first_hops;
    return {};
  }
  /// Convenience overload without link bans.
  [[nodiscard]] SimFaultRoute route_avoiding(
      std::uint32_t src, std::uint32_t dst,
      const std::vector<char>& faulty) const {
    return route_avoiding(src, dst, faulty, {});
  }
};

/// Hypercube H_m with greedy bit-correction routing.
[[nodiscard]] std::unique_ptr<SimTopology> make_hypercube_sim(unsigned m);

/// Wrapped butterfly B_n with exact covering-walk routing.
[[nodiscard]] std::unique_ptr<SimTopology> make_butterfly_sim(unsigned n);

/// Cube-connected cycles CCC(n) with exact visiting-walk routing
/// (extended baseline, degree 3).
[[nodiscard]] std::unique_ptr<SimTopology> make_ccc_sim(unsigned n);

/// Hyper-deBruijn HD(m,n) with dimension-ordered cube+shift routing.
[[nodiscard]] std::unique_ptr<SimTopology> make_hyper_debruijn_sim(unsigned m,
                                                                   unsigned n);

/// Hyper-butterfly HB(m,n) with the paper's two-phase optimal routing and
/// Theorem-5-based fault-tolerant routing.
[[nodiscard]] std::unique_ptr<SimTopology> make_hyper_butterfly_sim(
    unsigned m, unsigned n);

}  // namespace hbnet
