// Simulator-facing topology adapters.
//
// The packet simulator (sim/simulator.hpp) is topology agnostic: it source-
// routes packets over any SimTopology. Adapters wrap the four networks the
// paper compares (hypercube, wrapped butterfly, hyper-deBruijn,
// hyper-butterfly) and expose each network's *own* routing algorithm -- not
// BFS -- so the simulation exercises the algorithms the paper describes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fault_routing.hpp"
#include "core/hyper_butterfly.hpp"
#include "topology/butterfly.hpp"
#include "topology/debruijn.hpp"
#include "topology/hyper_debruijn.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {

/// Abstract network as seen by the simulator. Node ids are dense.
class SimTopology {
 public:
  virtual ~SimTopology() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::uint32_t num_nodes() const = 0;
  [[nodiscard]] virtual unsigned degree_hint() const = 0;
  /// Full route src -> dst (inclusive) using the network's own algorithm.
  [[nodiscard]] virtual std::vector<std::uint32_t> route(
      std::uint32_t src, std::uint32_t dst) const = 0;
  /// Route avoiding faulty nodes; empty when the adapter has no
  /// fault-tolerant algorithm or no path survives. `faulty` is indexed by
  /// node id. Default: no support.
  [[nodiscard]] virtual std::vector<std::uint32_t> route_avoiding(
      std::uint32_t src, std::uint32_t dst,
      const std::vector<char>& faulty) const {
    (void)src;
    (void)dst;
    (void)faulty;
    return {};
  }
};

/// Hypercube H_m with greedy bit-correction routing.
[[nodiscard]] std::unique_ptr<SimTopology> make_hypercube_sim(unsigned m);

/// Wrapped butterfly B_n with exact covering-walk routing.
[[nodiscard]] std::unique_ptr<SimTopology> make_butterfly_sim(unsigned n);

/// Cube-connected cycles CCC(n) with exact visiting-walk routing
/// (extended baseline, degree 3).
[[nodiscard]] std::unique_ptr<SimTopology> make_ccc_sim(unsigned n);

/// Hyper-deBruijn HD(m,n) with dimension-ordered cube+shift routing.
[[nodiscard]] std::unique_ptr<SimTopology> make_hyper_debruijn_sim(unsigned m,
                                                                   unsigned n);

/// Hyper-butterfly HB(m,n) with the paper's two-phase optimal routing and
/// Theorem-5-based fault-tolerant routing.
[[nodiscard]] std::unique_ptr<SimTopology> make_hyper_butterfly_sim(
    unsigned m, unsigned n);

}  // namespace hbnet
