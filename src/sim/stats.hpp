// Latency / throughput statistics for the packet simulator.
//
// Backed by an obs::Histogram: memory is fixed regardless of how many
// packets a run delivers, and percentile queries are O(buckets) instead of
// the former sort-the-sample-vector O(n log n). Values in the histogram's
// linear range (< 256 cycles) keep exact percentiles; above that the error
// is bounded by the histogram's sub-bucket resolution (< 1%).
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace hbnet {

/// Streaming summary of packet latencies plus delivery counters.
class SimStats {
 public:
  void record_delivery(std::uint64_t latency, std::uint64_t hops) {
    latency_.record(latency);
    total_hops_ += hops;
  }
  void record_injection() { ++injected_; }
  void record_drop() { ++dropped_; }

  /// Folds another shard's stats into this one. Histogram bucket counts and
  /// the integer counters are commutative sums, and the histogram's double
  /// sum stays exact (integer-valued latencies, totals far below 2^53), so
  /// merging per-shard stats in shard order yields the same result for
  /// every shard count.
  void merge(const SimStats& other) {
    latency_.merge(other.latency_);
    total_hops_ += other.total_hops_;
    injected_ += other.injected_;
    dropped_ += other.dropped_;
  }

  [[nodiscard]] std::uint64_t delivered() const { return latency_.count(); }
  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  [[nodiscard]] double mean_latency() const { return latency_.mean(); }
  [[nodiscard]] double mean_hops() const;
  /// q in [0,1]; e.g. 0.99 for the tail.
  [[nodiscard]] std::uint64_t latency_percentile(double q) const {
    return latency_.percentile(q);
  }
  [[nodiscard]] std::uint64_t max_latency() const { return latency_.max(); }

  /// The full latency distribution (for export / merging into a registry).
  [[nodiscard]] const obs::Histogram& latency_histogram() const {
    return latency_;
  }

  /// delivered / (cycles * nodes): accepted throughput in packets/node/cycle.
  [[nodiscard]] double throughput(std::uint64_t cycles,
                                  std::uint32_t nodes) const {
    return cycles == 0 || nodes == 0
               ? 0.0
               : static_cast<double>(delivered()) /
                     (static_cast<double>(cycles) * nodes);
  }

  [[nodiscard]] std::string summary() const;

 private:
  obs::Histogram latency_;
  std::uint64_t total_hops_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace hbnet
