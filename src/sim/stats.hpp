// Latency / throughput statistics for the packet simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hbnet {

/// Streaming summary of packet latencies plus delivery counters.
class SimStats {
 public:
  void record_delivery(std::uint64_t latency, std::uint64_t hops) {
    latencies_.push_back(latency);
    total_hops_ += hops;
  }
  void record_injection() { ++injected_; }
  void record_drop() { ++dropped_; }

  [[nodiscard]] std::uint64_t delivered() const { return latencies_.size(); }
  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  [[nodiscard]] double mean_latency() const;
  [[nodiscard]] double mean_hops() const;
  /// q in [0,1]; e.g. 0.99 for the tail.
  [[nodiscard]] std::uint64_t latency_percentile(double q) const;
  [[nodiscard]] std::uint64_t max_latency() const;

  /// delivered / (cycles * nodes): accepted throughput in packets/node/cycle.
  [[nodiscard]] double throughput(std::uint64_t cycles,
                                  std::uint32_t nodes) const {
    return cycles == 0 || nodes == 0
               ? 0.0
               : static_cast<double>(delivered()) /
                     (static_cast<double>(cycles) * nodes);
  }

  [[nodiscard]] std::string summary() const;

 private:
  mutable std::vector<std::uint64_t> latencies_;
  std::uint64_t total_hops_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace hbnet
