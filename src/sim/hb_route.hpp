// Implicit per-hop routing for HB(m,n) (the sharded engine's datapath).
//
// The serial store-and-forward simulator materializes every packet's full
// route as a std::vector of node ids -- a heap allocation per packet and
// O(diameter) memory each. But HB routes have closed form: the cube phase is
// LSB-first bit correction of the cube-word difference, and the butterfly
// phase is a minimum covering walk, which plan_covering_walk() returns as
// three monotone runs in a few bytes. HbRouteState carries exactly that --
// the remaining cube diff, the remaining word diff, and the three run
// lengths -- so a packet is a fixed-size POD and each hop is O(1) bit math.
//
// The emitted hop sequence is identical to
// HyperButterfly::route_generators(): cube bits LSB-first, then the greedy
// first-crossing flip discipline of Butterfly::route() over the planned
// walk. Tests replay both against each other exhaustively on small
// instances.
#pragma once

#include <bit>
#include <cstdint>

#include "check/check.hpp"
#include "core/hyper_butterfly.hpp"

namespace hbnet::sim {

/// Remaining route of an in-flight packet, 12 bytes, trivially copyable.
struct HbRouteState {
  std::uint32_t cube_diff = 0;  // cube bits still to flip (LSB first)
  std::uint32_t word_diff = 0;  // butterfly word bits still to fix
  std::uint8_t run[3] = {0, 0, 0};  // steps left in each monotone run
  std::int8_t dir0 = 1;             // direction of run 0 (+1 = g-direction)

  [[nodiscard]] bool done() const {
    return cube_diff == 0 && (run[0] | run[1] | run[2]) == 0;
  }
  [[nodiscard]] unsigned hops_remaining() const {
    return static_cast<unsigned>(std::popcount(cube_diff)) + run[0] + run[1] +
           run[2];
  }
};

/// One hop of an implicit route: the next vertex and the generator taken,
/// as an index into HyperButterfly::generators() order (h_0..h_{m-1}, g, f,
/// g^-1, f^-1) -- the sharded engine's per-link telemetry key.
struct HbHop {
  HbNode next{};
  std::uint8_t gen = 0;
};

/// Stateless route planner/advancer for one HB(m,n) instance. Methods are
/// const and thread-safe; all mutable route state lives in HbRouteState.
class HbImplicitRouter {
 public:
  explicit HbImplicitRouter(const HyperButterfly& hb)
      : m_(hb.cube_dimension()), n_(hb.butterfly_dimension()) {}

  /// Plans src -> dst. O(n) once per packet (vs O(1) per hop after).
  [[nodiscard]] HbRouteState plan(HbNode src, HbNode dst) const;

  /// Advances one hop from `cur` (which must match the state's progress);
  /// updates `st` in place. Precondition: !st.done().
  ///
  /// Defined here (and division-free: the level wraps are compares, not
  /// modulo) because the sharded engine executes this once per packet move
  /// -- it is the single hottest function in the library.
  [[nodiscard]] HbHop next_hop(HbNode cur, HbRouteState& st) const {
    HBNET_DCHECK_MSG(!st.done(), "next_hop past end of route");
    if (st.cube_diff != 0) {
      const auto bit = static_cast<unsigned>(std::countr_zero(st.cube_diff));
      st.cube_diff &= st.cube_diff - 1;
      return {{cur.cube ^ (CubeWord{1} << bit), cur.bfly},
              static_cast<std::uint8_t>(bit)};
    }
    unsigned i = 0;
    while (st.run[i] == 0) ++i;
    --st.run[i];
    const int dir = i == 1 ? -int{st.dir0} : int{st.dir0};
    const std::uint32_t lvl = cur.bfly.level;
    const std::uint32_t down = lvl == 0 ? n_ - 1 : lvl - 1;
    // Same greedy discipline as Butterfly::route(): an upward step crosses
    // cycle edge cur.level, a downward step crosses (cur.level - 1) mod n;
    // take the flipping generator on the first crossing of a required edge.
    const std::uint32_t edge = dir > 0 ? lvl : down;
    const bool flip = (st.word_diff >> edge) & 1;
    if (flip) st.word_diff ^= 1u << edge;
    const std::uint32_t word =
        flip ? cur.bfly.word ^ (1u << edge) : cur.bfly.word;
    const std::uint32_t level =
        dir > 0 ? (lvl + 1 == n_ ? 0 : lvl + 1) : down;
    // Generator index: g = m, f = m+1, g^-1 = m+2, f^-1 = m+3.
    const unsigned gen = m_ + (dir > 0 ? 0u : 2u) + (flip ? 1u : 0u);
    return {{cur.cube, {word, level}}, static_cast<std::uint8_t>(gen)};
  }

 private:
  unsigned m_, n_;
};

}  // namespace hbnet::sim
