// Sharded synchronous store-and-forward engine for HB(m,n) -- the
// million-node datapath.
//
// The serial simulator (simulator.hpp) walks one std::deque<Packet> per node
// and heap-allocates each packet's full source route; fine up to ~10^5
// nodes, hopeless at 10^6+. This engine rebuilds that datapath around three
// ideas:
//
//  * Implicit routing (sim/hb_route.hpp): HB routes have closed form, so a
//    packet carries a 12-byte HbRouteState instead of a vector of node ids
//    and each hop is O(1) bit math -- no per-packet allocation, ever.
//  * Per-shard dense arenas: nodes are partitioned into contiguous shards
//    (sync::ShardPlan); each shard keeps its resident packets in a dense
//    double-buffered vector swept sequentially once per cycle -- per-node
//    FIFO order is the subsequence order, so there are no queue structures
//    at all. Serviced moves park in per-node slots and a second pass over a
//    bitset frontier emits them in ascending node order (the canonical
//    order that makes results independent of the shard count).
//  * Synchronous rounds over sync::Exchange: every cycle is compute-local
//    (inject + sweep, all moves batched into per-(from,to)-shard cells)
//    -> barrier -> deliver (drain cells, sender shards ascending), the same
//    discipline as the distsim protocol engine.
//
// Determinism contract: traffic is counter-based (StatelessTraffic -- a
// pure hash of seed/cycle/node), shards are contiguous, and delivery order
// is the global ascending-sender-id order, so stats, metrics JSON, and
// links CSV are byte-identical for every --threads x --shards combination
// (tools/test_sim_determinism.sh pins 1/2/8 x 1/4). Results are NOT
// bit-equal to the serial engine at equal seeds: the serial engine's
// order-dependent mt19937_64 draws cannot survive sharding, which is the
// point of the stateless generator.
//
// Scope: fault-free runs under kNative/kValiant routing on a HyperButterfly
// instance. Fault injection and non-HB topologies stay on the serial
// engine, whose route_avoiding machinery is inherently source-routed.
#pragma once

#include <cstdint>

#include "core/hyper_butterfly.hpp"
#include "obs/sink.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hbnet {

namespace obs {
class ProgressBoard;
}

/// Runs `config` on HB `hb` over `shards` contiguous node shards using
/// `threads` pool workers (0 = one shard per resolved worker / the --threads
/// default). Reports through `sink` and `progress` exactly like
/// run_simulation: same metric names, link table, node occupancy integrals,
/// and time series; per-packet trace spans are not emitted (at this scale
/// they would dwarf the run).
[[nodiscard]] SimStats run_simulation_sharded(
    const HyperButterfly& hb, const SimConfig& config, unsigned shards = 0,
    unsigned threads = 0, obs::Sink* sink = nullptr,
    obs::ProgressBoard* progress = nullptr);

}  // namespace hbnet
