#include "sim/sharded.hpp"

#include <algorithm>
#include <bit>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "distsim/sync_engine.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "par/pool.hpp"
#include "sim/hb_route.hpp"
#include "sim/traffic.hpp"

namespace hbnet {
namespace {

/// A resident packet: one fixed-size arena slot, no owned memory. The
/// current position is stored pre-split as (wc = (cube << n) | word, level)
/// so the hot sweep derives the dense id with one multiply (wc * n + level)
/// and never divides.
struct ShardPacket {
  std::uint32_t wc = 0;           // (cube << n) | word of the current node
  std::uint32_t src = 0;          // dense id (telemetry only)
  std::uint32_t dst = 0;          // final destination (Valiant re-plan)
  std::uint32_t injected_at = 0;
  sim::HbRouteState route;
  std::uint16_t hops = 0;
  std::uint8_t level = 0;         // butterfly level of the current node
  std::uint8_t flags = 0;
};
constexpr std::uint8_t kMeasured = 1;
constexpr std::uint8_t kRevisit = 2;  // Valiant phase 1: re-plan on arrival

static_assert(sizeof(ShardPacket) == 32, "arena slots should stay compact");

/// Per-shard state. Only the owning worker touches it between barriers.
///
/// Queues are not linked lists: each shard keeps its resident packets in a
/// dense, double-buffered arena (`cur` / `nxt`) ordered oldest-first, with
/// same-cycle arrivals in ascending-sender order (the Exchange guarantee).
/// A node's FIFO is the subsequence of its packets in that order, so one
/// sequential sweep of `cur` services every queue: the first service_rate
/// packets seen for a node are forwarded, the rest are keepers appended to
/// `nxt`. Idle nodes cost nothing -- the sweep touches packets, not nodes.
///
/// Forwarded packets are parked in per-node `slots` and emitted to the
/// Exchange in a second pass that walks the `frontier` bitset of serviced
/// nodes in ascending order. That restores the canonical ascending-sender
/// emission order no matter where the sweep encountered each packet, which
/// is what keeps results byte-identical across every shard count.
struct Shard {
  std::uint32_t begin = 0, end = 0;  // global node range [begin, end)

  std::vector<ShardPacket> cur, nxt;  // double-buffered resident arena
  // Bitset over local nodes serviced this cycle (cleared lazily by the
  // emission pass, so drain-phase cycles with few packets stay O(packets)).
  std::vector<std::uint64_t> frontier;
  std::vector<std::uint8_t> served;   // services consumed this cycle
  std::vector<std::uint8_t> moved;    // move slots filled this cycle
  std::vector<ShardPacket> slots;     // local_count * service_rate

  SimStats stats;
  std::uint64_t delivered = 0;  // cumulative (progress display)

  // Telemetry accumulators (allocated only when a sink is attached).
  std::vector<std::uint64_t> gen_moves;  // local node x generator
  std::vector<std::uint64_t> inject_buckets, deliver_buckets;
  std::vector<std::uint64_t> node_occ;   // per local node queue integral

  [[nodiscard]] std::uint32_t local_count() const { return end - begin; }
};

}  // namespace

SimStats run_simulation_sharded(const HyperButterfly& hb,
                                const SimConfig& config, unsigned shards,
                                unsigned threads, obs::Sink* sink,
                                obs::ProgressBoard* progress) {
  const HbIndex num_nodes64 = hb.num_nodes();
  HBNET_CHECK_MSG(num_nodes64 < 0xffffffffu,
                  "run_simulation_sharded: instance exceeds 32-bit id space");
  const auto n = static_cast<std::uint32_t>(num_nodes64);
  const std::uint64_t horizon =
      config.warmup_cycles + config.measure_cycles + config.drain_cycles;
  HBNET_CHECK_MSG(horizon < 0xffffffffu,
                  "run_simulation_sharded: horizon exceeds 32-bit cycles");
  HBNET_CHECK_MSG(config.service_rate >= 1 && config.service_rate <= 255,
                  "run_simulation_sharded: service_rate must be in [1, 255]");
  const std::uint32_t sr = config.service_rate;

  const unsigned bdim = hb.butterfly_dimension();
  const std::uint32_t word_mask = (std::uint32_t{1} << bdim) - 1;

  const unsigned workers = par::resolve_threads(threads);
  // Auto-sharding targets ~16K nodes per shard: small enough that a shard's
  // resident packets, service arrays and move slots stay cache-resident for
  // the whole compute phase (the exchange then acts as a radix partition of
  // the cross-shard traffic), while never dropping below one shard per
  // worker.
  const unsigned num_shards =
      shards != 0 ? shards
                  : std::max<unsigned>(workers, (n + 16383) / 16384);
  const sync::ShardPlan plan(n, num_shards);
  const unsigned degree = hb.degree();
  const sim::HbImplicitRouter router(hb);
  const StatelessTraffic traffic(config.pattern, n,
                                 config.seed ^ 0x9e3779b97f4a7c15ull,
                                 config.injection_rate);
  const bool valiant = config.routing == RoutingMode::kValiant;

  const std::uint64_t ts_bucket = std::max<std::uint64_t>(
      1, (config.warmup_cycles + config.measure_cycles) / 64);
  const std::size_t ts_size =
      static_cast<std::size_t>(horizon / ts_bucket) + 1;

  std::vector<Shard> shard(plan.shards());
  for (unsigned s = 0; s < plan.shards(); ++s) {
    Shard& sh = shard[s];
    sh.begin = static_cast<std::uint32_t>(plan.begin(s));
    sh.end = static_cast<std::uint32_t>(plan.end(s));
    const std::uint32_t local = sh.local_count();
    sh.frontier.assign((local + 63) / 64, 0);
    sh.served.assign(local, 0);
    sh.moved.assign(local, 0);
    sh.slots.resize(static_cast<std::size_t>(local) * sr);
    if (sink != nullptr) {
      sh.gen_moves.assign(static_cast<std::size_t>(local) * degree, 0);
      sh.inject_buckets.assign(ts_size, 0);
      sh.deliver_buckets.assign(ts_size, 0);
      sh.node_occ.assign(local, 0);
    }
  }

  sync::Exchange<ShardPacket> exchange(plan.shards());
  par::ThreadPool pool(workers);

  obs::ProgressBoard::Slot* prog_cycle = nullptr;
  obs::ProgressBoard::Slot* prog_in_flight = nullptr;
  obs::ProgressBoard::Slot* prog_delivered = nullptr;
  if (progress != nullptr) {
    prog_cycle = &progress->slot("sim.cycle");
    prog_in_flight = &progress->slot("sim.in_flight_packets");
    prog_delivered = &progress->slot("sim.delivered");
  }

  // Plans the route for a fresh packet at `src` -> `dst_id`, applying
  // Valiant's random-intermediate phase when configured.
  auto plan_packet = [&](const StatelessTraffic::CycleView& tv,
                         std::uint32_t src_id, HbNode src,
                         std::uint32_t dst_id, ShardPacket& pkt) {
    pkt.src = src_id;
    pkt.dst = dst_id;
    if (valiant) {
      const std::uint32_t w = tv.intermediate(src_id);
      if (w != src_id && w != dst_id) {
        pkt.route = router.plan(src, hb.node_at(w));
        pkt.flags |= kRevisit;
        return;
      }
    }
    pkt.route = router.plan(src, hb.node_at(dst_id));
  };

  std::uint64_t cycle = 0;
  std::uint64_t global_in_flight = 0;
  for (; cycle < horizon; ++cycle) {
    const bool injecting =
        cycle < config.warmup_cycles + config.measure_cycles;
    const bool measuring = cycle >= config.warmup_cycles && injecting;
    const std::size_t ts_idx = static_cast<std::size_t>(cycle / ts_bucket);
    const StatelessTraffic::CycleView tv = traffic.at(cycle);

    // Compute phase: inject, sweep, emit -- all moves into the exchange.
    pool.parallel_for_chunks(plan.shards(), 1, [&](std::uint64_t s_begin,
                                                   std::uint64_t s_end) {
      for (std::uint64_t si = s_begin; si < s_end; ++si) {
        const auto s = static_cast<unsigned>(si);
        Shard& sh = shard[s];

        // Injection: fresh packets append behind every resident one, in
        // ascending node order. Node coordinates advance incrementally --
        // the only divisions are these two, once per shard per cycle.
        if (injecting) {
          std::uint32_t wc = sh.begin / bdim;
          std::uint32_t level = sh.begin % bdim;
          for (std::uint32_t id = sh.begin; id < sh.end; ++id) {
            if (tv.injects(id)) {
              ShardPacket pkt;
              pkt.wc = wc;
              pkt.level = static_cast<std::uint8_t>(level);
              pkt.injected_at = static_cast<std::uint32_t>(cycle);
              if (measuring) {
                pkt.flags |= kMeasured;
                sh.stats.record_injection();
              }
              if (!sh.inject_buckets.empty()) ++sh.inject_buckets[ts_idx];
              const HbNode src{static_cast<CubeWord>(wc >> bdim),
                               {wc & word_mask, level}};
              plan_packet(tv, id, src, tv.destination(id), pkt);
              sh.cur.push_back(pkt);
            }
            if (++level == bdim) {
              level = 0;
              ++wc;
            }
          }
        }

        // Sweep: one sequential pass over the resident arena. Per-node
        // FIFO order == arena order, so the first service_rate packets
        // seen for a node are serviced; the rest become keepers.
        for (ShardPacket& pkt : sh.cur) {
          const std::uint32_t local = pkt.wc * bdim + pkt.level - sh.begin;
          if (sh.served[local] >= sr) {
            if (!sh.node_occ.empty()) ++sh.node_occ[local];
            sh.nxt.push_back(pkt);
            continue;
          }
          if (sh.served[local] == 0) {
            sh.frontier[local >> 6] |= std::uint64_t{1} << (local & 63);
          }
          ++sh.served[local];

          const HbNode cur_node{static_cast<CubeWord>(pkt.wc >> bdim),
                                {pkt.wc & word_mask, pkt.level}};
          if (pkt.route.done()) {
            // Valiant intermediate reached last cycle: aim at the real
            // destination now (same queueing delay the serial engine's
            // concatenated path incurs).
            HBNET_DCHECK_MSG((pkt.flags & kRevisit) != 0, "stuck packet");
            pkt.flags &= static_cast<std::uint8_t>(~kRevisit);
            pkt.route = router.plan(cur_node, hb.node_at(pkt.dst));
          }
          const sim::HbHop hop = router.next_hop(cur_node, pkt.route);
          ++pkt.hops;
          if (!sh.gen_moves.empty()) {
            ++sh.gen_moves[static_cast<std::size_t>(local) * degree +
                           hop.gen];
          }
          if (pkt.route.done() && (pkt.flags & kRevisit) == 0) {
            // Delivered at the hop target.
            if (pkt.flags & kMeasured) {
              sh.stats.record_delivery(cycle + 1 - pkt.injected_at,
                                       pkt.hops);
            }
            ++sh.delivered;
            if (!sh.deliver_buckets.empty()) ++sh.deliver_buckets[ts_idx];
          } else {
            pkt.wc = static_cast<std::uint32_t>(
                (hop.next.cube << bdim) | hop.next.bfly.word);
            pkt.level = static_cast<std::uint8_t>(hop.next.bfly.level);
            sh.slots[static_cast<std::size_t>(local) * sr +
                     sh.moved[local]++] = pkt;
          }
        }
        sh.cur.clear();

        // Emission: walk the serviced frontier in ascending node order and
        // push parked moves to the exchange. This -- not the sweep order --
        // fixes the delivery order, so it is shard-count independent.
        // Resets the per-cycle service state as it goes (O(serviced)).
        for (std::size_t w = 0; w < sh.frontier.size(); ++w) {
          std::uint64_t bits = sh.frontier[w];
          if (bits == 0) continue;
          sh.frontier[w] = 0;
          while (bits != 0) {
            const auto local = static_cast<std::uint32_t>(
                (w << 6) + static_cast<unsigned>(std::countr_zero(bits)));
            bits &= bits - 1;
            const unsigned nmoves = sh.moved[local];
            sh.served[local] = 0;
            sh.moved[local] = 0;
            for (unsigned k = 0; k < nmoves; ++k) {
              ShardPacket& p =
                  sh.slots[static_cast<std::size_t>(local) * sr + k];
              const std::uint32_t to = p.wc * bdim + p.level;
              exchange.push(s, plan.shard_of(to), p);
            }
          }
        }
      }
    });
    // parallel_for_chunks returning IS the barrier: every shard has pushed
    // all of its moves.

    // Deliver phase: keepers become the new resident prefix, then exchange
    // columns drain behind them (sender shards ascending => global
    // ascending sender order).
    pool.parallel_for_chunks(plan.shards(), 1, [&](std::uint64_t s_begin,
                                                   std::uint64_t s_end) {
      for (std::uint64_t si = s_begin; si < s_end; ++si) {
        const auto s = static_cast<unsigned>(si);
        Shard& sh = shard[s];
        std::swap(sh.cur, sh.nxt);
        exchange.drain(s, [&sh, bdim](ShardPacket& p) {
          if (!sh.node_occ.empty()) {
            ++sh.node_occ[p.wc * bdim + p.level - sh.begin];
          }
          sh.cur.push_back(p);
        });
      }
    });

    global_in_flight = 0;
    std::uint64_t delivered_total = 0;
    for (const Shard& sh : shard) {
      global_in_flight += sh.cur.size();
      delivered_total += sh.delivered;
    }
    if (prog_cycle != nullptr) {
      prog_cycle->set(cycle);
      prog_in_flight->set(global_in_flight);
      prog_delivered->set(delivered_total);
    }
    HBNET_TRACE_COUNTER(sink, "in_flight_packets", 0, cycle, global_in_flight);
    if (!injecting && global_in_flight == 0) break;
  }

  // Merge phase (serial, shard-ascending => shard-count independent).
  SimStats stats;
  for (const Shard& sh : shard) stats.merge(sh.stats);

  if (sink != nullptr) {
    const std::uint64_t cycles = std::min(cycle + 1, horizon);
    sink->set_run_cycles(cycles);

    obs::TimeSeries& inject_ts = sink->time_series("sim.injected", ts_bucket);
    obs::TimeSeries& deliver_ts = sink->time_series("sim.delivered", ts_bucket);
    for (const Shard& sh : shard) {
      for (std::size_t b = 0; b < ts_size; ++b) {
        if (sh.inject_buckets[b] != 0) {
          inject_ts.bump(b * ts_bucket, sh.inject_buckets[b]);
        }
        if (sh.deliver_buckets[b] != 0) {
          deliver_ts.bump(b * ts_bucket, sh.deliver_buckets[b]);
        }
      }
    }

    // Link table: expand (node, generator) tallies into directed (src, dst)
    // records, canonically ordered by the packed key exactly like the
    // serial engine's export.
    const std::vector<HbGen> gens = hb.generators();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> by_key;
    for (const Shard& sh : shard) {
      for (std::uint32_t local = 0; local < sh.local_count(); ++local) {
        const HbNode u = hb.node_at(sh.begin + local);
        for (unsigned gi = 0; gi < degree; ++gi) {
          const std::uint64_t count =
              sh.gen_moves[static_cast<std::size_t>(local) * degree + gi];
          if (count == 0) continue;
          const auto dst =
              static_cast<std::uint32_t>(hb.index_of(hb.apply(u, gens[gi])));
          by_key.emplace_back(
              (static_cast<std::uint64_t>(sh.begin + local) << 32) | dst,
              count);
        }
      }
    }
    std::sort(by_key.begin(), by_key.end());
    std::uint64_t moves_total = 0;
    sink->links().reserve(sink->links().size() + by_key.size());
    for (const auto& [key, count] : by_key) {
      obs::LinkStats link;
      link.src = static_cast<std::uint32_t>(key >> 32);
      link.dst = static_cast<std::uint32_t>(key & 0xffffffffu);
      link.forwarded = count;
      moves_total += count;
      sink->links().push_back(std::move(link));
    }

    std::vector<std::uint64_t> node_occ(n, 0);
    for (const Shard& sh : shard) {
      std::copy(sh.node_occ.begin(), sh.node_occ.end(),
                node_occ.begin() + sh.begin);
    }
    sink->node_occupancy() = std::move(node_occ);

    obs::MetricsRegistry& reg = sink->metrics();
    reg.counter("sim.injected").inc(stats.injected());
    reg.counter("sim.delivered").inc(stats.delivered());
    reg.counter("sim.dropped").inc(stats.dropped());
    reg.counter("sim.packet_moves").inc(moves_total);
    reg.counter("sim.cycles").inc(cycles);
    reg.histogram("sim.packet_latency").merge(stats.latency_histogram());
  }
  return stats;
}

}  // namespace hbnet
