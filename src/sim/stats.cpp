#include "sim/stats.hpp"

#include <algorithm>
#include <sstream>

namespace hbnet {

double SimStats::mean_latency() const {
  if (latencies_.empty()) return 0.0;
  long double sum = 0;
  for (std::uint64_t l : latencies_) sum += l;
  return static_cast<double>(sum / latencies_.size());
}

double SimStats::mean_hops() const {
  return latencies_.empty()
             ? 0.0
             : static_cast<double>(total_hops_) /
                   static_cast<double>(latencies_.size());
}

std::uint64_t SimStats::latency_percentile(double q) const {
  if (latencies_.empty()) return 0;
  std::sort(latencies_.begin(), latencies_.end());
  double pos = q * static_cast<double>(latencies_.size() - 1);
  return latencies_[static_cast<std::size_t>(pos)];
}

std::uint64_t SimStats::max_latency() const {
  if (latencies_.empty()) return 0;
  return *std::max_element(latencies_.begin(), latencies_.end());
}

std::string SimStats::summary() const {
  std::ostringstream os;
  os << "delivered=" << delivered() << " injected=" << injected()
     << " dropped=" << dropped() << " mean_lat=" << mean_latency()
     << " p99=" << latency_percentile(0.99) << " mean_hops=" << mean_hops();
  return os.str();
}

}  // namespace hbnet
