#include "sim/stats.hpp"

#include <sstream>

namespace hbnet {

double SimStats::mean_hops() const {
  return delivered() == 0 ? 0.0
                          : static_cast<double>(total_hops_) /
                                static_cast<double>(delivered());
}

std::string SimStats::summary() const {
  std::ostringstream os;
  os << "delivered=" << delivered() << " injected=" << injected()
     << " dropped=" << dropped() << " mean_lat=" << mean_latency()
     << " p99=" << latency_percentile(0.99) << " mean_hops=" << mean_hops();
  return os.str();
}

}  // namespace hbnet
