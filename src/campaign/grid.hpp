// Checked numeric parsing for untrusted text: CLI argv and campaign grid
// lists.
//
// std::stoul/std::stod silently accept partial tokens ("4x" parses as 4)
// and throw std::invalid_argument/std::out_of_range on garbage -- exactly
// the failure mode that let `hbnet_cli analyze 4 x` die on an uncaught
// exception. Every helper here parses the ENTIRE token, rejects empty
// input, range-checks the result, and reports failure as std::nullopt --
// never by throwing -- so callers can print usage and exit nonzero.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace hbnet::campaign {

/// Non-negative decimal integer occupying the whole token.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text);

/// parse_u64 additionally range-checked to unsigned.
[[nodiscard]] std::optional<unsigned> parse_unsigned(std::string_view text);

/// Finite floating-point value occupying the whole token.
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

/// Comma-separated list of parse_unsigned tokens ("0,2,5"); nullopt on an
/// empty list or any malformed element.
[[nodiscard]] std::optional<std::vector<unsigned>> parse_unsigned_list(
    std::string_view text);

/// Comma-separated list of parse_double tokens ("0.02,0.05").
[[nodiscard]] std::optional<std::vector<double>> parse_double_list(
    std::string_view text);

}  // namespace hbnet::campaign
