#include "campaign/grid.hpp"

#include <charconv>
#include <cmath>
#include <limits>

namespace hbnet::campaign {

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value, 10);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<unsigned> parse_unsigned(std::string_view text) {
  std::optional<std::uint64_t> v = parse_u64(text);
  if (!v || *v > std::numeric_limits<unsigned>::max()) return std::nullopt;
  return static_cast<unsigned>(*v);
}

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

namespace {

/// Splits on ',' and feeds every (possibly empty) piece to `parse_one`;
/// any failure or an empty overall list poisons the result.
template <typename T, typename ParseOne>
std::optional<std::vector<T>> parse_list(std::string_view text,
                                         ParseOne&& parse_one) {
  std::vector<T> out;
  while (true) {
    const std::size_t comma = text.find(',');
    const std::string_view piece = text.substr(0, comma);
    std::optional<T> v = parse_one(piece);
    if (!v) return std::nullopt;
    out.push_back(*v);
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
  }
  if (out.empty()) return std::nullopt;
  return out;
}

}  // namespace

std::optional<std::vector<unsigned>> parse_unsigned_list(
    std::string_view text) {
  return parse_list<unsigned>(text, parse_unsigned);
}

std::optional<std::vector<double>> parse_double_list(std::string_view text) {
  return parse_list<double>(text, parse_double);
}

}  // namespace hbnet::campaign
