#include "campaign/campaign.hpp"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/cuts.hpp"
#include "check/check.hpp"
#include "core/hyper_butterfly.hpp"
#include "graph/graph.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/progress.hpp"
#include "par/pool.hpp"
#include "sim/topology.hpp"

namespace hbnet::campaign {
namespace {

// Derivation streams of split_seed: one per independent random quantity a
// trial consumes, so adding a stream never perturbs the others.
constexpr std::uint64_t kStreamSimSeed = 0;
constexpr std::uint64_t kStreamFaults = 1;
constexpr std::uint64_t kStreamShuffle = 2;
constexpr std::uint64_t kStreamLinkPick = 3;

/// Latency histogram key the engine's simulator registers in its sink.
const char* latency_metric(Engine engine) {
  return engine == Engine::kWormhole ? "wormhole.packet_latency"
                                     : "sim.packet_latency";
}

/// Deterministic text form of an injection rate for label sets / CSV.
std::string format_rate(double rate) {
  std::ostringstream os;
  os << rate;
  return os.str();
}

obs::LabelSet cell_labels(const TrialSpec& spec) {
  return {{"model", fault_model_name(spec.model)},
          {"rate", format_rate(spec.rate)},
          {"faults", std::to_string(spec.fault_count)}};
}

std::vector<char> static_fault_mask(const CampaignConfig& config,
                                    const TrialSpec& spec,
                                    const std::vector<std::uint32_t>& ranking,
                                    std::uint32_t num_nodes) {
  if (spec.fault_count == 0) return {};
  std::vector<char> mask(num_nodes, 0);
  if (spec.model == FaultModel::kAdversarial) {
    HBNET_CHECK(spec.fault_count <= ranking.size());
    for (unsigned i = 0; i < spec.fault_count; ++i) mask[ranking[i]] = 1;
  } else {
    const std::uint64_t fault_seed =
        split_seed(config.seed, spec.index, kStreamFaults);
    for (std::uint32_t id :
         derived_fault_nodes(fault_seed, num_nodes, spec.fault_count)) {
      mask[id] = 1;
    }
  }
  return mask;
}

/// kEvents schedule: `fault_count` node deaths at cycles spread evenly
/// through the measurement window, nodes drawn from the fault stream.
std::vector<FaultEvent> fault_event_schedule(const CampaignConfig& config,
                                             const TrialSpec& spec,
                                             std::uint32_t num_nodes) {
  std::vector<FaultEvent> events;
  if (spec.fault_count == 0) return events;
  const std::uint64_t fault_seed =
      split_seed(config.seed, spec.index, kStreamFaults);
  const std::vector<std::uint32_t> nodes =
      derived_fault_nodes(fault_seed, num_nodes, spec.fault_count);
  events.reserve(nodes.size());
  for (unsigned e = 0; e < nodes.size(); ++e) {
    FaultEvent ev;
    ev.cycle = config.sim.warmup_cycles +
               ((e + 1) * config.sim.measure_cycles) / (spec.fault_count + 1);
    ev.node = nodes[e];
    events.push_back(ev);
  }
  return events;
}

void run_trial(const SimTopology& topo, const CampaignConfig& config,
               const TrialSpec& spec,
               const std::vector<std::uint32_t>& ranking, obs::Sink& sink,
               TrialResult& out) {
  out.spec = spec;
  if (config.engine == Engine::kWormhole) {
    WormholeConfig cfg = config.wormhole;
    cfg.injection_rate = spec.rate;
    cfg.seed = spec.seed;
    WormholeFaults wf;
    if (spec.fault_count > 0) {
      if (spec.model == FaultModel::kLinks) {
        wf.links = derived_fault_links(
            split_seed(config.seed, spec.index, kStreamFaults), topo,
            spec.fault_count);
      } else {
        wf.nodes = static_fault_mask(config, spec, ranking, topo.num_nodes());
      }
    }
    // The butterfly level coordinate is node id mod n (the dateline ring
    // arity), exactly as the CLI wormhole command passes it.
    const WormholeStats s =
        run_wormhole(topo, cfg, config.n, wf.any() ? &wf : nullptr, &sink);
    out.injected = s.packets.injected();
    out.delivered = s.packets.delivered();
    out.dropped = s.packets.dropped();
    out.deadlocked = s.deadlocked;
    return;
  }
  SimConfig cfg = config.sim;
  cfg.injection_rate = spec.rate;
  cfg.seed = spec.seed;
  SimStats s;
  if (spec.model == FaultModel::kEvents) {
    s = run_simulation_with_fault_events(
        topo, cfg, fault_event_schedule(config, spec, topo.num_nodes()),
        &sink);
  } else {
    s = run_simulation(
        topo, cfg, static_fault_mask(config, spec, ranking, topo.num_nodes()),
        &sink);
  }
  out.injected = s.injected();
  out.delivered = s.delivered();
  out.dropped = s.dropped();
}

}  // namespace

const char* fault_model_name(FaultModel model) {
  switch (model) {
    case FaultModel::kRandom:
      return "random";
    case FaultModel::kAdversarial:
      return "adversarial";
    case FaultModel::kEvents:
      return "events";
    case FaultModel::kLinks:
      return "links";
  }
  return "?";
}

std::optional<FaultModel> fault_model_from_name(std::string_view name) {
  if (name == "random") return FaultModel::kRandom;
  if (name == "adversarial") return FaultModel::kAdversarial;
  if (name == "events") return FaultModel::kEvents;
  if (name == "links") return FaultModel::kLinks;
  return std::nullopt;
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kStoreForward:
      return "sf";
    case Engine::kWormhole:
      return "wormhole";
  }
  return "?";
}

std::optional<Engine> engine_from_name(std::string_view name) {
  if (name == "sf") return Engine::kStoreForward;
  if (name == "wormhole") return Engine::kWormhole;
  return std::nullopt;
}

std::uint64_t split_seed(std::uint64_t seed, std::uint64_t index,
                         std::uint64_t stream) {
  // SplitMix64 finalizer over a linear combination of the coordinates; the
  // odd multipliers make (index, stream) -> input injective enough that
  // every trial/stream pair lands in its own statistical neighborhood.
  std::uint64_t z = seed;
  z += 0x9e3779b97f4a7c15ull * (index + 1);
  z += 0xbf58476d1ce4e5b9ull * (stream + 1);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z;
}

std::vector<std::uint32_t> derived_fault_nodes(std::uint64_t fault_seed,
                                               std::uint32_t num_nodes,
                                               unsigned count) {
  HBNET_DCHECK(count < num_nodes);
  std::vector<std::uint32_t> ids(num_nodes);
  std::iota(ids.begin(), ids.end(), 0u);
  for (unsigned e = 0; e < count; ++e) {
    const std::uint64_t r = split_seed(fault_seed, e, kStreamShuffle);
    const std::uint32_t j =
        e + static_cast<std::uint32_t>(r % (num_nodes - e));
    std::swap(ids[e], ids[j]);
  }
  ids.resize(count);
  return ids;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> derived_fault_links(
    std::uint64_t fault_seed, const SimTopology& topo, unsigned count) {
  // Distinct sources guarantee distinct directed links even when two picks
  // land on the same neighbor index.
  const std::vector<std::uint32_t> srcs =
      derived_fault_nodes(fault_seed, topo.num_nodes(), count);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> links;
  links.reserve(srcs.size());
  for (unsigned e = 0; e < srcs.size(); ++e) {
    const std::vector<std::uint32_t> nbrs = topo.neighbors(srcs[e]);
    HBNET_CHECK_MSG(!nbrs.empty(),
                    "derived_fault_links: topology exposes no adjacency");
    const std::uint64_t r = split_seed(fault_seed, e, kStreamLinkPick);
    links.emplace_back(srcs[e],
                       nbrs[static_cast<std::size_t>(r % nbrs.size())]);
  }
  return links;
}

std::vector<std::uint32_t> adversarial_fault_ranking(unsigned m, unsigned n) {
  const HyperButterfly hb(m, n);
  const Graph g = hb.to_graph();
  const NodeId num = g.num_nodes();

  // Candidate cuts mirror hb_dimension_cuts (analysis/cuts): one per cube
  // bit, one per butterfly word bit, and the level-half split. Keep the
  // narrowest *balanced* one -- the empirical bisection bottleneck.
  std::vector<char> best_side;
  std::uint64_t best_width = ~std::uint64_t{0};
  auto consider = [&](auto&& pred) {
    std::vector<char> side(num);
    NodeId ones = 0;
    for (NodeId v = 0; v < num; ++v) {
      side[v] = pred(hb.node_at(v)) ? 1 : 0;
      ones += side[v];
    }
    const bool balanced = (2 * static_cast<std::uint64_t>(ones) + 1 >= num) &&
                          (2 * static_cast<std::uint64_t>(ones) <= num + 1);
    if (!balanced) return;
    const std::uint64_t width = cut_width(g, side);
    if (width < best_width) {
      best_width = width;
      best_side = std::move(side);
    }
  };
  for (unsigned i = 0; i < hb.cube_dimension(); ++i) {
    consider([i](const HbNode& v) { return (v.cube >> i) & 1u; });
  }
  for (unsigned j = 0; j < hb.butterfly_dimension(); ++j) {
    consider([j](const HbNode& v) { return (v.bfly.word >> j) & 1u; });
  }
  const unsigned half = hb.butterfly_dimension() / 2;
  consider([half](const HbNode& v) { return v.bfly.level < half; });
  HBNET_CHECK_MSG(!best_side.empty(),
                  "adversarial_fault_ranking: no balanced dimension cut");

  // Rank nodes by how many crossing edges they touch; nodes clear of the
  // cut follow in id order so every prefix length below num_nodes is a
  // valid fault set.
  std::vector<std::uint64_t> crossing(num, 0);
  for (NodeId u = 0; u < num; ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v && best_side[u] != best_side[v]) {
        ++crossing[u];
        ++crossing[v];
      }
    }
  }
  std::vector<std::uint32_t> order(num);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (crossing[a] != crossing[b]) return crossing[a] > crossing[b];
              return a < b;
            });
  return order;
}

std::vector<TrialSpec> enumerate_trials(const CampaignConfig& config) {
  if (config.models.empty() || config.rates.empty() ||
      config.fault_counts.empty() || config.trials == 0) {
    throw std::invalid_argument(
        "campaign: models/rates/fault_counts/trials must all be non-empty");
  }
  for (double r : config.rates) {
    if (!(r > 0.0) || r > 1.0) {
      throw std::invalid_argument(
          "campaign: injection rates must lie in (0, 1]");
    }
  }
  if (config.engine == Engine::kWormhole) {
    // Caught here so the failure is a clean exception on the calling
    // thread; run_wormhole's own throw would escape a pool worker. The
    // validator derives the per-policy VC minimum from vc_classes(), so a
    // config whose vcs undercuts its policy (e.g. the WormholeConfig{}
    // default vcs = 2 with any dateline policy) gets a self-explanatory
    // message.
    if (const std::string err = validate_wormhole_config(config.wormhole);
        !err.empty()) {
      throw std::invalid_argument("campaign: " + err);
    }
  }
  // Validates m/n too (the constructor throws on an invalid instance).
  const HyperButterfly hb(config.m, config.n);
  bool any_faults = false;
  for (unsigned k : config.fault_counts) {
    if (k >= hb.num_nodes()) {
      throw std::invalid_argument(
          "campaign: fault count must be below num_nodes");
    }
    any_faults = any_faults || k != 0;
  }
  // Engine/model compatibility, still on the calling thread: a simulator
  // throw inside a pool worker would terminate the process.
  for (FaultModel model : config.models) {
    if (config.engine == Engine::kWormhole && model == FaultModel::kEvents) {
      throw std::invalid_argument(
          "campaign: the events fault model is store-and-forward only; the "
          "wormhole engine takes static node (random/adversarial) or links "
          "faults");
    }
    if (config.engine == Engine::kStoreForward &&
        model == FaultModel::kLinks) {
      throw std::invalid_argument(
          "campaign: the links fault model is wormhole-only (the "
          "store-and-forward engine models node faults)");
    }
  }
  if (config.engine == Engine::kWormhole && any_faults &&
      config.wormhole.policy != VcPolicy::kFaultAdaptive) {
    throw std::invalid_argument(
        "campaign: wormhole fault injection requires the 'adaptive' VC "
        "policy (its online re-planner needs the reserved escape class; "
        "set wormhole.policy = VcPolicy::kFaultAdaptive with vcs >= " +
        std::to_string(vc_classes(VcPolicy::kFaultAdaptive)) + ")");
  }

  std::vector<TrialSpec> specs;
  specs.reserve(config.models.size() * config.rates.size() *
                config.fault_counts.size() * config.trials);
  std::uint64_t index = 0;
  for (FaultModel model : config.models) {
    for (double rate : config.rates) {
      for (unsigned k : config.fault_counts) {
        for (unsigned repeat = 0; repeat < config.trials; ++repeat) {
          TrialSpec spec;
          spec.index = index;
          spec.model = model;
          spec.rate = rate;
          spec.fault_count = k;
          spec.repeat = repeat;
          spec.seed = split_seed(config.seed, index, kStreamSimSeed);
          specs.push_back(spec);
          ++index;
        }
      }
    }
  }
  return specs;
}

CampaignResult run_campaign(const CampaignConfig& config,
                            obs::ProgressBoard* progress) {
  const std::vector<TrialSpec> specs = enumerate_trials(config);

  std::vector<std::uint32_t> ranking;
  const bool wants_adversarial = std::any_of(
      specs.begin(), specs.end(), [](const TrialSpec& s) {
        return s.model == FaultModel::kAdversarial && s.fault_count > 0;
      });
  if (wants_adversarial) {
    ranking = adversarial_fault_ranking(config.m, config.n);
  }

  par::ThreadPool pool(config.threads);
  // One topology adapter per worker: HyperButterfly lazily materializes
  // its butterfly-layer graph under route_around_faults, so adapters must
  // not be shared across threads.
  std::vector<std::unique_ptr<SimTopology>> topos;
  topos.reserve(pool.size());
  for (unsigned w = 0; w < pool.size(); ++w) {
    topos.push_back(make_hyper_butterfly_sim(config.m, config.n));
  }

  // Live progress slots, resolved up front so workers only do relaxed
  // atomic adds. Per-cell drop slots share the metrics key convention
  // (campaign.dropped{model=...,rate=...,faults=...}); cell index =
  // spec.index / trials because repeats are the innermost enumeration
  // axis.
  obs::ProgressBoard::Slot* prog_done = nullptr;
  obs::ProgressBoard::Slot* prog_injected = nullptr;
  obs::ProgressBoard::Slot* prog_delivered = nullptr;
  obs::ProgressBoard::Slot* prog_dropped = nullptr;
  obs::ProgressBoard::Slot* prog_deadlocks = nullptr;
  std::vector<obs::ProgressBoard::Slot*> cell_dropped;
  if (progress != nullptr) {
    progress->slot("campaign.trials_total").set(specs.size());
    prog_done = &progress->slot("campaign.trials_done");
    prog_injected = &progress->slot("campaign.injected");
    prog_delivered = &progress->slot("campaign.delivered");
    prog_dropped = &progress->slot("campaign.dropped");
    prog_deadlocks = &progress->slot("campaign.deadlocks");
    cell_dropped.resize(specs.size() / config.trials, nullptr);
    for (const TrialSpec& spec : specs) {
      if (spec.repeat == 0) {
        cell_dropped[spec.index / config.trials] = &progress->slot(
            obs::MetricsRegistry::key_of("campaign.dropped",
                                         cell_labels(spec)));
      }
    }
  }

  // Parallel phase: every trial is a pure function of its spec and writes
  // only its own slots, so scheduling cannot perturb the outcome. The
  // progress adds and flight-recorder events happen in completion order
  // -- they are display/postmortem channels, not results.
  std::vector<TrialResult> results(specs.size());
  std::vector<obs::Sink> sinks(specs.size());
  pool.parallel_for_chunks(
      specs.size(), 1,
      [&](unsigned worker, std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i) {
          obs::FlightRecorder::record(
              "trial_start", specs[i].index,
              static_cast<std::uint64_t>(specs[i].model),
              specs[i].fault_count);
          run_trial(*topos[worker], config, specs[i], ranking, sinks[i],
                    results[i]);
          obs::FlightRecorder::record("trial_finish", specs[i].index,
                                      results[i].delivered,
                                      results[i].dropped);
          if (progress != nullptr) {
            prog_done->add(1);
            prog_injected->add(results[i].injected);
            prog_delivered->add(results[i].delivered);
            prog_dropped->add(results[i].dropped);
            if (results[i].deadlocked) prog_deadlocks->add(1);
            cell_dropped[specs[i].index / config.trials]->add(
                results[i].dropped);
          }
        }
      });

  // Serial reduction in trial order. Gauges describing a stuck state fold
  // with max ("did any trial deadlock"), per-trial unroutable-worm counts
  // fold with sum; everything else keeps the incoming value, which equals
  // last-trial-wins under this order.
  CampaignResult out;
  obs::MergeOptions merge_options;
  merge_options.gauge_policy = [](const std::string& key) {
    if (key.find(".deadlocked") != std::string::npos) {
      return obs::GaugeMerge::kMax;
    }
    if (key.find(".unroutable") != std::string::npos) {
      return obs::GaugeMerge::kSum;
    }
    return obs::GaugeMerge::kLast;
  };
  for (std::size_t i = 0; i < specs.size(); ++i) {
    merge_options.extra_labels = cell_labels(specs[i]);
    out.metrics.merge(sinks[i].metrics(), merge_options);
  }

  std::uint64_t injected = 0, delivered = 0, dropped = 0, deadlocks = 0;
  for (const TrialResult& r : results) {
    injected += r.injected;
    delivered += r.delivered;
    dropped += r.dropped;
    deadlocks += r.deadlocked ? 1 : 0;
  }
  out.metrics.counter("campaign.trials").inc(specs.size());
  out.metrics.counter("campaign.injected").inc(injected);
  out.metrics.counter("campaign.delivered").inc(delivered);
  out.metrics.counter("campaign.dropped").inc(dropped);
  out.metrics.counter("campaign.deadlocks").inc(deadlocks);

  // Cell table: one row per grid cell in enumeration order; latency
  // quantiles come from the merged per-cell histogram.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TrialSpec& spec = specs[i];
    if (spec.repeat == 0) {
      CellSummary cell;
      cell.model = spec.model;
      cell.rate = spec.rate;
      cell.fault_count = spec.fault_count;
      out.cells.push_back(cell);
    }
    CellSummary& cell = out.cells.back();
    ++cell.trials;
    cell.injected += results[i].injected;
    cell.delivered += results[i].delivered;
    cell.dropped += results[i].dropped;
    if (spec.repeat + 1 == config.trials) {
      const obs::Histogram* h = out.metrics.find_histogram(
          latency_metric(config.engine), cell_labels(spec));
      if (h != nullptr) {
        cell.latency_p50 = h->percentile(0.5);
        cell.latency_p99 = h->percentile(0.99);
        cell.latency_max = h->max();
        cell.latency_mean = h->mean();
      }
    }
  }
  out.trials = std::move(results);
  return out;
}

void write_campaign_csv(std::ostream& os, const CampaignResult& result) {
  os << "model,rate,faults,trials,injected,delivered,dropped,p50,p99,max,"
        "mean_latency\n";
  for (const CellSummary& c : result.cells) {
    os << fault_model_name(c.model) << ',' << format_rate(c.rate) << ','
       << c.fault_count << ',' << c.trials << ',' << c.injected << ','
       << c.delivered << ',' << c.dropped << ',' << c.latency_p50 << ','
       << c.latency_p99 << ',' << c.latency_max << ',' << c.latency_mean
       << '\n';
  }
}

void write_campaign_table(std::ostream& os, const CampaignResult& result) {
  os << std::setw(12) << "model" << std::setw(8) << "rate" << std::setw(8)
     << "faults" << std::setw(8) << "trials" << std::setw(10) << "injected"
     << std::setw(10) << "delivered" << std::setw(9) << "dropped"
     << std::setw(6) << "p50" << std::setw(6) << "p99" << std::setw(6)
     << "max" << "\n";
  for (const CellSummary& c : result.cells) {
    os << std::setw(12) << fault_model_name(c.model) << std::setw(8)
       << format_rate(c.rate) << std::setw(8) << c.fault_count << std::setw(8)
       << c.trials << std::setw(10) << c.injected << std::setw(10)
       << c.delivered << std::setw(9) << c.dropped << std::setw(6)
       << c.latency_p50 << std::setw(6) << c.latency_p99 << std::setw(6)
       << c.latency_max << "\n";
  }
}

}  // namespace hbnet::campaign
