// Deterministic parallel fault-injection campaign engine.
//
// A campaign turns the single-shot simulators into an empirical probe of
// the paper's fault-tolerance claims (Theorem 5 / Remark 10: kappa = m+4,
// with the disjoint-path family doubling as the routing scheme): it fans a
// grid of independent trials -- fault model x injection rate x fault count
// x repeat seed -- across the hbnet::par pool and reduces every trial's
// obs::MetricsRegistry into one campaign-level registry whose instruments
// are tagged with the trial's grid-cell labels
// ({model=...,rate=...,faults=...}).
//
// Fault models:
//  * kRandom      -- `fault_count` distinct nodes drawn from the trial's
//                    fault stream (static mask, run_simulation);
//  * kAdversarial -- the first `fault_count` nodes of the min-cut-adjacent
//                    ranking (analysis/cuts): the nodes crowding the
//                    narrowest balanced dimension cut, i.e. the bottleneck
//                    an adversary would attack (static mask,
//                    run_simulation);
//  * kEvents      -- `fault_count` mid-run node deaths spread across the
//                    measurement window
//                    (run_simulation_with_fault_events; store-and-forward
//                    engine only);
//  * kLinks       -- `fault_count` distinct *directed* link faults: sources
//                    from the trial's fault stream, the outgoing edge from
//                    an independent stream over the node's neighbor list
//                    (wormhole engine only).
// Both engines take static fault masks. The wormhole engine requires
// VcPolicy::kFaultAdaptive for any nonzero fault count (the online
// re-planner needs the reserved escape VC class); enumerate_trials
// enforces this on the calling thread so run_wormhole can never throw
// inside a pool worker.
//
// Determinism contract (the same one hbnet::par establishes): the campaign
// result -- merged metrics JSON, CSV, per-cell table -- is a pure function
// of the CampaignConfig, byte-identical for every thread count. Three
// properties make that hold:
//  * each trial is a pure function of its TrialSpec (the simulators are
//    deterministic given their config);
//  * trial seeds and fault sets derive from the campaign seed via a
//    splittable counter scheme (split_seed: a SplitMix64 mix of
//    (seed, trial index, stream)) -- independent streams per trial, no
//    shared RNG state, no rand();
//  * trials write into disjoint result slots during the parallel phase and
//    are folded serially in trial order afterwards.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/wormhole.hpp"

namespace hbnet::obs {
class ProgressBoard;
}

namespace hbnet::campaign {

enum class FaultModel { kRandom, kAdversarial, kEvents, kLinks };
enum class Engine { kStoreForward, kWormhole };

[[nodiscard]] const char* fault_model_name(FaultModel model);
[[nodiscard]] std::optional<FaultModel> fault_model_from_name(
    std::string_view name);
[[nodiscard]] const char* engine_name(Engine engine);
[[nodiscard]] std::optional<Engine> engine_from_name(std::string_view name);

struct CampaignConfig {
  unsigned m = 2, n = 3;  // HB(m,n) instance under test
  Engine engine = Engine::kStoreForward;
  // The grid: every combination of (model, rate, fault count) is one cell,
  // run `trials` times with distinct derived seeds.
  std::vector<FaultModel> models = {FaultModel::kRandom};
  std::vector<double> rates = {0.05};
  std::vector<unsigned> fault_counts = {0};
  unsigned trials = 1;
  std::uint64_t seed = 1;  // campaign master seed; everything derives here
  // Base simulator configs; injection_rate and seed are overridden per
  // trial, the rest (cycles, pattern, VCs, ...) apply to every trial. The
  // wormhole default uses the fault-adaptive policy with exactly its
  // vc_classes() minimum, so fault-injecting wormhole campaigns work out
  // of the box (and fault-free ones behave like segment-dateline with one
  // idle escape class).
  SimConfig sim;
  WormholeConfig wormhole = {.vcs = vc_classes(VcPolicy::kFaultAdaptive),
                             .policy = VcPolicy::kFaultAdaptive};
  unsigned threads = 0;  // hbnet::par resolution: 0 = default_threads()
};

/// One point of the campaign grid, fully determining a trial.
struct TrialSpec {
  std::uint64_t index = 0;  // position in the deterministic enumeration
  FaultModel model = FaultModel::kRandom;
  double rate = 0.0;
  unsigned fault_count = 0;
  unsigned repeat = 0;      // repeat number within the grid cell
  std::uint64_t seed = 0;   // split_seed(campaign seed, index, stream 0)
};

struct TrialResult {
  TrialSpec spec;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  bool deadlocked = false;  // wormhole stall detector fired
};

/// One grid cell's aggregate over its `trials` repeats -- a row of the
/// campaign's delivered/dropped/latency table.
struct CellSummary {
  FaultModel model = FaultModel::kRandom;
  double rate = 0.0;
  unsigned fault_count = 0;
  unsigned trials = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t latency_p50 = 0;
  std::uint64_t latency_p99 = 0;
  std::uint64_t latency_max = 0;
  double latency_mean = 0.0;
};

struct CampaignResult {
  obs::MetricsRegistry metrics;      // merged campaign-level registry
  std::vector<TrialResult> trials;   // enumeration order
  std::vector<CellSummary> cells;    // cell enumeration order
};

/// Splittable counter scheme: a SplitMix64-style mix of (seed, index,
/// stream). Each (index, stream) pair yields an independent 64-bit value,
/// so trial `index` draws its simulator seed from stream 0 and its fault
/// set from stream 1 without any shared RNG state between trials.
[[nodiscard]] std::uint64_t split_seed(std::uint64_t seed,
                                       std::uint64_t index,
                                       std::uint64_t stream);

/// `count` distinct node ids derived from `fault_seed`: a partial
/// Fisher-Yates shuffle whose swap indices come straight from the
/// splittable counter (portable across standard libraries, unlike
/// std::uniform_int_distribution). Public so the CLI wormhole command
/// derives standalone fault sets exactly the way campaign trials do.
[[nodiscard]] std::vector<std::uint32_t> derived_fault_nodes(
    std::uint64_t fault_seed, std::uint32_t num_nodes, unsigned count);

/// `count` distinct *directed* link faults on `topo`: the sources are
/// derived_fault_nodes(fault_seed, ...), and each source's faulted outgoing
/// edge is picked from its neighbor list by an independent stream of the
/// same splittable counter. Requires the adapter to expose adjacency
/// (SimTopology::neighbors).
[[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>>
derived_fault_links(std::uint64_t fault_seed, const SimTopology& topo,
                    unsigned count);

/// The adversarial fault ranking of HB(m,n): node ids adjacent to the
/// narrowest balanced dimension cut (analysis/cuts), ordered by how many
/// crossing edges they touch (descending, ties by id). The length-k prefix
/// is the kAdversarial fault set for fault level k.
[[nodiscard]] std::vector<std::uint32_t> adversarial_fault_ranking(
    unsigned m, unsigned n);

/// The campaign's deterministic trial enumeration: models x rates x
/// fault_counts x repeats, with derived seeds filled in. Throws
/// std::invalid_argument on a malformed config (empty grid axes, zero
/// trials, fault count >= num nodes, an engine/model mismatch -- events is
/// store-and-forward only, links is wormhole only -- or a fault-injecting
/// wormhole grid without the fault-adaptive policy). All validation happens
/// here, on the calling thread: a simulator throw inside a pool worker
/// would terminate the process.
[[nodiscard]] std::vector<TrialSpec> enumerate_trials(
    const CampaignConfig& config);

/// Runs the whole grid over the hbnet::par pool and reduces. Validates the
/// config like enumerate_trials.
///
/// A non-null `progress` receives live campaign slots -- trials_total
/// (set up front), trials_done / injected / delivered / dropped /
/// deadlocks (bumped as each trial finishes, in completion order), plus
/// one campaign.dropped{model=...,rate=...,faults=...} slot per grid
/// cell. Updates are relaxed atomic adds on a dedicated channel; the
/// campaign result stays byte-identical with or without a board and at
/// every thread count. Each trial also leaves trial_start/trial_finish
/// events in the obs::FlightRecorder for postmortem dumps.
[[nodiscard]] CampaignResult run_campaign(
    const CampaignConfig& config, obs::ProgressBoard* progress = nullptr);

/// One CSV row per grid cell (stable header, enumeration order):
/// model,rate,faults,trials,injected,delivered,dropped,p50,p99,max,mean.
void write_campaign_csv(std::ostream& os, const CampaignResult& result);

/// Human-readable fixed-width version of the same table.
void write_campaign_table(std::ostream& os, const CampaignResult& result);

}  // namespace hbnet::campaign
