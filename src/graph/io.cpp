#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <unordered_set>

#include "graph/builder.hpp"

namespace hbnet {

void write_dot(std::ostream& os, const Graph& g, const DotOptions& options) {
  os << "graph " << options.graph_name << " {\n";
  std::unordered_set<NodeId> lit(options.highlight.begin(),
                                 options.highlight.end());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v;
    bool has_label = v < options.labels.size();
    bool is_lit = lit.count(v) != 0;
    if (has_label || is_lit) {
      os << " [";
      if (has_label) os << "label=\"" << options.labels[v] << "\"";
      if (has_label && is_lit) os << ", ";
      if (is_lit) os << "style=filled, fillcolor=lightblue";
      os << "]";
    }
    os << ";\n";
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) os << "  n" << u << " -- n" << v << ";\n";
    }
  }
  os << "}\n";
}

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) os << u << ' ' << v << '\n';
    }
  }
}

std::optional<Graph> read_edge_list(std::istream& is) {
  std::uint64_t n = 0, m = 0;
  if (!(is >> n >> m)) return std::nullopt;
  if (n > (std::uint64_t{1} << 32) - 1) return std::nullopt;
  GraphBuilder b(static_cast<NodeId>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0, v = 0;
    if (!(is >> u >> v)) return std::nullopt;
    if (u >= n || v >= n || u == v) return std::nullopt;
    b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  Graph g = b.build();
  if (g.num_edges() != m) return std::nullopt;  // duplicates in input
  return g;
}

}  // namespace hbnet
