// Vertex connectivity of undirected graphs via max-flow (Menger's theorem).
//
// The fault-tolerance claim of the paper (Corollary 1: kappa(HB(m,n)) = m+4)
// is verified on *constructed* graphs with these routines, independently of
// the constructive disjoint-path algorithm in src/core.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/adjacency.hpp"
#include "graph/graph.hpp"

namespace hbnet {

/// Maximum number of internally vertex-disjoint s-t paths (s != t, and
/// (s,t) not required to be non-adjacent; adjacent pairs count the direct
/// edge as one path). Computed by unit-capacity max-flow on the split graph.
[[nodiscard]] std::uint32_t max_disjoint_paths(const Graph& g, NodeId s,
                                               NodeId t);

/// Exact vertex connectivity kappa(G).
///
/// Delegates to the Even-Tarjan engine (graph/connectivity_sweep.hpp):
/// at most kappa(G)+1 sources are scanned against their non-neighbors (the
/// source set re-shrinks as the best cut bound drops), pairs whose local
/// connectivity provably reaches the bound are pruned without flow work,
/// and one vertex-split Dinic network is built for the whole run and
/// reused (cloned per pool worker, restored with reset() between solves).
/// Distributed over a hbnet::par thread pool (`threads`; 0 =
/// par::default_threads()); the result is exact and identical for every
/// thread count. For checkpointed long runs, schedule options, and
/// instrumentation use ConnectivitySweep directly.
[[nodiscard]] std::uint32_t vertex_connectivity(const Graph& g,
                                                unsigned threads = 0);

/// Provider-generic variant: same engine, any adjacency source (CSR view
/// or an implicit topology such as HbImplicitAdjacency).
[[nodiscard]] std::uint32_t vertex_connectivity(const AdjacencyProvider& adj,
                                                unsigned threads = 0);

/// Cheaper probabilistic lower-bound check: verifies that `target` disjoint
/// paths exist between `pairs` randomly chosen vertex pairs. Returns true if
/// all sampled pairs achieve at least `target` disjoint paths. The pair list
/// is drawn up front from `seed` (identical for every thread count); the
/// flow solves run on the pool and stop early once any pair fails.
[[nodiscard]] bool check_local_connectivity_sampled(const Graph& g,
                                                    std::uint32_t target,
                                                    std::uint32_t pairs,
                                                    std::uint64_t seed = 1,
                                                    unsigned threads = 0);

/// Exact edge connectivity lambda(G) (used for sanity cross-checks in tests;
/// lambda >= kappa for any graph). One max-flow per target vertex on a
/// single network built once and reset() between solves, distributed over
/// the pool with the same exact best-so-far pruning as
/// vertex_connectivity.
[[nodiscard]] std::uint32_t edge_connectivity(const Graph& g,
                                              unsigned threads = 0);

/// Provider-generic variant. With `sparsify`, every flow runs on one
/// Nagamochi-Ibaraki certificate built once at k = deg(0) + 1 (lambda <=
/// deg(0), and no solve's limit exceeds deg(0)+1, so all truncated flow
/// values -- and therefore the result -- are identical with it on or off).
[[nodiscard]] std::uint32_t edge_connectivity(const AdjacencyProvider& adj,
                                              unsigned threads = 0,
                                              bool sparsify = false);

}  // namespace hbnet
