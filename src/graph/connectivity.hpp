// Vertex connectivity of undirected graphs via max-flow (Menger's theorem).
//
// The fault-tolerance claim of the paper (Corollary 1: kappa(HB(m,n)) = m+4)
// is verified on *constructed* graphs with these routines, independently of
// the constructive disjoint-path algorithm in src/core.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace hbnet {

/// Maximum number of internally vertex-disjoint s-t paths (s != t, and
/// (s,t) not required to be non-adjacent; adjacent pairs count the direct
/// edge as one path). Computed by unit-capacity max-flow on the split graph.
[[nodiscard]] std::uint32_t max_disjoint_paths(const Graph& g, NodeId s,
                                               NodeId t);

/// Exact vertex connectivity kappa(G).
///
/// Uses the standard reduction: kappa = min over (v0, non-neighbors of v0)
/// and pairs of neighbors, of local connectivity; bounded by min degree.
/// Cost: O(min_degree + deg(v0)) max-flow runs. Intended for instances up to
/// ~100k vertices with small degree.
[[nodiscard]] std::uint32_t vertex_connectivity(const Graph& g);

/// Cheaper probabilistic lower-bound check: verifies that `target` disjoint
/// paths exist between `pairs` randomly chosen vertex pairs. Returns true if
/// all sampled pairs achieve at least `target` disjoint paths.
[[nodiscard]] bool check_local_connectivity_sampled(const Graph& g,
                                                    std::uint32_t target,
                                                    std::uint32_t pairs,
                                                    std::uint64_t seed = 1);

/// Exact edge connectivity lambda(G) (used for sanity cross-checks in tests;
/// lambda >= kappa for any graph).
[[nodiscard]] std::uint32_t edge_connectivity(const Graph& g);

}  // namespace hbnet
