#include "graph/embedding_check.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "graph/bfs.hpp"

namespace hbnet {
namespace {

bool check_injective_and_range(const Graph& guest, const Graph& host,
                               const std::vector<NodeId>& map,
                               EmbeddingCheck& r) {
  if (map.size() != guest.num_nodes()) {
    r.error = "map size != guest node count";
    return false;
  }
  std::unordered_set<NodeId> image;
  for (NodeId g = 0; g < guest.num_nodes(); ++g) {
    if (map[g] >= host.num_nodes()) {
      std::ostringstream os;
      os << "guest vertex " << g << " maps out of range";
      r.error = os.str();
      return false;
    }
    if (!image.insert(map[g]).second) {
      std::ostringstream os;
      os << "map not injective at host vertex " << map[g];
      r.error = os.str();
      return false;
    }
  }
  r.injective = true;
  return true;
}

}  // namespace

EmbeddingCheck check_embedding(const Graph& guest, const Graph& host,
                               const std::vector<NodeId>& map) {
  EmbeddingCheck r;
  if (!check_injective_and_range(guest, host, map, r)) return r;
  for (NodeId u = 0; u < guest.num_nodes(); ++u) {
    for (NodeId v : guest.neighbors(u)) {
      if (u < v && !host.has_edge(map[u], map[v])) {
        std::ostringstream os;
        os << "guest edge (" << u << "," << v << ") maps to host non-edge ("
           << map[u] << "," << map[v] << ")";
        r.error = os.str();
        return r;
      }
    }
  }
  r.dilation_one = true;
  r.dilation = guest.num_edges() == 0 ? 0 : 1;
  return r;
}

EmbeddingCheck check_embedding_with_dilation(const Graph& guest,
                                             const Graph& host,
                                             const std::vector<NodeId>& map) {
  EmbeddingCheck r = check_embedding(guest, host, map);
  if (!r.injective || r.dilation_one) return r;
  // Injective but some guest edge is stretched: measure the worst stretch.
  r.error.clear();
  std::uint32_t worst = 0;
  for (NodeId u = 0; u < guest.num_nodes(); ++u) {
    for (NodeId v : guest.neighbors(u)) {
      if (u >= v) continue;
      Dist d = bfs_distance(host, map[u], map[v]);
      if (d == kUnreachable) {
        r.error = "guest edge maps to disconnected host pair";
        return r;
      }
      worst = std::max(worst, d);
    }
  }
  r.dilation = worst;
  return r;
}

}  // namespace hbnet
