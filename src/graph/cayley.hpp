// Generic Cayley-graph machinery.
//
// A Cayley graph is specified here operationally: a vertex count and a list
// of named generator maps (total functions on vertex ids). The framework
//   * materializes the graph into CSR form,
//   * audits the Cayley-graph axioms used in the paper (Theorem 1 /
//     Remark 3): every generator is a permutation, the generator set is
//     closed under inverse (so edges are bidirectional), generators are
//     fixed-point free, and distinct generators act distinctly on every
//     vertex (so the graph really is regular of degree |generators|).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace hbnet {

/// One generator of a (permutation) group acting on [0, num_nodes).
struct Generator {
  std::string name;
  std::function<NodeId(NodeId)> apply;
};

/// A Cayley-graph specification.
struct CayleySpec {
  NodeId num_nodes = 0;
  std::vector<Generator> generators;
};

/// Outcome of auditing the Cayley axioms on a spec.
struct CayleyAudit {
  bool generators_are_permutations = false;
  bool closed_under_inverse = false;  // edge set symmetric under generators
  bool fixed_point_free = false;      // sigma(v) != v for all v, sigma
  bool distinct_actions = false;      // sigma1(v) != sigma2(v) for sigma1 != sigma2
  [[nodiscard]] bool all_ok() const {
    return generators_are_permutations && closed_under_inverse &&
           fixed_point_free && distinct_actions;
  }
};

/// Materializes the Cayley graph of `spec` into CSR form.
[[nodiscard]] Graph materialize(const CayleySpec& spec);

/// Runs the full audit; O(|generators|^2 * n).
[[nodiscard]] CayleyAudit audit(const CayleySpec& spec);

}  // namespace hbnet
