#include "graph/validate.hpp"

#include <string>

#include "graph/adjacency.hpp"
#include "graph/connectivity_sweep.hpp"

namespace hbnet::check {
namespace {

std::string at_node(const char* what, std::uint64_t v) {
  return std::string(what) + " at node " + std::to_string(v);
}

}  // namespace

std::string validate(const Graph& g) {
  const NodeId n = g.num_nodes();
  const auto offsets = g.row_offsets();
  // A default-constructed Graph stores no offsets at all; the class treats
  // it as the empty graph, so the validator does too.
  if (offsets.empty()) return {};
  if (offsets.front() != 0) return "row_offsets[0] != 0";
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return at_node("row_offsets not monotone", i);
    }
  }
  std::uint64_t total = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto adj = g.neighbors(v);
    total += adj.size();
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (adj[i] >= n) return at_node("edge target out of range", v);
      if (adj[i] == v) return at_node("self loop", v);
      if (i > 0 && adj[i - 1] >= adj[i]) {
        return at_node("adjacency not strictly ascending", v);
      }
      if (!g.has_edge(adj[i], v)) {
        return "asymmetric edge (" + std::to_string(v) + "," +
               std::to_string(adj[i]) + ")";
      }
    }
  }
  if (total != 2 * g.num_edges()) {
    return "column count " + std::to_string(total) +
           " != 2 * num_edges() = " + std::to_string(2 * g.num_edges());
  }
  return {};
}

std::string validate(const SweepState& st) {
  if (st.version != SweepState::kVersion) {
    return "unsupported checkpoint version " + std::to_string(st.version);
  }
  if (st.block_size == 0) return "checkpoint block size is zero";
  if (st.num_nodes == 0 && (st.stages_done != 0 || st.bound != 0)) {
    return "nonzero sweep position on an empty graph";
  }
  if (st.stages_done > st.num_nodes) {
    return "stages_done " + std::to_string(st.stages_done) +
           " exceeds node count " + std::to_string(st.num_nodes);
  }
  if (st.num_nodes > 0 && st.bound > st.num_nodes - 1) {
    return "bound " + std::to_string(st.bound) +
           " exceeds the trivial kappa bound n-1";
  }
  // Every target of every stage is counted at most once as solved or
  // pruned, and a stage has at most n-1 targets.
  const std::uint64_t max_pairs =
      std::uint64_t{st.num_nodes} * st.num_nodes;
  if (st.solves > max_pairs || st.pruned > max_pairs ||
      st.solves + st.pruned > max_pairs) {
    return "work counters exceed the pair count";
  }
  if (st.complete && st.blocks_done != 0) {
    return "complete checkpoint sits mid-stage (position not normalized)";
  }
  if (st.orbit && !st.single_source) {
    return "orbit schedule recorded without single-source";
  }
  return {};
}

std::string validate(const SweepState& st, const AdjacencyProvider& adj) {
  if (std::string err = validate(st); !err.empty()) return err;
  if (st.num_nodes != adj.num_nodes()) {
    return "checkpoint node count " + std::to_string(st.num_nodes) +
           " != graph node count " + std::to_string(adj.num_nodes());
  }
  if (st.num_edges != adj.num_edges()) {
    return "checkpoint edge count " + std::to_string(st.num_edges) +
           " != graph edge count " + std::to_string(adj.num_edges());
  }
  if (st.fingerprint != adj.fingerprint()) {
    return "checkpoint fingerprint does not match the graph";
  }
  return {};
}

std::string validate(const SweepState& st, const Graph& g) {
  const CsrAdjacency csr(g);
  return validate(st, csr);
}

}  // namespace hbnet::check
