#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hbnet {

Graph::Graph(std::vector<std::uint64_t> row_offsets, std::vector<NodeId> columns)
    : row_offsets_(std::move(row_offsets)), columns_(std::move(columns)) {
  if (row_offsets_.empty()) {
    throw std::invalid_argument("Graph: row_offsets must have >= 1 entry");
  }
  if (row_offsets_.front() != 0 || row_offsets_.back() != columns_.size()) {
    throw std::invalid_argument("Graph: malformed CSR offsets");
  }
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

std::pair<std::uint32_t, std::uint32_t> Graph::degree_range() const {
  if (num_nodes() == 0) return {0, 0};
  std::uint32_t lo = degree(0), hi = degree(0);
  for (NodeId v = 1; v < num_nodes(); ++v) {
    lo = std::min(lo, degree(v));
    hi = std::max(hi, degree(v));
  }
  return {lo, hi};
}

bool Graph::is_regular() const {
  auto [lo, hi] = degree_range();
  return lo == hi;
}

std::string Graph::summary() const {
  auto [lo, hi] = degree_range();
  std::ostringstream os;
  os << "n=" << num_nodes() << " m=" << num_edges() << " deg=[" << lo << ","
     << hi << "]";
  return os.str();
}

}  // namespace hbnet
