#include "graph/cayley.hpp"

#include <algorithm>

#include "graph/builder.hpp"

namespace hbnet {

Graph materialize(const CayleySpec& spec) {
  GraphBuilder b(spec.num_nodes);
  for (NodeId v = 0; v < spec.num_nodes; ++v) {
    for (const Generator& gen : spec.generators) {
      b.add_edge(v, gen.apply(v));
    }
  }
  return b.build();
}

CayleyAudit audit(const CayleySpec& spec) {
  CayleyAudit a;
  const NodeId n = spec.num_nodes;
  const std::size_t k = spec.generators.size();

  // Permutation check: every generator image set has no duplicates.
  a.generators_are_permutations = true;
  for (const Generator& gen : spec.generators) {
    std::vector<char> hit(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      NodeId w = gen.apply(v);
      if (w >= n || hit[w]) {
        a.generators_are_permutations = false;
        break;
      }
      hit[w] = 1;
    }
    if (!a.generators_are_permutations) break;
  }

  // Fixed-point freeness and distinct actions.
  a.fixed_point_free = true;
  a.distinct_actions = true;
  for (NodeId v = 0; v < n && (a.fixed_point_free || a.distinct_actions); ++v) {
    std::vector<NodeId> images(k);
    for (std::size_t i = 0; i < k; ++i) {
      images[i] = spec.generators[i].apply(v);
      if (images[i] == v) a.fixed_point_free = false;
    }
    std::sort(images.begin(), images.end());
    if (std::adjacent_find(images.begin(), images.end()) != images.end()) {
      a.distinct_actions = false;
    }
  }

  // Closure under inverse: for every generator sigma and vertex v there is a
  // generator tau with tau(sigma(v)) == v. (Pointwise check; with the
  // permutation property this is equivalent to sigma^-1 being present.)
  a.closed_under_inverse = true;
  for (const Generator& gen : spec.generators) {
    for (NodeId v = 0; v < n; ++v) {
      NodeId w = gen.apply(v);
      bool has_back = false;
      for (const Generator& back : spec.generators) {
        if (back.apply(w) == v) {
          has_back = true;
          break;
        }
      }
      if (!has_back) {
        a.closed_under_inverse = false;
        break;
      }
    }
    if (!a.closed_under_inverse) break;
  }
  return a;
}

}  // namespace hbnet
