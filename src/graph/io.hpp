// Graph serialization: Graphviz DOT export (for visualization) and a plain
// edge-list format with round-trip parsing (for interop / persistence).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace hbnet {

/// Options for DOT export.
struct DotOptions {
  std::string graph_name = "G";
  /// Optional labels per vertex (defaults to the numeric id).
  std::vector<std::string> labels;
  /// Optional highlight set rendered filled (e.g. a path or fault set).
  std::vector<NodeId> highlight;
};

/// Writes an undirected Graphviz description of `g`.
void write_dot(std::ostream& os, const Graph& g, const DotOptions& options = {});

/// Writes "n m" header then one "u v" line per undirected edge.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses the write_edge_list format; nullopt on malformed input
/// (bad header, out-of-range endpoints, wrong edge count).
[[nodiscard]] std::optional<Graph> read_edge_list(std::istream& is);

}  // namespace hbnet
