// Nagamochi-Ibaraki sparse connectivity certificates.
//
// sparse_certificate(G, k) runs one scan-first-search forest decomposition
// (Nagamochi & Ibaraki 1992): vertices are scanned in order of their current
// scan count r(v), each unscanned neighbor y of the scanned vertex x assigns
// the edge (x,y) to forest E_{r(y)+1} and increments r(y). The union
// E_1 + ... + E_k is a *k-certificate*: a subgraph with at most k(n-1)
// edges in which, for every vertex pair (u,v),
//
//     min(kappa_cert(u,v), k) == min(kappa_G(u,v), k)   and
//     min(lambda_cert(u,v), k) == min(lambda_G(u,v), k),
//
// i.e. every vertex or edge cut of size < k survives with its exact size and
// larger cuts stay >= k. A max-flow solve truncated at limit <= k therefore
// returns the identical value on the certificate and on the full graph --
// which is how the connectivity sweeps shrink their per-worker Dinic arenas
// from O(|E|) to O(k |V|) without perturbing a single recorded result.
//
// The scan is serial, deterministic (max-r bucket queue with LIFO
// tie-breaks, no RNG), and O(n + m) plus the certificate's CSR build; it
// reads adjacency only through the provider interface, so it runs on
// implicit topologies without materializing them.
#pragma once

#include <cstdint>

#include "graph/adjacency.hpp"
#include "graph/graph.hpp"

namespace hbnet {

/// A k-connectivity certificate of the provider's graph.
struct SparseCertificate {
  Graph graph;        // the certificate subgraph, same vertex ids
  std::uint32_t k = 0;  // the cut size up to which it is exact
};

/// Builds the Nagamochi-Ibaraki k-certificate (see file comment). k == 0
/// yields the edgeless graph on the same vertex set.
[[nodiscard]] SparseCertificate sparse_certificate(const AdjacencyProvider& adj,
                                                   std::uint32_t k);

/// Convenience overload for materialized graphs.
[[nodiscard]] SparseCertificate sparse_certificate(const Graph& g,
                                                   std::uint32_t k);

}  // namespace hbnet
