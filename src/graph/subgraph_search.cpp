#include "graph/subgraph_search.hpp"

#include <algorithm>

namespace hbnet {
namespace {

/// Backtracking state for subgraph monomorphism.
class Searcher {
 public:
  Searcher(const Graph& guest, const Graph& host,
           const SubgraphSearchOptions& options)
      : guest_(guest), host_(host), options_(options) {
    order_ = connectivity_order();
    map_.assign(guest_.num_nodes(), kInvalidNode);
    used_.assign(host_.num_nodes(), 0);
  }

  SubgraphSearchResult run() {
    SubgraphSearchResult r;
    bool found = extend(0);
    r.steps = steps_;
    r.exhaustive = !aborted_;
    if (found) {
      r.embedding = map_;
      r.exhaustive = true;  // a witness is conclusive regardless of budget
    }
    return r;
  }

 private:
  /// Guest vertices ordered so each (after the first) touches an earlier one;
  /// this lets candidates be drawn from host neighborhoods instead of all of
  /// the host. Ties broken by degree (high first) for earlier pruning.
  std::vector<NodeId> connectivity_order() const {
    const NodeId n = guest_.num_nodes();
    std::vector<NodeId> order;
    std::vector<char> placed(n, 0);
    order.reserve(n);
    while (order.size() < n) {
      NodeId best = kInvalidNode;
      std::uint32_t best_key = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (placed[v]) continue;
        std::uint32_t attached = 0;
        for (NodeId u : guest_.neighbors(v)) attached += placed[u];
        // Prefer vertices attached to the placed set, then high degree.
        std::uint32_t key = attached * 1024 + guest_.degree(v) + 1;
        if (order.empty()) key = guest_.degree(v) + 1;
        if (best == kInvalidNode || key > best_key) {
          best = v;
          best_key = key;
        }
      }
      placed[best] = 1;
      order.push_back(best);
    }
    return order;
  }

  bool extend(std::size_t depth) {
    if (depth == order_.size()) return true;
    if (options_.max_steps != 0 && steps_ >= options_.max_steps) {
      aborted_ = true;
      return false;
    }
    const NodeId gv = order_[depth];
    // Candidate host vertices: intersection of neighborhoods of the images of
    // gv's already-placed guest neighbors (or all hosts if none placed).
    NodeId anchor = kInvalidNode;
    for (NodeId u : guest_.neighbors(gv)) {
      if (map_[u] != kInvalidNode) {
        if (anchor == kInvalidNode ||
            host_.degree(map_[u]) < host_.degree(anchor)) {
          anchor = map_[u];
        }
      }
    }
    auto try_candidate = [&](NodeId hv) -> bool {
      ++steps_;
      if (used_[hv] || host_.degree(hv) < guest_.degree(gv)) return false;
      for (NodeId u : guest_.neighbors(gv)) {
        if (map_[u] != kInvalidNode && !host_.has_edge(hv, map_[u])) {
          return false;
        }
      }
      map_[gv] = hv;
      used_[hv] = 1;
      if (extend(depth + 1)) return true;
      map_[gv] = kInvalidNode;
      used_[hv] = 0;
      return false;
    };
    if (anchor != kInvalidNode) {
      for (NodeId hv : host_.neighbors(anchor)) {
        if (try_candidate(hv)) return true;
        if (aborted_) return false;
      }
    } else {
      for (NodeId hv = 0; hv < host_.num_nodes(); ++hv) {
        if (try_candidate(hv)) return true;
        if (aborted_) return false;
      }
    }
    return false;
  }

  const Graph& guest_;
  const Graph& host_;
  SubgraphSearchOptions options_;
  std::vector<NodeId> order_;
  std::vector<NodeId> map_;
  std::vector<char> used_;
  std::uint64_t steps_ = 0;
  bool aborted_ = false;
};

}  // namespace

SubgraphSearchResult find_subgraph(const Graph& guest, const Graph& host,
                                   const SubgraphSearchOptions& options) {
  if (guest.num_nodes() > host.num_nodes() ||
      guest.num_edges() > host.num_edges()) {
    SubgraphSearchResult r;
    r.exhaustive = true;
    return r;  // trivially impossible
  }
  Searcher s(guest, host, options);
  return s.run();
}

}  // namespace hbnet
