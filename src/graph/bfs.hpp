// Breadth-first search utilities: single-source distances, parents,
// eccentricity, diameter, connectivity checks, shortest paths.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "graph/adjacency.hpp"
#include "graph/graph.hpp"

namespace hbnet {

/// Distance value used by BFS; kUnreachable marks disconnected vertices.
using Dist = std::uint32_t;
inline constexpr Dist kUnreachable = std::numeric_limits<Dist>::max();

/// Result of a single-source BFS.
struct BfsResult {
  std::vector<Dist> dist;      // dist[v] or kUnreachable
  std::vector<NodeId> parent;  // parent[v] on a BFS tree, kInvalidNode at root
};

/// Full single-source BFS from `source`.
[[nodiscard]] BfsResult bfs(const Graph& g, NodeId source);

/// Provider-generic single-source BFS: identical result to the CSR variant
/// (neighbors are visited in the same sorted order), usable on implicit
/// topologies without materializing them.
[[nodiscard]] BfsResult bfs(const AdjacencyProvider& adj, NodeId source);

/// BFS that ignores vertices marked faulty (faulty[v] == true). The source
/// must not be faulty.
[[nodiscard]] BfsResult bfs_avoiding(const Graph& g, NodeId source,
                                     const std::vector<char>& faulty);

/// Distance between two vertices (kUnreachable if disconnected).
/// Uses bidirectional BFS for speed on large graphs.
[[nodiscard]] Dist bfs_distance(const Graph& g, NodeId s, NodeId t);

/// One shortest path from s to t as a vertex sequence [s, ..., t];
/// std::nullopt if disconnected.
[[nodiscard]] std::optional<std::vector<NodeId>> shortest_path(const Graph& g,
                                                               NodeId s,
                                                               NodeId t);

/// Eccentricity of `source` = max distance to any vertex; kUnreachable if the
/// graph is disconnected from `source`.
[[nodiscard]] Dist eccentricity(const Graph& g, NodeId source);

/// Exact diameter via BFS from every vertex. O(n * (n + m)) work, run on
/// the hbnet::par pool (see graph/parallel_bfs.hpp); the result is exact
/// and thread-count independent.
[[nodiscard]] Dist diameter(const Graph& g);

/// Exact diameter of a vertex-transitive graph: one BFS from vertex 0.
/// Only valid when the graph is vertex transitive (Cayley graphs are).
[[nodiscard]] Dist diameter_vertex_transitive(const Graph& g);

/// True iff the graph is connected (n==0 counts as connected).
[[nodiscard]] bool is_connected(const Graph& g);

/// Provider-generic connectivity check.
[[nodiscard]] bool is_connected(const AdjacencyProvider& adj);

/// True iff the graph stays connected after removing `removed` vertices.
[[nodiscard]] bool is_connected_after_removal(const Graph& g,
                                              const std::vector<char>& removed);

/// Average inter-node distance from a sample of `samples` BFS sources chosen
/// deterministically (seeded); exact if samples >= n (the exact sweep runs
/// on the hbnet::par pool with a bit-identical result).
[[nodiscard]] double average_distance(const Graph& g, std::uint32_t samples,
                                      std::uint64_t seed = 12345);

}  // namespace hbnet
