// Verification utilities for families of vertex-disjoint paths.
//
// The constructive algorithms (hypercube m paths, butterfly 4 paths,
// hyper-butterfly m+4 paths per Theorem 5) produce explicit vertex
// sequences; this module checks their validity against the host graph.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace hbnet {

/// A path as an explicit vertex sequence, endpoints included.
using Path = std::vector<NodeId>;

/// Outcome of validating a path family.
struct PathFamilyCheck {
  bool ok = true;
  std::string error;  // first violation found, empty when ok
};

/// Checks a single path: consecutive vertices adjacent in g, no repeated
/// vertex, endpoints equal to s and t.
[[nodiscard]] PathFamilyCheck check_path(const Graph& g, const Path& p,
                                         NodeId s, NodeId t);

/// Checks that all paths are valid s-t paths and pairwise internally vertex
/// disjoint (they may share only the endpoints s and t).
[[nodiscard]] PathFamilyCheck check_disjoint_paths(const Graph& g,
                                                   std::span<const Path> paths,
                                                   NodeId s, NodeId t);

/// Length (edge count) of the longest path in the family; 0 for empty.
[[nodiscard]] std::size_t max_path_length(std::span<const Path> paths);

/// Extracts a maximum family of internally vertex-disjoint s-t paths from a
/// unit-capacity max-flow on the vertex-split network. Generic (works on any
/// graph), exact, used both as a reference implementation and to build the
/// butterfly disjoint-path family inside the Theorem-5 construction.
///
/// `forbidden_edge`: optional undirected edge the flow must not use (pass
/// {kInvalidNode, kInvalidNode} for none). This supports the "direct edge +
/// k-1 paths avoiding it" decomposition used when s and t are adjacent.
[[nodiscard]] std::vector<Path> flow_disjoint_paths(
    const Graph& g, NodeId s, NodeId t,
    std::pair<NodeId, NodeId> forbidden_edge = {kInvalidNode, kInvalidNode});

}  // namespace hbnet
