// Thread-parallel all-sources BFS sweeps: exact diameter and average
// distance of non-vertex-transitive instances (the hyper-deBruijn columns
// of Figure 2) at full speed. Sources are partitioned across a small
// std::thread pool; each worker owns its BFS scratch (no shared mutable
// state beyond the atomic reduction), so the speedup is near linear.
#pragma once

#include <cstdint>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace hbnet {

/// Exact diameter via one BFS per vertex, distributed over `threads`
/// workers (0 = hardware concurrency). Equals diameter(g) exactly.
[[nodiscard]] Dist parallel_diameter(const Graph& g, unsigned threads = 0);

/// Exact average inter-vertex distance (all ordered pairs), parallel.
[[nodiscard]] double parallel_average_distance(const Graph& g,
                                               unsigned threads = 0);

}  // namespace hbnet
