// Thread-parallel all-sources BFS sweeps on the hbnet::par pool: exact
// diameter, per-vertex eccentricities, and average distance of
// non-vertex-transitive instances (the hyper-deBruijn columns of Figure 2)
// at full speed. Sources are partitioned dynamically across the pool; each
// chunk owns its BFS scratch (no shared mutable state beyond the
// order-independent reductions), so the speedup is near linear and the
// results are identical for every thread count. The serial sweep entry
// points in graph/bfs.hpp (diameter, exact average_distance) delegate here.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace hbnet {

/// Exact diameter via one BFS per vertex, distributed over `threads`
/// workers (0 = par::default_threads()). Equals serial eccentricity
/// sweeping exactly.
[[nodiscard]] Dist parallel_diameter(const Graph& g, unsigned threads = 0);

/// Eccentricity of every vertex (kUnreachable entries when the graph is
/// disconnected), one BFS per vertex over the pool. ecc[v] ==
/// eccentricity(g, v) for every v.
[[nodiscard]] std::vector<Dist> parallel_eccentricities(const Graph& g,
                                                        unsigned threads = 0);

/// Exact average inter-vertex distance (all ordered pairs), parallel.
/// Bit-identical to average_distance(g, n) for connected graphs.
[[nodiscard]] double parallel_average_distance(const Graph& g,
                                               unsigned threads = 0);

}  // namespace hbnet
