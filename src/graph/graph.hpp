// Core immutable graph representation (compressed sparse row).
//
// All topology classes in this library (hypercube, butterfly, de Bruijn,
// hyper-deBruijn, hyper-butterfly, guest graphs) can materialize themselves
// into this representation so that generic algorithms -- BFS, eccentricity,
// max-flow vertex connectivity, subgraph search -- run uniformly over them.
//
// Design notes (cf. C++ Core Guidelines Per.16/Per.19): the CSR layout keeps
// adjacency contiguous and cache friendly; NodeId is 32-bit because every
// instance we construct in tests and benches is far below 2^32 vertices.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hbnet {

/// Vertex identifier inside a materialized graph.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (used by BFS parent arrays etc.).
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Immutable undirected graph in CSR form.
///
/// Invariants:
///  * adjacency of every vertex is sorted ascending,
///  * no self loops, no parallel edges,
///  * for every edge (u,v), v's list contains u (symmetry).
///
/// Use GraphBuilder to construct one; the builder deduplicates, drops self
/// loops and symmetrizes.
class Graph {
 public:
  Graph() = default;
  Graph(std::vector<std::uint64_t> row_offsets, std::vector<NodeId> columns);

  /// Number of vertices.
  [[nodiscard]] NodeId num_nodes() const {
    return row_offsets_.empty() ? 0 : static_cast<NodeId>(row_offsets_.size() - 1);
  }

  /// Number of undirected edges (each stored twice internally).
  [[nodiscard]] std::uint64_t num_edges() const { return columns_.size() / 2; }

  /// Neighbors of `v`, sorted ascending.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    return {columns_.data() + row_offsets_[v],
            columns_.data() + row_offsets_[v + 1]};
  }

  /// Degree of `v`.
  [[nodiscard]] std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(row_offsets_[v + 1] - row_offsets_[v]);
  }

  /// Raw CSR row offsets (size num_nodes()+1); exposed for validators and
  /// zero-copy exporters.
  [[nodiscard]] std::span<const std::uint64_t> row_offsets() const {
    return row_offsets_;
  }

  /// True iff (u,v) is an edge. O(log deg(u)).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Minimum and maximum degree over all vertices; {0,0} for empty graph.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> degree_range() const;

  /// True iff every vertex has the same degree.
  [[nodiscard]] bool is_regular() const;

  /// Human-readable one line summary ("n=64 m=192 deg=[6,6]").
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<std::uint64_t> row_offsets_;  // size num_nodes+1
  std::vector<NodeId> columns_;             // size 2*num_edges
};

}  // namespace hbnet
