#include "graph/adjacency.hpp"

#include "graph/connectivity_sweep.hpp"

namespace hbnet {

std::pair<std::uint32_t, std::uint32_t> AdjacencyProvider::degree_range()
    const {
  const NodeId n = num_nodes();
  if (n == 0) return {0, 0};
  std::uint32_t lo = degree(0), hi = lo;
  for (NodeId v = 1; v < n; ++v) {
    const std::uint32_t d = degree(v);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return {lo, hi};
}

std::uint64_t AdjacencyProvider::fingerprint() const {
  // Digest the same byte stream graph_fingerprint() reads off the CSR
  // arrays (node count, the n+1 cumulative row offsets, then every
  // adjacency list), so a provider and the Graph it describes agree.
  const NodeId n = num_nodes();
  std::uint64_t h = detail::kFnv1aBasis;
  detail::fnv1a_mix(h, n);
  std::uint64_t offset = 0;
  detail::fnv1a_mix(h, offset);
  for (NodeId v = 0; v < n; ++v) {
    offset += degree(v);
    detail::fnv1a_mix(h, offset);
  }
  NeighborScratch scratch(*this);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : neighbors(v, scratch.data())) detail::fnv1a_mix(h, u);
  }
  return h;
}

std::uint64_t CsrAdjacency::fingerprint() const {
  return graph_fingerprint(g_);
}

}  // namespace hbnet
