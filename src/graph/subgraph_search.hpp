// Exact subgraph-isomorphism search (backtracking, VF2-flavoured pruning).
//
// Used to *empirically audit* the paper's embedding claims on small
// instances -- e.g. it proves T(2) is not a subgraph of H_3 and that
// T(n+1) cannot fit in B_3 -- and to find witness embeddings where they do
// exist. Exponential in the worst case; intended for guests/hosts with at
// most a few dozen vertices.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace hbnet {

/// Options bounding the search.
struct SubgraphSearchOptions {
  /// Abort after this many backtracking steps (0 = unlimited).
  std::uint64_t max_steps = 50'000'000;
};

/// Result of a bounded subgraph search.
struct SubgraphSearchResult {
  /// Embedding guest->host if one was found.
  std::optional<std::vector<NodeId>> embedding;
  /// True if the search space was exhausted (so "no embedding" is a proof).
  bool exhaustive = false;
  /// Steps spent.
  std::uint64_t steps = 0;
};

/// Searches for guest as a (not necessarily induced) subgraph of host.
[[nodiscard]] SubgraphSearchResult find_subgraph(
    const Graph& guest, const Graph& host,
    const SubgraphSearchOptions& options = {});

}  // namespace hbnet
