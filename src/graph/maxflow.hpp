// Dinic max-flow on unit-ish capacities, with residual-graph inspection so
// callers can decompose the final flow into vertex-disjoint paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hbnet {

/// Dinic's algorithm. Vertices are dense 0-based ids supplied by the caller.
/// Arc capacities are small signed 32-bit integers.
class Dinic {
 public:
  explicit Dinic(std::uint32_t num_vertices)
      : head_(num_vertices, -1), level_(num_vertices), iter_(num_vertices) {}

  /// Adds a directed arc with the given capacity plus its zero-capacity
  /// residual twin. Returns the arc index (twin is index^1).
  std::uint32_t add_arc(std::uint32_t from, std::uint32_t to,
                        std::int32_t capacity);

  /// Pre-sizes the arc store for `arcs` add_arc calls (2 entries each), so
  /// prototype builders that know the arc count up front avoid the
  /// re-allocation churn of incremental push_back.
  void reserve_arcs(std::size_t arcs) { arcs_.reserve(2 * arcs); }

  /// Number of arcs added with add_arc (residual twins not counted).
  [[nodiscard]] std::size_t num_arcs() const { return arcs_.size() / 2; }

  /// Max flow from s to t, stopping early once flow >= limit.
  std::int64_t max_flow(std::uint32_t s, std::uint32_t t, std::int64_t limit);

  /// Restores every arc to the capacity it was added with, undoing all flow
  /// pushed so far. Lets sweep callers (connectivity: one solve per target)
  /// reuse one network instead of rebuilding it per solve -- O(arcs) with no
  /// allocation, vs O(vertices + arcs) construction plus allocation.
  void reset();

  /// Same postcondition as reset() but O(flow pushed): every augment since
  /// the last reset()/undo_flow() records the arcs it modified, and only
  /// those are restored. The connectivity sweeps call this between solves,
  /// where the pushed flow (<= kappa) is tiny against the arena size.
  void undo_flow();

  /// Overrides the current AND the reset() capacity of an arc (the twin is
  /// zeroed). Used by the connectivity sweeps to mark the terminals of the
  /// vertex-split network before each solve and to restore them afterwards;
  /// a set_arc_capacity is also a flow reset for that arc pair.
  void set_arc_capacity(std::uint32_t arc_index, std::int32_t capacity) {
    arcs_[arc_index].cap = capacity;
    arcs_[arc_index].cap0 = capacity;
    arcs_[arc_index ^ 1].cap = 0;
    arcs_[arc_index ^ 1].cap0 = 0;
  }

  /// Flow pushed through arc `arc_index` (capacity consumed).
  [[nodiscard]] std::int32_t flow_on(std::uint32_t arc_index) const {
    return arcs_[arc_index ^ 1].cap;  // residual of the twin == pushed flow
  }

  /// Arc target.
  [[nodiscard]] std::uint32_t arc_to(std::uint32_t arc_index) const {
    return arcs_[arc_index].to;
  }

  [[nodiscard]] std::uint32_t num_vertices() const {
    return static_cast<std::uint32_t>(head_.size());
  }

 private:
  struct Arc {
    std::uint32_t to;
    std::int32_t next;  // next arc out of the same tail, or -1
    std::int32_t cap;   // residual capacity
    std::int32_t cap0;  // capacity at add_arc time, restored by reset()
  };

  bool build_levels(std::uint32_t s, std::uint32_t t);
  std::int64_t augment(std::uint32_t u, std::uint32_t t, std::int64_t up_to);

  std::vector<std::int32_t> head_;
  std::vector<Arc> arcs_;
  std::vector<std::int32_t> level_;
  std::vector<std::int32_t> iter_;
  std::vector<std::uint32_t> bfs_queue_;  // reused across build_levels calls
  std::vector<std::uint32_t> touched_;    // arcs modified since last restore
};

}  // namespace hbnet
