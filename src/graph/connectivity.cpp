#include "graph/connectivity.hpp"

#include <algorithm>
#include <atomic>
#include <random>
#include <stdexcept>
#include <utility>

#include "check/check.hpp"
#include "graph/validate.hpp"
#include "graph/connectivity_sweep.hpp"
#include "graph/maxflow.hpp"
#include "graph/sparsify.hpp"
#include "par/pool.hpp"

namespace hbnet {
namespace {

/// Atomic min-update; returns nothing, loops until the stored value is
/// <= candidate. Order independent, so parallel sweeps stay deterministic.
void atomic_min(std::atomic<std::uint32_t>& best, std::uint32_t candidate) {
  std::uint32_t seen = best.load(std::memory_order_relaxed);
  while (candidate < seen &&
         !best.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

std::uint32_t max_disjoint_paths(const Graph& g, NodeId s, NodeId t) {
  if (s == t) throw std::invalid_argument("max_disjoint_paths: s == t");
  Dinic dinic = detail::make_split_prototype(g);
  std::int64_t limit = std::min(g.degree(s), g.degree(t));
  return static_cast<std::uint32_t>(
      detail::split_solve(dinic, s, t, limit + 1));
}

std::uint32_t vertex_connectivity(const Graph& g, unsigned threads) {
  const CsrAdjacency csr(g);
  return vertex_connectivity(csr, threads);
}

std::uint32_t vertex_connectivity(const AdjacencyProvider& adj,
                                  unsigned threads) {
  // The Even-Tarjan engine (graph/connectivity_sweep.hpp): source-set
  // reduction to kappa+1 sources, structural pruning, per-worker network
  // reuse. Exact for every graph and identical for every thread count.
  return vertex_connectivity_even_tarjan(adj, threads);
}

bool check_local_connectivity_sampled(const Graph& g, std::uint32_t target,
                                      std::uint32_t pairs, std::uint64_t seed,
                                      unsigned threads) {
  if (g.num_nodes() < 2) return false;
  if (target == 0 || pairs == 0) return true;
  HBNET_DCHECK_OK(check::validate(g));
  // Draw the pair list up front with the exact serial sequence, then fan the
  // flow solves out over the pool.
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(0, g.num_nodes() - 1);
  std::vector<std::pair<NodeId, NodeId>> tasks;
  tasks.reserve(pairs);
  for (std::uint32_t i = 0; i < pairs; ++i) {
    NodeId s = pick(rng);
    NodeId t = pick(rng);
    while (t == s) t = pick(rng);
    tasks.emplace_back(s, t);
  }
  const Dinic prototype = detail::make_split_prototype(g);
  par::ThreadPool pool(threads);
  std::vector<Dinic> nets(pool.size(), prototype);
  std::atomic<bool> all_ok{true};
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, tasks.size() / (8 * pool.size()));
  pool.parallel_for_chunks(
      tasks.size(), chunk,
      [&](unsigned worker, std::uint64_t begin, std::uint64_t end) {
        Dinic& dinic = nets[worker];
        for (std::uint64_t k = begin; k < end; ++k) {
          // flow >= target is all we need to know; once any pair failed
          // the remaining solves are skipped entirely.
          if (!all_ok.load(std::memory_order_relaxed)) return;
          auto [s, t] = tasks[k];
          if (detail::split_solve(dinic, s, t, target) <
              static_cast<std::int64_t>(target)) {
            all_ok.store(false, std::memory_order_relaxed);
          }
        }
      });
  return all_ok.load();
}

std::uint32_t edge_connectivity(const Graph& g, unsigned threads) {
  HBNET_DCHECK_OK(check::validate(g));
  const CsrAdjacency csr(g);
  return edge_connectivity(csr, threads, false);
}

std::uint32_t edge_connectivity(const AdjacencyProvider& adj, unsigned threads,
                                bool sparsify) {
  const NodeId n = adj.num_nodes();
  if (n <= 1) return 0;
  // lambda(G) = min over t != 0 of max-flow(0, t) on the un-split network.
  // The network is identical for every target, so it is built exactly once
  // and cleared with undo_flow() between solves (one clone per worker).
  // Every limit below is <= deg(0)+1, so flows on a (deg(0)+1)-certificate
  // equal flows on the full graph and the sparsified run is byte-identical.
  const std::uint32_t d0 = adj.degree(0);
  SparseCertificate cert;
  if (sparsify) cert = sparse_certificate(adj, d0 + 1);
  const AdjacencyProvider* net_adj = &adj;
  std::optional<CsrAdjacency> cert_view;
  if (sparsify) net_adj = &cert_view.emplace(cert.graph);
  Dinic prototype(n);
  prototype.reserve_arcs(2 * net_adj->num_edges());
  {
    NeighborScratch scratch(*net_adj);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : net_adj->neighbors(u, scratch.data())) {
        if (u < v) {
          prototype.add_arc(u, v, 1);
          prototype.add_arc(v, u, 1);
        }
      }
    }
  }
  std::atomic<std::uint32_t> lambda{d0};
  par::ThreadPool pool(threads);
  std::vector<Dinic> nets(pool.size(), prototype);
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, (n - 1) / (8 * pool.size()));
  pool.parallel_for_chunks(
      n - 1, chunk,
      [&](unsigned worker, std::uint64_t begin, std::uint64_t end) {
        Dinic& dinic = nets[worker];
        for (std::uint64_t k = begin; k < end; ++k) {
          const NodeId t = static_cast<NodeId>(k + 1);
          const std::int64_t limit =
              static_cast<std::int64_t>(
                  lambda.load(std::memory_order_relaxed)) + 1;
          std::int64_t flow = dinic.max_flow(0, t, limit);
          dinic.undo_flow();
          atomic_min(lambda, static_cast<std::uint32_t>(flow));
        }
      });
  return lambda.load();
}

}  // namespace hbnet
