#include "graph/connectivity.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <random>
#include <stdexcept>
#include <utility>

#include "check/check.hpp"
#include "check/validate.hpp"
#include "graph/maxflow.hpp"
#include "par/pool.hpp"

namespace hbnet {
namespace {

constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max() / 2;

/// Builds the vertex-split flow network with *unit* in->out arcs everywhere:
/// every vertex v becomes v_in = 2v, v_out = 2v+1 with a unit arc in->out;
/// every undirected edge {u,v} becomes u_out->v_in and v_out->u_in with unit
/// caps. The in->out arc of vertex v has arc index 2v (vertex arcs are added
/// first, one add_arc call each), so terminals of a concrete (s,t) solve can
/// be widened to kInf with set_arc_capacity and restored afterwards -- one
/// shared prototype serves every pair of the sweep.
Dinic make_split_prototype(const Graph& g) {
  Dinic dinic(2 * g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    dinic.add_arc(2 * v, 2 * v + 1, 1);
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      dinic.add_arc(2 * u + 1, 2 * v, 1);  // each direction added once
    }
  }
  return dinic;
}

/// One (s,t) solve on the shared split prototype: widen the terminals,
/// run Dinic up to `limit`, then restore the prototype (terminal caps back
/// to 1, all flow cleared). Exact as long as limit > kappa(s, t).
std::int64_t split_solve(Dinic& dinic, NodeId s, NodeId t,
                         std::int64_t limit) {
  dinic.set_arc_capacity(2 * s, kInf);
  dinic.set_arc_capacity(2 * t, kInf);
  std::int64_t flow = dinic.max_flow(2 * s + 1, 2 * t, limit);
  dinic.set_arc_capacity(2 * s, 1);
  dinic.set_arc_capacity(2 * t, 1);
  dinic.reset();
  return flow;
}

/// Atomic min-update; returns nothing, loops until the stored value is
/// <= candidate. Order independent, so parallel sweeps stay deterministic.
void atomic_min(std::atomic<std::uint32_t>& best, std::uint32_t candidate) {
  std::uint32_t seen = best.load(std::memory_order_relaxed);
  while (candidate < seen &&
         !best.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

/// Runs `tasks.size()` split-network solves distributed over the pool. Each
/// chunk clones the prototype once and reuses it via reset() across its
/// tasks; `limit_for` supplies the per-task flow cap (reading the shared
/// best-so-far bound), `apply` consumes the flow value. The best-so-far
/// pruning keeps results exact: the minimizing pair's bound is always above
/// its own flow value, so that solve is never truncated.
template <typename LimitFn, typename ApplyFn>
void split_sweep(const Graph& g,
                 const std::vector<std::pair<NodeId, NodeId>>& tasks,
                 unsigned threads, LimitFn&& limit_for, ApplyFn&& apply) {
  const Dinic prototype = make_split_prototype(g);
  par::ThreadPool pool(threads);
  // Chunks large enough to amortize the prototype copy, small enough to
  // load-balance uneven solve costs.
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, tasks.size() / (8 * pool.size()));
  pool.parallel_for_chunks(
      tasks.size(), chunk, [&](std::uint64_t begin, std::uint64_t end) {
        Dinic dinic = prototype;
        for (std::uint64_t k = begin; k < end; ++k) {
          auto [s, t] = tasks[k];
          std::int64_t limit = limit_for(s, t);
          if (limit <= 0) continue;
          apply(split_solve(dinic, s, t, limit));
        }
      });
}

}  // namespace

std::uint32_t max_disjoint_paths(const Graph& g, NodeId s, NodeId t) {
  if (s == t) throw std::invalid_argument("max_disjoint_paths: s == t");
  Dinic dinic = make_split_prototype(g);
  std::int64_t limit = std::min(g.degree(s), g.degree(t));
  return static_cast<std::uint32_t>(split_solve(dinic, s, t, limit + 1));
}

std::uint32_t vertex_connectivity(const Graph& g, unsigned threads) {
  HBNET_DCHECK_OK(check::validate(g));
  const NodeId n = g.num_nodes();
  if (n <= 1) return 0;
  auto [min_deg, max_deg] = g.degree_range();
  (void)max_deg;
  // Fix v0 of minimum degree. A minimum vertex cut C (|C| <= min_deg) leaves
  // at least one vertex of {v0} union N(v0) outside C: if v0 in C, then not
  // all of N(v0) fits in C \ {v0} (|C|-1 < min_deg <= deg(v0)). For a source
  // s outside C, every vertex t of another component of G - C is
  // non-adjacent to s, and kappa(s,t) = |C|. So scanning all non-neighbors
  // of each source in {v0} union N(v0) finds the minimum cut exactly.
  NodeId v0 = 0;
  for (NodeId v = 1; v < n; ++v) {
    if (g.degree(v) < g.degree(v0)) v0 = v;
  }
  std::vector<NodeId> sources{v0};
  for (NodeId u : g.neighbors(v0)) sources.push_back(u);
  std::vector<std::pair<NodeId, NodeId>> tasks;
  tasks.reserve(static_cast<std::size_t>(sources.size()) * n);
  for (NodeId s : sources) {
    for (NodeId t = 0; t < n; ++t) {
      if (t == s || g.has_edge(s, t)) continue;
      tasks.emplace_back(s, t);
    }
  }
  std::atomic<std::uint32_t> kappa{min_deg};
  split_sweep(
      g, tasks, threads,
      [&](NodeId s, NodeId t) -> std::int64_t {
        // flow <= min(deg s, deg t) always; the running bound prunes the
        // augmentation the moment a pair cannot improve the minimum.
        std::uint32_t cap = std::min(
            {g.degree(s), g.degree(t), kappa.load(std::memory_order_relaxed)});
        return static_cast<std::int64_t>(cap) + 1;
      },
      [&](std::int64_t flow) {
        atomic_min(kappa, static_cast<std::uint32_t>(flow));
      });
  return kappa.load();
}

bool check_local_connectivity_sampled(const Graph& g, std::uint32_t target,
                                      std::uint32_t pairs, std::uint64_t seed,
                                      unsigned threads) {
  if (g.num_nodes() < 2) return false;
  if (target == 0 || pairs == 0) return true;
  // Draw the pair list up front with the exact serial sequence, then fan the
  // flow solves out over the pool.
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(0, g.num_nodes() - 1);
  std::vector<std::pair<NodeId, NodeId>> tasks;
  tasks.reserve(pairs);
  for (std::uint32_t i = 0; i < pairs; ++i) {
    NodeId s = pick(rng);
    NodeId t = pick(rng);
    while (t == s) t = pick(rng);
    tasks.emplace_back(s, t);
  }
  std::atomic<bool> all_ok{true};
  split_sweep(
      g, tasks, threads,
      [&](NodeId, NodeId) -> std::int64_t {
        // flow >= target is all we need to know; once any pair failed the
        // remaining solves are skipped entirely (limit 0).
        return all_ok.load(std::memory_order_relaxed) ? target : 0;
      },
      [&](std::int64_t flow) {
        if (flow < static_cast<std::int64_t>(target)) {
          all_ok.store(false, std::memory_order_relaxed);
        }
      });
  return all_ok.load();
}

std::uint32_t edge_connectivity(const Graph& g, unsigned threads) {
  HBNET_DCHECK_OK(check::validate(g));
  const NodeId n = g.num_nodes();
  if (n <= 1) return 0;
  // lambda(G) = min over t != 0 of max-flow(0, t) on the un-split network.
  // The network is identical for every target, so it is built exactly once
  // and cleared with reset() between solves (each chunk clones it).
  Dinic prototype(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) {
        prototype.add_arc(u, v, 1);
        prototype.add_arc(v, u, 1);
      }
    }
  }
  std::atomic<std::uint32_t> lambda{g.degree(0)};
  par::ThreadPool pool(threads);
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, (n - 1) / (8 * pool.size()));
  pool.parallel_for_chunks(
      n - 1, chunk, [&](std::uint64_t begin, std::uint64_t end) {
        Dinic dinic = prototype;
        for (std::uint64_t k = begin; k < end; ++k) {
          const NodeId t = static_cast<NodeId>(k + 1);
          const std::int64_t limit =
              static_cast<std::int64_t>(
                  lambda.load(std::memory_order_relaxed)) + 1;
          std::int64_t flow = dinic.max_flow(0, t, limit);
          dinic.reset();
          atomic_min(lambda, static_cast<std::uint32_t>(flow));
        }
      });
  return lambda.load();
}

}  // namespace hbnet
