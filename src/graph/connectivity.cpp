#include "graph/connectivity.hpp"

#include <algorithm>
#include <limits>
#include <random>
#include <stdexcept>

#include "graph/maxflow.hpp"

namespace hbnet {
namespace {

/// Builds the vertex-split flow network: every vertex v becomes v_in = 2v,
/// v_out = 2v+1 with a unit arc in->out (infinite for s and t); every
/// undirected edge {u,v} becomes u_out->v_in and v_out->u_in with unit caps.
Dinic make_split_network(const Graph& g, NodeId s, NodeId t) {
  Dinic dinic(2 * g.num_nodes());
  constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max() / 2;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::int32_t cap = (v == s || v == t) ? kInf : 1;
    dinic.add_arc(2 * v, 2 * v + 1, cap);
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      dinic.add_arc(2 * u + 1, 2 * v, 1);  // each direction added once
    }
  }
  return dinic;
}

}  // namespace

std::uint32_t max_disjoint_paths(const Graph& g, NodeId s, NodeId t) {
  if (s == t) throw std::invalid_argument("max_disjoint_paths: s == t");
  Dinic dinic = make_split_network(g, s, t);
  std::int64_t limit = std::min(g.degree(s), g.degree(t));
  return static_cast<std::uint32_t>(
      dinic.max_flow(2 * s + 1, 2 * t, limit + 1));
}

std::uint32_t vertex_connectivity(const Graph& g) {
  const NodeId n = g.num_nodes();
  if (n <= 1) return 0;
  auto [min_deg, max_deg] = g.degree_range();
  (void)max_deg;
  std::uint32_t kappa = min_deg;
  // Fix v0 of minimum degree. A minimum vertex cut C (|C| <= min_deg) leaves
  // at least one vertex of {v0} union N(v0) outside C: if v0 in C, then not
  // all of N(v0) fits in C \ {v0} (|C|-1 < min_deg <= deg(v0)). For a source
  // s outside C, every vertex t of another component of G - C is
  // non-adjacent to s, and kappa(s,t) = |C|. So scanning all non-neighbors
  // of each source in {v0} union N(v0) finds the minimum cut exactly.
  NodeId v0 = 0;
  for (NodeId v = 1; v < n; ++v) {
    if (g.degree(v) < g.degree(v0)) v0 = v;
  }
  std::vector<NodeId> sources{v0};
  for (NodeId u : g.neighbors(v0)) sources.push_back(u);
  for (NodeId s : sources) {
    for (NodeId t = 0; t < n; ++t) {
      if (t == s || g.has_edge(s, t)) continue;
      kappa = std::min(kappa, max_disjoint_paths(g, s, t));
    }
  }
  return kappa;
}

bool check_local_connectivity_sampled(const Graph& g, std::uint32_t target,
                                      std::uint32_t pairs, std::uint64_t seed) {
  if (g.num_nodes() < 2) return false;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(0, g.num_nodes() - 1);
  for (std::uint32_t i = 0; i < pairs; ++i) {
    NodeId s = pick(rng);
    NodeId t = pick(rng);
    while (t == s) t = pick(rng);
    if (max_disjoint_paths(g, s, t) < target) return false;
  }
  return true;
}

std::uint32_t edge_connectivity(const Graph& g) {
  const NodeId n = g.num_nodes();
  if (n <= 1) return 0;
  // lambda(G) = min over t != 0 of max-flow(0, t) on the un-split network.
  std::uint32_t lambda = g.degree(0);
  for (NodeId t = 1; t < n; ++t) {
    Dinic dinic(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : g.neighbors(u)) {
        if (u < v) {
          dinic.add_arc(u, v, 1);
          dinic.add_arc(v, u, 1);
        }
      }
    }
    lambda = std::min(
        lambda, static_cast<std::uint32_t>(dinic.max_flow(
                    0, t, static_cast<std::int64_t>(lambda) + 1)));
  }
  return lambda;
}

}  // namespace hbnet
