// Even-Tarjan exact vertex-connectivity engine with checkpointed sweeps.
//
// The classical reduction (Even & Tarjan 1975; Even, "Graph Algorithms"
// ch. 6): kappa(G) is found by scanning *sources* v_1, v_2, ... in a fixed
// order, solving one unit-capacity max-flow on the vertex-split network per
// non-neighbor target, and stopping as soon as the number of fully scanned
// sources exceeds the best cut bound found so far. A minimum cut C has
// |C| = kappa vertices, so among any kappa+1 distinct sources at least one
// lies outside C; that source, scanned against every non-neighbor, meets a
// vertex of another component of G - C and its flow equals |C| exactly.
// Because the bound only decreases, the source set *re-shrinks* as the
// sweep improves: the engine never scans more than kappa(G)+1 sources,
// against the fixed min-degree+1 of the plain neighborhood schedule.
//
// On top of the reduction the engine adds:
//  * structural pruning -- a pair (s,t) is skipped without any flow work
//    when a lower bound on its local connectivity already reaches the
//    running cut bound (degree pigeonhole, then common-neighbor counting on
//    the sorted CSR adjacency; each common neighbor is an internally
//    disjoint length-2 path);
//  * single-source schedule for vertex-transitive graphs -- every Cayley
//    graph (the hyper butterfly included) admits an automorphism moving a
//    vertex outside any given minimum cut onto v_0, so scanning the single
//    source v_0 is exact; opt-in via SweepOptions::vertex_transitive;
//  * flow-network reuse -- one split prototype is built for the whole run
//    and cloned once per pool *worker* (not per pair, not per chunk); each
//    solve widens the two terminal arcs, runs Dinic to its pruned limit and
//    restores the clone with Dinic::reset();
//  * checkpoint/resume -- the schedule is a pure function of the graph
//    (no RNG, no wall clock), split into fixed-size blocks of targets; the
//    sweep state after every block is thread-count invariant and is
//    persisted as a versioned text checkpoint, so a killed multi-hour run
//    resumes at the last completed block and finishes byte-identically.
//
// Determinism contract: kappa, every SweepState field, and the checkpoint
// bytes are identical for every thread count. Pruning and flow limits read
// the bound frozen at the *block* start (not the live atomic), so the set
// of executed solves and every recorded flow value are schedule-determined;
// per-worker tallies are merged with commutative reductions only.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "graph/adjacency.hpp"
#include "graph/graph.hpp"
#include "graph/maxflow.hpp"

namespace hbnet {

namespace obs {
class MetricsRegistry;
class ProgressBoard;
}

/// Tuning and environment for a ConnectivitySweep run.
struct SweepOptions {
  /// Pool size; 0 = par::default_threads().
  unsigned threads = 0;
  /// Single-source schedule. Only correct on vertex-transitive graphs
  /// (Cayley graphs: HB, hypercube, wrapped butterfly); the caller asserts
  /// transitivity, the engine only DCHECKs regularity (a necessary
  /// condition).
  bool vertex_transitive = false;
  /// Targets per checkpoint block: the granularity of pruning-bound
  /// refresh, checkpoint writes, and progress callbacks.
  std::uint32_t block_size = 256;
  /// Run every flow solve on a Nagamochi-Ibaraki certificate (built at the
  /// bound frozen for the block, rebuilt only when that bound drops) instead
  /// of the full graph. Exact: the certificate preserves every cut up to the
  /// frozen bound and the flow limits never exceed it, so kappa, all solve
  /// and prune counts, and the checkpoint bytes are identical with this on
  /// or off. Pays off when kappa << min degree (the per-worker Dinic arena
  /// shrinks from O(|E|) to O(bound * |V|)).
  bool sparsify = false;
  /// Target-orbit reduction for the single-source schedule: maps a vertex
  /// to the canonical representative of its orbit under a subgroup of
  /// automorphisms fixing the scanned source, and must satisfy rep(rep(v))
  /// == rep(v) and rep(source) == source. Only targets that are their own
  /// representative are solved -- exact because kappa(source, v) ==
  /// kappa(source, rep(v)). Requires vertex_transitive; changes the
  /// checkpoint schedule token (a non-orbit checkpoint restarts cleanly).
  /// For HB(m,n) use hb_cube_orbit_representative (topology/hb_implicit.hpp).
  std::function<NodeId(NodeId)> orbit_rep;
  /// Stop (with ExactConnectivityResult::complete == false) after this many
  /// blocks in this run; 0 = run to completion. Test hook for kill/resume.
  std::uint64_t max_blocks = 0;
  /// Checkpoint file; empty = no persistence. Written atomically after
  /// every block; an existing compatible file is resumed from.
  std::string checkpoint_path;
  /// Optional instrumentation: solve/prune counters, the bound gauge, and
  /// the flow-size histogram land here, updated once per block.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional live progress: connectivity.bound / .solves / .pruned /
  /// .blocks / .stages slots, updated once per block on the caller thread
  /// (relaxed atomic stores on a dedicated channel; sweep results,
  /// metrics, and checkpoint bytes are unaffected).
  obs::ProgressBoard* progress = nullptr;
  /// Called after every completed block (and stage rollover) with the
  /// persisted state and the block count of the stage in progress.
  std::function<void(const struct SweepState&, std::uint32_t stage_blocks)>
      on_block;
};

/// The resumable sweep position plus identity of the graph it belongs to.
/// This struct *is* the checkpoint payload (format v1); every field is
/// deterministic given (graph, schedule, blocks processed).
struct SweepState {
  static constexpr std::uint32_t kVersion = 1;

  std::uint32_t version = kVersion;
  // Graph identity: a resumed run must match all three.
  std::uint32_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t fingerprint = 0;  // AdjacencyProvider::fingerprint() -- the
                                  // FNV-1a CSR digest in csr mode, the
                                  // mode-tagged digest for implicit providers
  // Schedule identity.
  bool single_source = false;
  bool orbit = false;  // single-source with target-orbit reduction
  std::uint32_t block_size = 0;
  // Position: stages_done sources fully scanned, plus blocks_done blocks of
  // the current stage. Normalized: a finished stage rolls over to
  // (stages_done + 1, 0) before being persisted.
  std::uint32_t stages_done = 0;
  std::uint32_t blocks_done = 0;
  // Results so far.
  std::uint32_t bound = 0;     // best cut size found (seeded with min degree)
  std::uint64_t solves = 0;    // max-flow solves executed
  std::uint64_t pruned = 0;    // pairs skipped by the structural bounds
  bool complete = false;       // true once bound == kappa(G) is proven
};

/// Outcome of ConnectivitySweep::run().
struct ExactConnectivityResult {
  std::uint32_t kappa = 0;     // exact iff complete
  bool complete = false;       // false only when max_blocks stopped the run
  std::uint32_t stages = 0;    // sources fully scanned
  std::uint64_t solves = 0;
  std::uint64_t pruned = 0;
};

/// Order-independent 64-bit FNV-1a digest of the CSR arrays (node count,
/// offsets, columns) -- the graph identity stored in checkpoints.
[[nodiscard]] std::uint64_t graph_fingerprint(const Graph& g);

/// Serializes a SweepState as the versioned text checkpoint format. The
/// bytes are a pure function of the state: no timestamps, no hostnames.
[[nodiscard]] std::string serialize_checkpoint(const SweepState& st);

/// Parses checkpoint bytes; nullopt on any malformed or wrong-version
/// input (a corrupt checkpoint restarts the sweep, it never aborts it).
[[nodiscard]] std::optional<SweepState> parse_checkpoint(
    const std::string& text);

/// Writes `st` to `path` atomically (temp file + rename). Returns false on
/// I/O failure.
bool save_checkpoint(const std::string& path, const SweepState& st);

/// Reads and parses `path`; nullopt if missing or malformed.
[[nodiscard]] std::optional<SweepState> load_checkpoint(
    const std::string& path);

/// One exact vertex-connectivity computation, resumable across runs.
///
/// Typical use:
///   ConnectivitySweep sweep(g, opts);
///   ExactConnectivityResult r = sweep.run();   // r.kappa once r.complete
///
/// The graph reference must outlive the sweep.
class ConnectivitySweep {
 public:
  /// CSR mode: wraps `g` in an owned CsrAdjacency view.
  ConnectivitySweep(const Graph& g, SweepOptions opts);

  /// Provider mode: runs against any adjacency source (CSR or implicit).
  /// The provider must outlive the sweep.
  ConnectivitySweep(const AdjacencyProvider& adj, SweepOptions opts);

  /// Runs the sweep (to completion, or until SweepOptions::max_blocks),
  /// checkpointing after every block when a checkpoint path is set.
  ExactConnectivityResult run();

  /// Current (post-run: final) sweep state.
  [[nodiscard]] const SweepState& state() const { return state_; }

  /// True when the constructor adopted an on-disk checkpoint.
  [[nodiscard]] bool resumed() const { return resumed_; }

  /// Why the on-disk checkpoint was NOT adopted (empty when resumed or when
  /// no checkpoint file existed).
  [[nodiscard]] const std::string& resume_note() const { return resume_note_; }

 private:
  void run_stage(unsigned stage_threads);
  [[nodiscard]] std::uint32_t sources_needed() const;
  void init();

  std::optional<CsrAdjacency> owned_csr_;  // set by the Graph constructor
  const AdjacencyProvider& adj_;
  SweepOptions opts_;
  SweepState state_;
  std::vector<NodeId> source_order_;  // all vertices, (degree, id) ascending
  bool resumed_ = false;
  std::string resume_note_;
};

/// Convenience wrapper: the Even-Tarjan engine with default options.
/// Exact for every graph (general schedule); see vertex_connectivity in
/// graph/connectivity.hpp, which delegates here.
[[nodiscard]] std::uint32_t vertex_connectivity_even_tarjan(
    const Graph& g, unsigned threads = 0);

/// Provider-generic variant of the above.
[[nodiscard]] std::uint32_t vertex_connectivity_even_tarjan(
    const AdjacencyProvider& adj, unsigned threads = 0);

namespace detail {

/// Builds the shared vertex-split unit-capacity flow prototype (see
/// connectivity.cpp for the arc layout contract: vertex v's in->out arc has
/// index 2v).
[[nodiscard]] Dinic make_split_prototype(const AdjacencyProvider& adj);

/// CSR convenience overload.
[[nodiscard]] Dinic make_split_prototype(const Graph& g);

/// One (s,t) solve on a clone of the split prototype: widens the terminal
/// arcs, runs Dinic up to `limit`, restores the clone. Exact whenever
/// limit > kappa(s, t).
std::int64_t split_solve(Dinic& dinic, NodeId s, NodeId t, std::int64_t limit);

/// |a cap b| for two sorted adjacency spans, counting stops early at `cap`.
/// A lower bound on kappa(s, t) for non-adjacent s, t (each common neighbor
/// is an internally disjoint length-2 path).
[[nodiscard]] std::uint32_t common_neighbors_at_least(
    std::span<const NodeId> a, std::span<const NodeId> b, std::uint32_t cap);

}  // namespace detail

}  // namespace hbnet
