#include "graph/connectivity_sweep.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "check/check.hpp"
#include "graph/sparsify.hpp"
#include "graph/validate.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "par/pool.hpp"

namespace hbnet {
namespace {

constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max() / 2;

/// Per-worker accumulator for one block: merged on the caller thread with
/// commutative operations only (sum, min, histogram bucket addition), so
/// the merged result is identical for every thread count and schedule.
struct BlockTally {
  std::uint64_t solves = 0;
  std::uint64_t pruned = 0;
  std::uint32_t min_flow = std::numeric_limits<std::uint32_t>::max();
  obs::Histogram flows;
};

}  // namespace

namespace detail {

Dinic make_split_prototype(const AdjacencyProvider& adj) {
  const NodeId n = adj.num_nodes();
  Dinic dinic(2 * n);
  dinic.reserve_arcs(n + 2 * adj.num_edges());
  for (NodeId v = 0; v < n; ++v) {
    dinic.add_arc(2 * v, 2 * v + 1, 1);
  }
  NeighborScratch scratch(adj);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : adj.neighbors(u, scratch.data())) {
      dinic.add_arc(2 * u + 1, 2 * v, 1);  // each direction added once
    }
  }
  return dinic;
}

Dinic make_split_prototype(const Graph& g) {
  const CsrAdjacency csr(g);
  return make_split_prototype(csr);
}

std::int64_t split_solve(Dinic& dinic, NodeId s, NodeId t,
                         std::int64_t limit) {
  dinic.set_arc_capacity(2 * s, kInf);
  dinic.set_arc_capacity(2 * t, kInf);
  std::int64_t flow = dinic.max_flow(2 * s + 1, 2 * t, limit);
  dinic.set_arc_capacity(2 * s, 1);
  dinic.set_arc_capacity(2 * t, 1);
  dinic.undo_flow();
  return flow;
}

std::uint32_t common_neighbors_at_least(std::span<const NodeId> a,
                                        std::span<const NodeId> b,
                                        std::uint32_t cap) {
  std::uint32_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      if (++count >= cap) return count;
      ++i, ++j;
    }
  }
  return count;
}

}  // namespace detail

std::uint64_t graph_fingerprint(const Graph& g) {
  std::uint64_t h = detail::kFnv1aBasis;
  detail::fnv1a_mix(h, g.num_nodes());
  for (std::uint64_t o : g.row_offsets()) detail::fnv1a_mix(h, o);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) detail::fnv1a_mix(h, u);
  }
  return h;
}

std::string serialize_checkpoint(const SweepState& st) {
  char fp[17];
  std::snprintf(fp, sizeof fp, "%016" PRIx64, st.fingerprint);
  std::ostringstream os;
  os << "hbnet-connectivity-checkpoint v" << st.version << '\n'
     << "graph nodes=" << st.num_nodes << " edges=" << st.num_edges
     << " fp=" << fp << '\n'
     << "schedule "
     << (st.orbit ? "single-source-orbits"
                  : st.single_source ? "single-source" : "even-tarjan")
     << " block=" << st.block_size << '\n'
     << "progress stages=" << st.stages_done << " blocks=" << st.blocks_done
     << " bound=" << st.bound << '\n'
     << "work solves=" << st.solves << " pruned=" << st.pruned << '\n'
     << "complete " << (st.complete ? 1 : 0) << '\n';
  return os.str();
}

std::optional<SweepState> parse_checkpoint(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  SweepState st;

  if (!std::getline(is, line) ||
      line != "hbnet-connectivity-checkpoint v1") {
    return std::nullopt;
  }
  if (!std::getline(is, line) ||
      std::sscanf(line.c_str(),
                  "graph nodes=%" SCNu32 " edges=%" SCNu64 " fp=%" SCNx64,
                  &st.num_nodes, &st.num_edges, &st.fingerprint) != 3) {
    return std::nullopt;
  }
  char schedule[32] = {0};
  if (!std::getline(is, line) ||
      std::sscanf(line.c_str(), "schedule %31s block=%" SCNu32, schedule,
                  &st.block_size) != 2) {
    return std::nullopt;
  }
  const std::string sched = schedule;
  if (sched == "single-source") {
    st.single_source = true;
  } else if (sched == "single-source-orbits") {
    st.single_source = true;
    st.orbit = true;
  } else if (sched != "even-tarjan") {
    return std::nullopt;
  }
  if (!std::getline(is, line) ||
      std::sscanf(line.c_str(),
                  "progress stages=%" SCNu32 " blocks=%" SCNu32
                  " bound=%" SCNu32,
                  &st.stages_done, &st.blocks_done, &st.bound) != 3) {
    return std::nullopt;
  }
  if (!std::getline(is, line) ||
      std::sscanf(line.c_str(), "work solves=%" SCNu64 " pruned=%" SCNu64,
                  &st.solves, &st.pruned) != 2) {
    return std::nullopt;
  }
  int complete = -1;
  if (!std::getline(is, line) ||
      std::sscanf(line.c_str(), "complete %d", &complete) != 1 ||
      (complete != 0 && complete != 1)) {
    return std::nullopt;
  }
  st.complete = complete == 1;
  // Anything after the complete line is not ours; reject it.
  if (std::getline(is, line) && !line.empty()) return std::nullopt;
  return st;
}

bool save_checkpoint(const std::string& path, const SweepState& st) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os << serialize_checkpoint(st);
    os.flush();
    if (!os) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<SweepState> load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_checkpoint(buf.str());
}

ConnectivitySweep::ConnectivitySweep(const Graph& g, SweepOptions opts)
    : owned_csr_(CsrAdjacency(g)), adj_(*owned_csr_), opts_(std::move(opts)) {
  HBNET_DCHECK_OK(check::validate(g));
  init();
}

ConnectivitySweep::ConnectivitySweep(const AdjacencyProvider& adj,
                                     SweepOptions opts)
    : adj_(adj), opts_(std::move(opts)) {
  init();
}

void ConnectivitySweep::init() {
  if (opts_.block_size == 0) opts_.block_size = 256;
  if (opts_.orbit_rep && !opts_.vertex_transitive) {
    throw std::invalid_argument(
        "SweepOptions::orbit_rep requires vertex_transitive (the orbit "
        "argument fixes the single scanned source)");
  }
  const NodeId n = adj_.num_nodes();
  state_.num_nodes = n;
  state_.num_edges = adj_.num_edges();
  state_.fingerprint = adj_.fingerprint();
  state_.single_source = opts_.vertex_transitive;
  state_.orbit = static_cast<bool>(opts_.orbit_rep);
  state_.block_size = opts_.block_size;
  if (n <= 1) {
    state_.complete = true;  // kappa of the empty/singleton graph is 0
    return;
  }
  auto [min_deg, max_deg] = adj_.degree_range();
  state_.bound = min_deg;
  if (opts_.vertex_transitive) {
    // Regularity is a necessary condition for vertex transitivity; the
    // caller vouches for the rest (the single-source schedule is only exact
    // on vertex-transitive graphs).
    HBNET_DCHECK_MSG(min_deg == max_deg,
                     "single-source schedule on a non-regular graph");
  }
  // Deterministic schedule: all vertices, (degree, id) ascending. Low
  // degree first both seeds the bound well and keeps the split networks'
  // terminal widening cheap.
  source_order_.resize(n);
  std::iota(source_order_.begin(), source_order_.end(), NodeId{0});
  std::sort(source_order_.begin(), source_order_.end(),
            [&](NodeId a, NodeId b) {
              return std::make_pair(adj_.degree(a), a) <
                     std::make_pair(adj_.degree(b), b);
            });
  if (state_.orbit) {
    HBNET_DCHECK_MSG(opts_.orbit_rep(source_order_[0]) == source_order_[0],
                     "orbit_rep must fix the scanned source");
  }
  if (!opts_.checkpoint_path.empty()) {
    if (std::optional<SweepState> loaded =
            load_checkpoint(opts_.checkpoint_path)) {
      std::string err = check::validate(*loaded, adj_);
      if (err.empty() && loaded->single_source != state_.single_source) {
        err = "checkpoint schedule mismatch (single-source vs even-tarjan)";
      }
      if (err.empty() && loaded->orbit != state_.orbit) {
        err = "checkpoint schedule mismatch (orbit reduction)";
      }
      if (err.empty() && loaded->block_size != state_.block_size) {
        err = "checkpoint block size mismatch";
      }
      if (err.empty()) {
        state_ = *loaded;
        resumed_ = true;
      } else {
        resume_note_ = err;
      }
    }
  }
}

std::uint32_t ConnectivitySweep::sources_needed() const {
  // Any bound+1 distinct fully-scanned sources prove the bound exact (one
  // of them avoids the minimum cut); a vertex-transitive graph needs one.
  return opts_.vertex_transitive ? 1 : state_.bound + 1;
}

ExactConnectivityResult ConnectivitySweep::run() {
  const NodeId n = adj_.num_nodes();
  auto result_from_state = [&] {
    ExactConnectivityResult r;
    r.kappa = state_.bound;
    r.complete = state_.complete;
    r.stages = state_.stages_done;
    r.solves = state_.solves;
    r.pruned = state_.pruned;
    return r;
  };
  auto persist = [&](std::uint32_t stage_blocks) {
    HBNET_DCHECK_OK(check::validate(state_));
    if (!opts_.checkpoint_path.empty()) {
      if (!save_checkpoint(opts_.checkpoint_path, state_)) {
        throw std::runtime_error("cannot write checkpoint " +
                                 opts_.checkpoint_path);
      }
      obs::FlightRecorder::record("checkpoint_write", state_.stages_done,
                                  state_.blocks_done, state_.bound);
    }
    if (opts_.on_block) opts_.on_block(state_, stage_blocks);
  };
  // Live progress slots, resolved once; block-granular updates happen on
  // the caller thread right after each serial merge.
  obs::ProgressBoard::Slot* prog_bound = nullptr;
  obs::ProgressBoard::Slot* prog_solves = nullptr;
  obs::ProgressBoard::Slot* prog_pruned = nullptr;
  obs::ProgressBoard::Slot* prog_blocks = nullptr;
  obs::ProgressBoard::Slot* prog_stages = nullptr;
  if (opts_.progress != nullptr) {
    prog_bound = &opts_.progress->slot("connectivity.bound");
    prog_solves = &opts_.progress->slot("connectivity.solves");
    prog_pruned = &opts_.progress->slot("connectivity.pruned");
    prog_blocks = &opts_.progress->slot("connectivity.blocks");
    prog_stages = &opts_.progress->slot("connectivity.stages");
    prog_bound->set(state_.bound);
    prog_solves->set(state_.solves);
    prog_pruned->set(state_.pruned);
    prog_stages->set(state_.stages_done);
  }

  if (state_.complete) return result_from_state();

  par::ThreadPool pool(opts_.threads);
  // Per-worker split networks. Without sparsification the prototype is
  // built once from the full adjacency and cloned per pool worker; with it,
  // the prototype is rebuilt from a fresh Nagamochi-Ibaraki certificate
  // whenever the frozen block bound has dropped since the last build (the
  // bound only decreases, and only at block boundaries, so rebuilds are
  // rare and schedule-determined). Every solve restores its clone with
  // Dinic::undo_flow() -- no construction or allocation inside a block.
  std::vector<Dinic> nets;
  std::optional<SparseCertificate> cert;
  std::uint64_t arena_arcs_peak = 0;
  auto publish_arena = [&](std::uint64_t cert_edges, std::uint64_t arcs) {
    arena_arcs_peak = std::max(arena_arcs_peak, arcs);
    if (opts_.metrics != nullptr) {
      obs::MetricsRegistry& m = *opts_.metrics;
      m.gauge("connectivity.cert_edges")
          .set(static_cast<double>(cert_edges));
      m.gauge("connectivity.arena_arcs_peak")
          .set(static_cast<double>(arena_arcs_peak));
    }
  };
  auto ensure_nets = [&](std::uint32_t block_bound) {
    if (!opts_.sparsify) {
      if (nets.empty()) {
        const Dinic prototype = detail::make_split_prototype(adj_);
        publish_arena(adj_.num_edges(), prototype.num_arcs());
        nets.assign(pool.size(), prototype);
      }
      return;
    }
    if (cert.has_value() && cert->k == block_bound) return;
    cert.emplace(sparse_certificate(adj_, block_bound));
    const Dinic prototype = detail::make_split_prototype(cert->graph);
    publish_arena(cert->graph.num_edges(), prototype.num_arcs());
    nets.assign(pool.size(), prototype);
    obs::FlightRecorder::record("sweep_certificate", cert->k,
                                cert->graph.num_edges(),
                                prototype.num_arcs());
  };
  std::vector<BlockTally> tallies(pool.size());
  // One neighbor-scratch buffer per worker for target adjacency reads
  // (zero-copy on CSR, filled arithmetically on implicit providers).
  std::vector<std::vector<NodeId>> scratches(
      pool.size(), std::vector<NodeId>(adj_.max_degree()));

  std::uint64_t blocks_this_run = 0;
  while (!state_.complete) {
    if (state_.stages_done >= sources_needed()) {
      state_.complete = true;
      persist(0);
      break;
    }
    const NodeId s = source_order_[state_.stages_done];
    // The source adjacency is read once per stage and shared by every
    // worker (pruning intersects against it).
    std::vector<NodeId> s_adj;
    {
      NeighborScratch s_scratch(adj_);
      const std::span<const NodeId> nb = adj_.neighbors(s, s_scratch.data());
      s_adj.assign(nb.begin(), nb.end());
    }
    // Targets: every non-neighbor of s, ascending (merge walk against the
    // sorted adjacency); under the orbit schedule, only orbit
    // representatives (kappa(s, t) == kappa(s, rep(t)), so the minimum
    // over representatives is the minimum over all targets).
    std::vector<NodeId> targets;
    targets.reserve(n - 1 - static_cast<NodeId>(s_adj.size()));
    {
      std::size_t j = 0;
      for (NodeId t = 0; t < n; ++t) {
        if (t == s) continue;
        while (j < s_adj.size() && s_adj[j] < t) ++j;
        if (j < s_adj.size() && s_adj[j] == t) continue;
        if (state_.orbit && opts_.orbit_rep(t) != t) continue;
        targets.push_back(t);
      }
    }
    const std::uint32_t num_blocks = static_cast<std::uint32_t>(
        (targets.size() + opts_.block_size - 1) / opts_.block_size);
    if (num_blocks == 0) {
      // No non-neighbor at all (s is adjacent to everything): the stage is
      // vacuously complete.
      ++state_.stages_done;
      state_.blocks_done = 0;
      persist(0);
      continue;
    }
    bool stopped = false;
    for (std::uint32_t b = state_.blocks_done; b < num_blocks; ++b) {
      if (opts_.max_blocks != 0 && blocks_this_run >= opts_.max_blocks) {
        stopped = true;
        break;
      }
      // The bound frozen at block start drives pruning AND flow limits:
      // both therefore depend only on the schedule position, never on the
      // race between workers, which keeps solve counts, flow histograms
      // and checkpoint bytes thread-count invariant. Freezing is exact:
      // the frozen bound is always >= kappa, so the decisive solve (source
      // outside the minimum cut, target across it) is never pruned and
      // never truncated below its true flow -- kappa(s,t) <= min(ds, dt)
      // for non-adjacent pairs and <= bound inductively, so capping the
      // limit at the bound (rather than bound+1) loses nothing and skips
      // the final level-graph phase of every saturated solve.
      const std::uint32_t block_bound = state_.bound;
      ensure_nets(block_bound);
      const std::uint64_t begin = std::uint64_t{b} * opts_.block_size;
      const std::uint64_t end =
          std::min<std::uint64_t>(targets.size(), begin + opts_.block_size);
      const std::uint64_t chunk =
          std::max<std::uint64_t>(1, (end - begin) / (8 * pool.size()));
      for (BlockTally& tally : tallies) tally = BlockTally{};
      pool.parallel_for_chunks(
          end - begin, chunk,
          [&](unsigned worker, std::uint64_t lo, std::uint64_t hi) {
            BlockTally& tally = tallies[worker];
            Dinic& net = nets[worker];
            NodeId* scratch = scratches[worker].data();
            const std::span<const NodeId> sa = s_adj;
            const std::uint32_t ds = static_cast<std::uint32_t>(sa.size());
            for (std::uint64_t k = lo; k < hi; ++k) {
              const NodeId t = targets[begin + k];
              const std::uint32_t dt = adj_.degree(t);
              // kappa(s,t) >= |N(s) cap N(t)| (disjoint length-2 paths);
              // pigeonhole gives |N(s) cap N(t)| >= ds + dt - (n-2) for
              // free, the merge count is exact up to block_bound.
              std::uint32_t lb;
              if (std::uint64_t{ds} + dt >=
                  std::uint64_t{n} - 2 + block_bound) {
                lb = block_bound;
              } else {
                lb = detail::common_neighbors_at_least(
                    sa, adj_.neighbors(t, scratch), block_bound);
              }
              if (lb >= block_bound) {
                ++tally.pruned;
                continue;
              }
              const std::int64_t limit = std::min({ds, dt, block_bound});
              const std::int64_t flow = detail::split_solve(net, s, t, limit);
              ++tally.solves;
              tally.flows.record(static_cast<std::uint64_t>(flow));
              tally.min_flow = std::min(tally.min_flow,
                                        static_cast<std::uint32_t>(flow));
            }
          });
      std::uint64_t solves = 0, pruned = 0;
      std::uint32_t block_min = std::numeric_limits<std::uint32_t>::max();
      for (const BlockTally& tally : tallies) {
        solves += tally.solves;
        pruned += tally.pruned;
        block_min = std::min(block_min, tally.min_flow);
      }
      state_.bound = std::min(state_.bound, block_min);
      state_.solves += solves;
      state_.pruned += pruned;
      ++blocks_this_run;
      if (b + 1 == num_blocks) {  // normalized stage rollover
        ++state_.stages_done;
        state_.blocks_done = 0;
      } else {
        state_.blocks_done = b + 1;
      }
      if (opts_.metrics != nullptr) {
        obs::MetricsRegistry& m = *opts_.metrics;
        m.counter("connectivity.solves").inc(solves);
        m.counter("connectivity.pruned").inc(pruned);
        m.counter("connectivity.blocks").inc();
        if (b + 1 == num_blocks) m.counter("connectivity.stages").inc();
        m.gauge("connectivity.bound").set(state_.bound);
        for (const BlockTally& tally : tallies) {
          m.histogram("connectivity.flow").merge(tally.flows);
        }
      }
      if (prog_bound != nullptr) {
        prog_bound->set(state_.bound);
        prog_solves->add(solves);
        prog_pruned->add(pruned);
        prog_blocks->add(1);
        prog_stages->set(state_.stages_done);
      }
      obs::FlightRecorder::record("sweep_block", state_.stages_done,
                                  state_.blocks_done, state_.bound);
      persist(num_blocks);
    }
    if (stopped) break;
  }
  return result_from_state();
}

std::uint32_t vertex_connectivity_even_tarjan(const Graph& g,
                                              unsigned threads) {
  const CsrAdjacency csr(g);
  return vertex_connectivity_even_tarjan(csr, threads);
}

std::uint32_t vertex_connectivity_even_tarjan(const AdjacencyProvider& adj,
                                              unsigned threads) {
  SweepOptions opts;
  opts.threads = threads;
  ConnectivitySweep sweep(adj, std::move(opts));
  return sweep.run().kappa;
}

}  // namespace hbnet
