#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/check.hpp"
#include "graph/validate.hpp"

namespace hbnet {

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  if (u == v) return;  // no self loops in simple graphs
  if (u >= num_nodes_ || v >= num_nodes_) {
    throw std::out_of_range("GraphBuilder::add_edge: node id out of range");
  }
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() const {
  // Dedup on a sorted copy, then emit both directions in CSR.
  std::vector<std::pair<NodeId, NodeId>> uniq = edges_;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (auto [u, v] : uniq) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> columns(uniq.size() * 2);
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (auto [u, v] : uniq) {
    columns[cursor[u]++] = v;
    columns[cursor[v]++] = u;
  }
  // Each row is already sorted because uniq is sorted by (u,v) for the forward
  // direction, but reverse-direction entries arrive in u-order too; still,
  // sort each row defensively (rows are short for bounded-degree graphs).
  for (NodeId v = 0; v < num_nodes_; ++v) {
    std::sort(columns.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              columns.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }
  Graph g(std::move(offsets), std::move(columns));
  HBNET_DCHECK_OK(check::validate(g));
  return g;
}

}  // namespace hbnet
