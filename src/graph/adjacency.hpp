// Neighborhood-provider abstraction: the read-only adjacency interface the
// graph algorithms (BFS, connectivity sweeps, sparse certificates, the Dinic
// network builders) consume instead of a concrete CSR `Graph&`.
//
// Two implementations ship with the library:
//  * CsrAdjacency -- zero-copy view over a materialized Graph; neighbors()
//    returns the CSR span directly and ignores the scratch buffer.
//  * HbImplicitAdjacency (topology/hb_implicit.hpp) -- enumerates the m+4
//    neighbors of a hyper-butterfly vertex arithmetically from the Cayley
//    generator set, so HB instances are analyzed without ever materializing
//    O(|E|) adjacency (the same pattern the sharded simulator uses for O(1)
//    routing).
//
// Contract: neighbors(v, scratch) returns the adjacency of v sorted strictly
// ascending, with no self loops and no duplicates -- exactly the CSR
// invariants -- either as a view into provider-owned storage or written into
// `scratch` (caller-supplied, at least max_degree() entries). Every provider
// is safe for concurrent reads from multiple threads as long as each thread
// passes its own scratch buffer.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace hbnet {

namespace detail {

/// One FNV-1a step over the 8 bytes of `v` (little-endian byte order).
/// Shared by every adjacency fingerprint so CSR and generic enumeration
/// digest identical inputs to identical values.
inline void fnv1a_mix(std::uint64_t& h, std::uint64_t v) {
  for (unsigned byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffu;
    h *= 1099511628211ull;
  }
}

inline constexpr std::uint64_t kFnv1aBasis = 1469598103934665603ull;

}  // namespace detail

/// Abstract read-only neighborhood source (see file comment for the
/// contract). Algorithms written against this interface run unchanged on
/// materialized CSR graphs and on implicit, generator-defined topologies.
class AdjacencyProvider {
 public:
  virtual ~AdjacencyProvider() = default;

  /// Number of vertices (dense ids 0..num_nodes()-1).
  [[nodiscard]] virtual NodeId num_nodes() const = 0;

  /// Number of undirected edges.
  [[nodiscard]] virtual std::uint64_t num_edges() const = 0;

  /// Degree of `v`.
  [[nodiscard]] virtual std::uint32_t degree(NodeId v) const = 0;

  /// Neighbors of `v`, sorted strictly ascending. `scratch` must hold at
  /// least max_degree() entries; providers that own contiguous storage
  /// (CSR) return a view and leave it untouched.
  [[nodiscard]] virtual std::span<const NodeId> neighbors(
      NodeId v, NodeId* scratch) const = 0;

  /// Minimum and maximum degree; {0,0} for the empty graph. The default
  /// scans every vertex; regular providers override with O(1).
  [[nodiscard]] virtual std::pair<std::uint32_t, std::uint32_t> degree_range()
      const;

  /// Stable identity digest of the adjacency structure, stored in sweep
  /// checkpoints. The default enumerates the graph and reproduces
  /// graph_fingerprint() of the equivalent CSR; implicit providers override
  /// with a mode-tagged digest so a checkpoint taken in one adjacency mode
  /// is never resumed in another.
  [[nodiscard]] virtual std::uint64_t fingerprint() const;

  /// Human-readable mode tag ("csr", "hb-implicit(5,4)").
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Largest degree (upper bound for scratch sizing).
  [[nodiscard]] std::uint32_t max_degree() const {
    return degree_range().second;
  }
};

/// Caller-owned scratch buffer sized for one provider, one per thread.
class NeighborScratch {
 public:
  explicit NeighborScratch(const AdjacencyProvider& adj)
      : buf_(adj.max_degree()) {}
  [[nodiscard]] NodeId* data() { return buf_.data(); }

 private:
  std::vector<NodeId> buf_;
};

/// Zero-copy provider over a materialized CSR Graph. The graph must outlive
/// the adjacency view.
class CsrAdjacency final : public AdjacencyProvider {
 public:
  explicit CsrAdjacency(const Graph& g) : g_(g) {}

  [[nodiscard]] NodeId num_nodes() const override { return g_.num_nodes(); }
  [[nodiscard]] std::uint64_t num_edges() const override {
    return g_.num_edges();
  }
  [[nodiscard]] std::uint32_t degree(NodeId v) const override {
    return g_.degree(v);
  }
  [[nodiscard]] std::span<const NodeId> neighbors(
      NodeId v, NodeId* /*scratch*/) const override {
    return g_.neighbors(v);
  }
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> degree_range()
      const override {
    return g_.degree_range();
  }
  [[nodiscard]] std::uint64_t fingerprint() const override;
  [[nodiscard]] std::string describe() const override { return "csr"; }

  [[nodiscard]] const Graph& graph() const { return g_; }

 private:
  const Graph& g_;
};

}  // namespace hbnet
