#include "graph/maxflow.hpp"

#include <algorithm>

namespace hbnet {

std::uint32_t Dinic::add_arc(std::uint32_t from, std::uint32_t to,
                             std::int32_t capacity) {
  std::uint32_t index = static_cast<std::uint32_t>(arcs_.size());
  arcs_.push_back({to, head_[from], capacity, capacity});
  head_[from] = static_cast<std::int32_t>(index);
  arcs_.push_back({from, head_[to], 0, 0});
  head_[to] = static_cast<std::int32_t>(index) + 1;
  return index;
}

void Dinic::reset() {
  for (Arc& arc : arcs_) arc.cap = arc.cap0;
  touched_.clear();
}

void Dinic::undo_flow() {
  // Entries may repeat (one per augmenting path through the arc); restoring
  // to cap0 is idempotent, so duplicates are harmless.
  for (std::uint32_t a : touched_) {
    arcs_[a].cap = arcs_[a].cap0;
    arcs_[a ^ 1].cap = arcs_[a ^ 1].cap0;
  }
  touched_.clear();
}

bool Dinic::build_levels(std::uint32_t s, std::uint32_t t) {
  std::fill(level_.begin(), level_.end(), -1);
  bfs_queue_.clear();
  level_[s] = 0;
  bfs_queue_.push_back(s);
  for (std::size_t qi = 0; qi < bfs_queue_.size(); ++qi) {
    const std::uint32_t u = bfs_queue_[qi];
    for (std::int32_t a = head_[u]; a != -1; a = arcs_[a].next) {
      if (arcs_[a].cap > 0 && level_[arcs_[a].to] < 0) {
        level_[arcs_[a].to] = level_[u] + 1;
        // Early exit: BFS labels level by level, so everything at a level
        // below t is already labelled, and vertices labelled after t could
        // only sit at t's level or deeper -- no augmenting shortest path
        // uses them. Unlabelled vertices keep level -1 and are skipped by
        // the DFS level check.
        if (arcs_[a].to == t) return true;
        bfs_queue_.push_back(arcs_[a].to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t Dinic::augment(std::uint32_t u, std::uint32_t t,
                            std::int64_t up_to) {
  if (u == t) return up_to;
  for (std::int32_t& a = iter_[u]; a != -1; a = arcs_[a].next) {
    Arc& arc = arcs_[a];
    if (arc.cap <= 0 || level_[arc.to] != level_[u] + 1) continue;
    std::int64_t pushed =
        augment(arc.to, t, std::min<std::int64_t>(up_to, arc.cap));
    if (pushed > 0) {
      arc.cap -= static_cast<std::int32_t>(pushed);
      arcs_[a ^ 1].cap += static_cast<std::int32_t>(pushed);
      touched_.push_back(static_cast<std::uint32_t>(a));
      return pushed;
    }
  }
  return 0;
}

std::int64_t Dinic::max_flow(std::uint32_t s, std::uint32_t t,
                             std::int64_t limit) {
  std::int64_t flow = 0;
  while (flow < limit && build_levels(s, t)) {
    iter_ = head_;
    while (flow < limit) {
      std::int64_t pushed = augment(s, t, limit - flow);
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

}  // namespace hbnet
