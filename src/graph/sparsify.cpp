#include "graph/sparsify.hpp"

#include <vector>

#include "graph/builder.hpp"

namespace hbnet {

SparseCertificate sparse_certificate(const AdjacencyProvider& adj,
                                     std::uint32_t k) {
  const NodeId n = adj.num_nodes();
  GraphBuilder builder(n);
  if (k == 0 || n == 0) return {builder.build(), k};

  // Scan-first search: always scan an unscanned vertex with maximum scan
  // count r. The bucket queue holds one entry per r-increment; entries go
  // stale when the vertex is scanned or bumped again, and are skipped on
  // pop. r(v) < degree(v) <= max_degree bounds the bucket count.
  std::vector<std::uint32_t> r(n, 0);
  std::vector<char> scanned(n, 0);
  std::vector<std::vector<NodeId>> buckets(adj.max_degree() + 2);
  buckets[0].reserve(n);
  // Seed descending so LIFO pops scan vertex 0 first; any scan order that
  // respects max-r is a valid certificate, this one is also deterministic.
  for (NodeId v = n; v-- > 0;) buckets[0].push_back(v);

  NeighborScratch scratch(adj);
  std::size_t rmax = 0;
  for (NodeId remaining = n; remaining > 0; --remaining) {
    NodeId x;
    for (;;) {
      while (buckets[rmax].empty()) --rmax;
      x = buckets[rmax].back();
      buckets[rmax].pop_back();
      if (!scanned[x] && r[x] == rmax) break;
    }
    scanned[x] = 1;
    for (NodeId y : adj.neighbors(x, scratch.data())) {
      if (scanned[y]) continue;
      // The edge (x,y) lands in forest E_{r(y)+1}; the union of the first
      // k forests is the certificate.
      if (r[y] < k) builder.add_edge(x, y);
      ++r[y];
      buckets[r[y]].push_back(y);
      if (r[y] > rmax) rmax = r[y];
    }
  }
  return {builder.build(), k};
}

SparseCertificate sparse_certificate(const Graph& g, std::uint32_t k) {
  const CsrAdjacency csr(g);
  return sparse_certificate(csr, k);
}

}  // namespace hbnet
