// Embedding validation: checks that a claimed guest->host vertex map is a
// genuine subgraph embedding (injective and edge preserving, dilation 1) or
// measures its dilation when it is not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace hbnet {

/// Result of validating an embedding of `guest` into `host`.
struct EmbeddingCheck {
  bool injective = false;
  bool dilation_one = false;   // every guest edge maps onto a host edge
  std::uint32_t dilation = 0;  // max host distance over guest edges (if
                               // computed; 0 when dilation_one)
  std::string error;           // first violation, empty when clean
};

/// Validates `map` as an embedding of guest into host (dilation-1 subgraph
/// embedding check only; fast, no BFS).
[[nodiscard]] EmbeddingCheck check_embedding(const Graph& guest,
                                             const Graph& host,
                                             const std::vector<NodeId>& map);

/// Like check_embedding but additionally computes the true dilation (max
/// host-graph distance over guest edges) when the map is injective but not
/// dilation-1. Costs one BFS per guest edge in the worst case.
[[nodiscard]] EmbeddingCheck check_embedding_with_dilation(
    const Graph& guest, const Graph& host, const std::vector<NodeId>& map);

}  // namespace hbnet
