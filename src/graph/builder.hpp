// Mutable edge-list builder that produces the immutable CSR Graph.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace hbnet {

/// Accumulates undirected edges and finalizes into a Graph.
///
/// The builder is forgiving: self loops are dropped, duplicate edges are
/// deduplicated and edges are symmetrized on finalize(). This lets topology
/// generators simply emit every generator image of every vertex without
/// worrying about double-emission.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Record the undirected edge {u, v}. Self loops are silently ignored.
  void add_edge(NodeId u, NodeId v);

  /// Number of vertices the final graph will have.
  [[nodiscard]] NodeId num_nodes() const { return num_nodes_; }

  /// Build the CSR graph. The builder may be reused afterwards (it keeps its
  /// accumulated edges).
  [[nodiscard]] Graph build() const;

 private:
  NodeId num_nodes_;
  std::vector<std::pair<NodeId, NodeId>> edges_;  // stored with u < v
};

}  // namespace hbnet
