// Structural validators for the graph-layer invariants (CSR
// well-formedness and ConnectivitySweep checkpoint state), used by the
// HBNET_DCHECK_OK sites in builders and analysis entry points (and
// directly by tests). The HyperButterfly validator lives in
// core/validate.hpp; both stay in namespace hbnet::check so call sites
// read `check::validate(x)` regardless of which subsystem defines the
// overload.
//
// Each overload returns an empty string when the object is well formed and
// a description of the *first* violation otherwise, so callers can route
// the result through HBNET_CHECK_OK / HBNET_DCHECK_OK or report it softly.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace hbnet {
class AdjacencyProvider;
struct SweepState;
}

namespace hbnet::check {

/// CSR well-formedness: offsets monotone and consistent with the column
/// array, every adjacency strictly ascending (no duplicates), no self
/// loops, every target in range, and undirected symmetry (u in adj(v) iff
/// v in adj(u)). Cost O(n + m log deg).
[[nodiscard]] std::string validate(const Graph& g);

/// ConnectivitySweep checkpoint-state invariants: supported format version,
/// nonzero block size, position and bound within range for the recorded
/// graph shape, work counters bounded by the pair count, and normalized
/// stage position (a complete state never sits mid-stage). Used by the
/// sweep before every checkpoint write and on every resume.
[[nodiscard]] std::string validate(const SweepState& st);

/// The above plus graph identity: a checkpoint may only be resumed against
/// the exact adjacency it was taken from (node and edge counts and the
/// provider fingerprint must all match; the fingerprint is mode-tagged, so
/// a CSR checkpoint never resumes against an implicit provider or vice
/// versa).
[[nodiscard]] std::string validate(const SweepState& st,
                                   const AdjacencyProvider& adj);

/// CSR convenience overload of the identity check.
[[nodiscard]] std::string validate(const SweepState& st, const Graph& g);

}  // namespace hbnet::check
