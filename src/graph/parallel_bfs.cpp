#include "graph/parallel_bfs.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "check/check.hpp"
#include "graph/validate.hpp"
#include "par/pool.hpp"

namespace hbnet {
namespace {

/// Runs fn(source, dist) for every vertex over the shared pool. Each chunk
/// owns its BFS scratch, reused across its sources, so there is no shared
/// mutable state beyond whatever fn itself reduces into. All three parallel
/// sweep entry points funnel through here, so one DCHECK covers them.
template <typename Fn>
void for_each_source(const Graph& g, unsigned threads, Fn&& fn) {
  HBNET_DCHECK_OK(check::validate(g));
  par::ThreadPool pool(threads);
  const NodeId n = g.num_nodes();
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, std::uint64_t{n} / (8 * pool.size()));
  pool.parallel_for_chunks(
      n, chunk, [&](std::uint64_t begin, std::uint64_t end) {
        std::vector<Dist> dist(n);
        std::vector<NodeId> frontier, fringe;
        frontier.reserve(n);
        fringe.reserve(n);
        for (std::uint64_t s = begin; s < end; ++s) {
          std::fill(dist.begin(), dist.end(), kUnreachable);
          frontier.assign(1, static_cast<NodeId>(s));
          dist[s] = 0;
          Dist level = 0;
          while (!frontier.empty()) {
            ++level;
            fringe.clear();
            for (NodeId u : frontier) {
              for (NodeId v : g.neighbors(u)) {
                if (dist[v] != kUnreachable) continue;
                dist[v] = level;
                fringe.push_back(v);
              }
            }
            frontier.swap(fringe);
          }
          fn(static_cast<NodeId>(s), dist);
        }
      });
}

}  // namespace

Dist parallel_diameter(const Graph& g, unsigned threads) {
  if (g.num_nodes() == 0) return 0;
  std::atomic<Dist> best{0};
  std::atomic<bool> disconnected{false};
  for_each_source(g, threads, [&](NodeId, const std::vector<Dist>& dist) {
    Dist ecc = 0;
    for (Dist d : dist) {
      if (d == kUnreachable) {
        disconnected.store(true, std::memory_order_relaxed);
        return;
      }
      ecc = std::max(ecc, d);
    }
    Dist seen = best.load(std::memory_order_relaxed);
    while (ecc > seen &&
           !best.compare_exchange_weak(seen, ecc, std::memory_order_relaxed)) {
    }
  });
  return disconnected.load() ? kUnreachable : best.load();
}

std::vector<Dist> parallel_eccentricities(const Graph& g, unsigned threads) {
  std::vector<Dist> ecc(g.num_nodes(), 0);
  for_each_source(g, threads, [&](NodeId s, const std::vector<Dist>& dist) {
    Dist e = 0;
    for (Dist d : dist) {
      if (d == kUnreachable) {
        e = kUnreachable;
        break;
      }
      e = std::max(e, d);
    }
    ecc[s] = e;  // disjoint slots: no synchronization needed
  });
  return ecc;
}

double parallel_average_distance(const Graph& g, unsigned threads) {
  if (g.num_nodes() <= 1) return 0.0;
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::uint64_t> pairs{0};
  for_each_source(g, threads, [&](NodeId s, const std::vector<Dist>& dist) {
    std::uint64_t local = 0, count = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == s || dist[v] == kUnreachable) continue;
      local += dist[v];
      ++count;
    }
    total.fetch_add(local, std::memory_order_relaxed);
    pairs.fetch_add(count, std::memory_order_relaxed);
  });
  std::uint64_t p = pairs.load();
  if (p == 0) return 0.0;
  // long double division matches the serial average_distance() bit for bit
  // (the integer sum is exact in both).
  return static_cast<double>(static_cast<long double>(total.load()) /
                             static_cast<long double>(p));
}

}  // namespace hbnet
