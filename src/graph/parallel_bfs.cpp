#include "graph/parallel_bfs.hpp"

#include <atomic>
#include <thread>
#include <vector>

namespace hbnet {
namespace {

unsigned resolve_threads(unsigned threads, NodeId work_items) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads > work_items) threads = work_items == 0 ? 1 : work_items;
  return threads;
}

/// Runs fn(source) for every vertex, work-stealing via an atomic counter.
template <typename Fn>
void for_each_source(const Graph& g, unsigned threads, Fn&& fn) {
  std::atomic<NodeId> next{0};
  auto worker = [&] {
    // Per-worker BFS scratch reused across sources to avoid reallocation.
    std::vector<Dist> dist(g.num_nodes());
    std::vector<NodeId> frontier, fringe;
    frontier.reserve(g.num_nodes());
    fringe.reserve(g.num_nodes());
    for (NodeId s = next.fetch_add(1); s < g.num_nodes();
         s = next.fetch_add(1)) {
      std::fill(dist.begin(), dist.end(), kUnreachable);
      frontier.assign(1, s);
      dist[s] = 0;
      Dist level = 0;
      while (!frontier.empty()) {
        ++level;
        fringe.clear();
        for (NodeId u : frontier) {
          for (NodeId v : g.neighbors(u)) {
            if (dist[v] != kUnreachable) continue;
            dist[v] = level;
            fringe.push_back(v);
          }
        }
        frontier.swap(fringe);
      }
      fn(s, dist);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

}  // namespace

Dist parallel_diameter(const Graph& g, unsigned threads) {
  if (g.num_nodes() == 0) return 0;
  threads = resolve_threads(threads, g.num_nodes());
  std::atomic<Dist> best{0};
  std::atomic<bool> disconnected{false};
  for_each_source(g, threads, [&](NodeId, const std::vector<Dist>& dist) {
    Dist ecc = 0;
    for (Dist d : dist) {
      if (d == kUnreachable) {
        disconnected.store(true, std::memory_order_relaxed);
        return;
      }
      ecc = std::max(ecc, d);
    }
    Dist seen = best.load(std::memory_order_relaxed);
    while (ecc > seen &&
           !best.compare_exchange_weak(seen, ecc, std::memory_order_relaxed)) {
    }
  });
  return disconnected.load() ? kUnreachable : best.load();
}

double parallel_average_distance(const Graph& g, unsigned threads) {
  if (g.num_nodes() <= 1) return 0.0;
  threads = resolve_threads(threads, g.num_nodes());
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::uint64_t> pairs{0};
  for_each_source(g, threads, [&](NodeId s, const std::vector<Dist>& dist) {
    std::uint64_t local = 0, count = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == s || dist[v] == kUnreachable) continue;
      local += dist[v];
      ++count;
    }
    total.fetch_add(local, std::memory_order_relaxed);
    pairs.fetch_add(count, std::memory_order_relaxed);
  });
  std::uint64_t p = pairs.load();
  return p == 0 ? 0.0 : static_cast<double>(total.load()) / static_cast<double>(p);
}

}  // namespace hbnet
