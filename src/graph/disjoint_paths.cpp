#include "graph/disjoint_paths.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "graph/maxflow.hpp"

namespace hbnet {

PathFamilyCheck check_path(const Graph& g, const Path& p, NodeId s, NodeId t) {
  PathFamilyCheck r;
  auto fail = [&r](const std::string& msg) {
    r.ok = false;
    r.error = msg;
    return r;
  };
  if (p.empty()) return fail("empty path");
  if (p.front() != s) return fail("path does not start at s");
  if (p.back() != t) return fail("path does not end at t");
  std::unordered_set<NodeId> seen;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (!seen.insert(p[i]).second) {
      std::ostringstream os;
      os << "repeated vertex " << p[i] << " at position " << i;
      return fail(os.str());
    }
    if (i > 0 && !g.has_edge(p[i - 1], p[i])) {
      std::ostringstream os;
      os << "non-edge (" << p[i - 1] << "," << p[i] << ") at position " << i;
      return fail(os.str());
    }
  }
  return r;
}

PathFamilyCheck check_disjoint_paths(const Graph& g,
                                     std::span<const Path> paths, NodeId s,
                                     NodeId t) {
  PathFamilyCheck r;
  std::unordered_set<NodeId> interior;  // union of interiors seen so far
  for (std::size_t k = 0; k < paths.size(); ++k) {
    PathFamilyCheck single = check_path(g, paths[k], s, t);
    if (!single.ok) {
      std::ostringstream os;
      os << "path " << k << ": " << single.error;
      r.ok = false;
      r.error = os.str();
      return r;
    }
    for (std::size_t i = 1; i + 1 < paths[k].size(); ++i) {
      if (!interior.insert(paths[k][i]).second) {
        std::ostringstream os;
        os << "paths share interior vertex " << paths[k][i] << " (path " << k
           << ")";
        r.ok = false;
        r.error = os.str();
        return r;
      }
    }
  }
  return r;
}

std::vector<Path> flow_disjoint_paths(const Graph& g, NodeId s, NodeId t,
                                      std::pair<NodeId, NodeId> forbidden_edge) {
  // Vertex-split network: v_in = 2v, v_out = 2v+1; unit in->out arcs except
  // at the terminals; unit arcs u_out -> v_in per direction of each edge.
  Dinic dinic(2 * g.num_nodes());
  constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max() / 2;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    dinic.add_arc(2 * v, 2 * v + 1, (v == s || v == t) ? kInf : 1);
  }
  auto is_forbidden = [&](NodeId a, NodeId b) {
    auto [x, y] = forbidden_edge;
    return (a == x && b == y) || (a == y && b == x);
  };
  // Remember, per vertex, the arc indices leaving v_out so we can walk the
  // flow decomposition afterwards.
  std::vector<std::vector<std::uint32_t>> out_arcs(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (is_forbidden(u, v)) continue;
      out_arcs[u].push_back(dinic.add_arc(2 * u + 1, 2 * v, 1));
    }
  }
  std::int64_t limit =
      static_cast<std::int64_t>(std::min(g.degree(s), g.degree(t))) + 1;
  std::int64_t flow = dinic.max_flow(2 * s + 1, 2 * t, limit);

  // Decompose: from s, repeatedly follow saturated arcs, consuming them.
  std::vector<std::vector<std::uint32_t>> flow_out(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (std::uint32_t arc : out_arcs[u]) {
      if (dinic.flow_on(arc) > 0) {
        flow_out[u].push_back(arc);
      }
    }
  }
  std::vector<Path> paths;
  for (std::int64_t k = 0; k < flow; ++k) {
    Path p{s};
    NodeId cur = s;
    while (cur != t) {
      // Follow and consume one unit of flow out of cur.
      std::uint32_t arc = flow_out[cur].back();
      flow_out[cur].pop_back();
      cur = dinic.arc_to(arc) / 2;  // v_in -> vertex id
      p.push_back(cur);
    }
    paths.push_back(std::move(p));
  }
  return paths;
}

std::size_t max_path_length(std::span<const Path> paths) {
  std::size_t best = 0;
  for (const Path& p : paths) {
    if (!p.empty()) best = std::max(best, p.size() - 1);
  }
  return best;
}

}  // namespace hbnet
