#include "graph/bfs.hpp"

#include <algorithm>
#include <queue>
#include <random>
#include <stdexcept>

#include "graph/parallel_bfs.hpp"

namespace hbnet {

BfsResult bfs(const Graph& g, NodeId source) {
  const CsrAdjacency csr(g);
  return bfs(csr, source);
}

BfsResult bfs(const AdjacencyProvider& adj, NodeId source) {
  if (source >= adj.num_nodes()) {
    throw std::out_of_range("bfs: source out of range");
  }
  BfsResult r;
  r.dist.assign(adj.num_nodes(), kUnreachable);
  r.parent.assign(adj.num_nodes(), kInvalidNode);
  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  NeighborScratch scratch(adj);
  r.dist[source] = 0;
  Dist d = 0;
  while (!frontier.empty()) {
    ++d;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : adj.neighbors(u, scratch.data())) {
        if (r.dist[v] != kUnreachable) continue;
        r.dist[v] = d;
        r.parent[v] = u;
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }
  return r;
}

BfsResult bfs_avoiding(const Graph& g, NodeId source,
                       const std::vector<char>& faulty) {
  if (source >= g.num_nodes()) {
    throw std::out_of_range("bfs: source out of range");
  }
  if (faulty.size() != g.num_nodes()) {
    throw std::invalid_argument("bfs_avoiding: faulty mask size mismatch");
  }
  if (faulty[source]) {
    throw std::invalid_argument("bfs_avoiding: source is faulty");
  }
  BfsResult r;
  r.dist.assign(g.num_nodes(), kUnreachable);
  r.parent.assign(g.num_nodes(), kInvalidNode);
  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  r.dist[source] = 0;
  Dist d = 0;
  while (!frontier.empty()) {
    ++d;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : g.neighbors(u)) {
        if (r.dist[v] != kUnreachable || faulty[v]) continue;
        r.dist[v] = d;
        r.parent[v] = u;
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }
  return r;
}

Dist bfs_distance(const Graph& g, NodeId s, NodeId t) {
  if (s == t) return 0;
  // Level-synchronous BFS with early exit the moment t is labelled.
  std::vector<Dist> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier{s}, next;
  dist[s] = 0;
  Dist level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : g.neighbors(u)) {
        if (dist[v] != kUnreachable) continue;
        if (v == t) return level;
        dist[v] = level;
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }
  return kUnreachable;
}

std::optional<std::vector<NodeId>> shortest_path(const Graph& g, NodeId s,
                                                 NodeId t) {
  BfsResult r = bfs(g, s);
  if (r.dist[t] == kUnreachable) return std::nullopt;
  std::vector<NodeId> path;
  for (NodeId v = t; v != kInvalidNode; v = r.parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

Dist eccentricity(const Graph& g, NodeId source) {
  BfsResult r = bfs(g, source);
  Dist ecc = 0;
  for (Dist d : r.dist) {
    if (d == kUnreachable) return kUnreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

Dist diameter(const Graph& g) {
  // The all-sources sweep is embarrassingly parallel and exact for any
  // thread count, so the generic entry point always runs on the pool.
  return parallel_diameter(g, 0);
}

Dist diameter_vertex_transitive(const Graph& g) {
  if (g.num_nodes() == 0) return 0;
  return eccentricity(g, 0);
}

bool is_connected(const Graph& g) {
  const CsrAdjacency csr(g);
  return is_connected(csr);
}

bool is_connected(const AdjacencyProvider& adj) {
  if (adj.num_nodes() == 0) return true;
  BfsResult r = bfs(adj, 0);
  return std::none_of(r.dist.begin(), r.dist.end(),
                      [](Dist d) { return d == kUnreachable; });
}

bool is_connected_after_removal(const Graph& g,
                                const std::vector<char>& removed) {
  NodeId start = kInvalidNode;
  NodeId alive = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!removed[v]) {
      ++alive;
      if (start == kInvalidNode) start = v;
    }
  }
  if (alive <= 1) return true;
  BfsResult r = bfs_avoiding(g, start, removed);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!removed[v] && r.dist[v] == kUnreachable) return false;
  }
  return true;
}

double average_distance(const Graph& g, std::uint32_t samples,
                        std::uint64_t seed) {
  if (g.num_nodes() <= 1) return 0.0;
  std::vector<NodeId> sources;
  if (samples >= g.num_nodes()) {
    // Exact mode sweeps every source: delegate to the pool-parallel sweep
    // (bit-identical result, near-linear speedup).
    return parallel_average_distance(g, 0);
  } else {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<NodeId> pick(0, g.num_nodes() - 1);
    for (std::uint32_t i = 0; i < samples; ++i) sources.push_back(pick(rng));
  }
  long double total = 0;
  std::uint64_t pairs = 0;
  for (NodeId s : sources) {
    BfsResult r = bfs(g, s);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == s || r.dist[v] == kUnreachable) continue;
      total += r.dist[v];
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : static_cast<double>(total / pairs);
}

}  // namespace hbnet
