#include "topology/debruijn.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "graph/builder.hpp"

namespace hbnet {

DeBruijn::DeBruijn(unsigned n) : n_(n), mask_((n == 32) ? ~0u : ((1u << n) - 1)) {
  if (n < 2 || n > 26) {
    throw std::invalid_argument("DeBruijn: dimension must be in [2,26], got " +
                                std::to_string(n));
  }
}

std::vector<std::uint32_t> DeBruijn::neighbors(std::uint32_t u) const {
  std::vector<std::uint32_t> out;
  out.reserve(4);
  // Left shifts (successors) and right shifts (predecessors).
  out.push_back(((u << 1) | 0u) & mask_);
  out.push_back(((u << 1) | 1u) & mask_);
  out.push_back(u >> 1);
  out.push_back((u >> 1) | (1u << (n_ - 1)));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), u), out.end());
  return out;
}

std::vector<std::uint32_t> DeBruijn::shift_route(std::uint32_t u,
                                                 std::uint32_t v) const {
  std::vector<std::uint32_t> path{u};
  std::uint32_t cur = u;
  for (unsigned i = n_; i-- > 0;) {
    std::uint32_t bit = (v >> i) & 1u;
    std::uint32_t next = ((cur << 1) | bit) & mask_;
    if (next != cur) path.push_back(next);
    cur = next;
  }
  return path;
}

std::vector<std::uint32_t> DeBruijn::route(std::uint32_t u,
                                           std::uint32_t v) const {
  if (u == v) return {u};
  // Maximum overlap of a suffix of u with a prefix of v -> left-shift route;
  // of a prefix of u with a suffix of v -> right-shift route. Take the
  // shorter.
  unsigned best_left = 0;  // overlap length for left shifting
  for (unsigned o = n_ - 1; o >= 1; --o) {
    // low o bits of u == high o bits of v?
    if ((u & ((1u << o) - 1)) == (v >> (n_ - o))) {
      best_left = o;
      break;
    }
  }
  unsigned best_right = 0;
  for (unsigned o = n_ - 1; o >= 1; --o) {
    // high o bits of u == low o bits of v?
    if ((u >> (n_ - o)) == (v & ((1u << o) - 1))) {
      best_right = o;
      break;
    }
  }
  std::vector<std::uint32_t> path{u};
  std::uint32_t cur = u;
  if (best_left >= best_right) {
    for (unsigned i = n_ - best_left; i-- > 0;) {
      cur = ((cur << 1) | ((v >> i) & 1u)) & mask_;
      if (cur != path.back()) path.push_back(cur);
    }
  } else {
    // Right-shift k = n - best_right times; the bit inserted at step i ends
    // at final position best_right + i, so insert v's bits from position
    // best_right upward.
    for (unsigned i = 0; i < n_ - best_right; ++i) {
      std::uint32_t bit = (v >> (best_right + i)) & 1u;
      cur = (cur >> 1) | (bit << (n_ - 1));
      if (cur != path.back()) path.push_back(cur);
    }
  }
  return path;
}

Graph DeBruijn::to_graph() const {
  GraphBuilder b(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (std::uint32_t v : neighbors(static_cast<std::uint32_t>(u))) {
      b.add_edge(u, v);
    }
  }
  return b.build();
}

}  // namespace hbnet
