#include "topology/hb_implicit.hpp"

#include <bit>
#include <stdexcept>

namespace hbnet {
namespace {

/// Same domain checks as the HyperButterfly constructor; duplicated here so
/// the implicit provider has no dependency on core/ (graph algorithms and
/// topology providers sit below it in the layering).
void check_dimensions(unsigned m, unsigned n) {
  if (m < 1) throw std::invalid_argument("HB(m,n): m must be >= 1");
  if (n < 3 || n > 20) {
    throw std::invalid_argument("HB(m,n): n must be in [3, 20]");
  }
  if (m + n > 26) throw std::invalid_argument("HB(m,n): m + n must be <= 26");
}

}  // namespace

HbImplicitAdjacency::HbImplicitAdjacency(unsigned m, unsigned n)
    : m_(m), n_(n) {
  check_dimensions(m, n);
}

std::span<const NodeId> HbImplicitAdjacency::neighbors(NodeId v,
                                                       NodeId* scratch) const {
  // Decode ((cube << n) | word) * n + level.
  const std::uint32_t level = v % n_;
  const NodeId wc = v / n_;
  const std::uint32_t word = wc & ((NodeId{1} << n_) - 1);
  const std::uint32_t cube = wc >> n_;

  const NodeId base = (NodeId{cube} << n_) | word;
  const std::uint32_t up = level + 1 == n_ ? 0 : level + 1;
  const std::uint32_t down = level == 0 ? n_ - 1 : level - 1;
  unsigned count = 0;
  // Hypercube flips h_i keep (word, level).
  for (unsigned i = 0; i < m_; ++i) {
    scratch[count++] = ((base ^ (NodeId{1} << (n_ + i))) * n_) + level;
  }
  // g: level+1, word unchanged; f: level+1, flip word bit `level`;
  // g^-1: level-1, word unchanged; f^-1: level-1, flip word bit level-1.
  scratch[count++] = base * n_ + up;
  scratch[count++] = (base ^ (NodeId{1} << level)) * n_ + up;
  scratch[count++] = base * n_ + down;
  scratch[count++] = (base ^ (NodeId{1} << down)) * n_ + down;

  // Theorem 1's distinct-action audit guarantees the m+4 images are
  // pairwise distinct for n >= 3; insertion sort restores the CSR
  // sorted-ascending contract.
  for (unsigned i = 1; i < count; ++i) {
    const NodeId x = scratch[i];
    unsigned j = i;
    for (; j > 0 && scratch[j - 1] > x; --j) scratch[j] = scratch[j - 1];
    scratch[j] = x;
  }
  return {scratch, count};
}

std::uint64_t HbImplicitAdjacency::fingerprint() const {
  std::uint64_t h = detail::kFnv1aBasis;
  detail::fnv1a_mix(h, 0x4842494d504c4349ull);  // mode tag: "HBIMPLCI"
  detail::fnv1a_mix(h, m_);
  detail::fnv1a_mix(h, n_);
  detail::fnv1a_mix(h, num_nodes());
  detail::fnv1a_mix(h, num_edges());
  return h;
}

std::string HbImplicitAdjacency::describe() const {
  return "hb-implicit(" + std::to_string(m_) + "," + std::to_string(n_) + ")";
}

NodeId hb_cube_orbit_representative(unsigned m, unsigned n, NodeId v) {
  const NodeId per_cube = static_cast<NodeId>(n) << n;  // n * 2^n indices
  const NodeId cube = v / per_cube;
  const NodeId rest = v % per_cube;
  const int weight = std::popcount(cube);
  (void)m;
  const NodeId rep_cube = (NodeId{1} << weight) - 1;  // low-bits mask
  return rep_cube * per_cube + rest;
}

}  // namespace hbnet
