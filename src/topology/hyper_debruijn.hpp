// The hyper-deBruijn network HD(m,n) of Ganesan & Pradhan -- the baseline
// the paper compares against (Figures 1 and 2).
//
// HD(m,n) is the product of the hypercube H_m and the binary de Bruijn
// graph DB(2,n): 2^(m+n) nodes. Because DB(2,n) is not regular as a simple
// undirected graph (self loops at the two constant words, a merged parallel
// edge between the two alternating words), HD(m,n) is not regular either:
// degrees range from m+2 to m+4, and its vertex connectivity -- hence fault
// tolerance -- is m+2, strictly below the typical degree m+4. These are the
// two shortcomings (irregularity, sub-optimal fault tolerance) that the
// hyper-butterfly network is designed to remove.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {

/// A hyper-deBruijn vertex: hypercube part and de Bruijn part.
struct HdNode {
  std::uint32_t cube = 0;
  std::uint32_t db = 0;
  friend bool operator==(const HdNode&, const HdNode&) = default;
};

class HyperDeBruijn {
 public:
  /// Constructs HD(m,n); m >= 1, n >= 2, m+n <= 26.
  HyperDeBruijn(unsigned m, unsigned n);

  [[nodiscard]] unsigned cube_dimension() const { return m_; }
  [[nodiscard]] unsigned db_dimension() const { return n_; }
  [[nodiscard]] NodeId num_nodes() const { return NodeId{1} << (m_ + n_); }

  /// Degree bounds of the simple undirected graph: [m+2, m+4].
  [[nodiscard]] unsigned min_degree() const { return m_ + 2; }
  [[nodiscard]] unsigned max_degree() const { return m_ + 4; }

  /// Diameter upper bound m + n (cube correction + full shift).
  [[nodiscard]] unsigned diameter_upper_bound() const { return m_ + n_; }

  /// Neighbors of a vertex (m cube neighbors + 2..4 de Bruijn neighbors).
  [[nodiscard]] std::vector<HdNode> neighbors(HdNode v) const;

  /// Dimension-ordered route: fix the cube part (greedy bit correction),
  /// then the de Bruijn part (maximum-overlap shifting).
  [[nodiscard]] std::vector<HdNode> route(HdNode u, HdNode v) const;

  [[nodiscard]] NodeId index_of(HdNode v) const {
    return (static_cast<NodeId>(v.cube) << n_) | v.db;
  }
  [[nodiscard]] HdNode node_at(NodeId id) const {
    return {static_cast<std::uint32_t>(id >> n_),
            static_cast<std::uint32_t>(id & ((NodeId{1} << n_) - 1))};
  }

  /// Materialized CSR graph.
  [[nodiscard]] Graph to_graph() const;

 private:
  unsigned m_, n_;
  DeBruijn db_;
};

}  // namespace hbnet
