// The binary hypercube H_m (Section 2.1 of the paper).
//
// Vertices are the 2^m m-bit words; (u,v) is an edge iff the Hamming
// distance of u and v is 1. Known properties reproduced and tested here:
//   * m * 2^(m-1) edges, regular of degree m, diameter m,
//   * vertex connectivity m (maximally fault tolerant),
//   * shortest routing by bit correction (distance = popcount of u^v),
//   * m node-disjoint u-v paths of length <= dist(u,v)+2 [Saad & Schultz],
//   * even cycles of every length 4..2^m (Remark 9), via Gray codes.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "graph/cayley.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/graph.hpp"

namespace hbnet {

/// A hypercube vertex is just its m-bit label.
using CubeWord = std::uint32_t;

class Hypercube {
 public:
  /// Constructs H_m; m in [1, 26] (2^26 nodes is the practical cap here).
  explicit Hypercube(unsigned m);

  [[nodiscard]] unsigned dimension() const { return m_; }
  [[nodiscard]] NodeId num_nodes() const { return NodeId{1} << m_; }
  [[nodiscard]] std::uint64_t num_edges() const {
    return static_cast<std::uint64_t>(m_) << (m_ - 1);
  }
  [[nodiscard]] unsigned degree() const { return m_; }
  [[nodiscard]] unsigned diameter() const { return m_; }

  /// All m neighbors of `u` (bit flips), ascending by flipped bit index.
  [[nodiscard]] std::vector<CubeWord> neighbors(CubeWord u) const;

  /// Shortest-path distance (Hamming distance).
  [[nodiscard]] static unsigned distance(CubeWord u, CubeWord v) {
    return static_cast<unsigned>(std::popcount(u ^ v));
  }

  /// One shortest u-v path (corrects differing bits from LSB to MSB).
  [[nodiscard]] std::vector<CubeWord> route(CubeWord u, CubeWord v) const;

  /// The m node-disjoint u-v paths (u != v). Paths between the endpoints are
  /// internally vertex disjoint; lengths are at most distance(u,v) + 2.
  [[nodiscard]] std::vector<std::vector<CubeWord>> disjoint_paths(
      CubeWord u, CubeWord v) const;

  /// A cycle of even length k, 4 <= k <= 2^m, as a vertex sequence (first
  /// vertex not repeated at the end). Throws for invalid k.
  [[nodiscard]] std::vector<CubeWord> even_cycle(std::uint64_t k) const;

  /// Reflected Gray code: the i-th word of a Hamiltonian path of H_m.
  [[nodiscard]] static CubeWord gray(std::uint64_t i) {
    return static_cast<CubeWord>(i ^ (i >> 1));
  }

  /// Cayley-graph view: the m bit-flip generators h_i.
  [[nodiscard]] CayleySpec cayley_spec() const;

  /// Materialized CSR graph.
  [[nodiscard]] Graph to_graph() const;

 private:
  unsigned m_;
};

}  // namespace hbnet
