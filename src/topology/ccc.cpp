#include "topology/ccc.hpp"

#include <bit>
#include <limits>
#include <stdexcept>
#include <string>

namespace hbnet {

std::vector<int> solve_visiting_walk(unsigned n, unsigned start, unsigned end,
                                     std::uint64_t required) {
  if (start >= n || end >= n) {
    throw std::invalid_argument("solve_visiting_walk: position out of range");
  }
  const int ni = static_cast<int>(n);
  const int delta =
      ((static_cast<int>(end) - static_cast<int>(start)) % ni + ni) % ni;
  int best_cost = std::numeric_limits<int>::max();
  int best_c = 0, best_d = 0, best_tau = 0;
  bool best_left_first = true;
  for (int c = 0; c <= ni; ++c) {
    for (int d = 0; d <= ni; ++d) {
      // Offsets [-d, c] visit residues (start+p) mod n; everything is
      // visited once c + d >= n - 1.
      if (c + d < ni - 1) {
        bool covered = true;
        for (unsigned k = 0; covered && k < n; ++k) {
          if (!((required >> k) & 1)) continue;
          int res = (static_cast<int>(k) - static_cast<int>(start) + ni) % ni;
          if (!(res <= c || res >= ni - d)) covered = false;
        }
        if (!covered) continue;
      }
      for (int tau : {delta - ni, delta, delta + ni}) {
        if (tau < -d || tau > c) continue;
        if (2 * (c + d) - tau < best_cost) {
          best_cost = 2 * (c + d) - tau;
          best_c = c;
          best_d = d;
          best_tau = tau;
          best_left_first = true;
        }
        if (2 * (c + d) + tau < best_cost) {
          best_cost = 2 * (c + d) + tau;
          best_c = c;
          best_d = d;
          best_tau = tau;
          best_left_first = false;
        }
      }
    }
  }
  std::vector<int> steps;
  steps.reserve(static_cast<std::size_t>(best_cost));
  auto emit = [&steps](int from, int to) {
    int dir = to > from ? 1 : -1;
    for (int p = from; p != to; p += dir) steps.push_back(dir);
  };
  if (best_left_first) {
    emit(0, -best_d);
    emit(-best_d, best_c);
    emit(best_c, best_tau);
  } else {
    emit(0, best_c);
    emit(best_c, -best_d);
    emit(-best_d, best_tau);
  }
  return steps;
}

unsigned visiting_walk_length(unsigned n, unsigned start, unsigned end,
                              std::uint64_t required) {
  return static_cast<unsigned>(
      solve_visiting_walk(n, start, end, required).size());
}

CubeConnectedCycles::CubeConnectedCycles(unsigned n) : n_(n) {
  if (n < 3 || n > 26) {
    throw std::invalid_argument("CubeConnectedCycles: n in [3,26], got " +
                                std::to_string(n));
  }
}

std::vector<CccNode> CubeConnectedCycles::neighbors(CccNode v) const {
  return {{v.word, (v.pos + 1) % n_},
          {v.word, (v.pos + n_ - 1) % n_},
          {v.word ^ (1u << v.pos), v.pos}};
}

unsigned CubeConnectedCycles::distance(CccNode u, CccNode v) const {
  const std::uint32_t diff = u.word ^ v.word;
  return visiting_walk_length(n_, u.pos, v.pos, diff) +
         static_cast<unsigned>(std::popcount(diff));
}

std::vector<CccNode> CubeConnectedCycles::route_nodes(CccNode u,
                                                      CccNode v) const {
  std::vector<CccNode> path{u};
  CccNode cur = u;
  std::uint32_t remaining = u.word ^ v.word;
  auto flip_if_needed = [&]() {
    if ((remaining >> cur.pos) & 1u) {
      remaining ^= 1u << cur.pos;
      cur.word ^= 1u << cur.pos;
      path.push_back(cur);
    }
  };
  flip_if_needed();
  for (int s : solve_visiting_walk(n_, u.pos, v.pos, u.word ^ v.word)) {
    cur.pos = static_cast<std::uint32_t>(
        (static_cast<int>(cur.pos) + s + static_cast<int>(n_)) %
        static_cast<int>(n_));
    path.push_back(cur);
    flip_if_needed();
  }
  return path;
}

CayleySpec CubeConnectedCycles::cayley_spec() const {
  CayleySpec spec;
  spec.num_nodes = num_nodes();
  auto lift = [this](auto&& f) {
    return [this, f](NodeId id) -> NodeId { return index_of(f(node_at(id))); };
  };
  spec.generators.push_back({"cycle+", lift([this](CccNode v) -> CccNode {
                               return {v.word, (v.pos + 1) % n_};
                             })});
  spec.generators.push_back({"cycle-", lift([this](CccNode v) -> CccNode {
                               return {v.word, (v.pos + n_ - 1) % n_};
                             })});
  spec.generators.push_back({"cube", lift([](CccNode v) -> CccNode {
                               return {v.word ^ (1u << v.pos), v.pos};
                             })});
  return spec;
}

Graph CubeConnectedCycles::to_graph() const {
  return materialize(cayley_spec());
}

}  // namespace hbnet
