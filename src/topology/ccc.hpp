// Cube-connected cycles CCC(n) -- the third classical bounded-degree
// network of the paper's context (with the butterfly and de Bruijn
// families). Included as an extended baseline: degree 3, n*2^n vertices,
// diameter 2n + floor(n/2) - 2 for n >= 4.
//
// A vertex is (word w, position p): cycle edges change p by +-1 (mod n),
// the single cube edge flips bit p of w. Routing therefore reduces to a
// minimum walk on the position cycle Z_n that *visits* every position
// whose bit differs (one extra step per flip), solved exactly by the same
// interval enumeration as the butterfly's covering-walk router (which
// covers *edges* instead).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/cayley.hpp"
#include "graph/graph.hpp"

namespace hbnet {

struct CccNode {
  std::uint32_t word = 0;
  std::uint32_t pos = 0;
  friend bool operator==(const CccNode&, const CccNode&) = default;
};

/// Minimum-length walk on Z_n from `start` to `end` that visits every
/// position k with bit k set in `required`. Returns signed unit steps.
[[nodiscard]] std::vector<int> solve_visiting_walk(unsigned n, unsigned start,
                                                   unsigned end,
                                                   std::uint64_t required);

/// Length of the optimal visiting walk.
[[nodiscard]] unsigned visiting_walk_length(unsigned n, unsigned start,
                                            unsigned end,
                                            std::uint64_t required);

class CubeConnectedCycles {
 public:
  /// CCC(n), n in [3, 26].
  explicit CubeConnectedCycles(unsigned n);

  [[nodiscard]] unsigned dimension() const { return n_; }
  [[nodiscard]] NodeId num_nodes() const { return n_ << n_; }
  [[nodiscard]] std::uint64_t num_edges() const {
    return static_cast<std::uint64_t>(3) * num_nodes() / 2;
  }
  [[nodiscard]] static constexpr unsigned degree() { return 3; }

  /// Classical diameter formula (n >= 4); tests pin small n by BFS.
  [[nodiscard]] unsigned diameter_formula() const {
    return 2 * n_ + n_ / 2 - 2;
  }

  /// The three neighbors: cycle forward, cycle backward, cube.
  [[nodiscard]] std::vector<CccNode> neighbors(CccNode v) const;

  /// Exact shortest-path distance.
  [[nodiscard]] unsigned distance(CccNode u, CccNode v) const;

  /// One optimal route as the full vertex sequence [u, ..., v].
  [[nodiscard]] std::vector<CccNode> route_nodes(CccNode u, CccNode v) const;

  [[nodiscard]] NodeId index_of(CccNode v) const {
    return static_cast<NodeId>(v.word) * n_ + v.pos;
  }
  [[nodiscard]] CccNode node_at(NodeId id) const {
    return {static_cast<std::uint32_t>(id / n_),
            static_cast<std::uint32_t>(id % n_)};
  }

  [[nodiscard]] CayleySpec cayley_spec() const;
  [[nodiscard]] Graph to_graph() const;

 private:
  unsigned n_;
};

}  // namespace hbnet
