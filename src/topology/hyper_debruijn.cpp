#include "topology/hyper_debruijn.hpp"

#include <bit>
#include <stdexcept>
#include <string>

#include "graph/builder.hpp"

namespace hbnet {

HyperDeBruijn::HyperDeBruijn(unsigned m, unsigned n) : m_(m), n_(n), db_(n) {
  if (m < 1 || m + n > 26) {
    throw std::invalid_argument("HyperDeBruijn: need m >= 1 and m+n <= 26");
  }
}

std::vector<HdNode> HyperDeBruijn::neighbors(HdNode v) const {
  std::vector<HdNode> out;
  out.reserve(m_ + 4);
  for (unsigned i = 0; i < m_; ++i) {
    out.push_back({v.cube ^ (1u << i), v.db});
  }
  for (std::uint32_t w : db_.neighbors(v.db)) {
    out.push_back({v.cube, w});
  }
  return out;
}

std::vector<HdNode> HyperDeBruijn::route(HdNode u, HdNode v) const {
  std::vector<HdNode> path{u};
  // Cube phase: greedy bit correction.
  std::uint32_t cur = u.cube;
  std::uint32_t diff = u.cube ^ v.cube;
  while (diff != 0) {
    unsigned bit = static_cast<unsigned>(std::countr_zero(diff));
    cur ^= 1u << bit;
    diff &= diff - 1;
    path.push_back({cur, u.db});
  }
  // de Bruijn phase: overlap shifting.
  std::vector<std::uint32_t> tail = db_.route(u.db, v.db);
  for (std::size_t i = 1; i < tail.size(); ++i) {
    path.push_back({v.cube, tail[i]});
  }
  return path;
}

Graph HyperDeBruijn::to_graph() const {
  GraphBuilder b(num_nodes());
  for (NodeId id = 0; id < num_nodes(); ++id) {
    HdNode v = node_at(id);
    for (const HdNode& w : neighbors(v)) {
      b.add_edge(id, index_of(w));
    }
  }
  return b.build();
}

}  // namespace hbnet
