// Implicit hyper-butterfly adjacency: HB(m,n) as an AdjacencyProvider whose
// neighborhoods are computed arithmetically from the Cayley generator set
// (m hypercube bit flips plus g, f, g^-1, f^-1), never materialized.
//
// Vertex ids use the same dense index as HyperButterfly::index_of --
// ((cube << n) | word) * n + level -- so results (kappa, BFS distances,
// sweep checkpoint positions) are directly comparable with the CSR path, and
// the cube-permutation orbit reduction below applies to both adjacency
// modes. Memory per instance: O(1); HB(5,4) needs 2048 * 9 / 2 = 9216 CSR
// edge slots materialized, zero here.
#pragma once

#include <cstdint>
#include <string>

#include "graph/adjacency.hpp"

namespace hbnet {

/// AdjacencyProvider for HB(m,n) backed by generator arithmetic only.
/// Same parameter domain as HyperButterfly (m >= 1, n in [3, 20],
/// m + n <= 26); every instance in that domain fits NodeId.
class HbImplicitAdjacency final : public AdjacencyProvider {
 public:
  HbImplicitAdjacency(unsigned m, unsigned n);

  [[nodiscard]] unsigned cube_dimension() const { return m_; }
  [[nodiscard]] unsigned butterfly_dimension() const { return n_; }

  [[nodiscard]] NodeId num_nodes() const override {
    return static_cast<NodeId>(n_) << (m_ + n_);
  }
  [[nodiscard]] std::uint64_t num_edges() const override {
    return static_cast<std::uint64_t>(m_ + 4) * num_nodes() / 2;
  }
  [[nodiscard]] std::uint32_t degree(NodeId /*v*/) const override {
    return m_ + 4;
  }
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> degree_range()
      const override {
    return {m_ + 4, m_ + 4};
  }

  /// Writes the m+4 neighbors of `v` into `scratch`, sorted ascending.
  [[nodiscard]] std::span<const NodeId> neighbors(
      NodeId v, NodeId* scratch) const override;

  /// Mode-tagged digest: differs from the CSR fingerprint of the same
  /// instance by design, so a sweep checkpoint records which adjacency mode
  /// produced it and cross-mode resumes restart cleanly.
  [[nodiscard]] std::uint64_t fingerprint() const override;

  [[nodiscard]] std::string describe() const override;

 private:
  unsigned m_, n_;
};

/// Orbit representative of `v` under the cube-bit permutation subgroup of
/// Aut(HB(m,n)): every permutation pi of the m hypercube coordinates maps
/// (c, w, l) -> (pi(c), w, l) and is an automorphism fixing vertex 0, so
/// kappa(0, v) depends on the cube part only through its popcount. The
/// representative keeps (word, level) and canonicalizes the cube part to
/// the low-bits mask of the same popcount -- the minimum index in the
/// orbit. Feed this to SweepOptions::orbit_rep to shrink the single-source
/// target set by a factor of 2^m / (m+1).
[[nodiscard]] NodeId hb_cube_orbit_representative(unsigned m, unsigned n,
                                                  NodeId v);

}  // namespace hbnet
