// The wrapped butterfly B_n (Section 2.1 of the paper), in both of the
// paper's vertex representations:
//
//  1. Classic: a vertex is <z, l> with an n-bit word z and a level
//     l in [0, n); <z,l> ~ <z',l'> iff l' = l+-1 (mod n) and z' equals z
//     except possibly at one level-determined bit.
//  2. Cayley (Vadapalli & Srimani): a vertex is a cyclic permutation of n
//     symbols t_1..t_n in lexicographic order, each possibly complemented,
//     identified by its permutation index PI (number of left shifts from the
//     identity) and complementation index CI.
//
// We store a vertex canonically as (w, l): l = PI, and bit k of w = the
// complementation status of *symbol* t_{k+1} (not of position k). In these
// coordinates the four generators act as
//     g   : (w, l) -> (w,              l+1 mod n)
//     f   : (w, l) -> (w ^ 2^l,        l+1 mod n)
//     g^-1: (w, l) -> (w,              l-1 mod n)
//     f^-1: (w, l) -> (w ^ 2^(l-1 mod n), l-1 mod n)
// so cross edges over the level-cycle edge {k, k+1 mod n} flip word bit k --
// which is exactly the classic representation with z = w. The two paper
// representations are therefore literally the same object here; the
// label/PI/CI conversions are provided for completeness and tested as the
// isomorphism of Remark 2.
//
// Shortest routing: a route from (w,l) to (w',l') is a walk on the level
// cycle Z_n from l to l' traversing cycle edge k at least once for every bit
// k set in w^w'. We solve that covering-walk problem exactly in O(n^2) by
// lifting to the integer line (see solve_covering_walk below), which yields
// both the true distance and an explicit optimal generator sequence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/cayley.hpp"
#include "graph/graph.hpp"

namespace hbnet {

/// A wrapped-butterfly vertex: word (symbol complement mask) and level (PI).
struct BflyNode {
  std::uint32_t word = 0;
  std::uint32_t level = 0;
  friend bool operator==(const BflyNode&, const BflyNode&) = default;
};

/// The four butterfly generators, in the paper's notation.
enum class BflyGen : std::uint8_t { kG, kF, kGInv, kFInv };

/// Returns the paper name of a generator ("g", "f", "g-1", "f-1").
[[nodiscard]] const char* to_string(BflyGen gen);

/// Minimum-length walk on the cycle Z_n from `start` to `end` traversing
/// every cycle edge k (joining levels k and k+1 mod n) with bit k set in
/// `required`. Returned as signed unit steps (+1 = clockwise / g-direction).
/// Exact; used by butterfly and hyper-butterfly routing.
[[nodiscard]] std::vector<int> solve_covering_walk(unsigned n, unsigned start,
                                                   unsigned end,
                                                   std::uint64_t required);

/// A minimum covering walk in closed form: lifted to the integer line
/// anchored at `start`, an optimal walk visits the interval [-down, up] and
/// ends at offset tau, sweeping to one extreme first and then the other.
/// That is three monotone runs -- run(i) unit steps in direction
/// dir(i) = -+dir(0) -- so a packet can carry the whole remaining route in a
/// few bytes and advance it in O(1) per hop (the sharded simulator's
/// implicit-routing representation).
struct CoveringWalkPlan {
  std::uint8_t up = 0;       // right extreme of the lifted interval
  std::uint8_t down = 0;     // left extreme (as a magnitude)
  std::int8_t tau = 0;       // final offset, tau == end - start (mod n)
  bool left_first = false;   // sweep to -down before +up
  [[nodiscard]] unsigned length() const {
    const int t = left_first ? -tau : tau;
    return static_cast<unsigned>(2 * (int{up} + int{down}) + t);
  }
  /// Steps per monotone run, in traversal order.
  [[nodiscard]] unsigned run(unsigned i) const {
    const int c = up, d = down;
    const int steps = left_first ? (i == 0 ? d : i == 1 ? d + c : c - tau)
                                 : (i == 0 ? c : i == 1 ? c + d : tau + d);
    return static_cast<unsigned>(steps);
  }
  /// Direction of run i (+1 = clockwise / g-direction).
  [[nodiscard]] int dir(unsigned i) const {
    const int first = left_first ? -1 : 1;
    return i == 1 ? -first : first;
  }
};

/// Computes a minimum covering walk in O(n): same optimal length as
/// solve_covering_walk (pinned exhaustively in tests), but returns the
/// compact three-run form instead of materializing the step vector.
[[nodiscard]] CoveringWalkPlan plan_covering_walk(unsigned n, unsigned start,
                                                  unsigned end,
                                                  std::uint64_t required);

/// Length of the optimal covering walk without materializing it.
[[nodiscard]] unsigned covering_walk_length(unsigned n, unsigned start,
                                            unsigned end,
                                            std::uint64_t required);

class Butterfly {
 public:
  /// Constructs B_n; the Cayley representation requires n >= 3 (Remark 1),
  /// n <= 26 keeps words in 32 bits with room for products.
  explicit Butterfly(unsigned n);

  [[nodiscard]] unsigned dimension() const { return n_; }
  [[nodiscard]] NodeId num_nodes() const { return n_ << n_; }
  [[nodiscard]] std::uint64_t num_edges() const {
    return static_cast<std::uint64_t>(n_) << (n_ + 1);
  }
  [[nodiscard]] static constexpr unsigned degree() { return 4; }

  /// floor(3n/2): the diameter claimed in Remark 1. (Theorem 3 uses
  /// ceil(3n/2); tests pin the measured value, see EXPERIMENTS.md.)
  [[nodiscard]] unsigned diameter_formula() const { return 3 * n_ / 2; }

  /// Applies a generator to a vertex.
  [[nodiscard]] BflyNode apply(BflyNode v, BflyGen gen) const;

  /// All four neighbors, in order g, f, g^-1, f^-1.
  [[nodiscard]] std::vector<BflyNode> neighbors(BflyNode v) const;

  /// Exact shortest-path distance.
  [[nodiscard]] unsigned distance(BflyNode u, BflyNode v) const;

  /// One optimal route as a generator sequence.
  [[nodiscard]] std::vector<BflyGen> route(BflyNode u, BflyNode v) const;

  /// One optimal route as the full vertex sequence [u, ..., v].
  [[nodiscard]] std::vector<BflyNode> route_nodes(BflyNode u, BflyNode v) const;

  /// Dense index of a vertex: word * n + level.
  [[nodiscard]] NodeId index_of(BflyNode v) const {
    return static_cast<NodeId>(v.word) * n_ + v.level;
  }
  [[nodiscard]] BflyNode node_at(NodeId id) const {
    return {static_cast<std::uint32_t>(id / n_),
            static_cast<std::uint32_t>(id % n_)};
  }

  // --- Cayley-label view (Remark 2 isomorphism) -------------------------

  /// The symbol label of `v` as the paper writes it: n characters
  /// 'a','b','c',... (symbol t_1 = 'a'), uppercase = complemented, in
  /// left-to-right label order a_1 a_2 ... a_n.
  [[nodiscard]] std::string label(BflyNode v) const;

  /// Parses a label produced by label(); inverse of the above.
  [[nodiscard]] BflyNode from_label(const std::string& s) const;

  /// Permutation index (Definition 1) -- equals v.level.
  [[nodiscard]] unsigned permutation_index(BflyNode v) const { return v.level; }

  /// Complementation index (Definition 2): sum of w_j 2^(j-1) where w_j is
  /// the complementation bit of the j-th *label position*. Equals v.word
  /// rotated left by PI.
  [[nodiscard]] std::uint32_t complementation_index(BflyNode v) const;

  // --- Embedded structures ---------------------------------------------

  /// A cycle of length k*n + 2*k' (k >= 1, k' >= 0, k + k' <= 2^n) as a
  /// vertex sequence; the cycle family of Remark 9 / reference [7].
  [[nodiscard]] std::vector<BflyNode> cycle(unsigned k, unsigned k_prime) const;

  /// The natural complete binary tree of height n rooted at (root_word, 0):
  /// level d of the tree lives at butterfly level d; children follow g and f.
  /// Returns the 2^(n+1)-1 vertices in BFS order... but note levels wrap:
  /// valid as a subgraph tree only for depth <= n; this returns the T(n)
  /// witness (depth n-1 internal + leaves at level n-1->0 wrap excluded),
  /// see embeddings.cpp for the precise statement tested.
  [[nodiscard]] std::vector<BflyNode> natural_tree(std::uint32_t root_word,
                                                   unsigned depth) const;

  /// Cayley-graph view (Theorem 1 building block).
  [[nodiscard]] CayleySpec cayley_spec() const;

  /// Materialized CSR graph (word-major indexing via index_of()).
  [[nodiscard]] Graph to_graph() const;

 private:
  unsigned n_;
};

}  // namespace hbnet
