#include "topology/butterfly.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace hbnet {
namespace {

/// Rotate an n-bit word right by r (0 <= r < n).
std::uint32_t rotr_n(std::uint32_t w, unsigned r, unsigned n) {
  if (r == 0) return w;
  const std::uint32_t mask = (n == 32) ? ~0u : ((1u << n) - 1);
  return ((w >> r) | (w << (n - r))) & mask;
}

}  // namespace

const char* to_string(BflyGen gen) {
  switch (gen) {
    case BflyGen::kG:
      return "g";
    case BflyGen::kF:
      return "f";
    case BflyGen::kGInv:
      return "g-1";
    case BflyGen::kFInv:
      return "f-1";
  }
  return "?";
}

std::vector<int> solve_covering_walk(unsigned n, unsigned start, unsigned end,
                                     std::uint64_t required) {
  // Lift the cycle Z_n to the integer line anchored at `start` (offset 0).
  // Any walk's trace is an interval [-d, +c]; the walk must end at an offset
  // tau congruent to end-start (mod n), and line edge at offset p (between
  // p and p+1) realizes cycle edge (start+p) mod n. A minimum walk for a
  // fixed interval and tau goes to one extreme, sweeps to the other, and
  // backtracks to tau:  cost = 2(c+d) - tau  (left extreme first) or
  //                     cost = 2(c+d) + tau  (right extreme first).
  // Enumerating c,d in [0,n] is exhaustive: intervals longer than n add cost
  // without adding coverage.
  if (start >= n || end >= n) {
    throw std::invalid_argument("solve_covering_walk: level out of range");
  }
  const int ni = static_cast<int>(n);
  const int delta =
      ((static_cast<int>(end) - static_cast<int>(start)) % ni + ni) % ni;

  int best_cost = std::numeric_limits<int>::max();
  int best_c = 0, best_d = 0, best_tau = 0;
  bool best_left_first = true;

  for (int c = 0; c <= ni; ++c) {
    for (int d = 0; d <= ni; ++d) {
      // Coverage check: offsets p in [-d, c-1] cover cycle edges
      // (start + p) mod n. With c+d >= n everything is covered.
      if (c + d < ni) {
        bool covered = true;
        for (unsigned k = 0; covered && k < n; ++k) {
          if (!((required >> k) & 1)) continue;
          // Residue of (k - start) mod n must lie in [0, c-1] or [n-d, n-1].
          int res = (static_cast<int>(k) - static_cast<int>(start) + ni) % ni;
          if (!(res < c || res >= ni - d)) covered = false;
        }
        if (!covered) continue;
      }
      // Endpoint representatives tau == delta (mod n) inside [-d, c].
      for (int tau : {delta - ni, delta, delta + ni}) {
        if (tau < -d || tau > c) continue;
        int cost_left = 2 * (c + d) - tau;   // go to -d first, then +c, back
        int cost_right = 2 * (c + d) + tau;  // go to +c first, then -d, back
        if (cost_left < best_cost) {
          best_cost = cost_left;
          best_c = c;
          best_d = d;
          best_tau = tau;
          best_left_first = true;
        }
        if (cost_right < best_cost) {
          best_cost = cost_right;
          best_c = c;
          best_d = d;
          best_tau = tau;
          best_left_first = false;
        }
      }
    }
  }
  // Materialize the step sequence.
  std::vector<int> steps;
  steps.reserve(static_cast<std::size_t>(best_cost));
  auto emit = [&steps](int from, int to) {
    int dir = to > from ? 1 : -1;
    for (int p = from; p != to; p += dir) steps.push_back(dir);
  };
  if (best_left_first) {
    emit(0, -best_d);
    emit(-best_d, best_c);
    emit(best_c, best_tau);
  } else {
    emit(0, best_c);
    emit(best_c, -best_d);
    emit(-best_d, best_tau);
  }
  return steps;
}

CoveringWalkPlan plan_covering_walk(unsigned n, unsigned start, unsigned end,
                                    std::uint64_t required) {
  // Same lift as solve_covering_walk, evaluated in O(n) instead of O(n^2):
  // for a fixed right extreme c, coverage pins the minimum left extreme
  // d(c) = n - (smallest required residue >= c), because residues below c
  // are inside [0, c) and everything at or above the smallest uncovered one
  // must be reached from the wrapped side [n-d, n). Cost 2(c+d) -+ tau is
  // monotone in d, so only d(c) -- bumped to n-delta when tau = delta-n
  // needs the deeper left extreme -- can be optimal.
  if (start >= n || end >= n) {
    throw std::invalid_argument("plan_covering_walk: level out of range");
  }
  const int ni = static_cast<int>(n);
  const int delta =
      ((static_cast<int>(end) - static_cast<int>(start)) % ni + ni) % ni;

  // suffix_min[c] = smallest required residue >= c (relative to start),
  // or n when there is none.
  std::array<int, 65> suffix_min{};
  suffix_min[n] = ni;
  for (int c = ni - 1; c >= 0; --c) {
    const unsigned k = (start + static_cast<unsigned>(c)) % n;
    suffix_min[c] = ((required >> k) & 1) ? c : suffix_min[c + 1];
  }

  int best_cost = std::numeric_limits<int>::max();
  CoveringWalkPlan best;
  auto consider = [&](int c, int d, int tau) {
    if (d > ni || tau < -d || tau > c) return;
    for (const bool left_first : {true, false}) {
      const int cost = 2 * (c + d) + (left_first ? -tau : tau);
      if (cost < best_cost) {
        best_cost = cost;
        best = {static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d),
                static_cast<std::int8_t>(tau), left_first};
      }
    }
  };
  for (int c = 0; c <= ni; ++c) {
    const int d_min = suffix_min[c] == ni ? 0 : ni - suffix_min[c];
    consider(c, d_min, delta);
    consider(c, std::max(d_min, ni - delta), delta - ni);
    if (c == ni && delta == 0) consider(c, d_min, ni);
  }
  return best;
}

unsigned covering_walk_length(unsigned n, unsigned start, unsigned end,
                              std::uint64_t required) {
  // Same enumeration as solve_covering_walk without materializing steps.
  const int ni = static_cast<int>(n);
  const int delta =
      ((static_cast<int>(end) - static_cast<int>(start)) % ni + ni) % ni;
  int best = std::numeric_limits<int>::max();
  for (int c = 0; c <= ni; ++c) {
    for (int d = 0; d <= ni; ++d) {
      if (c + d < ni) {
        bool covered = true;
        for (unsigned k = 0; covered && k < n; ++k) {
          if (!((required >> k) & 1)) continue;
          int res = (static_cast<int>(k) - static_cast<int>(start) + ni) % ni;
          if (!(res < c || res >= ni - d)) covered = false;
        }
        if (!covered) continue;
      }
      for (int tau : {delta - ni, delta, delta + ni}) {
        if (tau < -d || tau > c) continue;
        best = std::min(best, 2 * (c + d) - tau);
        best = std::min(best, 2 * (c + d) + tau);
      }
    }
  }
  return static_cast<unsigned>(best);
}

Butterfly::Butterfly(unsigned n) : n_(n) {
  if (n < 3 || n > 26) {
    throw std::invalid_argument("Butterfly: dimension must be in [3,26], got " +
                                std::to_string(n));
  }
}

BflyNode Butterfly::apply(BflyNode v, BflyGen gen) const {
  const unsigned n = n_;
  switch (gen) {
    case BflyGen::kG:
      return {v.word, (v.level + 1) % n};
    case BflyGen::kF:
      return {v.word ^ (1u << v.level), (v.level + 1) % n};
    case BflyGen::kGInv:
      return {v.word, (v.level + n - 1) % n};
    case BflyGen::kFInv: {
      unsigned down = (v.level + n - 1) % n;
      return {v.word ^ (1u << down), down};
    }
  }
  return v;  // unreachable
}

std::vector<BflyNode> Butterfly::neighbors(BflyNode v) const {
  return {apply(v, BflyGen::kG), apply(v, BflyGen::kF),
          apply(v, BflyGen::kGInv), apply(v, BflyGen::kFInv)};
}

unsigned Butterfly::distance(BflyNode u, BflyNode v) const {
  return covering_walk_length(n_, u.level, v.level, u.word ^ v.word);
}

std::vector<BflyGen> Butterfly::route(BflyNode u, BflyNode v) const {
  std::vector<int> steps =
      solve_covering_walk(n_, u.level, v.level, u.word ^ v.word);
  std::vector<BflyGen> gens;
  gens.reserve(steps.size());
  BflyNode cur = u;
  std::uint32_t remaining = cur.word ^ v.word;  // bits still to fix
  for (int s : steps) {
    // Crossing cycle edge e: upward (g/f) crosses edge cur.level; downward
    // (g^-1/f^-1) crosses edge (cur.level - 1) mod n. Take the flipping
    // variant on the first crossing of a required edge.
    unsigned edge = (s > 0) ? cur.level : (cur.level + n_ - 1) % n_;
    bool flip = (remaining >> edge) & 1;
    BflyGen gen = s > 0 ? (flip ? BflyGen::kF : BflyGen::kG)
                        : (flip ? BflyGen::kFInv : BflyGen::kGInv);
    if (flip) remaining ^= 1u << edge;
    gens.push_back(gen);
    cur = apply(cur, gen);
  }
  if (!(cur == v)) {
    throw std::logic_error("Butterfly::route: internal routing error");
  }
  return gens;
}

std::vector<BflyNode> Butterfly::route_nodes(BflyNode u, BflyNode v) const {
  std::vector<BflyNode> nodes{u};
  BflyNode cur = u;
  for (BflyGen gen : route(u, v)) {
    cur = apply(cur, gen);
    nodes.push_back(cur);
  }
  return nodes;
}

std::string Butterfly::label(BflyNode v) const {
  // Label position j (1-based) holds symbol t_{s+1} with s = (level+j-1) mod n;
  // uppercase marks a complemented symbol (bit s of word set).
  std::string out;
  out.reserve(n_);
  for (unsigned j = 0; j < n_; ++j) {
    unsigned s = (v.level + j) % n_;
    char base = static_cast<char>('a' + s);
    bool complemented = (v.word >> s) & 1;
    out.push_back(complemented ? static_cast<char>(base - 'a' + 'A') : base);
  }
  return out;
}

BflyNode Butterfly::from_label(const std::string& s) const {
  if (s.size() != n_) {
    throw std::invalid_argument("Butterfly::from_label: wrong length");
  }
  BflyNode v{0, 0};
  // First character identifies the front symbol, hence the level (PI).
  char front = s[0];
  unsigned front_sym = static_cast<unsigned>(
      (front >= 'a') ? front - 'a' : front - 'A');
  v.level = front_sym % n_;
  for (unsigned j = 0; j < n_; ++j) {
    char ch = s[j];
    bool complemented = (ch >= 'A' && ch <= 'Z');
    unsigned sym = static_cast<unsigned>(complemented ? ch - 'A' : ch - 'a');
    unsigned expect = (v.level + j) % n_;
    if (sym != expect) {
      throw std::invalid_argument(
          "Butterfly::from_label: not a cyclic permutation in lexicographic "
          "order");
    }
    if (complemented) v.word |= 1u << sym;
  }
  return v;
}

std::uint32_t Butterfly::complementation_index(BflyNode v) const {
  // CI bit (j-1) is the complementation status of label position j, i.e.
  // word bit (level + j - 1) mod n: CI = word rotated right by level.
  return rotr_n(v.word, v.level, n_);
}

std::vector<BflyNode> Butterfly::cycle(unsigned k, unsigned k_prime) const {
  // Base cycle of length k*n via the binary-counter schedule: rounds are the
  // words 0..k-1; crossing level l in round r applies f iff incrementing r
  // flips bit l (i.e. bits 0..l-1 of r are all ones), where the last round
  // wraps k-1 -> 0 and flips exactly the set bits of k-1. The word seen at
  // level l in round r is then (bits < l of r+1, bits >= l of r), which is
  // injective in r for every l -- so all k*n vertices are distinct
  // (Hamiltonian for k = 2^n).
  if (k < 1 || static_cast<std::uint64_t>(k) + k_prime > (1ull << n_)) {
    throw std::invalid_argument("Butterfly::cycle: need 1 <= k, k+k' <= 2^n");
  }
  if (k == 1 && k_prime == 0 && n_ < 3) {
    throw std::invalid_argument("Butterfly::cycle: length < 3");
  }
  std::vector<BflyNode> nodes;
  nodes.reserve(static_cast<std::size_t>(k) * n_ + 2 * k_prime);
  for (std::uint32_t r = 0; r < k; ++r) {
    std::uint32_t next = (r + 1 == k) ? 0 : r + 1;
    std::uint32_t flips = r ^ next;  // bits to flip this round
    std::uint32_t w = r;
    for (unsigned l = 0; l < n_; ++l) {
      nodes.push_back({w, l});
      if ((flips >> l) & 1) w ^= 1u << l;
    }
  }
  if (k_prime == 0) return nodes;

  // Bounce insertion: a g-step (w,l) -> (w,l+1) becomes the 3-step detour
  // f, g^-1, f: (w,l) -> (x,l+1) -> (x,l) -> (w,l+1) with x = w ^ 2^l,
  // adding 2 new vertices (x,l+1), (x,l). Insert greedily wherever both are
  // unused. Every insertion is validated; tests check the resulting cycle.
  auto key = [this](BflyNode v) {
    return static_cast<std::uint64_t>(v.word) * n_ + v.level;
  };
  std::unordered_set<std::uint64_t> used;
  used.reserve(nodes.size() * 2);
  for (BflyNode v : nodes) used.insert(key(v));

  std::vector<BflyNode> out;
  out.reserve(nodes.size() + 2 * k_prime);
  unsigned remaining = k_prime;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    BflyNode cur = nodes[i];
    out.push_back(cur);
    if (remaining == 0) continue;
    BflyNode nxt = nodes[(i + 1) % nodes.size()];
    // Detect a plain g-step upward.
    bool is_g_step =
        nxt.word == cur.word && nxt.level == (cur.level + 1) % n_;
    if (!is_g_step) continue;
    BflyNode a{cur.word ^ (1u << cur.level), (cur.level + 1) % n_};
    BflyNode b{a.word, cur.level};
    if (used.count(key(a)) || used.count(key(b))) continue;
    used.insert(key(a));
    used.insert(key(b));
    out.push_back(a);
    out.push_back(b);
    --remaining;
  }
  if (remaining != 0) {
    throw std::runtime_error(
        "Butterfly::cycle: could not place all bounce detours for k'=" +
        std::to_string(k_prime));
  }
  return out;
}

std::vector<BflyNode> Butterfly::natural_tree(std::uint32_t root_word,
                                              unsigned depth) const {
  // The natural butterfly tree: root (root_word, 0); the children of a node
  // at tree depth d (butterfly level d) are its g and f images. For
  // depth <= n-1 all vertices are distinct: depth-d nodes are
  // (root_word ^ s, d) with s ranging over subsets of bits 0..d-1.
  if (depth > n_ - 1) {
    throw std::invalid_argument(
        "Butterfly::natural_tree: depth must be <= n-1 (levels wrap beyond)");
  }
  std::vector<BflyNode> bfs_order;
  bfs_order.reserve((2u << depth) - 1);
  bfs_order.push_back({root_word, 0});
  for (std::size_t i = 0; bfs_order.size() < (2u << depth) - 1; ++i) {
    BflyNode v = bfs_order[i];
    bfs_order.push_back(apply(v, BflyGen::kG));
    bfs_order.push_back(apply(v, BflyGen::kF));
  }
  return bfs_order;
}

CayleySpec Butterfly::cayley_spec() const {
  CayleySpec spec;
  spec.num_nodes = num_nodes();
  auto lift = [this](BflyGen gen) {
    return [this, gen](NodeId id) -> NodeId {
      return index_of(apply(node_at(id), gen));
    };
  };
  spec.generators.push_back({"g", lift(BflyGen::kG)});
  spec.generators.push_back({"f", lift(BflyGen::kF)});
  spec.generators.push_back({"g-1", lift(BflyGen::kGInv)});
  spec.generators.push_back({"f-1", lift(BflyGen::kFInv)});
  return spec;
}

Graph Butterfly::to_graph() const { return materialize(cayley_spec()); }

}  // namespace hbnet
