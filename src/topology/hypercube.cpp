#include "topology/hypercube.hpp"

#include <stdexcept>
#include <string>

namespace hbnet {

Hypercube::Hypercube(unsigned m) : m_(m) {
  if (m < 1 || m > 26) {
    throw std::invalid_argument("Hypercube: dimension must be in [1,26], got " +
                                std::to_string(m));
  }
}

std::vector<CubeWord> Hypercube::neighbors(CubeWord u) const {
  std::vector<CubeWord> out;
  out.reserve(m_);
  for (unsigned i = 0; i < m_; ++i) out.push_back(u ^ (CubeWord{1} << i));
  return out;
}

std::vector<CubeWord> Hypercube::route(CubeWord u, CubeWord v) const {
  std::vector<CubeWord> path{u};
  CubeWord cur = u;
  CubeWord diff = u ^ v;
  while (diff != 0) {
    unsigned bit = static_cast<unsigned>(std::countr_zero(diff));
    cur ^= CubeWord{1} << bit;
    diff &= diff - 1;
    path.push_back(cur);
  }
  return path;
}

std::vector<std::vector<CubeWord>> Hypercube::disjoint_paths(CubeWord u,
                                                             CubeWord v) const {
  if (u == v) {
    throw std::invalid_argument("Hypercube::disjoint_paths: u == v");
  }
  const CubeWord diff = u ^ v;
  std::vector<unsigned> d;  // differing bit positions
  std::vector<unsigned> same;
  for (unsigned i = 0; i < m_; ++i) {
    if (diff & (CubeWord{1} << i)) {
      d.push_back(i);
    } else {
      same.push_back(i);
    }
  }
  const std::size_t k = d.size();
  std::vector<std::vector<CubeWord>> paths;
  paths.reserve(m_);
  // k "rotation" paths: path i corrects differing bits in the cyclically
  // rotated order d[i], d[i+1], ..., d[i+k-1]. Classic Saad-Schultz family:
  // interiors are pairwise distinct because the set of corrected bits after
  // j steps of rotation i is a cyclic interval of d starting at i, and
  // distinct (start, length) intervals with 0 < length < k give distinct
  // vertices.
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<CubeWord> p{u};
    CubeWord cur = u;
    for (std::size_t j = 0; j < k; ++j) {
      cur ^= CubeWord{1} << d[(i + j) % k];
      p.push_back(cur);
    }
    paths.push_back(std::move(p));
  }
  // m-k "detour" paths through the non-differing bits: flip bit s, correct
  // all differing bits in fixed order, flip s back. All interior vertices
  // have bit s wrong, so they cannot collide with the rotation paths nor
  // with detour paths of another s.
  for (unsigned s : same) {
    std::vector<CubeWord> p{u};
    CubeWord cur = u ^ (CubeWord{1} << s);
    p.push_back(cur);
    for (unsigned bit : d) {
      cur ^= CubeWord{1} << bit;
      p.push_back(cur);
    }
    cur ^= CubeWord{1} << s;
    p.push_back(cur);
    paths.push_back(std::move(p));
  }
  return paths;
}

std::vector<CubeWord> Hypercube::even_cycle(std::uint64_t k) const {
  if (k < 4 || k % 2 != 0 || k > (std::uint64_t{1} << m_)) {
    throw std::invalid_argument("Hypercube::even_cycle: invalid length");
  }
  // Take a Gray path of l = k/2 vertices in the (m-1)-subcube and pair it
  // with its shifted copy: v0.0 ... v(l-1).0, v(l-1).1 ... v0.1.
  const std::uint64_t l = k / 2;
  std::vector<CubeWord> cycle;
  cycle.reserve(k);
  const CubeWord top = CubeWord{1} << (m_ - 1);
  for (std::uint64_t i = 0; i < l; ++i) cycle.push_back(gray(i));
  for (std::uint64_t i = l; i-- > 0;) cycle.push_back(gray(i) | top);
  return cycle;
}

CayleySpec Hypercube::cayley_spec() const {
  CayleySpec spec;
  spec.num_nodes = num_nodes();
  for (unsigned i = 0; i < m_; ++i) {
    spec.generators.push_back(
        {"h" + std::to_string(i), [i](NodeId v) -> NodeId {
           return v ^ (NodeId{1} << i);
         }});
  }
  return spec;
}

Graph Hypercube::to_graph() const { return materialize(cayley_spec()); }

}  // namespace hbnet
