#include "topology/guest_graphs.hpp"

#include <stdexcept>

#include "graph/builder.hpp"

namespace hbnet {

Graph make_cycle(std::uint32_t k) {
  if (k < 3) throw std::invalid_argument("make_cycle: k >= 3 required");
  GraphBuilder b(k);
  for (std::uint32_t i = 0; i < k; ++i) b.add_edge(i, (i + 1) % k);
  return b.build();
}

Graph make_path(std::uint32_t k) {
  if (k < 1) throw std::invalid_argument("make_path: k >= 1 required");
  GraphBuilder b(k);
  for (std::uint32_t i = 0; i + 1 < k; ++i) b.add_edge(i, i + 1);
  return b.build();
}

Graph make_torus(std::uint32_t n1, std::uint32_t n2) {
  if (n1 < 3 || n2 < 3) {
    throw std::invalid_argument("make_torus: n1, n2 >= 3 required");
  }
  GraphBuilder b(n1 * n2);
  for (std::uint32_t r = 0; r < n1; ++r) {
    for (std::uint32_t c = 0; c < n2; ++c) {
      b.add_edge(r * n2 + c, r * n2 + (c + 1) % n2);
      b.add_edge(r * n2 + c, ((r + 1) % n1) * n2 + c);
    }
  }
  return b.build();
}

Graph make_grid(std::uint32_t n1, std::uint32_t n2) {
  if (n1 < 1 || n2 < 1) {
    throw std::invalid_argument("make_grid: n1, n2 >= 1 required");
  }
  GraphBuilder b(n1 * n2);
  for (std::uint32_t r = 0; r < n1; ++r) {
    for (std::uint32_t c = 0; c < n2; ++c) {
      if (c + 1 < n2) b.add_edge(r * n2 + c, r * n2 + c + 1);
      if (r + 1 < n1) b.add_edge(r * n2 + c, (r + 1) * n2 + c);
    }
  }
  return b.build();
}

Graph make_complete_binary_tree(unsigned h) {
  if (h < 1 || h > 26) {
    throw std::invalid_argument("make_complete_binary_tree: h in [1,26]");
  }
  const NodeId n = (NodeId{1} << h) - 1;
  GraphBuilder b(n);
  for (NodeId i = 0; 2 * i + 2 < n; ++i) {
    b.add_edge(i, 2 * i + 1);
    b.add_edge(i, 2 * i + 2);
  }
  return b.build();
}

Graph make_mesh_of_trees(unsigned p, unsigned q) {
  if (p < 1 || q < 1 || p + q > 22) {
    throw std::invalid_argument("make_mesh_of_trees: p, q >= 1, p+q <= 22");
  }
  MeshOfTreesIndex idx{p, q};
  GraphBuilder b(idx.num_nodes());
  const std::uint32_t rows = idx.rows();
  const std::uint32_t cols = idx.cols();
  // Row trees: heap of cols-1 internals; internal t's children are 2t+1 and
  // 2t+2 while internal, and leaves when the heap index crosses cols-1.
  for (std::uint32_t i = 0; i < rows; ++i) {
    for (std::uint32_t t = 0; t < cols - 1; ++t) {
      for (std::uint32_t child : {2 * t + 1, 2 * t + 2}) {
        NodeId cid = (child < cols - 1)
                         ? idx.row_internal(i, child)
                         : idx.leaf(i, child - (cols - 1));
        b.add_edge(idx.row_internal(i, t), cid);
      }
    }
  }
  for (std::uint32_t j = 0; j < cols; ++j) {
    for (std::uint32_t t = 0; t < rows - 1; ++t) {
      for (std::uint32_t child : {2 * t + 1, 2 * t + 2}) {
        NodeId cid = (child < rows - 1)
                         ? idx.col_internal(j, child)
                         : idx.leaf(child - (rows - 1), j);
        b.add_edge(idx.col_internal(j, t), cid);
      }
    }
  }
  return b.build();
}

Graph make_double_rooted_tree(unsigned k) {
  if (k < 2 || k > 26) {
    throw std::invalid_argument("make_double_rooted_tree: k in [2,26]");
  }
  const NodeId sub = (NodeId{1} << (k - 1)) - 1;  // size of each T(k-1)
  GraphBuilder b(2 + 2 * sub);
  b.add_edge(0, 1);
  // Subtree under root 0 occupies ids [2, 2+sub); under root 1 the rest.
  for (NodeId base : {NodeId{2}, NodeId{2} + sub}) {
    b.add_edge(base == 2 ? 0 : 1, base);  // root -> subtree root
    for (NodeId t = 0; 2 * t + 2 < sub; ++t) {
      b.add_edge(base + t, base + 2 * t + 1);
      b.add_edge(base + t, base + 2 * t + 2);
    }
  }
  return b.build();
}

}  // namespace hbnet
