// Guest graphs for the paper's embedding claims (Section 4): cycles C(k),
// wrap-around meshes / tori M(n1,n2), complete binary trees T(h), and meshes
// of trees MT(2^p, 2^q). Each comes with a canonical vertex indexing so
// embedding maps can be expressed as plain vectors.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace hbnet {

/// C(k): cycle on k >= 3 vertices 0..k-1, i ~ i+1 mod k.
[[nodiscard]] Graph make_cycle(std::uint32_t k);

/// P(k): path on k >= 1 vertices 0..k-1.
[[nodiscard]] Graph make_path(std::uint32_t k);

/// M(n1, n2): wrap-around mesh (torus) C(n1) x C(n2); vertex (r, c) has
/// index r*n2 + c. Requires n1, n2 >= 3 for simple-graph wrap edges.
[[nodiscard]] Graph make_torus(std::uint32_t n1, std::uint32_t n2);

/// Grid (no wrap) n1 x n2, same indexing.
[[nodiscard]] Graph make_grid(std::uint32_t n1, std::uint32_t n2);

/// T(h): complete binary tree with 2^h - 1 vertices (the paper's
/// convention), heap-indexed: root 0, children of i are 2i+1, 2i+2.
[[nodiscard]] Graph make_complete_binary_tree(unsigned h);

/// Vertex indexing of the mesh of trees MT(2^p, 2^q):
///  * leaves (i,j), 0<=i<2^p, 0<=j<2^q: index i*2^q + j
///  * row-tree internals: row i's binary tree over its 2^q leaves has
///    2^q - 1 internal nodes, heap-indexed; internal t of row i comes next
///  * column-tree internals afterwards, symmetrically.
/// Edges: each row tree is a complete binary tree whose leaves are the row's
/// grid vertices; likewise for columns. (The grid vertices themselves are
/// NOT directly adjacent -- the standard mesh-of-trees definition.)
struct MeshOfTreesIndex {
  unsigned p = 0, q = 0;
  [[nodiscard]] std::uint32_t rows() const { return 1u << p; }
  [[nodiscard]] std::uint32_t cols() const { return 1u << q; }
  [[nodiscard]] NodeId num_nodes() const {
    return rows() * cols() + rows() * (cols() - 1) + cols() * (rows() - 1);
  }
  [[nodiscard]] NodeId leaf(std::uint32_t i, std::uint32_t j) const {
    return i * cols() + j;
  }
  /// Internal node t (heap index 0..cols()-2) of row i's tree.
  [[nodiscard]] NodeId row_internal(std::uint32_t i, std::uint32_t t) const {
    return rows() * cols() + i * (cols() - 1) + t;
  }
  /// Internal node t (heap index 0..rows()-2) of column j's tree.
  [[nodiscard]] NodeId col_internal(std::uint32_t j, std::uint32_t t) const {
    return rows() * cols() + rows() * (cols() - 1) + j * (rows() - 1) + t;
  }
};

/// MT(2^p, 2^q) with the indexing above.
[[nodiscard]] Graph make_mesh_of_trees(unsigned p, unsigned q);

/// The double-rooted complete binary tree DRT(k): two adjacent roots, each
/// the parent of a complete binary tree T(k-1); 2^k vertices in total.
/// Indexing: 0 and 1 are the two roots (adjacent); then the heap-indexed
/// T(k-1) subtree under root 0; then the one under root 1.
[[nodiscard]] Graph make_double_rooted_tree(unsigned k);

}  // namespace hbnet
