// The binary de Bruijn graph DB(2,n) -- the substrate of the hyper-deBruijn
// baseline network of Ganesan & Pradhan (reference [1] of the paper).
//
// Directed form: 2^n vertices (n-bit words); u -> (2u + b) mod 2^n for
// b in {0,1} ("shift in b"). The undirected simple graph drops self loops
// (at 00..0 and 11..1) and merges parallel edges (the 2-cycle between
// 0101.. and 1010..), which is what makes the hyper-deBruijn network
// irregular -- the key drawback the hyper-butterfly removes.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace hbnet {

class DeBruijn {
 public:
  /// Constructs DB(2,n), n in [2, 26].
  explicit DeBruijn(unsigned n);

  [[nodiscard]] unsigned dimension() const { return n_; }
  [[nodiscard]] NodeId num_nodes() const { return NodeId{1} << n_; }

  /// Undirected simple neighbors of u (2..4 of them), deduplicated, sorted.
  [[nodiscard]] std::vector<std::uint32_t> neighbors(std::uint32_t u) const;

  /// Shift-register route from u to v of length <= n: shift in the bits of v
  /// MSB-first. Not always shortest (shortest-path routing in de Bruijn
  /// graphs requires maximum-overlap search, see route()).
  [[nodiscard]] std::vector<std::uint32_t> shift_route(std::uint32_t u,
                                                       std::uint32_t v) const;

  /// Shortest route in the *directed-step* sense used by hyper-deBruijn
  /// routing: finds the maximum overlap between a suffix of u and a prefix
  /// of v (or vice versa) and shifts the remaining bits in; length
  /// n - overlap. This is the classical de Bruijn routing; it is optimal
  /// over unidirectional shift sequences though not always over mixed ones.
  [[nodiscard]] std::vector<std::uint32_t> route(std::uint32_t u,
                                                 std::uint32_t v) const;

  /// Diameter of the undirected simple graph is n for n >= 4 (it is <= n by
  /// shift routing; tests pin exact small-n values by BFS).
  [[nodiscard]] unsigned diameter_upper_bound() const { return n_; }

  /// Materialized CSR graph.
  [[nodiscard]] Graph to_graph() const;

 private:
  unsigned n_;
  std::uint32_t mask_;
};

}  // namespace hbnet
