// hbnet::obs -- background snapshot exporter for live telemetry.
//
// A Snapshotter owns one exporter thread that periodically samples a
// ProgressBoard and serializes the result two ways:
//
//  * an append-only NDJSON stream (`stream_path`): one complete JSON
//    object per line, written with a single flushed append so a tailing
//    reader (or a crash) always sees whole lines;
//  * a Prometheus-style text exposition file (`prom_path`): rewritten
//    each interval via write-to-tmp + std::rename, so any reader always
//    opens a complete, self-consistent scrape.
//
// The exporter is a pure observer: it reads the board with relaxed loads
// and never feeds anything back into the engines, so attaching one
// cannot perturb results. This file is the sanctioned home for wall
// clocks (hblint rule wall-clock-outside-obs): snapshot timestamps are
// real time by design and never reach simulation state.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/progress.hpp"

namespace hbnet::obs {

struct SnapshotterOptions {
  /// NDJSON stream file, appended to; empty disables the stream.
  std::string stream_path;
  /// Prometheus text exposition file, atomically replaced each snapshot;
  /// empty disables the exposition.
  std::string prom_path;
  /// Export interval. Clamped to >= 10ms.
  std::uint64_t interval_ms = 200;
  /// Value of the "job" field on every NDJSON line (e.g. "campaign").
  std::string job = "hbnet";
};

class Snapshotter {
 public:
  /// Observes `board` (not owned; must outlive stop()).
  Snapshotter(const ProgressBoard& board, SnapshotterOptions options);
  ~Snapshotter();  // stops if still running
  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  /// Writes one immediate snapshot, then launches the exporter thread.
  /// No-op if already started.
  void start();

  /// Writes one final snapshot and joins the exporter. Safe to call
  /// repeatedly; after stop() both output files are complete.
  void stop();

  /// Snapshots written so far (for tests; includes start/stop snapshots).
  [[nodiscard]] std::uint64_t snapshots_written() const;

  /// `key` mangled into a Prometheus metric name: "hbnet_" prefix, every
  /// non-[a-zA-Z0-9_] byte replaced with '_'. "campaign.trials_done" ->
  /// "hbnet_campaign_trials_done".
  [[nodiscard]] static std::string prometheus_name(const std::string& key);

 private:
  void run();
  void write_snapshot();
  void write_stream_line(
      const std::vector<std::pair<std::string, std::uint64_t>>& values,
      std::uint64_t unix_ms);
  void write_prom_file(
      const std::vector<std::pair<std::string, std::uint64_t>>& values,
      std::uint64_t unix_ms);

  const ProgressBoard& board_;
  SnapshotterOptions options_;
  std::thread thread_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::uint64_t seq_ = 0;
};

}  // namespace hbnet::obs
