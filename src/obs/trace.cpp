#include "obs/trace.hpp"

namespace hbnet::obs {

void TraceRecorder::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    write_json_string(os, ev.name);
    os << ",\"cat\":";
    write_json_string(os, ev.cat);
    os << ",\"ph\":\"" << ev.ph << "\",\"ts\":" << ev.ts;
    if (ev.ph == 'X') os << ",\"dur\":" << ev.dur;
    if (ev.ph == 'i') os << ",\"s\":\"t\"";  // instant scope: thread
    os << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
    if (!ev.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < ev.args.size(); ++i) {
        if (i) os << ',';
        write_json_string(os, ev.args[i].first);
        os << ':' << ev.args[i].second;
      }
      os << '}';
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

}  // namespace hbnet::obs
