// hbnet::obs -- Chrome trace_event recorder.
//
// Records packet/flit lifecycle spans, distsim round spans, and counter
// samples in the Chrome trace-event JSON format ("JSON Array Format" with a
// {"traceEvents":[...]} wrapper), loadable in chrome://tracing and Perfetto.
// Timestamps are simulated cycles/rounds reported as microseconds, so one
// trace microsecond == one simulator cycle.
//
// Event kinds used:
//   'X' complete  -- a span known in full at emit time (packet lifetime),
//   'B'/'E' pair  -- open/close span (distsim rounds, broadcast phases),
//   'i' instant   -- a point event (fault-route decision, deadlock abort),
//   'C' counter   -- a sampled value (in-flight flits per cycle).
//
// Hot-path emission goes through the HBNET_TRACE_* macros below, which
// compile to nothing when the library is built with -DHBNET_TRACE=0; when
// enabled they cost one pointer test unless a Sink with tracing switched on
// is attached. The recorder is bounded: past `capacity()` events it drops
// and counts, so a runaway simulation cannot exhaust memory.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"  // write_json_string

// Compile-time master switch for trace emission in instrumented hot paths.
// Build with -DHBNET_TRACE=0 (CMake option HBNET_TRACE=OFF) to compile all
// HBNET_TRACE_* macro sites out entirely.
#ifndef HBNET_TRACE
#define HBNET_TRACE 1
#endif

namespace hbnet::obs {

/// Numeric event arguments ({"pkt":12,"src":3,...} -- everything the
/// simulators attach is integral).
using TraceArgs = std::vector<std::pair<std::string, std::uint64_t>>;

struct TraceEvent {
  char ph;            // 'X', 'B', 'E', 'i', 'C'
  std::uint32_t pid;  // process lane (we use 0 = simulator)
  std::uint32_t tid;  // thread lane (node id / lane id)
  std::uint64_t ts;   // cycle (reported as us)
  std::uint64_t dur;  // 'X' only
  std::string cat;
  std::string name;
  TraceArgs args;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  void complete(std::string cat, std::string name, std::uint32_t pid,
                std::uint32_t tid, std::uint64_t ts, std::uint64_t dur,
                TraceArgs args = {}) {
    push({'X', pid, tid, ts, dur, std::move(cat), std::move(name),
          std::move(args)});
  }
  void begin(std::string cat, std::string name, std::uint32_t pid,
             std::uint32_t tid, std::uint64_t ts, TraceArgs args = {}) {
    push({'B', pid, tid, ts, 0, std::move(cat), std::move(name),
          std::move(args)});
  }
  void end(std::string cat, std::string name, std::uint32_t pid,
           std::uint32_t tid, std::uint64_t ts) {
    push({'E', pid, tid, ts, 0, std::move(cat), std::move(name), {}});
  }
  void instant(std::string cat, std::string name, std::uint32_t pid,
               std::uint32_t tid, std::uint64_t ts, TraceArgs args = {}) {
    push({'i', pid, tid, ts, 0, std::move(cat), std::move(name),
          std::move(args)});
  }
  void counter(std::string name, std::uint32_t pid, std::uint64_t ts,
               std::uint64_t value) {
    push({'C', pid, 0, ts, 0, "counter", std::move(name),
          {{"value", value}}});
  }

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  /// Chrome trace JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  void write_json(std::ostream& os) const;

 private:
  void push(TraceEvent ev) {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(std::move(ev));
  }

  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
};

}  // namespace hbnet::obs

// Emission macros: `sink` is an `obs::Sink*` (possibly null). All expand to
// nothing under -DHBNET_TRACE=0; otherwise they test the sink pointer and
// its trace switch before touching the recorder.
#if HBNET_TRACE
#define HBNET_TRACE_ACTIVE(sink) ((sink) != nullptr && (sink)->trace() != nullptr)
#define HBNET_TRACE_COMPLETE(sink, ...) \
  do {                                  \
    if (HBNET_TRACE_ACTIVE(sink)) (sink)->trace()->complete(__VA_ARGS__); \
  } while (0)
#define HBNET_TRACE_BEGIN(sink, ...) \
  do {                               \
    if (HBNET_TRACE_ACTIVE(sink)) (sink)->trace()->begin(__VA_ARGS__); \
  } while (0)
#define HBNET_TRACE_END(sink, ...) \
  do {                             \
    if (HBNET_TRACE_ACTIVE(sink)) (sink)->trace()->end(__VA_ARGS__); \
  } while (0)
#define HBNET_TRACE_INSTANT(sink, ...) \
  do {                                 \
    if (HBNET_TRACE_ACTIVE(sink)) (sink)->trace()->instant(__VA_ARGS__); \
  } while (0)
#define HBNET_TRACE_COUNTER(sink, ...) \
  do {                                 \
    if (HBNET_TRACE_ACTIVE(sink)) (sink)->trace()->counter(__VA_ARGS__); \
  } while (0)
#else
#define HBNET_TRACE_ACTIVE(sink) false
#define HBNET_TRACE_COMPLETE(sink, ...) do {} while (0)
#define HBNET_TRACE_BEGIN(sink, ...) do {} while (0)
#define HBNET_TRACE_END(sink, ...) do {} while (0)
#define HBNET_TRACE_INSTANT(sink, ...) do {} while (0)
#define HBNET_TRACE_COUNTER(sink, ...) do {} while (0)
#endif
