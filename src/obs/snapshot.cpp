#include "obs/snapshot.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace hbnet::obs {

namespace {

std::uint64_t now_unix_ms() {
  // Wall clock by design: snapshot timestamps label exported telemetry
  // and never flow back into any engine.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Snapshotter::Snapshotter(const ProgressBoard& board, SnapshotterOptions options)
    : board_(board), options_(std::move(options)) {
  options_.interval_ms = std::max<std::uint64_t>(options_.interval_ms, 10);
}

Snapshotter::~Snapshotter() { stop(); }

void Snapshotter::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  // An immediate first snapshot so even runs shorter than one interval
  // leave a stream line and an exposition file behind.
  write_snapshot();
  thread_ = std::thread([this] { run(); });
}

void Snapshotter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final snapshot after the engine is done, so the stream's last line
  // and the exposition file both show the finished state.
  write_snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

std::uint64_t Snapshotter::snapshots_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

void Snapshotter::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    write_snapshot();
    lock.lock();
  }
}

void Snapshotter::write_snapshot() {
  const auto values = board_.sample();
  const std::uint64_t unix_ms = now_unix_ms();
  write_stream_line(values, unix_ms);
  write_prom_file(values, unix_ms);
  std::lock_guard<std::mutex> lock(mutex_);
  ++seq_;
}

void Snapshotter::write_stream_line(
    const std::vector<std::pair<std::string, std::uint64_t>>& values,
    std::uint64_t unix_ms) {
  if (options_.stream_path.empty()) return;
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seq = seq_;
  }
  std::ostringstream line;
  line << "{\"seq\":" << seq << ",\"unix_ms\":" << unix_ms << ",\"job\":";
  write_json_string(line, options_.job);
  line << ",\"progress\":{";
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) line << ',';
    first = false;
    write_json_string(line, name);
    line << ':' << value;
  }
  line << "}}\n";
  // One append + flush per line: a tailing reader sees whole lines (or
  // nothing), never a torn object.
  std::ofstream os(options_.stream_path, std::ios::app);
  if (!os) return;  // exporting is best-effort; the engine never notices
  os << line.str();
  os.flush();
}

void Snapshotter::write_prom_file(
    const std::vector<std::pair<std::string, std::uint64_t>>& values,
    std::uint64_t unix_ms) {
  if (options_.prom_path.empty()) return;
  const std::string tmp = options_.prom_path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return;
    os << "# hbnet progress exposition (job=" << options_.job << ")\n";
    os << "hbnet_snapshot_unix_ms " << unix_ms << "\n";
    for (const auto& [name, value] : values) {
      os << prometheus_name(name) << ' ' << value << '\n';
    }
    os.flush();
    if (!os) return;
  }
  // Atomic replace: a scraper opening prom_path always reads a complete
  // exposition, never a half-written one.
  std::rename(tmp.c_str(), options_.prom_path.c_str());
}

std::string Snapshotter::prometheus_name(const std::string& key) {
  std::string out = "hbnet_";
  out.reserve(out.size() + key.size());
  for (char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace hbnet::obs
