#include "obs/progress.hpp"

#include <algorithm>

namespace hbnet::obs {

ProgressBoard::Slot& ProgressBoard::slot(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : slots_) {
    if (entry.first == name) return entry.second;
  }
  slots_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                      std::forward_as_tuple());
  return slots_.back().second;
}

std::vector<std::pair<std::string, std::uint64_t>> ProgressBoard::sample()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(slots_.size());
    for (const auto& entry : slots_) {
      out.emplace_back(entry.first, entry.second.value());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hbnet::obs
