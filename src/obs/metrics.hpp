// hbnet::obs -- low-overhead metrics primitives for the simulators.
//
// The registry replaces ad-hoc sample vectors (SimStats used to keep every
// delivered latency and sort it per percentile query) with fixed-footprint
// instruments:
//
//  * Counter   -- monotone uint64.
//  * Gauge     -- last-written double.
//  * Histogram -- HDR-style fixed-bucket value histogram: exact below
//    2^kLinearBits, then kSubBuckets log-spaced buckets per octave, so any
//    percentile query is answered in O(buckets) with relative error at most
//    1/kSubBuckets and memory independent of the sample count.
//
// Instruments are owned by a MetricsRegistry and addressed by name plus an
// optional label set (node/link/VC-class, simulator, ...). Lookups take the
// map path; hot loops should hold the returned reference, which is stable
// for the registry's lifetime.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace hbnet::obs {

/// Metric labels, e.g. {{"link", "3->7"}, {"vc", "2"}}.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket latency/value histogram (HDR layout).
///
/// Values below 2^kLinearBits land in exact unit-width buckets; above that,
/// each power-of-two octave is split into kSubBuckets log-spaced buckets.
/// percentile() uses the same nearest-rank convention the old SimStats code
/// used (rank = floor(q * (count-1))) and returns the bucket midpoint
/// clamped to the observed [min, max], so it is exact for values in the
/// linear range and within 1/kSubBuckets relative error elsewhere.
class Histogram {
 public:
  static constexpr unsigned kLinearBits = 8;  // exact for values < 256
  static constexpr unsigned kSubBucketBits = kLinearBits - 1;
  static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;  // 128
  static constexpr std::size_t kNumBuckets =
      (std::size_t{1} << kLinearBits) + (64 - kLinearBits) * kSubBuckets;

  void record(std::uint64_t value) { record_n(value, 1); }
  void record_n(std::uint64_t value, std::uint64_t n);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return count_ ? max_ : 0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// q in [0,1]; nearest-rank percentile over the recorded distribution.
  [[nodiscard]] std::uint64_t percentile(double q) const;

  void merge(const Histogram& other);

  /// Visits every non-empty bucket in increasing value order as
  /// fn(lower, upper, count) -- the exporter for heatmaps/summaries.
  template <typename Fn>
  void for_each_bucket(Fn&& fn) const {
    if (buckets_.empty()) return;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] == 0) continue;
      fn(bucket_lower(i), bucket_upper(i), buckets_[i]);
    }
  }

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) {
    if (value < (std::uint64_t{1} << kLinearBits)) {
      return static_cast<std::size_t>(value);
    }
    const unsigned exp = std::bit_width(value) - 1;  // >= kLinearBits
    const std::uint64_t sub = (value >> (exp - kSubBucketBits)) & (kSubBuckets - 1);
    return (std::size_t{1} << kLinearBits) +
           std::size_t{exp - kLinearBits} * kSubBuckets +
           static_cast<std::size_t>(sub);
  }
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t index);
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index);

 private:
  std::vector<std::uint64_t> buckets_;  // allocated on first record
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

/// How MetricsRegistry::merge combines an incoming gauge with an existing
/// value under the same key. Counters always add and histograms always
/// merge; gauges are the one instrument whose fold is ambiguous, so the
/// caller picks per key.
enum class GaugeMerge {
  kLast,  // incoming value wins (merge order defines "last")
  kMin,   // keep the smaller value
  kMax,   // keep the larger value (e.g. "did any trial deadlock")
  kSum,   // accumulate
};

/// Options for MetricsRegistry::merge.
struct MergeOptions {
  /// Labels appended to every incoming instrument key before insertion --
  /// how a campaign tags each trial's registry with its grid cell. Keys
  /// already carrying labels get these appended inside the brace block.
  LabelSet extra_labels;
  /// Picks the gauge policy for a (relabeled) key; kLast when empty.
  std::function<GaugeMerge(const std::string& key)> gauge_policy;
};

/// Name+label keyed collection of instruments. Addresses are stable: the
/// maps are node-based, so references returned by counter()/gauge()/
/// histogram() remain valid while the registry lives.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const LabelSet& labels = {});
  Gauge& gauge(const std::string& name, const LabelSet& labels = {});
  Histogram& histogram(const std::string& name, const LabelSet& labels = {});

  /// Folds `other` into this registry: counters add, histograms merge,
  /// gauges combine under `options.gauge_policy` (kLast -- the incoming
  /// value overwrites -- when none is given). Missing instruments are
  /// created; `other` is untouched and must not alias this registry. The
  /// result depends only on the two registries and the options, so a
  /// sequence of merges in a fixed order is deterministic regardless of
  /// how the source registries were produced.
  void merge(const MetricsRegistry& other, const MergeOptions& options = {});

  /// `key` with `extra` appended to its label block ("name" ->
  /// "name{k=v}", "name{a=b}" -> "name{a=b,k=v}"). No-op on empty
  /// `extra`. Matches key_of for unlabeled keys.
  [[nodiscard]] static std::string relabel_key(const std::string& key,
                                               const LabelSet& extra);

  /// Instrument present (without creating it)?
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const LabelSet& labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name, const LabelSet& labels = {}) const;

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Serializes every instrument as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,...}}}.
  void write_json(std::ostream& os) const;

  /// Canonical flat key: name{k=v,k2=v2} (name alone when unlabeled).
  [[nodiscard]] static std::string key_of(const std::string& name,
                                          const LabelSet& labels);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Writes `s` as a JSON string literal (quotes + escapes) to `os`.
void write_json_string(std::ostream& os, const std::string& s);

}  // namespace hbnet::obs
