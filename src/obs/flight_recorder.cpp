#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>

#include <fcntl.h>
#include <signal.h>
#include <stdio.h>
#include <unistd.h>

#include "check/check.hpp"

namespace hbnet::obs {
namespace {

struct ThreadRing {
  FlightEvent events[FlightRecorder::kRingCapacity];
  // Total events ever recorded by the owning thread; the live window is
  // the last min(count, kRingCapacity) slots. Written with release so a
  // collector that acquires it sees the events it covers.
  std::atomic<std::uint64_t> count{0};
};

std::atomic<std::uint64_t> g_seq{1};  // 0 marks an empty ring slot

// Rings are owned here and never freed: a thread that exits leaves its
// tail of events behind for the postmortem dump.
std::mutex g_registry_mutex;
std::vector<std::unique_ptr<ThreadRing>>& registry() {
  static std::vector<std::unique_ptr<ThreadRing>> r;
  return r;
}

// Lock-free mirror of the registry for the signal handler: a fixed array
// of pointers the crash path can walk without taking g_registry_mutex.
std::atomic<ThreadRing*>
    g_crash_rings[FlightRecorder::kMaxCrashVisibleThreads];
std::atomic<std::size_t> g_crash_ring_count{0};

ThreadRing* register_ring() {
  auto owned = std::make_unique<ThreadRing>();
  ThreadRing* ring = owned.get();
  {
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    registry().push_back(std::move(owned));
  }
  const std::size_t slot =
      g_crash_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (slot < FlightRecorder::kMaxCrashVisibleThreads) {
    g_crash_rings[slot].store(ring, std::memory_order_release);
  }
  return ring;
}

ThreadRing* this_thread_ring() {
  thread_local ThreadRing* ring = register_ring();
  return ring;
}

// ---------------------------------------------------------------------------
// Crash path.
// ---------------------------------------------------------------------------

char g_dump_path[4096] = {};      // empty = dump to stderr
std::atomic<bool> g_dumped{false};

void dump_once() {
  if (g_dumped.exchange(true)) return;
  int fd = 2;
  bool opened = false;
  if (g_dump_path[0] != '\0') {
    const int f = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (f >= 0) {
      fd = f;
      opened = true;
    }
  }
  FlightRecorder::dump_fd(fd);
  if (opened) ::close(fd);
}

void check_failure_hook() { dump_once(); }

void fatal_signal_handler(int sig) {
  dump_once();
  // Restore the default disposition and re-raise so the process still
  // dies with the original signal (core dumps, exit status intact).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void write_all(int fd, const char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, buf + done, n - done);
    if (w <= 0) return;
    done += static_cast<std::size_t>(w);
  }
}

}  // namespace

void FlightRecorder::record(const char* tag, std::uint64_t a, std::uint64_t b,
                            std::uint64_t c) {
  ThreadRing* ring = this_thread_ring();
  const std::uint64_t n = ring->count.load(std::memory_order_relaxed);
  FlightEvent& e = ring->events[n % kRingCapacity];
  e.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  e.a = a;
  e.b = b;
  e.c = c;
  std::size_t len = 0;
  while (tag[len] != '\0' && len < FlightEvent::kTagCapacity - 1) {
    e.tag[len] = tag[len];
    ++len;
  }
  e.tag[len] = '\0';
  ring->count.store(n + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::collect() {
  std::vector<FlightEvent> out;
  {
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    for (const auto& ring : registry()) {
      const std::uint64_t n = ring->count.load(std::memory_order_acquire);
      const std::uint64_t kept = std::min<std::uint64_t>(n, kRingCapacity);
      for (std::uint64_t i = 0; i < kept; ++i) {
        out.push_back(ring->events[(n - kept + i) % kRingCapacity]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

void FlightRecorder::dump_fd(int fd) {
  char buf[192];
  int len = snprintf(buf, sizeof(buf),
                     "hbnet flight recorder: recent events "
                     "(per-thread order, oldest first)\n");
  if (len > 0) write_all(fd, buf, static_cast<std::size_t>(len));
  const std::size_t rings =
      std::min(g_crash_ring_count.load(std::memory_order_acquire),
               kMaxCrashVisibleThreads);
  for (std::size_t r = 0; r < rings; ++r) {
    ThreadRing* ring = g_crash_rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t n = ring->count.load(std::memory_order_acquire);
    const std::uint64_t kept = std::min<std::uint64_t>(n, kRingCapacity);
    for (std::uint64_t i = 0; i < kept; ++i) {
      const FlightEvent& e = ring->events[(n - kept + i) % kRingCapacity];
      if (e.seq == 0) continue;
      char tag[FlightEvent::kTagCapacity];
      std::memcpy(tag, e.tag, sizeof(tag));
      tag[sizeof(tag) - 1] = '\0';
      len = snprintf(buf, sizeof(buf),
                     "flight %llu %s a=%llu b=%llu c=%llu\n",
                     static_cast<unsigned long long>(e.seq), tag,
                     static_cast<unsigned long long>(e.a),
                     static_cast<unsigned long long>(e.b),
                     static_cast<unsigned long long>(e.c));
      if (len > 0) write_all(fd, buf, static_cast<std::size_t>(len));
    }
  }
  len = snprintf(buf, sizeof(buf), "hbnet flight recorder: end of dump\n");
  if (len > 0) write_all(fd, buf, static_cast<std::size_t>(len));
}

void FlightRecorder::install_crash_dump(const std::string& path) {
  const std::size_t n = std::min(path.size(), sizeof(g_dump_path) - 1);
  std::memcpy(g_dump_path, path.data(), n);
  g_dump_path[n] = '\0';
  check_detail::set_failure_hook(&check_failure_hook);
  struct sigaction sa = {};
  sa.sa_handler = &fatal_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace hbnet::obs
