// hbnet::obs -- the Sink handed to simulators and algorithms.
//
// A Sink bundles everything a run can report:
//   * a MetricsRegistry (counters/gauges/histograms),
//   * an optional TraceRecorder (off by default; enable_trace() switches it
//     on -- the HBNET_TRACE_* macros test exactly this),
//   * a per-link utilization table (directed channel src->dst with
//     forwarded units and per-VC buffered flit-cycles),
//   * per-node occupancy accumulators (store-and-forward queue integrals),
//   * named cycle-bucketed time series (injections/deliveries per bucket).
//
// Simulators take `obs::Sink* sink = nullptr`; a null sink means zero
// instrumentation work beyond a pointer test per guarded site. The heavier
// aggregations (link sweeps) are only performed when a sink is attached --
// observability is pay-for-what-you-watch.
//
// Export:
//   write_metrics_json  -- one JSON document with the registry plus links,
//                          nodes, and time series (the --metrics-out file),
//   write_links_csv     -- per-link utilization as CSV for heatmap tooling,
//   trace()->write_json -- the Chrome trace (the --trace-out file).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hbnet::obs {

/// One directed channel's utilization record.
struct LinkStats {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t forwarded = 0;  // flits (wormhole) or packets (SF) moved
  std::vector<std::uint64_t> vc_occupancy;  // buffered flit-cycles per VC

  [[nodiscard]] std::uint64_t occupancy() const {
    std::uint64_t total = 0;
    for (std::uint64_t o : vc_occupancy) total += o;
    return total;
  }
  /// Fraction of cycles the channel moved a unit (<= 1 move/cycle).
  [[nodiscard]] double utilization(std::uint64_t cycles) const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(forwarded) /
                             static_cast<double>(cycles);
  }
};

/// Cycle-bucketed event-count series (e.g. deliveries per 32 cycles).
struct TimeSeries {
  std::uint64_t bucket_cycles = 1;
  std::vector<std::uint64_t> values;

  void bump(std::uint64_t cycle, std::uint64_t n = 1) {
    const std::size_t b = static_cast<std::size_t>(cycle / bucket_cycles);
    if (b >= values.size()) values.resize(b + 1, 0);
    values[b] += n;
  }
};

class Sink {
 public:
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// Switches trace recording on (idempotent). Until called, trace()
  /// returns null and every HBNET_TRACE_* site is a single pointer test.
  TraceRecorder& enable_trace(std::size_t capacity =
                                  TraceRecorder::kDefaultCapacity) {
    if (!trace_) trace_ = std::make_unique<TraceRecorder>(capacity);
    return *trace_;
  }
  [[nodiscard]] TraceRecorder* trace() { return trace_.get(); }
  [[nodiscard]] const TraceRecorder* trace() const { return trace_.get(); }

  // -- run-shaped aggregates, filled by the simulators at end of run --

  [[nodiscard]] std::vector<LinkStats>& links() { return links_; }
  [[nodiscard]] const std::vector<LinkStats>& links() const { return links_; }

  /// Per-node accumulators (queue-length integrals in the SF simulator).
  [[nodiscard]] std::vector<std::uint64_t>& node_occupancy() {
    return node_occupancy_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& node_occupancy() const {
    return node_occupancy_;
  }

  /// Named time series; created on first use with `bucket_cycles` (the
  /// bucket width of an existing series is kept). The returned reference
  /// is stable for the sink's lifetime (node-stable storage).
  TimeSeries& time_series(const std::string& name,
                          std::uint64_t bucket_cycles = 1);
  [[nodiscard]] const TimeSeries* find_time_series(
      const std::string& name) const;

  /// Cycles the reporting run simulated (denominator for utilization).
  void set_run_cycles(std::uint64_t cycles) { run_cycles_ = cycles; }
  [[nodiscard]] std::uint64_t run_cycles() const { return run_cycles_; }

  void write_metrics_json(std::ostream& os) const;
  void write_links_csv(std::ostream& os) const;

 private:
  MetricsRegistry metrics_;
  std::unique_ptr<TraceRecorder> trace_;
  std::vector<LinkStats> links_;
  std::vector<std::uint64_t> node_occupancy_;
  std::deque<std::pair<std::string, TimeSeries>> series_;
  std::uint64_t run_cycles_ = 0;
};

}  // namespace hbnet::obs
