#include "obs/sink.hpp"

#include <algorithm>

namespace hbnet::obs {

TimeSeries& Sink::time_series(const std::string& name,
                              std::uint64_t bucket_cycles) {
  for (auto& [n, s] : series_) {
    if (n == name) return s;
  }
  series_.emplace_back(name, TimeSeries{bucket_cycles == 0 ? 1 : bucket_cycles,
                                        {}});
  return series_.back().second;
}

const TimeSeries* Sink::find_time_series(const std::string& name) const {
  for (const auto& [n, s] : series_) {
    if (n == name) return &s;
  }
  return nullptr;
}

void Sink::write_metrics_json(std::ostream& os) const {
  os << "{\"metrics\":";
  metrics_.write_json(os);
  os << ",\"run_cycles\":" << run_cycles_;
  os << ",\"links\":[";
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const LinkStats& l = links_[i];
    if (i) os << ',';
    os << "{\"src\":" << l.src << ",\"dst\":" << l.dst
       << ",\"forwarded\":" << l.forwarded
       << ",\"occupancy\":" << l.occupancy()
       << ",\"utilization\":" << l.utilization(run_cycles_);
    if (!l.vc_occupancy.empty()) {
      os << ",\"vc_occupancy\":[";
      for (std::size_t q = 0; q < l.vc_occupancy.size(); ++q) {
        if (q) os << ',';
        os << l.vc_occupancy[q];
      }
      os << ']';
    }
    os << '}';
  }
  os << "],\"nodes\":[";
  for (std::size_t v = 0; v < node_occupancy_.size(); ++v) {
    if (v) os << ',';
    os << "{\"id\":" << v << ",\"queue_occupancy\":" << node_occupancy_[v]
       << '}';
  }
  os << "],\"timeseries\":{";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i) os << ',';
    write_json_string(os, series_[i].first);
    os << ":{\"bucket_cycles\":" << series_[i].second.bucket_cycles
       << ",\"values\":[";
    for (std::size_t b = 0; b < series_[i].second.values.size(); ++b) {
      if (b) os << ',';
      os << series_[i].second.values[b];
    }
    os << "]}";
  }
  os << "}}";
}

void Sink::write_links_csv(std::ostream& os) const {
  std::size_t vcs = 0;
  for (const LinkStats& l : links_) vcs = std::max(vcs, l.vc_occupancy.size());
  os << "src,dst,forwarded,occupancy,utilization";
  for (std::size_t q = 0; q < vcs; ++q) os << ",vc" << q << "_occupancy";
  os << '\n';
  for (const LinkStats& l : links_) {
    os << l.src << ',' << l.dst << ',' << l.forwarded << ',' << l.occupancy()
       << ',' << l.utilization(run_cycles_);
    for (std::size_t q = 0; q < vcs; ++q) {
      os << ',' << (q < l.vc_occupancy.size() ? l.vc_occupancy[q] : 0);
    }
    os << '\n';
  }
}

}  // namespace hbnet::obs
