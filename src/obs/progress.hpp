// hbnet::obs -- live progress channel for long-running engines.
//
// A ProgressBoard is the dedicated side channel the determinism contract
// requires for live telemetry: engines publish coarse progress (trials
// done, current sweep block, simulator cycle) by relaxed atomic stores
// into named Slots, and observers -- the Snapshotter's exporter thread,
// the CLI's TTY status line -- sample those slots concurrently. Nothing
// ever flows back: a board is write-only for the engine and read-only for
// the observer, so results, checkpoints, and merged metrics stay
// byte-identical whether a board is attached or not.
//
// Slots are created on first use and their addresses are stable for the
// board's lifetime (deque storage), so hot loops resolve a slot once and
// then update it with a single relaxed atomic op per event. Values are
// uint64 -- counts, cycles, and scaled quantities; anything richer
// belongs in MetricsRegistry, which stays on the deterministic result
// path.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hbnet::obs {

/// Name -> value channel between one or more writers (engine threads) and
/// any number of samplers. All operations are thread-safe; slot updates
/// are wait-free after the first lookup.
class ProgressBoard {
 public:
  /// One named atomic value. set() is for level-style quantities (current
  /// cycle, current bound); add() for monotone tallies (trials done,
  /// flits delivered). Mixed use on one slot is a bug, not a crash.
  class Slot {
   public:
    void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
    void add(std::uint64_t n) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const {
      return value_.load(std::memory_order_relaxed);
    }

   private:
    std::atomic<std::uint64_t> value_{0};
  };

  ProgressBoard() = default;
  ProgressBoard(const ProgressBoard&) = delete;
  ProgressBoard& operator=(const ProgressBoard&) = delete;

  /// The slot named `name`, created (value 0) on first use. The returned
  /// reference is stable for the board's lifetime; hot paths call this
  /// once and keep the reference.
  Slot& slot(const std::string& name);

  /// Consistent-enough snapshot for display/export: every slot that
  /// existed when sampling began, as (name, value) sorted by name. Values
  /// are individually atomic reads; cross-slot skew is inherent and fine
  /// for progress display.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> sample()
      const;

 private:
  mutable std::mutex mutex_;
  // deque: grows without moving existing slots, so Slot& stays valid.
  std::deque<std::pair<std::string, Slot>> slots_;
};

}  // namespace hbnet::obs
