#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "check/check.hpp"

namespace hbnet::obs {

void Histogram::record_n(std::uint64_t value, std::uint64_t n) {
  if (n == 0) return;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  buckets_[bucket_index(value)] += n;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
}

std::uint64_t Histogram::bucket_lower(std::size_t index) {
  constexpr std::size_t linear = std::size_t{1} << kLinearBits;
  if (index < linear) return index;
  const std::size_t off = index - linear;
  const unsigned exp = kLinearBits + static_cast<unsigned>(off / kSubBuckets);
  const std::uint64_t sub = off % kSubBuckets;
  return (std::uint64_t{1} << exp) + (sub << (exp - kSubBucketBits));
}

std::uint64_t Histogram::bucket_upper(std::size_t index) {
  constexpr std::size_t linear = std::size_t{1} << kLinearBits;
  if (index < linear) return index;
  const std::size_t off = index - linear;
  const unsigned exp = kLinearBits + static_cast<unsigned>(off / kSubBuckets);
  return bucket_lower(index) + ((std::uint64_t{1} << (exp - kSubBucketBits)) - 1);
}

std::uint64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum > rank) {
      const std::uint64_t lo = bucket_lower(i), hi = bucket_upper(i);
      return std::clamp(lo + (hi - lo) / 2, min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

std::string MetricsRegistry::relabel_key(const std::string& key,
                                         const LabelSet& extra) {
  if (extra.empty()) return key;
  std::string tail;
  for (const auto& [k, v] : extra) {
    if (!tail.empty()) tail += ',';
    tail += k;
    tail += '=';
    tail += v;
  }
  std::string out;
  if (!key.empty() && key.back() == '}') {
    out.assign(key, 0, key.size() - 1);
    out += ',';
  } else {
    out = key;
    out += '{';
  }
  out += tail;
  out += '}';
  return out;
}

void MetricsRegistry::merge(const MetricsRegistry& other,
                            const MergeOptions& options) {
  HBNET_CHECK_MSG(&other != this,
                  "MetricsRegistry::merge: source aliases target");
  for (const auto& [key, c] : other.counters_) {
    counters_[relabel_key(key, options.extra_labels)].inc(c.value());
  }
  for (const auto& [key, g] : other.gauges_) {
    const std::string k = relabel_key(key, options.extra_labels);
    const GaugeMerge policy =
        options.gauge_policy ? options.gauge_policy(k) : GaugeMerge::kLast;
    auto it = gauges_.find(k);
    if (it == gauges_.end()) {
      gauges_[k].set(g.value());
      continue;
    }
    switch (policy) {
      case GaugeMerge::kLast:
        it->second.set(g.value());
        break;
      case GaugeMerge::kMin:
        it->second.set(std::min(it->second.value(), g.value()));
        break;
      case GaugeMerge::kMax:
        it->second.set(std::max(it->second.value(), g.value()));
        break;
      case GaugeMerge::kSum:
        it->second.add(g.value());
        break;
    }
  }
  for (const auto& [key, h] : other.histograms_) {
    histograms_[relabel_key(key, options.extra_labels)].merge(h);
  }
}

std::string MetricsRegistry::key_of(const std::string& name,
                                    const LabelSet& labels) {
  if (labels.empty()) return name;
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) key += ',';
    key += labels[i].first;
    key += '=';
    key += labels[i].second;
  }
  key += '}';
  return key;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const LabelSet& labels) {
  return counters_[key_of(name, labels)];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const LabelSet& labels) {
  return gauges_[key_of(name, labels)];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const LabelSet& labels) {
  return histograms_[key_of(name, labels)];
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const LabelSet& labels) const {
  auto it = counters_.find(key_of(name, labels));
  return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const LabelSet& labels) const {
  auto it = histograms_.find(key_of(name, labels));
  return it == histograms_.end() ? nullptr : &it->second;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

namespace {

// Finite-or-zero guard: JSON has no NaN/Inf literals.
double json_safe(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, key);
    os << ':' << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [key, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, key);
    os << ':' << json_safe(g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [key, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, key);
    os << ":{\"count\":" << h.count() << ",\"min\":" << h.min()
       << ",\"mean\":" << json_safe(h.mean()) << ",\"p50\":" << h.percentile(0.5)
       << ",\"p90\":" << h.percentile(0.9) << ",\"p99\":" << h.percentile(0.99)
       << ",\"max\":" << h.max() << '}';
  }
  os << "}}";
}

}  // namespace hbnet::obs
