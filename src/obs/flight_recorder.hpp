// hbnet::obs -- crash-surviving ring buffer of recent engine events.
//
// The FlightRecorder answers "what was the process doing when it died?"
// for long runs killed by an HBNET_CHECK failure or a fatal signal.
// Engines record small structured events (trial start/finish, sweep
// block, checkpoint write) into fixed-capacity per-thread ring buffers;
// the failure path dumps the most recent events -- merged across
// threads, in global sequence order -- to a file or stderr.
//
// Recording is lock-free and allocation-free after a thread's first
// event: one relaxed fetch_add on a global sequence counter plus a store
// into the caller's own ring. Old events are overwritten in place, so
// the recorder's footprint is constant no matter how long the run. Like
// the ProgressBoard this is a pure side channel: nothing recorded here
// influences results, and recording is always on (its cost is a few
// nanoseconds per coarse-grained event).
//
// Dumping from a signal handler is best-effort: it uses only
// async-signal-safe calls (open/write/snprintf into a local buffer), and
// an event being written concurrently by a live thread may appear torn.
// That trade is deliberate -- a mostly-correct tail of events beats none.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hbnet::obs {

/// One recorded event: a short tag plus three uint64 payload slots whose
/// meaning is tag-specific (documented at each record site).
struct FlightEvent {
  static constexpr std::size_t kTagCapacity = 24;  // incl. NUL

  std::uint64_t seq = 0;  // global order; 0 = empty slot
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  char tag[kTagCapacity] = {};
};

/// Process-wide recorder. All members are static: per-thread rings are
/// reached through a thread_local, and the crash path needs a global
/// registry it can walk without locks.
class FlightRecorder {
 public:
  /// Events retained per thread; older events are overwritten.
  static constexpr std::size_t kRingCapacity = 256;
  /// Threads whose rings the signal-safe dump path can see. Later
  /// threads still record, but only lock-path collect() reads them.
  static constexpr std::size_t kMaxCrashVisibleThreads = 256;

  /// Records one event into the calling thread's ring. `tag` is
  /// truncated to kTagCapacity-1 bytes. Wait-free after the thread's
  /// first call.
  static void record(const char* tag, std::uint64_t a = 0, std::uint64_t b = 0,
                     std::uint64_t c = 0);

  /// All retained events from every thread, sorted by global seq
  /// (oldest first). Takes the registry lock -- for tests and orderly
  /// dumps, not the crash path.
  [[nodiscard]] static std::vector<FlightEvent> collect();

  /// Writes retained events to `fd` as "flight <seq> <tag> a=<a> b=<b>
  /// c=<c>" lines using only async-signal-safe calls. Best-effort;
  /// events touched mid-write by live threads may be torn.
  static void dump_fd(int fd);

  /// Arms postmortem dumping: on HBNET_CHECK failure (via
  /// check_detail::set_failure_hook) or a fatal signal (SIGSEGV, SIGBUS,
  /// SIGFPE, SIGILL, SIGABRT), the recorder dumps to `path` -- or to
  /// stderr when `path` is empty -- exactly once, then the normal
  /// abort/signal disposition proceeds. Call once near process start.
  static void install_crash_dump(const std::string& path = "");
};

}  // namespace hbnet::obs
