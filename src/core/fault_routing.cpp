#include "core/fault_routing.hpp"

#include <algorithm>

#include "obs/sink.hpp"
#include "obs/trace.hpp"

namespace hbnet {

namespace {

/// Records the outcome of one routing attempt into the sink.
void report(obs::Sink* sink, const HyperButterfly& hb, HbNode u, HbNode v,
            const FaultRouteResult& r) {
  if (sink == nullptr) return;
  obs::MetricsRegistry& reg = sink->metrics();
  reg.counter("fault_route.attempts").inc();
  reg.counter("fault_route.paths_tried").inc(r.paths_tried);
  if (r.used_fallback) reg.counter("fault_route.bfs_fallbacks").inc();
  if (!r.ok()) reg.counter("fault_route.failures").inc();
  HBNET_TRACE_INSTANT(
      sink, "routing", "route_around_faults", 0,
      static_cast<std::uint32_t>(hb.index_of(u)), 0,
      {{"src", hb.index_of(u)},
       {"dst", hb.index_of(v)},
       {"paths_tried", r.paths_tried},
       {"fallback", r.used_fallback ? 1u : 0u},
       {"hops", r.path.empty() ? 0 : r.path.size() - 1}});
}

/// Shared core of both route_around_faults overloads. `banned_first` may be
/// null (no link bans); when set, the BFS fallback is unavailable because the
/// reference search cannot honor per-edge bans.
FaultRouteResult route_around_faults_impl(const HyperButterfly& hb, HbNode u,
                                          HbNode v, const HbFaultSet& faults,
                                          const std::vector<HbNode>* banned_first,
                                          bool bfs_fallback, obs::Sink* sink) {
  FaultRouteResult r;
  if (faults.contains(hb, u) || faults.contains(hb, v)) {
    report(sink, hb, u, v, r);
    return r;
  }
  if (u == v) {
    r.path = {u};
    report(sink, hb, u, v, r);
    return r;
  }
  std::vector<std::vector<HbNode>> family = hb.disjoint_paths(u, v);
  // Prefer short paths: inspect the family in increasing length order.
  std::sort(family.begin(), family.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  for (const auto& path : family) {
    ++r.paths_tried;
    bool clean = true;
    if (banned_first != nullptr && path.size() > 1) {
      for (const HbNode& b : *banned_first) {
        if (path[1] == b) {
          clean = false;
          break;
        }
      }
    }
    for (std::size_t i = 1; clean && i + 1 < path.size(); ++i) {
      if (faults.contains(hb, path[i])) clean = false;
    }
    if (clean) {
      r.path = path;
      report(sink, hb, u, v, r);
      return r;
    }
  }
  if (bfs_fallback) {
    if (auto p = hb_bfs_path(hb, u, v, &faults)) {
      r.path = std::move(*p);
      r.used_fallback = true;
    }
  }
  report(sink, hb, u, v, r);
  return r;
}

}  // namespace

FaultRouteResult route_around_faults(const HyperButterfly& hb, HbNode u,
                                     HbNode v, const HbFaultSet& faults,
                                     bool bfs_fallback, obs::Sink* sink) {
  return route_around_faults_impl(hb, u, v, faults, /*banned_first=*/nullptr,
                                  bfs_fallback, sink);
}

FaultRouteResult route_around_faults(const HyperButterfly& hb, HbNode u,
                                     HbNode v, const HbFaultSet& faults,
                                     const std::vector<HbNode>& banned_first,
                                     obs::Sink* sink) {
  return route_around_faults_impl(hb, u, v, faults, &banned_first,
                                  /*bfs_fallback=*/false, sink);
}

}  // namespace hbnet
