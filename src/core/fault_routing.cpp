#include "core/fault_routing.hpp"

#include <algorithm>

namespace hbnet {

FaultRouteResult route_around_faults(const HyperButterfly& hb, HbNode u,
                                     HbNode v, const HbFaultSet& faults,
                                     bool bfs_fallback) {
  FaultRouteResult r;
  if (faults.contains(hb, u) || faults.contains(hb, v)) return r;
  if (u == v) {
    r.path = {u};
    return r;
  }
  std::vector<std::vector<HbNode>> family = hb.disjoint_paths(u, v);
  // Prefer short paths: inspect the family in increasing length order.
  std::sort(family.begin(), family.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  for (const auto& path : family) {
    ++r.paths_tried;
    bool clean = true;
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      if (faults.contains(hb, path[i])) {
        clean = false;
        break;
      }
    }
    if (clean) {
      r.path = path;
      return r;
    }
  }
  if (bfs_fallback) {
    if (auto p = hb_bfs_path(hb, u, v, &faults)) {
      r.path = std::move(*p);
      r.used_fallback = true;
    }
  }
  return r;
}

}  // namespace hbnet
