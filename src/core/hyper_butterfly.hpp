// The hyper-butterfly network HB(m,n) -- the paper's primary contribution.
//
// HB(m,n) is the product of the hypercube H_m and the wrapped butterfly B_n
// (Definition 3). A vertex carries a hypercube-part label (m bits) and a
// butterfly-part label (word, level); the m+4 generators are the m hypercube
// bit flips h_i plus the four butterfly generators g, f, g^-1, f^-1
// (Remark 3 / Theorem 1). Headline properties implemented and tested here
// and in the sibling core/ files:
//
//   * regular Cayley graph of degree m+4 with n*2^(m+n) vertices and
//     (m+4)*n*2^(m+n-1) edges (Theorems 1-2),
//   * dist((h,b),(h',b')) = hamming(h,h') + dist_B(b,b'), giving trivially
//     optimal two-phase routing (Section 3) and diameter m + ceil(3n/2)
//     (Theorem 3; the butterfly term is measured in tests),
//   * m+4 internally vertex-disjoint paths between any two vertices
//     (Theorem 5) -> maximal fault tolerance (Corollary 1),
//   * fault-tolerant routing with up to m+3 node faults (Remark 10),
//   * embeddings (Section 4) in core/embeddings.hpp,
//   * broadcast (the paper's announced future work) in core/broadcast.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/cayley.hpp"
#include "graph/graph.hpp"
#include "topology/butterfly.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {

/// A hyper-butterfly vertex: hypercube part and butterfly part.
struct HbNode {
  CubeWord cube = 0;
  BflyNode bfly{};
  friend bool operator==(const HbNode&, const HbNode&) = default;
};

/// A generator of HB(m,n): either a hypercube bit flip h_i or one of the
/// four butterfly generators.
struct HbGen {
  bool is_cube = false;
  unsigned cube_bit = 0;        // valid when is_cube
  BflyGen bfly_gen = BflyGen::kG;  // valid when !is_cube

  static HbGen cube(unsigned bit) { return {true, bit, BflyGen::kG}; }
  static HbGen butterfly(BflyGen g) { return {false, 0, g}; }
};

/// Dense 64-bit index of an HB vertex (for sets/maps on large instances).
using HbIndex = std::uint64_t;

class HyperButterfly {
 public:
  /// Constructs HB(m,n); m >= 1, n in [3, 20], m + n <= 26.
  HyperButterfly(unsigned m, unsigned n);

  [[nodiscard]] unsigned cube_dimension() const { return m_; }
  [[nodiscard]] unsigned butterfly_dimension() const { return n_; }
  [[nodiscard]] const Hypercube& hypercube() const { return cube_; }
  [[nodiscard]] const Butterfly& butterfly() const { return bfly_; }

  /// n * 2^(m+n) vertices (Theorem 2).
  [[nodiscard]] HbIndex num_nodes() const {
    return static_cast<HbIndex>(n_) << (m_ + n_);
  }
  /// (m+4) * n * 2^(m+n-1) edges (Theorem 2).
  [[nodiscard]] std::uint64_t num_edges() const {
    return static_cast<std::uint64_t>(m_ + 4) * num_nodes() / 2;
  }
  /// Degree of every vertex: m + 4.
  [[nodiscard]] unsigned degree() const { return m_ + 4; }

  /// Theorem 3: m + ceil(3n/2). See EXPERIMENTS.md for the measured value.
  [[nodiscard]] unsigned diameter_formula() const {
    return m_ + (3 * n_ + 1) / 2;
  }

  /// The m+4 generators: h_0..h_{m-1}, then g, f, g^-1, f^-1.
  [[nodiscard]] std::vector<HbGen> generators() const;

  /// Applies a generator.
  [[nodiscard]] HbNode apply(HbNode v, const HbGen& gen) const;

  /// All m+4 neighbors, in generator order.
  [[nodiscard]] std::vector<HbNode> neighbors(HbNode v) const;

  /// Exact shortest-path distance (Remark 8): cube Hamming distance plus
  /// butterfly covering-walk distance.
  [[nodiscard]] unsigned distance(HbNode u, HbNode v) const;

  /// Optimal two-phase route (Section 3): hypercube phase then butterfly
  /// phase. Returns the full vertex sequence [u, ..., v].
  [[nodiscard]] std::vector<HbNode> route(HbNode u, HbNode v) const;

  /// Same route as a generator sequence.
  [[nodiscard]] std::vector<HbGen> route_generators(HbNode u, HbNode v) const;

  /// Theorem 5: m+4 internally vertex-disjoint u-v paths (u != v).
  /// Implemented in core/disjoint_paths.cpp; see that file for the
  /// construction and its degenerate-case handling.
  [[nodiscard]] std::vector<std::vector<HbNode>> disjoint_paths(
      HbNode u, HbNode v) const;

  /// Dense index: ((cube << n) | word) * n + level.
  [[nodiscard]] HbIndex index_of(HbNode v) const {
    return ((static_cast<HbIndex>(v.cube) << n_) | v.bfly.word) * n_ +
           v.bfly.level;
  }
  [[nodiscard]] HbNode node_at(HbIndex id) const {
    auto level = static_cast<std::uint32_t>(id % n_);
    HbIndex wc = id / n_;
    return {static_cast<CubeWord>(wc >> n_),
            {static_cast<std::uint32_t>(wc & ((HbIndex{1} << n_) - 1)), level}};
  }
  /// True iff the vertex is valid for this instance.
  [[nodiscard]] bool contains(HbNode v) const {
    return v.cube < (CubeWord{1} << m_) && v.bfly.word < (1u << n_) &&
           v.bfly.level < n_;
  }

  /// Cayley-graph view (Theorem 1).
  [[nodiscard]] CayleySpec cayley_spec() const;

  /// Materialized CSR graph. Throws if num_nodes() exceeds 2^31 (use the
  /// implicit interface for larger instances).
  [[nodiscard]] Graph to_graph() const;

  /// Materialized wrapped butterfly B_n of this instance (one layer),
  /// indexed by Butterfly::index_of. Used by the Theorem-5 construction.
  [[nodiscard]] const Graph& butterfly_graph() const;

 private:
  unsigned m_, n_;
  Hypercube cube_;
  Butterfly bfly_;
  mutable Graph bfly_graph_;       // lazily materialized
  mutable bool bfly_graph_ready_ = false;
};

/// Result of sweeping the Theorem-5 construction over vertex pairs.
struct DisjointPathsAudit {
  bool ok = true;
  std::uint64_t pairs_checked = 0;  // == all ordered pairs when ok
  std::string error;  // lowest-pair-index violation when !ok, else empty
};

/// Verifies Theorem 5 operationally: for every ordered pair (u, v) of
/// distinct vertices, constructs the m+4 disjoint paths and validates them
/// against the materialized graph (count, endpoints, edges, internal
/// disjointness). The pair sweep runs on the hbnet::par pool (`threads`;
/// 0 = par::default_threads()); the reported violation, if any, is the one
/// with the lowest pair index, so the outcome is thread-count independent.
/// Implemented in core/disjoint_paths.cpp.
[[nodiscard]] DisjointPathsAudit audit_disjoint_paths(const HyperButterfly& hb,
                                                      unsigned threads = 0);

}  // namespace hbnet
