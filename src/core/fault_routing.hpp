// Fault-tolerant routing in HB(m,n) (Remark 10 of the paper).
//
// Because HB(m,n) has m+4 internally vertex-disjoint paths between every
// vertex pair (Theorem 5) and is (m+4)-regular, it tolerates any m+3 node
// faults: at least one of the constructed disjoint paths is fault free.
// route_around_faults() materializes the Theorem-5 family and returns the
// shortest fault-free member; this is the paper's "optimal routing scheme in
// the presence of maximal number of allowable faults". A BFS reference
// (hb_bfs_path with faults) is available for cross-checking optimality and
// for fault sets beyond the guarantee.
#pragma once

#include <optional>
#include <vector>

#include "core/hyper_butterfly.hpp"
#include "core/routing.hpp"

namespace hbnet {

namespace obs {
class Sink;
}

/// Statistics of a fault-routing attempt.
struct FaultRouteResult {
  std::vector<HbNode> path;      // empty when no path was found
  unsigned paths_tried = 0;      // disjoint paths inspected
  bool used_fallback = false;    // true if BFS fallback produced the path
  [[nodiscard]] bool ok() const { return !path.empty(); }
};

/// Routes u -> v avoiding `faults` using the Theorem-5 disjoint-path family;
/// picks the shortest fault-free family member. If every family member is
/// blocked (only possible when |faults| > m+3 or endpoints are faulty) and
/// `bfs_fallback` is set, falls back to BFS on the implicit fault-free graph.
/// A non-null `sink` accumulates attempt/paths-tried/fallback counters and
/// emits one instant trace event per routing decision.
[[nodiscard]] FaultRouteResult route_around_faults(const HyperButterfly& hb,
                                                   HbNode u, HbNode v,
                                                   const HbFaultSet& faults,
                                                   bool bfs_fallback = true,
                                                   obs::Sink* sink = nullptr);

/// Like route_around_faults, but additionally refuses any family member whose
/// first hop is a node in `banned_first` — the online wormhole router uses
/// this to avoid faulted *links* out of u that are not node faults. Because
/// the Theorem-5 family is internally vertex-disjoint, at most one member
/// leaves u through any given first edge, so each banned link costs at most
/// one candidate and the m+4-wide family still guarantees a survivor while
/// |node faults| + |banned links| <= m+3. Family-only: the BFS reference
/// cannot honor per-edge bans, so there is no fallback.
[[nodiscard]] FaultRouteResult route_around_faults(
    const HyperButterfly& hb, HbNode u, HbNode v, const HbFaultSet& faults,
    const std::vector<HbNode>& banned_first, obs::Sink* sink = nullptr);

}  // namespace hbnet
