#include "core/broadcast.hpp"

#include <bit>
#include <stdexcept>
#include <vector>

#include "obs/sink.hpp"
#include "obs/trace.hpp"

namespace hbnet {

unsigned broadcast_lower_bound(const HyperButterfly& hb) {
  // Single-port: |informed| at most doubles per round.
  const std::uint64_t n = hb.num_nodes();
  unsigned lg = 0;
  while ((std::uint64_t{1} << lg) < n) ++lg;
  return lg;
}

unsigned greedy_broadcast_rounds(const Graph& g, NodeId source) {
  std::vector<char> informed(g.num_nodes(), 0);
  informed[source] = 1;
  std::vector<NodeId> holders{source};
  std::uint64_t count = 1;
  unsigned rounds = 0;
  while (count < g.num_nodes()) {
    ++rounds;
    std::vector<NodeId> fresh;
    for (NodeId u : holders) {
      // Send to the uninformed neighbor with the most uninformed neighbors
      // of its own (a cheap look-ahead that closes the last stragglers
      // faster than first-fit).
      NodeId best = kInvalidNode;
      std::uint32_t best_score = 0;
      for (NodeId v : g.neighbors(u)) {
        if (informed[v]) continue;
        std::uint32_t score = 1;
        for (NodeId w : g.neighbors(v)) score += !informed[w];
        if (best == kInvalidNode || score > best_score) {
          best = v;
          best_score = score;
        }
      }
      if (best != kInvalidNode) {
        informed[best] = 1;
        fresh.push_back(best);
        ++count;
      }
    }
    if (fresh.empty()) {
      throw std::logic_error("greedy_broadcast_rounds: stalled (disconnected?)");
    }
    holders.insert(holders.end(), fresh.begin(), fresh.end());
  }
  return rounds;
}

BroadcastResult hb_greedy_broadcast(const HyperButterfly& hb, HbNode source,
                                    obs::Sink* sink) {
  if (hb.num_nodes() > (HbIndex{1} << 31)) {
    throw std::length_error("hb_greedy_broadcast: instance too large");
  }
  Graph g = hb.to_graph();
  BroadcastResult r;
  r.rounds = greedy_broadcast_rounds(g, static_cast<NodeId>(hb.index_of(source)));
  r.informed = g.num_nodes();
  r.complete = true;
  if (sink != nullptr) {
    sink->metrics().counter("broadcast.greedy.rounds").inc(r.rounds);
    sink->metrics().counter("broadcast.greedy.informed").inc(r.informed);
    HBNET_TRACE_COMPLETE(sink, "broadcast", "greedy-broadcast", 0, 0, 0,
                         r.rounds, {{"informed", r.informed}});
  }
  return r;
}

BroadcastResult hb_structured_broadcast(const HyperButterfly& hb,
                                        HbNode source, obs::Sink* sink) {
  // Phase A: binomial broadcast across the m cube dimensions. Round i
  // doubles the informed set along bit i; after m rounds every cube layer
  // holds exactly the source's butterfly vertex. Phase B: all 2^m layers
  // run the same precomputed greedy butterfly schedule in parallel.
  const unsigned m = hb.cube_dimension();
  BroadcastResult r;
  unsigned layer_rounds = greedy_broadcast_rounds(
      hb.butterfly_graph(), hb.butterfly().index_of(source.bfly));
  r.rounds = m + layer_rounds;
  r.informed = hb.num_nodes();
  r.complete = true;
  if (sink != nullptr) {
    sink->metrics().counter("broadcast.structured.cube_rounds").inc(m);
    sink->metrics().counter("broadcast.structured.layer_rounds")
        .inc(layer_rounds);
    HBNET_TRACE_COMPLETE(sink, "broadcast", "cube-phase", 0, 0, 0, m,
                         {{"dimensions", m}});
    HBNET_TRACE_COMPLETE(sink, "broadcast", "butterfly-phase", 0, 0, m,
                         layer_rounds, {{"layers", std::uint64_t{1} << m}});
  }
  return r;
}

}  // namespace hbnet
