// Section 4 of the paper: embeddings in HB(m,n).
//
// Everything here is *constructive* and returns explicit vertex maps that
// tests validate with graph/embedding_check.hpp:
//
//  * even cycles of every length 4..n*2^(m+n) (Lemma 2), via a snake walk
//    inside the product of a hypercube Gray cycle and a butterfly cycle;
//  * wrap-around meshes (tori) M(a, c) as true subgraphs;
//  * the double-rooted complete binary tree DRT(k) spanning H_k (the
//    classical Leighton construction, implemented with an explicit
//    transposition automorphism at every doubling step), giving
//    T(h) in H_{h+1} -- the paper's Figure-1 hypercube row T(m+n-1);
//  * the natural butterfly tree T(h) in B_n for h <= n;
//  * T(m+n-2) in HB(m,n) by grafting the butterfly tree onto the hypercube
//    tree (the paper's T(m+n-1) needs Lemma 3's T(n+1) in B_n, which we
//    audit by exact search instead -- see EXPERIMENTS.md);
//  * meshes of trees MT(2^p, 2^q) for 1 <= p <= m-2, 1 <= q <= n-1
//    (Theorem 4 / Lemma 4).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/hyper_butterfly.hpp"
#include "topology/butterfly.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {

/// A cycle of even length k, 4 <= k <= n*2^(m+n), as an HB vertex sequence
/// (closed implicitly; the first vertex is not repeated). Lemma 2.
[[nodiscard]] std::vector<HbNode> hb_even_cycle(const HyperButterfly& hb,
                                                std::uint64_t k);

/// Embedding of the wrap-around mesh M(a, c): element [r][col] is the HB
/// vertex hosting torus vertex (r, col). Requires a even in [4, 2^m] (or
/// a == 2 for the degenerate two-layer "mesh", in which row wrap edges
/// coincide with row edges) and c a realizable butterfly cycle length
/// (c = k*n + 2*k', k >= 1, k + k' <= 2^n).
[[nodiscard]] std::vector<std::vector<HbNode>> hb_torus(
    const HyperButterfly& hb, std::uint32_t a, std::uint32_t k,
    std::uint32_t k_prime);

/// Snake cycle of even length k inside an R x C grid (R even >= 2, C >= 2,
/// 4 <= k <= R*C): returns (row, col) pairs in cycle order using only
/// grid edges. Shared helper for the cycle embeddings; exposed for tests.
[[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>>
grid_snake_cycle(std::uint32_t rows, std::uint32_t cols, std::uint64_t k);

/// The double-rooted complete binary tree DRT(k) spanning H_k. Returned as
/// positions indexed like make_double_rooted_tree(): [0]=root1, [1]=root2,
/// then the two heap-ordered T(k-1) subtrees.
[[nodiscard]] std::vector<CubeWord> drt_in_hypercube(unsigned k);

/// T(h) (2^h - 1 vertices, heap-indexed) as a subgraph of H_{h+1}.
[[nodiscard]] std::vector<CubeWord> tree_in_hypercube(unsigned h);

/// T(h) (heap-indexed) as a subgraph of B_n, h <= n: the natural tree
/// rooted at (root_word, 0) with children via g and f.
[[nodiscard]] std::vector<BflyNode> tree_in_butterfly(const Butterfly& bf,
                                                      unsigned h,
                                                      std::uint32_t root_word = 0);

/// T(m+n-2) (heap-indexed) as a subgraph of HB(m,n): hypercube tree T(m-1)
/// on top, butterfly trees T(n) grafted below each hypercube-tree leaf.
[[nodiscard]] std::vector<HbNode> tree_in_hb(const HyperButterfly& hb);

/// MT(2^p, 2^q) (indexed per MeshOfTreesIndex) as a subgraph of HB(m,n),
/// for 1 <= p <= m-2 and 1 <= q <= n-1 (Theorem 4 via Lemma 4).
[[nodiscard]] std::vector<HbNode> mesh_of_trees_in_hb(const HyperButterfly& hb,
                                                      unsigned p, unsigned q);

}  // namespace hbnet
