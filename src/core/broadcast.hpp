// One-to-all broadcast in HB(m,n) -- the paper's announced future-work item
// ("we have also recently developed an asymptotically optimal broadcasting
// algorithm for this proposed network"). No algorithm is given in the paper,
// so we provide two and measure them against the single-port lower bound
// max(ceil(log2 N), diameter-ish):
//
//  * structured: m rounds of the classical binomial-tree broadcast across
//    the hypercube dimension, then all 2^m butterfly layers broadcast in
//    parallel with a greedy single-port schedule computed once on B_n.
//    Rounds = m + rounds(B_n); since rounds(B_n) is O(n) and
//    log2 N = m + n + log2 n, this is asymptotically optimal.
//  * greedy: a global greedy single-port schedule on the whole graph
//    (each round every informed vertex informs one uninformed neighbor,
//    preferring neighbors with uninformed second neighborhoods).
#pragma once

#include <cstdint>

#include "core/hyper_butterfly.hpp"

namespace hbnet {

namespace obs {
class Sink;
}

/// Outcome of a broadcast schedule simulation.
struct BroadcastResult {
  unsigned rounds = 0;
  std::uint64_t informed = 0;  // vertices informed at the end
  bool complete = false;       // informed == num_nodes
};

/// Single-port lower bound: every round at most doubles the informed set.
[[nodiscard]] unsigned broadcast_lower_bound(const HyperButterfly& hb);

/// Greedy global single-port schedule from `source`. A non-null `sink`
/// records a phase span (ts in rounds) plus round/informed counters.
[[nodiscard]] BroadcastResult hb_greedy_broadcast(const HyperButterfly& hb,
                                                  HbNode source,
                                                  obs::Sink* sink = nullptr);

/// Binomial-across-cube then per-layer butterfly schedule from `source`.
/// A non-null `sink` records the cube and butterfly phases as trace spans
/// (ts in rounds) plus round counters per phase.
[[nodiscard]] BroadcastResult hb_structured_broadcast(const HyperButterfly& hb,
                                                      HbNode source,
                                                      obs::Sink* sink = nullptr);

/// Greedy single-port broadcast rounds for a materialized graph (helper for
/// the per-layer butterfly schedule and for baseline comparisons).
[[nodiscard]] unsigned greedy_broadcast_rounds(const Graph& g, NodeId source);

}  // namespace hbnet
