// Structural validator for the HB(m,n) Theorem-claim invariants, used by
// the HBNET_DCHECK_OK sites in the builder and the path-family analyses
// (and directly by tests). The graph-layer validators live in
// graph/validate.hpp; both stay in namespace hbnet::check so call sites
// read `check::validate(x)` regardless of which subsystem defines the
// overload.
//
// Returns an empty string when the object is well formed and a description
// of the *first* violation otherwise, so callers can route the result
// through HBNET_CHECK_OK / HBNET_DCHECK_OK or report it softly.
#pragma once

#include <string>

namespace hbnet {
class HyperButterfly;
}

namespace hbnet::check {

/// HB(m,n) Theorem 1-2 invariants: m+4 generators (= degree), n * 2^(m+n)
/// vertices, (m+4) * n * 2^(m+n-1) edges, and on a bounded sample of
/// vertices: index_of/node_at round trip, m+4 distinct in-range neighbors,
/// and generator involution/inverse consistency (each neighbor lists the
/// vertex back). Sampled, so cheap even for the largest instances.
[[nodiscard]] std::string validate(const HyperButterfly& hb);

}  // namespace hbnet::check
