#include "core/routing.hpp"

#include <algorithm>
#include <unordered_map>

namespace hbnet {

unsigned hb_bfs_distance(const HyperButterfly& hb, HbNode u, HbNode v,
                         const HbFaultSet* faults) {
  if (u == v) return 0;
  if (faults != nullptr &&
      (faults->contains(hb, u) || faults->contains(hb, v))) {
    return kNoPath;
  }
  std::unordered_map<HbIndex, unsigned> dist;
  std::vector<HbNode> frontier{u}, next;
  dist[hb.index_of(u)] = 0;
  unsigned level = 0;
  const HbIndex target = hb.index_of(v);
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const HbNode& x : frontier) {
      for (const HbNode& y : hb.neighbors(x)) {
        HbIndex id = hb.index_of(y);
        if (id == target) return level;
        if (dist.count(id) != 0) continue;
        if (faults != nullptr && faults->contains(hb, y)) continue;
        dist.emplace(id, level);
        next.push_back(y);
      }
    }
    frontier.swap(next);
  }
  return kNoPath;
}

std::optional<std::vector<HbNode>> hb_bfs_path(const HyperButterfly& hb,
                                               HbNode u, HbNode v,
                                               const HbFaultSet* faults) {
  if (faults != nullptr &&
      (faults->contains(hb, u) || faults->contains(hb, v))) {
    return std::nullopt;
  }
  if (u == v) return std::vector<HbNode>{u};
  std::unordered_map<HbIndex, HbIndex> parent;  // child -> parent
  std::vector<HbNode> frontier{u}, next;
  parent[hb.index_of(u)] = hb.index_of(u);
  const HbIndex target = hb.index_of(v);
  bool found = false;
  while (!frontier.empty() && !found) {
    next.clear();
    for (const HbNode& x : frontier) {
      for (const HbNode& y : hb.neighbors(x)) {
        HbIndex id = hb.index_of(y);
        if (parent.count(id) != 0) continue;
        if (faults != nullptr && faults->contains(hb, y)) continue;
        parent[id] = hb.index_of(x);
        if (id == target) {
          found = true;
          break;
        }
        next.push_back(y);
      }
      if (found) break;
    }
    frontier.swap(next);
  }
  if (!found) return std::nullopt;
  std::vector<HbNode> path;
  HbIndex cur = target;
  while (true) {
    path.push_back(hb.node_at(cur));
    HbIndex p = parent.at(cur);
    if (p == cur) break;
    cur = p;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

unsigned hb_eccentricity(const HyperButterfly& hb, HbNode u) {
  std::unordered_map<HbIndex, unsigned> dist;
  std::vector<HbNode> frontier{u}, next;
  dist[hb.index_of(u)] = 0;
  unsigned level = 0;
  while (!frontier.empty()) {
    next.clear();
    for (const HbNode& x : frontier) {
      for (const HbNode& y : hb.neighbors(x)) {
        HbIndex id = hb.index_of(y);
        if (dist.count(id) != 0) continue;
        dist.emplace(id, level + 1);
        next.push_back(y);
      }
    }
    if (!next.empty()) ++level;
    frontier.swap(next);
  }
  return level;
}

unsigned hb_diameter_measured(const HyperButterfly& hb) {
  return hb_eccentricity(hb, HbNode{0, {0, 0}});
}

}  // namespace hbnet
