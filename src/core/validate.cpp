#include "core/validate.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "core/hyper_butterfly.hpp"

namespace hbnet::check {
namespace {

std::string at_node(const char* what, std::uint64_t v) {
  return std::string(what) + " at node " + std::to_string(v);
}

}  // namespace

std::string validate(const HyperButterfly& hb) {
  const unsigned m = hb.cube_dimension();
  const unsigned n = hb.butterfly_dimension();
  const HbIndex nodes = hb.num_nodes();
  if (hb.degree() != m + 4) {
    return "degree() != m+4 (Theorem 1)";
  }
  if (hb.generators().size() != m + 4) {
    return "generator count != m+4 (Theorem 1)";
  }
  if (nodes != (static_cast<HbIndex>(n) << (m + n))) {
    return "num_nodes() != n*2^(m+n) (Theorem 2)";
  }
  if (hb.num_edges() != static_cast<std::uint64_t>(m + 4) * nodes / 2) {
    return "num_edges() != (m+4)*n*2^(m+n-1) (Theorem 2)";
  }
  // Bounded vertex sample: stride chosen so at most ~256 vertices are
  // inspected however large the instance is. Stride 1 covers small
  // instances exhaustively.
  const HbIndex stride = std::max<HbIndex>(1, nodes / 256);
  for (HbIndex id = 0; id < nodes; id += stride) {
    const HbNode v = hb.node_at(id);
    if (!hb.contains(v)) return at_node("node_at produced invalid vertex", id);
    if (hb.index_of(v) != id) {
      return at_node("index_of(node_at(id)) != id", id);
    }
    const std::vector<HbNode> nbrs = hb.neighbors(v);
    if (nbrs.size() != m + 4) {
      return at_node("neighbor count != m+4 (Theorem 1)", id);
    }
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!hb.contains(nbrs[i])) {
        return at_node("neighbor outside the vertex set", id);
      }
      if (nbrs[i] == v) return at_node("self-loop generator image", id);
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (nbrs[i] == nbrs[j]) {
          return at_node("duplicate neighbor (generators not distinct)", id);
        }
      }
      // Undirectedness: every generator's inverse is a generator, so v must
      // appear among each neighbor's neighbors.
      const std::vector<HbNode> back = hb.neighbors(nbrs[i]);
      if (std::find(back.begin(), back.end(), v) == back.end()) {
        return at_node("neighbor does not list the vertex back", id);
      }
    }
  }
  return {};
}

}  // namespace hbnet::check
