// Node-to-set vertex-disjoint paths in HB(m,n).
//
// The one-to-many generalization of Theorem 5 (cf. the authors' companion
// technical report "Node-to-Set Vertex Disjoint Paths in Hypercube
// Networks", Latifi, Ko & Srimani): given a source u and a set S of up to
// m+4 distinct targets (u not in S), find |S| paths from u to each member
// of S that are vertex disjoint except at u. By Menger's theorem the
// (m+4)-connectivity of HB guarantees such a family exists; we compute it
// with unit-capacity max flow from u to a super-sink over S on the
// materialized graph, which is exact and also yields a natural fallback
// certificate when |S| exceeds the connectivity.
#pragma once

#include <vector>

#include "core/hyper_butterfly.hpp"

namespace hbnet {

/// Result of a node-to-set query.
struct NodeToSetResult {
  /// paths[i] runs from u to targets[i] (order preserved); empty family if
  /// infeasible (only possible with duplicate targets or u in S).
  std::vector<std::vector<HbNode>> paths;
  [[nodiscard]] bool ok() const { return !paths.empty(); }
};

/// Computes |S| paths u -> S, pairwise vertex disjoint except at u.
/// Requires 1 <= |S| <= m+4, targets distinct and != u, and the instance
/// small enough to materialize (n*2^(m+n) <= 2^31). Materializes the graph
/// internally; for repeated queries use the overload below.
[[nodiscard]] NodeToSetResult node_to_set_paths(
    const HyperButterfly& hb, HbNode u, const std::vector<HbNode>& targets);

/// Same, against a pre-materialized hb.to_graph().
[[nodiscard]] NodeToSetResult node_to_set_paths_on(
    const HyperButterfly& hb, const Graph& g, HbNode u,
    const std::vector<HbNode>& targets);

}  // namespace hbnet
