#include "core/embeddings.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

namespace hbnet {
namespace {

using Cell = std::pair<std::uint32_t, std::uint32_t>;

/// Two-lane snake of length k across lane pair (r0, r1) along columns
/// 0..k/2-1.
std::vector<Cell> two_row_snake(std::uint32_t r0, std::uint32_t r1,
                                std::uint64_t k) {
  std::vector<Cell> cells;
  cells.reserve(k);
  const std::uint32_t t = static_cast<std::uint32_t>(k / 2);
  for (std::uint32_t c = 0; c < t; ++c) cells.emplace_back(r0, c);
  for (std::uint32_t c = t; c-- > 0;) cells.emplace_back(r1, c);
  return cells;
}

/// Serpentine over P row pairs: pair 0 spans all columns, pairs 1..P-2 span
/// columns 1..C-1, the last pair spans columns 1..t-1, and column 0 is the
/// return spine. Covers k = 2(P-1)C + 2t with t in [2, C].
std::vector<Cell> serpentine(std::uint32_t cols, std::uint32_t pairs,
                             std::uint32_t t) {
  std::vector<Cell> cells;
  // Row 0 rightward over all columns.
  for (std::uint32_t c = 0; c < cols; ++c) cells.emplace_back(0, c);
  // Row 1 leftward down to column 1.
  for (std::uint32_t c = cols - 1; c >= 1; --c) cells.emplace_back(1, c);
  // Middle pairs over columns 1..C-1.
  for (std::uint32_t p = 1; p + 1 < pairs; ++p) {
    std::uint32_t top = 2 * p, bottom = 2 * p + 1;
    for (std::uint32_t c = 1; c < cols; ++c) cells.emplace_back(top, c);
    for (std::uint32_t c = cols - 1; c >= 1; --c) cells.emplace_back(bottom, c);
  }
  // Last pair over columns 1..t-1.
  std::uint32_t top = 2 * (pairs - 1), bottom = top + 1;
  for (std::uint32_t c = 1; c < t; ++c) cells.emplace_back(top, c);
  for (std::uint32_t c = t - 1; c >= 1; --c) cells.emplace_back(bottom, c);
  // Spine: column 0 upward from the bottom row to row 1 (row 0 col 0 was
  // emitted first).
  for (std::uint32_t r = bottom; r >= 1; --r) cells.emplace_back(r, 0);
  return cells;
}

}  // namespace

std::vector<Cell> grid_snake_cycle(std::uint32_t rows, std::uint32_t cols,
                                   std::uint64_t k) {
  if (rows < 2 || rows % 2 != 0 || cols < 2) {
    throw std::invalid_argument("grid_snake_cycle: need even rows >= 2, cols >= 2");
  }
  if (k < 4 || k % 2 != 0 ||
      k > static_cast<std::uint64_t>(rows) * cols) {
    throw std::invalid_argument("grid_snake_cycle: invalid length k");
  }
  if (k <= 2 * cols) return two_row_snake(0, 1, k);
  if (cols == 2) {
    // Transposed two-lane snake down the two columns.
    std::vector<Cell> cells;
    const std::uint32_t t = static_cast<std::uint32_t>(k / 2);
    for (std::uint32_t r = 0; r < t; ++r) cells.emplace_back(r, 0);
    for (std::uint32_t r = t; r-- > 0;) cells.emplace_back(r, 1);
    return cells;
  }
  // k = 2(P-1)C + 2t with t in [2, C] when it exists; otherwise t would be
  // C+1 and we build k-2 (which lands on t = C) plus one bump.
  const std::uint64_t half = k / 2;
  std::uint64_t p1 = (half - 2) / cols;
  std::uint32_t t = static_cast<std::uint32_t>(half - p1 * cols);
  if (t <= cols) {
    const std::uint32_t pairs = static_cast<std::uint32_t>(p1) + 1;
    if (2 * pairs > rows) {
      throw std::logic_error("grid_snake_cycle: internal row overflow");
    }
    return serpentine(cols, pairs, t);
  }
  // Bump case: t == cols + 1. Build the cycle of length k-2 (which lands on
  // t' = cols) and divert the bottom-row step (bottom,2)->(bottom,1) through
  // the free row below it. pairs == 1 means the k-2 cycle is the plain
  // two-row snake.
  const std::uint32_t pairs = static_cast<std::uint32_t>(p1) + 1;
  if (2 * pairs + 1 > rows) {
    throw std::logic_error("grid_snake_cycle: bump row overflow");
  }
  std::vector<Cell> cells = (pairs == 1) ? two_row_snake(0, 1, k - 2)
                                         : serpentine(cols, pairs, cols);
  const std::uint32_t bottom = 2 * pairs - 1;
  std::vector<Cell> out;
  out.reserve(cells.size() + 2);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out.push_back(cells[i]);
    if (cells[i] == Cell{bottom, 2} &&
        cells[(i + 1) % cells.size()] == Cell{bottom, 1}) {
      out.emplace_back(bottom + 1, 2);
      out.emplace_back(bottom + 1, 1);
    }
  }
  if (out.size() != k) {
    throw std::logic_error("grid_snake_cycle: bump insertion failed");
  }
  return out;
}

std::vector<HbNode> hb_even_cycle(const HyperButterfly& hb, std::uint64_t k) {
  if (k < 4 || k % 2 != 0 || k > hb.num_nodes()) {
    throw std::invalid_argument(
        "hb_even_cycle: k must be even in [4, n*2^(m+n)]");
  }
  const unsigned m = hb.cube_dimension();
  const unsigned n = hb.butterfly_dimension();
  const Butterfly& bf = hb.butterfly();
  // Small cycles fit inside one hypercube layer.
  if (k <= (std::uint64_t{1} << m) && m >= 2) {
    std::vector<HbNode> cycle;
    for (CubeWord x : hb.hypercube().even_cycle(k)) {
      cycle.push_back({x, BflyNode{0, 0}});
    }
    return cycle;
  }
  // General: snake inside (Gray cycle rows) x (butterfly Hamiltonian cycle
  // columns). Rows: the full 2^m Gray cycle (even, >= 2); columns: the
  // n*2^n-vertex Hamiltonian butterfly cycle. Row count 2 (m = 1) is fine:
  // the snake never uses row-wrap edges, and rows 0,1 are cube-adjacent.
  const std::uint32_t rows = 1u << m;
  const std::vector<BflyNode> bcycle = bf.cycle(1u << n, 0);  // Hamiltonian
  const std::uint32_t cols = static_cast<std::uint32_t>(bcycle.size());
  std::vector<Cell> cells = grid_snake_cycle(rows, cols, k);
  std::vector<HbNode> cycle;
  cycle.reserve(cells.size());
  for (auto [r, c] : cells) {
    cycle.push_back({Hypercube::gray(r), bcycle[c]});
  }
  return cycle;
}

std::vector<std::vector<HbNode>> hb_torus(const HyperButterfly& hb,
                                          std::uint32_t a, std::uint32_t k,
                                          std::uint32_t k_prime) {
  const unsigned m = hb.cube_dimension();
  if (a < 4 || a % 2 != 0 || a > (1u << m)) {
    throw std::invalid_argument("hb_torus: row cycle length invalid");
  }
  const std::vector<CubeWord> rows = hb.hypercube().even_cycle(a);
  const std::vector<BflyNode> cols = hb.butterfly().cycle(k, k_prime);
  std::vector<std::vector<HbNode>> grid(a,
                                        std::vector<HbNode>(cols.size()));
  for (std::uint32_t r = 0; r < a; ++r) {
    for (std::uint32_t c = 0; c < cols.size(); ++c) {
      grid[r][c] = {rows[r], cols[c]};
    }
  }
  return grid;
}

std::vector<CubeWord> drt_in_hypercube(unsigned k) {
  if (k < 2 || k > 26) {
    throw std::invalid_argument("drt_in_hypercube: k in [2,26]");
  }
  // Indexing per make_double_rooted_tree: [0]=r1, [1]=r2, then left T(k-1)
  // heap, then right T(k-1) heap.
  std::vector<CubeWord> layout{0b00, 0b01, 0b10, 0b11};  // DRT(2) base
  for (unsigned dim = 3; dim <= k; ++dim) {
    const std::uint32_t sub_prev = (1u << (dim - 2)) - 1;  // T(dim-2) size
    const std::uint32_t sub_new = (1u << (dim - 1)) - 1;   // T(dim-1) size
    const CubeWord top = CubeWord{1} << (dim - 1);
    const CubeWord p1 = layout[0], p2 = layout[1];
    const CubeWord q1 = layout[2], q2 = layout[2 + sub_prev];
    // psi: automorphism of H_{dim-1} fixing p2 and swapping p1 <-> q2.
    const CubeWord ei = p1 ^ p2, ej = q2 ^ p2;  // single-bit masks
    auto psi = [p2, ei, ej](CubeWord x) -> CubeWord {
      CubeWord y = x ^ p2;
      CubeWord bit_i = (y & ei) ? 1 : 0;
      CubeWord bit_j = (y & ej) ? 1 : 0;
      y &= ~(ei | ej);
      if (bit_i) y |= ej;
      if (bit_j) y |= ei;
      return y ^ p2;
    };
    auto mirror = [&](CubeWord x) { return top | psi(x); };

    std::vector<CubeWord> next(2u << (dim - 1));
    next[0] = p2;          // new r1 = old s2
    next[1] = top | p2;    // new r2 = mirrored old s2
    // Heap copy helper: copy a full heap of `size` nodes from src (with
    // transform) into dst_base; both sides use plain 0-based heap indexing.
    auto copy_heap = [](std::vector<CubeWord>& dst, std::uint32_t dst_base,
                        std::uint32_t dst_root,
                        const std::vector<CubeWord>& src,
                        std::uint32_t src_base, std::uint32_t size,
                        auto&& transform, auto&& self) -> void {
      // Copies src heap node src_i -> dst heap node dst_i recursively.
      struct Frame {
        std::uint32_t dst_i, src_i;
      };
      std::vector<Frame> stack{{dst_root, 0}};
      while (!stack.empty()) {
        auto [di, si] = stack.back();
        stack.pop_back();
        if (si >= size) continue;
        dst[dst_base + di] = transform(src[src_base + si]);
        stack.push_back({2 * di + 1, 2 * si + 1});
        stack.push_back({2 * di + 2, 2 * si + 2});
      }
      (void)self;
    };
    auto identity = [](CubeWord x) { return x; };

    // New left T(dim-1) heap at base 2: root = p1, left child subtree =
    // old left subtree (identity), right child subtree = mirror(old right).
    next[2 + 0] = p1;
    copy_heap(next, 2, 1, layout, 2, sub_prev, identity, nullptr);
    copy_heap(next, 2, 2, layout, 2 + sub_prev, sub_prev, mirror, nullptr);
    // New right T(dim-1) heap at base 2 + sub_new: root = mirror(p1),
    // left child subtree = mirror(old left), right = old right (identity).
    next[2 + sub_new + 0] = mirror(p1);
    copy_heap(next, 2 + sub_new, 1, layout, 2, sub_prev, mirror, nullptr);
    copy_heap(next, 2 + sub_new, 2, layout, 2 + sub_prev, sub_prev, identity,
              nullptr);
    layout = std::move(next);
  }
  return layout;
}

std::vector<CubeWord> tree_in_hypercube(unsigned h) {
  if (h < 1 || h > 25) {
    throw std::invalid_argument("tree_in_hypercube: h in [1,25]");
  }
  if (h == 1) return {0};  // single vertex
  std::vector<CubeWord> drt = drt_in_hypercube(h + 1);
  const std::uint32_t sub = (1u << h) - 1;
  return {drt.begin() + 2, drt.begin() + 2 + sub};  // left T(h) heap
}

std::vector<BflyNode> tree_in_butterfly(const Butterfly& bf, unsigned h,
                                        std::uint32_t root_word) {
  if (h < 1 || h > bf.dimension()) {
    throw std::invalid_argument("tree_in_butterfly: need 1 <= h <= n");
  }
  const std::uint32_t size = (1u << h) - 1;
  std::vector<BflyNode> out(size);
  for (std::uint32_t t = 0; t < size; ++t) {
    const std::uint32_t x = t + 1;  // 1-based heap id: leading 1 + path bits
    const unsigned depth = 31u - static_cast<unsigned>(std::countl_zero(x));
    std::uint32_t word = root_word;
    for (unsigned j = 0; j < depth; ++j) {
      // Path bit for step j (root-to-node) is bit (depth-1-j) of x.
      if ((x >> (depth - 1 - j)) & 1u) word ^= 1u << j;
    }
    out[t] = {word, depth};
  }
  return out;
}

std::vector<HbNode> tree_in_hb(const HyperButterfly& hb) {
  const unsigned m = hb.cube_dimension();
  const unsigned n = hb.butterfly_dimension();
  const unsigned a = m - 1;  // cube tree T(m-1) in H_m
  const unsigned h = a + n - 1;  // resulting tree T(m+n-2)
  if (m < 2) {
    // With m = 1 there is no usable cube tree; fall back to the pure
    // butterfly tree T(n) lifted into cube layer 0.
    std::vector<HbNode> out;
    for (BflyNode b : tree_in_butterfly(hb.butterfly(), n)) {
      out.push_back({0, b});
    }
    return out;
  }
  const std::vector<CubeWord> ctree = tree_in_hypercube(a);
  const std::vector<BflyNode> btree = tree_in_butterfly(hb.butterfly(), n);
  const std::uint32_t size = (1u << h) - 1;
  std::vector<HbNode> out(size);
  for (std::uint32_t t = 0; t < size; ++t) {
    const std::uint32_t x = t + 1;
    const unsigned depth = 31u - static_cast<unsigned>(std::countl_zero(x));
    // First min(depth, a-1) steps walk the cube tree; the rest walk the
    // butterfly tree. Reconstruct the two heap indices from the path bits.
    std::uint32_t cube_heap = 0, bfly_heap = 0;
    for (unsigned j = 0; j < depth; ++j) {
      const std::uint32_t bit = (x >> (depth - 1 - j)) & 1u;
      if (j < a - 1) {
        cube_heap = 2 * cube_heap + 1 + bit;
      } else {
        bfly_heap = 2 * bfly_heap + 1 + bit;
      }
    }
    out[t] = {ctree[cube_heap], btree[bfly_heap]};
  }
  return out;
}

std::vector<HbNode> mesh_of_trees_in_hb(const HyperButterfly& hb, unsigned p,
                                        unsigned q) {
  const unsigned m = hb.cube_dimension();
  const unsigned n = hb.butterfly_dimension();
  if (p < 1 || p > m - 2 || q < 1 || q > n - 1) {
    throw std::invalid_argument(
        "mesh_of_trees_in_hb: need 1 <= p <= m-2 and 1 <= q <= n-1");
  }
  // Lemma 4 route: MT(2^p, 2^q) subset of T(p+1) x T(q+1); then
  // T(p+1) subset of H_{p+2} subset of H_m and T(q+1) subset of B_n.
  const std::vector<CubeWord> ctree = tree_in_hypercube(p + 1);
  const std::vector<BflyNode> btree = tree_in_butterfly(hb.butterfly(), q + 1);
  const std::uint32_t rows = 1u << p, cols = 1u << q;
  const std::uint32_t c_leaf_base = (1u << p) - 1;   // heap leaf offset
  const std::uint32_t b_leaf_base = (1u << q) - 1;
  const std::uint32_t total =
      rows * cols + rows * (cols - 1) + cols * (rows - 1);
  std::vector<HbNode> out(total);
  std::uint32_t idx = 0;
  for (std::uint32_t i = 0; i < rows; ++i) {
    for (std::uint32_t j = 0; j < cols; ++j) {
      out[idx++] = {ctree[c_leaf_base + i], btree[b_leaf_base + j]};
    }
  }
  for (std::uint32_t i = 0; i < rows; ++i) {
    for (std::uint32_t t = 0; t < cols - 1; ++t) {
      out[idx++] = {ctree[c_leaf_base + i], btree[t]};
    }
  }
  for (std::uint32_t j = 0; j < cols; ++j) {
    for (std::uint32_t t = 0; t < rows - 1; ++t) {
      out[idx++] = {ctree[t], btree[b_leaf_base + j]};
    }
  }
  return out;
}

}  // namespace hbnet
