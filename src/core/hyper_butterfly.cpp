#include "core/hyper_butterfly.hpp"

#include <bit>
#include <stdexcept>
#include <string>

#include "check/check.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"

namespace hbnet {

HyperButterfly::HyperButterfly(unsigned m, unsigned n)
    : m_(m), n_(n), cube_(m == 0 ? 1 : m), bfly_(n) {
  if (m < 1 || n < 3 || m + n > 26) {
    throw std::invalid_argument(
        "HyperButterfly: need m >= 1, n >= 3, m + n <= 26 (got m=" +
        std::to_string(m) + ", n=" + std::to_string(n) + ")");
  }
  // Theorem 1-2 structural invariants, verified on a bounded vertex sample
  // (checked builds only; see core/validate.hpp).
  HBNET_DCHECK_OK(check::validate(*this));
}

std::vector<HbGen> HyperButterfly::generators() const {
  std::vector<HbGen> gens;
  gens.reserve(m_ + 4);
  for (unsigned i = 0; i < m_; ++i) gens.push_back(HbGen::cube(i));
  for (BflyGen g :
       {BflyGen::kG, BflyGen::kF, BflyGen::kGInv, BflyGen::kFInv}) {
    gens.push_back(HbGen::butterfly(g));
  }
  return gens;
}

HbNode HyperButterfly::apply(HbNode v, const HbGen& gen) const {
  if (gen.is_cube) {
    return {v.cube ^ (CubeWord{1} << gen.cube_bit), v.bfly};
  }
  return {v.cube, bfly_.apply(v.bfly, gen.bfly_gen)};
}

std::vector<HbNode> HyperButterfly::neighbors(HbNode v) const {
  std::vector<HbNode> out;
  out.reserve(m_ + 4);
  for (unsigned i = 0; i < m_; ++i) {
    out.push_back({v.cube ^ (CubeWord{1} << i), v.bfly});
  }
  for (BflyNode b : bfly_.neighbors(v.bfly)) {
    out.push_back({v.cube, b});
  }
  return out;
}

unsigned HyperButterfly::distance(HbNode u, HbNode v) const {
  return Hypercube::distance(u.cube, v.cube) + bfly_.distance(u.bfly, v.bfly);
}

std::vector<HbNode> HyperButterfly::route(HbNode u, HbNode v) const {
  std::vector<HbNode> path{u};
  // Hypercube phase (Section 3, step 1): correct cube bits LSB-first.
  for (CubeWord x : cube_.route(u.cube, v.cube)) {
    if (x != path.back().cube) path.push_back({x, u.bfly});
  }
  // Butterfly phase (step 2).
  for (BflyNode b : bfly_.route_nodes(u.bfly, v.bfly)) {
    if (!(b == path.back().bfly)) path.push_back({v.cube, b});
  }
  return path;
}

std::vector<HbGen> HyperButterfly::route_generators(HbNode u, HbNode v) const {
  std::vector<HbGen> gens;
  CubeWord diff = u.cube ^ v.cube;
  while (diff != 0) {
    unsigned bit = static_cast<unsigned>(std::countr_zero(diff));
    gens.push_back(HbGen::cube(bit));
    diff &= diff - 1;
  }
  for (BflyGen g : bfly_.route(u.bfly, v.bfly)) {
    gens.push_back(HbGen::butterfly(g));
  }
  return gens;
}

CayleySpec HyperButterfly::cayley_spec() const {
  if (num_nodes() > (HbIndex{1} << 31)) {
    throw std::length_error(
        "HyperButterfly::cayley_spec: instance too large to materialize");
  }
  CayleySpec spec;
  spec.num_nodes = static_cast<NodeId>(num_nodes());
  for (unsigned i = 0; i < m_; ++i) {
    spec.generators.push_back(
        {"h" + std::to_string(i), [this, i](NodeId id) -> NodeId {
           return static_cast<NodeId>(
               index_of(apply(node_at(id), HbGen::cube(i))));
         }});
  }
  for (BflyGen g :
       {BflyGen::kG, BflyGen::kF, BflyGen::kGInv, BflyGen::kFInv}) {
    spec.generators.push_back(
        {to_string(g), [this, g](NodeId id) -> NodeId {
           return static_cast<NodeId>(
               index_of(apply(node_at(id), HbGen::butterfly(g))));
         }});
  }
  return spec;
}

Graph HyperButterfly::to_graph() const { return materialize(cayley_spec()); }

const Graph& HyperButterfly::butterfly_graph() const {
  if (!bfly_graph_ready_) {
    bfly_graph_ = bfly_.to_graph();
    bfly_graph_ready_ = true;
  }
  return bfly_graph_;
}

}  // namespace hbnet
