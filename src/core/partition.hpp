// Partitionability and scalability of HB(m,n) (Section 1's "scalable" and
// Remark 5's decompositions).
//
// Three decompositions are exposed:
//  * cube-split: fixing k of the m hypercube bits splits HB(m,n) into 2^k
//    vertex-disjoint copies of HB(m-k,n) -- this is what makes the family
//    incrementally scalable (double the machine by adding one cube
//    dimension, keep the butterfly/router design unchanged);
//  * butterfly layers: the 2^m disjoint copies of B_n (same cube label);
//  * hypercube layers: the n*2^n disjoint copies of H_m (same butterfly
//    label) -- both from Remark 5.
//
// A buddy-style allocator hands out sub-HB(m',n) partitions to jobs, the
// standard way such machines were space-shared.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/hyper_butterfly.hpp"

namespace hbnet {

/// One sub-network of HB(m,n) obtained by fixing the top m-m' cube bits to
/// `prefix`: an isomorphic copy of HB(m', n).
struct SubHyperButterfly {
  unsigned sub_m = 0;        // cube dimension of the copy
  CubeWord prefix = 0;       // fixed top bits (value of bits sub_m..m-1)
  /// True iff `v` (of the parent network) belongs to this copy.
  [[nodiscard]] bool contains_cube(CubeWord h) const {
    return (h >> sub_m) == prefix;
  }
  /// Maps a vertex of the abstract HB(sub_m, n) into the parent network.
  [[nodiscard]] HbNode lift(HbNode v) const {
    return {static_cast<CubeWord>((prefix << sub_m) | v.cube), v.bfly};
  }
  /// Inverse of lift (caller must check contains_cube first).
  [[nodiscard]] HbNode lower(HbNode v) const {
    return {static_cast<CubeWord>(v.cube & ((CubeWord{1} << sub_m) - 1)),
            v.bfly};
  }
};

/// All 2^(m-sub_m) disjoint HB(sub_m, n) copies of `hb`.
[[nodiscard]] std::vector<SubHyperButterfly> cube_split(
    const HyperButterfly& hb, unsigned sub_m);

/// Verifies that a cube-split copy is isomorphic to HB(sub_m, n): checks
/// that lift() maps every edge of the abstract copy onto an edge of the
/// parent and that copies are vertex disjoint. Used by tests; cheap.
[[nodiscard]] bool verify_cube_split(const HyperButterfly& hb,
                                     unsigned sub_m);

/// Buddy allocator over the cube dimension: grants sub-HB(m',n) partitions
/// (i.e. 2^(m') cube layers each) and coalesces frees, exactly like a
/// buddy memory allocator on the 2^m cube-prefix space.
class PartitionAllocator {
 public:
  explicit PartitionAllocator(const HyperButterfly& hb);

  /// Allocates one HB(sub_m, n) partition; nullopt when fragmented/full.
  [[nodiscard]] std::optional<SubHyperButterfly> allocate(unsigned sub_m);

  /// Releases a previously allocated partition. Throws on double free or
  /// foreign partition.
  void release(const SubHyperButterfly& part);

  /// Cube layers (out of 2^m) currently allocated.
  [[nodiscard]] std::uint64_t layers_in_use() const { return in_use_; }
  /// Largest sub_m that allocate() could currently satisfy (-1 if none,
  /// returned as nullopt).
  [[nodiscard]] std::optional<unsigned> largest_free() const;

 private:
  // free_[k] = prefixes of free blocks of size 2^k cube layers (candidate
  // HB(k, n) partitions); granted_ = blocks currently handed out, so that
  // release() can reject double frees and never-granted blocks outright.
  unsigned m_;
  std::vector<std::vector<CubeWord>> free_;
  std::vector<std::vector<CubeWord>> granted_;
  std::uint64_t in_use_ = 0;
};

}  // namespace hbnet
