// Theorem 5: m+4 internally vertex-disjoint paths between any two vertices
// of HB(m,n) -- the constructive heart of the paper's "optimally fault
// tolerant" claim (Corollary 1), and the basis of fault-tolerant routing
// (Remark 10).
//
// The paper's proof sketch has three cases; its Case 3 glosses over corner
// collisions (e.g. when h and h' are cube-adjacent the butterfly segments of
// cube-type and butterfly-type paths land in the same layer). The
// construction below is a tightened version with a full disjointness proof:
//
// Let P_1..P_m be the classical internally disjoint h->h' hypercube paths
// (rotation + detour family; their first internal vertices are the m
// distinct neighbors of h) and Q_1..Q_4 internally disjoint b->b' butterfly
// paths (unit-capacity max flow; when b ~ b' the direct edge is forced to be
// one of them). Designate a "spine" cube path P_{i0} (the direct edge when
// it exists, so every other P_i has internal vertices) and a spine butterfly
// path Q_{j0} (likewise). The m+4 paths of Case 3 are
//
//   C_i   (i != i0): u -> (p_i1, b) -> [Q_{j0} in cube layer p_i1]
//                      -> (p_i1, b') -> [P_i suffix in butterfly layer b'] -> v
//   C_i0           : u -> [Q_{j0} in cube layer h] -> (h, b')
//                      -> [P_{i0} suffix in butterfly layer b'] -> v
//   B_j   (j != j0): u -> (h, q_j1) -> [P_{i0} in butterfly layer q_j1]
//                      -> (h', q_j1) -> [Q_j suffix in cube layer h'] -> v
//   B_j0           : u -> [P_{i0} in butterfly layer b] -> (h', b)
//                      -> [Q_{j0} suffix in cube layer h'] -> v
//
// where p_i1 / q_j1 are first internal vertices and "suffix" drops the first
// vertex. Sharing the spines P_{i0} / Q_{j0} across different layers is what
// makes the cross collisions impossible: a cube-layer segment (x fixed) and
// a butterfly-layer segment (y fixed) can only meet at the single vertex
// (x, y), and in every pairing either x is not on the relevant cube path or
// y is not on the relevant butterfly path. Cases 1 and 2 (one coordinate
// equal) follow the paper directly. All families are revalidated in tests
// via graph/disjoint_paths.hpp on exhaustive small sweeps.

#include <atomic>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "check/check.hpp"
#include "core/validate.hpp"
#include "core/hyper_butterfly.hpp"
#include "graph/disjoint_paths.hpp"
#include "par/pool.hpp"

namespace hbnet {
namespace {

using HbPath = std::vector<HbNode>;

/// The 4 internally disjoint b->b' paths in B_n, as butterfly vertex
/// sequences. Uses unit-capacity max flow on the materialized layer; when
/// b ~ b' the direct edge becomes path 0 and the remaining three avoid it.
std::vector<std::vector<BflyNode>> butterfly_disjoint_paths(
    const Butterfly& bf, const Graph& layer, BflyNode b, BflyNode b2) {
  const NodeId s = bf.index_of(b), t = bf.index_of(b2);
  std::vector<Path> raw;
  if (layer.has_edge(s, t)) {
    raw.push_back({s, t});
    for (Path& p : flow_disjoint_paths(layer, s, t, {s, t})) {
      raw.push_back(std::move(p));
    }
  } else {
    raw = flow_disjoint_paths(layer, s, t);
  }
  if (raw.size() != 4) {
    throw std::logic_error(
        "butterfly_disjoint_paths: expected exactly 4 disjoint paths, got " +
        std::to_string(raw.size()));
  }
  std::vector<std::vector<BflyNode>> out;
  out.reserve(4);
  for (const Path& p : raw) {
    std::vector<BflyNode> nodes;
    nodes.reserve(p.size());
    for (NodeId id : p) nodes.push_back(bf.node_at(id));
    out.push_back(std::move(nodes));
  }
  return out;
}

}  // namespace

std::vector<std::vector<HbNode>> HyperButterfly::disjoint_paths(
    HbNode u, HbNode v) const {
  if (u == v) {
    throw std::invalid_argument("HyperButterfly::disjoint_paths: u == v");
  }
  const CubeWord h = u.cube, h2 = v.cube;
  const BflyNode b = u.bfly, b2 = v.bfly;
  std::vector<HbPath> paths;
  paths.reserve(m_ + 4);

  if (b == b2) {
    // Case 1: same butterfly part. m cube paths inside layer b, plus 4
    // paths detouring through the butterfly neighbors of b.
    for (const auto& p : cube_.disjoint_paths(h, h2)) {
      HbPath lifted;
      lifted.reserve(p.size());
      for (CubeWord x : p) lifted.push_back({x, b});
      paths.push_back(std::move(lifted));
    }
    const std::vector<CubeWord> cube_route = cube_.route(h, h2);
    for (BflyNode nb : bfly_.neighbors(b)) {
      HbPath p{u};
      for (CubeWord x : cube_route) p.push_back({x, nb});
      p.push_back(v);
      paths.push_back(std::move(p));
    }
    return paths;
  }

  if (h == h2) {
    // Case 2: same hypercube part. m paths detouring through the cube
    // neighbors of h, plus the 4 butterfly-disjoint paths inside layer h.
    const std::vector<BflyNode> bfly_route = bfly_.route_nodes(b, b2);
    for (unsigned i = 0; i < m_; ++i) {
      CubeWord hn = h ^ (CubeWord{1} << i);
      HbPath p{u};
      for (BflyNode z : bfly_route) p.push_back({hn, z});
      p.push_back(v);
      paths.push_back(std::move(p));
    }
    for (const auto& q : butterfly_disjoint_paths(bfly_, butterfly_graph(), b,
                                                  b2)) {
      HbPath lifted;
      lifted.reserve(q.size());
      for (BflyNode z : q) lifted.push_back({h, z});
      paths.push_back(std::move(lifted));
    }
    return paths;
  }

  // Case 3: both parts differ.
  const auto P = cube_.disjoint_paths(h, h2);
  const auto Q = butterfly_disjoint_paths(bfly_, butterfly_graph(), b, b2);
  // Spines: the direct edge (length-1 path) when present, else index 0.
  std::size_t i0 = 0, j0 = 0;
  for (std::size_t i = 0; i < P.size(); ++i) {
    if (P[i].size() == 2) i0 = i;
  }
  for (std::size_t j = 0; j < Q.size(); ++j) {
    if (Q[j].size() == 2) j0 = j;
  }

  for (std::size_t i = 0; i < P.size(); ++i) {
    HbPath p{u};
    if (i == i0) {
      for (std::size_t z = 1; z < Q[j0].size(); ++z) p.push_back({h, Q[j0][z]});
      for (std::size_t x = 1; x < P[i0].size(); ++x) p.push_back({P[i0][x], b2});
    } else {
      const CubeWord pi1 = P[i][1];
      p.push_back({pi1, b});
      for (std::size_t z = 1; z < Q[j0].size(); ++z) {
        p.push_back({pi1, Q[j0][z]});
      }
      for (std::size_t x = 2; x < P[i].size(); ++x) p.push_back({P[i][x], b2});
    }
    paths.push_back(std::move(p));
  }
  for (std::size_t j = 0; j < Q.size(); ++j) {
    HbPath p{u};
    if (j == j0) {
      for (std::size_t x = 1; x < P[i0].size(); ++x) p.push_back({P[i0][x], b});
      for (std::size_t z = 1; z < Q[j0].size(); ++z) {
        p.push_back({h2, Q[j0][z]});
      }
    } else {
      const BflyNode qj1 = Q[j][1];
      p.push_back({h, qj1});
      for (std::size_t x = 1; x < P[i0].size(); ++x) p.push_back({P[i0][x], qj1});
      for (std::size_t z = 2; z < Q[j].size(); ++z) p.push_back({h2, Q[j][z]});
    }
    paths.push_back(std::move(p));
  }
  return paths;
}

DisjointPathsAudit audit_disjoint_paths(const HyperButterfly& hb,
                                        unsigned threads) {
  HBNET_DCHECK_OK(check::validate(hb));
  const Graph g = hb.to_graph();
  // Materialize the lazy butterfly layer before fanning out: it is the only
  // mutable state disjoint_paths() touches, and initializing it here
  // happens-before every pool worker starts.
  (void)hb.butterfly_graph();
  const std::uint64_t n = hb.num_nodes();
  const std::uint64_t total = n * (n - 1);  // ordered pairs, k -> (u, v)
  const std::uint32_t expected = hb.degree();
  std::atomic<std::uint64_t> first_bad{total};  // lowest failing pair index
  std::mutex mu;
  std::vector<std::pair<std::uint64_t, std::string>> failures;
  par::ThreadPool pool(threads);
  pool.parallel_for(total, [&](std::uint64_t k) {
    // Cheap early exit once some lower pair already failed; harmless for
    // determinism because only the minimum failure index is reported.
    if (k > first_bad.load(std::memory_order_relaxed)) return;
    const std::uint64_t u = k / (n - 1);
    std::uint64_t v = k % (n - 1);
    if (v >= u) ++v;
    std::string error;
    try {
      const auto family =
          hb.disjoint_paths(hb.node_at(u), hb.node_at(v));
      if (family.size() != expected) {
        std::ostringstream os;
        os << "expected " << expected << " paths, got " << family.size();
        error = os.str();
      } else {
        std::vector<Path> paths;
        paths.reserve(family.size());
        for (const auto& p : family) {
          Path ids;
          ids.reserve(p.size());
          for (const HbNode& w : p) ids.push_back(
              static_cast<NodeId>(hb.index_of(w)));
          paths.push_back(std::move(ids));
        }
        PathFamilyCheck check = check_disjoint_paths(
            g, paths, static_cast<NodeId>(u), static_cast<NodeId>(v));
        if (!check.ok) error = check.error;
      }
    } catch (const std::exception& e) {
      error = e.what();
    }
    if (!error.empty()) {
      std::uint64_t seen = first_bad.load(std::memory_order_relaxed);
      while (k < seen && !first_bad.compare_exchange_weak(
                             seen, k, std::memory_order_relaxed)) {
      }
      std::ostringstream os;
      os << "pair (" << u << " -> " << v << "): " << error;
      std::lock_guard<std::mutex> lock(mu);
      // Completion order varies run to run, but the reported failure is
      // selected below by the minimal pair index k (first_bad), which is
      // order-independent.
      failures.emplace_back(k, os.str());  // hblint: allow(parallel-capture)
    }
  });
  DisjointPathsAudit audit;
  audit.pairs_checked = total;
  const std::uint64_t bad = first_bad.load();
  if (bad != total) {
    audit.ok = false;
    for (const auto& [k, msg] : failures) {
      if (k == bad) audit.error = msg;
    }
  }
  return audit;
}

}  // namespace hbnet
