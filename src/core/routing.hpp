// Implicit-graph search over HB(m,n): BFS distance / eccentricity without
// materializing the (potentially huge) graph, used to validate the routing
// algorithm and the diameter formula, and as the reference for fault-tolerant
// routing.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/hyper_butterfly.hpp"

namespace hbnet {

/// A set of faulty vertices of an HB instance.
class HbFaultSet {
 public:
  void add(const HyperButterfly& hb, HbNode v) { faulty_.insert(hb.index_of(v)); }
  [[nodiscard]] bool contains(const HyperButterfly& hb, HbNode v) const {
    return faulty_.count(hb.index_of(v)) != 0;
  }
  [[nodiscard]] std::size_t size() const { return faulty_.size(); }
  void clear() { faulty_.clear(); }

 private:
  std::unordered_set<HbIndex> faulty_;
};

/// BFS distance on the implicit HB graph (exact reference for
/// HyperButterfly::distance). kNoPath when disconnected by faults.
inline constexpr unsigned kNoPath = ~0u;

[[nodiscard]] unsigned hb_bfs_distance(const HyperButterfly& hb, HbNode u,
                                       HbNode v,
                                       const HbFaultSet* faults = nullptr);

/// One shortest path avoiding `faults`; std::nullopt when disconnected.
[[nodiscard]] std::optional<std::vector<HbNode>> hb_bfs_path(
    const HyperButterfly& hb, HbNode u, HbNode v,
    const HbFaultSet* faults = nullptr);

/// Eccentricity of `u` on the implicit graph (full BFS sweep).
[[nodiscard]] unsigned hb_eccentricity(const HyperButterfly& hb, HbNode u);

/// Diameter via vertex transitivity: eccentricity of the identity.
[[nodiscard]] unsigned hb_diameter_measured(const HyperButterfly& hb);

}  // namespace hbnet
