#include "core/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace hbnet {

std::vector<SubHyperButterfly> cube_split(const HyperButterfly& hb,
                                          unsigned sub_m) {
  if (sub_m < 1 || sub_m > hb.cube_dimension()) {
    throw std::invalid_argument("cube_split: need 1 <= sub_m <= m");
  }
  const unsigned k = hb.cube_dimension() - sub_m;
  std::vector<SubHyperButterfly> parts;
  parts.reserve(std::size_t{1} << k);
  for (CubeWord prefix = 0; prefix < (CubeWord{1} << k); ++prefix) {
    parts.push_back({sub_m, prefix});
  }
  return parts;
}

bool verify_cube_split(const HyperButterfly& hb, unsigned sub_m) {
  const auto parts = cube_split(hb, sub_m);
  HyperButterfly sub(sub_m, hb.butterfly_dimension());
  // Edge preservation: every generator image in the abstract copy lifts to
  // a generator image in the parent with the same prefix.
  for (const SubHyperButterfly& part : parts) {
    for (HbIndex id = 0; id < sub.num_nodes(); id += 7) {  // strided sample
      HbNode v = sub.node_at(id);
      HbNode lifted = part.lift(v);
      if (!part.contains_cube(lifted.cube)) return false;
      if (!(part.lower(lifted) == v)) return false;
      auto sub_nbrs = sub.neighbors(v);
      for (const HbNode& w : sub_nbrs) {
        // lift(w) must be a neighbor of lift(v) in the parent.
        HbNode lw = part.lift(w);
        bool found = false;
        for (const HbNode& pn : hb.neighbors(lifted)) {
          if (pn == lw) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
    }
  }
  // Vertex disjointness is structural: distinct prefixes.
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i].prefix == parts[i + 1].prefix) return false;
  }
  return true;
}

PartitionAllocator::PartitionAllocator(const HyperButterfly& hb)
    : m_(hb.cube_dimension()), free_(m_ + 1), granted_(m_ + 1) {
  free_[m_].push_back(0);  // one block: the whole machine
}

std::optional<SubHyperButterfly> PartitionAllocator::allocate(unsigned sub_m) {
  if (sub_m > m_) return std::nullopt;
  // Find the smallest free block of size >= sub_m, splitting down.
  unsigned k = sub_m;
  while (k <= m_ && free_[k].empty()) ++k;
  if (k > m_) return std::nullopt;
  CubeWord prefix = free_[k].back();
  free_[k].pop_back();
  while (k > sub_m) {
    --k;
    // Split: block `prefix` of order k+1 becomes buddies 2*prefix and
    // 2*prefix+1 of order k; keep the high buddy free.
    prefix = static_cast<CubeWord>(prefix << 1);
    free_[k].push_back(prefix | 1);
  }
  in_use_ += std::uint64_t{1} << sub_m;
  granted_[sub_m].push_back(prefix);
  return SubHyperButterfly{sub_m, prefix};
}

void PartitionAllocator::release(const SubHyperButterfly& part) {
  if (part.sub_m > m_) {
    throw std::invalid_argument("PartitionAllocator::release: foreign block");
  }
  unsigned k = part.sub_m;
  CubeWord prefix = part.prefix;
  if (prefix >= (CubeWord{1} << (m_ - k))) {
    throw std::invalid_argument("PartitionAllocator::release: bad prefix");
  }
  // The block must be exactly one we granted and have not released yet;
  // this rejects double frees AND never-granted (e.g. parent-of-granted)
  // blocks, which the free-list scan alone would let through.
  auto it = std::find(granted_[k].begin(), granted_[k].end(), prefix);
  if (it == granted_[k].end()) {
    throw std::invalid_argument(
        "PartitionAllocator::release: block was not granted (double free or "
        "foreign block)");
  }
  granted_[k].erase(it);
  in_use_ -= std::uint64_t{1} << k;
  // Coalesce with the buddy while possible.
  while (k < m_) {
    CubeWord buddy = prefix ^ 1;
    auto it = std::find(free_[k].begin(), free_[k].end(), buddy);
    if (it == free_[k].end()) break;
    free_[k].erase(it);
    prefix >>= 1;
    ++k;
  }
  free_[k].push_back(prefix);
}

std::optional<unsigned> PartitionAllocator::largest_free() const {
  for (unsigned k = m_ + 1; k-- > 0;) {
    if (!free_[k].empty()) return k;
  }
  return std::nullopt;
}

}  // namespace hbnet
