#include "core/node_to_set.hpp"

#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "graph/maxflow.hpp"

namespace hbnet {

NodeToSetResult node_to_set_paths_on(const HyperButterfly& hb, const Graph& g,
                                     HbNode u,
                                     const std::vector<HbNode>& targets) {
  NodeToSetResult result;
  if (targets.empty() || targets.size() > hb.degree()) {
    throw std::invalid_argument("node_to_set_paths: need 1 <= |S| <= m+4");
  }
  std::unordered_set<HbIndex> target_set;
  for (const HbNode& t : targets) {
    if (t == u || !target_set.insert(hb.index_of(t)).second) {
      return result;  // duplicate target or u in S: infeasible as specified
    }
  }
  const NodeId n = g.num_nodes();
  const NodeId src = static_cast<NodeId>(hb.index_of(u));

  // Vertex-split network plus a super sink 2n. Every vertex except the
  // source has unit capacity -- including the targets, whose single unit
  // must feed their sink arc, so no flow can pass *through* a target and
  // the decomposition is vertex disjoint everywhere except at u.
  Dinic dinic(2 * n + 1);
  constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max() / 2;
  const std::uint32_t super_sink = 2 * n;
  for (NodeId v = 0; v < n; ++v) {
    dinic.add_arc(2 * v, 2 * v + 1, v == src ? kInf : 1);
  }
  std::vector<std::vector<std::uint32_t>> out_arcs(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b : g.neighbors(a)) {
      out_arcs[a].push_back(dinic.add_arc(2 * a + 1, 2 * b, 1));
    }
  }
  // Add sink arcs in the caller's target order, not target_set's hash
  // order: arc insertion order steers which flow decomposition Dinic finds,
  // so iterating the hash set here would make the returned paths depend on
  // the standard library's hashing.
  for (const HbNode& t : targets) {
    dinic.add_arc(2 * static_cast<NodeId>(hb.index_of(t)) + 1, super_sink, 1);
  }
  std::int64_t want = static_cast<std::int64_t>(targets.size());
  std::int64_t flow = dinic.max_flow(2 * src + 1, super_sink, want);
  if (flow < want) return result;  // cannot happen for valid inputs (Menger)

  // Decompose: walk saturated graph arcs from u; a walk ends on reaching a
  // target (each target's only unit of flow goes to the super sink, so it
  // has no saturated graph out-arc).
  std::vector<std::vector<std::uint32_t>> flow_out(n);
  for (NodeId a = 0; a < n; ++a) {
    for (std::uint32_t arc : out_arcs[a]) {
      if (dinic.flow_on(arc) > 0) flow_out[a].push_back(arc);
    }
  }
  std::vector<std::vector<HbNode>> found;
  for (std::int64_t k = 0; k < flow; ++k) {
    std::vector<HbNode> path{u};
    NodeId cur = src;
    while (target_set.count(cur) == 0) {
      std::uint32_t arc = flow_out[cur].back();
      flow_out[cur].pop_back();
      cur = dinic.arc_to(arc) / 2;
      path.push_back(hb.node_at(cur));
    }
    found.push_back(std::move(path));
  }
  // Order results to match `targets`.
  result.paths.resize(targets.size());
  for (auto& p : found) {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (p.back() == targets[i]) {
        result.paths[i] = std::move(p);
        break;
      }
    }
  }
  return result;
}

NodeToSetResult node_to_set_paths(const HyperButterfly& hb, HbNode u,
                                  const std::vector<HbNode>& targets) {
  return node_to_set_paths_on(hb, hb.to_graph(), u, targets);
}

}  // namespace hbnet
