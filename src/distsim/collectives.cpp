#include "distsim/collectives.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "core/routing.hpp"
#include "graph/bfs.hpp"

namespace hbnet {

unsigned all_port_broadcast_rounds(const HyperButterfly& hb, HbNode source) {
  return hb_eccentricity(hb, source);
}

GossipResult hb_gossip(const HyperButterfly& hb) {
  Graph g = hb.to_graph();
  const NodeId n = g.num_nodes();
  std::vector<std::unordered_set<std::int64_t>> known(n);
  const unsigned diameter_bound =
      hb.cube_dimension() + 3 * hb.butterfly_dimension() / 2;

  Protocol p;
  p.on_init = [&known](ProcessContext& ctx) {
    known[ctx.id()].insert(static_cast<std::int64_t>(ctx.id()));
    ctx.send_all({static_cast<std::int64_t>(ctx.id())});
  };
  p.on_round = [&known](ProcessContext& ctx,
                        const std::vector<Delivery>& in) {
    Payload fresh;
    for (const Delivery& d : in) {
      for (std::int64_t id : d.payload) {
        if (known[ctx.id()].insert(id).second) fresh.push_back(id);
      }
    }
    if (!fresh.empty()) ctx.send_all(fresh);
  };
  GossipResult result;
  result.run = run_protocol(g, p, diameter_bound + 2);
  result.complete = true;
  for (NodeId v = 0; v < n; ++v) {
    if (known[v].size() != n) {
      result.complete = false;
      break;
    }
  }
  return result;
}

AllreduceResult hb_tree_allreduce(const HyperButterfly& hb) {
  Graph g = hb.to_graph();
  const NodeId n = g.num_nodes();
  // BFS spanning tree from the identity (centralized precompute; the
  // protocol itself is fully distributed given parent/children links).
  BfsResult tree = bfs(g, 0);
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId v = 1; v < n; ++v) children[tree.parent[v]].push_back(v);
  auto link_to = [&g](NodeId v, NodeId w) {
    auto adj = g.neighbors(v);
    return static_cast<std::uint32_t>(
        std::lower_bound(adj.begin(), adj.end(), w) - adj.begin());
  };

  std::vector<std::int64_t> acc(n);       // partial sums
  std::vector<std::uint32_t> waiting(n);  // children not yet reported
  std::vector<std::int64_t> result(n, -1);

  Protocol p;
  p.on_init = [&](ProcessContext& ctx) {
    NodeId v = ctx.id();
    acc[v] = static_cast<std::int64_t>(v);
    waiting[v] = static_cast<std::uint32_t>(children[v].size());
    if (waiting[v] == 0 && v != 0) {
      ctx.send(link_to(v, tree.parent[v]), {acc[v], /*up=*/1});
    }
  };
  p.on_round = [&](ProcessContext& ctx, const std::vector<Delivery>& in) {
    NodeId v = ctx.id();
    for (const Delivery& d : in) {
      if (d.payload[1] == 1) {  // convergecast contribution
        acc[v] += d.payload[0];
        --waiting[v];
        if (waiting[v] == 0) {
          if (v == 0) {
            result[0] = acc[0];  // root has the total: start broadcast
            for (NodeId c : children[0]) {
              ctx.send(link_to(0, c), {acc[0], /*up=*/0});
            }
            ctx.halt();
          } else {
            ctx.send(link_to(v, tree.parent[v]), {acc[v], 1});
          }
        }
      } else {  // downward total
        result[v] = d.payload[0];
        for (NodeId c : children[v]) {
          ctx.send(link_to(v, c), {d.payload[0], 0});
        }
        ctx.halt();
      }
    }
  };
  AllreduceResult r;
  r.run = run_protocol(g, p);
  const std::int64_t expect =
      static_cast<std::int64_t>(n) * (static_cast<std::int64_t>(n) - 1) / 2;
  r.correct = true;
  for (NodeId v = 0; v < n; ++v) {
    if (result[v] != expect) {
      r.correct = false;
      break;
    }
  }
  return r;
}

}  // namespace hbnet
