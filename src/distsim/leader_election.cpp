#include "distsim/leader_election.hpp"

#include <algorithm>
#include <array>

namespace hbnet {
namespace {

ElectionResult finalize(const std::vector<std::int64_t>& best, RunResult run) {
  ElectionResult r;
  r.run = run;
  if (best.empty()) return r;
  r.agreement =
      std::all_of(best.begin(), best.end(),
                  [&best](std::int64_t b) { return b == best.front(); });
  if (r.agreement) r.leader = static_cast<NodeId>(best.front());
  return r;
}

}  // namespace

ElectionResult flood_max_election(const Graph& g) {
  std::vector<std::int64_t> best(g.num_nodes());
  Protocol p;
  p.on_init = [&best](ProcessContext& ctx) {
    best[ctx.id()] = static_cast<std::int64_t>(ctx.id());
    ctx.send_all({best[ctx.id()]});
  };
  p.on_round = [&best](ProcessContext& ctx, const std::vector<Delivery>& in) {
    bool improved = false;
    for (const Delivery& d : in) {
      if (d.payload[0] > best[ctx.id()]) {
        best[ctx.id()] = d.payload[0];
        improved = true;
      }
    }
    if (improved) ctx.send_all({best[ctx.id()]});
    // No explicit halt: the run ends by quiescence (no messages in flight).
  };
  RunResult run = run_protocol(g, p);
  return finalize(best, run);
}

ElectionResult hb_structured_election(const HyperButterfly& hb) {
  const unsigned m = hb.cube_dimension();
  const unsigned n = hb.butterfly_dimension();
  const unsigned phase1 = m;
  const unsigned phase2 = 3 * n / 2;  // measured butterfly diameter
  Graph g = hb.to_graph();

  std::vector<std::int64_t> best(g.num_nodes());
  std::vector<std::uint32_t> round_of(g.num_nodes(), 0);

  // Precompute, per vertex, the link index of each generator image (the
  // engine's links are positions in the sorted adjacency list).
  auto link_to = [&g](NodeId v, NodeId w) {
    auto adj = g.neighbors(v);
    return static_cast<std::uint32_t>(
        std::lower_bound(adj.begin(), adj.end(), w) - adj.begin());
  };
  std::vector<std::array<std::uint32_t, 4>> bfly_links(g.num_nodes());
  std::vector<std::vector<std::uint32_t>> cube_links(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    HbNode node = hb.node_at(v);
    cube_links[v].resize(m);
    for (unsigned i = 0; i < m; ++i) {
      cube_links[v][i] = link_to(
          v, static_cast<NodeId>(hb.index_of(hb.apply(node, HbGen::cube(i)))));
    }
    unsigned j = 0;
    for (BflyGen bg :
         {BflyGen::kG, BflyGen::kF, BflyGen::kGInv, BflyGen::kFInv}) {
      bfly_links[v][j++] = link_to(
          v,
          static_cast<NodeId>(hb.index_of(hb.apply(node, HbGen::butterfly(bg)))));
    }
  }

  auto send_phase = [&](ProcessContext& ctx) {
    const NodeId v = ctx.id();
    const std::uint32_t r = round_of[v];
    if (r < phase1) {
      ctx.send(cube_links[v][r], {best[v]});
    } else if (r < phase1 + phase2) {
      for (std::uint32_t l : bfly_links[v]) ctx.send(l, {best[v]});
    } else {
      ctx.halt();
    }
  };

  Protocol p;
  p.on_init = [&](ProcessContext& ctx) {
    best[ctx.id()] = static_cast<std::int64_t>(ctx.id());
    send_phase(ctx);
  };
  p.on_round = [&](ProcessContext& ctx, const std::vector<Delivery>& in) {
    for (const Delivery& d : in) {
      best[ctx.id()] = std::max(best[ctx.id()], d.payload[0]);
    }
    ++round_of[ctx.id()];
    send_phase(ctx);
  };
  RunResult run = run_protocol(g, p, phase1 + phase2 + 2);
  return finalize(best, run);
}

}  // namespace hbnet
