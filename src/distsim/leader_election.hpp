// Leader election on HB(m,n) -- the companion-paper extension ("Leader
// Election in Hyper-Butterfly Graphs", Shi & Srimani).
//
// Two algorithms over the synchronous engine:
//  * flood_max_election: the textbook FloodMax with suppression (forward
//    only on improvement). Works on any connected graph; terminates by
//    quiescence; message complexity O(E * D) worst case.
//  * hb_structured_election: exploits the product structure. Phase 1
//    (m rounds): pairwise max-exchange along cube dimension i in round i --
//    the classical hypercube tournament, after which all 2^m cube layers
//    agree on the per-butterfly-position maximum. Phase 2 (floor(3n/2)
//    rounds): full-neighborhood exchange over the four butterfly links,
//    which floods the maximum across each butterfly copy within its
//    diameter. Total: m + floor(3n/2) rounds and O(N (m + n)) = O(N log N)
//    messages -- the bound the companion paper advertises.
#pragma once

#include "core/hyper_butterfly.hpp"
#include "distsim/engine.hpp"

namespace hbnet {

/// Outcome of an election run.
struct ElectionResult {
  NodeId leader = kInvalidNode;  // max id when agreement holds
  bool agreement = false;        // every process decided the same leader
  RunResult run;
};

/// FloodMax with suppression on an arbitrary connected graph.
[[nodiscard]] ElectionResult flood_max_election(const Graph& g);

/// Structured two-phase election on HB(m,n) (materializes the graph).
[[nodiscard]] ElectionResult hb_structured_election(const HyperButterfly& hb);

}  // namespace hbnet
