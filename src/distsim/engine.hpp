// Synchronous message-passing engine.
//
// Models the classical synchronous distributed-computing setting the
// companion paper ("Leader Election in Hyper-Butterfly Graphs", Shi &
// Srimani) assumes: in every round each process reads the messages
// delivered this round, updates local state, and sends messages over its
// incident links; all sends are delivered at the start of the next round.
// The engine counts rounds and messages -- the two complexity measures the
// distributed-algorithms results are stated in.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace hbnet {

namespace obs {
class Sink;
}

/// A message payload: small vector of integers (algorithms define their own
/// conventions for the fields).
using Payload = std::vector<std::int64_t>;

/// Delivered message: the link index it arrived on (position of the sender
/// in the receiver's adjacency list) plus the payload.
struct Delivery {
  std::uint32_t link;
  Payload payload;
};

/// Context handed to a process each round.
class ProcessContext {
 public:
  ProcessContext(NodeId id, std::uint32_t degree) : id_(id), degree_(degree) {}

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] std::uint32_t degree() const { return degree_; }

  /// Queues a message on link `link` (delivered next round).
  void send(std::uint32_t link, Payload payload) {
    outbox_.push_back({link, std::move(payload)});
  }
  /// Queues a message on every link.
  void send_all(const Payload& payload) {
    for (std::uint32_t l = 0; l < degree_; ++l) outbox_.push_back({l, payload});
  }
  /// Marks this process as finished; the run stops when all processes halt.
  void halt() { halted_ = true; }

  // Engine-side accessors.
  [[nodiscard]] std::vector<Delivery>& outbox() { return outbox_; }
  [[nodiscard]] bool halted() const { return halted_; }

 private:
  NodeId id_;
  std::uint32_t degree_;
  std::vector<Delivery> outbox_;
  bool halted_ = false;
};

/// A distributed algorithm: per-process init and message handler.
struct Protocol {
  /// Called once before round 1.
  std::function<void(ProcessContext&)> on_init;
  /// Called every round with the messages delivered this round (possibly
  /// empty once the algorithm is quiescing).
  std::function<void(ProcessContext&, const std::vector<Delivery>&)> on_round;
};

/// Result of an engine run.
struct RunResult {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  bool all_halted = false;  // vs. stopped by quiescence/round cap
};

/// Runs `protocol` on every vertex of `g` until all processes halt, the
/// network quiesces (no messages in flight and nothing new sent), or
/// `max_rounds` elapses.
///
/// A non-null `sink` records round/message counters, a messages-per-round
/// time series, and -- when tracing is enabled -- one trace span per round
/// (ts = round index) annotated with the messages delivered in it.
[[nodiscard]] RunResult run_protocol(const Graph& g, const Protocol& protocol,
                                     std::uint64_t max_rounds = 1'000'000,
                                     obs::Sink* sink = nullptr);

}  // namespace hbnet
