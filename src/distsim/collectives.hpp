// Collective communication on HB(m,n) beyond single-port broadcast:
// all-port broadcast (every informed node may inform all neighbors each
// round -- completes in exactly the source eccentricity) and gossip
// (all-to-all broadcast) measured on the synchronous engine.
#pragma once

#include <cstdint>

#include "core/hyper_butterfly.hpp"
#include "distsim/engine.hpp"

namespace hbnet {

/// Rounds for all-port broadcast from `source`: exactly the eccentricity of
/// the source (BFS depth), which is optimal in the all-port model.
[[nodiscard]] unsigned all_port_broadcast_rounds(const HyperButterfly& hb,
                                                 HbNode source);

/// Outcome of a gossip run.
struct GossipResult {
  RunResult run;
  bool complete = false;  // every node learned every id
};

/// All-to-all broadcast by flooding-with-sets on the engine: each node
/// forwards newly learned ids to all neighbors each round. Completes in
/// diameter rounds; message count is the interesting measurement.
/// Intended for small instances (state is O(N) ids per node).
[[nodiscard]] GossipResult hb_gossip(const HyperButterfly& hb);

/// Outcome of a tree allreduce.
struct AllreduceResult {
  RunResult run;
  bool correct = false;  // every node ended with the true global sum
};

/// Global-sum allreduce over a BFS spanning tree rooted at the identity:
/// convergecast partial sums up the tree, broadcast the total back down.
/// 2(N-1) messages and ~2*depth rounds -- the ASCEND-class collective the
/// paper's multiprocessor context calls for. Each node contributes its own
/// id; correctness checks the closed form N(N-1)/2 at every node.
[[nodiscard]] AllreduceResult hb_tree_allreduce(const HyperButterfly& hb);

}  // namespace hbnet
