#include "distsim/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "distsim/sync_engine.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"

namespace hbnet {

namespace {

/// A protocol message in transit through the sync::Exchange core.
struct WireMsg {
  NodeId to;
  std::uint32_t link;  // receiver-side link index
  Payload payload;
};

}  // namespace

RunResult run_protocol(const Graph& g, const Protocol& protocol,
                       std::uint64_t max_rounds, obs::Sink* sink) {
  if (!protocol.on_round) {
    throw std::invalid_argument("run_protocol: on_round is required");
  }
  const NodeId n = g.num_nodes();
  obs::TimeSeries* msg_ts =
      sink != nullptr ? &sink->time_series("distsim.messages", 1) : nullptr;
  std::vector<ProcessContext> ctx;
  ctx.reserve(n);
  for (NodeId v = 0; v < n; ++v) ctx.emplace_back(v, g.degree(v));

  // Reverse link lookup: for edge (u -> v) on u's link l, the delivery at v
  // arrives on v's link index of u.
  auto link_of = [&g](NodeId v, NodeId neighbor) -> std::uint32_t {
    auto adj = g.neighbors(v);
    return static_cast<std::uint32_t>(
        std::lower_bound(adj.begin(), adj.end(), neighbor) - adj.begin());
  };

  RunResult result;
  std::vector<std::vector<Delivery>> inbox(n);

  // Protocols capture shared mutable state in their closures, so processes
  // must run serially -- this engine uses the sync core's single-shard
  // degenerate case: one contiguous shard, compute in ascending id order,
  // exchange, deliver in ascending sender order. The sharded packet engine
  // (sim/sharded.cpp) runs the same discipline with many shards.
  const sync::ShardPlan plan(n, 1);
  sync::Exchange<WireMsg> exchange(plan.shards());

  if (protocol.on_init) {
    for (NodeId v = 0; v < n; ++v) protocol.on_init(ctx[v]);
  }
  for (std::uint64_t round = 0; round < max_rounds; ++round) {
    // Compute phase output: move outboxes into the exchange.
    bool any_message = false;
    std::uint64_t round_messages = 0;
    for (NodeId v = 0; v < n; ++v) {
      for (Delivery& d : ctx[v].outbox()) {
        NodeId to = g.neighbors(v)[d.link];
        exchange.push(0, plan.shard_of(to) /* == 0 */,
                      {to, link_of(to, v), std::move(d.payload)});
        ++result.messages;
        ++round_messages;
        any_message = true;
      }
      ctx[v].outbox().clear();
    }
    // Bump before the halt/quiescence checks so the final round's sends
    // (already counted in result.messages) land in the series too.
    if (msg_ts != nullptr && round_messages > 0) {
      msg_ts->bump(round, round_messages);
    }
    bool all_halted = true;
    for (NodeId v = 0; v < n; ++v) all_halted &= ctx[v].halted();
    if (all_halted) {
      result.all_halted = true;
      break;
    }
    if (!any_message && round > 0) break;  // quiesced without halting
    ++result.rounds;
    HBNET_TRACE_BEGIN(sink, "distsim", "round", 0, 0, round,
                      {{"messages", round_messages}});
    // Deliver phase: drain the exchange (ascending sender order) into this
    // round's inboxes, then run every process.
    exchange.drain(0, [&inbox](WireMsg& m) {
      inbox[m.to].push_back({m.link, std::move(m.payload)});
    });
    for (NodeId v = 0; v < n; ++v) {
      if (!ctx[v].halted()) protocol.on_round(ctx[v], inbox[v]);
      inbox[v].clear();
    }
    HBNET_TRACE_END(sink, "distsim", "round", 0, 0, round + 1);
  }
  if (sink != nullptr) {
    sink->metrics().counter("distsim.rounds").inc(result.rounds);
    sink->metrics().counter("distsim.messages").inc(result.messages);
  }
  return result;
}

}  // namespace hbnet
