// The shared synchronous-engine core: sharding plan + deterministic
// cross-shard message exchange.
//
// Both synchronous simulators in the library -- the distsim protocol engine
// (engine.hpp) and the sharded store-and-forward packet engine
// (sim/sharded.hpp) -- run the same cycle discipline on top of these two
// primitives:
//
//   1. compute: every shard processes its own nodes in ascending id order,
//      pushing outbound messages into its Exchange row (no shared writes);
//   2. exchange + barrier: the parallel_for over shards returns (the pool's
//      completion *is* the barrier), then
//   3. deliver: every shard drains its Exchange column, sender shards in
//      ascending order.
//
// Determinism contract: shards are CONTIGUOUS id ranges and drain() visits
// sender shards in ascending order, so the delivery order at any node is
// the global ascending-sender-id order -- the same sequence for every shard
// count and thread count, including the fully serial 1-shard case. Any
// engine built on this core therefore only needs order-independent (or
// per-slot-disjoint) state updates to inherit byte-identical results across
// --threads/--shards.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/check.hpp"

namespace hbnet::sync {

/// Partition of the dense id space [0, num_nodes) into contiguous ranges of
/// a power-of-two stride (the smallest power of two >= num_nodes /
/// requested_shards; the last range may be short). The actual shard count
/// is therefore at most the requested one. Two properties are load-bearing:
/// contiguity (see the determinism contract above) and the pow2 stride,
/// which makes shard_of() -- executed once per packet move in the sharded
/// simulator -- a single shift instead of a division.
class ShardPlan {
 public:
  ShardPlan(std::uint64_t num_nodes, unsigned requested_shards)
      : num_nodes_(num_nodes) {
    HBNET_CHECK_MSG(requested_shards >= 1,
                    "ShardPlan: need at least one shard");
    const std::uint64_t target =
        (num_nodes + requested_shards - 1) / requested_shards;
    while ((std::uint64_t{1} << shift_) < target) ++shift_;
    shards_ = num_nodes == 0
                  ? 1
                  : static_cast<unsigned>(((num_nodes - 1) >> shift_) + 1);
  }

  [[nodiscard]] unsigned shards() const { return shards_; }
  [[nodiscard]] std::uint64_t num_nodes() const { return num_nodes_; }

  [[nodiscard]] std::uint64_t begin(unsigned s) const {
    return std::min(num_nodes_, std::uint64_t{s} << shift_);
  }
  [[nodiscard]] std::uint64_t end(unsigned s) const { return begin(s + 1); }

  [[nodiscard]] unsigned shard_of(std::uint64_t node) const {
    return static_cast<unsigned>(node >> shift_);
  }

 private:
  std::uint64_t num_nodes_;
  unsigned shards_ = 1;
  unsigned shift_ = 0;
};

/// Batched shard-to-shard message buffers: one cell per (from, to) pair,
/// laid out from-major so each compute-phase writer owns a contiguous row.
/// push() is only safe from the thread running shard `from`; drain() is only
/// safe after the barrier, from the thread running shard `to`.
template <typename Msg>
class Exchange {
 public:
  explicit Exchange(unsigned shards)
      : shards_(shards),
        cells_(static_cast<std::size_t>(shards) * shards) {}

  void push(unsigned from, unsigned to, Msg msg) {
    cell(from, to).push_back(std::move(msg));
  }

  /// Visits every message bound for shard `to`, sender shards in ascending
  /// order (delivery order == global ascending sender id), then clears.
  template <typename Fn>
  void drain(unsigned to, Fn&& fn) {
    for (unsigned from = 0; from < shards_; ++from) {
      auto& c = cell(from, to);
      for (Msg& m : c) fn(m);
      c.clear();
    }
  }

  /// Total queued messages (post-barrier use only).
  [[nodiscard]] std::uint64_t in_flight() const {
    std::uint64_t total = 0;
    for (const auto& c : cells_) total += c.size();
    return total;
  }

 private:
  [[nodiscard]] std::vector<Msg>& cell(unsigned from, unsigned to) {
    return cells_[static_cast<std::size_t>(from) * shards_ + to];
  }

  unsigned shards_;
  std::vector<std::vector<Msg>> cells_;
};

}  // namespace hbnet::sync
