#include "par/pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace hbnet::par {
namespace {

std::atomic<unsigned> g_default_override{0};

unsigned env_threads() {
  const char* env = std::getenv("HBNET_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<unsigned>(v);
}

}  // namespace

unsigned default_threads() {
  unsigned v = g_default_override.load(std::memory_order_relaxed);
  if (v != 0) return v;
  v = env_threads();
  if (v != 0) return v;
  v = std::thread::hardware_concurrency();
  return v != 0 ? v : 1;
}

void set_default_threads(unsigned threads) {
  g_default_override.store(threads, std::memory_order_relaxed);
}

unsigned resolve_threads(unsigned threads) {
  return threads != 0 ? threads : default_threads();
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(resolve_threads(threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned t = 1; t < threads_; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_job(Job& job, unsigned worker) {
  while (true) {
    const std::uint64_t begin =
        job.cursor.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.count) return;
    const std::uint64_t end = std::min(begin + job.chunk, job.count);
    if (job.body != nullptr) {
      (*job.body)(begin, end);
    } else {
      (*job.worker_body)(worker, begin, end);
    }
  }
}

void ThreadPool::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    run_job(*job, worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++job->acked == static_cast<unsigned>(workers_.size())) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::dispatch(Job& job) {
  if (job.count == 0) return;
  if (job.chunk == 0) job.chunk = 1;
  if (workers_.empty() || job.count <= job.chunk) {
    // Serial fast path: nothing to distribute; the caller is worker 0.
    run_job(job, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++generation_;
  }
  wake_cv_.notify_all();
  run_job(job, 0);  // the caller is a worker too
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job.acked == static_cast<unsigned>(workers_.size());
    });
    job_ = nullptr;
  }
}

void ThreadPool::parallel_for_chunks(
    std::uint64_t count, std::uint64_t chunk,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  Job job;
  job.body = &body;
  job.count = count;
  job.chunk = chunk;
  dispatch(job);
}

void ThreadPool::parallel_for_chunks(
    std::uint64_t count, std::uint64_t chunk,
    const std::function<void(unsigned, std::uint64_t, std::uint64_t)>& body) {
  Job job;
  job.worker_body = &body;
  job.count = count;
  job.chunk = chunk;
  dispatch(job);
}

void ThreadPool::parallel_for(std::uint64_t count,
                              const std::function<void(std::uint64_t)>& fn) {
  // Aim for plenty of chunks per worker so dynamic scheduling can balance,
  // without degenerating to per-index dispatch on huge counts.
  const std::uint64_t target_chunks = std::uint64_t{8} * threads_;
  const std::uint64_t chunk =
      count <= target_chunks ? 1 : count / target_chunks;
  parallel_for_chunks(count, chunk, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) fn(i);
  });
}

}  // namespace hbnet::par
