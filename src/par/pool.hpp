// hbnet::par -- a small fixed-thread pool with parallel_for /
// parallel_reduce, shared by every embarrassingly-parallel sweep in the
// library (connectivity Dinic sweeps, all-sources BFS, disjoint-path
// audits).
//
// Design:
//  * A ThreadPool owns `size() - 1` worker threads; the caller of
//    parallel_for participates as the remaining worker, so `ThreadPool(1)`
//    spawns nothing and runs strictly serially on the calling thread.
//  * Work is distributed dynamically: workers claim [begin, end) chunks off
//    an atomic cursor, so uneven task costs (max-flow solves vary wildly)
//    balance automatically.
//  * Determinism contract: parallel_for imposes no ordering, so callers
//    must only perform order-independent updates (atomic min/max, integer
//    sums, writes to disjoint slots). parallel_reduce enforces this shape:
//    `combine` must be associative and commutative (min, max, integer +,
//    bit-or ...), and then the result is identical for every thread count,
//    including 1. Every parallel algorithm in the library is written
//    against this contract and tested for thread-count invariance.
//  * Thread-count resolution: an explicit `threads` argument wins; 0 means
//    default_threads(), which is the set_default_threads() override (the
//    CLI's --threads), else the HBNET_THREADS environment variable, else
//    std::thread::hardware_concurrency().
//
// The pool is intentionally minimal: no futures, no task graph, no nesting
// (calling parallel_for from inside a pool worker is not supported).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hbnet::par {

/// Threads used when a caller passes 0: set_default_threads() override,
/// else HBNET_THREADS (positive integer), else hardware concurrency.
[[nodiscard]] unsigned default_threads();

/// Process-wide override for default_threads(); 0 clears the override.
void set_default_threads(unsigned threads);

/// Resolves an explicit thread request: `threads` if nonzero, else
/// default_threads(); never returns 0.
[[nodiscard]] unsigned resolve_threads(unsigned threads);

class ThreadPool {
 public:
  /// Creates a pool of `resolve_threads(threads)` workers (including the
  /// caller); spawns size()-1 std::threads.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const { return threads_; }

  /// Runs body(begin, end) over a partition of [0, count) into chunks of at
  /// most `chunk` indices, distributed dynamically over all workers plus the
  /// calling thread. Blocks until every chunk completed. Not reentrant: do
  /// not call from inside a pool body.
  void parallel_for_chunks(std::uint64_t count, std::uint64_t chunk,
                           const std::function<void(std::uint64_t,
                                                    std::uint64_t)>& body);

  /// Like parallel_for_chunks, but body additionally receives the stable
  /// worker index in [0, size()) of the thread running the chunk (the caller
  /// is worker 0). Lets sweep callers keep per-worker scratch -- e.g. one
  /// cloned flow network per worker that persists across many calls --
  /// instead of re-initializing it per chunk. Which chunks land on which
  /// worker is scheduling dependent, so per-worker state must stay
  /// order-independent for the determinism contract to hold.
  void parallel_for_chunks(std::uint64_t count, std::uint64_t chunk,
                           const std::function<void(unsigned, std::uint64_t,
                                                    std::uint64_t)>& body);

  /// Runs fn(i) for every i in [0, count); convenience over
  /// parallel_for_chunks with auto chunking (~4 chunks per worker minimum,
  /// single indices once counts are small).
  void parallel_for(std::uint64_t count,
                    const std::function<void(std::uint64_t)>& fn);

 private:
  struct Job {
    // Exactly one of the two bodies is set per job.
    const std::function<void(std::uint64_t, std::uint64_t)>* body = nullptr;
    const std::function<void(unsigned, std::uint64_t, std::uint64_t)>*
        worker_body = nullptr;
    std::uint64_t count = 0;
    std::uint64_t chunk = 1;
    std::atomic<std::uint64_t> cursor{0};
    unsigned acked = 0;  // workers done with this job (guarded by mu_)
  };

  void worker_loop(unsigned worker);
  void dispatch(Job& job);
  static void run_job(Job& job, unsigned worker);

  std::vector<std::thread> workers_;
  unsigned threads_ = 1;

  std::mutex mu_;
  std::condition_variable wake_cv_;  // workers wait for a new generation
  std::condition_variable done_cv_;  // caller waits for all acks
  Job* job_ = nullptr;               // guarded by mu_
  std::uint64_t generation_ = 0;     // bumped per job (guarded by mu_)
  bool stop_ = false;
};

/// Deterministic reduction over [0, count): result = combine over all i of
/// map(i), seeded with `identity`. `combine` MUST be associative and
/// commutative and `identity` its neutral element; under that contract the
/// result is independent of the thread count and scheduling. `chunk` tunes
/// granularity for cheap map functions.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, std::uint64_t count,
                                T identity, Map&& map, Combine&& combine,
                                std::uint64_t chunk = 1) {
  T result = identity;
  std::mutex mu;
  pool.parallel_for_chunks(
      count, chunk, [&](std::uint64_t begin, std::uint64_t end) {
        T local = identity;
        for (std::uint64_t i = begin; i < end; ++i) {
          local = combine(std::move(local), map(i));
        }
        std::lock_guard<std::mutex> lock(mu);
        result = combine(std::move(result), std::move(local));
      });
  return result;
}

}  // namespace hbnet::par
