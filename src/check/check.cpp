#include "check/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace hbnet::check_detail {

namespace {
std::atomic<FailureHook> g_failure_hook{nullptr};
}  // namespace

void set_failure_hook(FailureHook hook) {
  g_failure_hook.store(hook, std::memory_order_release);
}

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& msg) {
  if (msg.empty()) {
    std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  } else {
    std::fprintf(stderr, "%s failed: %s (%s) at %s:%d\n", kind, expr,
                 msg.c_str(), file, line);
  }
  std::fflush(stderr);
  // exchange, not load: the hook runs at most once process-wide, and a
  // check failing inside the hook falls straight through to abort().
  if (FailureHook hook = g_failure_hook.exchange(nullptr)) hook();
  std::abort();
}

}  // namespace hbnet::check_detail
