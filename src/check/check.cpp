#include "check/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace hbnet::check_detail {

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& msg) {
  if (msg.empty()) {
    std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  } else {
    std::fprintf(stderr, "%s failed: %s (%s) at %s:%d\n", kind, expr,
                 msg.c_str(), file, line);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace hbnet::check_detail
