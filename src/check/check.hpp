// hbnet::check -- leveled runtime invariants.
//
// Two levels, one contract:
//
//   HBNET_CHECK(cond)        always compiled in, for cheap invariants whose
//                            violation means memory-unsafe or silently wrong
//                            results. Cost: one predictable branch.
//   HBNET_DCHECK(cond)       compiled in only when HBNET_CHECKS=1 (the CMake
//                            option HBNET_CHECKS; default ON except in
//                            Release builds). Use freely in hot paths: a
//                            Release build with -DHBNET_CHECKS=OFF compiles
//                            every site out to nothing.
//
// Both abort with a file:line diagnostic on failure -- invariant violations
// are programming errors, not recoverable conditions, so they must not be
// swallowed by a catch block. Input validation of public API arguments
// stays exception-based (std::invalid_argument etc.); the check layer is
// for *internal* consistency the caller cannot influence.
//
// `_MSG` variants take a message expression that is evaluated only on
// failure (so building a std::string there is free on the passing path).
// `_OK` variants take an expression returning std::string -- empty means
// valid, non-empty is the failure description (the contract of the
// check::validate overloads in graph/validate.hpp and core/validate.hpp).
//
// hblint enforces this layer: bare `assert(` in src/ is a lint error
// (rule no-bare-assert); use these macros instead.
#pragma once

#include <string>

// Compile-time switch for the DCHECK level. The build system normally sets
// this (CMake option HBNET_CHECKS); standalone compilation falls back to
// the assert convention: on unless NDEBUG.
#ifndef HBNET_CHECKS
#ifdef NDEBUG
#define HBNET_CHECKS 0
#else
#define HBNET_CHECKS 1
#endif
#endif

namespace hbnet::check_detail {

/// Prints "<kind> failed: <expr> (<msg>) at <file>:<line>" to stderr and
/// aborts. Out of line so check sites stay small.
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& msg);

/// Called once, after the diagnostic is printed and before abort(), when
/// any check fails. The obs::FlightRecorder installs its postmortem dump
/// here. The hook is cleared before it runs, so a check failing inside
/// the hook cannot recurse. nullptr uninstalls.
using FailureHook = void (*)();
void set_failure_hook(FailureHook hook);

}  // namespace hbnet::check_detail

#define HBNET_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::hbnet::check_detail::fail("HBNET_CHECK", #cond, __FILE__, __LINE__,  \
                                  std::string());                            \
    }                                                                        \
  } while (0)

#define HBNET_CHECK_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::hbnet::check_detail::fail("HBNET_CHECK", #cond, __FILE__, __LINE__,  \
                                  (msg));                                    \
    }                                                                        \
  } while (0)

/// `expr` must evaluate to std::string: empty = valid, else the violation.
#define HBNET_CHECK_OK(expr)                                                 \
  do {                                                                       \
    std::string hbnet_check_err_ = (expr);                                   \
    if (!hbnet_check_err_.empty()) {                                         \
      ::hbnet::check_detail::fail("HBNET_CHECK_OK", #expr, __FILE__,         \
                                  __LINE__, hbnet_check_err_);               \
    }                                                                        \
  } while (0)

#if HBNET_CHECKS
#define HBNET_DCHECK(cond) HBNET_CHECK(cond)
#define HBNET_DCHECK_MSG(cond, msg) HBNET_CHECK_MSG(cond, msg)
#define HBNET_DCHECK_OK(expr) HBNET_CHECK_OK(expr)
#else
// sizeof keeps the condition parsed (names stay "used", typos still fail to
// compile) without evaluating it or emitting code.
#define HBNET_DCHECK(cond) ((void)sizeof(!(cond)))
#define HBNET_DCHECK_MSG(cond, msg) ((void)sizeof(!(cond)))
#define HBNET_DCHECK_OK(expr) ((void)sizeof((expr).empty()))
#endif
