// Structural validators for the Theorem-claim invariants, used by the
// HBNET_DCHECK_OK sites in builders and analysis entry points (and directly
// by tests).
//
// Each overload returns an empty string when the object is well formed and
// a description of the *first* violation otherwise, so callers can route
// the result through HBNET_CHECK_OK / HBNET_DCHECK_OK or report it softly.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace hbnet {
class HyperButterfly;
struct SweepState;
}

namespace hbnet::check {

/// CSR well-formedness: offsets monotone and consistent with the column
/// array, every adjacency strictly ascending (no duplicates), no self
/// loops, every target in range, and undirected symmetry (u in adj(v) iff
/// v in adj(u)). Cost O(n + m log deg).
[[nodiscard]] std::string validate(const Graph& g);

/// HB(m,n) Theorem 1-2 invariants: m+4 generators (= degree), n * 2^(m+n)
/// vertices, (m+4) * n * 2^(m+n-1) edges, and on a bounded sample of
/// vertices: index_of/node_at round trip, m+4 distinct in-range neighbors,
/// and generator involution/inverse consistency (each neighbor lists the
/// vertex back). Sampled, so cheap even for the largest instances.
[[nodiscard]] std::string validate(const HyperButterfly& hb);

/// ConnectivitySweep checkpoint-state invariants: supported format version,
/// nonzero block size, position and bound within range for the recorded
/// graph shape, work counters bounded by the pair count, and normalized
/// stage position (a complete state never sits mid-stage). Used by the
/// sweep before every checkpoint write and on every resume.
[[nodiscard]] std::string validate(const SweepState& st);

/// The above plus graph identity: a checkpoint may only be resumed against
/// the exact graph it was taken from (node and edge counts and the CSR
/// fingerprint must all match).
[[nodiscard]] std::string validate(const SweepState& st, const Graph& g);

}  // namespace hbnet::check
