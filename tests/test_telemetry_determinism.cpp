// Regression tests for the telemetry determinism contract: exported
// metrics/links artifacts are a pure function of (topology, config) --
// byte-identical across repeated runs -- and the per-link table is emitted
// in canonical (src, dst) order rather than hash or registration order.
// Guards the sorted-extraction fixes in sim/simulator.cpp (link_moves was
// iterated in unordered_map order) and sim/wormhole.cpp (channel
// registration order).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/sink.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/wormhole.hpp"

namespace hbnet {
namespace {

struct Artifacts {
  std::string metrics_json;
  std::string links_csv;
};

Artifacts export_artifacts(const obs::Sink& sink) {
  std::ostringstream metrics, links;
  sink.write_metrics_json(metrics);
  sink.write_links_csv(links);
  return {metrics.str(), links.str()};
}

void expect_links_sorted(const obs::Sink& sink) {
  ASSERT_FALSE(sink.links().empty());
  for (std::size_t i = 1; i < sink.links().size(); ++i) {
    const auto& a = sink.links()[i - 1];
    const auto& b = sink.links()[i];
    EXPECT_LT(std::make_pair(a.src, a.dst), std::make_pair(b.src, b.dst))
        << "links()[" << i << "] out of canonical (src, dst) order";
  }
}

TEST(TelemetryDeterminism, StoreForwardArtifactsAreByteIdentical) {
  auto topo = make_hyper_butterfly_sim(1, 3);
  SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 300;
  cfg.seed = 42;

  obs::Sink first_sink;
  const SimStats first = run_simulation(*topo, cfg, {}, &first_sink);
  EXPECT_GT(first.delivered(), 0u);
  const Artifacts a = export_artifacts(first_sink);
  expect_links_sorted(first_sink);

  obs::Sink second_sink;
  (void)run_simulation(*topo, cfg, {}, &second_sink);
  const Artifacts b = export_artifacts(second_sink);

  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.links_csv, b.links_csv);
}

TEST(TelemetryDeterminism, WormholeArtifactsAreByteIdentical) {
  auto topo = make_butterfly_sim(4);
  WormholeConfig cfg;
  cfg.vcs = 6;
  cfg.injection_rate = 0.06;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 300;
  cfg.seed = 42;

  obs::Sink first_sink;
  const WormholeStats first =
      run_wormhole(*topo, cfg, 4, nullptr, &first_sink);
  ASSERT_FALSE(first.deadlocked);
  EXPECT_GT(first.packets.delivered(), 0u);
  const Artifacts a = export_artifacts(first_sink);
  expect_links_sorted(first_sink);

  obs::Sink second_sink;
  (void)run_wormhole(*topo, cfg, 4, nullptr, &second_sink);
  const Artifacts b = export_artifacts(second_sink);

  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.links_csv, b.links_csv);
}

TEST(TelemetryDeterminism, FaultRunArtifactsAreByteIdentical) {
  auto topo = make_hyper_butterfly_sim(1, 3);
  SimConfig cfg;
  cfg.injection_rate = 0.04;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 250;
  cfg.seed = 7;
  std::vector<char> faulty(topo->num_nodes(), 0);
  faulty[3] = 1;
  faulty[11] = 1;

  obs::Sink s1, s2;
  (void)run_simulation(*topo, cfg, faulty, &s1);
  (void)run_simulation(*topo, cfg, faulty, &s2);
  EXPECT_EQ(export_artifacts(s1).metrics_json,
            export_artifacts(s2).metrics_json);
  EXPECT_EQ(export_artifacts(s1).links_csv, export_artifacts(s2).links_csv);
}

}  // namespace
}  // namespace hbnet
