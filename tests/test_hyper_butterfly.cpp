// HB(m,n) core: Theorems 1-3 (Cayley structure, counts, routing, diameter)
// plus the layer-decomposition of Remark 5.
#include <gtest/gtest.h>

#include "core/hyper_butterfly.hpp"
#include "core/routing.hpp"
#include "graph/bfs.hpp"

namespace hbnet {
namespace {

TEST(HyperButterfly, CountsTheorem2) {
  HyperButterfly hb(3, 4);
  EXPECT_EQ(hb.num_nodes(), 4u * 128);            // n * 2^(m+n) = 512
  EXPECT_EQ(hb.num_edges(), 7u * 4 * 64);         // (m+4) n 2^(m+n-1) = 1792
  EXPECT_EQ(hb.degree(), 7u);
  EXPECT_EQ(hb.diameter_formula(), 3u + 6);
  EXPECT_THROW(HyperButterfly(0, 4), std::invalid_argument);
  EXPECT_THROW(HyperButterfly(2, 2), std::invalid_argument);
}

TEST(HyperButterfly, IndexRoundTrip) {
  HyperButterfly hb(2, 3);
  for (HbIndex id = 0; id < hb.num_nodes(); ++id) {
    HbNode v = hb.node_at(id);
    EXPECT_TRUE(hb.contains(v));
    EXPECT_EQ(hb.index_of(v), id);
  }
}

TEST(HyperButterfly, GeneratorsCountAndNeighbors) {
  HyperButterfly hb(3, 4);
  EXPECT_EQ(hb.generators().size(), 7u);
  HbNode v{0b101, {0b1001, 2}};
  auto nbrs = hb.neighbors(v);
  ASSERT_EQ(nbrs.size(), 7u);
  // Remark 4: cube edges change only the cube part, butterfly edges only
  // the butterfly part.
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_TRUE(nbrs[i].bfly == v.bfly);
    EXPECT_EQ(Hypercube::distance(nbrs[i].cube, v.cube), 1u);
  }
  for (unsigned i = 3; i < 7; ++i) {
    EXPECT_EQ(nbrs[i].cube, v.cube);
    EXPECT_FALSE(nbrs[i].bfly == v.bfly);
  }
}

class HbParam : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(HbParam, GraphMatchesTheorem2) {
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  Graph g = hb.to_graph();
  EXPECT_EQ(g.num_nodes(), hb.num_nodes());
  EXPECT_EQ(g.num_edges(), hb.num_edges());
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), m + 4);
}

TEST_P(HbParam, CayleyAuditTheorem1) {
  auto [m, n] = GetParam();
  CayleyAudit a = audit(HyperButterfly(m, n).cayley_spec());
  EXPECT_TRUE(a.generators_are_permutations);
  EXPECT_TRUE(a.closed_under_inverse);
  EXPECT_TRUE(a.fixed_point_free);
  EXPECT_TRUE(a.distinct_actions);
}

TEST_P(HbParam, DistanceMatchesBfs) {
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  Graph g = hb.to_graph();
  BfsResult r = bfs(g, 0);  // from the identity; vertex transitive
  for (HbIndex id = 0; id < hb.num_nodes(); ++id) {
    EXPECT_EQ(hb.distance(hb.node_at(0), hb.node_at(id)), r.dist[id])
        << "id=" << id;
  }
}

TEST_P(HbParam, RouteIsValidAndOptimal) {
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  Graph g = hb.to_graph();
  for (HbIndex s = 0; s < hb.num_nodes(); s += 11) {
    for (HbIndex t = 0; t < hb.num_nodes(); t += 13) {
      HbNode u = hb.node_at(s), v = hb.node_at(t);
      auto path = hb.route(u, v);
      EXPECT_EQ(path.size(), hb.distance(u, v) + 1);
      EXPECT_TRUE(path.front() == u);
      EXPECT_TRUE(path.back() == v);
      for (std::size_t i = 1; i < path.size(); ++i) {
        EXPECT_TRUE(g.has_edge(static_cast<NodeId>(hb.index_of(path[i - 1])),
                               static_cast<NodeId>(hb.index_of(path[i]))));
      }
      // Generator form agrees.
      auto gens = hb.route_generators(u, v);
      EXPECT_EQ(gens.size() + 1, path.size());
      HbNode cur = u;
      for (const HbGen& gen : gens) cur = hb.apply(cur, gen);
      EXPECT_TRUE(cur == v);
    }
  }
}

TEST_P(HbParam, MeasuredDiameterVsTheorem3) {
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  unsigned measured = hb_diameter_measured(hb);
  // The butterfly's true diameter is floor(3n/2); Theorem 3 states
  // m + ceil(3n/2). Measured = m + floor(3n/2) <= formula.
  EXPECT_EQ(measured, m + 3 * n / 2);
  EXPECT_LE(measured, hb.diameter_formula());
}

TEST_P(HbParam, LayerDecompositionRemark5) {
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  // All nodes with the same butterfly part form an H_m: check the neighbor
  // structure witnesses it; same cube part forms a B_n.
  HbNode v{1, {2, n - 1}};
  unsigned cube_nbrs = 0, bfly_nbrs = 0;
  for (const HbNode& w : hb.neighbors(v)) {
    if (w.bfly == v.bfly) ++cube_nbrs;
    if (w.cube == v.cube) ++bfly_nbrs;
  }
  EXPECT_EQ(cube_nbrs, m);
  EXPECT_EQ(bfly_nbrs, 4u);
}

TEST_P(HbParam, ImplicitBfsAgreesWithDistance) {
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  for (HbIndex t = 0; t < hb.num_nodes(); t += 29) {
    EXPECT_EQ(hb_bfs_distance(hb, hb.node_at(0), hb.node_at(t)),
              hb.distance(hb.node_at(0), hb.node_at(t)));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HbParam,
                         ::testing::Values(std::pair{1u, 3u}, std::pair{2u, 3u},
                                           std::pair{3u, 3u}, std::pair{1u, 4u},
                                           std::pair{2u, 4u}, std::pair{3u, 4u},
                                           std::pair{2u, 5u}, std::pair{4u, 4u},
                                           std::pair{1u, 5u}));

TEST(HyperButterfly, BfsPathAvoidsFaults) {
  HyperButterfly hb(2, 3);
  HbNode u{0, {0, 0}}, v{3, {7, 2}};
  HbFaultSet faults;
  auto clean = hb_bfs_path(hb, u, v);
  ASSERT_TRUE(clean.has_value());
  // Make every vertex of the clean path's interior faulty; a path must
  // still exist (connectivity m+4 = 6 > faults here if interior small) or
  // the helper reports nullopt -- either way no faulty vertex may appear.
  for (std::size_t i = 1; i + 1 < clean->size(); ++i) {
    faults.add(hb, (*clean)[i]);
  }
  auto detour = hb_bfs_path(hb, u, v, &faults);
  if (detour.has_value()) {
    for (const HbNode& w : *detour) {
      EXPECT_FALSE(faults.contains(hb, w));
    }
  }
}

}  // namespace
}  // namespace hbnet
