// Theorem 5 / Corollary 1: the m+4 disjoint-path construction and the
// maximal fault tolerance of HB(m,n).
#include <gtest/gtest.h>

#include <random>

#include "core/hyper_butterfly.hpp"
#include "graph/connectivity.hpp"
#include "graph/disjoint_paths.hpp"

namespace hbnet {
namespace {

/// Lowers an HB path family to NodeId paths on the materialized graph.
std::vector<Path> lower(const HyperButterfly& hb,
                        const std::vector<std::vector<HbNode>>& family) {
  std::vector<Path> out;
  for (const auto& p : family) {
    Path q;
    for (const HbNode& v : p) q.push_back(static_cast<NodeId>(hb.index_of(v)));
    out.push_back(std::move(q));
  }
  return out;
}

class DisjointParam
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(DisjointParam, FamilyValidForAllPairsFromIdentity) {
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  Graph g = hb.to_graph();
  const NodeId s = 0;
  for (HbIndex t = 1; t < hb.num_nodes(); ++t) {
    auto family = hb.disjoint_paths(hb.node_at(0), hb.node_at(t));
    ASSERT_EQ(family.size(), m + 4) << "t=" << t;
    auto paths = lower(hb, family);
    PathFamilyCheck check =
        check_disjoint_paths(g, paths, s, static_cast<NodeId>(t));
    EXPECT_TRUE(check.ok) << "t=" << t << ": " << check.error;
  }
}

TEST_P(DisjointParam, FamilyValidForRandomPairs) {
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  Graph g = hb.to_graph();
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<HbIndex> pick(0, hb.num_nodes() - 1);
  for (int trial = 0; trial < 60; ++trial) {
    HbIndex s = pick(rng), t = pick(rng);
    if (s == t) continue;
    auto family = hb.disjoint_paths(hb.node_at(s), hb.node_at(t));
    ASSERT_EQ(family.size(), m + 4);
    auto paths = lower(hb, family);
    PathFamilyCheck check = check_disjoint_paths(
        g, paths, static_cast<NodeId>(s), static_cast<NodeId>(t));
    EXPECT_TRUE(check.ok) << "s=" << s << " t=" << t << ": " << check.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, DisjointParam,
                         ::testing::Values(std::pair{1u, 3u}, std::pair{2u, 3u},
                                           std::pair{3u, 3u}, std::pair{1u, 4u},
                                           std::pair{2u, 4u}, std::pair{4u, 3u},
                                           std::pair{2u, 5u}, std::pair{3u, 5u},
                                           std::pair{5u, 3u}));

TEST(DisjointPaths, CaseCoverage) {
  // Exercise each Theorem-5 case explicitly, including degenerate
  // adjacencies, on HB(3,3).
  HyperButterfly hb(3, 3);
  Graph g = hb.to_graph();
  struct CasePair {
    HbNode u, v;
    const char* label;
  };
  const std::vector<CasePair> cases = {
      {{0b000, {0, 0}}, {0b111, {0, 0}}, "case1 same butterfly part"},
      {{0b000, {0, 0}}, {0b001, {0, 0}}, "case1 cube-adjacent"},
      {{0b000, {0, 0}}, {0b000, {5, 2}}, "case2 same cube part"},
      {{0b000, {0, 0}}, {0b000, {0, 1}}, "case2 butterfly-adjacent"},
      {{0b000, {0, 0}}, {0b101, {6, 1}}, "case3 generic"},
      {{0b000, {0, 0}}, {0b100, {6, 1}}, "case3 cube-adjacent (degenerate P)"},
      {{0b000, {0, 0}}, {0b101, {0, 1}}, "case3 bfly-adjacent (degenerate Q)"},
      {{0b000, {0, 0}}, {0b010, {0, 1}}, "case3 doubly adjacent"},
  };
  for (const CasePair& c : cases) {
    auto family = hb.disjoint_paths(c.u, c.v);
    ASSERT_EQ(family.size(), 7u) << c.label;
    std::vector<Path> paths;
    for (const auto& p : family) {
      Path q;
      for (const HbNode& v : p) q.push_back(static_cast<NodeId>(hb.index_of(v)));
      paths.push_back(std::move(q));
    }
    PathFamilyCheck check =
        check_disjoint_paths(g, paths, static_cast<NodeId>(hb.index_of(c.u)),
                             static_cast<NodeId>(hb.index_of(c.v)));
    EXPECT_TRUE(check.ok) << c.label << ": " << check.error;
  }
}

TEST(DisjointPaths, RejectsEqualEndpoints) {
  HyperButterfly hb(1, 3);
  EXPECT_THROW(hb.disjoint_paths({0, {0, 0}}, {0, {0, 0}}),
               std::invalid_argument);
}

TEST(DisjointPaths, PathLengthsAreBounded) {
  // Paper bounds (Theorem 5 discussion): cube-side paths ~ m+2, butterfly
  // side ~ ceil(3n/2)+2; the combined construction stays within
  // dist + O(diameter). We assert the loose structural bound
  // max length <= 2 * (m + n*2 + 4) which every family member satisfies by
  // construction (flow paths are simple paths in B_n).
  HyperButterfly hb(2, 4);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<HbIndex> pick(0, hb.num_nodes() - 1);
  for (int trial = 0; trial < 40; ++trial) {
    HbIndex s = pick(rng), t = pick(rng);
    if (s == t) continue;
    auto family = hb.disjoint_paths(hb.node_at(s), hb.node_at(t));
    for (const auto& p : family) {
      EXPECT_LE(p.size(),
                2u * (hb.cube_dimension() + 2u * hb.butterfly_dimension() + 4));
    }
  }
}

TEST(Corollary1, VertexConnectivityIsMPlus4) {
  // Exact max-flow connectivity on small instances: kappa(HB) = m+4, the
  // paper's maximal fault tolerance claim.
  {
    Graph g = HyperButterfly(1, 3).to_graph();  // 48 nodes, degree 5
    EXPECT_EQ(vertex_connectivity(g), 5u);
  }
  {
    Graph g = HyperButterfly(2, 3).to_graph();  // 96 nodes, degree 6
    EXPECT_EQ(vertex_connectivity(g), 6u);
  }
}

TEST(Corollary1, SampledConnectivityOnLargerInstance) {
  Graph g = HyperButterfly(3, 4).to_graph();  // 512 nodes, degree 7
  EXPECT_TRUE(check_local_connectivity_sampled(g, 7, 25));
}

}  // namespace
}  // namespace hbnet
