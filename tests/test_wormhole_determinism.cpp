// Determinism contract of the rewritten wormhole datapath: the simulation
// is a pure function of (topology, config, ring arity). Same seed =>
// identical WormholeStats -- across repeated runs, with or without an
// attached obs::Sink, and regardless of the process-wide thread default
// (the datapath is single-threaded by design). Also locks down the
// incremental telemetry identities: per-VC occupancy integrals must sum to
// the global buffered-flit-cycles counter, and per-link forwarded counts
// to the flits_forwarded counter.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "obs/sink.hpp"
#include "par/pool.hpp"
#include "sim/topology.hpp"
#include "sim/wormhole.hpp"

namespace hbnet {
namespace {

struct StatsSnapshot {
  std::uint64_t injected, delivered, cycles, p50, p99, max_latency;
  double mean_latency, mean_hops;
  bool deadlocked;
  std::uint64_t misroutes, escape_hops, unroutable;
  friend bool operator==(const StatsSnapshot&, const StatsSnapshot&) = default;
};

StatsSnapshot snapshot(const WormholeStats& s) {
  return {s.packets.injected(),
          s.packets.delivered(),
          s.cycles,
          s.packets.latency_percentile(0.5),
          s.packets.latency_percentile(0.99),
          s.packets.max_latency(),
          s.packets.mean_latency(),
          s.packets.mean_hops(),
          s.deadlocked,
          s.misroutes,
          s.escape_hops,
          s.unroutable};
}

WormholeConfig moderate_config(std::uint64_t seed) {
  WormholeConfig cfg;
  cfg.vcs = 6;
  cfg.injection_rate = 0.08;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 300;
  cfg.drain_cycles = 60000;
  cfg.seed = seed;
  return cfg;
}

TEST(WormholeDeterminism, SameSeedSameStats) {
  auto topo = make_butterfly_sim(4);
  for (std::uint64_t seed : {1u, 42u, 1234u}) {
    const WormholeConfig cfg = moderate_config(seed);
    const StatsSnapshot first = snapshot(run_wormhole(*topo, cfg, 4));
    EXPECT_GT(first.delivered, 0u);
    EXPECT_EQ(snapshot(run_wormhole(*topo, cfg, 4)), first)
        << "seed " << seed;
  }
}

TEST(WormholeDeterminism, DifferentSeedsDiffer) {
  auto topo = make_butterfly_sim(4);
  const StatsSnapshot a =
      snapshot(run_wormhole(*topo, moderate_config(1), 4));
  const StatsSnapshot b =
      snapshot(run_wormhole(*topo, moderate_config(2), 4));
  EXPECT_NE(a, b);  // astronomically unlikely to coincide
}

TEST(WormholeDeterminism, SinkDoesNotPerturbSimulation) {
  auto topo = make_hyper_butterfly_sim(1, 3);
  WormholeConfig cfg = moderate_config(42);
  const StatsSnapshot bare = snapshot(run_wormhole(*topo, cfg, 3));
  obs::Sink sink;
  sink.enable_trace();
  EXPECT_EQ(snapshot(run_wormhole(*topo, cfg, 3, nullptr, &sink)), bare);
}

TEST(WormholeDeterminism, ThreadDefaultDoesNotPerturbSimulation) {
  auto topo = make_butterfly_sim(4);
  const WormholeConfig cfg = moderate_config(7);
  std::vector<StatsSnapshot> runs;
  for (unsigned threads : {1u, 2u, 8u}) {
    par::set_default_threads(threads);
    runs.push_back(snapshot(run_wormhole(*topo, cfg, 4)));
  }
  par::set_default_threads(0);
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(WormholeDeterminism, DeadlockIsDeterministic) {
  // 1 VC, deep worms, heavy load on a ring-bearing topology: the any-free
  // policy deadlocks, and the cycle it is detected at is reproducible.
  auto topo = make_butterfly_sim(4);
  WormholeConfig cfg;
  cfg.vcs = 1;
  cfg.policy = VcPolicy::kAnyFree;
  cfg.buffer_depth = 1;
  cfg.flits_per_packet = 8;
  cfg.injection_rate = 0.30;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1500;
  cfg.drain_cycles = 120000;
  cfg.deadlock_patience = 500;
  const StatsSnapshot first = snapshot(run_wormhole(*topo, cfg, 4));
  EXPECT_TRUE(first.deadlocked);
  EXPECT_EQ(snapshot(run_wormhole(*topo, cfg, 4)), first);
}

TEST(WormholeDeterminism, TelemetryIdentitiesHold) {
  auto topo = make_butterfly_sim(4);
  WormholeConfig cfg = moderate_config(42);
  obs::Sink sink;
  const WormholeStats s = run_wormhole(*topo, cfg, 4, nullptr, &sink);
  ASSERT_FALSE(s.deadlocked);

  // Per-link occupancy integrals (maintained incrementally on push/pop)
  // must sum to the per-cycle buffered-flit integral, and per-link
  // forwarded counts to the global forwarded counter.
  std::uint64_t occupancy_sum = 0, forwarded_sum = 0;
  for (const obs::LinkStats& link : sink.links()) {
    ASSERT_EQ(link.vc_occupancy.size(), cfg.vcs);
    occupancy_sum += link.occupancy();
    forwarded_sum += link.forwarded;
  }
  const obs::Counter* buffered =
      sink.metrics().find_counter("wormhole.flit_cycles_buffered");
  const obs::Counter* forwarded =
      sink.metrics().find_counter("wormhole.flits_forwarded");
  ASSERT_NE(buffered, nullptr);
  ASSERT_NE(forwarded, nullptr);
  EXPECT_EQ(occupancy_sum, buffered->value());
  EXPECT_EQ(forwarded_sum, forwarded->value());
  // Every flit of every delivered packet crossed every hop of its path:
  // forwarded counts hops * flits, so it is divisible by flits/packet and
  // large enough to cover every delivered packet's full path.
  EXPECT_EQ(forwarded_sum % cfg.flits_per_packet, 0u);
  EXPECT_GE(forwarded_sum,
            s.packets.delivered() * cfg.flits_per_packet);
  EXPECT_EQ(sink.run_cycles(), s.cycles);
}

TEST(WormholeDeterminism, FaultRunIsDeterministic) {
  // The fault-adaptive datapath keeps the purity contract: same seed and
  // fault set => identical stats including the misroute/escape/unroutable
  // counters, with or without a sink attached.
  auto topo = make_hyper_butterfly_sim(2, 3);
  WormholeConfig cfg = moderate_config(42);
  cfg.vcs = vc_classes(VcPolicy::kFaultAdaptive);
  cfg.policy = VcPolicy::kFaultAdaptive;
  cfg.injection_rate = 0.03;
  WormholeFaults wf;
  wf.nodes.assign(topo->num_nodes(), 0);
  for (std::uint32_t v : {5u, 18u, 33u, 60u, 91u}) wf.nodes[v] = 1;
  wf.links.emplace_back(0, topo->neighbors(0).front());
  const StatsSnapshot first = snapshot(run_wormhole(*topo, cfg, 3, &wf));
  EXPECT_GT(first.delivered, 0u);
  EXPECT_GT(first.misroutes, 0u);
  EXPECT_EQ(snapshot(run_wormhole(*topo, cfg, 3, &wf)), first);
  obs::Sink sink;
  EXPECT_EQ(snapshot(run_wormhole(*topo, cfg, 3, &wf, &sink)), first);
}

TEST(WormholeDeterminism, FaultGridByteIdenticalAcrossThreadCounts) {
  // The acceptance bar of the fault-datapath PR: a fault-injecting
  // wormhole campaign grid (all three wormhole fault models, nonzero
  // counts) merges to byte-identical metrics JSON at 1, 2 and 8 threads.
  campaign::CampaignConfig cfg;
  cfg.m = 1;
  cfg.n = 3;
  cfg.engine = campaign::Engine::kWormhole;
  cfg.models = {campaign::FaultModel::kRandom,
                campaign::FaultModel::kAdversarial,
                campaign::FaultModel::kLinks};
  cfg.rates = {0.03};
  cfg.fault_counts = {0, 2, 4};
  cfg.trials = 2;
  cfg.wormhole.measure_cycles = 150;
  std::vector<std::string> artifacts;
  for (unsigned threads : {1u, 2u, 8u}) {
    cfg.threads = threads;
    const campaign::CampaignResult r = campaign::run_campaign(cfg);
    std::ostringstream os;
    r.metrics.write_json(os);
    artifacts.push_back(os.str());
  }
  EXPECT_EQ(artifacts[0], artifacts[1]);
  EXPECT_EQ(artifacts[0], artifacts[2]);
}

TEST(WormholeDeterminism, DrainedRunDeliversEverything) {
  auto topo = make_ccc_sim(4);
  WormholeConfig cfg = moderate_config(9);
  cfg.injection_rate = 0.02;  // below CCC(4) saturation: must fully drain
  const WormholeStats s = run_wormhole(*topo, cfg, 4);
  EXPECT_FALSE(s.deadlocked);
  EXPECT_EQ(s.packets.delivered(), s.packets.injected());
  EXPECT_EQ(s.packets.dropped(), 0u);
}

}  // namespace
}  // namespace hbnet
