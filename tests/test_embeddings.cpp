// Section 4: embeddings. Every constructive embedding is validated with the
// generic checker against materialized graphs, and the audited claims
// (Lemma 3) are probed with exact subgraph search on small instances.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/embeddings.hpp"
#include "graph/builder.hpp"
#include "graph/embedding_check.hpp"
#include "graph/subgraph_search.hpp"
#include "topology/guest_graphs.hpp"

namespace hbnet {
namespace {

// ---- grid snake ----------------------------------------------------------

void expect_valid_grid_cycle(std::uint32_t rows, std::uint32_t cols,
                             std::uint64_t k) {
  auto cells = grid_snake_cycle(rows, cols, k);
  ASSERT_EQ(cells.size(), k) << rows << "x" << cols << " k=" << k;
  // Distinct cells, consecutive (incl. wrap) differ by one grid step.
  std::vector<std::uint64_t> ids;
  for (auto [r, c] : cells) {
    ASSERT_LT(r, rows);
    ASSERT_LT(c, cols);
    ids.push_back(static_cast<std::uint64_t>(r) * cols + c);
  }
  std::sort(ids.begin(), ids.end());
  ASSERT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
      << rows << "x" << cols << " k=" << k;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    auto [r1, c1] = cells[i];
    auto [r2, c2] = cells[(i + 1) % cells.size()];
    unsigned manhattan = (r1 > r2 ? r1 - r2 : r2 - r1) +
                         (c1 > c2 ? c1 - c2 : c2 - c1);
    ASSERT_EQ(manhattan, 1u) << rows << "x" << cols << " k=" << k << " i=" << i;
  }
}

TEST(GridSnake, AllLengthsSeveralShapes) {
  for (auto [rows, cols] : {std::pair{4u, 5u}, std::pair{6u, 3u},
                            std::pair{2u, 9u}, std::pair{8u, 2u},
                            std::pair{4u, 4u}, std::pair{10u, 7u}}) {
    for (std::uint64_t k = 4; k <= std::uint64_t{rows} * cols; k += 2) {
      expect_valid_grid_cycle(rows, cols, k);
    }
  }
}

TEST(GridSnake, RejectsInvalid) {
  EXPECT_THROW(grid_snake_cycle(3, 4, 6), std::invalid_argument);  // odd rows
  EXPECT_THROW(grid_snake_cycle(4, 4, 7), std::invalid_argument);  // odd k
  EXPECT_THROW(grid_snake_cycle(4, 4, 18), std::invalid_argument); // too long
  EXPECT_THROW(grid_snake_cycle(4, 4, 2), std::invalid_argument);  // too short
}

// ---- cycles and tori in HB ------------------------------------------------

class CycleParam
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(CycleParam, EvenCyclesAllLengthsLemma2) {
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  Graph g = hb.to_graph();
  for (std::uint64_t k = 4; k <= hb.num_nodes(); k += 2) {
    auto cycle = hb_even_cycle(hb, k);
    ASSERT_EQ(cycle.size(), k);
    std::vector<HbIndex> ids;
    for (const HbNode& v : cycle) ids.push_back(hb.index_of(v));
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE(g.has_edge(static_cast<NodeId>(ids[i]),
                             static_cast<NodeId>(ids[(i + 1) % ids.size()])))
          << "k=" << k << " i=" << i;
    }
    std::sort(ids.begin(), ids.end());
    ASSERT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
        << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, CycleParam,
                         ::testing::Values(std::pair{1u, 3u}, std::pair{2u, 3u},
                                           std::pair{3u, 3u},
                                           std::pair{2u, 4u}, std::pair{1u, 4u},
                                           std::pair{3u, 4u}));

TEST(Embeddings, EvenCycleRejectsInvalid) {
  HyperButterfly hb(2, 3);
  EXPECT_THROW(hb_even_cycle(hb, 5), std::invalid_argument);
  EXPECT_THROW(hb_even_cycle(hb, 2), std::invalid_argument);
  EXPECT_THROW(hb_even_cycle(hb, hb.num_nodes() + 2), std::invalid_argument);
}

TEST(Embeddings, TorusIsSubgraph) {
  HyperButterfly hb(2, 3);
  Graph g = hb.to_graph();
  auto grid = hb_torus(hb, 4, 2, 0);  // M(4, 6): 4-row, 6-col torus
  ASSERT_EQ(grid.size(), 4u);
  ASSERT_EQ(grid[0].size(), 6u);
  Graph guest = make_torus(4, 6);
  std::vector<NodeId> map(guest.num_nodes());
  for (std::uint32_t r = 0; r < 4; ++r) {
    for (std::uint32_t c = 0; c < 6; ++c) {
      map[r * 6 + c] = static_cast<NodeId>(hb.index_of(grid[r][c]));
    }
  }
  EmbeddingCheck check = check_embedding(guest, g, map);
  EXPECT_TRUE(check.dilation_one) << check.error;
}

TEST(Embeddings, TorusWithBounceColumns) {
  // Column cycle from the kn + 2k' family (k'=2 bounces): M(4, 2*3+4).
  HyperButterfly hb(2, 3);
  Graph g = hb.to_graph();
  auto grid = hb_torus(hb, 4, 2, 2);
  ASSERT_EQ(grid[0].size(), 10u);
  Graph guest = make_torus(4, 10);
  std::vector<NodeId> map(guest.num_nodes());
  for (std::uint32_t r = 0; r < 4; ++r) {
    for (std::uint32_t c = 0; c < 10; ++c) {
      map[r * 10 + c] = static_cast<NodeId>(hb.index_of(grid[r][c]));
    }
  }
  EmbeddingCheck check = check_embedding(guest, g, map);
  EXPECT_TRUE(check.dilation_one) << check.error;
}

TEST(Embeddings, TorusRejectsBadRows) {
  HyperButterfly hb(2, 3);
  EXPECT_THROW(hb_torus(hb, 3, 2, 0), std::invalid_argument);  // odd rows
  EXPECT_THROW(hb_torus(hb, 8, 2, 0), std::invalid_argument);  // > 2^m
}

// ---- trees ----------------------------------------------------------------

TEST(Embeddings, DrtSpansHypercube) {
  for (unsigned k = 2; k <= 9; ++k) {
    auto layout = drt_in_hypercube(k);
    ASSERT_EQ(layout.size(), std::size_t{1} << k) << "k=" << k;
    Graph guest = make_double_rooted_tree(k);
    Graph host = Hypercube(k).to_graph();
    std::vector<NodeId> map(layout.begin(), layout.end());
    EmbeddingCheck check = check_embedding(guest, host, map);
    EXPECT_TRUE(check.dilation_one) << "k=" << k << ": " << check.error;
  }
}

TEST(Embeddings, TreeInHypercube) {
  for (unsigned h = 1; h <= 9; ++h) {
    auto layout = tree_in_hypercube(h);
    ASSERT_EQ(layout.size(), (std::size_t{1} << h) - 1);
    Graph guest = make_complete_binary_tree(h);
    Graph host = Hypercube(h + 1).to_graph();
    std::vector<NodeId> map(layout.begin(), layout.end());
    EmbeddingCheck check = check_embedding(guest, host, map);
    EXPECT_TRUE(check.dilation_one) << "h=" << h << ": " << check.error;
  }
}

TEST(Embeddings, TreeInButterfly) {
  for (unsigned n = 3; n <= 7; ++n) {
    Butterfly bf(n);
    Graph host = bf.to_graph();
    for (unsigned h = 1; h <= n; ++h) {
      auto layout = tree_in_butterfly(bf, h);
      Graph guest = make_complete_binary_tree(h);
      std::vector<NodeId> map;
      for (BflyNode v : layout) map.push_back(bf.index_of(v));
      EmbeddingCheck check = check_embedding(guest, host, map);
      EXPECT_TRUE(check.dilation_one)
          << "n=" << n << " h=" << h << ": " << check.error;
    }
  }
}

TEST(Embeddings, TreeInHb) {
  for (auto [m, n] : {std::pair{1u, 3u}, std::pair{2u, 3u}, std::pair{3u, 3u},
                      std::pair{2u, 4u}, std::pair{4u, 4u}}) {
    HyperButterfly hb(m, n);
    Graph host = hb.to_graph();
    auto layout = tree_in_hb(hb);
    unsigned h = (m < 2) ? n : (m + n - 2);
    Graph guest = make_complete_binary_tree(h);
    ASSERT_EQ(layout.size(), guest.num_nodes()) << "m=" << m << " n=" << n;
    std::vector<NodeId> map;
    for (const HbNode& v : layout) {
      map.push_back(static_cast<NodeId>(hb.index_of(v)));
    }
    EmbeddingCheck check = check_embedding(guest, host, map);
    EXPECT_TRUE(check.dilation_one)
        << "m=" << m << " n=" << n << ": " << check.error;
  }
}

TEST(Embeddings, MeshOfTreesTheorem4) {
  for (auto [m, n, p, q] :
       {std::tuple{3u, 3u, 1u, 1u}, std::tuple{3u, 3u, 1u, 2u},
        std::tuple{4u, 4u, 2u, 3u}, std::tuple{4u, 3u, 1u, 2u},
        std::tuple{5u, 3u, 3u, 2u}}) {
    HyperButterfly hb(m, n);
    Graph host = hb.to_graph();
    auto layout = mesh_of_trees_in_hb(hb, p, q);
    Graph guest = make_mesh_of_trees(p, q);
    ASSERT_EQ(layout.size(), guest.num_nodes());
    std::vector<NodeId> map;
    for (const HbNode& v : layout) {
      map.push_back(static_cast<NodeId>(hb.index_of(v)));
    }
    EmbeddingCheck check = check_embedding(guest, host, map);
    EXPECT_TRUE(check.dilation_one)
        << "m=" << m << " n=" << n << " p=" << p << " q=" << q << ": "
        << check.error;
  }
}

TEST(Embeddings, MeshOfTreesRejectsOutOfRange) {
  HyperButterfly hb(3, 3);
  EXPECT_THROW(mesh_of_trees_in_hb(hb, 2, 1), std::invalid_argument);  // p>m-2
  EXPECT_THROW(mesh_of_trees_in_hb(hb, 1, 3), std::invalid_argument);  // q>n-1
}

// ---- Lemma 3 audit ---------------------------------------------------------

TEST(Lemma3Audit, T4InB3ByExactSearch) {
  // Lemma 3 claims T(n+1) subset of B_n. For n=3: T(4) has 15 vertices,
  // B_3 has 24. The exact search settles the instance; the result is
  // recorded in EXPERIMENTS.md.
  Butterfly bf(3);
  Graph host = bf.to_graph();
  Graph guest = make_complete_binary_tree(4);
  SubgraphSearchOptions opts;
  opts.max_steps = 100'000'000;
  auto r = find_subgraph(guest, host, opts);
  ASSERT_TRUE(r.exhaustive) << "search budget exhausted";
  if (r.embedding) {
    EXPECT_TRUE(check_embedding(guest, host, *r.embedding).dilation_one);
  }
  RecordProperty("t4_in_b3", r.embedding ? "yes" : "no");
}

}  // namespace
}  // namespace hbnet
