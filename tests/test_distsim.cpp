// Synchronous message-passing engine and leader election.
#include <gtest/gtest.h>

#include "core/hyper_butterfly.hpp"
#include "distsim/engine.hpp"
#include "distsim/leader_election.hpp"
#include "topology/guest_graphs.hpp"

namespace hbnet {
namespace {

TEST(Engine, PingAcrossAnEdge) {
  Graph g = make_path(2);
  std::vector<int> received(2, 0);
  Protocol p;
  p.on_init = [](ProcessContext& ctx) {
    if (ctx.id() == 0) ctx.send(0, {42});
  };
  p.on_round = [&received](ProcessContext& ctx,
                           const std::vector<Delivery>& in) {
    for (const Delivery& d : in) {
      received[ctx.id()] += static_cast<int>(d.payload[0]);
    }
    ctx.halt();
  };
  RunResult r = run_protocol(g, p);
  EXPECT_TRUE(r.all_halted);
  EXPECT_EQ(r.messages, 1u);
  EXPECT_EQ(received[1], 42);
  EXPECT_EQ(received[0], 0);
}

TEST(Engine, QuiescenceStopsRun) {
  Graph g = make_cycle(5);
  Protocol p;
  p.on_round = [](ProcessContext&, const std::vector<Delivery>&) {};
  RunResult r = run_protocol(g, p);
  EXPECT_EQ(r.messages, 0u);
  EXPECT_FALSE(r.all_halted);
  EXPECT_LE(r.rounds, 2u);
}

TEST(Engine, LinkIndicesAreConsistent) {
  // Echo test: node 0 sends its id on every link; each receiver answers on
  // the arrival link; node 0 must get back exactly deg(0) echoes.
  Graph g = make_cycle(6);
  std::vector<int> echoes(6, 0);
  Protocol p;
  p.on_init = [](ProcessContext& ctx) {
    if (ctx.id() == 0) ctx.send_all({0});
  };
  p.on_round = [&echoes](ProcessContext& ctx,
                         const std::vector<Delivery>& in) {
    for (const Delivery& d : in) {
      if (d.payload[0] == 0 && ctx.id() != 0) {
        ctx.send(d.link, {1});
      } else if (d.payload[0] == 1) {
        ++echoes[ctx.id()];
      }
    }
  };
  RunResult r = run_protocol(g, p, 5);
  (void)r;
  EXPECT_EQ(echoes[0], 2);
}

TEST(LeaderElection, FloodMaxOnRing) {
  Graph g = make_cycle(16);
  ElectionResult r = flood_max_election(g);
  EXPECT_TRUE(r.agreement);
  EXPECT_EQ(r.leader, 15u);
  // Information must travel the diameter.
  EXPECT_GE(r.run.rounds, 8u);
}

TEST(LeaderElection, FloodMaxOnHb) {
  HyperButterfly hb(2, 3);
  ElectionResult r = flood_max_election(hb.to_graph());
  EXPECT_TRUE(r.agreement);
  EXPECT_EQ(r.leader, hb.num_nodes() - 1);
}

TEST(LeaderElection, StructuredElectsMaxEverywhere) {
  for (auto [m, n] : {std::pair{1u, 3u}, std::pair{2u, 3u}, std::pair{3u, 3u},
                      std::pair{2u, 4u}, std::pair{3u, 4u}}) {
    HyperButterfly hb(m, n);
    ElectionResult r = hb_structured_election(hb);
    EXPECT_TRUE(r.agreement) << "m=" << m << " n=" << n;
    EXPECT_EQ(r.leader, hb.num_nodes() - 1) << "m=" << m << " n=" << n;
    // Round bound: m + floor(3n/2) (+1 engine round slack).
    EXPECT_LE(r.run.rounds, m + 3 * n / 2 + 2) << "m=" << m << " n=" << n;
  }
}

TEST(LeaderElection, StructuredBeatsFloodMaxOnMessages) {
  HyperButterfly hb(3, 4);
  ElectionResult flood = flood_max_election(hb.to_graph());
  ElectionResult structured = hb_structured_election(hb);
  ASSERT_TRUE(flood.agreement);
  ASSERT_TRUE(structured.agreement);
  EXPECT_EQ(flood.leader, structured.leader);
  // The structured algorithm sends O(N(m+n)) total; FloodMax with
  // suppression floods every improvement wave.
  EXPECT_LT(structured.run.messages, flood.run.messages);
}

}  // namespace
}  // namespace hbnet
