// Analysis layer: measured summaries and the Figure-1 / Figure-2 table
// generators.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/properties.hpp"
#include "analysis/tables.hpp"
#include "core/hyper_butterfly.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {
namespace {

TEST(Properties, SummarizeHypercube) {
  SummaryOptions opts;
  opts.vertex_transitive = true;
  TopologySummary s = summarize("H(4)", Hypercube(4).to_graph(), opts);
  EXPECT_EQ(s.nodes, 16u);
  EXPECT_EQ(s.edges, 32u);
  EXPECT_TRUE(s.regular);
  EXPECT_EQ(s.min_degree, 4u);
  ASSERT_TRUE(s.diameter.has_value());
  EXPECT_EQ(*s.diameter, 4u);
  ASSERT_TRUE(s.connectivity.has_value());
  EXPECT_EQ(*s.connectivity, 4u);
  EXPECT_TRUE(s.connectivity_exact);
}

TEST(Properties, SummarizeHbMatchesTheorems) {
  SummaryOptions opts;
  opts.vertex_transitive = true;
  HyperButterfly hb(2, 3);
  TopologySummary s = summarize("HB(2,3)", hb.to_graph(), opts);
  EXPECT_EQ(s.nodes, hb.num_nodes());
  EXPECT_EQ(s.edges, hb.num_edges());
  EXPECT_TRUE(s.regular);
  EXPECT_EQ(s.min_degree, hb.degree());
  ASSERT_TRUE(s.connectivity.has_value());
  EXPECT_EQ(*s.connectivity, hb.degree());  // Corollary 1
}

TEST(Properties, SampledConnectivityOnLargerGraph) {
  SummaryOptions opts;
  opts.vertex_transitive = true;
  opts.connectivity_node_cap = 10;  // force the sampled path
  opts.connectivity_samples = 8;
  TopologySummary s = summarize("H(6)", Hypercube(6).to_graph(), opts);
  ASSERT_TRUE(s.connectivity.has_value());
  EXPECT_FALSE(s.connectivity_exact);
  EXPECT_EQ(*s.connectivity, 6u);  // samples agree with the true value
}

TEST(Tables, Figure1SmallInstance) {
  ComparisonTable t = figure1_table(2, 3, /*measure=*/true);
  ASSERT_EQ(t.columns.size(), 4u);
  ASSERT_GE(t.rows.size(), 6u);
  // Column order: H(5), B(5), HD(2,3), HB(2,3); row 0 = Nodes.
  EXPECT_EQ(t.cells[0][0].measured, "32");        // 2^5
  EXPECT_EQ(t.cells[0][1].measured, "160");       // 5*2^5
  EXPECT_EQ(t.cells[0][2].measured, "32");        // 2^5
  EXPECT_EQ(t.cells[0][3].measured, "96");        // 3*2^5
  // Regularity row.
  EXPECT_EQ(t.cells[2][2].measured, "no");
  EXPECT_EQ(t.cells[2][3].measured, "yes");
  // Formula column matches the paper.
  EXPECT_EQ(t.cells[0][3].formula, "96");
  EXPECT_EQ(t.cells[5][3].formula, "6");  // fault tolerance m+4
}

TEST(Tables, Figure1FormulasOnly) {
  ComparisonTable t = figure1_table(3, 8, /*measure=*/false);
  EXPECT_EQ(t.cells[0][3].formula, "16384");  // HB(3,8) nodes
  EXPECT_EQ(t.cells[4][3].formula, "15");     // diameter 3 + 12
  EXPECT_EQ(t.cells[0][3].measured, "0");     // unmeasured sentinel
}

TEST(Tables, PrintProducesAlignedOutput) {
  ComparisonTable t = figure1_table(2, 3, /*measure=*/false);
  std::ostringstream os;
  print_table(os, t);
  std::string text = os.str();
  EXPECT_NE(text.find("Parameter"), std::string::npos);
  EXPECT_NE(text.find("HB(2,3)"), std::string::npos);
  EXPECT_NE(text.find("Fault-tolerance"), std::string::npos);
}

}  // namespace
}  // namespace hbnet
