// Parallel BFS sweeps and channel-dependency deadlock analysis.
#include <gtest/gtest.h>

#include "analysis/deadlock.hpp"
#include "graph/builder.hpp"
#include "graph/parallel_bfs.hpp"
#include "sim/topology.hpp"
#include "topology/guest_graphs.hpp"
#include "topology/hyper_debruijn.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {
namespace {

TEST(ParallelBfs, DiameterMatchesSerial) {
  for (auto g : {Hypercube(7).to_graph(), HyperDeBruijn(2, 5).to_graph(),
                 make_torus(6, 7)}) {
    EXPECT_EQ(parallel_diameter(g, 4), diameter(g));
    EXPECT_EQ(parallel_diameter(g, 1), diameter(g));
  }
}

TEST(ParallelBfs, AverageDistanceMatchesExactSerial) {
  Graph g = Hypercube(6).to_graph();
  double serial = average_distance(g, g.num_nodes());  // exact when samples=n
  EXPECT_NEAR(parallel_average_distance(g, 4), serial, 1e-9);
}

TEST(ParallelBfs, DisconnectedReportsUnreachable) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_EQ(parallel_diameter(b.build(), 2), kUnreachable);
}

TEST(Deadlock, EcubeHypercubeRoutingIsDeadlockFree) {
  // Greedy LSB-first bit correction is e-cube routing: channels are used
  // in strictly increasing dimension order -> acyclic CDG.
  auto topo = make_hypercube_sim(4);
  CdgAnalysis a = analyze_routing_deadlock(
      topo->num_nodes(),
      [&](std::uint32_t s, std::uint32_t t) { return topo->route(s, t); });
  EXPECT_TRUE(a.acyclic);
  EXPECT_GT(a.channels, 0u);
  EXPECT_TRUE(a.witness_cycle.empty());
}

TEST(Deadlock, ButterflyLevelRingIsNotDeadlockFree) {
  // Routes wind around the level cycle: wrap dependencies close a cycle in
  // the CDG -- the classical reason wrapped rings need virtual channels.
  auto topo = make_butterfly_sim(3);
  CdgAnalysis a = analyze_routing_deadlock(
      topo->num_nodes(),
      [&](std::uint32_t s, std::uint32_t t) { return topo->route(s, t); });
  EXPECT_FALSE(a.acyclic);
  EXPECT_GE(a.witness_cycle.size(), 2u);
}

TEST(Deadlock, HyperButterflyInheritsRingCycles) {
  auto topo = make_hyper_butterfly_sim(1, 3);
  CdgAnalysis a = analyze_routing_deadlock(
      topo->num_nodes(),
      [&](std::uint32_t s, std::uint32_t t) { return topo->route(s, t); },
      /*sample_stride=*/3);
  EXPECT_FALSE(a.acyclic);
}

TEST(Deadlock, SimplePathGraphIsAcyclic) {
  // Routing on a path graph can only ever go monotonically: acyclic.
  Graph p = make_path(6);
  CdgAnalysis a = analyze_routing_deadlock(
      6, [&](std::uint32_t s, std::uint32_t t) {
        std::vector<std::uint32_t> path;
        for (std::uint32_t v = s; v != t; v += (t > s ? 1 : -1)) {
          path.push_back(v);
        }
        path.push_back(t);
        return path;
      });
  EXPECT_TRUE(a.acyclic);
}

TEST(Deadlock, SampledModeStillFindsButterflyCycle) {
  auto topo = make_butterfly_sim(4);
  CdgAnalysis a = analyze_routing_deadlock(
      topo->num_nodes(),
      [&](std::uint32_t s, std::uint32_t t) { return topo->route(s, t); },
      /*sample_stride=*/5);
  EXPECT_FALSE(a.acyclic);
}

}  // namespace
}  // namespace hbnet
