// Tests for tools/hblint: every rule has a flagged fixture that fires and a
// clean fixture that stays silent, suppressions silence exactly one line,
// and the real source tree lints clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "hblint/hblint.hpp"

#ifndef HBNET_SOURCE_DIR
#error "HBNET_SOURCE_DIR must be defined by the build"
#endif

namespace {

std::string fixture(const std::string& name) {
  return std::string(HBNET_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

std::size_t count_rule(const std::vector<hblint::Diagnostic>& diags,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const hblint::Diagnostic& d) { return d.rule == rule; }));
}

std::string dump(const std::vector<hblint::Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) {
    out += d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
           d.message + "\n";
  }
  return out;
}

struct FixturePair {
  const char* rule;
  const char* flagged;
  const char* clean;
};

const FixturePair kPairs[] = {
    {"no-rand", "no_rand_flagged.cpp", "no_rand_clean.cpp"},
    {"no-time-seed", "no_time_seed_flagged.cpp", "no_time_seed_clean.cpp"},
    {"no-random-device", "no_random_device_flagged.cpp",
     "no_random_device_clean.cpp"},
    {"no-wall-clock", "no_wall_clock_flagged.cpp", "no_wall_clock_clean.cpp"},
    {"wall-clock-outside-obs", "wall_clock_outside_obs_flagged.cpp",
     "wall_clock_outside_obs_clean.cpp"},
    {"unordered-iteration", "unordered_iteration_flagged.cpp",
     "unordered_iteration_clean.cpp"},
    {"sink-default", "sink_default_flagged.hpp", "sink_default_clean.hpp"},
    {"trace-macro-only", "trace_macro_only_flagged.cpp",
     "trace_macro_only_clean.cpp"},
    {"no-raw-new", "no_raw_new_flagged.cpp", "no_raw_new_clean.cpp"},
    {"no-bare-assert", "no_bare_assert_flagged.cpp",
     "no_bare_assert_clean.cpp"},
    {"parallel-capture", "parallel_capture_flagged.cpp",
     "parallel_capture_clean.cpp"},
    {"layering", "layering_flagged.cpp", "layering_clean.cpp"},
    {"signature-contract", "signature_contract_flagged.cpp",
     "signature_contract_clean.cpp"},
    {"emission-order", "emission_order_flagged.cpp",
     "emission_order_clean.cpp"},
    {"exchange-invariant", "exchange_invariant_flagged.cpp",
     "exchange_invariant_clean.cpp"},
    {"provider-generic", "provider_generic_flagged.cpp",
     "provider_generic_clean.cpp"},
};

TEST(Hblint, EveryRuleHasFlaggedFixture) {
  for (const FixturePair& p : kPairs) {
    auto diags = hblint::lint_file(fixture(p.flagged));
    EXPECT_EQ(count_rule(diags, "io"), 0u) << p.flagged << " unreadable";
    EXPECT_GE(count_rule(diags, p.rule), 1u)
        << p.flagged << " did not trigger " << p.rule << "\n"
        << dump(diags);
  }
}

TEST(Hblint, EveryRuleHasCleanFixture) {
  for (const FixturePair& p : kPairs) {
    auto diags = hblint::lint_file(fixture(p.clean));
    EXPECT_TRUE(diags.empty())
        << p.clean << " should lint clean:\n"
        << dump(diags);
  }
}

TEST(Hblint, RuleCatalogueMatchesFixtures) {
  const auto& catalogue = hblint::rules();
  ASSERT_EQ(catalogue.size(), std::size(kPairs));
  for (const FixturePair& p : kPairs) {
    bool listed = std::any_of(
        catalogue.begin(), catalogue.end(),
        [&](const hblint::RuleInfo& r) { return p.rule == std::string(r.name); });
    EXPECT_TRUE(listed) << p.rule << " missing from rules()";
  }
}

TEST(Hblint, PerLineSuppressionSilencesOnlyThatLine) {
  auto diags = hblint::lint_file(fixture("suppression_fixture.cpp"));
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_EQ(diags[0].rule, "no-rand");
  EXPECT_EQ(diags[0].line, 9u);
}

TEST(Hblint, AllowFileSuppressesEverywhere) {
  const std::string content =
      "// hblint-scope: src\n"
      "// hblint: allow-file(no-rand)\n"
      "#include <cstdlib>\n"
      "int f() { return std::rand(); }\n"
      "int g() { return std::rand(); }\n";
  EXPECT_TRUE(hblint::lint_content("src/fake.cpp", content).empty());
}

TEST(Hblint, ScopeOfPath) {
  EXPECT_EQ(hblint::scope_of_path("src/sim/simulator.cpp"),
            hblint::Scope::kLibrary);
  EXPECT_EQ(hblint::scope_of_path("tools/bench_json.cpp"),
            hblint::Scope::kTools);
  EXPECT_EQ(hblint::scope_of_path("tests/test_sim.cpp"),
            hblint::Scope::kTests);
}

TEST(Hblint, LibraryOnlyRulesSkipTests) {
  // A wall clock in a test file is allowed; the same line in src/ is not.
  const std::string content =
      "#include <chrono>\n"
      "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(hblint::lint_content("tests/test_timing.cpp", content).empty());
  auto diags = hblint::lint_content("src/sim/timing.cpp", content);
  EXPECT_EQ(count_rule(diags, "no-wall-clock"), 1u) << dump(diags);
}

TEST(Hblint, RealTreeLintsCleanAgainstBaseline) {
  const std::string root(HBNET_SOURCE_DIR);
  auto files =
      hblint::collect_files({root + "/src", root + "/tools", root + "/tests"});
  ASSERT_GT(files.size(), 50u);  // sanity: the tree was actually walked
  const auto all = hblint::lint_tree(files);
  const auto baseline =
      hblint::load_baseline(root + "/tools/hblint/hblint-baseline.txt");
  const auto split = hblint::apply_baseline(all, baseline);
  EXPECT_TRUE(split.unbaselined.empty()) << dump(split.unbaselined);
}

TEST(Hblint, CrossFileSignatureMismatch) {
  // The header declares run_paired(int, Sink*, ProgressBoard*); the .cpp
  // definition dropped the ProgressBoard. Only the tree-level pass can see
  // the disagreement.
  auto diags = hblint::lint_tree(
      {fixture("signature_mismatch.hpp"), fixture("signature_mismatch.cpp")});
  EXPECT_EQ(count_rule(diags, "signature-contract"), 1u) << dump(diags);
  ASSERT_FALSE(diags.empty());
  EXPECT_NE(diags[0].file.find("signature_mismatch.cpp"), std::string::npos);
  // Each file alone is silent: the per-file rules have nothing to object
  // to, so the finding is genuinely cross-file.
  EXPECT_TRUE(hblint::lint_file(fixture("signature_mismatch.hpp")).empty());
  EXPECT_TRUE(hblint::lint_file(fixture("signature_mismatch.cpp")).empty());
}

TEST(Hblint, BaselineAbsorbsUpToCountAndFailsOnGrowth) {
  const hblint::Baseline baseline = hblint::parse_baseline(
      "# comment line\n"
      "no-rand src/sim/a.cpp 2\n");
  const std::vector<hblint::Diagnostic> two = {
      {"/abs/path/src/sim/a.cpp", 3, "no-rand", "m"},
      {"/abs/path/src/sim/a.cpp", 9, "no-rand", "m"},
  };
  const auto ok = hblint::apply_baseline(two, baseline);
  EXPECT_TRUE(ok.unbaselined.empty()) << dump(ok.unbaselined);
  EXPECT_EQ(ok.baselined, 2u);

  // One more finding in the group: the whole group is reported (the
  // line-number-free format cannot tell old findings from new).
  std::vector<hblint::Diagnostic> three = two;
  three.push_back({"/abs/path/src/sim/a.cpp", 12, "no-rand", "m"});
  const auto grown = hblint::apply_baseline(three, baseline);
  EXPECT_EQ(grown.unbaselined.size(), 3u);
  EXPECT_EQ(grown.baselined, 0u);

  // A different rule or file is not covered by the entry at all.
  const std::vector<hblint::Diagnostic> other = {
      {"src/sim/b.cpp", 1, "no-rand", "m"}};
  EXPECT_EQ(hblint::apply_baseline(other, baseline).unbaselined.size(), 1u);
}

TEST(Hblint, BaselineRoundTripsThroughSerialize) {
  const std::vector<hblint::Diagnostic> diags = {
      {"src/sim/a.cpp", 3, "no-rand", "m"},
      {"src/sim/a.cpp", 9, "no-rand", "m"},
      {"src/graph/b.cpp", 1, "layering", "m"},
  };
  const hblint::Baseline round =
      hblint::parse_baseline(hblint::serialize_baseline(diags));
  ASSERT_EQ(round.entries.size(), 2u);
  EXPECT_EQ((round.entries.at({"no-rand", "src/sim/a.cpp"})), 2u);
  EXPECT_EQ((round.entries.at({"layering", "src/graph/b.cpp"})), 1u);
  EXPECT_TRUE(hblint::apply_baseline(diags, round).unbaselined.empty());
}

TEST(Hblint, SarifReportCarriesRequiredFields) {
  const std::vector<hblint::Diagnostic> diags = {
      {"/abs/src/sim/a.cpp", 42, "no-rand", "uses \"rand\" badly"},
  };
  const std::string sarif = hblint::sarif_report(diags);
  // Required SARIF 2.1.0 structure for code-scanning upload.
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"runs\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"hblint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"no-rand\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 42"), std::string::npos);
  // Artifact URIs are repo-relative, never absolute.
  EXPECT_NE(sarif.find("\"uri\": \"src/sim/a.cpp\""), std::string::npos);
  EXPECT_EQ(sarif.find("/abs/"), std::string::npos);
  // The message's quotes must be escaped into valid JSON.
  EXPECT_NE(sarif.find("uses \\\"rand\\\" badly"), std::string::npos);
  // Every catalogue rule is listed in the driver.
  for (const auto& r : hblint::rules()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(r.name) + "\""),
              std::string::npos)
        << r.name;
  }
}

TEST(Hblint, CollectFilesSkipsFixturesAndBuild) {
  const std::string root(HBNET_SOURCE_DIR);
  auto files = hblint::collect_files({root + "/tests"});
  for (const auto& f : files) {
    EXPECT_EQ(f.find("lint_fixtures"), std::string::npos) << f;
    EXPECT_EQ(f.find("/build"), std::string::npos) << f;
  }
}

}  // namespace
