// Hypercube H_m: structure, routing optimality, the m-disjoint-path family,
// Gray-code cycles and the Cayley audit (Section 2.1 substrate).
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/connectivity.hpp"
#include "graph/disjoint_paths.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {
namespace {

TEST(Hypercube, CountsAndBasics) {
  Hypercube h(5);
  EXPECT_EQ(h.num_nodes(), 32u);
  EXPECT_EQ(h.num_edges(), 80u);
  EXPECT_EQ(h.degree(), 5u);
  EXPECT_EQ(h.diameter(), 5u);
  EXPECT_EQ(h.neighbors(0).size(), 5u);
}

TEST(Hypercube, RejectsBadDimension) {
  EXPECT_THROW(Hypercube(0), std::invalid_argument);
  EXPECT_THROW(Hypercube(27), std::invalid_argument);
}

TEST(Hypercube, DistanceIsHamming) {
  EXPECT_EQ(Hypercube::distance(0b1010, 0b0110), 2u);
  EXPECT_EQ(Hypercube::distance(7, 7), 0u);
}

TEST(Hypercube, RouteIsShortestAndValid) {
  Hypercube h(6);
  for (CubeWord u : {0u, 13u, 63u}) {
    for (CubeWord v : {5u, 21u, 42u, 63u}) {
      auto path = h.route(u, v);
      EXPECT_EQ(path.size(), Hypercube::distance(u, v) + 1);
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      for (std::size_t i = 1; i < path.size(); ++i) {
        EXPECT_EQ(Hypercube::distance(path[i - 1], path[i]), 1u);
      }
    }
  }
}

class HypercubeParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(HypercubeParam, GraphMatchesTheory) {
  const unsigned m = GetParam();
  Hypercube h(m);
  Graph g = h.to_graph();
  EXPECT_EQ(g.num_nodes(), h.num_nodes());
  EXPECT_EQ(g.num_edges(), h.num_edges());
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), m);
  EXPECT_EQ(diameter_vertex_transitive(g), m);
}

TEST_P(HypercubeParam, CayleyAudit) {
  CayleyAudit a = audit(Hypercube(GetParam()).cayley_spec());
  EXPECT_TRUE(a.all_ok());
}

TEST_P(HypercubeParam, DisjointPathsExhaustive) {
  const unsigned m = GetParam();
  Hypercube h(m);
  Graph g = h.to_graph();
  for (CubeWord v = 1; v < h.num_nodes(); ++v) {
    auto family = h.disjoint_paths(0, v);
    ASSERT_EQ(family.size(), m);
    std::vector<Path> as_paths;
    for (const auto& p : family) {
      as_paths.emplace_back(p.begin(), p.end());
    }
    PathFamilyCheck check = check_disjoint_paths(g, as_paths, 0, v);
    EXPECT_TRUE(check.ok) << "v=" << v << ": " << check.error;
    // Saad-Schultz length bound: dist + 2.
    EXPECT_LE(max_path_length(as_paths), Hypercube::distance(0, v) + 2);
  }
}

TEST_P(HypercubeParam, EvenCyclesAllLengths) {
  const unsigned m = GetParam();
  Hypercube h(m);
  Graph g = h.to_graph();
  for (std::uint64_t k = 4; k <= h.num_nodes(); k += 2) {
    auto cycle = h.even_cycle(k);
    ASSERT_EQ(cycle.size(), k);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_TRUE(g.has_edge(cycle[i], cycle[(i + 1) % k]))
          << "k=" << k << " i=" << i;
    }
    std::vector<CubeWord> sorted = cycle;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "repeated vertex in cycle k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HypercubeParam, ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u));

TEST(Hypercube, EvenCycleRejectsInvalid) {
  Hypercube h(4);
  EXPECT_THROW(h.even_cycle(3), std::invalid_argument);   // odd
  EXPECT_THROW(h.even_cycle(2), std::invalid_argument);   // too short
  EXPECT_THROW(h.even_cycle(18), std::invalid_argument);  // > 2^m
}

TEST(Hypercube, DisjointPathsRejectEqualEndpoints) {
  EXPECT_THROW(Hypercube(3).disjoint_paths(1, 1), std::invalid_argument);
}

TEST(Hypercube, GrayCodeAdjacency) {
  for (std::uint64_t i = 0; i + 1 < 64; ++i) {
    EXPECT_EQ(Hypercube::distance(Hypercube::gray(i), Hypercube::gray(i + 1)),
              1u);
  }
}

}  // namespace
}  // namespace hbnet
