// Broadcast (the paper's future-work extension): completion, lower bound,
// and the structured (binomial + per-layer) schedule.
#include <gtest/gtest.h>

#include "core/broadcast.hpp"
#include "graph/builder.hpp"
#include "topology/guest_graphs.hpp"

namespace hbnet {
namespace {

TEST(Broadcast, LowerBoundIsCeilLog2) {
  HyperButterfly hb(2, 3);  // 96 nodes
  EXPECT_EQ(broadcast_lower_bound(hb), 7u);  // 2^7 = 128 >= 96
}

TEST(Broadcast, GreedyCompletesAndRespectsLowerBound) {
  for (auto [m, n] : {std::pair{1u, 3u}, std::pair{2u, 3u}, std::pair{2u, 4u}}) {
    HyperButterfly hb(m, n);
    BroadcastResult r = hb_greedy_broadcast(hb, HbNode{0, {0, 0}});
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.informed, hb.num_nodes());
    EXPECT_GE(r.rounds, broadcast_lower_bound(hb));
    // Sanity: greedy should land within a small constant factor.
    EXPECT_LE(r.rounds, 3u * broadcast_lower_bound(hb) + 8);
  }
}

TEST(Broadcast, StructuredCompletesNearOptimal) {
  for (auto [m, n] : {std::pair{2u, 3u}, std::pair{3u, 4u}, std::pair{4u, 4u}}) {
    HyperButterfly hb(m, n);
    BroadcastResult r = hb_structured_broadcast(hb, HbNode{0, {0, 0}});
    EXPECT_TRUE(r.complete);
    // m rounds for the cube phase + O(n + log n) for the butterfly layers:
    // asymptotically optimal vs lower bound m + n + log2(n).
    EXPECT_GE(r.rounds, broadcast_lower_bound(hb));
    EXPECT_LE(r.rounds, m + 4 * n + 8);
  }
}

TEST(Broadcast, GreedyRoundsOnPathGraph) {
  // A path broadcast from one end takes exactly n-1 rounds (pipelining
  // cannot help a 1-wide frontier).
  Graph p = make_path(9);
  EXPECT_EQ(greedy_broadcast_rounds(p, 0), 8u);
}

TEST(Broadcast, GreedyRoundsOnStar) {
  // A star from the hub: one leaf per round.
  GraphBuilder b(6);
  for (NodeId v = 1; v < 6; ++v) b.add_edge(0, v);
  EXPECT_EQ(greedy_broadcast_rounds(b.build(), 0), 5u);
}

TEST(Broadcast, SourceInvariance) {
  // Vertex transitivity: rounds should not depend on the source (greedy is
  // heuristic, allow a 2-round wobble).
  HyperButterfly hb(2, 3);
  BroadcastResult a = hb_greedy_broadcast(hb, HbNode{0, {0, 0}});
  BroadcastResult b = hb_greedy_broadcast(hb, HbNode{3, {7, 2}});
  EXPECT_LE(a.rounds > b.rounds ? a.rounds - b.rounds : b.rounds - a.rounds,
            2u);
}

}  // namespace
}  // namespace hbnet
