// Node-to-set disjoint paths: |S| <= m+4 targets, paths disjoint except at
// the source (Menger consequence of Corollary 1).
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "core/node_to_set.hpp"

namespace hbnet {
namespace {

void expect_valid_family(const HyperButterfly& hb, HbNode u,
                         const std::vector<HbNode>& targets,
                         const NodeToSetResult& r) {
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.paths.size(), targets.size());
  std::unordered_set<HbIndex> used;  // interiors + targets, excluding u
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto& p = r.paths[i];
    ASSERT_FALSE(p.empty()) << "target " << i;
    EXPECT_TRUE(p.front() == u);
    EXPECT_TRUE(p.back() == targets[i]);
    for (std::size_t j = 1; j < p.size(); ++j) {
      EXPECT_EQ(hb.distance(p[j - 1], p[j]), 1u);
      EXPECT_TRUE(used.insert(hb.index_of(p[j])).second)
          << "shared vertex across paths";
    }
  }
}

TEST(NodeToSet, FullFanOut) {
  HyperButterfly hb(2, 3);
  Graph g = hb.to_graph();
  HbNode u{0, {0, 0}};
  // m+4 = 6 scattered targets.
  std::vector<HbNode> targets = {{3, {1, 1}}, {1, {7, 2}}, {2, {4, 0}},
                                 {0, {5, 1}}, {3, {2, 2}}, {1, {0, 1}}};
  expect_valid_family(hb, u, targets, node_to_set_paths_on(hb, g, u, targets));
}

TEST(NodeToSet, TargetsIncludeNeighbors) {
  HyperButterfly hb(2, 3);
  Graph g = hb.to_graph();
  HbNode u{0, {0, 0}};
  auto nbrs = hb.neighbors(u);
  std::vector<HbNode> targets(nbrs.begin(), nbrs.begin() + 4);
  expect_valid_family(hb, u, targets, node_to_set_paths_on(hb, g, u, targets));
}

TEST(NodeToSet, RandomSweep) {
  HyperButterfly hb(2, 3);
  Graph g = hb.to_graph();
  std::mt19937_64 rng(31);
  std::uniform_int_distribution<HbIndex> pick(0, hb.num_nodes() - 1);
  for (int trial = 0; trial < 40; ++trial) {
    HbNode u = hb.node_at(pick(rng));
    std::unordered_set<HbIndex> chosen;
    std::vector<HbNode> targets;
    while (targets.size() < hb.degree()) {
      HbIndex t = pick(rng);
      if (t == hb.index_of(u) || !chosen.insert(t).second) continue;
      targets.push_back(hb.node_at(t));
    }
    expect_valid_family(hb, u, targets,
                        node_to_set_paths_on(hb, g, u, targets));
  }
}

TEST(NodeToSet, RejectsBadInput) {
  HyperButterfly hb(1, 3);
  Graph g = hb.to_graph();
  HbNode u{0, {0, 0}};
  EXPECT_THROW((void)node_to_set_paths_on(hb, g, u, {}),
               std::invalid_argument);
  std::vector<HbNode> too_many(hb.degree() + 1, HbNode{1, {1, 1}});
  EXPECT_THROW((void)node_to_set_paths_on(hb, g, u, too_many),
               std::invalid_argument);
  // Duplicates / source in S: reported as infeasible, not thrown.
  EXPECT_FALSE(node_to_set_paths_on(hb, g, u, {u}).ok());
  HbNode t{1, {1, 1}};
  EXPECT_FALSE(node_to_set_paths_on(hb, g, u, {t, t}).ok());
}

TEST(NodeToSet, SingleTargetIsAPath) {
  HyperButterfly hb(1, 3);
  HbNode u{0, {0, 0}}, v{1, {6, 2}};
  NodeToSetResult r = node_to_set_paths(hb, u, {v});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.paths[0].front() == u);
  EXPECT_TRUE(r.paths[0].back() == v);
}

}  // namespace
}  // namespace hbnet
