// The neighborhood-provider layer (graph/adjacency.hpp): CSR / implicit
// equivalence on real HB instances, fingerprint compatibility between the
// generic digest and graph_fingerprint, Nagamochi-Ibaraki certificate
// properties (edge bound, cut preservation, determinism), and the
// cube-orbit representative map.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "core/hyper_butterfly.hpp"
#include "graph/adjacency.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/connectivity_sweep.hpp"
#include "graph/sparsify.hpp"
#include "topology/hb_implicit.hpp"

namespace hbnet {
namespace {

Graph random_graph(NodeId n, double p, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  GraphBuilder b(n);
  for (NodeId u = 1; u < n; ++u) {
    b.add_edge(u, std::uniform_int_distribution<NodeId>(0, u - 1)(rng));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (coin(rng) < p) b.add_edge(u, v);
    }
  }
  return b.build();
}

/// Minimal provider that forwards to a Graph but keeps the *base-class*
/// fingerprint / degree_range, so the generic defaults are what gets tested.
class ForwardingProvider final : public AdjacencyProvider {
 public:
  explicit ForwardingProvider(const Graph& g) : g_(g) {}
  NodeId num_nodes() const override { return g_.num_nodes(); }
  std::uint64_t num_edges() const override { return g_.num_edges(); }
  std::uint32_t degree(NodeId v) const override { return g_.degree(v); }
  std::span<const NodeId> neighbors(NodeId v,
                                    NodeId* /*scratch*/) const override {
    return g_.neighbors(v);
  }
  std::string describe() const override { return "forwarding"; }

 private:
  const Graph& g_;
};

TEST(Adjacency, CsrViewMatchesGraph) {
  Graph g = HyperButterfly(2, 3).to_graph();
  CsrAdjacency csr(g);
  EXPECT_EQ(csr.num_nodes(), g.num_nodes());
  EXPECT_EQ(csr.num_edges(), g.num_edges());
  EXPECT_EQ(csr.degree_range(), g.degree_range());
  EXPECT_EQ(csr.fingerprint(), graph_fingerprint(g));
  EXPECT_EQ(csr.describe(), "csr");
  NeighborScratch scratch(csr);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto span = csr.neighbors(v, scratch.data());
    ASSERT_EQ(span.size(), g.neighbors(v).size());
    EXPECT_TRUE(std::equal(span.begin(), span.end(), g.neighbors(v).begin()));
  }
}

TEST(Adjacency, DefaultFingerprintReproducesGraphFingerprint) {
  // The base-class digest enumerates neighborhoods and must land on the
  // exact CSR digest -- this is what keeps v1 checkpoints byte-compatible
  // for any provider that doesn't opt into a mode tag.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    Graph g = random_graph(24, 0.3, seed);
    ForwardingProvider fwd(g);
    EXPECT_EQ(fwd.fingerprint(), graph_fingerprint(g)) << "seed " << seed;
    EXPECT_EQ(fwd.degree_range(), g.degree_range()) << "seed " << seed;
  }
}

TEST(Adjacency, ImplicitMatchesCsrOnHbInstances) {
  for (auto [m, n] : {std::pair<unsigned, unsigned>{2, 3}, {3, 3}}) {
    Graph g = HyperButterfly(m, n).to_graph();
    CsrAdjacency csr(g);
    HbImplicitAdjacency imp(m, n);
    ASSERT_EQ(imp.num_nodes(), csr.num_nodes());
    EXPECT_EQ(imp.num_edges(), csr.num_edges());
    const std::pair<std::uint32_t, std::uint32_t> regular{m + 4, m + 4};
    EXPECT_EQ(imp.degree_range(), regular);
    NeighborScratch scratch(imp);
    for (NodeId v = 0; v < imp.num_nodes(); ++v) {
      auto got = imp.neighbors(v, scratch.data());
      auto want = g.neighbors(v);
      ASSERT_EQ(got.size(), want.size()) << "HB(" << m << "," << n
                                         << ") v=" << v;
      EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
          << "HB(" << m << "," << n << ") v=" << v;
    }
    // Mode-tagged digest: stable across instances, distinct from CSR.
    EXPECT_EQ(imp.fingerprint(), HbImplicitAdjacency(m, n).fingerprint());
    EXPECT_NE(imp.fingerprint(), csr.fingerprint());
  }
}

TEST(Adjacency, ProviderBfsMatchesCsrBfs) {
  HbImplicitAdjacency imp(2, 3);
  Graph g = HyperButterfly(2, 3).to_graph();
  BfsResult want = bfs(g, 0);
  BfsResult got = bfs(imp, 0);
  EXPECT_EQ(got.dist, want.dist);
  EXPECT_EQ(got.parent, want.parent);
  EXPECT_TRUE(is_connected(imp));
}

TEST(Adjacency, ConnectivityEntryPointsAcceptProviders) {
  HbImplicitAdjacency imp(2, 3);
  Graph g = HyperButterfly(2, 3).to_graph();
  CsrAdjacency csr(g);
  EXPECT_EQ(vertex_connectivity(imp), 6u);
  EXPECT_EQ(vertex_connectivity(csr), 6u);
  EXPECT_EQ(edge_connectivity(imp), 6u);
  EXPECT_EQ(edge_connectivity(csr, 0, /*sparsify=*/true), 6u);
}

TEST(OrbitRepresentative, IsCanonicalAndPreservesKappa) {
  const unsigned m = 3, n = 3;
  HyperButterfly hb(m, n);
  const NodeId per_cube = static_cast<NodeId>(n) << n;
  for (NodeId v = 0; v < hb.num_nodes(); ++v) {
    const NodeId rep = hb_cube_orbit_representative(m, n, v);
    // Idempotent, fixes the scanned source's cube class, keeps (word,level).
    EXPECT_EQ(hb_cube_orbit_representative(m, n, rep), rep);
    EXPECT_EQ(rep % per_cube, v % per_cube);
    // The representative's cube part is the low-bits mask of equal popcount.
    const unsigned pc = std::popcount(v / per_cube);
    EXPECT_EQ(rep / per_cube, (NodeId{1} << pc) - 1);
  }
  EXPECT_EQ(hb_cube_orbit_representative(m, n, 0), 0u);
}

TEST(SparseCertificate, EdgeBoundAndDegenerateInputs) {
  Graph g = random_graph(30, 0.6, 99);
  for (std::uint32_t k : {0u, 1u, 2u, 4u, 8u}) {
    SparseCertificate cert = sparse_certificate(g, k);
    EXPECT_EQ(cert.k, k);
    EXPECT_EQ(cert.graph.num_nodes(), g.num_nodes());
    EXPECT_LE(cert.graph.num_edges(),
              static_cast<std::uint64_t>(k) * (g.num_nodes() - 1));
    EXPECT_LE(cert.graph.num_edges(), g.num_edges());
  }
  EXPECT_EQ(sparse_certificate(g, 0).graph.num_edges(), 0u);
  // k >= max degree keeps everything: the certificate IS the graph.
  SparseCertificate full = sparse_certificate(g, g.num_nodes());
  EXPECT_EQ(full.graph.num_edges(), g.num_edges());
  EXPECT_EQ(graph_fingerprint(full.graph), graph_fingerprint(g));
}

TEST(SparseCertificate, PreservesConnectivityUpToK) {
  // min(kappa(cert), k) == min(kappa(G), k) and the same for lambda, over
  // random graphs spanning sparse trees to near-cliques.
  std::uint64_t seed = 400;
  for (NodeId n : {8, 12, 16}) {
    for (double p : {0.2, 0.5, 0.8}) {
      Graph g = random_graph(n, p, seed++);
      const std::uint32_t kappa = vertex_connectivity(g);
      const std::uint32_t lambda = edge_connectivity(g);
      for (std::uint32_t k : {1u, 2u, 3u, 5u, 9u}) {
        SparseCertificate cert = sparse_certificate(g, k);
        EXPECT_EQ(std::min(vertex_connectivity(cert.graph), k),
                  std::min(kappa, k))
            << "n=" << n << " p=" << p << " k=" << k;
        EXPECT_EQ(std::min(edge_connectivity(cert.graph), k),
                  std::min(lambda, k))
            << "n=" << n << " p=" << p << " k=" << k;
      }
    }
  }
}

TEST(SparseCertificate, DeterministicAndProviderGeneric) {
  Graph g = HyperButterfly(2, 3).to_graph();
  CsrAdjacency csr(g);
  HbImplicitAdjacency imp(2, 3);
  SparseCertificate a = sparse_certificate(csr, 3);
  SparseCertificate b = sparse_certificate(g, 3);
  SparseCertificate c = sparse_certificate(imp, 3);
  // Same scan order regardless of entry point or adjacency mode: the
  // certificate graphs are byte-for-byte the same CSR.
  EXPECT_EQ(graph_fingerprint(a.graph), graph_fingerprint(b.graph));
  EXPECT_EQ(graph_fingerprint(a.graph), graph_fingerprint(c.graph));
}

TEST(SparseCertificate, RealWinOnDenseGraph) {
  // Two K_48 cliques joined by 3 bridges: kappa = 3 << min degree = 47.
  // This is the regime sparsification exists for -- the certificate must
  // be several times smaller than the graph (2259 edges vs <= 4*95).
  GraphBuilder b(96);
  for (NodeId u = 0; u < 48; ++u) {
    for (NodeId v = u + 1; v < 48; ++v) {
      b.add_edge(u, v);
      b.add_edge(u + 48, v + 48);
    }
  }
  for (NodeId i = 0; i < 3; ++i) b.add_edge(i, 48 + i);
  Graph g = b.build();
  const std::uint32_t kappa = vertex_connectivity(g);
  ASSERT_EQ(kappa, 3u);
  SparseCertificate cert = sparse_certificate(g, kappa + 1);
  EXPECT_EQ(vertex_connectivity(cert.graph), 3u);
  EXPECT_GE(g.num_edges(), 4 * cert.graph.num_edges());
}

}  // namespace
}  // namespace hbnet
