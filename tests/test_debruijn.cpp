// de Bruijn DB(2,n) and hyper-deBruijn HD(m,n) baselines: the irregularity
// and sub-optimal fault tolerance the hyper-butterfly is designed to remove.
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/connectivity.hpp"
#include "topology/debruijn.hpp"
#include "topology/hyper_debruijn.hpp"

namespace hbnet {
namespace {

TEST(DeBruijn, NeighborSymmetryAndDegrees) {
  DeBruijn db(4);
  Graph g = db.to_graph();
  EXPECT_EQ(g.num_nodes(), 16u);
  auto [lo, hi] = g.degree_range();
  EXPECT_EQ(lo, 2u);  // all-zeros / all-ones lose the self loop + share shift
  EXPECT_EQ(hi, 4u);
  EXPECT_FALSE(g.is_regular());
  // Neighbor lists agree with the materialized graph both ways.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (std::uint32_t v : db.neighbors(static_cast<std::uint32_t>(u))) {
      EXPECT_TRUE(g.has_edge(u, v)) << u << "->" << v;
    }
  }
}

TEST(DeBruijn, ShiftRouteReachesDestination) {
  DeBruijn db(6);
  for (std::uint32_t u : {0u, 17u, 63u}) {
    for (std::uint32_t v : {1u, 42u, 63u}) {
      auto walk = db.shift_route(u, v);
      EXPECT_EQ(walk.front(), u);
      EXPECT_EQ(walk.back(), v);
      EXPECT_LE(walk.size(), 7u);  // at most n shifts
    }
  }
}

TEST(DeBruijn, OverlapRouteValidWalk) {
  DeBruijn db(5);
  Graph g = db.to_graph();
  for (std::uint32_t u = 0; u < 32; u += 3) {
    for (std::uint32_t v = 0; v < 32; v += 5) {
      auto walk = db.route(u, v);
      EXPECT_EQ(walk.front(), u);
      EXPECT_EQ(walk.back(), v);
      for (std::size_t i = 1; i < walk.size(); ++i) {
        EXPECT_TRUE(g.has_edge(walk[i - 1], walk[i]))
            << "u=" << u << " v=" << v << " i=" << i;
      }
    }
  }
}

TEST(DeBruijn, OverlapRouteExploitsOverlap) {
  DeBruijn db(6);
  // 001011 -> 010110 is a single left shift.
  EXPECT_EQ(db.route(0b001011, 0b010110).size(), 2u);
  // And a single right shift back.
  EXPECT_EQ(db.route(0b010110, 0b001011).size(), 2u);
}

TEST(DeBruijn, DiameterUpperBound) {
  for (unsigned n : {3u, 4u, 5u, 6u}) {
    Graph g = DeBruijn(n).to_graph();
    EXPECT_LE(diameter(g), n) << "n=" << n;
  }
}

TEST(HyperDeBruijn, StructureMatchesPaper) {
  HyperDeBruijn hd(3, 4);
  Graph g = hd.to_graph();
  EXPECT_EQ(g.num_nodes(), 128u);
  auto [lo, hi] = g.degree_range();
  EXPECT_EQ(lo, hd.min_degree());  // m+2
  EXPECT_EQ(hi, hd.max_degree());  // m+4
  EXPECT_FALSE(g.is_regular());
}

TEST(HyperDeBruijn, ConnectivityIsMPlusTwo) {
  // The key comparison number of Figure 1: kappa(HD) = m+2 < m+4.
  for (unsigned m : {1u, 2u}) {
    Graph g = HyperDeBruijn(m, 3).to_graph();
    EXPECT_EQ(vertex_connectivity(g), m + 2) << "m=" << m;
  }
}

TEST(HyperDeBruijn, RouteValidAndBounded) {
  HyperDeBruijn hd(3, 5);
  Graph g = hd.to_graph();
  for (NodeId s = 0; s < g.num_nodes(); s += 37) {
    for (NodeId t = 0; t < g.num_nodes(); t += 41) {
      auto walk = hd.route(hd.node_at(s), hd.node_at(t));
      EXPECT_TRUE(walk.front() == hd.node_at(s));
      EXPECT_TRUE(walk.back() == hd.node_at(t));
      EXPECT_LE(walk.size(), 1u + hd.diameter_upper_bound());
      for (std::size_t i = 1; i < walk.size(); ++i) {
        EXPECT_TRUE(g.has_edge(hd.index_of(walk[i - 1]),
                               hd.index_of(walk[i])));
      }
    }
  }
}

TEST(HyperDeBruijn, DiameterAtMostMPlusN) {
  Graph g = HyperDeBruijn(2, 4).to_graph();
  EXPECT_LE(diameter(g), 6u);
}

}  // namespace
}  // namespace hbnet
