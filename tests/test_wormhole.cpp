// Wormhole / virtual-channel simulator: conservation, sane latencies,
// deadlock detection, and the VC-class findings tying into the CDG
// analysis: any-free deadlocks, the classical 2-class dateline is
// *insufficient* for direction-reversing covering-walk routes, and the
// 6-class segment-dateline is deadlock free.
#include <gtest/gtest.h>

#include "sim/wormhole.hpp"

namespace hbnet {
namespace {

WormholeConfig gentle() {
  WormholeConfig cfg;
  cfg.vcs = 6;
  cfg.policy = VcPolicy::kSegmentDateline;
  cfg.injection_rate = 0.005;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 30000;
  return cfg;
}

WormholeConfig pressure(unsigned vcs, VcPolicy policy) {
  WormholeConfig cfg;
  cfg.vcs = vcs;
  cfg.policy = policy;
  cfg.buffer_depth = 1;
  cfg.flits_per_packet = 8;
  cfg.injection_rate = 0.30;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1500;
  cfg.drain_cycles = 120000;
  cfg.deadlock_patience = 500;
  return cfg;
}

TEST(Wormhole, CompletesAtLowLoadOnHypercube) {
  auto topo = make_hypercube_sim(5);
  WormholeStats s = run_wormhole(*topo, gentle());
  EXPECT_FALSE(s.deadlocked);
  EXPECT_GT(s.packets.delivered(), 0u);
  EXPECT_EQ(s.packets.delivered(), s.packets.injected());
}

TEST(Wormhole, LatencyAtLeastHopsPlusSerialization) {
  auto topo = make_hypercube_sim(4);
  WormholeConfig cfg = gentle();
  cfg.flits_per_packet = 6;
  WormholeStats s = run_wormhole(*topo, cfg);
  ASSERT_GT(s.packets.delivered(), 0u);
  // A packet of F flits over h hops needs >= h + F - 1 cycles.
  EXPECT_GE(s.packets.mean_latency(),
            s.packets.mean_hops() + cfg.flits_per_packet - 1);
}

TEST(Wormhole, RejectsDegenerateConfigs) {
  auto topo = make_hypercube_sim(3);
  WormholeConfig cfg;
  cfg.vcs = 0;
  EXPECT_THROW((void)run_wormhole(*topo, cfg), std::invalid_argument);
  cfg.vcs = 1;
  cfg.policy = VcPolicy::kDateline;
  EXPECT_THROW((void)run_wormhole(*topo, cfg), std::invalid_argument);
  cfg.vcs = 4;
  cfg.policy = VcPolicy::kSegmentDateline;  // needs 6
  EXPECT_THROW((void)run_wormhole(*topo, cfg), std::invalid_argument);
}

TEST(Wormhole, ValidatorNamesTheMinimumForThePolicy) {
  // The WormholeConfig{} default (vcs = 2) only suits any/dateline; pairing
  // it with segment-dateline is the classic footgun, so the diagnostic must
  // name the policy, its minimum, the value given, and the default's trap.
  WormholeConfig cfg;
  cfg.policy = VcPolicy::kSegmentDateline;  // vcs stays at the default 2
  const std::string err = validate_wormhole_config(cfg);
  EXPECT_NE(err.find("'segment'"), std::string::npos) << err;
  EXPECT_NE(err.find("at least 6"), std::string::npos) << err;
  EXPECT_NE(err.find("got 2"), std::string::npos) << err;
  EXPECT_NE(err.find("default vcs = 2"), std::string::npos) << err;

  cfg.vcs = 6;
  EXPECT_TRUE(validate_wormhole_config(cfg).empty());
  cfg.policy = VcPolicy::kDateline;
  cfg.vcs = 2;
  EXPECT_TRUE(validate_wormhole_config(cfg).empty());
  EXPECT_EQ(std::string(vc_policy_name(VcPolicy::kSegmentDateline)),
            "segment");
}

TEST(Wormhole, SingleVcButterflyDeadlocksUnderPressure) {
  // Level-ring cycles + 1 VC + deep worms: the CDG cycle materializes as an
  // operational deadlock at sufficient load.
  auto topo = make_butterfly_sim(4);
  WormholeStats s =
      run_wormhole(*topo, pressure(1, VcPolicy::kAnyFree), 4);
  EXPECT_TRUE(s.deadlocked);
}

TEST(Wormhole, ClassicDatelineIsInsufficientForReversingRoutes) {
  // FINDING: the textbook 2-class dateline assumes monotone ring routes.
  // Covering-walk routes reverse direction, letting two opposite-direction
  // worms block each other inside one class -- deadlock persists.
  auto topo = make_butterfly_sim(4);
  WormholeStats s =
      run_wormhole(*topo, pressure(2, VcPolicy::kDateline), 4);
  EXPECT_TRUE(s.deadlocked);
}

TEST(Wormhole, SegmentDatelineSurvivesSamePressure) {
  // class = 2*segment + wrap: monotone within class, class monotone along
  // the path => acyclic per class => deadlock free.
  auto topo = make_butterfly_sim(4);
  WormholeStats s =
      run_wormhole(*topo, pressure(6, VcPolicy::kSegmentDateline), 4);
  EXPECT_FALSE(s.deadlocked);
  EXPECT_EQ(s.packets.delivered(), s.packets.injected());
}

TEST(Wormhole, HyperButterflySegmentDatelineCompletes) {
  auto topo = make_hyper_butterfly_sim(2, 3);
  WormholeConfig cfg = gentle();
  cfg.injection_rate = 0.02;
  WormholeStats s = run_wormhole(*topo, cfg, 3);
  EXPECT_FALSE(s.deadlocked);
  EXPECT_EQ(s.packets.delivered(), s.packets.injected());
}

TEST(Wormhole, CccSegmentDatelineCompletes) {
  auto topo = make_ccc_sim(4);
  WormholeConfig cfg = gentle();
  cfg.injection_rate = 0.02;
  WormholeStats s = run_wormhole(*topo, cfg, 4);
  EXPECT_FALSE(s.deadlocked);
  EXPECT_EQ(s.packets.delivered(), s.packets.injected());
}

TEST(Wormhole, SegmentDatelineHeavySweep) {
  // Sustained heavy load across several seeds: never deadlocks.
  auto topo = make_butterfly_sim(3);
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    WormholeConfig cfg = pressure(6, VcPolicy::kSegmentDateline);
    cfg.seed = seed;
    WormholeStats s = run_wormhole(*topo, cfg, 3);
    EXPECT_FALSE(s.deadlocked) << "seed=" << seed;
    EXPECT_EQ(s.packets.delivered(), s.packets.injected()) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace hbnet
