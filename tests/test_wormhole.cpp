// Wormhole / virtual-channel simulator: conservation, sane latencies,
// deadlock detection, and the VC-class findings tying into the CDG
// analysis: any-free deadlocks, the classical 2-class dateline is
// *insufficient* for direction-reversing covering-walk routes, and the
// 6-class segment-dateline is deadlock free.
#include <gtest/gtest.h>

#include "sim/wormhole.hpp"

namespace hbnet {
namespace {

WormholeConfig gentle() {
  WormholeConfig cfg;
  cfg.vcs = 6;
  cfg.policy = VcPolicy::kSegmentDateline;
  cfg.injection_rate = 0.005;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 30000;
  return cfg;
}

WormholeConfig pressure(unsigned vcs, VcPolicy policy) {
  WormholeConfig cfg;
  cfg.vcs = vcs;
  cfg.policy = policy;
  cfg.buffer_depth = 1;
  cfg.flits_per_packet = 8;
  cfg.injection_rate = 0.30;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1500;
  cfg.drain_cycles = 120000;
  cfg.deadlock_patience = 500;
  return cfg;
}

TEST(Wormhole, CompletesAtLowLoadOnHypercube) {
  auto topo = make_hypercube_sim(5);
  WormholeStats s = run_wormhole(*topo, gentle());
  EXPECT_FALSE(s.deadlocked);
  EXPECT_GT(s.packets.delivered(), 0u);
  EXPECT_EQ(s.packets.delivered(), s.packets.injected());
}

TEST(Wormhole, LatencyAtLeastHopsPlusSerialization) {
  auto topo = make_hypercube_sim(4);
  WormholeConfig cfg = gentle();
  cfg.flits_per_packet = 6;
  WormholeStats s = run_wormhole(*topo, cfg);
  ASSERT_GT(s.packets.delivered(), 0u);
  // A packet of F flits over h hops needs >= h + F - 1 cycles.
  EXPECT_GE(s.packets.mean_latency(),
            s.packets.mean_hops() + cfg.flits_per_packet - 1);
}

TEST(Wormhole, RejectsDegenerateConfigs) {
  auto topo = make_hypercube_sim(3);
  WormholeConfig cfg;
  cfg.vcs = 0;
  EXPECT_THROW((void)run_wormhole(*topo, cfg), std::invalid_argument);
  cfg.vcs = 1;
  cfg.policy = VcPolicy::kDateline;
  EXPECT_THROW((void)run_wormhole(*topo, cfg), std::invalid_argument);
  cfg.vcs = 4;
  cfg.policy = VcPolicy::kSegmentDateline;  // needs 6
  EXPECT_THROW((void)run_wormhole(*topo, cfg), std::invalid_argument);
}

TEST(Wormhole, ValidatorNamesTheMinimumForThePolicy) {
  // The WormholeConfig{} default (vcs = 2) only suits any/dateline; pairing
  // it with segment-dateline is the classic footgun, so the diagnostic must
  // name the policy, its minimum, the value given, and the default's trap.
  WormholeConfig cfg;
  cfg.policy = VcPolicy::kSegmentDateline;  // vcs stays at the default 2
  const std::string err = validate_wormhole_config(cfg);
  EXPECT_NE(err.find("'segment'"), std::string::npos) << err;
  EXPECT_NE(err.find("at least 6"), std::string::npos) << err;
  EXPECT_NE(err.find("got 2"), std::string::npos) << err;
  EXPECT_NE(err.find("default vcs = 2"), std::string::npos) << err;

  cfg.vcs = 6;
  EXPECT_TRUE(validate_wormhole_config(cfg).empty());
  cfg.policy = VcPolicy::kDateline;
  cfg.vcs = 2;
  EXPECT_TRUE(validate_wormhole_config(cfg).empty());
  EXPECT_EQ(std::string(vc_policy_name(VcPolicy::kSegmentDateline)),
            "segment");
}

TEST(Wormhole, SingleVcButterflyDeadlocksUnderPressure) {
  // Level-ring cycles + 1 VC + deep worms: the CDG cycle materializes as an
  // operational deadlock at sufficient load.
  auto topo = make_butterfly_sim(4);
  WormholeStats s =
      run_wormhole(*topo, pressure(1, VcPolicy::kAnyFree), 4);
  EXPECT_TRUE(s.deadlocked);
}

TEST(Wormhole, ClassicDatelineIsInsufficientForReversingRoutes) {
  // FINDING: the textbook 2-class dateline assumes monotone ring routes.
  // Covering-walk routes reverse direction, letting two opposite-direction
  // worms block each other inside one class -- deadlock persists.
  auto topo = make_butterfly_sim(4);
  WormholeStats s =
      run_wormhole(*topo, pressure(2, VcPolicy::kDateline), 4);
  EXPECT_TRUE(s.deadlocked);
}

TEST(Wormhole, SegmentDatelineSurvivesSamePressure) {
  // class = 2*segment + wrap: monotone within class, class monotone along
  // the path => acyclic per class => deadlock free.
  auto topo = make_butterfly_sim(4);
  WormholeStats s =
      run_wormhole(*topo, pressure(6, VcPolicy::kSegmentDateline), 4);
  EXPECT_FALSE(s.deadlocked);
  EXPECT_EQ(s.packets.delivered(), s.packets.injected());
}

TEST(Wormhole, HyperButterflySegmentDatelineCompletes) {
  auto topo = make_hyper_butterfly_sim(2, 3);
  WormholeConfig cfg = gentle();
  cfg.injection_rate = 0.02;
  WormholeStats s = run_wormhole(*topo, cfg, 3);
  EXPECT_FALSE(s.deadlocked);
  EXPECT_EQ(s.packets.delivered(), s.packets.injected());
}

TEST(Wormhole, CccSegmentDatelineCompletes) {
  auto topo = make_ccc_sim(4);
  WormholeConfig cfg = gentle();
  cfg.injection_rate = 0.02;
  WormholeStats s = run_wormhole(*topo, cfg, 4);
  EXPECT_FALSE(s.deadlocked);
  EXPECT_EQ(s.packets.delivered(), s.packets.injected());
}

// ---------------------------------------------------------------------------
// Static faults + Theorem-5 adaptive routing with the reserved escape class.

WormholeConfig adaptive(double rate = 0.02) {
  WormholeConfig cfg;
  cfg.vcs = vc_classes(VcPolicy::kFaultAdaptive);
  cfg.policy = VcPolicy::kFaultAdaptive;
  cfg.injection_rate = rate;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 300;
  cfg.drain_cycles = 60000;
  return cfg;
}

TEST(WormholeFaults, NodeFaultsWithinGuaranteeDeliverEverything) {
  // HB(2,3): kappa = m+4 = 6, so m+3 = 5 static node faults leave the
  // Theorem-5 family with a clean member for every pair. Every packet with
  // live endpoints must be delivered, with zero deadlock and the detours
  // visible in the misroute/escape counters.
  auto topo = make_hyper_butterfly_sim(2, 3);
  WormholeFaults wf;
  wf.nodes.assign(topo->num_nodes(), 0);
  for (std::uint32_t v : {3u, 17u, 29u, 41u, 77u}) wf.nodes[v] = 1;
  WormholeStats s = run_wormhole(*topo, adaptive(), 3, &wf);
  EXPECT_FALSE(s.deadlocked);
  ASSERT_GT(s.packets.injected(), 0u);
  EXPECT_EQ(s.packets.delivered(), s.packets.injected());
  EXPECT_EQ(s.unroutable, 0u);
  EXPECT_GT(s.misroutes, 0u);
  EXPECT_GT(s.escape_hops, 0u);
}

TEST(WormholeFaults, LinkFaultsDeliverEverything) {
  // Directed link faults kill one direction only; the re-planner bans the
  // faulted outgoing edges and routes the suffix in the escape class.
  auto topo = make_hyper_butterfly_sim(2, 3);
  WormholeFaults wf;
  for (std::uint32_t src : {0u, 9u, 22u, 63u}) {
    const std::vector<std::uint32_t> nbrs = topo->neighbors(src);
    ASSERT_FALSE(nbrs.empty());
    wf.links.emplace_back(src, nbrs.front());
  }
  WormholeStats s = run_wormhole(*topo, adaptive(), 3, &wf);
  EXPECT_FALSE(s.deadlocked);
  ASSERT_GT(s.packets.injected(), 0u);
  EXPECT_EQ(s.packets.delivered(), s.packets.injected());
  EXPECT_EQ(s.unroutable, 0u);
}

TEST(WormholeFaults, FullyBlockedSourceKillsWormsWithoutDeadlock) {
  // Fault every outgoing link of node 0: its packets have no first hop at
  // all, the banned-first family is empty, and each such worm must be
  // killed and counted unroutable -- never left to trip the deadlock
  // detector or wedge the injection queue.
  auto topo = make_hyper_butterfly_sim(1, 3);
  WormholeFaults wf;
  for (std::uint32_t nb : topo->neighbors(0)) wf.links.emplace_back(0, nb);
  WormholeConfig cfg = adaptive(0.05);
  WormholeStats s = run_wormhole(*topo, cfg, 3, &wf);
  EXPECT_FALSE(s.deadlocked);
  EXPECT_GT(s.unroutable, 0u);
  EXPECT_GT(s.packets.delivered(), 0u);
  EXPECT_EQ(s.packets.delivered() + s.packets.dropped(),
            s.packets.injected());
}

TEST(WormholeFaults, FaultyEndpointsNeverInject) {
  // A dead source never injects; a draw targeting a dead destination is
  // skipped uncounted (mirroring the store-and-forward engine). With every
  // odd node dead the run still terminates cleanly.
  auto topo = make_hyper_butterfly_sim(1, 3);
  WormholeFaults wf;
  wf.nodes.assign(topo->num_nodes(), 0);
  for (std::uint32_t v = 1; v < topo->num_nodes(); v += 2) wf.nodes[v] = 1;
  WormholeStats s = run_wormhole(*topo, adaptive(0.05), 3, &wf);
  EXPECT_FALSE(s.deadlocked);
  EXPECT_EQ(s.packets.delivered() + s.packets.dropped(),
            s.packets.injected());
}

TEST(WormholeFaults, FaultsRequireAdaptivePolicy) {
  auto topo = make_hyper_butterfly_sim(1, 3);
  WormholeFaults wf;
  wf.links.emplace_back(0, topo->neighbors(0).front());
  WormholeConfig cfg = gentle();  // segment-dateline
  EXPECT_THROW((void)run_wormhole(*topo, cfg, 3, &wf),
               std::invalid_argument);
  // An empty fault set is not a fault set: any policy may pass it.
  WormholeFaults empty;
  WormholeStats s = run_wormhole(*topo, cfg, 3, &empty);
  EXPECT_FALSE(s.deadlocked);
}

TEST(WormholeFaults, RejectsMalformedFaultSets) {
  auto topo = make_hyper_butterfly_sim(1, 3);
  WormholeConfig cfg = adaptive();
  WormholeFaults bad_mask;
  bad_mask.nodes.assign(3, 0);  // must be empty or num_nodes()
  bad_mask.nodes[0] = 1;
  EXPECT_THROW((void)run_wormhole(*topo, cfg, 3, &bad_mask),
               std::invalid_argument);
  WormholeFaults bad_link;
  bad_link.links.emplace_back(0, topo->num_nodes());
  EXPECT_THROW((void)run_wormhole(*topo, cfg, 3, &bad_link),
               std::invalid_argument);
}

TEST(WormholeFaults, ValidatorNamesTheAdaptiveMinimum) {
  WormholeConfig cfg;
  cfg.policy = VcPolicy::kFaultAdaptive;  // vcs stays at the default 2
  const std::string err = validate_wormhole_config(cfg);
  EXPECT_NE(err.find("'adaptive'"), std::string::npos) << err;
  EXPECT_NE(err.find("at least 7"), std::string::npos) << err;
  cfg.vcs = vc_classes(VcPolicy::kFaultAdaptive);
  EXPECT_TRUE(validate_wormhole_config(cfg).empty());
  EXPECT_EQ(std::string(vc_policy_name(VcPolicy::kFaultAdaptive)),
            "adaptive");
}

TEST(WormholeFaults, FaultFreeAdaptiveMatchesSegmentBehavior) {
  // With no faults the adaptive policy is segment-dateline plus one idle
  // escape class: it must survive the same pressure that proves
  // segment-dateline deadlock free.
  auto topo = make_butterfly_sim(4);
  WormholeStats s =
      run_wormhole(*topo, pressure(7, VcPolicy::kFaultAdaptive), 4);
  EXPECT_FALSE(s.deadlocked);
  EXPECT_EQ(s.packets.delivered(), s.packets.injected());
}

TEST(Wormhole, SegmentDatelineHeavySweep) {
  // Sustained heavy load across several seeds: never deadlocks.
  auto topo = make_butterfly_sim(3);
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    WormholeConfig cfg = pressure(6, VcPolicy::kSegmentDateline);
    cfg.seed = seed;
    WormholeStats s = run_wormhole(*topo, cfg, 3);
    EXPECT_FALSE(s.deadlocked) << "seed=" << seed;
    EXPECT_EQ(s.packets.delivered(), s.packets.injected()) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace hbnet
