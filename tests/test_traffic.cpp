// Traffic generators: pinned bit-permutation destinations, the dst == src
// avoidance rule, seed determinism, and the stateless (counter-based)
// generator's purity, rate quantization, and hotspot load.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/traffic.hpp"

namespace hbnet {
namespace {

TEST(PermuteBits, PinnedValues) {
  // Bit-complement over 7 bits.
  EXPECT_EQ(permute_bits(TrafficPattern::kBitComplement, 7, 0u), 127u);
  EXPECT_EQ(permute_bits(TrafficPattern::kBitComplement, 7, 5u), 122u);
  // Bit-reversal over 7 bits: 0000001 <-> 1000000, 0000011 <-> 1100000.
  EXPECT_EQ(permute_bits(TrafficPattern::kBitReversal, 7, 1u), 64u);
  EXPECT_EQ(permute_bits(TrafficPattern::kBitReversal, 7, 3u), 96u);
  EXPECT_EQ(permute_bits(TrafficPattern::kBitReversal, 7, 96u), 3u);
  // Shuffle (rotate-left) over 3 bits: 011 -> 110, 100 -> 001, 111 -> 111.
  EXPECT_EQ(permute_bits(TrafficPattern::kShuffle, 3, 3u), 6u);
  EXPECT_EQ(permute_bits(TrafficPattern::kShuffle, 3, 4u), 1u);
  EXPECT_EQ(permute_bits(TrafficPattern::kShuffle, 3, 7u), 7u);
  // The random patterns are the identity permutation.
  EXPECT_EQ(permute_bits(TrafficPattern::kUniform, 7, 42u), 42u);
  EXPECT_EQ(permute_bits(TrafficPattern::kHotspot, 7, 42u), 42u);
}

TEST(PermuteBits, ReversalIsAnInvolution) {
  for (std::uint32_t src = 0; src < 128; ++src) {
    const std::uint32_t once =
        permute_bits(TrafficPattern::kBitReversal, 7, src);
    EXPECT_EQ(permute_bits(TrafficPattern::kBitReversal, 7, once), src);
  }
}

TEST(TrafficGenerator, BitComplementExactDestinations) {
  // 96 nodes needs 7 bits, so the complement folds mod 96:
  // 0 -> 127 % 96 = 31, 31 -> 96 % 96 = 0, 95 -> 32.
  TrafficGenerator gen(TrafficPattern::kBitComplement, 96, 1);
  EXPECT_EQ(gen.destination(0), 31u);
  EXPECT_EQ(gen.destination(31), 0u);
  EXPECT_EQ(gen.destination(95), 32u);
}

TEST(TrafficGenerator, ShuffleAppliesAvoidanceRule) {
  // Over 3 bits, rotate-left fixes 0 and 7; both must bump to (src+1) % 8.
  TrafficGenerator gen(TrafficPattern::kShuffle, 8, 1);
  EXPECT_EQ(gen.destination(7), 0u);
  EXPECT_EQ(gen.destination(0), 1u);
  EXPECT_EQ(gen.destination(3), 6u);  // not a fixed point: stays 110
}

TEST(TrafficGenerator, NeverReturnsSource) {
  for (const TrafficPattern p :
       {TrafficPattern::kUniform, TrafficPattern::kBitComplement,
        TrafficPattern::kBitReversal, TrafficPattern::kShuffle,
        TrafficPattern::kHotspot}) {
    TrafficGenerator gen(p, 96, 3);
    for (std::uint32_t src = 0; src < 96; ++src) {
      const std::uint32_t dst = gen.destination(src);
      EXPECT_NE(dst, src) << to_string(p);
      EXPECT_LT(dst, 96u) << to_string(p);
    }
  }
}

TEST(TrafficGenerator, SeedDeterminism) {
  TrafficGenerator a(TrafficPattern::kUniform, 64, 7);
  TrafficGenerator b(TrafficPattern::kUniform, 64, 7);
  TrafficGenerator c(TrafficPattern::kUniform, 64, 8);
  bool differs = false;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const std::uint32_t src = i % 64;
    const std::uint32_t da = a.destination(src);
    EXPECT_EQ(da, b.destination(src)) << "same seed diverged at draw " << i;
    differs = differs || da != c.destination(src);
  }
  EXPECT_TRUE(differs) << "different seeds produced identical streams";
}

TEST(StatelessTraffic, IsAPureFunction) {
  const StatelessTraffic a(TrafficPattern::kUniform, 100, 99, 0.5);
  const StatelessTraffic b(TrafficPattern::kUniform, 100, 99, 0.5);
  for (std::uint64_t cycle = 0; cycle < 16; ++cycle) {
    const StatelessTraffic::CycleView view = a.at(cycle);
    for (std::uint32_t src = 0; src < 100; ++src) {
      // Repeated calls, a second instance, and the CycleView all agree.
      EXPECT_EQ(a.injects(cycle, src), a.injects(cycle, src));
      EXPECT_EQ(a.injects(cycle, src), b.injects(cycle, src));
      EXPECT_EQ(a.injects(cycle, src), view.injects(src));
      EXPECT_EQ(a.destination(cycle, src), view.destination(src));
      EXPECT_EQ(a.intermediate(cycle, src), view.intermediate(src));
    }
  }
}

TEST(StatelessTraffic, RateZeroAndOneAreExact) {
  const StatelessTraffic never(TrafficPattern::kUniform, 64, 5, 0.0);
  const StatelessTraffic always(TrafficPattern::kUniform, 64, 5, 1.0);
  for (std::uint64_t cycle = 0; cycle < 32; ++cycle) {
    for (std::uint32_t src = 0; src < 64; ++src) {
      EXPECT_FALSE(never.injects(cycle, src));
      EXPECT_TRUE(always.injects(cycle, src));
    }
  }
}

TEST(StatelessTraffic, DestinationNeverSource) {
  for (const TrafficPattern p :
       {TrafficPattern::kUniform, TrafficPattern::kBitComplement,
        TrafficPattern::kBitReversal, TrafficPattern::kShuffle,
        TrafficPattern::kHotspot}) {
    const StatelessTraffic traffic(p, 96, 3, 0.1);
    for (std::uint64_t cycle = 0; cycle < 20; ++cycle) {
      for (std::uint32_t src = 0; src < 96; ++src) {
        const std::uint32_t dst = traffic.destination(cycle, src);
        EXPECT_NE(dst, src) << to_string(p);
        EXPECT_LT(dst, 96u) << to_string(p);
      }
    }
  }
}

TEST(StatelessTraffic, DeterministicPatternsMatchSerialGenerator) {
  // The bit-permutation patterns ignore the RNG entirely, so the stateless
  // and mt19937-backed generators must agree destination-for-destination.
  for (const TrafficPattern p :
       {TrafficPattern::kBitComplement, TrafficPattern::kBitReversal,
        TrafficPattern::kShuffle}) {
    const StatelessTraffic stateless(p, 96, 17, 0.1);
    TrafficGenerator serial(p, 96, 4242);
    for (std::uint32_t src = 0; src < 96; ++src) {
      EXPECT_EQ(stateless.destination(7, src), serial.destination(src))
          << to_string(p) << " src=" << src;
    }
  }
}

TEST(StatelessTraffic, HotspotLoadsNodeZero) {
  const StatelessTraffic traffic(TrafficPattern::kHotspot, 64, 5, 0.1);
  std::uint64_t to_zero = 0, total = 0;
  for (std::uint64_t cycle = 0; cycle < 400; ++cycle) {
    for (std::uint32_t src = 1; src < 64; ++src) {
      to_zero += traffic.destination(cycle, src) == 0 ? 1 : 0;
      ++total;
    }
  }
  // 10% hotspot draws + the uniform share: 0.1 + 0.9/64 ~ 0.114.
  const double frac = static_cast<double>(to_zero) / total;
  EXPECT_NEAR(frac, 0.114, 0.02);
}

}  // namespace
}  // namespace hbnet
