// Randomized reference-model tests: the CSR Graph substrate and its
// algorithms checked against a naive adjacency-matrix implementation on
// random graphs -- independent of all the structured-topology tests.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/graph.hpp"
#include "graph/parallel_bfs.hpp"

namespace hbnet {
namespace {

/// Naive reference: adjacency matrix + Floyd-Warshall-ish BFS by matrix.
struct Reference {
  explicit Reference(NodeId n) : n(n), adj(n, std::vector<char>(n, 0)) {}
  void add(NodeId u, NodeId v) {
    if (u == v) return;
    adj[u][v] = adj[v][u] = 1;
  }
  [[nodiscard]] std::vector<unsigned> bfs(NodeId s) const {
    std::vector<unsigned> dist(n, ~0u);
    std::vector<NodeId> frontier{s};
    dist[s] = 0;
    unsigned level = 0;
    while (!frontier.empty()) {
      ++level;
      std::vector<NodeId> next;
      for (NodeId u : frontier) {
        for (NodeId v = 0; v < n; ++v) {
          if (adj[u][v] && dist[v] == ~0u) {
            dist[v] = level;
            next.push_back(v);
          }
        }
      }
      frontier = std::move(next);
    }
    return dist;
  }
  NodeId n;
  std::vector<std::vector<char>> adj;
};

struct Instance {
  Graph g;
  Reference ref;
};

Instance random_instance(NodeId n, double p, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  GraphBuilder b(n);
  Reference ref(n);
  // A Hamiltonian path keeps it connected, plus random chords.
  for (NodeId v = 0; v + 1 < n; ++v) {
    b.add_edge(v, v + 1);
    ref.add(v, v + 1);
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 2; v < n; ++v) {
      if (coin(rng) < p) {
        b.add_edge(u, v);
        ref.add(u, v);
      }
    }
  }
  return {b.build(), std::move(ref)};
}

class RandomGraphParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphParam, AdjacencyMatchesReference) {
  auto [g, ref] = random_instance(40, 0.08, GetParam());
  ASSERT_EQ(g.num_nodes(), 40u);
  std::uint64_t ref_edges = 0;
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = 0; v < 40; ++v) {
      EXPECT_EQ(g.has_edge(u, v), static_cast<bool>(ref.adj[u][v]))
          << u << "," << v;
      ref_edges += ref.adj[u][v];
    }
  }
  EXPECT_EQ(g.num_edges(), ref_edges / 2);
}

TEST_P(RandomGraphParam, BfsMatchesReference) {
  auto [g, ref] = random_instance(48, 0.06, GetParam() ^ 0xabcdef);
  for (NodeId s = 0; s < 48; s += 5) {
    BfsResult mine = bfs(g, s);
    std::vector<unsigned> theirs = ref.bfs(s);
    for (NodeId v = 0; v < 48; ++v) {
      EXPECT_EQ(mine.dist[v], theirs[v]) << "s=" << s << " v=" << v;
    }
  }
}

TEST_P(RandomGraphParam, ParallelDiameterMatchesSerial) {
  auto [g, ref] = random_instance(36, 0.1, GetParam() ^ 0x1234);
  (void)ref;
  EXPECT_EQ(parallel_diameter(g, 3), diameter(g));
}

TEST_P(RandomGraphParam, MengerLocalDuality) {
  // max_disjoint_paths(s,t) is bounded by both degrees and is at least the
  // global connectivity; spot-check the Menger value against a brute cut
  // check: removing any (k-1)-subset of vertices keeps s-t connected.
  auto [g, ref] = random_instance(22, 0.12, GetParam() ^ 0x77);
  (void)ref;
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<NodeId> pick(0, 21);
  NodeId s = pick(rng), t = pick(rng);
  while (t == s) t = pick(rng);
  std::uint32_t k = max_disjoint_paths(g, s, t);
  ASSERT_GE(k, 1u);
  EXPECT_LE(k, std::min(g.degree(s), g.degree(t)));
  // Random (k-1)-subsets must not disconnect s from t.
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<char> removed(g.num_nodes(), 0);
    std::uint32_t placed = 0;
    while (placed + 1 < k) {
      NodeId x = pick(rng);
      if (x == s || x == t || removed[x]) continue;
      removed[x] = 1;
      ++placed;
    }
    BfsResult r = bfs_avoiding(g, s, removed);
    EXPECT_NE(r.dist[t], kUnreachable) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphParam,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull));

}  // namespace
}  // namespace hbnet
