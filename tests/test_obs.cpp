// Observability subsystem: histogram accuracy against an exact reference,
// registry/export round trips, Chrome-trace JSON validity (parse, per-lane
// nesting, monotone timestamps), and the wormhole/SF/distsim sink wiring
// (per-link occupancy must sum to independently counted flit-cycles).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "distsim/engine.hpp"
#include "graph/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "sim/wormhole.hpp"

namespace hbnet {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON parser -- just enough to validate our exporters. Any
// syntax error fails the parse (returns nullptr), which fails the test.

struct JsonValue;
using JsonPtr = std::unique_ptr<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::vector<JsonPtr>, std::map<std::string, JsonPtr>>
      v;

  [[nodiscard]] const std::vector<JsonPtr>* array() const {
    return std::get_if<std::vector<JsonPtr>>(&v);
  }
  [[nodiscard]] const std::map<std::string, JsonPtr>* object() const {
    return std::get_if<std::map<std::string, JsonPtr>>(&v);
  }
  [[nodiscard]] const JsonValue* field(const std::string& key) const {
    const auto* obj = object();
    if (obj == nullptr) return nullptr;
    auto it = obj->find(key);
    return it == obj->end() ? nullptr : it->second.get();
  }
  [[nodiscard]] double number() const {
    const double* d = std::get_if<double>(&v);
    return d == nullptr ? 0.0 : *d;
  }
  [[nodiscard]] std::string str() const {
    const std::string* s = std::get_if<std::string>(&v);
    return s == nullptr ? std::string{} : *s;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonPtr parse() {
    JsonPtr v = value();
    skip_ws();
    if (v == nullptr || pos_ != s_.size()) return nullptr;  // trailing junk
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonPtr value() {
    skip_ws();
    if (pos_ >= s_.size()) return nullptr;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        return null_value();
      default:
        return number();
    }
  }

  JsonPtr object() {
    if (!consume('{')) return nullptr;
    auto out = std::make_unique<JsonValue>();
    std::map<std::string, JsonPtr> fields;
    skip_ws();
    if (consume('}')) {
      out->v = std::move(fields);
      return out;
    }
    while (true) {
      JsonPtr key = string_value();
      if (key == nullptr || !consume(':')) return nullptr;
      JsonPtr val = value();
      if (val == nullptr) return nullptr;
      fields[key->str()] = std::move(val);
      if (consume(',')) continue;
      if (consume('}')) break;
      return nullptr;
    }
    out->v = std::move(fields);
    return out;
  }

  JsonPtr array() {
    if (!consume('[')) return nullptr;
    auto out = std::make_unique<JsonValue>();
    std::vector<JsonPtr> items;
    skip_ws();
    if (consume(']')) {
      out->v = std::move(items);
      return out;
    }
    while (true) {
      JsonPtr val = value();
      if (val == nullptr) return nullptr;
      items.push_back(std::move(val));
      if (consume(',')) continue;
      if (consume(']')) break;
      return nullptr;
    }
    out->v = std::move(items);
    return out;
  }

  JsonPtr string_value() {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return nullptr;
    ++pos_;
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return nullptr;
        char esc = s_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out.push_back(esc);
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
          case 'f':
            break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return nullptr;
            pos_ += 4;  // validated as hex-ish, not decoded
            break;
          }
          default:
            return nullptr;
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= s_.size()) return nullptr;
    ++pos_;  // closing quote
    auto v = std::make_unique<JsonValue>();
    v->v = std::move(out);
    return v;
  }

  JsonPtr boolean() {
    auto v = std::make_unique<JsonValue>();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      v->v = true;
      return v;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      v->v = false;
      return v;
    }
    return nullptr;
  }

  JsonPtr null_value() {
    if (s_.compare(pos_, 4, "null") != 0) return nullptr;
    pos_ += 4;
    auto v = std::make_unique<JsonValue>();
    v->v = nullptr;
    return v;
  }

  JsonPtr number() {
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      digits |= std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0;
      ++pos_;
    }
    if (!digits) return nullptr;
    auto v = std::make_unique<JsonValue>();
    v->v = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

JsonPtr parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

std::uint64_t exact_percentile(std::vector<std::uint64_t> sorted, double q) {
  // Same nearest-rank convention as Histogram::percentile.
  const double pos = q * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(pos)];
}

// ---------------------------------------------------------------------------
// Histogram

TEST(ObsHistogram, ExactInLinearRange) {
  obs::Histogram h;
  std::vector<std::uint64_t> ref;
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint64_t> val(0, 255);
  for (int i = 0; i < 5000; ++i) {
    std::uint64_t v = val(rng);
    h.record(v);
    ref.push_back(v);
  }
  std::sort(ref.begin(), ref.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.percentile(q), exact_percentile(ref, q)) << "q=" << q;
  }
  EXPECT_EQ(h.min(), ref.front());
  EXPECT_EQ(h.max(), ref.back());
  EXPECT_EQ(h.count(), ref.size());
}

TEST(ObsHistogram, BoundedRelativeErrorOnWideRange) {
  obs::Histogram h;
  std::vector<std::uint64_t> ref;
  std::mt19937_64 rng(11);
  // Log-uniform over ~9 decades: stresses every octave of the layout.
  std::uniform_real_distribution<double> exp(0.0, 30.0);
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(std::pow(2.0, exp(rng)));
    h.record(v);
    ref.push_back(v);
  }
  std::sort(ref.begin(), ref.end());
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double exact = static_cast<double>(exact_percentile(ref, q));
    const double approx = static_cast<double>(h.percentile(q));
    // Sub-bucket resolution is 1/128; allow 1%.
    EXPECT_NEAR(approx, exact, std::max(1.0, exact * 0.01)) << "q=" << q;
  }
  EXPECT_EQ(h.max(), ref.back());   // min/max tracked exactly
  EXPECT_EQ(h.min(), ref.front());
  const double exact_mean =
      static_cast<double>(std::accumulate(ref.begin(), ref.end(),
                                          std::uint64_t{0})) /
      static_cast<double>(ref.size());
  EXPECT_NEAR(h.mean(), exact_mean, exact_mean * 1e-9);
}

TEST(ObsHistogram, MergeMatchesCombinedRecording) {
  obs::Histogram a, b, combined;
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::uint64_t> val(0, 1u << 20);
  for (int i = 0; i < 3000; ++i) {
    std::uint64_t v = val(rng);
    ((i % 2 == 0) ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.percentile(q), combined.percentile(q));
  }
}

TEST(ObsHistogram, BucketIndexRoundTrip) {
  std::mt19937_64 rng(19);
  for (int i = 0; i < 100000; ++i) {
    std::uint64_t v = rng() >> (rng() % 64);
    std::size_t idx = obs::Histogram::bucket_index(v);
    ASSERT_LT(idx, obs::Histogram::kNumBuckets);
    EXPECT_GE(v, obs::Histogram::bucket_lower(idx));
    EXPECT_LE(v, obs::Histogram::bucket_upper(idx));
  }
}

TEST(ObsHistogram, EmptyIsZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

// Merge edge cases the campaign reduction leans on: merging an empty
// operand is a no-op (must not clobber min/max with the empty side's
// zero-state), and merging into an empty histogram adopts the operand.
TEST(ObsHistogram, MergeEmptyOperandIsNoOp) {
  obs::Histogram a, empty;
  a.record(5);
  a.record(9);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 9u);
  EXPECT_DOUBLE_EQ(a.mean(), 7.0);
}

TEST(ObsHistogram, MergeIntoEmptyAdoptsOperand) {
  obs::Histogram a, b;
  b.record(3);
  b.record(11);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 3u);
  EXPECT_EQ(a.max(), 11u);
  EXPECT_EQ(a.percentile(0.5), b.percentile(0.5));
}

TEST(ObsHistogram, PercentileClampsQOutsideUnitInterval) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.percentile(-0.5), h.percentile(0.0));
  EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
  EXPECT_EQ(h.percentile(2.0), h.max());
}

// ---------------------------------------------------------------------------
// Registry + JSON

TEST(ObsRegistry, LabeledInstrumentsAndJson) {
  obs::MetricsRegistry reg;
  reg.counter("pkts", {{"link", "0->1"}}).inc(3);
  reg.counter("pkts", {{"link", "0->1"}}).inc(2);  // same instrument
  reg.counter("pkts", {{"link", "1->2"}}).inc();
  reg.gauge("load").set(0.25);
  reg.histogram("lat").record(42);

  EXPECT_EQ(reg.counter("pkts", {{"link", "0->1"}}).value(), 5u);
  ASSERT_NE(reg.find_counter("pkts", {{"link", "1->2"}}), nullptr);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);

  std::ostringstream os;
  reg.write_json(os);
  JsonPtr doc = parse_json(os.str());
  ASSERT_NE(doc, nullptr) << os.str();
  const JsonValue* counters = doc->field("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->field("pkts{link=0->1}"), nullptr);
  EXPECT_DOUBLE_EQ(counters->field("pkts{link=0->1}")->number(), 5.0);
  const JsonValue* hist = doc->field("histograms");
  ASSERT_NE(hist, nullptr);
  ASSERT_NE(hist->field("lat"), nullptr);
  EXPECT_DOUBLE_EQ(hist->field("lat")->field("count")->number(), 1.0);
}

// ---------------------------------------------------------------------------
// Registry merge (the campaign reduction)

TEST(ObsRegistry, RelabelKeyAppendsInsideExistingBraces) {
  const obs::LabelSet extra = {{"model", "random"}, {"faults", "2"}};
  EXPECT_EQ(obs::MetricsRegistry::relabel_key("lat", extra),
            "lat{model=random,faults=2}");
  EXPECT_EQ(obs::MetricsRegistry::relabel_key("lat{link=0->1}", extra),
            "lat{link=0->1,model=random,faults=2}");
  EXPECT_EQ(obs::MetricsRegistry::relabel_key("lat{link=0->1}", {}),
            "lat{link=0->1}");
  // Relabeled keys must be reachable through the normal lookup path.
  obs::MetricsRegistry reg;
  reg.counter("lat", {{"link", "0->1"}, {"model", "random"}}).inc();
  EXPECT_EQ(obs::MetricsRegistry::relabel_key("lat{link=0->1}",
                                              {{"model", "random"}}),
            "lat{link=0->1,model=random}");
  EXPECT_NE(reg.find_counter("lat", {{"link", "0->1"}, {"model", "random"}}),
            nullptr);
}

TEST(ObsRegistry, MergeAddsCountersUnderExtraLabels) {
  obs::MetricsRegistry total, trial;
  trial.counter("sim.delivered").inc(7);
  trial.counter("sim.delivered", {{"link", "a"}}).inc(2);
  obs::MergeOptions opts;
  opts.extra_labels = {{"model", "random"}};
  total.merge(trial, opts);
  total.merge(trial, opts);  // second trial of the same cell
  ASSERT_NE(total.find_counter("sim.delivered", {{"model", "random"}}),
            nullptr);
  EXPECT_EQ(total.find_counter("sim.delivered", {{"model", "random"}})
                ->value(),
            14u);
  EXPECT_EQ(total.find_counter("sim.delivered",
                               {{"link", "a"}, {"model", "random"}})
                ->value(),
            4u);
  EXPECT_EQ(total.find_counter("sim.delivered"), nullptr);  // only labeled
}

TEST(ObsRegistry, MergeGaugePolicies) {
  auto policy_for = [](obs::GaugeMerge policy) {
    obs::MergeOptions opts;
    opts.gauge_policy = [policy](const std::string&) { return policy; };
    return opts;
  };
  for (obs::GaugeMerge policy :
       {obs::GaugeMerge::kLast, obs::GaugeMerge::kMin, obs::GaugeMerge::kMax,
        obs::GaugeMerge::kSum}) {
    obs::MetricsRegistry total, a, b;
    a.gauge("g").set(3.0);
    b.gauge("g").set(1.0);
    total.merge(a, policy_for(policy));
    total.merge(b, policy_for(policy));
    double expect = 0.0;
    switch (policy) {
      case obs::GaugeMerge::kLast:
        expect = 1.0;
        break;
      case obs::GaugeMerge::kMin:
        expect = 1.0;
        break;
      case obs::GaugeMerge::kMax:
        expect = 3.0;
        break;
      case obs::GaugeMerge::kSum:
        expect = 4.0;
        break;
    }
    EXPECT_DOUBLE_EQ(total.gauge("g").value(), expect)
        << "policy " << static_cast<int>(policy);
  }
  // Default policy (no callback) is last-wins.
  obs::MetricsRegistry total, a;
  a.gauge("g").set(2.5);
  total.gauge("g").set(9.0);
  total.merge(a);
  EXPECT_DOUBLE_EQ(total.gauge("g").value(), 2.5);
}

TEST(ObsRegistry, MergedHistogramMatchesConcatenatedRecords) {
  obs::MetricsRegistry total, t1, t2;
  obs::Histogram combined;
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<std::uint64_t> val(0, 1u << 16);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = val(rng);
    ((i % 2 == 0) ? t1 : t2).histogram("lat").record(v);
    combined.record(v);
  }
  total.merge(t1);
  total.merge(t2);
  const obs::Histogram* merged = total.find_histogram("lat");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count(), combined.count());
  EXPECT_EQ(merged->min(), combined.min());
  EXPECT_EQ(merged->max(), combined.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(merged->percentile(q), combined.percentile(q));
  }
}

// ---------------------------------------------------------------------------
// Trace recorder

// Validates the trace document: parses, has a traceEvents array, every
// event carries the required fields, B/E events are well nested with
// non-decreasing timestamps per (pid,tid) lane.
void validate_trace(const std::string& text, std::size_t expect_events) {
  JsonPtr doc = parse_json(text);
  ASSERT_NE(doc, nullptr) << text.substr(0, 200);
  const JsonValue* events = doc->field("traceEvents");
  ASSERT_NE(events, nullptr);
  const auto* arr = events->array();
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(arr->size(), expect_events);

  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::vector<std::pair<std::string, double>>>
      open_spans;  // (pid,tid) -> stack of (name, ts)
  std::map<std::pair<std::uint64_t, std::uint64_t>, double> last_ts;
  for (const JsonPtr& ev : *arr) {
    ASSERT_NE(ev->field("name"), nullptr);
    ASSERT_NE(ev->field("ph"), nullptr);
    ASSERT_NE(ev->field("ts"), nullptr);
    ASSERT_NE(ev->field("pid"), nullptr);
    ASSERT_NE(ev->field("tid"), nullptr);
    const std::string ph = ev->field("ph")->str();
    const double ts = ev->field("ts")->number();
    const auto lane = std::make_pair(
        static_cast<std::uint64_t>(ev->field("pid")->number()),
        static_cast<std::uint64_t>(ev->field("tid")->number()));
    if (ph == "B" || ph == "E") {
      // B/E streams must be time-ordered within a lane for nesting to be
      // meaningful.
      auto it = last_ts.find(lane);
      if (it != last_ts.end()) EXPECT_GE(ts, it->second);
      last_ts[lane] = ts;
    }
    if (ph == "B") {
      open_spans[lane].emplace_back(ev->field("name")->str(), ts);
    } else if (ph == "E") {
      auto& stack = open_spans[lane];
      ASSERT_FALSE(stack.empty()) << "E without matching B";
      EXPECT_EQ(stack.back().first, ev->field("name")->str());
      EXPECT_GE(ts, stack.back().second);
      stack.pop_back();
    } else if (ph == "X") {
      ASSERT_NE(ev->field("dur"), nullptr);
      EXPECT_GE(ev->field("dur")->number(), 0.0);
    }
  }
  for (const auto& [lane, stack] : open_spans) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on lane " << lane.first
                               << "/" << lane.second;
  }
}

TEST(ObsTrace, JsonValidatesAndNests) {
  obs::TraceRecorder rec;
  rec.begin("t", "outer", 0, 1, 10);
  rec.begin("t", "inner", 0, 1, 12, {{"k", 1}});
  rec.instant("t", "mark \"quoted\"", 0, 1, 13);
  rec.end("t", "inner", 0, 1, 15);
  rec.end("t", "outer", 0, 1, 20);
  rec.complete("t", "span", 0, 2, 5, 7, {{"a", 1}, {"b", 2}});
  rec.counter("gauge", 0, 8, 42);

  std::ostringstream os;
  rec.write_json(os);
  validate_trace(os.str(), 7);
}

TEST(ObsTrace, CapacityBoundsMemory) {
  obs::TraceRecorder rec(4);
  for (int i = 0; i < 10; ++i) rec.instant("t", "e", 0, 0, i);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  std::ostringstream os;
  rec.write_json(os);
  validate_trace(os.str(), 4);
}

// ---------------------------------------------------------------------------
// Sink wiring: wormhole

TEST(ObsSink, WormholeOccupancySumsToFlitCycles) {
  auto topo = make_butterfly_sim(3);
  WormholeConfig cfg;
  cfg.vcs = 6;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 20000;
  obs::Sink sink;
  sink.enable_trace();
  WormholeStats s = run_wormhole(*topo, cfg, 3, nullptr, &sink);
  ASSERT_FALSE(s.deadlocked);
  ASSERT_GT(s.packets.delivered(), 0u);

  // Per-link/per-VC occupancy must sum to the independently integrated
  // total buffered flit-cycles.
  std::uint64_t occupancy_sum = 0;
  for (const obs::LinkStats& link : sink.links()) {
    ASSERT_EQ(link.vc_occupancy.size(), cfg.vcs);
    occupancy_sum += link.occupancy();
    // A physical channel moves at most one flit per cycle.
    EXPECT_LE(link.forwarded, s.cycles);
    EXPECT_GE(link.utilization(sink.run_cycles()), 0.0);
    EXPECT_LE(link.utilization(sink.run_cycles()), 1.0);
  }
  const obs::Counter* buffered =
      sink.metrics().find_counter("wormhole.flit_cycles_buffered");
  ASSERT_NE(buffered, nullptr);
  EXPECT_EQ(occupancy_sum, buffered->value());
  EXPECT_GT(occupancy_sum, 0u);

  // Registry mirrors the run's stats.
  const obs::Counter* delivered =
      sink.metrics().find_counter("wormhole.delivered");
  ASSERT_NE(delivered, nullptr);
  EXPECT_EQ(delivered->value(), s.packets.delivered());
  const obs::Histogram* lat =
      sink.metrics().find_histogram("wormhole.packet_latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), s.packets.delivered());
  EXPECT_EQ(lat->percentile(0.99), s.packets.latency_percentile(0.99));

  // Trace and export documents validate. Under -DHBNET_TRACE=OFF the
  // emission sites are compiled out, so the recorder legitimately
  // stays empty -- only require events when tracing is compiled in.
  ASSERT_NE(sink.trace(), nullptr);
#if HBNET_TRACE
  EXPECT_GT(sink.trace()->size(), 0u);
#endif
  std::ostringstream trace_os;
  sink.trace()->write_json(trace_os);
  validate_trace(trace_os.str(), sink.trace()->size());
  std::ostringstream metrics_os;
  sink.write_metrics_json(metrics_os);
  EXPECT_NE(parse_json(metrics_os.str()), nullptr);
}

TEST(ObsSink, WormholeWithoutSinkMatchesWithSink) {
  auto topo = make_butterfly_sim(3);
  WormholeConfig cfg;
  cfg.vcs = 6;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 20000;
  obs::Sink sink;
  WormholeStats bare = run_wormhole(*topo, cfg, 3);
  WormholeStats observed = run_wormhole(*topo, cfg, 3, nullptr, &sink);
  // Observability must not perturb the simulation.
  EXPECT_EQ(bare.cycles, observed.cycles);
  EXPECT_EQ(bare.packets.delivered(), observed.packets.delivered());
  EXPECT_EQ(bare.packets.latency_percentile(0.99),
            observed.packets.latency_percentile(0.99));
}

// ---------------------------------------------------------------------------
// Sink wiring: store-and-forward

TEST(ObsSink, StoreAndForwardLinksAndNodes) {
  auto topo = make_hyper_butterfly_sim(2, 3);
  SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 4000;
  obs::Sink sink;
  sink.enable_trace();
  SimStats s = run_simulation(*topo, cfg, {}, &sink);
  ASSERT_GT(s.delivered(), 0u);

  std::uint64_t moves = 0;
  for (const obs::LinkStats& link : sink.links()) moves += link.forwarded;
  const obs::Counter* moves_counter =
      sink.metrics().find_counter("sim.packet_moves");
  ASSERT_NE(moves_counter, nullptr);
  EXPECT_EQ(moves, moves_counter->value());
  // Every delivered measured packet contributes its hop count; unmeasured
  // warmup/drain packets can only add more.
  EXPECT_GE(static_cast<double>(moves),
            s.mean_hops() * static_cast<double>(s.delivered()));
  EXPECT_EQ(sink.node_occupancy().size(), topo->num_nodes());

  const obs::TimeSeries* injected = sink.find_time_series("sim.injected");
  const obs::TimeSeries* delivered = sink.find_time_series("sim.delivered");
  ASSERT_NE(injected, nullptr);
  ASSERT_NE(delivered, nullptr);
  std::uint64_t inj_sum = 0, del_sum = 0;
  for (std::uint64_t v : injected->values) inj_sum += v;
  for (std::uint64_t v : delivered->values) del_sum += v;
  EXPECT_EQ(inj_sum, del_sum);  // no faults: everything injected arrives
  EXPECT_GE(inj_sum, s.delivered());

  std::ostringstream trace_os;
  sink.trace()->write_json(trace_os);
  validate_trace(trace_os.str(), sink.trace()->size());
}

// ---------------------------------------------------------------------------
// Sink wiring: distsim engine

TEST(ObsSink, DistsimRoundsAndMessages) {
  // 4-cycle flood: node 0 starts, everyone forwards once, then halts.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  Graph g = b.build();

  Protocol p;
  p.on_init = [](ProcessContext& ctx) {
    if (ctx.id() == 0) ctx.send_all({1});
  };
  p.on_round = [](ProcessContext& ctx, const std::vector<Delivery>& inbox) {
    if (!inbox.empty()) {
      ctx.send_all({1});
      ctx.halt();
    }
  };

  obs::Sink sink;
  sink.enable_trace();
  RunResult r = run_protocol(g, p, 100, &sink);
  const obs::Counter* rounds = sink.metrics().find_counter("distsim.rounds");
  const obs::Counter* messages =
      sink.metrics().find_counter("distsim.messages");
  ASSERT_NE(rounds, nullptr);
  ASSERT_NE(messages, nullptr);
  EXPECT_EQ(rounds->value(), r.rounds);
  EXPECT_EQ(messages->value(), r.messages);

  const obs::TimeSeries* ts = sink.find_time_series("distsim.messages");
  ASSERT_NE(ts, nullptr);
  std::uint64_t ts_sum = 0;
  for (std::uint64_t v : ts->values) ts_sum += v;
  EXPECT_EQ(ts_sum, r.messages);

  std::ostringstream trace_os;
  sink.trace()->write_json(trace_os);
  validate_trace(trace_os.str(), sink.trace()->size());
}

}  // namespace
}  // namespace hbnet
