// The Even-Tarjan connectivity engine (graph/connectivity_sweep.hpp):
// brute-force cross-checks against the all-pairs max_disjoint_paths
// minimum, the thread-count determinism contract (identical kappa AND
// byte-identical checkpoints), kill/resume equivalence, checkpoint format
// round-trips, and the SweepState validators.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/validate.hpp"
#include "core/hyper_butterfly.hpp"
#include "graph/adjacency.hpp"
#include "graph/builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/connectivity_sweep.hpp"
#include "obs/metrics.hpp"
#include "topology/hb_implicit.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {
namespace {

const unsigned kThreadCounts[] = {1, 2, 8};

Graph random_graph(NodeId n, double p, std::uint64_t seed, bool connected) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  GraphBuilder b(n);
  if (connected) {
    for (NodeId u = 1; u < n; ++u) {
      b.add_edge(u, std::uniform_int_distribution<NodeId>(0, u - 1)(rng));
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (coin(rng) < p) b.add_edge(u, v);
    }
  }
  return b.build();
}

/// Whitney reference: kappa(G) is the minimum of max_disjoint_paths over
/// *all* pairs (adjacent pairs included -- they dominate only on complete
/// graphs, where the minimum is n-1). Intentionally quadratic.
std::uint32_t brute_force_kappa(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::uint32_t best = n - 1;  // K_n value; callers guarantee n >= 2
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = s + 1; t < n; ++t) {
      best = std::min(best, max_disjoint_paths(g, s, t));
    }
  }
  return best;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "sweep_" + name + ".ckpt";
}

TEST(ConnectivitySweep, MatchesBruteForceOnRandomGraphs) {
  // ~20 graphs across densities, sizes, and connectivity regimes. Every
  // graph is checked through the public entry point (which delegates to the
  // engine) so the whole stack is exercised.
  std::uint64_t seed = 1;
  for (NodeId n : {4, 6, 9, 12}) {
    for (double p : {0.1, 0.3, 0.6, 0.9}) {
      Graph g = random_graph(n, p, seed++, /*connected=*/true);
      EXPECT_EQ(vertex_connectivity(g), brute_force_kappa(g))
          << "n=" << n << " p=" << p;
    }
  }
  for (NodeId n : {5, 8, 11}) {
    // No spanning tree: disconnected graphs (kappa = 0) are likely.
    Graph g = random_graph(n, 0.25, seed++, /*connected=*/false);
    EXPECT_EQ(vertex_connectivity(g), brute_force_kappa(g)) << "n=" << n;
  }
}

TEST(ConnectivitySweep, EdgeCaseGraphs) {
  {  // Two components: kappa = 0.
    GraphBuilder b(6);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(3, 4);
    b.add_edge(4, 5);
    EXPECT_EQ(vertex_connectivity(b.build()), 0u);
  }
  {  // Complete K_5: every pair adjacent, kappa = n-1 = 4.
    Graph g = random_graph(5, 1.1, 7, false);
    EXPECT_EQ(vertex_connectivity(g), 4u);
    EXPECT_EQ(brute_force_kappa(g), 4u);
  }
  {  // Star K_{1,4}: the hub is a 1-cut; every leaf pair is non-adjacent.
    GraphBuilder b(5);
    for (NodeId leaf = 1; leaf < 5; ++leaf) b.add_edge(0, leaf);
    EXPECT_EQ(vertex_connectivity(b.build()), 1u);
  }
  {  // Path P_4: adjacent pairs coexist with distance-3 pairs.
    GraphBuilder b(4);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 3);
    EXPECT_EQ(vertex_connectivity(b.build()), 1u);
  }
  {  // Single vertex and single edge.
    EXPECT_EQ(vertex_connectivity(GraphBuilder(1).build()), 0u);
    GraphBuilder b(2);
    b.add_edge(0, 1);
    EXPECT_EQ(vertex_connectivity(b.build()), 1u);
  }
}

TEST(ConnectivitySweep, SingleSourceScheduleMatchesGenericOnCayleyGraphs) {
  // The vertex-transitive fast path must agree with the generic schedule
  // (and hence with brute force) on graphs that really are transitive.
  for (auto [m, n] : {std::pair<unsigned, unsigned>{1, 3}, {2, 3}}) {
    Graph g = HyperButterfly(m, n).to_graph();
    SweepOptions opts;
    opts.vertex_transitive = true;
    ConnectivitySweep sweep(g, opts);
    ExactConnectivityResult r = sweep.run();
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.kappa, m + 4);
    EXPECT_EQ(r.stages, 1u);
    EXPECT_EQ(r.kappa, vertex_connectivity(g));
  }
  Graph q4 = Hypercube(4).to_graph();
  SweepOptions opts;
  opts.vertex_transitive = true;
  EXPECT_EQ(ConnectivitySweep(q4, opts).run().kappa, 4u);
}

TEST(ConnectivitySweep, ThreadCountInvariance) {
  // The determinism contract: kappa, every SweepState field, and the final
  // checkpoint BYTES are identical for every thread count.
  Graph g = HyperButterfly(2, 3).to_graph();
  std::string reference_bytes;
  std::uint32_t reference_kappa = 0;
  for (unsigned threads : kThreadCounts) {
    const std::string path =
        temp_path("threads" + std::to_string(threads));
    std::remove(path.c_str());
    SweepOptions opts;
    opts.threads = threads;
    opts.block_size = 16;  // many blocks, so scheduling really interleaves
    opts.checkpoint_path = path;
    ConnectivitySweep sweep(g, opts);
    ExactConnectivityResult r = sweep.run();
    ASSERT_TRUE(r.complete);
    const std::string bytes = slurp(path);
    ASSERT_FALSE(bytes.empty());
    if (reference_bytes.empty()) {
      reference_bytes = bytes;
      reference_kappa = r.kappa;
    } else {
      EXPECT_EQ(r.kappa, reference_kappa) << threads << " threads";
      EXPECT_EQ(bytes, reference_bytes) << threads << " threads";
    }
    std::remove(path.c_str());
  }
  EXPECT_EQ(reference_kappa, 6u);  // kappa(HB(2,3)) = m+4
}

TEST(ConnectivitySweep, KillAndResumeIsByteIdentical) {
  Graph g = HyperButterfly(1, 3).to_graph();
  const std::string uninterrupted_path = temp_path("uninterrupted");
  const std::string resumed_path = temp_path("resumed");
  std::remove(uninterrupted_path.c_str());
  std::remove(resumed_path.c_str());

  SweepOptions base;
  base.block_size = 8;

  SweepOptions one_shot = base;
  one_shot.checkpoint_path = uninterrupted_path;
  ExactConnectivityResult full = ConnectivitySweep(g, one_shot).run();
  ASSERT_TRUE(full.complete);

  // "Kill" the run after every single block: each iteration constructs a
  // fresh sweep that must adopt the on-disk state and advance one block.
  ExactConnectivityResult step;
  int runs = 0;
  for (; runs < 1000; ++runs) {
    SweepOptions opts = base;
    opts.checkpoint_path = resumed_path;
    opts.max_blocks = 1;
    ConnectivitySweep sweep(g, opts);
    if (runs > 0) {
      EXPECT_TRUE(sweep.resumed()) << sweep.resume_note();
    }
    step = sweep.run();
    if (step.complete) break;
  }
  ASSERT_TRUE(step.complete) << "no convergence after " << runs << " runs";
  EXPECT_GT(runs, 0) << "max_blocks=1 should not finish in one run here";
  EXPECT_EQ(step.kappa, full.kappa);
  EXPECT_EQ(slurp(resumed_path), slurp(uninterrupted_path));
  std::remove(uninterrupted_path.c_str());
  std::remove(resumed_path.c_str());
}

TEST(ConnectivitySweep, CheckpointRoundTripAndRejection) {
  Graph g = HyperButterfly(1, 3).to_graph();
  SweepState st;
  st.num_nodes = g.num_nodes();
  st.num_edges = g.num_edges();
  st.fingerprint = graph_fingerprint(g);
  st.block_size = 64;
  st.stages_done = 2;
  st.blocks_done = 1;
  st.bound = 5;
  st.solves = 37;
  st.pruned = 4;

  const std::string text = serialize_checkpoint(st);
  std::optional<SweepState> back = parse_checkpoint(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_nodes, st.num_nodes);
  EXPECT_EQ(back->num_edges, st.num_edges);
  EXPECT_EQ(back->fingerprint, st.fingerprint);
  EXPECT_EQ(back->single_source, st.single_source);
  EXPECT_EQ(back->block_size, st.block_size);
  EXPECT_EQ(back->stages_done, st.stages_done);
  EXPECT_EQ(back->blocks_done, st.blocks_done);
  EXPECT_EQ(back->bound, st.bound);
  EXPECT_EQ(back->solves, st.solves);
  EXPECT_EQ(back->pruned, st.pruned);
  EXPECT_EQ(back->complete, st.complete);
  EXPECT_EQ(serialize_checkpoint(*back), text);

  EXPECT_FALSE(parse_checkpoint("").has_value());
  EXPECT_FALSE(parse_checkpoint("not a checkpoint").has_value());
  EXPECT_FALSE(parse_checkpoint(text + "trailing garbage").has_value());
  {
    std::string wrong_version = text;
    wrong_version.replace(wrong_version.find("v1"), 2, "v9");
    EXPECT_FALSE(parse_checkpoint(wrong_version).has_value());
  }
  {
    std::string bad_schedule = text;
    const auto at = bad_schedule.find("even-tarjan");
    ASSERT_NE(at, std::string::npos);
    bad_schedule.replace(at, 11, "round-robin");
    EXPECT_FALSE(parse_checkpoint(bad_schedule).has_value());
  }

  // save/load round trip through a real file.
  const std::string path = temp_path("roundtrip");
  ASSERT_TRUE(save_checkpoint(path, st));
  std::optional<SweepState> loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(serialize_checkpoint(*loaded), text);
  EXPECT_FALSE(load_checkpoint(path + ".missing").has_value());
  std::remove(path.c_str());
}

TEST(ConnectivitySweep, IncompatibleCheckpointRestartsInsteadOfResuming) {
  Graph g = HyperButterfly(1, 3).to_graph();
  const std::string path = temp_path("mismatch");

  // A checkpoint from a *different* graph: same file, wrong fingerprint.
  Graph other = Hypercube(4).to_graph();
  SweepState foreign;
  foreign.num_nodes = other.num_nodes();
  foreign.num_edges = other.num_edges();
  foreign.fingerprint = graph_fingerprint(other);
  foreign.block_size = 256;
  ASSERT_TRUE(save_checkpoint(path, foreign));

  SweepOptions opts;
  opts.checkpoint_path = path;
  ConnectivitySweep sweep(g, opts);
  EXPECT_FALSE(sweep.resumed());
  EXPECT_FALSE(sweep.resume_note().empty());
  ExactConnectivityResult r = sweep.run();  // restarts from scratch
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.kappa, 5u);
  std::remove(path.c_str());
}

TEST(ConnectivitySweep, MetricsAreRecorded) {
  Graph g = HyperButterfly(1, 3).to_graph();
  obs::MetricsRegistry metrics;
  SweepOptions opts;
  opts.metrics = &metrics;
  ExactConnectivityResult r = ConnectivitySweep(g, opts).run();
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(metrics.counter("connectivity.solves").value(), r.solves);
  EXPECT_EQ(metrics.counter("connectivity.pruned").value(), r.pruned);
  EXPECT_EQ(metrics.gauge("connectivity.bound").value(), r.kappa);
  ASSERT_NE(metrics.find_histogram("connectivity.flow"), nullptr);
  EXPECT_EQ(metrics.find_histogram("connectivity.flow")->count(), r.solves);
}

TEST(ConnectivitySweep, ValidatorAcceptsEngineStatesAndRejectsCorruption) {
  Graph g = HyperButterfly(1, 3).to_graph();
  SweepOptions opts;
  ConnectivitySweep sweep(g, opts);
  ExactConnectivityResult r = sweep.run();
  ASSERT_TRUE(r.complete);
  const SweepState good = sweep.state();
  EXPECT_EQ(check::validate(good), "");
  EXPECT_EQ(check::validate(good, g), "");

  SweepState bad = good;
  bad.version = 99;
  EXPECT_NE(check::validate(bad), "");

  bad = good;
  bad.block_size = 0;
  EXPECT_NE(check::validate(bad), "");

  bad = good;
  bad.bound = bad.num_nodes;  // exceeds the trivial n-1 bound
  EXPECT_NE(check::validate(bad), "");

  bad = good;
  bad.blocks_done = 3;  // complete state sitting mid-stage
  EXPECT_NE(check::validate(bad), "");

  bad = good;
  bad.fingerprint ^= 1;
  EXPECT_EQ(check::validate(bad), "");  // shape-only checks still pass
  EXPECT_NE(check::validate(bad, g), "");  // graph identity does not
}

TEST(ConnectivitySweep, SparsifyIsByteIdenticalOnRandomGraphs) {
  // The --sparsify contract: kappa, solve and prune counts, and the final
  // checkpoint BYTES are identical with certificates on or off. ~20 random
  // graphs across sizes and densities plus both schedules.
  std::uint64_t seed = 7000;
  int checked = 0;
  for (NodeId n : {6, 9, 12, 15}) {
    for (double p : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      Graph g = random_graph(n, p, seed++, /*connected=*/true);
      std::string bytes[2];
      std::uint32_t kappa[2];
      for (int s = 0; s < 2; ++s) {
        const std::string path = temp_path("sparsify" + std::to_string(s));
        std::remove(path.c_str());
        SweepOptions opts;
        opts.sparsify = (s == 1);
        opts.block_size = 4;
        opts.checkpoint_path = path;
        ExactConnectivityResult r = ConnectivitySweep(g, opts).run();
        ASSERT_TRUE(r.complete);
        kappa[s] = r.kappa;
        bytes[s] = slurp(path);
        std::remove(path.c_str());
      }
      EXPECT_EQ(kappa[0], kappa[1]) << "n=" << n << " p=" << p;
      EXPECT_EQ(bytes[0], bytes[1]) << "n=" << n << " p=" << p;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 20);
}

TEST(ConnectivitySweep, SparsifyIsByteIdenticalOnHbInstances) {
  for (auto [m, n] : {std::pair<unsigned, unsigned>{2, 3}, {3, 3}}) {
    Graph g = HyperButterfly(m, n).to_graph();
    std::string bytes[2];
    for (int s = 0; s < 2; ++s) {
      const std::string path = temp_path("hb_sparsify" + std::to_string(s));
      std::remove(path.c_str());
      SweepOptions opts;
      opts.vertex_transitive = true;
      opts.sparsify = (s == 1);
      opts.block_size = 32;
      opts.checkpoint_path = path;
      ExactConnectivityResult r = ConnectivitySweep(g, opts).run();
      ASSERT_TRUE(r.complete);
      EXPECT_EQ(r.kappa, m + 4);
      bytes[s] = slurp(path);
      std::remove(path.c_str());
    }
    EXPECT_EQ(bytes[0], bytes[1]) << "HB(" << m << "," << n << ")";
  }
}

TEST(ConnectivitySweep, ImplicitProviderMatchesCsrExactly) {
  // Same schedule, same solve/prune counts, same kappa; the checkpoint
  // differs only in the mode-tagged fingerprint field.
  for (auto [m, n] : {std::pair<unsigned, unsigned>{2, 3}, {3, 3}}) {
    Graph g = HyperButterfly(m, n).to_graph();
    HbImplicitAdjacency imp(m, n);
    SweepOptions opts;
    opts.vertex_transitive = true;
    ConnectivitySweep csr_sweep(g, opts);
    ConnectivitySweep imp_sweep(imp, opts);
    ExactConnectivityResult a = csr_sweep.run();
    ExactConnectivityResult b = imp_sweep.run();
    ASSERT_TRUE(a.complete);
    ASSERT_TRUE(b.complete);
    EXPECT_EQ(a.kappa, b.kappa);
    EXPECT_EQ(a.solves, b.solves);
    EXPECT_EQ(a.pruned, b.pruned);
    SweepState sa = csr_sweep.state();
    SweepState sb = imp_sweep.state();
    EXPECT_NE(sa.fingerprint, sb.fingerprint);  // mode tag by design
    sb.fingerprint = sa.fingerprint;
    EXPECT_EQ(serialize_checkpoint(sa), serialize_checkpoint(sb));
  }
}

TEST(ConnectivitySweep, EdgeConnectivitySparsifyEquivalence) {
  std::uint64_t seed = 8100;
  for (NodeId n : {8, 12, 16}) {
    for (double p : {0.3, 0.7}) {
      Graph g = random_graph(n, p, seed++, /*connected=*/true);
      CsrAdjacency csr(g);
      EXPECT_EQ(edge_connectivity(csr, 0, /*sparsify=*/true),
                edge_connectivity(csr, 0, /*sparsify=*/false))
          << "n=" << n << " p=" << p;
    }
  }
  HbImplicitAdjacency imp(2, 3);
  EXPECT_EQ(edge_connectivity(imp, 0, true), 6u);
}

TEST(ConnectivitySweep, KillResumeWithSparsifyAcrossThreadCounts) {
  // Satellite contract: checkpoint kill/resume stays byte-identical with
  // sparsification enabled, at 1, 2, and 8 threads.
  Graph g = HyperButterfly(2, 3).to_graph();
  const std::string uninterrupted_path = temp_path("sp_uninterrupted");
  std::remove(uninterrupted_path.c_str());

  SweepOptions base;
  base.vertex_transitive = true;
  base.sparsify = true;
  base.block_size = 16;

  SweepOptions one_shot = base;
  one_shot.checkpoint_path = uninterrupted_path;
  ExactConnectivityResult full = ConnectivitySweep(g, one_shot).run();
  ASSERT_TRUE(full.complete);
  const std::string reference = slurp(uninterrupted_path);
  std::remove(uninterrupted_path.c_str());

  for (unsigned threads : kThreadCounts) {
    const std::string path =
        temp_path("sp_resume_t" + std::to_string(threads));
    std::remove(path.c_str());
    ExactConnectivityResult step;
    int runs = 0;
    for (; runs < 1000; ++runs) {
      SweepOptions opts = base;
      opts.threads = threads;
      opts.checkpoint_path = path;
      opts.max_blocks = 1;
      ConnectivitySweep sweep(g, opts);
      if (runs > 0) EXPECT_TRUE(sweep.resumed()) << sweep.resume_note();
      step = sweep.run();
      if (step.complete) break;
    }
    ASSERT_TRUE(step.complete) << threads << " threads";
    EXPECT_GT(runs, 0);
    EXPECT_EQ(step.kappa, full.kappa) << threads << " threads";
    EXPECT_EQ(slurp(path), reference) << threads << " threads";
    std::remove(path.c_str());
  }
}

TEST(ConnectivitySweep, OrbitScheduleIsExactAndChangesToken) {
  for (auto [m, n] : {std::pair<unsigned, unsigned>{2, 3}, {3, 3}}) {
    Graph g = HyperButterfly(m, n).to_graph();
    SweepOptions plain;
    plain.vertex_transitive = true;
    ExactConnectivityResult a = ConnectivitySweep(g, plain).run();

    SweepOptions orbit = plain;
    orbit.orbit_rep = [m = m, n = n](NodeId v) {
      return hb_cube_orbit_representative(m, n, v);
    };
    ConnectivitySweep sweep(g, orbit);
    ExactConnectivityResult b = sweep.run();
    ASSERT_TRUE(a.complete);
    ASSERT_TRUE(b.complete);
    EXPECT_EQ(a.kappa, b.kappa);
    EXPECT_LT(b.solves, a.solves);  // the whole point of the reduction
    EXPECT_TRUE(sweep.state().orbit);
    EXPECT_NE(serialize_checkpoint(sweep.state())
                  .find("single-source-orbits"),
              std::string::npos);
  }
}

TEST(ConnectivitySweep, OrbitCheckpointDoesNotCrossResume) {
  // An orbit checkpoint must not resume a non-orbit run and vice versa --
  // the position encodes which targets were skipped.
  Graph g = HyperButterfly(2, 3).to_graph();
  const std::string path = temp_path("orbit_cross");
  std::remove(path.c_str());

  SweepOptions orbit;
  orbit.vertex_transitive = true;
  orbit.checkpoint_path = path;
  orbit.max_blocks = 1;
  orbit.block_size = 16;
  orbit.orbit_rep = [](NodeId v) {
    return hb_cube_orbit_representative(2, 3, v);
  };
  ExactConnectivityResult partial = ConnectivitySweep(g, orbit).run();
  ASSERT_FALSE(partial.complete);

  SweepOptions plain;
  plain.vertex_transitive = true;
  plain.checkpoint_path = path;
  plain.block_size = 16;
  ConnectivitySweep sweep(g, plain);
  EXPECT_FALSE(sweep.resumed());
  EXPECT_FALSE(sweep.resume_note().empty());
  ExactConnectivityResult r = sweep.run();  // restarts cleanly
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.kappa, 6u);
  std::remove(path.c_str());
}

TEST(ConnectivitySweep, OrbitRepRequiresVertexTransitive) {
  Graph g = HyperButterfly(2, 3).to_graph();
  SweepOptions opts;
  opts.orbit_rep = [](NodeId v) { return v; };
  EXPECT_THROW(ConnectivitySweep(g, opts), std::invalid_argument);
}

TEST(ConnectivitySweep, SparsifyReportsArenaShrinkOnDenseGraph) {
  // Two K_48 cliques + 3 bridges + a degree-3 apex hanging off the first
  // clique: kappa = 3 = min degree, so the sweep's frozen pruning bound is
  // 3 from the very first block and every certificate is built at k = 3
  // (<= 3 * 96 edges vs 2262). The certificate arena peak must come out
  // >= 4x below the full-graph arena peak.
  GraphBuilder b(97);
  for (NodeId u = 0; u < 48; ++u) {
    for (NodeId v = u + 1; v < 48; ++v) {
      b.add_edge(u, v);
      b.add_edge(u + 48, v + 48);
    }
  }
  for (NodeId i = 0; i < 3; ++i) b.add_edge(i, 48 + i);
  for (NodeId i = 0; i < 3; ++i) b.add_edge(96, i);
  Graph g = b.build();

  double peaks[2];
  std::uint32_t kappa[2];
  for (int s = 0; s < 2; ++s) {
    obs::MetricsRegistry metrics;
    SweepOptions opts;
    opts.sparsify = (s == 1);
    opts.block_size = 2;
    opts.metrics = &metrics;
    ExactConnectivityResult r = ConnectivitySweep(g, opts).run();
    ASSERT_TRUE(r.complete);
    kappa[s] = r.kappa;
    peaks[s] = metrics.gauge("connectivity.arena_arcs_peak").value();
    EXPECT_GT(metrics.gauge("connectivity.cert_edges").value(), 0.0);
  }
  EXPECT_EQ(kappa[0], kappa[1]);
  EXPECT_EQ(kappa[0], 3u);
  EXPECT_GE(peaks[0], 4.0 * peaks[1]);
}

}  // namespace
}  // namespace hbnet
