// The Even-Tarjan connectivity engine (graph/connectivity_sweep.hpp):
// brute-force cross-checks against the all-pairs max_disjoint_paths
// minimum, the thread-count determinism contract (identical kappa AND
// byte-identical checkpoints), kill/resume equivalence, checkpoint format
// round-trips, and the SweepState validators.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "graph/validate.hpp"
#include "core/hyper_butterfly.hpp"
#include "graph/builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/connectivity_sweep.hpp"
#include "obs/metrics.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {
namespace {

const unsigned kThreadCounts[] = {1, 2, 8};

Graph random_graph(NodeId n, double p, std::uint64_t seed, bool connected) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  GraphBuilder b(n);
  if (connected) {
    for (NodeId u = 1; u < n; ++u) {
      b.add_edge(u, std::uniform_int_distribution<NodeId>(0, u - 1)(rng));
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (coin(rng) < p) b.add_edge(u, v);
    }
  }
  return b.build();
}

/// Whitney reference: kappa(G) is the minimum of max_disjoint_paths over
/// *all* pairs (adjacent pairs included -- they dominate only on complete
/// graphs, where the minimum is n-1). Intentionally quadratic.
std::uint32_t brute_force_kappa(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::uint32_t best = n - 1;  // K_n value; callers guarantee n >= 2
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = s + 1; t < n; ++t) {
      best = std::min(best, max_disjoint_paths(g, s, t));
    }
  }
  return best;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "sweep_" + name + ".ckpt";
}

TEST(ConnectivitySweep, MatchesBruteForceOnRandomGraphs) {
  // ~20 graphs across densities, sizes, and connectivity regimes. Every
  // graph is checked through the public entry point (which delegates to the
  // engine) so the whole stack is exercised.
  std::uint64_t seed = 1;
  for (NodeId n : {4, 6, 9, 12}) {
    for (double p : {0.1, 0.3, 0.6, 0.9}) {
      Graph g = random_graph(n, p, seed++, /*connected=*/true);
      EXPECT_EQ(vertex_connectivity(g), brute_force_kappa(g))
          << "n=" << n << " p=" << p;
    }
  }
  for (NodeId n : {5, 8, 11}) {
    // No spanning tree: disconnected graphs (kappa = 0) are likely.
    Graph g = random_graph(n, 0.25, seed++, /*connected=*/false);
    EXPECT_EQ(vertex_connectivity(g), brute_force_kappa(g)) << "n=" << n;
  }
}

TEST(ConnectivitySweep, EdgeCaseGraphs) {
  {  // Two components: kappa = 0.
    GraphBuilder b(6);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(3, 4);
    b.add_edge(4, 5);
    EXPECT_EQ(vertex_connectivity(b.build()), 0u);
  }
  {  // Complete K_5: every pair adjacent, kappa = n-1 = 4.
    Graph g = random_graph(5, 1.1, 7, false);
    EXPECT_EQ(vertex_connectivity(g), 4u);
    EXPECT_EQ(brute_force_kappa(g), 4u);
  }
  {  // Star K_{1,4}: the hub is a 1-cut; every leaf pair is non-adjacent.
    GraphBuilder b(5);
    for (NodeId leaf = 1; leaf < 5; ++leaf) b.add_edge(0, leaf);
    EXPECT_EQ(vertex_connectivity(b.build()), 1u);
  }
  {  // Path P_4: adjacent pairs coexist with distance-3 pairs.
    GraphBuilder b(4);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 3);
    EXPECT_EQ(vertex_connectivity(b.build()), 1u);
  }
  {  // Single vertex and single edge.
    EXPECT_EQ(vertex_connectivity(GraphBuilder(1).build()), 0u);
    GraphBuilder b(2);
    b.add_edge(0, 1);
    EXPECT_EQ(vertex_connectivity(b.build()), 1u);
  }
}

TEST(ConnectivitySweep, SingleSourceScheduleMatchesGenericOnCayleyGraphs) {
  // The vertex-transitive fast path must agree with the generic schedule
  // (and hence with brute force) on graphs that really are transitive.
  for (auto [m, n] : {std::pair<unsigned, unsigned>{1, 3}, {2, 3}}) {
    Graph g = HyperButterfly(m, n).to_graph();
    SweepOptions opts;
    opts.vertex_transitive = true;
    ConnectivitySweep sweep(g, opts);
    ExactConnectivityResult r = sweep.run();
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.kappa, m + 4);
    EXPECT_EQ(r.stages, 1u);
    EXPECT_EQ(r.kappa, vertex_connectivity(g));
  }
  Graph q4 = Hypercube(4).to_graph();
  SweepOptions opts;
  opts.vertex_transitive = true;
  EXPECT_EQ(ConnectivitySweep(q4, opts).run().kappa, 4u);
}

TEST(ConnectivitySweep, ThreadCountInvariance) {
  // The determinism contract: kappa, every SweepState field, and the final
  // checkpoint BYTES are identical for every thread count.
  Graph g = HyperButterfly(2, 3).to_graph();
  std::string reference_bytes;
  std::uint32_t reference_kappa = 0;
  for (unsigned threads : kThreadCounts) {
    const std::string path =
        temp_path("threads" + std::to_string(threads));
    std::remove(path.c_str());
    SweepOptions opts;
    opts.threads = threads;
    opts.block_size = 16;  // many blocks, so scheduling really interleaves
    opts.checkpoint_path = path;
    ConnectivitySweep sweep(g, opts);
    ExactConnectivityResult r = sweep.run();
    ASSERT_TRUE(r.complete);
    const std::string bytes = slurp(path);
    ASSERT_FALSE(bytes.empty());
    if (reference_bytes.empty()) {
      reference_bytes = bytes;
      reference_kappa = r.kappa;
    } else {
      EXPECT_EQ(r.kappa, reference_kappa) << threads << " threads";
      EXPECT_EQ(bytes, reference_bytes) << threads << " threads";
    }
    std::remove(path.c_str());
  }
  EXPECT_EQ(reference_kappa, 6u);  // kappa(HB(2,3)) = m+4
}

TEST(ConnectivitySweep, KillAndResumeIsByteIdentical) {
  Graph g = HyperButterfly(1, 3).to_graph();
  const std::string uninterrupted_path = temp_path("uninterrupted");
  const std::string resumed_path = temp_path("resumed");
  std::remove(uninterrupted_path.c_str());
  std::remove(resumed_path.c_str());

  SweepOptions base;
  base.block_size = 8;

  SweepOptions one_shot = base;
  one_shot.checkpoint_path = uninterrupted_path;
  ExactConnectivityResult full = ConnectivitySweep(g, one_shot).run();
  ASSERT_TRUE(full.complete);

  // "Kill" the run after every single block: each iteration constructs a
  // fresh sweep that must adopt the on-disk state and advance one block.
  ExactConnectivityResult step;
  int runs = 0;
  for (; runs < 1000; ++runs) {
    SweepOptions opts = base;
    opts.checkpoint_path = resumed_path;
    opts.max_blocks = 1;
    ConnectivitySweep sweep(g, opts);
    if (runs > 0) {
      EXPECT_TRUE(sweep.resumed()) << sweep.resume_note();
    }
    step = sweep.run();
    if (step.complete) break;
  }
  ASSERT_TRUE(step.complete) << "no convergence after " << runs << " runs";
  EXPECT_GT(runs, 0) << "max_blocks=1 should not finish in one run here";
  EXPECT_EQ(step.kappa, full.kappa);
  EXPECT_EQ(slurp(resumed_path), slurp(uninterrupted_path));
  std::remove(uninterrupted_path.c_str());
  std::remove(resumed_path.c_str());
}

TEST(ConnectivitySweep, CheckpointRoundTripAndRejection) {
  Graph g = HyperButterfly(1, 3).to_graph();
  SweepState st;
  st.num_nodes = g.num_nodes();
  st.num_edges = g.num_edges();
  st.fingerprint = graph_fingerprint(g);
  st.block_size = 64;
  st.stages_done = 2;
  st.blocks_done = 1;
  st.bound = 5;
  st.solves = 37;
  st.pruned = 4;

  const std::string text = serialize_checkpoint(st);
  std::optional<SweepState> back = parse_checkpoint(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_nodes, st.num_nodes);
  EXPECT_EQ(back->num_edges, st.num_edges);
  EXPECT_EQ(back->fingerprint, st.fingerprint);
  EXPECT_EQ(back->single_source, st.single_source);
  EXPECT_EQ(back->block_size, st.block_size);
  EXPECT_EQ(back->stages_done, st.stages_done);
  EXPECT_EQ(back->blocks_done, st.blocks_done);
  EXPECT_EQ(back->bound, st.bound);
  EXPECT_EQ(back->solves, st.solves);
  EXPECT_EQ(back->pruned, st.pruned);
  EXPECT_EQ(back->complete, st.complete);
  EXPECT_EQ(serialize_checkpoint(*back), text);

  EXPECT_FALSE(parse_checkpoint("").has_value());
  EXPECT_FALSE(parse_checkpoint("not a checkpoint").has_value());
  EXPECT_FALSE(parse_checkpoint(text + "trailing garbage").has_value());
  {
    std::string wrong_version = text;
    wrong_version.replace(wrong_version.find("v1"), 2, "v9");
    EXPECT_FALSE(parse_checkpoint(wrong_version).has_value());
  }
  {
    std::string bad_schedule = text;
    const auto at = bad_schedule.find("even-tarjan");
    ASSERT_NE(at, std::string::npos);
    bad_schedule.replace(at, 11, "round-robin");
    EXPECT_FALSE(parse_checkpoint(bad_schedule).has_value());
  }

  // save/load round trip through a real file.
  const std::string path = temp_path("roundtrip");
  ASSERT_TRUE(save_checkpoint(path, st));
  std::optional<SweepState> loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(serialize_checkpoint(*loaded), text);
  EXPECT_FALSE(load_checkpoint(path + ".missing").has_value());
  std::remove(path.c_str());
}

TEST(ConnectivitySweep, IncompatibleCheckpointRestartsInsteadOfResuming) {
  Graph g = HyperButterfly(1, 3).to_graph();
  const std::string path = temp_path("mismatch");

  // A checkpoint from a *different* graph: same file, wrong fingerprint.
  Graph other = Hypercube(4).to_graph();
  SweepState foreign;
  foreign.num_nodes = other.num_nodes();
  foreign.num_edges = other.num_edges();
  foreign.fingerprint = graph_fingerprint(other);
  foreign.block_size = 256;
  ASSERT_TRUE(save_checkpoint(path, foreign));

  SweepOptions opts;
  opts.checkpoint_path = path;
  ConnectivitySweep sweep(g, opts);
  EXPECT_FALSE(sweep.resumed());
  EXPECT_FALSE(sweep.resume_note().empty());
  ExactConnectivityResult r = sweep.run();  // restarts from scratch
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.kappa, 5u);
  std::remove(path.c_str());
}

TEST(ConnectivitySweep, MetricsAreRecorded) {
  Graph g = HyperButterfly(1, 3).to_graph();
  obs::MetricsRegistry metrics;
  SweepOptions opts;
  opts.metrics = &metrics;
  ExactConnectivityResult r = ConnectivitySweep(g, opts).run();
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(metrics.counter("connectivity.solves").value(), r.solves);
  EXPECT_EQ(metrics.counter("connectivity.pruned").value(), r.pruned);
  EXPECT_EQ(metrics.gauge("connectivity.bound").value(), r.kappa);
  ASSERT_NE(metrics.find_histogram("connectivity.flow"), nullptr);
  EXPECT_EQ(metrics.find_histogram("connectivity.flow")->count(), r.solves);
}

TEST(ConnectivitySweep, ValidatorAcceptsEngineStatesAndRejectsCorruption) {
  Graph g = HyperButterfly(1, 3).to_graph();
  SweepOptions opts;
  ConnectivitySweep sweep(g, opts);
  ExactConnectivityResult r = sweep.run();
  ASSERT_TRUE(r.complete);
  const SweepState good = sweep.state();
  EXPECT_EQ(check::validate(good), "");
  EXPECT_EQ(check::validate(good, g), "");

  SweepState bad = good;
  bad.version = 99;
  EXPECT_NE(check::validate(bad), "");

  bad = good;
  bad.block_size = 0;
  EXPECT_NE(check::validate(bad), "");

  bad = good;
  bad.bound = bad.num_nodes;  // exceeds the trivial n-1 bound
  EXPECT_NE(check::validate(bad), "");

  bad = good;
  bad.blocks_done = 3;  // complete state sitting mid-stage
  EXPECT_NE(check::validate(bad), "");

  bad = good;
  bad.fingerprint ^= 1;
  EXPECT_EQ(check::validate(bad), "");  // shape-only checks still pass
  EXPECT_NE(check::validate(bad, g), "");  // graph identity does not
}

}  // namespace
}  // namespace hbnet
