// hbnet::par thread pool: full coverage of the parallel_for /
// parallel_reduce contract (every index exactly once, dynamic chunking,
// caller participation) and of the thread-count resolution chain
// (set_default_threads > HBNET_THREADS > hardware concurrency).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "par/pool.hpp"

namespace hbnet {
namespace {

/// Restores the process-wide thread default and HBNET_THREADS on scope
/// exit so tests cannot leak configuration into each other.
struct ThreadConfigGuard {
  ~ThreadConfigGuard() {
    par::set_default_threads(0);
    ::unsetenv("HBNET_THREADS");
  }
};

TEST(ParPool, ResolveThreadsPrefersExplicitArgument) {
  ThreadConfigGuard guard;
  par::set_default_threads(3);
  EXPECT_EQ(par::resolve_threads(7), 7u);
  EXPECT_EQ(par::resolve_threads(0), 3u);
}

TEST(ParPool, DefaultThreadsResolutionChain) {
  ThreadConfigGuard guard;
  ::setenv("HBNET_THREADS", "2", 1);
  EXPECT_EQ(par::default_threads(), 2u);
  par::set_default_threads(5);  // override beats the environment
  EXPECT_EQ(par::default_threads(), 5u);
  par::set_default_threads(0);  // cleared: back to the environment
  EXPECT_EQ(par::default_threads(), 2u);
  ::unsetenv("HBNET_THREADS");
  EXPECT_GE(par::default_threads(), 1u);  // hardware concurrency fallback
}

TEST(ParPool, MalformedEnvFallsThrough) {
  ThreadConfigGuard guard;
  ::setenv("HBNET_THREADS", "not-a-number", 1);
  EXPECT_GE(par::default_threads(), 1u);
  ::setenv("HBNET_THREADS", "0", 1);
  EXPECT_GE(par::default_threads(), 1u);
}

TEST(ParPool, SingleThreadPoolSpawnsNothingAndRuns) {
  par::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::uint64_t i) { ++hits[i]; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ParPool, EveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    par::ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    constexpr std::uint64_t kCount = 10000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(kCount, [&](std::uint64_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::uint64_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " @" << threads;
    }
  }
}

TEST(ParPool, ChunksPartitionTheRange) {
  par::ThreadPool pool(4);
  constexpr std::uint64_t kCount = 1013;  // prime: uneven final chunk
  std::vector<std::atomic<int>> hits(kCount);
  std::atomic<std::uint64_t> max_span{0};
  pool.parallel_for_chunks(kCount, 64,
                           [&](std::uint64_t begin, std::uint64_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end, kCount);
    std::uint64_t span = end - begin, seen = max_span.load();
    while (span > seen && !max_span.compare_exchange_weak(seen, span)) {
    }
    for (std::uint64_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_LE(max_span.load(), 64u);
  for (std::uint64_t i = 0; i < kCount; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParPool, ZeroAndTinyCounts) {
  par::ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> hits{0};
  pool.parallel_for(1, [&](std::uint64_t i) {
    EXPECT_EQ(i, 0u);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ParPool, ReduceSumMatchesSerialForEveryThreadCount) {
  constexpr std::uint64_t kCount = 5000;
  const std::uint64_t expected = kCount * (kCount - 1) / 2;
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    par::ThreadPool pool(threads);
    std::uint64_t sum = par::parallel_reduce(
        pool, kCount, std::uint64_t{0}, [](std::uint64_t i) { return i; },
        [](std::uint64_t a, std::uint64_t b) { return a + b; }, 128);
    EXPECT_EQ(sum, expected) << threads << " threads";
  }
}

TEST(ParPool, ReduceMinFindsPlantedMinimum) {
  constexpr std::uint64_t kCount = 4096;
  auto value = [](std::uint64_t i) {
    return i == 2718 ? std::uint64_t{1} : 10 + (i * 2654435761u) % 1000;
  };
  for (unsigned threads : {1u, 4u}) {
    par::ThreadPool pool(threads);
    std::uint64_t best = par::parallel_reduce(
        pool, kCount, std::numeric_limits<std::uint64_t>::max(), value,
        [](std::uint64_t a, std::uint64_t b) { return a < b ? a : b; }, 32);
    EXPECT_EQ(best, 1u);
  }
}

TEST(ParPool, PoolIsReusableAcrossJobs) {
  par::ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(100, [&](std::uint64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

}  // namespace
}  // namespace hbnet
