// Tests for max-flow, vertex/edge connectivity and disjoint-path extraction
// and verification -- the machinery behind Corollary 1's audit.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/maxflow.hpp"
#include "topology/guest_graphs.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {
namespace {

TEST(Dinic, SimpleDiamond) {
  Dinic d(4);
  d.add_arc(0, 1, 1);
  d.add_arc(0, 2, 1);
  d.add_arc(1, 3, 1);
  d.add_arc(2, 3, 1);
  EXPECT_EQ(d.max_flow(0, 3, 100), 2);
}

TEST(Dinic, RespectsLimit) {
  Dinic d(2);
  d.add_arc(0, 1, 5);
  EXPECT_EQ(d.max_flow(0, 1, 3), 3);
}

TEST(Dinic, FlowOnReportsArcUsage) {
  Dinic d(3);
  std::uint32_t a01 = d.add_arc(0, 1, 2);
  std::uint32_t a12 = d.add_arc(1, 2, 1);
  EXPECT_EQ(d.max_flow(0, 2, 100), 1);
  EXPECT_EQ(d.flow_on(a01), 1);
  EXPECT_EQ(d.flow_on(a12), 1);
}

TEST(Connectivity, CycleIsTwoConnected) {
  Graph c = make_cycle(9);
  EXPECT_EQ(vertex_connectivity(c), 2u);
  EXPECT_EQ(edge_connectivity(c), 2u);
  EXPECT_EQ(max_disjoint_paths(c, 0, 4), 2u);
}

TEST(Connectivity, PathIsOneConnected) {
  Graph p = make_path(6);
  EXPECT_EQ(vertex_connectivity(p), 1u);
  EXPECT_EQ(edge_connectivity(p), 1u);
}

TEST(Connectivity, TreeIsOneConnected) {
  EXPECT_EQ(vertex_connectivity(make_complete_binary_tree(4)), 1u);
}

TEST(Connectivity, CompleteGraph) {
  GraphBuilder b(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) b.add_edge(u, v);
  }
  Graph k6 = b.build();
  EXPECT_EQ(vertex_connectivity(k6), 5u);
  EXPECT_EQ(edge_connectivity(k6), 5u);
}

TEST(Connectivity, HypercubesAreMaximallyFaultTolerant) {
  for (unsigned m = 2; m <= 5; ++m) {
    EXPECT_EQ(vertex_connectivity(Hypercube(m).to_graph()), m) << "m=" << m;
  }
}

TEST(Connectivity, CutVertexDetected) {
  // Two triangles sharing vertex 2: kappa = 1.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 2);
  EXPECT_EQ(vertex_connectivity(b.build()), 1u);
}

TEST(Connectivity, SampledCheckAgreesOnHypercube) {
  Graph g = Hypercube(5).to_graph();
  EXPECT_TRUE(check_local_connectivity_sampled(g, 5, 20));
  EXPECT_FALSE(check_local_connectivity_sampled(g, 6, 20));
}

TEST(FlowDisjointPaths, ExtractsValidFamilies) {
  Graph g = Hypercube(4).to_graph();
  for (NodeId t : {1u, 3u, 7u, 15u, 10u}) {
    std::vector<Path> paths = flow_disjoint_paths(g, 0, t);
    EXPECT_EQ(paths.size(), 4u) << "t=" << t;
    PathFamilyCheck check = check_disjoint_paths(g, paths, 0, t);
    EXPECT_TRUE(check.ok) << check.error;
  }
}

TEST(FlowDisjointPaths, ForbiddenEdgeHonored) {
  Graph g = Hypercube(3).to_graph();
  // 0 and 1 are adjacent; avoiding the direct edge still yields 2 paths.
  std::vector<Path> paths = flow_disjoint_paths(g, 0, 1, {0, 1});
  EXPECT_EQ(paths.size(), 2u);
  for (const Path& p : paths) {
    EXPECT_GT(p.size(), 2u);  // no direct edge used
  }
  PathFamilyCheck check = check_disjoint_paths(g, paths, 0, 1);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(CheckDisjointPaths, CatchesViolations) {
  Graph g = make_cycle(6);
  // Not a path: jumps.
  std::vector<Path> bad1{{0, 2, 3}};
  EXPECT_FALSE(check_disjoint_paths(g, bad1, 0, 3).ok);
  // Repeated vertex.
  std::vector<Path> bad2{{0, 1, 0, 5}};
  EXPECT_FALSE(check_disjoint_paths(g, bad2, 0, 5).ok);
  // Shared interior.
  std::vector<Path> bad3{{0, 1, 2, 3}, {0, 5, 4, 3}, {0, 1, 2, 3}};
  EXPECT_FALSE(check_disjoint_paths(g, bad3, 0, 3).ok);
  // Wrong endpoints.
  std::vector<Path> bad4{{1, 2, 3}};
  EXPECT_FALSE(check_disjoint_paths(g, bad4, 0, 3).ok);
  // A clean family.
  std::vector<Path> good{{0, 1, 2, 3}, {0, 5, 4, 3}};
  EXPECT_TRUE(check_disjoint_paths(g, good, 0, 3).ok);
  EXPECT_EQ(max_path_length(good), 3u);
}

}  // namespace
}  // namespace hbnet
