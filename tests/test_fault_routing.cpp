// Remark 10: fault-tolerant routing. With up to m+3 node faults the
// disjoint-path family always contains a fault-free member.
#include <gtest/gtest.h>

#include <random>

#include "core/fault_routing.hpp"

namespace hbnet {
namespace {

bool path_valid(const HyperButterfly& hb, const std::vector<HbNode>& path,
                HbNode u, HbNode v, const HbFaultSet& faults) {
  if (path.empty() || !(path.front() == u) || !(path.back() == v)) return false;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (faults.contains(hb, path[i])) return false;
    if (i > 0 && hb.distance(path[i - 1], path[i]) != 1) return false;
  }
  return true;
}

TEST(FaultRouting, NoFaultsGivesAPath) {
  HyperButterfly hb(2, 3);
  HbFaultSet faults;
  HbNode u{0, {0, 0}}, v{3, {5, 2}};
  FaultRouteResult r = route_around_faults(hb, u, v, faults);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(path_valid(hb, r.path, u, v, faults));
  EXPECT_FALSE(r.used_fallback);
}

TEST(FaultRouting, SurvivesMaximalRandomFaults) {
  // |F| = m+3 random faults (excluding endpoints): guaranteed detour.
  HyperButterfly hb(2, 3);
  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<HbIndex> pick(0, hb.num_nodes() - 1);
  for (int trial = 0; trial < 200; ++trial) {
    HbIndex su = pick(rng), sv = pick(rng);
    if (su == sv) continue;
    HbNode u = hb.node_at(su), v = hb.node_at(sv);
    HbFaultSet faults;
    while (faults.size() < hb.cube_dimension() + 3) {
      HbIndex f = pick(rng);
      if (f == su || f == sv) continue;
      faults.add(hb, hb.node_at(f));
    }
    FaultRouteResult r = route_around_faults(hb, u, v, faults,
                                             /*bfs_fallback=*/false);
    ASSERT_TRUE(r.ok()) << "trial=" << trial;
    EXPECT_TRUE(path_valid(hb, r.path, u, v, faults));
    EXPECT_FALSE(r.used_fallback);
  }
}

TEST(FaultRouting, AdversarialFaultsOnNeighbors) {
  // Kill m+3 of the m+4 neighbors of u: the one remaining neighbor must
  // carry the route.
  HyperButterfly hb(2, 3);
  HbNode u{0, {0, 0}}, v{3, {6, 1}};
  auto nbrs = hb.neighbors(u);
  ASSERT_EQ(nbrs.size(), 6u);
  HbFaultSet faults;
  for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) faults.add(hb, nbrs[i]);
  FaultRouteResult r = route_around_faults(hb, u, v, faults,
                                           /*bfs_fallback=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(path_valid(hb, r.path, u, v, faults));
  EXPECT_TRUE(r.path[1] == nbrs.back());
}

TEST(FaultRouting, FaultyEndpointFails) {
  HyperButterfly hb(1, 3);
  HbNode u{0, {0, 0}}, v{1, {3, 1}};
  HbFaultSet faults;
  faults.add(hb, v);
  EXPECT_FALSE(route_around_faults(hb, u, v, faults).ok());
  // The faulty-source case must fail identically (a dead router cannot
  // originate), with and without the BFS fallback.
  HbFaultSet src_fault;
  src_fault.add(hb, u);
  EXPECT_FALSE(route_around_faults(hb, u, v, src_fault).ok());
  EXPECT_FALSE(
      route_around_faults(hb, u, v, src_fault, /*bfs_fallback=*/false).ok());
}

TEST(FaultRouting, BlockedFamilyFallsBackToBfs) {
  // Deterministically block every Theorem-5 family member: fault all but
  // one neighbor of u (m+3 faults), find the surviving member, then fault
  // its second hop too. That is m+4 faults -- past the guarantee -- so the
  // family is fully blocked, but u keeps one live neighbor and the graph
  // stays connected: the BFS fallback must carry the route and say so.
  HyperButterfly hb(2, 3);
  HbNode u{0, {0, 0}}, v{3, {6, 1}};
  auto nbrs = hb.neighbors(u);
  ASSERT_EQ(nbrs.size(), hb.cube_dimension() + 4);
  HbFaultSet faults;
  for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) faults.add(hb, nbrs[i]);
  FaultRouteResult survivor =
      route_around_faults(hb, u, v, faults, /*bfs_fallback=*/false);
  ASSERT_TRUE(survivor.ok());
  ASSERT_GT(survivor.path.size(), 3u);
  ASSERT_FALSE(survivor.path[2] == v);
  faults.add(hb, survivor.path[2]);

  EXPECT_FALSE(
      route_around_faults(hb, u, v, faults, /*bfs_fallback=*/false).ok());
  FaultRouteResult r = route_around_faults(hb, u, v, faults);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.used_fallback);
  EXPECT_TRUE(path_valid(hb, r.path, u, v, faults));
}

TEST(FaultRouting, BannedFirstHopIsAvoided) {
  // The link-fault variant: banning first hops must steer the route off
  // those edges without consuming more than one family member per ban.
  HyperButterfly hb(2, 3);
  HbNode u{0, {0, 0}}, v{3, {6, 1}};
  auto nbrs = hb.neighbors(u);
  ASSERT_EQ(nbrs.size(), 6u);
  HbFaultSet faults;
  std::vector<HbNode> banned(nbrs.begin(), nbrs.begin() + 3);
  FaultRouteResult r = route_around_faults(hb, u, v, faults, banned);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.used_fallback);
  EXPECT_TRUE(path_valid(hb, r.path, u, v, faults));
  for (const HbNode& b : banned) EXPECT_FALSE(r.path[1] == b);
}

TEST(FaultRouting, BannedLinksPlusNodeFaultsWithinGuarantee) {
  // |node faults| + |banned first edges| = m+3 < m+4: internal disjointness
  // means each ban kills at most one member, so a clean one must survive.
  HyperButterfly hb(2, 3);
  HbNode u{0, {0, 0}}, v{3, {6, 1}};
  auto nbrs = hb.neighbors(u);
  std::vector<HbNode> banned(nbrs.begin(), nbrs.begin() + 3);
  HbFaultSet faults;
  faults.add(hb, hb.node_at(17));
  faults.add(hb, hb.node_at(41));
  FaultRouteResult r = route_around_faults(hb, u, v, faults, banned);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(path_valid(hb, r.path, u, v, faults));
  for (const HbNode& b : banned) EXPECT_FALSE(r.path[1] == b);
}

TEST(FaultRouting, BannedVariantHasNoFallback) {
  // Ban every outgoing edge of u: no family member can start, and the
  // banned-first variant must report failure rather than BFS around the
  // bans (BFS cannot honor per-edge constraints).
  HyperButterfly hb(1, 3);
  HbNode u{0, {0, 0}}, v{1, {5, 1}};
  HbFaultSet faults;
  const std::vector<HbNode> banned = hb.neighbors(u);
  FaultRouteResult r = route_around_faults(hb, u, v, faults, banned);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.used_fallback);
  EXPECT_EQ(r.paths_tried, banned.size());
}

TEST(FaultRouting, TrivialSelfRoute) {
  HyperButterfly hb(1, 3);
  HbNode u{0, {0, 0}};
  HbFaultSet faults;
  FaultRouteResult r = route_around_faults(hb, u, u, faults);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.path.size(), 1u);
}

TEST(FaultRouting, FallbackBeyondGuarantee) {
  // Saturate well past m+3 faults; the family may be fully blocked but BFS
  // fallback still finds a path while the graph stays connected, or
  // correctly reports failure.
  HyperButterfly hb(1, 3);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<HbIndex> pick(0, hb.num_nodes() - 1);
  HbNode u{0, {0, 0}}, v{1, {7, 2}};
  HbFaultSet faults;
  while (faults.size() < 12) {
    HbIndex f = pick(rng);
    if (f == hb.index_of(u) || f == hb.index_of(v)) continue;
    faults.add(hb, hb.node_at(f));
  }
  FaultRouteResult r = route_around_faults(hb, u, v, faults);
  if (r.ok()) {
    EXPECT_TRUE(path_valid(hb, r.path, u, v, faults));
  } else {
    // Verify the reported disconnection against reference BFS.
    EXPECT_EQ(hb_bfs_distance(hb, u, v, &faults), kNoPath);
  }
}

TEST(FaultRouting, ExhaustiveSmallFaultSets) {
  // Every 1-fault and a sweep of 2-fault patterns on HB(1,3): the family
  // must always survive (guarantee is m+3 = 4 faults).
  HyperButterfly hb(1, 3);
  HbNode u{0, {0, 0}}, v{1, {5, 1}};
  const HbIndex nu = hb.index_of(u), nv = hb.index_of(v);
  for (HbIndex f1 = 0; f1 < hb.num_nodes(); ++f1) {
    if (f1 == nu || f1 == nv) continue;
    HbFaultSet faults;
    faults.add(hb, hb.node_at(f1));
    FaultRouteResult r =
        route_around_faults(hb, u, v, faults, /*bfs_fallback=*/false);
    ASSERT_TRUE(r.ok()) << "f1=" << f1;
    EXPECT_TRUE(path_valid(hb, r.path, u, v, faults));
  }
  for (HbIndex f1 = 0; f1 < hb.num_nodes(); f1 += 3) {
    for (HbIndex f2 = f1 + 1; f2 < hb.num_nodes(); f2 += 5) {
      if (f1 == nu || f1 == nv || f2 == nu || f2 == nv) continue;
      HbFaultSet faults;
      faults.add(hb, hb.node_at(f1));
      faults.add(hb, hb.node_at(f2));
      FaultRouteResult r =
          route_around_faults(hb, u, v, faults, /*bfs_fallback=*/false);
      ASSERT_TRUE(r.ok()) << "f1=" << f1 << " f2=" << f2;
      EXPECT_TRUE(path_valid(hb, r.path, u, v, faults));
    }
  }
}

}  // namespace
}  // namespace hbnet
