// Graph I/O round trips and cut-width / bisection analysis.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/cuts.hpp"
#include "graph/io.hpp"
#include "topology/guest_graphs.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {
namespace {

TEST(GraphIo, EdgeListRoundTrip) {
  Graph g = Hypercube(4).to_graph();
  std::stringstream ss;
  write_edge_list(ss, g);
  auto back = read_edge_list(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->num_nodes(), g.num_nodes());
  ASSERT_EQ(back->num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      EXPECT_TRUE(back->has_edge(u, v));
    }
  }
}

TEST(GraphIo, RejectsMalformed) {
  {
    std::stringstream ss("not a graph");
    EXPECT_FALSE(read_edge_list(ss).has_value());
  }
  {
    std::stringstream ss("4 2\n0 1\n");  // promised 2 edges, gave 1
    EXPECT_FALSE(read_edge_list(ss).has_value());
  }
  {
    std::stringstream ss("4 1\n0 9\n");  // endpoint out of range
    EXPECT_FALSE(read_edge_list(ss).has_value());
  }
  {
    std::stringstream ss("4 2\n0 1\n0 1\n");  // duplicate edge
    EXPECT_FALSE(read_edge_list(ss).has_value());
  }
}

TEST(GraphIo, DotContainsNodesAndEdges) {
  Graph g = make_cycle(4);
  std::ostringstream os;
  DotOptions opts;
  opts.graph_name = "ring";
  opts.labels = {"a", "b", "c", "d"};
  opts.highlight = {2};
  write_dot(os, g, opts);
  std::string dot = os.str();
  EXPECT_NE(dot.find("graph ring {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"c\""), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n3"), std::string::npos);  // wrap edge (0,3)
}

TEST(Cuts, CutWidthOnCycle) {
  Graph c = make_cycle(8);
  std::vector<char> side(8, 0);
  for (int i = 0; i < 4; ++i) side[i] = 1;  // contiguous half: 2 crossings
  EXPECT_EQ(cut_width(c, side), 2u);
  std::vector<char> alternating(8);
  for (int i = 0; i < 8; ++i) alternating[i] = i % 2;
  EXPECT_EQ(cut_width(c, alternating), 8u);
}

TEST(Cuts, HypercubeDimensionCutViaHb) {
  // Each cube-bit cut of HB(m,n) crosses exactly one edge per node pair:
  // width = N/2.
  HyperButterfly hb(2, 3);
  auto cuts = hb_dimension_cuts(hb);
  ASSERT_GE(cuts.size(), 2u);
  for (unsigned i = 0; i < hb.cube_dimension(); ++i) {
    EXPECT_EQ(cuts[i].width, hb.num_nodes() / 2) << cuts[i].name;
    EXPECT_TRUE(cuts[i].balanced);
  }
  // Butterfly word-bit cuts: word bit j flips only on the two cross edges
  // over level-cycle edge j: width = 2 per (cube layer x word pair)...
  // measured value just needs to be positive and balanced.
  for (std::size_t i = hb.cube_dimension(); i < cuts.size(); ++i) {
    EXPECT_GT(cuts[i].width, 0u) << cuts[i].name;
  }
}

TEST(Cuts, SampledBisectionBeatsWorstCase) {
  Graph g = Hypercube(5).to_graph();
  std::uint64_t ub = sampled_bisection_upper_bound(g, 3, 7);
  // True bisection of H_5 is 16 (= N/2); local search from random starts
  // should land at most at the trivial dimension cut ... allow slack but
  // require a valid (<= worst random) value.
  EXPECT_GE(ub, 16u);       // cannot beat the true bisection
  EXPECT_LE(ub, 5u * 16u);  // and must not exceed all-edges silliness
}

TEST(Cuts, ThompsonBound) {
  EXPECT_EQ(thompson_area_lower_bound(0), 0u);
  EXPECT_EQ(thompson_area_lower_bound(12), 144u);
}

}  // namespace
}  // namespace hbnet
