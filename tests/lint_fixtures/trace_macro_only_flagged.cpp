// hblint-scope: src
// Fixture: rule trace-macro-only must flag direct TraceRecorder /
// Sink::trace() use in library hot paths.
namespace hbnet::obs {
class TraceRecorder;
class Sink {
 public:
  TraceRecorder* trace();
};
}  // namespace hbnet::obs

void hot_path(hbnet::obs::Sink* sink) {
  if (sink != nullptr && sink->trace() != nullptr) {
    // would emit directly here
  }
}
