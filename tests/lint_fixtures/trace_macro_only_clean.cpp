// hblint-scope: src
// Fixture: emission through the HBNET_TRACE_* macros passes
// trace-macro-only (the macros expand to guarded recorder calls inside
// src/obs, which is exempt).
#define HBNET_TRACE_INSTANT(sink, ...) \
  do {                                 \
  } while (0)

namespace hbnet::obs {
class Sink;
}

void hot_path(hbnet::obs::Sink* sink, unsigned long cycle) {
  HBNET_TRACE_INSTANT(sink, "sim", "event", 0, 0, cycle);
}
