// hblint-path: src/graph/reach_probe.cpp
// Fixture: a Graph& overload that delegates through CsrAdjacency passes
// provider-generic -- the CSR path is a thin adapter over the
// provider-generic implementation.
#include <cstdint>

struct Graph {
  std::uint32_t num_nodes() const { return 0; }
};

struct AdjacencyProvider {
  virtual std::uint32_t num_nodes() const = 0;
};

struct CsrAdjacency : AdjacencyProvider {
  explicit CsrAdjacency(const Graph& g) : g_(g) {}
  std::uint32_t num_nodes() const override { return g_.num_nodes(); }
  const Graph& g_;
};

std::uint32_t reach_count(const AdjacencyProvider& adj) {
  return adj.num_nodes();
}

std::uint32_t reach_count(const Graph& g) {
  const CsrAdjacency csr(g);
  return reach_count(csr);
}
