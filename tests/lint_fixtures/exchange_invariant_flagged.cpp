// hblint-path: src/sim/shard_probe.cpp
// Fixture: rule exchange-invariant must flag a direct write into another
// shard's frontier indexed by shard_of(...) -- cross-shard moves must go
// through the Exchange so delivery stays in ascending-sender order.
#include <cstdint>
#include <vector>

struct Packet {
  std::uint64_t to = 0;
};

struct Plan {
  std::uint64_t shard_of(std::uint64_t node) const { return node % 4; }
};

void misroute(std::vector<std::vector<Packet>>& frontier, const Plan& plan,
              const Packet& p) {
  frontier[plan.shard_of(p.to)].push_back(p);
}
