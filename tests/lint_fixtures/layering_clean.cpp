// hblint-path: src/sim/route_probe.cpp
// Fixture: downward includes pass layering -- a tier-2 engine (sim) may
// include tier-1 domain headers and tier-0 utilities.
#include "core/hyper_butterfly.hpp"
#include "graph/graph.hpp"
#include "obs/sink.hpp"

int probe() { return 1; }
