// hblint-path: src/sim/engine_pair.cpp
// Fixture (cross-file, see signature_mismatch.hpp): this definition lost
// the trailing obs::ProgressBoard* parameter the header declares.
namespace hbnet {
namespace obs {
class Sink;
}

void run_paired(int cycles, obs::Sink* sink) {
  (void)cycles;
  (void)sink;
}

}  // namespace hbnet
