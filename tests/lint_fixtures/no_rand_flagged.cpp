// hblint-scope: src
// Fixture: rule no-rand must flag std::rand/srand call sites.
#include <cstdlib>

int noisy_destination(int n) {
  srand(42);
  return std::rand() % n;
}
