// hblint-scope: src
// Fixture: identifiers containing "time" (time_series, measure_time_) and a
// config-provided seed pass no-time-seed.
#include <cstdint>

struct Series {
  void time_series(int bucket);
};

std::uint64_t config_seed(std::uint64_t seed) {
  Series s;
  s.time_series(64);
  return seed ^ 0x9e3779b97f4a7c15ull;
}
