// hblint-scope: src
// Fixture: rule wall-clock-outside-obs must flag std::chrono use in library
// code outside src/obs/ even when no clock type is named (durations and
// sleeps smuggle wall time into engines just as well).
#include <chrono>

unsigned long long as_millis(unsigned long long ticks) {
  const std::chrono::milliseconds budget(ticks);
  return static_cast<unsigned long long>(budget.count());
}
