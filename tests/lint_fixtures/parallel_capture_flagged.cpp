// hblint-scope: src
// Fixture: rule parallel-capture must flag a by-reference capture mutated
// from inside a lambda handed to parallel_for -- concurrent workers race
// on `total`, and even a lock would leave the accumulation order
// nondeterministic.
#include <cstdint>
#include <vector>

namespace par {
struct Pool {
  template <class F>
  void parallel_for(std::uint64_t, F&&) {}
};
}  // namespace par

std::uint64_t tally(par::Pool& pool,
                    const std::vector<std::uint64_t>& counts) {
  std::uint64_t total = 0;
  pool.parallel_for(counts.size(),
                    [&](std::uint64_t i) { total += counts[i]; });
  return total;
}
