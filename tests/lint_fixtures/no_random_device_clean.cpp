// hblint-scope: src
// Fixture: a documented seeded-RNG construction site may suppress
// no-random-device explicitly; everything else uses the config seed.
#include <random>

std::uint64_t default_seed(bool want_entropy) {
  if (want_entropy) {
    // CLI-only escape hatch: an unseeded run asks the OS for entropy once.
    std::random_device rd;  // hblint: allow(no-random-device)
    return rd();
  }
  return 1;
}
