// hblint-scope: src
// Fixture: rule emission-order must flag stream writes reachable from a
// loop over an unordered container -- both the explicit iterator loop
// (which plain unordered-iteration cannot see) and a loop whose body
// reaches the stream through one call level.
#include <fstream>
#include <unordered_map>

void write_row(std::ofstream& out, int key, int value) {
  out << key << ' ' << value << '\n';
}

void dump_direct(std::ofstream& out,
                 const std::unordered_map<int, int>& counts) {
  for (auto it = counts.begin(); it != counts.end(); ++it) {
    out << it->first << ' ' << it->second << '\n';
  }
}

void dump_via_call(std::ofstream& out,
                   const std::unordered_map<int, int>& counts) {
  for (auto it = counts.begin(); it != counts.end(); ++it) {
    write_row(out, it->first, it->second);
  }
}
