// hblint-path: src/sim/engine.hpp
// Fixture: observer parameters declared in a header with nullptr defaults
// pass signature-contract (and sink-default).
#pragma once

namespace hbnet {
namespace obs {
class Sink;
class ProgressBoard;
}  // namespace obs

void run_phase(int cycles, obs::Sink* sink = nullptr,
               obs::ProgressBoard* board = nullptr);

}  // namespace hbnet
