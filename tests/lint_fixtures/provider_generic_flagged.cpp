// hblint-path: src/graph/reach_probe.cpp
// Fixture: rule provider-generic must flag a Graph& overload that
// reimplements an algorithm which also has an AdjacencyProvider& overload
// in the same file -- the Graph& twin has to delegate through CsrAdjacency
// so the two code paths cannot drift apart.
#include <cstdint>
#include <vector>

struct Graph {
  std::uint32_t num_nodes() const { return 0; }
  std::vector<std::uint32_t> neighbors(std::uint32_t) const { return {}; }
};

struct AdjacencyProvider {
  virtual std::uint32_t num_nodes() const = 0;
};

std::uint32_t reach_count(const AdjacencyProvider& adj) {
  return adj.num_nodes();
}

std::uint32_t reach_count(const Graph& g) {
  // Second implementation against the CSR arrays: exactly the drift the
  // rule exists to prevent.
  std::uint32_t count = 0;
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    count += static_cast<std::uint32_t>(g.neighbors(v).size());
  }
  return count;
}
