// hblint-scope: src
// Fixture: rule no-raw-new must flag raw new and delete expressions.
struct Node {
  int value = 0;
};

int leak_prone() {
  Node* n = new Node();
  int v = n->value;
  delete n;
  return v;
}
