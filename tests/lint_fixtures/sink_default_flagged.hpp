// hblint-scope: src
// Fixture: rule sink-default must flag (a) an undefaulted obs::Sink*
// parameter in a header and (b) a known entry point that dropped its
// Sink parameter entirely.
#pragma once

namespace hbnet {
namespace obs {
class Sink;
}

struct WormholeStats;
struct SimTopology;
struct WormholeConfig;

WormholeStats run_wormhole(const SimTopology& topo,
                           const WormholeConfig& config, unsigned ring_arity,
                           obs::Sink* sink);

void run_protocol(int graph, int rounds);

}  // namespace hbnet
