// hblint-scope: src
// Fixture: seeded engines pass no-rand; names merely containing "rand"
// (operands, identifiers) must not trip the word-boundary match.
#include <random>

int seeded_destination(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  int operand = static_cast<int>(rng() % n);  // "rand" inside a word: fine
  return operand;
}
