// hblint-scope: src
// Fixture: rule no-random-device must flag undocumented entropy taps.
#include <random>

std::uint64_t entropy_seed() {
  std::random_device rd;
  return rd();
}
