// hblint-scope: src
// Fixture: make_unique, containers, deleted special members, and
// identifiers containing "new" (newly, renew) all pass no-raw-new.
#include <memory>
#include <vector>

struct Node {
  int value = 0;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  Node() = default;
};

int owned() {
  auto n = std::make_unique<Node>();
  std::vector<int> newly;
  newly.push_back(n->value);
  return newly.back();
}
