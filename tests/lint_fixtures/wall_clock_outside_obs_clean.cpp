// hblint-scope: obs
// Fixture: the obs/ telemetry layer is the one library component allowed to
// read wall clocks -- snapshot timestamps and exporter cadence live there.
// Under scope src both lines below would be flagged (no-wall-clock and
// wall-clock-outside-obs); under scope obs the file lints clean.
#include <chrono>

long long snapshot_unix_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
