// hblint-scope: src
// Fixture: per-line `hblint: allow(<rule>)` silences exactly that rule on
// that line; the unsuppressed sibling line below must still be flagged by
// tests driving this file.
#include <cstdlib>

int suppressed_then_flagged() {
  int a = std::rand();  // hblint: allow(no-rand)
  int b = std::rand();
  return a + b;
}
