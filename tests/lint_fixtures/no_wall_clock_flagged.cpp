// hblint-scope: src
// Fixture: rule no-wall-clock must flag chrono clock reads in library code.
#include <chrono>

double wall_elapsed() {
  auto t0 = std::chrono::steady_clock::now();
  auto t1 = std::chrono::high_resolution_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
