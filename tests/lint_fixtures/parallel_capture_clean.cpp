// hblint-scope: src
// Fixture: the sanctioned shared-state forms pass parallel-capture --
// per-worker disjoint slots (scratch[worker]), atomics, locals declared in
// multi-declarator statements, and lambdas nested inside the body that are
// arguments to some *other* call (they answer to their own contract).
#include <atomic>
#include <cstdint>
#include <vector>

namespace par {
struct Pool {
  template <class F>
  void parallel_for_chunks(std::uint64_t, std::uint64_t, F&&) {}
};
}  // namespace par

template <class F>
void drain_into(unsigned worker, F&&) {
  (void)worker;
}

void tally(par::Pool& pool, const std::vector<std::uint64_t>& in,
           std::vector<std::uint64_t>& scratch) {
  std::atomic<std::uint64_t> chunks_done{0};
  pool.parallel_for_chunks(
      in.size(), 64,
      [&](unsigned worker, std::uint64_t lo, std::uint64_t hi) {
        std::uint64_t local = 0, spill = 0;
        for (std::uint64_t k = lo; k < hi; ++k) {
          local += in[k];
          spill += 1;
        }
        scratch[worker] = local + spill;
        chunks_done.fetch_add(1, std::memory_order_relaxed);
        drain_into(worker, [&local](std::uint64_t v) { local += v; });
      });
}
