// hblint-path: src/sim/engine_impl.cpp
// Fixture: rule signature-contract must flag an observer parameter default
// in a .cpp definition -- defaults belong in the header declaration only,
// so every translation unit sees the same effective signature.
namespace hbnet {
namespace obs {
class Sink;
}

void run_phase(int cycles, obs::Sink* sink = nullptr) {
  (void)cycles;
  (void)sink;
}

}  // namespace hbnet
