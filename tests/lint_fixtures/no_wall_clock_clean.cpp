// hblint-scope: tools
// Fixture: wall clocks are allowed outside library code (benches, tools) --
// this file would be flagged under scope src but is scoped to tools.
#include <chrono>

double tool_elapsed() {
  auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
