// hblint-scope: src
// Fixture: rule unordered-iteration must flag range-for over hash
// containers -- the iteration order would leak into the accumulated output.
#include <cstdint>
#include <unordered_map>
#include <vector>

std::vector<std::uint64_t> export_moves(
    const std::unordered_map<std::uint64_t, std::uint64_t>& link_moves) {
  std::vector<std::uint64_t> out;
  for (const auto& [key, count] : link_moves) {
    out.push_back(key ^ count);
  }
  return out;
}
