// hblint-scope: src
// Fixture: rule no-bare-assert must flag assert() in library code.
#include <cassert>

void invariant(int in_flight) {
  assert(in_flight >= 0);
}
