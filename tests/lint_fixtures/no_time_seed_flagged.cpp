// hblint-scope: src
// Fixture: rule no-time-seed must flag wall-clock time() reads.
#include <ctime>

std::uint64_t clock_seed() {
  return static_cast<std::uint64_t>(std::time(nullptr));
}
