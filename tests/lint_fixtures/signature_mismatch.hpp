// hblint-path: src/sim/engine_pair.hpp
// Fixture (cross-file, linted together with signature_mismatch.cpp via
// lint_tree): the header declares run_paired with Sink + ProgressBoard
// observer parameters; the definition drops one, which the tree-level
// signature-contract check must flag.
#pragma once

namespace hbnet {
namespace obs {
class Sink;
class ProgressBoard;
}  // namespace obs

void run_paired(int cycles, obs::Sink* sink = nullptr,
                obs::ProgressBoard* board = nullptr);

}  // namespace hbnet
