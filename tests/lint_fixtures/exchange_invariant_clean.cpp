// hblint-path: src/sim/shard_probe.cpp
// Fixture: routing cross-shard packets through Exchange::push passes
// exchange-invariant (shard_of only computes the destination column).
#include <cstdint>

struct Packet {
  std::uint64_t to = 0;
};

struct Plan {
  std::uint64_t shard_of(std::uint64_t node) const { return node % 4; }
};

struct Exchange {
  void push(std::uint64_t from, std::uint64_t to, const Packet&) {
    (void)from;
    (void)to;
  }
};

void route(Exchange& exchange, const Plan& plan, std::uint64_t s,
           const Packet& p) {
  exchange.push(s, plan.shard_of(p.to), p);
}
