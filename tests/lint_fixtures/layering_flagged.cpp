// hblint-path: src/core/route_probe.cpp
// Fixture: rule layering must flag a tier-1 subsystem (core) including a
// tier-2 header (sim) -- the DAG only allows includes of the same or a
// lower tier.
#include "sim/simulator.hpp"

int probe() { return 1; }
