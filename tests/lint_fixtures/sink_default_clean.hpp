// hblint-scope: src
// Fixture: entry points with trailing `obs::Sink* = nullptr` pass
// sink-default.
#pragma once

namespace hbnet {
namespace obs {
class Sink;
}

struct WormholeStats;
struct SimTopology;
struct WormholeConfig;

WormholeStats run_wormhole(const SimTopology& topo,
                           const WormholeConfig& config, unsigned ring_arity,
                           obs::Sink* sink = nullptr);

void run_protocol(int graph, int rounds, obs::Sink* sink = nullptr);

}  // namespace hbnet
