// hblint-scope: src
// Fixture: the check/check.hpp macro layer and static_assert pass
// no-bare-assert.
#define HBNET_CHECK(cond) \
  do {                    \
  } while (0)
#define HBNET_DCHECK(cond) \
  do {                     \
  } while (0)

static_assert(sizeof(int) >= 4, "ILP32 or wider");

void invariant(int in_flight) {
  HBNET_CHECK(in_flight >= 0);
  HBNET_DCHECK(in_flight < (1 << 30));
}
