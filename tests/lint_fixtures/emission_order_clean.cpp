// hblint-scope: src
// Fixture: extract-sort-write passes emission-order -- the bytes hitting
// the stream no longer depend on hash-table iteration order.
#include <algorithm>
#include <fstream>
#include <unordered_map>
#include <utility>
#include <vector>

void dump_counts(std::ofstream& out,
                 const std::unordered_map<int, int>& counts) {
  std::vector<std::pair<int, int>> rows(counts.begin(), counts.end());
  std::sort(rows.begin(), rows.end());
  for (const auto& row : rows) {
    out << row.first << ' ' << row.second << '\n';
  }
}
