// hblint-scope: src
// Fixture: the sanctioned sorted-extraction idiom -- copy the hash map into
// a vector, sort by key, then iterate the vector -- passes
// unordered-iteration. Lookups and inserts are always fine.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

std::vector<std::uint64_t> export_moves_sorted(
    const std::unordered_map<std::uint64_t, std::uint64_t>& link_moves) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> by_key(
      link_moves.begin(), link_moves.end());
  std::sort(by_key.begin(), by_key.end());
  std::vector<std::uint64_t> out;
  for (const auto& [key, count] : by_key) {
    out.push_back(key ^ count);
  }
  return out;
}

std::uint64_t lookup(
    const std::unordered_map<std::uint64_t, std::uint64_t>& link_moves,
    std::uint64_t key) {
  auto it = link_moves.find(key);
  return it == link_moves.end() ? 0 : it->second;
}
