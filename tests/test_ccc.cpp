// Cube-connected cycles CCC(n): structure, exact routing vs BFS, Cayley
// audit -- the extended bounded-degree baseline.
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/connectivity.hpp"
#include "topology/ccc.hpp"

namespace hbnet {
namespace {

TEST(Ccc, CountsAndBasics) {
  CubeConnectedCycles ccc(4);
  EXPECT_EQ(ccc.num_nodes(), 64u);
  EXPECT_EQ(ccc.num_edges(), 96u);
  EXPECT_EQ(CubeConnectedCycles::degree(), 3u);
  EXPECT_THROW(CubeConnectedCycles(2), std::invalid_argument);
}

class CccParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(CccParam, GraphIsThreeRegular) {
  CubeConnectedCycles ccc(GetParam());
  Graph g = ccc.to_graph();
  EXPECT_EQ(g.num_nodes(), ccc.num_nodes());
  EXPECT_EQ(g.num_edges(), ccc.num_edges());
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 3u);
}

TEST_P(CccParam, CayleyAudit) {
  CayleyAudit a = audit(CubeConnectedCycles(GetParam()).cayley_spec());
  EXPECT_TRUE(a.all_ok());
}

TEST_P(CccParam, DistanceMatchesBfsExhaustively) {
  const unsigned n = GetParam();
  CubeConnectedCycles ccc(n);
  Graph g = ccc.to_graph();
  BfsResult r = bfs(g, ccc.index_of({0, 0}));
  for (NodeId id = 0; id < ccc.num_nodes(); ++id) {
    EXPECT_EQ(ccc.distance({0, 0}, ccc.node_at(id)), r.dist[id])
        << "id=" << id;
  }
}

TEST_P(CccParam, RouteValidAndOptimal) {
  const unsigned n = GetParam();
  CubeConnectedCycles ccc(n);
  Graph g = ccc.to_graph();
  for (NodeId s = 0; s < ccc.num_nodes(); s += 5) {
    for (NodeId t = 0; t < ccc.num_nodes(); t += 7) {
      CccNode u = ccc.node_at(s), v = ccc.node_at(t);
      auto path = ccc.route_nodes(u, v);
      EXPECT_EQ(path.size(), ccc.distance(u, v) + 1);
      EXPECT_TRUE(path.front() == u);
      EXPECT_TRUE(path.back() == v);
      for (std::size_t i = 1; i < path.size(); ++i) {
        EXPECT_TRUE(g.has_edge(ccc.index_of(path[i - 1]),
                               ccc.index_of(path[i])));
      }
    }
  }
}

TEST_P(CccParam, DiameterMatchesFormulaForLargeN) {
  const unsigned n = GetParam();
  Graph g = CubeConnectedCycles(n).to_graph();
  unsigned measured = diameter_vertex_transitive(g);
  if (n >= 4) {
    EXPECT_EQ(measured, 2 * n + n / 2 - 2) << "n=" << n;
  } else {
    EXPECT_EQ(measured, 6u);  // CCC(3) special case
  }
}

TEST_P(CccParam, ConnectivityIsThree) {
  Graph g = CubeConnectedCycles(GetParam()).to_graph();
  EXPECT_TRUE(check_local_connectivity_sampled(g, 3, 10));
}

INSTANTIATE_TEST_SUITE_P(Dims, CccParam, ::testing::Values(3u, 4u, 5u, 6u));

TEST(VisitingWalk, KnownCases) {
  // No required positions: plain cycle distance.
  EXPECT_EQ(visiting_walk_length(8, 0, 3, 0), 3u);
  EXPECT_EQ(visiting_walk_length(8, 0, 5, 0), 3u);
  // Visit the antipode and come back.
  EXPECT_EQ(visiting_walk_length(8, 0, 0, 1ull << 4), 8u);
  // Visit everything, return to start: n-1 out... the walk must touch all
  // n positions: best is almost a full loop.
  EXPECT_EQ(visiting_walk_length(6, 0, 0, 0b111111), 6u);
  // Visiting start only costs nothing.
  EXPECT_EQ(visiting_walk_length(6, 2, 2, 1u << 2), 0u);
}

}  // namespace
}  // namespace hbnet
