// Tests for the deterministic fault-injection campaign engine: checked
// grid parsing, the splittable seed scheme, trial enumeration, the
// adversarial ranking, thread-count-invariant artifacts (the determinism
// contract), and the paper's fault-tolerance claim measured end to end
// (zero drops below kappa = m+4 random faults with fault routing on).
#include <gtest/gtest.h>

#include <cstdint>
#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/grid.hpp"
#include "sim/topology.hpp"

namespace hbnet::campaign {
namespace {

/// Small-but-real campaign config: every model, two fault levels, short
/// cycles so the whole grid stays fast.
CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.m = 1;
  cfg.n = 3;
  cfg.models = {FaultModel::kRandom, FaultModel::kAdversarial,
                FaultModel::kEvents};
  cfg.rates = {0.05};
  cfg.fault_counts = {0, 2};
  cfg.trials = 2;
  cfg.seed = 7;
  cfg.sim.warmup_cycles = 20;
  cfg.sim.measure_cycles = 100;
  cfg.sim.drain_cycles = 1000;
  return cfg;
}

std::string artifacts_of(const CampaignConfig& cfg) {
  const CampaignResult r = run_campaign(cfg);
  std::ostringstream os;
  r.metrics.write_json(os);
  os << '\n';
  write_campaign_csv(os, r);
  write_campaign_table(os, r);
  return os.str();
}

// ---------------------------------------------------------------------------
// Checked grid parsing

TEST(CampaignGrid, AcceptsWholeTokensOnly) {
  EXPECT_EQ(parse_u64("42"), std::uint64_t{42});
  EXPECT_EQ(parse_u64("0"), std::uint64_t{0});
  EXPECT_FALSE(parse_u64("4x").has_value());
  EXPECT_FALSE(parse_u64("x4").has_value());
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("4 ").has_value());
  EXPECT_FALSE(parse_u64("99999999999999999999999").has_value());

  EXPECT_EQ(parse_unsigned("7"), 7u);
  EXPECT_FALSE(parse_unsigned("4294967296").has_value());  // > uint32 max

  EXPECT_EQ(parse_double("0.5"), 0.5);
  EXPECT_FALSE(parse_double("0.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("inf").has_value());
  EXPECT_FALSE(parse_double("nan").has_value());
}

TEST(CampaignGrid, ParsesListsElementwise) {
  const auto us = parse_unsigned_list("0,2,5");
  ASSERT_TRUE(us.has_value());
  EXPECT_EQ(*us, (std::vector<unsigned>{0, 2, 5}));
  EXPECT_FALSE(parse_unsigned_list("0,,5").has_value());
  EXPECT_FALSE(parse_unsigned_list("0,2x").has_value());
  EXPECT_FALSE(parse_unsigned_list("").has_value());

  const auto ds = parse_double_list("0.02,0.05");
  ASSERT_TRUE(ds.has_value());
  EXPECT_EQ(*ds, (std::vector<double>{0.02, 0.05}));
  EXPECT_FALSE(parse_double_list("0.02,").has_value());
}

TEST(CampaignGrid, ModelAndEngineNamesRoundTrip) {
  for (FaultModel model : {FaultModel::kRandom, FaultModel::kAdversarial,
                           FaultModel::kEvents, FaultModel::kLinks}) {
    EXPECT_EQ(fault_model_from_name(fault_model_name(model)), model);
  }
  for (Engine engine : {Engine::kStoreForward, Engine::kWormhole}) {
    EXPECT_EQ(engine_from_name(engine_name(engine)), engine);
  }
  EXPECT_FALSE(fault_model_from_name("bogus").has_value());
  EXPECT_FALSE(engine_from_name("bogus").has_value());
}

// ---------------------------------------------------------------------------
// Seed scheme + enumeration

TEST(CampaignSeed, SplitSeedSeparatesIndicesAndStreams) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t index = 0; index < 128; ++index) {
    for (std::uint64_t stream = 0; stream < 3; ++stream) {
      seen.insert(split_seed(11, index, stream));
    }
  }
  EXPECT_EQ(seen.size(), 128u * 3u);  // no collisions across the grid
  EXPECT_EQ(split_seed(11, 5, 1), split_seed(11, 5, 1));  // pure function
  EXPECT_NE(split_seed(11, 5, 1), split_seed(12, 5, 1));  // seed matters
}

TEST(CampaignEnumerate, OrderCellsAndDerivedSeeds) {
  CampaignConfig cfg = small_config();
  const std::vector<TrialSpec> specs = enumerate_trials(cfg);
  ASSERT_EQ(specs.size(), 3u * 1u * 2u * 2u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].index, i);
    EXPECT_EQ(specs[i].seed, split_seed(cfg.seed, i, 0));
    EXPECT_EQ(specs[i].repeat, i % cfg.trials);
  }
  // model is the slowest axis, repeat the fastest.
  EXPECT_EQ(specs.front().model, FaultModel::kRandom);
  EXPECT_EQ(specs.back().model, FaultModel::kEvents);
  EXPECT_EQ(specs[0].fault_count, 0u);
  EXPECT_EQ(specs[2].fault_count, 2u);
}

TEST(CampaignEnumerate, RejectsMalformedConfigs) {
  const CampaignConfig good = small_config();
  (void)enumerate_trials(good);  // sanity: the base config is valid

  CampaignConfig cfg = good;
  cfg.rates.clear();
  EXPECT_THROW((void)enumerate_trials(cfg), std::invalid_argument);

  cfg = good;
  cfg.trials = 0;
  EXPECT_THROW((void)enumerate_trials(cfg), std::invalid_argument);

  cfg = good;
  cfg.rates = {0.0};
  EXPECT_THROW((void)enumerate_trials(cfg), std::invalid_argument);

  cfg = good;
  cfg.rates = {1.5};
  EXPECT_THROW((void)enumerate_trials(cfg), std::invalid_argument);

  cfg = good;
  cfg.fault_counts = {10000};  // >= num_nodes of HB(1,3)
  EXPECT_THROW((void)enumerate_trials(cfg), std::invalid_argument);

  cfg = good;
  cfg.engine = Engine::kWormhole;  // events model is store-and-forward only
  EXPECT_THROW((void)enumerate_trials(cfg), std::invalid_argument);

  cfg = good;
  cfg.models = {FaultModel::kLinks};  // links model is wormhole only
  EXPECT_THROW((void)enumerate_trials(cfg), std::invalid_argument);

  cfg = good;
  cfg.engine = Engine::kWormhole;
  cfg.models = {FaultModel::kRandom};
  cfg.wormhole.policy = VcPolicy::kSegmentDateline;
  cfg.wormhole.vcs = 6;  // valid config, but faults need 'adaptive'
  EXPECT_THROW((void)enumerate_trials(cfg), std::invalid_argument);
  cfg.fault_counts = {0};  // fault free: any deadlock-free policy is fine
  (void)enumerate_trials(cfg);

  cfg = good;
  cfg.engine = Engine::kWormhole;
  cfg.models = {FaultModel::kRandom};
  cfg.fault_counts = {0};
  cfg.wormhole.vcs = 2;  // below vc_classes() of the adaptive default
  EXPECT_THROW((void)enumerate_trials(cfg), std::invalid_argument);

  cfg = good;
  cfg.n = 2;  // invalid HB instance (n must be >= 3)
  EXPECT_THROW((void)enumerate_trials(cfg), std::invalid_argument);
}

TEST(CampaignSeed, DerivedFaultLinksAreDistinctAndDeterministic) {
  // Link faults must be distinct directed edges with in-range endpoints,
  // a pure function of (fault seed, topology, count).
  auto topo = make_hyper_butterfly_sim(1, 3);
  const auto links = derived_fault_links(99, *topo, 6);
  ASSERT_EQ(links.size(), 6u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> distinct(links.begin(),
                                                             links.end());
  EXPECT_EQ(distinct.size(), links.size());
  for (const auto& [u, v] : links) {
    ASSERT_LT(u, topo->num_nodes());
    ASSERT_LT(v, topo->num_nodes());
    const std::vector<std::uint32_t> nbrs = topo->neighbors(u);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), v), nbrs.end());
  }
  EXPECT_EQ(derived_fault_links(99, *topo, 6), links);
  EXPECT_NE(derived_fault_links(100, *topo, 6), links);
}

TEST(CampaignAdversarial, RankingIsPermutationSortedByIncidence) {
  const std::vector<std::uint32_t> order = adversarial_fault_ranking(1, 3);
  const std::uint64_t num_nodes = 3ull << 4;  // n * 2^(m+n)
  ASSERT_EQ(order.size(), num_nodes);
  std::set<std::uint32_t> distinct(order.begin(), order.end());
  EXPECT_EQ(distinct.size(), num_nodes);
  EXPECT_EQ(adversarial_fault_ranking(1, 3), order);  // deterministic
}

// ---------------------------------------------------------------------------
// Determinism contract

TEST(CampaignDeterminism, ArtifactsAreThreadCountInvariant) {
  CampaignConfig cfg = small_config();
  cfg.threads = 1;
  const std::string one = artifacts_of(cfg);
  cfg.threads = 2;
  const std::string two = artifacts_of(cfg);
  cfg.threads = 8;
  const std::string eight = artifacts_of(cfg);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(CampaignDeterminism, RepeatRunsAreByteIdentical) {
  CampaignConfig cfg = small_config();
  cfg.threads = 2;
  EXPECT_EQ(artifacts_of(cfg), artifacts_of(cfg));
}

TEST(CampaignDeterminism, SeedChangesArtifacts) {
  CampaignConfig cfg = small_config();
  cfg.threads = 2;
  const std::string a = artifacts_of(cfg);
  cfg.seed = cfg.seed + 1;
  EXPECT_NE(artifacts_of(cfg), a);
}

// ---------------------------------------------------------------------------
// The fault-tolerance claim, measured

// HB(2,3) has kappa = m+4 = 6 (Corollary 1), so with fault routing enabled
// every fault level below 5 = m+4-1 random static faults must deliver every
// injected packet: the Theorem-5 disjoint-path machinery always finds a
// surviving route.
TEST(CampaignFaultTolerance, NoDropsBelowConnectivityUnderRandomFaults) {
  CampaignConfig cfg;
  cfg.m = 2;
  cfg.n = 3;
  cfg.models = {FaultModel::kRandom};
  cfg.rates = {0.05};
  cfg.fault_counts = {0, 1, 2, 3, 4};
  cfg.trials = 2;
  cfg.seed = 3;
  cfg.sim.warmup_cycles = 20;
  cfg.sim.measure_cycles = 100;
  cfg.sim.drain_cycles = 1000;
  cfg.threads = 2;
  const CampaignResult r = run_campaign(cfg);
  ASSERT_EQ(r.cells.size(), 5u);
  for (const CellSummary& cell : r.cells) {
    EXPECT_EQ(cell.dropped, 0u) << "faults=" << cell.fault_count;
    EXPECT_EQ(cell.delivered, cell.injected) << "faults=" << cell.fault_count;
    EXPECT_GT(cell.injected, 0u) << "faults=" << cell.fault_count;
  }
}

// ---------------------------------------------------------------------------
// Reduction consistency

TEST(CampaignMetrics, MergedRegistryAgreesWithTrialTotals) {
  CampaignConfig cfg = small_config();
  cfg.threads = 2;
  const CampaignResult r = run_campaign(cfg);

  std::uint64_t injected = 0, delivered = 0, dropped = 0;
  for (const TrialResult& t : r.trials) {
    injected += t.injected;
    delivered += t.delivered;
    dropped += t.dropped;
  }
  ASSERT_NE(r.metrics.find_counter("campaign.delivered"), nullptr);
  EXPECT_EQ(r.metrics.find_counter("campaign.injected")->value(), injected);
  EXPECT_EQ(r.metrics.find_counter("campaign.delivered")->value(), delivered);
  EXPECT_EQ(r.metrics.find_counter("campaign.dropped")->value(), dropped);
  EXPECT_EQ(r.metrics.find_counter("campaign.trials")->value(),
            r.trials.size());

  // Cells sum to the same totals, and each cell's labeled counter matches.
  std::uint64_t cell_delivered = 0;
  for (const CellSummary& cell : r.cells) {
    cell_delivered += cell.delivered;
    std::ostringstream rate;
    rate << cell.rate;
    const obs::LabelSet labels = {{"model", fault_model_name(cell.model)},
                                  {"rate", rate.str()},
                                  {"faults", std::to_string(cell.fault_count)}};
    const obs::Counter* c = r.metrics.find_counter("sim.delivered", labels);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value(), cell.delivered);
  }
  EXPECT_EQ(cell_delivered, delivered);
}

TEST(CampaignCsv, HeaderAndRowCountAreStable) {
  CampaignConfig cfg = small_config();
  cfg.threads = 2;
  const CampaignResult r = run_campaign(cfg);
  std::ostringstream os;
  write_campaign_csv(os, r);
  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "model,rate,faults,trials,injected,delivered,dropped,p50,p99,"
            "max,mean_latency");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, r.cells.size());
}

// The wormhole face of the same claim: with the adaptive policy (the
// campaign's wormhole default) every fault level through m+3 = 4 on
// HB(1,3), across all three wormhole-capable fault models, delivers every
// routable packet with zero drops and zero deadlocks.
TEST(CampaignFaultTolerance, WormholeDeliversThroughMPlus3Faults) {
  CampaignConfig cfg;
  cfg.m = 1;
  cfg.n = 3;
  cfg.engine = Engine::kWormhole;
  cfg.models = {FaultModel::kRandom, FaultModel::kAdversarial,
                FaultModel::kLinks};
  cfg.rates = {0.03};
  cfg.fault_counts = {0, 2, 4};
  cfg.trials = 2;
  cfg.seed = 11;
  cfg.wormhole.warmup_cycles = 20;
  cfg.wormhole.measure_cycles = 150;
  cfg.threads = 2;
  const CampaignResult r = run_campaign(cfg);
  ASSERT_EQ(r.cells.size(), 9u);
  for (const CellSummary& cell : r.cells) {
    EXPECT_EQ(cell.dropped, 0u)
        << fault_model_name(cell.model) << " faults=" << cell.fault_count;
    EXPECT_EQ(cell.delivered, cell.injected)
        << fault_model_name(cell.model) << " faults=" << cell.fault_count;
    EXPECT_GT(cell.injected, 0u);
  }
  EXPECT_EQ(r.metrics.find_counter("campaign.deadlocks")->value(), 0u);
  // Nonzero-fault cells actually exercised the re-planner: the per-cell
  // wormhole.misroutes counters carry the grid-cell labels.
  std::uint64_t misroutes = 0;
  for (const CellSummary& cell : r.cells) {
    std::ostringstream rate;
    rate << cell.rate;
    const obs::Counter* c = r.metrics.find_counter(
        "wormhole.misroutes",
        {{"model", fault_model_name(cell.model)},
         {"rate", rate.str()},
         {"faults", std::to_string(cell.fault_count)}});
    if (c != nullptr) misroutes += c->value();
  }
  EXPECT_GT(misroutes, 0u);
}

TEST(CampaignWormhole, SweepRunsAndReportsLatencies) {
  CampaignConfig cfg;
  cfg.m = 1;
  cfg.n = 3;
  cfg.engine = Engine::kWormhole;
  cfg.rates = {0.02};
  cfg.trials = 2;
  cfg.seed = 5;
  cfg.wormhole.warmup_cycles = 20;
  cfg.wormhole.measure_cycles = 100;
  cfg.threads = 2;
  const CampaignResult r = run_campaign(cfg);
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_GT(r.cells[0].delivered, 0u);
  EXPECT_GT(r.cells[0].latency_p50, 0u);
  EXPECT_EQ(r.metrics.find_counter("campaign.deadlocks")->value(), 0u);
}

}  // namespace
}  // namespace hbnet::campaign
