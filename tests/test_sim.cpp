// Packet simulator: conservation laws, zero-load latency, contention
// behavior, determinism and fault handling.
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "sim/simulator.hpp"

namespace hbnet {
namespace {

SimConfig light_config() {
  SimConfig cfg;
  cfg.injection_rate = 0.02;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 300;
  cfg.drain_cycles = 5000;
  return cfg;
}

TEST(Simulator, ConservationNoFaults) {
  auto topo = make_hyper_butterfly_sim(2, 3);
  SimStats stats = run_simulation(*topo, light_config());
  EXPECT_GT(stats.injected(), 0u);
  EXPECT_EQ(stats.dropped(), 0u);
  // With a long drain, every measured packet is delivered.
  EXPECT_EQ(stats.delivered(), stats.injected());
}

TEST(Simulator, ZeroLoadLatencyTracksHops) {
  // At vanishing load, queueing is negligible: latency ~= hops.
  auto topo = make_hyper_butterfly_sim(2, 3);
  SimConfig cfg = light_config();
  cfg.injection_rate = 0.002;
  SimStats stats = run_simulation(*topo, cfg);
  ASSERT_GT(stats.delivered(), 0u);
  EXPECT_NEAR(stats.mean_latency(), stats.mean_hops(), 0.5);
}

TEST(Simulator, MeanHopsMatchesAverageDistanceUnderUniform) {
  auto topo = make_hypercube_sim(6);
  SimConfig cfg = light_config();
  cfg.injection_rate = 0.01;
  cfg.measure_cycles = 2000;
  SimStats stats = run_simulation(*topo, cfg);
  // Uniform traffic on H_6: expected distance m/2 * (N/(N-1)) ~ 3.05.
  ASSERT_GT(stats.delivered(), 500u);
  EXPECT_NEAR(stats.mean_hops(), 3.05, 0.3);
}

TEST(Simulator, LatencyGrowsWithLoad) {
  auto topo = make_butterfly_sim(4);
  SimConfig low = light_config();
  low.injection_rate = 0.01;
  SimConfig high = light_config();
  high.injection_rate = 0.25;
  double lat_low = run_simulation(*topo, low).mean_latency();
  double lat_high = run_simulation(*topo, high).mean_latency();
  EXPECT_GT(lat_high, lat_low);
}

TEST(Simulator, DeterministicForFixedSeed) {
  auto topo = make_hyper_debruijn_sim(2, 3);
  SimConfig cfg = light_config();
  SimStats a = run_simulation(*topo, cfg);
  SimStats b = run_simulation(*topo, cfg);
  EXPECT_EQ(a.delivered(), b.delivered());
  EXPECT_DOUBLE_EQ(a.mean_latency(), b.mean_latency());
}

TEST(Simulator, FaultsRerouteOnHb) {
  auto topo = make_hyper_butterfly_sim(2, 3);
  std::vector<char> faulty(topo->num_nodes(), 0);
  // m+3 = 5 faults: within the Theorem-5 guarantee, so every packet whose
  // endpoints are alive still gets a path -- no drops.
  for (std::uint32_t f : {5u, 17u, 40u, 63u, 80u}) faulty[f] = 1;
  SimConfig cfg = light_config();
  SimStats stats = run_simulation(*topo, cfg, faulty);
  EXPECT_GT(stats.delivered(), 0u);
  EXPECT_EQ(stats.dropped(), 0u);
  EXPECT_EQ(stats.delivered(), stats.injected());
}

TEST(Simulator, FaultsDropOnTopologyWithoutFtRouting) {
  auto topo = make_hypercube_sim(4);
  std::vector<char> faulty(topo->num_nodes(), 0);
  faulty[3] = 1;
  SimConfig cfg = light_config();
  cfg.injection_rate = 0.2;
  SimStats stats = run_simulation(*topo, cfg, faulty);
  // Hypercube adapter has no fault-tolerant routing: packets whose route
  // would need computation are dropped at injection.
  EXPECT_GT(stats.dropped(), 0u);
}

TEST(Simulator, TrafficPatternsProduceValidDestinations) {
  for (TrafficPattern p :
       {TrafficPattern::kUniform, TrafficPattern::kBitComplement,
        TrafficPattern::kBitReversal, TrafficPattern::kShuffle,
        TrafficPattern::kHotspot}) {
    TrafficGenerator gen(p, 96, 123);
    for (std::uint32_t src = 0; src < 96; src += 7) {
      std::uint32_t dst = gen.destination(src);
      EXPECT_LT(dst, 96u) << to_string(p);
      EXPECT_NE(dst, src) << to_string(p);
    }
  }
}

TEST(Simulator, DynamicFaultEventsRerouteOnHb) {
  // Kill nodes mid-run: HB re-source-routes in flight; every measured
  // packet is either delivered or explicitly dropped (conservation), and
  // with few faults drops stay rare.
  auto topo = make_hyper_butterfly_sim(2, 3);
  SimConfig cfg = light_config();
  cfg.injection_rate = 0.05;
  std::vector<FaultEvent> events{{120, 7}, {150, 33}, {180, 61}};
  SimStats stats = run_simulation_with_fault_events(*topo, cfg, events);
  EXPECT_GT(stats.delivered(), 0u);
  EXPECT_EQ(stats.delivered() + stats.dropped(), stats.injected());
  // 3 faults <= m+3: online repair should keep drops to the packets queued
  // at dying nodes only -- a tiny fraction.
  EXPECT_LT(static_cast<double>(stats.dropped()),
            0.05 * static_cast<double>(stats.injected()) + 5);
}

TEST(Simulator, DynamicFaultsOnDeadDestinationDrop) {
  auto topo = make_hyper_butterfly_sim(1, 3);
  SimConfig cfg = light_config();
  cfg.injection_rate = 0.2;
  // Kill many nodes early so some destinations die with packets en route.
  std::vector<FaultEvent> events;
  for (std::uint32_t v = 0; v < 12; ++v) {
    events.push_back({60 + 2 * v, v * 3});
  }
  SimStats stats = run_simulation_with_fault_events(*topo, cfg, events);
  EXPECT_EQ(stats.delivered() + stats.dropped(), stats.injected());
}

TEST(Simulator, ValiantModeConservesAndStretches) {
  auto topo = make_hyper_butterfly_sim(2, 3);
  SimConfig cfg = light_config();
  cfg.injection_rate = 0.01;
  SimStats native = run_simulation(*topo, cfg);
  cfg.routing = RoutingMode::kValiant;
  SimStats valiant = run_simulation(*topo, cfg);
  EXPECT_EQ(valiant.delivered(), valiant.injected());
  EXPECT_EQ(valiant.dropped(), 0u);
  // Valiant pays roughly double the hops at low load.
  EXPECT_GT(valiant.mean_hops(), native.mean_hops() * 1.3);
  EXPECT_LT(valiant.mean_hops(), native.mean_hops() * 3.0);
}

TEST(Simulator, StatsPercentiles) {
  SimStats s;
  for (std::uint64_t l = 1; l <= 100; ++l) s.record_delivery(l, l);
  EXPECT_EQ(s.latency_percentile(0.0), 1u);
  EXPECT_EQ(s.latency_percentile(1.0), 100u);
  EXPECT_EQ(s.max_latency(), 100u);
  EXPECT_NEAR(s.mean_latency(), 50.5, 1e-9);
}

}  // namespace
}  // namespace hbnet
