// Sharded synchronous packet engine: covering-walk plan optimality, the
// implicit router's hop-for-hop equivalence with the materialized
// route_generators(), conservation laws, Valiant mode, and the determinism
// contract -- stats and exported artifacts are byte-identical for every
// --threads x --shards combination.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/hyper_butterfly.hpp"
#include "obs/sink.hpp"
#include "sim/hb_route.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "topology/butterfly.hpp"

namespace hbnet {
namespace {

TEST(CoveringWalkPlan, MatchesOptimalLengthExhaustively) {
  for (const unsigned n : {3u, 5u, 8u}) {
    for (unsigned start = 0; start < n; ++start) {
      for (unsigned end = 0; end < n; ++end) {
        for (std::uint64_t req = 0; req < (std::uint64_t{1} << n); ++req) {
          const CoveringWalkPlan plan = plan_covering_walk(n, start, end, req);
          ASSERT_EQ(plan.length(), covering_walk_length(n, start, end, req))
              << "n=" << n << " start=" << start << " end=" << end
              << " req=" << req;
        }
      }
    }
  }
}

TEST(CoveringWalkPlan, ReplayCoversAndTerminates) {
  // Walk the three monotone runs on the level cycle and verify the walk is
  // valid: correct step count, ends at `end`, crosses every required edge
  // (an upward step crosses edge `level`, a downward step crosses
  // (level - 1) mod n).
  const unsigned n = 6;
  for (unsigned start = 0; start < n; ++start) {
    for (unsigned end = 0; end < n; ++end) {
      for (std::uint64_t req = 0; req < (std::uint64_t{1} << n); ++req) {
        const CoveringWalkPlan plan = plan_covering_walk(n, start, end, req);
        unsigned level = start;
        std::uint64_t crossed = 0;
        unsigned steps = 0;
        for (unsigned i = 0; i < 3; ++i) {
          for (unsigned k = 0; k < plan.run(i); ++k) {
            if (plan.dir(i) > 0) {
              crossed |= std::uint64_t{1} << level;
              level = level + 1 == n ? 0 : level + 1;
            } else {
              level = level == 0 ? n - 1 : level - 1;
              crossed |= std::uint64_t{1} << level;
            }
            ++steps;
          }
        }
        ASSERT_EQ(steps, plan.length());
        ASSERT_EQ(level, end) << "start=" << start << " req=" << req;
        ASSERT_EQ(crossed & req, req) << "uncovered edges, start=" << start;
      }
    }
  }
}

// Generator index in HyperButterfly::generators() order (h_0..h_{m-1}, g,
// f, g^-1, f^-1) -- the encoding HbHop::gen uses.
unsigned gen_index(const HyperButterfly& hb, const HbGen& g) {
  return g.is_cube ? g.cube_bit
                   : hb.cube_dimension() + static_cast<unsigned>(g.bfly_gen);
}

TEST(HbImplicitRouter, ReplaysRouteGeneratorsExactly) {
  for (const auto& [m, n] : {std::pair{2u, 3u}, std::pair{1u, 4u}}) {
    const HyperButterfly hb(m, n);
    const sim::HbImplicitRouter router(hb);
    const std::vector<HbGen> gens = hb.generators();
    for (HbIndex si = 0; si < hb.num_nodes(); ++si) {
      for (HbIndex di = 0; di < hb.num_nodes(); ++di) {
        const HbNode src = hb.node_at(si);
        const HbNode dst = hb.node_at(di);
        const std::vector<HbGen> want = hb.route_generators(src, dst);

        sim::HbRouteState st = router.plan(src, dst);
        ASSERT_EQ(st.hops_remaining(), want.size());
        HbNode cur = src;
        std::size_t hop_count = 0;
        while (!st.done()) {
          const sim::HbHop hop = router.next_hop(cur, st);
          ASSERT_LT(hop_count, want.size());
          ASSERT_EQ(unsigned{hop.gen}, gen_index(hb, want[hop_count]))
              << "hop " << hop_count << " of " << si << "->" << di;
          ASSERT_EQ(hop.next, hb.apply(cur, gens[hop.gen]));
          cur = hop.next;
          ++hop_count;
        }
        ASSERT_EQ(cur, dst);
        ASSERT_EQ(hop_count, want.size());
      }
    }
  }
}

SimConfig sharded_config() {
  SimConfig cfg;
  cfg.injection_rate = 0.08;
  cfg.warmup_cycles = 20;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 4000;
  return cfg;
}

struct ShardedRun {
  SimStats stats;
  std::string metrics_json;
  std::string links_csv;
};

ShardedRun run_sharded(const HyperButterfly& hb, const SimConfig& cfg,
                       unsigned shards, unsigned threads) {
  obs::Sink sink;
  ShardedRun r;
  r.stats = run_simulation_sharded(hb, cfg, shards, threads, &sink);
  std::ostringstream metrics, links;
  sink.write_metrics_json(metrics);
  sink.write_links_csv(links);
  r.metrics_json = metrics.str();
  r.links_csv = links.str();
  return r;
}

TEST(ShardedSim, ConservationNoFaults) {
  const HyperButterfly hb(2, 3);
  const SimStats stats = run_simulation_sharded(hb, sharded_config());
  EXPECT_GT(stats.injected(), 0u);
  EXPECT_EQ(stats.dropped(), 0u);
  // With a long drain, every measured packet is delivered.
  EXPECT_EQ(stats.delivered(), stats.injected());
}

TEST(ShardedSim, ResultsInvariantAcrossThreadsAndShards) {
  const HyperButterfly hb(2, 3);
  const SimConfig cfg = sharded_config();
  const ShardedRun base = run_sharded(hb, cfg, 1, 1);
  ASSERT_GT(base.stats.delivered(), 0u);
  for (const auto& [shards, threads] :
       {std::pair{3u, 2u}, std::pair{4u, 8u}, std::pair{0u, 0u}}) {
    const ShardedRun run = run_sharded(hb, cfg, shards, threads);
    EXPECT_EQ(run.stats.injected(), base.stats.injected());
    EXPECT_EQ(run.stats.delivered(), base.stats.delivered());
    EXPECT_EQ(run.stats.mean_latency(), base.stats.mean_latency());
    EXPECT_EQ(run.stats.mean_hops(), base.stats.mean_hops());
    EXPECT_EQ(run.metrics_json, base.metrics_json)
        << "shards=" << shards << " threads=" << threads;
    EXPECT_EQ(run.links_csv, base.links_csv)
        << "shards=" << shards << " threads=" << threads;
  }
}

TEST(ShardedSim, ValiantConservesAndInflatesHops) {
  const HyperButterfly hb(2, 3);
  SimConfig cfg = sharded_config();
  const SimStats native = run_simulation_sharded(hb, cfg);
  cfg.routing = RoutingMode::kValiant;
  const ShardedRun a = run_sharded(hb, cfg, 1, 1);
  const ShardedRun b = run_sharded(hb, cfg, 4, 8);
  EXPECT_EQ(a.stats.delivered(), a.stats.injected());
  EXPECT_GT(a.stats.delivered(), 0u);
  // Routing through a random intermediate costs extra hops on average.
  EXPECT_GT(a.stats.mean_hops(), native.mean_hops());
  // The determinism contract holds in Valiant mode too (the re-plan at the
  // intermediate happens at service time, identically in every sharding).
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.links_csv, b.links_csv);
}

TEST(ShardedSim, ZeroLoadLatencyTracksHops) {
  // At vanishing load, queueing is negligible: latency ~= hops.
  const HyperButterfly hb(2, 3);
  SimConfig cfg = sharded_config();
  cfg.injection_rate = 0.002;
  const SimStats stats = run_simulation_sharded(hb, cfg);
  ASSERT_GT(stats.delivered(), 0u);
  EXPECT_NEAR(stats.mean_latency(), stats.mean_hops(), 0.5);
}

TEST(ShardedSim, ServiceRateTwoRelievesContention) {
  const HyperButterfly hb(2, 3);
  SimConfig cfg = sharded_config();
  cfg.injection_rate = 0.2;
  const ShardedRun sr1 = run_sharded(hb, cfg, 1, 1);
  cfg.service_rate = 2;
  const ShardedRun a = run_sharded(hb, cfg, 1, 1);
  const ShardedRun b = run_sharded(hb, cfg, 4, 2);
  EXPECT_EQ(a.stats.delivered(), a.stats.injected());
  EXPECT_LE(a.stats.mean_latency(), sr1.stats.mean_latency());
  // Multi-slot emission (service_rate > 1) preserves the contract.
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.links_csv, b.links_csv);
}

TEST(ShardedSim, MeanHopsAgreesWithSerialEngine) {
  // Different RNGs, same distribution: mean hops under uniform traffic must
  // agree statistically between the serial and sharded engines.
  const unsigned m = 2, n = 3;
  const HyperButterfly hb(m, n);
  SimConfig cfg = sharded_config();
  cfg.injection_rate = 0.05;
  cfg.measure_cycles = 500;
  const SimStats sharded = run_simulation_sharded(hb, cfg);
  auto topo = make_hyper_butterfly_sim(m, n);
  const SimStats serial = run_simulation(*topo, cfg);
  ASSERT_GT(sharded.delivered(), 1000u);
  ASSERT_GT(serial.delivered(), 1000u);
  EXPECT_NEAR(sharded.mean_hops(), serial.mean_hops(), 0.25);
}

}  // namespace
}  // namespace hbnet
