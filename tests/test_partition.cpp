// Partitionability (Remark 5 / scalability): cube splits are genuine
// HB(m',n) copies, and the buddy allocator space-shares them correctly.
#include <gtest/gtest.h>

#include "core/partition.hpp"

namespace hbnet {
namespace {

TEST(Partition, CubeSplitCounts) {
  HyperButterfly hb(3, 3);
  auto parts = cube_split(hb, 2);
  EXPECT_EQ(parts.size(), 2u);  // 2^(3-2)
  auto fine = cube_split(hb, 1);
  EXPECT_EQ(fine.size(), 4u);
  EXPECT_THROW(cube_split(hb, 0), std::invalid_argument);
  EXPECT_THROW(cube_split(hb, 4), std::invalid_argument);
}

TEST(Partition, LiftLowerRoundTrip) {
  HyperButterfly hb(3, 3);
  SubHyperButterfly part{2, 1};  // top bit fixed to 1
  HbNode v{0b01, {5, 2}};
  HbNode lifted = part.lift(v);
  EXPECT_EQ(lifted.cube, 0b101u);
  EXPECT_TRUE(part.contains_cube(lifted.cube));
  EXPECT_FALSE(part.contains_cube(0b001));
  EXPECT_TRUE(part.lower(lifted) == v);
}

TEST(Partition, CubeSplitIsIsomorphicEmbedding) {
  for (auto [m, n, sub] : {std::tuple{2u, 3u, 1u}, std::tuple{3u, 3u, 2u},
                           std::tuple{3u, 4u, 1u}, std::tuple{4u, 3u, 2u}}) {
    HyperButterfly hb(m, n);
    EXPECT_TRUE(verify_cube_split(hb, sub))
        << "m=" << m << " n=" << n << " sub=" << sub;
  }
}

TEST(Allocator, GrantsAndCoalesces) {
  HyperButterfly hb(3, 3);
  PartitionAllocator alloc(hb);
  EXPECT_EQ(alloc.largest_free(), 3u);

  auto a = alloc.allocate(2);  // half the machine
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->sub_m, 2u);
  EXPECT_EQ(alloc.layers_in_use(), 4u);
  EXPECT_EQ(alloc.largest_free(), 2u);

  auto b = alloc.allocate(2);  // the other half
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->prefix, b->prefix);
  EXPECT_EQ(alloc.layers_in_use(), 8u);
  EXPECT_FALSE(alloc.allocate(1).has_value());  // full

  alloc.release(*a);
  EXPECT_EQ(alloc.layers_in_use(), 4u);
  alloc.release(*b);
  EXPECT_EQ(alloc.layers_in_use(), 0u);
  EXPECT_EQ(alloc.largest_free(), 3u);  // coalesced back to one block
}

TEST(Allocator, SplitsDownAndRefusesWhenFragmented) {
  HyperButterfly hb(3, 3);
  PartitionAllocator alloc(hb);
  auto small = alloc.allocate(1);  // 2 of 8 layers
  ASSERT_TRUE(small.has_value());
  // Largest remaining block after splitting 3 -> 2 + (1 used +1 free).
  EXPECT_EQ(alloc.largest_free(), 2u);
  auto big = alloc.allocate(3);
  EXPECT_FALSE(big.has_value());  // whole machine no longer available
  auto half = alloc.allocate(2);
  ASSERT_TRUE(half.has_value());
  auto quarter = alloc.allocate(1);
  ASSERT_TRUE(quarter.has_value());
  EXPECT_EQ(alloc.layers_in_use(), 8u);
  alloc.release(*quarter);
  alloc.release(*small);
  alloc.release(*half);
  EXPECT_EQ(alloc.largest_free(), 3u);
}

TEST(Allocator, DoubleFreeThrows) {
  HyperButterfly hb(2, 3);
  PartitionAllocator alloc(hb);
  auto a = alloc.allocate(1);
  ASSERT_TRUE(a.has_value());
  alloc.release(*a);
  EXPECT_THROW(alloc.release(*a), std::invalid_argument);
}

TEST(Allocator, ForeignBlockThrows) {
  HyperButterfly hb(2, 3);
  PartitionAllocator alloc(hb);
  SubHyperButterfly bogus{5, 0};
  EXPECT_THROW(alloc.release(bogus), std::invalid_argument);
  SubHyperButterfly bad_prefix{1, 9};
  EXPECT_THROW(alloc.release(bad_prefix), std::invalid_argument);
}

TEST(Allocator, ReleasingParentOfGrantedChildrenThrows) {
  // Two children granted; releasing their (never-granted) parent must be
  // rejected rather than corrupting the free lists.
  HyperButterfly hb(2, 3);
  PartitionAllocator alloc(hb);
  auto a = alloc.allocate(1);
  auto b = alloc.allocate(1);
  ASSERT_TRUE(a && b);
  SubHyperButterfly parent{2, 0};
  EXPECT_THROW(alloc.release(parent), std::invalid_argument);
  EXPECT_EQ(alloc.layers_in_use(), 4u);  // state untouched
  alloc.release(*a);
  alloc.release(*b);
  EXPECT_EQ(alloc.layers_in_use(), 0u);
}

TEST(Allocator, WholeMachine) {
  HyperButterfly hb(2, 3);
  PartitionAllocator alloc(hb);
  auto all = alloc.allocate(2);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->prefix, 0u);
  EXPECT_FALSE(alloc.largest_free().has_value());
  alloc.release(*all);
  EXPECT_EQ(alloc.largest_free(), 2u);
}

}  // namespace
}  // namespace hbnet
