// Thread-count invariance of the parallel analysis engine: every routine
// must return results identical (bit-identical for doubles) to its serial
// reference and to itself at any thread count -- the determinism contract
// of hbnet::par (see docs/performance.md).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/hyper_butterfly.hpp"
#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/parallel_bfs.hpp"

namespace hbnet {
namespace {

const unsigned kThreadCounts[] = {1, 2, 8};

Graph random_connected_graph(NodeId n, double p, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  GraphBuilder b(n);
  for (NodeId u = 1; u < n; ++u) {
    // Random spanning-tree edge first so the graph is always connected.
    b.add_edge(u, std::uniform_int_distribution<NodeId>(0, u - 1)(rng));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (coin(rng) < p) b.add_edge(u, v);
    }
  }
  return b.build();
}

/// Serial all-sources reference sweep (intentionally naive).
Dist serial_diameter(const Graph& g) {
  Dist d = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    Dist e = eccentricity(g, v);
    if (e == kUnreachable) return kUnreachable;
    d = std::max(d, e);
  }
  return d;
}

double serial_average_distance(const Graph& g) {
  unsigned long long total = 0, pairs = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    BfsResult r = bfs(g, s);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == s || r.dist[v] == kUnreachable) continue;
      total += r.dist[v];
      ++pairs;
    }
  }
  return pairs == 0
             ? 0.0
             : static_cast<double>(static_cast<long double>(total) /
                                   static_cast<long double>(pairs));
}

TEST(ParallelAnalysis, DiameterMatchesSerialEverywhere) {
  const Graph graphs[] = {HyperButterfly(1, 3).to_graph(),
                          random_connected_graph(80, 0.08, 7)};
  for (const Graph& g : graphs) {
    const Dist expected = serial_diameter(g);
    for (unsigned t : kThreadCounts) {
      EXPECT_EQ(parallel_diameter(g, t), expected) << t << " threads";
    }
    EXPECT_EQ(diameter(g), expected);  // serial entry point delegates
  }
}

TEST(ParallelAnalysis, DiameterOfDisconnectedGraphIsUnreachable) {
  GraphBuilder b(6);  // two triangles
  b.add_edge(0, 1), b.add_edge(1, 2), b.add_edge(2, 0);
  b.add_edge(3, 4), b.add_edge(4, 5), b.add_edge(5, 3);
  const Graph g = b.build();
  for (unsigned t : kThreadCounts) {
    EXPECT_EQ(parallel_diameter(g, t), kUnreachable);
  }
}

TEST(ParallelAnalysis, EccentricitiesMatchSerialPerVertex) {
  const Graph g = random_connected_graph(60, 0.1, 11);
  for (unsigned t : kThreadCounts) {
    const std::vector<Dist> ecc = parallel_eccentricities(g, t);
    ASSERT_EQ(ecc.size(), g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(ecc[v], eccentricity(g, v)) << "vertex " << v;
    }
  }
}

TEST(ParallelAnalysis, AverageDistanceBitIdenticalAcrossThreadCounts) {
  const Graph graphs[] = {HyperButterfly(1, 3).to_graph(),
                          random_connected_graph(70, 0.07, 3)};
  for (const Graph& g : graphs) {
    const double expected = serial_average_distance(g);
    for (unsigned t : kThreadCounts) {
      // Bit-identical, not approximately equal: the parallel sum is an
      // exact integer reduction, the division happens once at the end.
      EXPECT_EQ(parallel_average_distance(g, t), expected);
    }
    EXPECT_EQ(average_distance(g, g.num_nodes()), expected);
  }
}

TEST(ParallelAnalysis, VertexConnectivityExactAndThreadInvariant) {
  struct Case {
    Graph g;
    std::uint32_t kappa;
  };
  const Case cases[] = {{HyperButterfly(1, 3).to_graph(), 5},
                        {HyperButterfly(2, 3).to_graph(), 6}};
  for (const Case& c : cases) {
    for (unsigned t : kThreadCounts) {
      EXPECT_EQ(vertex_connectivity(c.g, t), c.kappa) << t << " threads";
    }
  }
}

TEST(ParallelAnalysis, VertexConnectivityOnRandomGraphsThreadInvariant) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const Graph g = random_connected_graph(40, 0.12, seed);
    const std::uint32_t expected = vertex_connectivity(g, 1);
    for (unsigned t : {2u, 8u}) {
      EXPECT_EQ(vertex_connectivity(g, t), expected) << "seed " << seed;
    }
  }
}

TEST(ParallelAnalysis, EdgeConnectivityExactAndThreadInvariant) {
  const Graph hb = HyperButterfly(1, 3).to_graph();
  for (unsigned t : kThreadCounts) {
    EXPECT_EQ(edge_connectivity(hb, t), 5u);
  }
  for (std::uint64_t seed : {5, 9}) {
    const Graph g = random_connected_graph(40, 0.12, seed);
    const std::uint32_t expected = edge_connectivity(g, 1);
    EXPECT_GE(expected, vertex_connectivity(g, 1));  // Whitney's inequality
    for (unsigned t : {2u, 8u}) {
      EXPECT_EQ(edge_connectivity(g, t), expected) << "seed " << seed;
    }
  }
}

TEST(ParallelAnalysis, SampledConnectivityThreadInvariant) {
  const Graph g = HyperButterfly(2, 3).to_graph();
  for (unsigned t : kThreadCounts) {
    // kappa = 6: target 6 holds on every pair, target 7 fails on every pair.
    EXPECT_TRUE(check_local_connectivity_sampled(g, 6, 12, 99, t));
    EXPECT_FALSE(check_local_connectivity_sampled(g, 7, 12, 99, t));
  }
}

TEST(ParallelAnalysis, DisjointPathAuditPassesOnHb13) {
  const HyperButterfly hb(1, 3);
  for (unsigned t : {1u, 4u}) {
    const DisjointPathsAudit audit = audit_disjoint_paths(hb, t);
    EXPECT_TRUE(audit.ok) << audit.error;
    EXPECT_EQ(audit.pairs_checked, hb.num_nodes() * (hb.num_nodes() - 1));
    EXPECT_TRUE(audit.error.empty());
  }
}

}  // namespace
}  // namespace hbnet
