// Cross-module invariant verification: randomized adversarial checks that
// tie independent implementations together (metric axioms, constructive
// family vs max-flow, collectives vs diameter, representation coherence).
#include <gtest/gtest.h>

#include <random>

#include "distsim/collectives.hpp"
#include "core/hyper_butterfly.hpp"
#include "core/routing.hpp"
#include "graph/connectivity.hpp"

namespace hbnet {
namespace {

class InvariantParam
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(InvariantParam, DistanceIsAMetric) {
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  std::mt19937_64 rng(100 + m * 10 + n);
  std::uniform_int_distribution<HbIndex> pick(0, hb.num_nodes() - 1);
  for (int trial = 0; trial < 50; ++trial) {
    HbNode a = hb.node_at(pick(rng)), b = hb.node_at(pick(rng)),
           c = hb.node_at(pick(rng));
    unsigned ab = hb.distance(a, b), ba = hb.distance(b, a);
    unsigned bc = hb.distance(b, c), ac = hb.distance(a, c);
    EXPECT_EQ(ab, ba);                     // symmetry
    EXPECT_EQ(hb.distance(a, a), 0u);      // identity
    EXPECT_LE(ac, ab + bc);                // triangle inequality
    if (!(a == b)) EXPECT_GE(ab, 1u);      // positivity
    EXPECT_LE(ab, m + 3 * n / 2);          // measured diameter bound
  }
}

TEST_P(InvariantParam, VertexTransitivityOfDistanceSpectrum) {
  // Cayley graphs are vertex transitive: the multiset of distances from any
  // vertex equals that from the identity.
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  std::vector<std::uint64_t> hist_a(m + 3 * n / 2 + 2, 0),
      hist_b(m + 3 * n / 2 + 2, 0);
  HbNode a{0, {0, 0}};
  HbNode b{static_cast<CubeWord>((1u << m) - 1), {3 % (1u << n), n - 1}};
  for (HbIndex id = 0; id < hb.num_nodes(); ++id) {
    ++hist_a[hb.distance(a, hb.node_at(id))];
    ++hist_b[hb.distance(b, hb.node_at(id))];
  }
  EXPECT_EQ(hist_a, hist_b);
}

TEST_P(InvariantParam, ConstructiveFamilyMatchesMaxFlow) {
  // Theorem 5's constructive m+4 paths must equal the max-flow value
  // (which can never exceed degree m+4).
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  Graph g = hb.to_graph();
  std::mt19937_64 rng(7 * m + n);
  std::uniform_int_distribution<HbIndex> pick(0, hb.num_nodes() - 1);
  for (int trial = 0; trial < 8; ++trial) {
    HbIndex s = pick(rng), t = pick(rng);
    if (s == t) continue;
    auto family = hb.disjoint_paths(hb.node_at(s), hb.node_at(t));
    std::uint32_t flow = max_disjoint_paths(g, static_cast<NodeId>(s),
                                            static_cast<NodeId>(t));
    EXPECT_EQ(family.size(), flow);
    EXPECT_EQ(flow, m + 4);
  }
}

TEST_P(InvariantParam, AllPortBroadcastEqualsEccentricity) {
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  unsigned rounds = all_port_broadcast_rounds(hb, HbNode{0, {0, 0}});
  EXPECT_EQ(rounds, m + 3 * n / 2);  // identity eccentricity = diameter
}

TEST_P(InvariantParam, TreeAllreduceComputesGlobalSum) {
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  AllreduceResult r = hb_tree_allreduce(hb);
  EXPECT_TRUE(r.correct);
  EXPECT_TRUE(r.run.all_halted);
  // 2(N-1) tree messages exactly: one up and one down per non-root node.
  EXPECT_EQ(r.run.messages, 2 * (hb.num_nodes() - 1));
}

TEST_P(InvariantParam, GossipCompletesWithinDiameter) {
  auto [m, n] = GetParam();
  HyperButterfly hb(m, n);
  GossipResult r = hb_gossip(hb);
  EXPECT_TRUE(r.complete);
  EXPECT_LE(r.run.rounds, m + 3u * n / 2 + 2);
}

INSTANTIATE_TEST_SUITE_P(Dims, InvariantParam,
                         ::testing::Values(std::pair{1u, 3u}, std::pair{2u, 3u},
                                           std::pair{2u, 4u},
                                           std::pair{3u, 4u}));

TEST(Invariants, RouteReversalIsValid) {
  // route(v,u) need not be the reverse of route(u,v), but must have the
  // same length (metric symmetry realized by the router).
  HyperButterfly hb(2, 5);
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<HbIndex> pick(0, hb.num_nodes() - 1);
  for (int trial = 0; trial < 40; ++trial) {
    HbNode u = hb.node_at(pick(rng)), v = hb.node_at(pick(rng));
    EXPECT_EQ(hb.route(u, v).size(), hb.route(v, u).size());
  }
}

TEST(Invariants, NeighborsAgreeWithGenerators) {
  HyperButterfly hb(3, 4);
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<HbIndex> pick(0, hb.num_nodes() - 1);
  auto gens = hb.generators();
  for (int trial = 0; trial < 30; ++trial) {
    HbNode v = hb.node_at(pick(rng));
    auto nbrs = hb.neighbors(v);
    ASSERT_EQ(nbrs.size(), gens.size());
    for (std::size_t i = 0; i < gens.size(); ++i) {
      EXPECT_TRUE(nbrs[i] == hb.apply(v, gens[i]));
      EXPECT_EQ(hb.distance(v, nbrs[i]), 1u);
    }
  }
}

TEST(Invariants, IndexBijectionOverFullRange) {
  HyperButterfly hb(2, 5);
  std::vector<char> seen(hb.num_nodes(), 0);
  for (HbIndex id = 0; id < hb.num_nodes(); ++id) {
    HbIndex back = hb.index_of(hb.node_at(id));
    ASSERT_EQ(back, id);
    ASSERT_FALSE(seen[back]);
    seen[back] = 1;
  }
}

}  // namespace
}  // namespace hbnet
