// Tests for the check layer: validate() accepts well-formed structures and
// pinpoints malformed ones, and the HBNET_CHECK macros abort with a
// file:line diagnostic (death tests).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "core/validate.hpp"
#include "graph/validate.hpp"
#include "core/hyper_butterfly.hpp"
#include "graph/graph.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace hbnet {
namespace {

TEST(Validate, AcceptsTriangle) {
  Graph g({0, 2, 4, 6}, {1, 2, 0, 2, 0, 1});
  EXPECT_EQ(check::validate(g), "");
}

TEST(Validate, AcceptsEmptyGraph) {
  Graph g;
  EXPECT_EQ(check::validate(g), "");
}

TEST(Validate, RejectsSelfLoop) {
  Graph g({0, 1, 2}, {0, 1});
  EXPECT_NE(check::validate(g), "");
}

TEST(Validate, RejectsAsymmetry) {
  // 0 -> 1 stored, but 1's adjacency is empty.
  Graph g({0, 1, 1}, {1});
  EXPECT_NE(check::validate(g), "");
}

TEST(Validate, RejectsNonMonotoneOffsets) {
  // front()==0 and back()==columns.size() pass the constructor's cheap
  // checks; the dip at index 2 is what the validator must catch.
  Graph g({0, 2, 1, 2}, {1, 0});
  EXPECT_NE(check::validate(g), "");
}

TEST(Validate, RejectsUnsortedAdjacency) {
  // Node 0's adjacency {2, 1} is out of order.
  Graph g({0, 2, 3, 4}, {2, 1, 0, 0});
  EXPECT_NE(check::validate(g), "");
}

TEST(Validate, RejectsTargetOutOfRange) {
  Graph g({0, 1, 2}, {1, 5});
  EXPECT_NE(check::validate(g), "");
}

TEST(Validate, AcceptsHyperButterfly) {
  for (auto [m, n] : {std::pair<unsigned, unsigned>{1, 3},
                      {2, 3},
                      {2, 4}}) {
    HyperButterfly hb(m, n);
    EXPECT_EQ(check::validate(hb), "") << "HB(" << m << "," << n << ")";
  }
}

TEST(Validate, HyperButterflyGraphIsWellFormed) {
  HyperButterfly hb(1, 3);
  EXPECT_EQ(check::validate(hb.to_graph()), "");
}

using CheckDeath = ::testing::Test;

TEST(CheckDeath, CheckAbortsWithDiagnostic) {
  EXPECT_DEATH(HBNET_CHECK(1 + 1 == 3), "HBNET_CHECK failed");
}

TEST(CheckDeath, CheckMsgIncludesMessage) {
  EXPECT_DEATH(HBNET_CHECK_MSG(false, "in_flight underflow"),
               "in_flight underflow");
}

TEST(CheckDeath, CheckOkReportsValidatorString) {
  EXPECT_DEATH(HBNET_CHECK_OK(std::string("offsets not monotone")),
               "offsets not monotone");
}

// Postmortem triage path: with a crash dump installed, a CHECK failure
// appends the flight recorder's recent engine events to the diagnostic --
// the in-flight trial context survives the abort.
TEST(CheckDeath, CheckFailureDumpsFlightRecorder) {
  EXPECT_DEATH(
      {
        obs::FlightRecorder::install_crash_dump();  // empty path -> stderr
        obs::FlightRecorder::record("death_probe", 42, 7, 9);
        HBNET_CHECK_MSG(false, "flight dump probe");
      },
      // gtest's simple-regex '.' matches newlines, so this spans the
      // diagnostic line and the dump that follows it.
      "flight dump probe.*flight recorder: recent events.*"
      "death_probe a=42 b=7 c=9");
}

TEST(CheckDeath, PassingChecksAreSilent) {
  HBNET_CHECK(true);
  HBNET_CHECK_MSG(2 + 2 == 4, "never shown");
  HBNET_CHECK_OK(std::string());
  HBNET_DCHECK(true);
  HBNET_DCHECK_OK(std::string());
}

// The simulators' input contracts are HBNET_CHECKs: a wrong-sized fault
// mask or an out-of-range fault-event node is a caller bug, not a
// recoverable condition.
TEST(CheckDeath, SimulationRejectsWrongSizedFaultMask) {
  auto topo = make_hyper_butterfly_sim(1, 3);
  SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 2;
  cfg.drain_cycles = 8;
  std::vector<char> faulty(topo->num_nodes() + 1, 0);  // one too long
  EXPECT_DEATH((void)run_simulation(*topo, cfg, faulty),
               "fault mask must be empty or num_nodes");
}

TEST(CheckDeath, FaultEventsRejectOutOfRangeNode) {
  auto topo = make_hyper_butterfly_sim(1, 3);
  SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 2;
  cfg.drain_cycles = 8;
  std::vector<FaultEvent> events{{1, topo->num_nodes()}};  // first bad id
  EXPECT_DEATH(
      (void)run_simulation_with_fault_events(*topo, cfg, events),
      "event node out of range");
}

#if HBNET_CHECKS
TEST(CheckDeath, DcheckActiveWhenChecksOn) {
  EXPECT_DEATH(HBNET_DCHECK(false), "HBNET_CHECK failed");
}
#else
TEST(CheckDeath, DcheckCompiledOutWhenChecksOff) {
  bool evaluated = false;
  // The condition must not be evaluated when the level is compiled out.
  HBNET_DCHECK((evaluated = true));
  EXPECT_FALSE(evaluated);
}
#endif

}  // namespace
}  // namespace hbnet
