// Unit tests for the generic graph substrate: builder, CSR invariants, BFS,
// embedding checks and subgraph search.
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/embedding_check.hpp"
#include "graph/graph.hpp"
#include "graph/subgraph_search.hpp"
#include "topology/guest_graphs.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {
namespace {

TEST(GraphBuilder, DedupsAndDropsSelfLoops) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate, reversed
  b.add_edge(0, 1);  // duplicate
  b.add_edge(2, 2);  // self loop
  b.add_edge(2, 3);
  Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_TRUE(g.has_edge(3, 2));
}

TEST(GraphBuilder, RejectsOutOfRange) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::out_of_range);
}

TEST(Graph, NeighborsSortedAndDegrees) {
  GraphBuilder b(5);
  b.add_edge(0, 3);
  b.add_edge(0, 1);
  b.add_edge(0, 4);
  Graph g = b.build();
  auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(2), 0u);
  auto [lo, hi] = g.degree_range();
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 3u);
  EXPECT_FALSE(g.is_regular());
}

TEST(Bfs, DistancesOnCycle) {
  Graph c = make_cycle(10);
  BfsResult r = bfs(c, 0);
  EXPECT_EQ(r.dist[5], 5u);
  EXPECT_EQ(r.dist[9], 1u);
  EXPECT_EQ(r.dist[0], 0u);
  EXPECT_EQ(diameter(c), 5u);
  EXPECT_EQ(diameter_vertex_transitive(c), 5u);
  EXPECT_TRUE(is_connected(c));
}

TEST(Bfs, DistanceEarlyExitMatchesFullBfs) {
  Graph g = Hypercube(6).to_graph();
  BfsResult r = bfs(g, 5);
  for (NodeId t = 0; t < g.num_nodes(); t += 7) {
    EXPECT_EQ(bfs_distance(g, 5, t), r.dist[t]);
  }
}

TEST(Bfs, ShortestPathIsValid) {
  Graph g = Hypercube(5).to_graph();
  auto p = shortest_path(g, 0, 31);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 6u);  // distance 5
  for (std::size_t i = 1; i < p->size(); ++i) {
    EXPECT_TRUE(g.has_edge((*p)[i - 1], (*p)[i]));
  }
}

TEST(Bfs, AvoidingFaultsDisconnects) {
  Graph c = make_cycle(8);
  std::vector<char> faulty(8, 0);
  faulty[1] = faulty[7] = 1;  // cut both sides of vertex 0
  BfsResult r = bfs_avoiding(c, 0, faulty);
  EXPECT_EQ(r.dist[4], kUnreachable);
  EXPECT_FALSE(is_connected_after_removal(c, faulty));
  faulty[7] = 0;
  EXPECT_TRUE(is_connected_after_removal(c, faulty));
}

TEST(Bfs, AverageDistanceOfCompleteGraphIsOne) {
  GraphBuilder b(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) b.add_edge(u, v);
  }
  EXPECT_DOUBLE_EQ(average_distance(b.build(), 100), 1.0);
}

TEST(EmbeddingCheck, AcceptsIdentity) {
  Graph c = make_cycle(6);
  std::vector<NodeId> id{0, 1, 2, 3, 4, 5};
  EmbeddingCheck r = check_embedding(c, c, id);
  EXPECT_TRUE(r.injective);
  EXPECT_TRUE(r.dilation_one);
}

TEST(EmbeddingCheck, RejectsNonInjective) {
  Graph c = make_cycle(4);
  std::vector<NodeId> bad{0, 1, 0, 3};
  EXPECT_FALSE(check_embedding(c, c, bad).injective);
}

TEST(EmbeddingCheck, MeasuresDilation) {
  // Map C4 onto every other vertex of C8: edges stretch to distance 2.
  Graph guest = make_cycle(4);
  Graph host = make_cycle(8);
  std::vector<NodeId> map{0, 2, 4, 6};
  EmbeddingCheck r = check_embedding_with_dilation(guest, host, map);
  EXPECT_TRUE(r.injective);
  EXPECT_FALSE(r.dilation_one);
  EXPECT_EQ(r.dilation, 2u);
}

TEST(SubgraphSearch, FindsCycleInHypercube) {
  Graph host = Hypercube(3).to_graph();
  auto r = find_subgraph(make_cycle(6), host);
  ASSERT_TRUE(r.embedding.has_value());
  EXPECT_TRUE(check_embedding(make_cycle(6), host, *r.embedding).dilation_one);
}

TEST(SubgraphSearch, RefutesOddCycleInHypercube) {
  // Hypercubes are bipartite: no odd cycles.
  auto r = find_subgraph(make_cycle(5), Hypercube(4).to_graph());
  EXPECT_FALSE(r.embedding.has_value());
  EXPECT_TRUE(r.exhaustive);
}

TEST(SubgraphSearch, SevenNodeTreeNotInH3) {
  // T(3) (7 vertices) does not fit in H_3: its parity classes are 5/2 but
  // H_3 offers only 4/4. The classical positive result is T(h) in H_{h+1}.
  auto r = find_subgraph(make_complete_binary_tree(3), Hypercube(3).to_graph());
  EXPECT_FALSE(r.embedding.has_value());
  EXPECT_TRUE(r.exhaustive);
}

TEST(SubgraphSearch, SevenNodeTreeInH4) {
  Graph host = Hypercube(4).to_graph();
  auto r = find_subgraph(make_complete_binary_tree(3), host);
  ASSERT_TRUE(r.embedding.has_value());
  EXPECT_TRUE(check_embedding(make_complete_binary_tree(3), host, *r.embedding)
                  .dilation_one);
}

TEST(SubgraphSearch, RespectsStepBudget) {
  SubgraphSearchOptions opts;
  opts.max_steps = 1;
  auto r = find_subgraph(make_cycle(12), Hypercube(6).to_graph(), opts);
  EXPECT_FALSE(r.embedding.has_value());
  EXPECT_FALSE(r.exhaustive);  // gave up, proves nothing
}

TEST(GuestGraphs, TorusStructure) {
  Graph t = make_torus(4, 5);
  EXPECT_EQ(t.num_nodes(), 20u);
  EXPECT_EQ(t.num_edges(), 40u);
  EXPECT_TRUE(t.is_regular());
}

TEST(GuestGraphs, MeshOfTreesCounts) {
  // MT(4, 8): 32 leaves + 4*7 row internals + 8*3 col internals = 84 nodes.
  Graph mt = make_mesh_of_trees(2, 3);
  EXPECT_EQ(mt.num_nodes(), 84u);
  // Each tree with L leaves contributes 2(L-1) edges: rows 4*14, cols 8*6.
  EXPECT_EQ(mt.num_edges(), 4u * 14 + 8u * 6);
  EXPECT_TRUE(is_connected(mt));
}

TEST(GuestGraphs, DoubleRootedTree) {
  Graph drt = make_double_rooted_tree(4);
  EXPECT_EQ(drt.num_nodes(), 16u);
  EXPECT_EQ(drt.num_edges(), 15u);  // a tree
  EXPECT_TRUE(is_connected(drt));
  EXPECT_TRUE(drt.has_edge(0, 1));
}

TEST(GuestGraphs, CompleteBinaryTreeShape) {
  Graph t = make_complete_binary_tree(4);  // 15 vertices
  EXPECT_EQ(t.num_nodes(), 15u);
  EXPECT_EQ(t.num_edges(), 14u);
  EXPECT_EQ(t.degree(0), 2u);   // root
  EXPECT_EQ(t.degree(14), 1u);  // a leaf
  EXPECT_EQ(t.degree(1), 3u);   // internal
}

}  // namespace
}  // namespace hbnet
