// Wrapped butterfly B_n: generators, the Remark-2 isomorphism between the
// two vertex representations, exact routing vs exhaustive BFS, the cycle
// family of Remark 9 and the natural tree.
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/connectivity.hpp"
#include "graph/embedding_check.hpp"
#include "topology/butterfly.hpp"
#include "topology/guest_graphs.hpp"

namespace hbnet {
namespace {

TEST(Butterfly, CountsAndBasics) {
  Butterfly b(4);
  EXPECT_EQ(b.num_nodes(), 64u);
  EXPECT_EQ(b.num_edges(), 128u);
  EXPECT_EQ(Butterfly::degree(), 4u);
  EXPECT_EQ(b.diameter_formula(), 6u);
  EXPECT_THROW(Butterfly(2), std::invalid_argument);
}

TEST(Butterfly, GeneratorInverses) {
  Butterfly b(5);
  for (std::uint32_t w : {0u, 9u, 31u}) {
    for (std::uint32_t l = 0; l < 5; ++l) {
      BflyNode v{w, l};
      EXPECT_EQ(b.apply(b.apply(v, BflyGen::kG), BflyGen::kGInv), v);
      EXPECT_EQ(b.apply(b.apply(v, BflyGen::kF), BflyGen::kFInv), v);
      EXPECT_EQ(b.apply(b.apply(v, BflyGen::kGInv), BflyGen::kG), v);
      EXPECT_EQ(b.apply(b.apply(v, BflyGen::kFInv), BflyGen::kF), v);
    }
  }
}

TEST(Butterfly, GeneratorOrders) {
  // g has order n (a full level loop); f has order 2n (two loops,
  // complementing every symbol once per loop).
  Butterfly b(5);
  BflyNode v{0b10110, 2};
  BflyNode cur = v;
  for (int i = 0; i < 5; ++i) cur = b.apply(cur, BflyGen::kG);
  EXPECT_EQ(cur, v);
  cur = v;
  for (int i = 0; i < 10; ++i) cur = b.apply(cur, BflyGen::kF);
  EXPECT_EQ(cur, v);
  cur = v;
  for (int i = 0; i < 5; ++i) cur = b.apply(cur, BflyGen::kF);
  EXPECT_EQ(cur.level, v.level);
  EXPECT_EQ(cur.word, v.word ^ 0b11111u);  // all symbols complemented
}

TEST(Butterfly, FourDistinctNeighbors) {
  Butterfly b(3);
  for (NodeId id = 0; id < b.num_nodes(); ++id) {
    auto nbrs = b.neighbors(b.node_at(id));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_FALSE(nbrs[i] == b.node_at(id));
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        EXPECT_FALSE(nbrs[i] == nbrs[j]) << "id=" << id;
      }
    }
  }
}

TEST(Butterfly, LabelRoundTripAndPIC) {
  Butterfly b(4);
  // Identity node: level 0, nothing complemented.
  EXPECT_EQ(b.label({0, 0}), "abcd");
  EXPECT_EQ(b.permutation_index({0, 0}), 0u);
  EXPECT_EQ(b.complementation_index({0, 0}), 0u);
  // One left shift: label starts at symbol b (Definition 1: PI 1).
  EXPECT_EQ(b.label({0, 1}), "bcda");
  EXPECT_EQ(b.permutation_index({0, 1}), 1u);
  // Complement symbol 'a' (bit 0): appears uppercase wherever 'a' sits.
  EXPECT_EQ(b.label({1, 0}), "Abcd");
  EXPECT_EQ(b.label({1, 1}), "bcdA");
  // CI is position-based: for level 1 with symbol a complemented, 'A' sits
  // at label position 4 -> CI bit 3.
  EXPECT_EQ(b.complementation_index({1, 1}), 0b1000u);
  for (NodeId id = 0; id < b.num_nodes(); ++id) {
    BflyNode v = b.node_at(id);
    EXPECT_EQ(b.from_label(b.label(v)), v) << b.label(v);
  }
}

TEST(Butterfly, FromLabelRejectsGarbage) {
  Butterfly b(3);
  EXPECT_THROW((void)b.from_label("ab"), std::invalid_argument);   // length
  EXPECT_THROW((void)b.from_label("acb"), std::invalid_argument);  // order
}

class ButterflyParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(ButterflyParam, GraphMatchesTheory) {
  Butterfly b(GetParam());
  Graph g = b.to_graph();
  EXPECT_EQ(g.num_nodes(), b.num_nodes());
  EXPECT_EQ(g.num_edges(), b.num_edges());
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 4u);
}

TEST_P(ButterflyParam, CayleyAudit) {
  CayleyAudit a = audit(Butterfly(GetParam()).cayley_spec());
  EXPECT_TRUE(a.all_ok());
}

TEST_P(ButterflyParam, DistanceMatchesBfsExhaustively) {
  const unsigned n = GetParam();
  Butterfly b(n);
  Graph g = b.to_graph();
  // Vertex transitivity: distances from the identity suffice.
  BfsResult r = bfs(g, b.index_of({0, 0}));
  for (NodeId id = 0; id < b.num_nodes(); ++id) {
    EXPECT_EQ(b.distance({0, 0}, b.node_at(id)), r.dist[id]) << "id=" << id;
  }
}

TEST_P(ButterflyParam, RouteIsValidAndOptimal) {
  const unsigned n = GetParam();
  Butterfly b(n);
  Graph g = b.to_graph();
  for (NodeId s = 0; s < b.num_nodes(); s += 5) {
    for (NodeId t = 0; t < b.num_nodes(); t += 7) {
      BflyNode u = b.node_at(s), v = b.node_at(t);
      auto nodes = b.route_nodes(u, v);
      EXPECT_EQ(nodes.size(), b.distance(u, v) + 1);
      EXPECT_EQ(nodes.front(), u);
      EXPECT_EQ(nodes.back(), v);
      for (std::size_t i = 1; i < nodes.size(); ++i) {
        EXPECT_TRUE(g.has_edge(b.index_of(nodes[i - 1]), b.index_of(nodes[i])));
      }
    }
  }
}

TEST_P(ButterflyParam, MeasuredDiameterIsFloor3nOver2) {
  // Remark 1 claims floor(3n/2); Theorem 3's bound uses ceil(3n/2). The
  // measured value settles it (equal for even n).
  const unsigned n = GetParam();
  Graph g = Butterfly(n).to_graph();
  EXPECT_EQ(diameter_vertex_transitive(g), 3 * n / 2) << "n=" << n;
}

TEST_P(ButterflyParam, ConnectivityIsFour) {
  Graph g = Butterfly(GetParam()).to_graph();
  EXPECT_TRUE(check_local_connectivity_sampled(g, 4, 12));
}

TEST_P(ButterflyParam, CycleFamilyKn) {
  const unsigned n = GetParam();
  Butterfly b(n);
  Graph g = b.to_graph();
  for (std::uint32_t k : {1u, 2u, 3u, 5u, (1u << n) - 1, 1u << n}) {
    if (k < 1 || k > (1u << n)) continue;
    auto cycle = b.cycle(k, 0);
    ASSERT_EQ(cycle.size(), static_cast<std::size_t>(k) * n) << "k=" << k;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      EXPECT_TRUE(g.has_edge(b.index_of(cycle[i]),
                             b.index_of(cycle[(i + 1) % cycle.size()])))
          << "k=" << k << " i=" << i;
    }
    std::vector<NodeId> ids;
    for (BflyNode v : cycle) ids.push_back(b.index_of(v));
    std::sort(ids.begin(), ids.end());
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
        << "repeat in k=" << k;
  }
}

TEST_P(ButterflyParam, HamiltonianCycle) {
  const unsigned n = GetParam();
  Butterfly b(n);
  auto cycle = b.cycle(1u << n, 0);
  EXPECT_EQ(cycle.size(), b.num_nodes());
}

TEST_P(ButterflyParam, CycleFamilyWithBounces) {
  const unsigned n = GetParam();
  Butterfly b(n);
  Graph g = b.to_graph();
  for (std::uint32_t k : {1u, 2u, 4u}) {
    for (std::uint32_t kp : {1u, 2u, 3u}) {
      if (k + kp > (1u << n)) continue;
      auto cycle = b.cycle(k, kp);
      ASSERT_EQ(cycle.size(), static_cast<std::size_t>(k) * n + 2 * kp);
      for (std::size_t i = 0; i < cycle.size(); ++i) {
        EXPECT_TRUE(g.has_edge(b.index_of(cycle[i]),
                               b.index_of(cycle[(i + 1) % cycle.size()])))
            << "k=" << k << " k'=" << kp << " i=" << i;
      }
      std::vector<NodeId> ids;
      for (BflyNode v : cycle) ids.push_back(b.index_of(v));
      std::sort(ids.begin(), ids.end());
      EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
    }
  }
}

TEST_P(ButterflyParam, NaturalTreeIsValidEmbedding) {
  const unsigned n = GetParam();
  Butterfly b(n);
  Graph host = b.to_graph();
  auto tree = b.natural_tree(0, n - 1);  // T(n): 2^n - 1 vertices
  Graph guest = make_complete_binary_tree(n);
  ASSERT_EQ(tree.size(), guest.num_nodes());
  std::vector<NodeId> map;
  for (BflyNode v : tree) map.push_back(b.index_of(v));
  EmbeddingCheck check = check_embedding(guest, host, map);
  EXPECT_TRUE(check.dilation_one) << check.error;
}

INSTANTIATE_TEST_SUITE_P(Dims, ButterflyParam,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u));

TEST(CoveringWalk, KnownCases) {
  // No required edges: straight-line distance on the level cycle.
  EXPECT_EQ(covering_walk_length(8, 0, 3, 0), 3u);
  EXPECT_EQ(covering_walk_length(8, 0, 5, 0), 3u);  // wrap the short way
  EXPECT_EQ(covering_walk_length(8, 2, 2, 0), 0u);
  // One required edge right next to the start, ending at start: cross and
  // return.
  EXPECT_EQ(covering_walk_length(8, 0, 0, 0b1), 2u);
  // All edges required, ending at start: one full loop.
  EXPECT_EQ(covering_walk_length(6, 0, 0, 0b111111), 6u);
  // All edges required, antipodal target: 3n/2 (the diameter witness).
  EXPECT_EQ(covering_walk_length(6, 0, 3, 0b111111), 9u);
}

TEST(CoveringWalk, StepsMatchReportedLength) {
  for (unsigned n : {3u, 5u, 8u}) {
    for (unsigned s = 0; s < n; ++s) {
      for (unsigned t = 0; t < n; ++t) {
        for (std::uint64_t req = 0; req < (1ull << n); req += 3) {
          auto steps = solve_covering_walk(n, s, t, req);
          EXPECT_EQ(steps.size(), covering_walk_length(n, s, t, req));
          // Walk simulation: verify end level and edge coverage.
          unsigned cur = s;
          std::uint64_t covered = 0;
          for (int d : steps) {
            unsigned edge = d > 0 ? cur : (cur + n - 1) % n;
            covered |= 1ull << edge;
            cur = static_cast<unsigned>(
                (static_cast<int>(cur) + d + static_cast<int>(n)) %
                static_cast<int>(n));
          }
          EXPECT_EQ(cur, t);
          EXPECT_EQ(covered & req, req);
        }
      }
    }
  }
}

}  // namespace
}  // namespace hbnet
