// Live-telemetry layer: ProgressBoard slot semantics, the Snapshotter's
// NDJSON stream and Prometheus exposition, FlightRecorder ring behavior,
// and the read-only-observer contract -- engine results are byte-identical
// with and without a board attached.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/hyper_butterfly.hpp"
#include "graph/connectivity_sweep.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/snapshot.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/wormhole.hpp"

namespace hbnet {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::uint64_t sampled(const obs::ProgressBoard& board,
                      const std::string& name) {
  for (const auto& [key, value] : board.sample()) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "slot '" << name << "' not on the board";
  return 0;
}

// ---------------------------------------------------------------------------
// ProgressBoard
// ---------------------------------------------------------------------------

TEST(ProgressBoard, SlotSetAddAndSample) {
  obs::ProgressBoard board;
  obs::ProgressBoard::Slot& done = board.slot("trials_done");
  done.set(3);
  done.add(2);
  EXPECT_EQ(done.value(), 5u);
  board.slot("bound").set(6);
  const auto sample = board.sample();  // name-sorted
  ASSERT_EQ(sample.size(), 2u);
  EXPECT_EQ(sample[0], (std::pair<std::string, std::uint64_t>{"bound", 6}));
  EXPECT_EQ(sample[1],
            (std::pair<std::string, std::uint64_t>{"trials_done", 5}));
}

TEST(ProgressBoard, SlotAddressesAreStable) {
  obs::ProgressBoard board;
  obs::ProgressBoard::Slot* first = &board.slot("a");
  // Registering more slots must not move existing ones: engines cache the
  // pointer once and hammer it from worker threads.
  for (int i = 0; i < 100; ++i) board.slot("slot" + std::to_string(i));
  EXPECT_EQ(first, &board.slot("a"));
}

TEST(ProgressBoard, ConcurrentAddsFromManyThreads) {
  obs::ProgressBoard board;
  obs::ProgressBoard::Slot& n = board.slot("n");
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&n] {
      for (int i = 0; i < 1000; ++i) n.add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(n.value(), 4000u);
}

// ---------------------------------------------------------------------------
// Snapshotter
// ---------------------------------------------------------------------------

TEST(Snapshotter, PrometheusNameMangling) {
  EXPECT_EQ(obs::Snapshotter::prometheus_name("campaign.trials_done"),
            "hbnet_campaign_trials_done");
  EXPECT_EQ(obs::Snapshotter::prometheus_name(
                "campaign.dropped{model=random,rate=0.05}"),
            "hbnet_campaign_dropped_model_random_rate_0_05_");
}

TEST(Snapshotter, WritesStreamAndPromFiles) {
  const std::string stream = temp_path("hbnet_snap_stream.ndjson");
  const std::string prom = temp_path("hbnet_snap.prom");
  std::filesystem::remove(stream);
  std::filesystem::remove(prom);

  obs::ProgressBoard board;
  board.slot("sim.cycle").set(41);
  obs::SnapshotterOptions opts;
  opts.stream_path = stream;
  opts.prom_path = prom;
  opts.interval_ms = 10;
  opts.job = "unit";
  obs::Snapshotter snap(board, opts);
  snap.start();
  board.slot("sim.cycle").add(1);
  snap.stop();
  EXPECT_GE(snap.snapshots_written(), 2u);  // immediate first + final

  const std::string ndjson = slurp(stream);
  ASSERT_FALSE(ndjson.empty());
  std::istringstream lines(ndjson);
  std::string line;
  std::uint64_t count = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"job\":\"unit\""), std::string::npos) << line;
    ++count;
  }
  EXPECT_EQ(count, snap.snapshots_written());
  // The final snapshot (taken after stop) must hold the final value.
  EXPECT_NE(ndjson.find("\"sim.cycle\":42"), std::string::npos);

  const std::string exposition = slurp(prom);
  EXPECT_NE(exposition.find("hbnet_sim_cycle 42"), std::string::npos)
      << exposition;
  EXPECT_NE(exposition.find("hbnet_snapshot_unix_ms "), std::string::npos);
  // Atomic exposition: the tmp file never outlives a write.
  EXPECT_FALSE(std::filesystem::exists(prom + ".tmp"));

  std::filesystem::remove(stream);
  std::filesystem::remove(prom);
}

TEST(Snapshotter, StreamAppendsAcrossRestarts) {
  const std::string stream = temp_path("hbnet_snap_append.ndjson");
  std::filesystem::remove(stream);
  obs::ProgressBoard board;
  std::uint64_t first = 0;
  {
    obs::SnapshotterOptions opts;
    opts.stream_path = stream;
    opts.interval_ms = 10;
    obs::Snapshotter snap(board, opts);
    snap.start();
    snap.stop();
    first = snap.snapshots_written();
  }
  {
    obs::SnapshotterOptions opts;
    opts.stream_path = stream;
    opts.interval_ms = 10;
    obs::Snapshotter snap(board, opts);
    snap.start();
    snap.stop();
    const std::string ndjson = slurp(stream);
    const std::uint64_t lines = static_cast<std::uint64_t>(
        std::count(ndjson.begin(), ndjson.end(), '\n'));
    EXPECT_EQ(lines, first + snap.snapshots_written());
  }
  std::filesystem::remove(stream);
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------
// The recorder is process-global with no reset (crash dumps must see
// finished threads), so every expectation filters by a tag unique to its
// own test.

TEST(FlightRecorder, RecordsFromManyThreadsWithUniqueSeq) {
  constexpr int kThreads = 4, kPerThread = 10;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::FlightRecorder::record("ut_multi", static_cast<std::uint64_t>(t),
                                    static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  std::vector<obs::FlightEvent> mine;
  for (const obs::FlightEvent& e : obs::FlightRecorder::collect()) {
    if (std::string(e.tag) == "ut_multi") mine.push_back(e);
  }
  ASSERT_EQ(mine.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 1; i < mine.size(); ++i) {
    EXPECT_LT(mine[i - 1].seq, mine[i].seq);  // collect() is seq-sorted
  }
}

TEST(FlightRecorder, RingKeepsTheMostRecentEvents) {
  // Overflow one thread's ring: only the newest kRingCapacity survive.
  constexpr std::uint64_t kTotal = obs::FlightRecorder::kRingCapacity + 50;
  std::thread writer([] {
    for (std::uint64_t i = 0; i < kTotal; ++i) {
      obs::FlightRecorder::record("ut_wrap", i);
    }
  });
  writer.join();

  std::uint64_t count = 0, max_a = 0;
  for (const obs::FlightEvent& e : obs::FlightRecorder::collect()) {
    if (std::string(e.tag) != "ut_wrap") continue;
    ++count;
    if (e.a > max_a) max_a = e.a;
  }
  EXPECT_EQ(count, static_cast<std::uint64_t>(
                       obs::FlightRecorder::kRingCapacity));
  EXPECT_EQ(max_a, kTotal - 1);  // the newest event survived the wrap
}

TEST(FlightRecorder, LongTagsAreTruncatedNotOverrun) {
  obs::FlightRecorder::record(
      "this_tag_is_far_longer_than_the_twenty_four_byte_capacity", 1);
  bool found = false;
  for (const obs::FlightEvent& e : obs::FlightRecorder::collect()) {
    const std::string tag(e.tag);
    if (tag.rfind("this_tag_is_", 0) == 0) {
      found = true;
      EXPECT_LT(tag.size(), obs::FlightEvent::kTagCapacity);
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Engines observed by a board: progress slots agree with the returned
// results, and the results do not change because a board was attached.
// ---------------------------------------------------------------------------

TEST(Streaming, CampaignProgressMatchesResultAndLeavesMetricsUntouched) {
  campaign::CampaignConfig cfg;
  cfg.m = 1;
  cfg.n = 3;
  cfg.models = {campaign::FaultModel::kRandom,
                campaign::FaultModel::kAdversarial};
  cfg.rates = {0.05};
  cfg.fault_counts = {0, 2};
  cfg.trials = 2;
  cfg.seed = 7;
  cfg.sim.warmup_cycles = 10;
  cfg.sim.measure_cycles = 50;
  cfg.threads = 2;

  const campaign::CampaignResult plain = campaign::run_campaign(cfg);
  obs::ProgressBoard board;
  const campaign::CampaignResult observed =
      campaign::run_campaign(cfg, &board);

  // Observer contract: attaching the board changes nothing downstream.
  std::ostringstream a, b;
  plain.metrics.write_json(a);
  observed.metrics.write_json(b);
  EXPECT_EQ(a.str(), b.str());

  std::uint64_t injected = 0, delivered = 0, dropped = 0;
  for (const campaign::TrialResult& t : observed.trials) {
    injected += t.injected;
    delivered += t.delivered;
    dropped += t.dropped;
  }
  EXPECT_EQ(sampled(board, "campaign.trials_total"), observed.trials.size());
  EXPECT_EQ(sampled(board, "campaign.trials_done"), observed.trials.size());
  EXPECT_EQ(sampled(board, "campaign.injected"), injected);
  EXPECT_EQ(sampled(board, "campaign.delivered"), delivered);
  EXPECT_EQ(sampled(board, "campaign.dropped"), dropped);

  // One labeled drop counter per grid cell (4 cells here), keyed like the
  // merged metrics registry.
  std::size_t cell_slots = 0;
  for (const auto& [key, value] : board.sample()) {
    if (key.rfind("campaign.dropped{", 0) == 0) ++cell_slots;
  }
  EXPECT_EQ(cell_slots, observed.cells.size());
}

TEST(Streaming, SweepProgressTracksBoundAndBlocks) {
  Graph g = HyperButterfly(1, 3).to_graph();
  obs::ProgressBoard board;
  SweepOptions opts;
  opts.vertex_transitive = true;
  opts.progress = &board;
  ConnectivitySweep sweep(g, opts);
  const ExactConnectivityResult r = sweep.run();
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(sampled(board, "connectivity.bound"), r.kappa);
  EXPECT_EQ(sampled(board, "connectivity.solves"), r.solves);
  EXPECT_EQ(sampled(board, "connectivity.pruned"), r.pruned);
  EXPECT_EQ(sampled(board, "connectivity.stages"), r.stages);
  EXPECT_GE(sampled(board, "connectivity.blocks"), 1u);
}

TEST(Streaming, StoreForwardProgressMatchesStats) {
  auto topo = make_hyper_butterfly_sim(1, 3);
  SimConfig cfg;
  cfg.warmup_cycles = 10;
  cfg.measure_cycles = 100;
  obs::ProgressBoard board;
  const SimStats with = run_simulation(*topo, cfg, {}, nullptr, &board);
  const SimStats without = run_simulation(*topo, cfg);
  EXPECT_EQ(with.delivered(), without.delivered());
  EXPECT_EQ(with.injected(), without.injected());
  // The board counts deliveries across all phases (warmup included), so it
  // is at least the measured-window count and cycles keep advancing
  // through drain.
  EXPECT_GE(sampled(board, "sim.delivered"), with.delivered());
  EXPECT_GE(sampled(board, "sim.cycle"),
            static_cast<std::uint64_t>(cfg.warmup_cycles) +
                cfg.measure_cycles);
  EXPECT_EQ(sampled(board, "sim.in_flight_packets"), 0u);  // fully drained
}

TEST(Streaming, WormholeProgressMatchesStats) {
  auto topo = make_hyper_butterfly_sim(1, 3);
  WormholeConfig cfg;
  cfg.vcs = 6;
  cfg.policy = VcPolicy::kSegmentDateline;
  cfg.injection_rate = 0.01;
  cfg.warmup_cycles = 10;
  cfg.measure_cycles = 100;
  obs::ProgressBoard board;
  const WormholeStats with =
      run_wormhole(*topo, cfg, 1, nullptr, nullptr, &board);
  const WormholeStats without = run_wormhole(*topo, cfg, 1);
  EXPECT_EQ(with.packets.delivered(), without.packets.delivered());
  EXPECT_GE(sampled(board, "wormhole.delivered"), with.packets.delivered());
  EXPECT_GE(sampled(board, "wormhole.cycle"),
            static_cast<std::uint64_t>(cfg.warmup_cycles) +
                cfg.measure_cycles);
  EXPECT_EQ(sampled(board, "wormhole.in_flight_flits"), 0u);
}

}  // namespace
}  // namespace hbnet
