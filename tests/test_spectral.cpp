// Spectral gap estimation anchored against closed-form eigenvalues.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/spectral.hpp"
#include "core/hyper_butterfly.hpp"
#include "graph/builder.hpp"
#include "topology/butterfly.hpp"
#include "topology/guest_graphs.hpp"
#include "topology/hypercube.hpp"

namespace hbnet {
namespace {

TEST(Spectral, CycleMatchesClosedForm) {
  // lambda_2(A)/2 of C_n is cos(2 pi / n).
  for (std::uint32_t n : {8u, 12u, 20u}) {
    SpectralEstimate est = spectral_gap_regular(make_cycle(n), 20000, 1e-12);
    EXPECT_TRUE(est.converged);
    EXPECT_NEAR(est.lambda2, std::cos(2 * std::numbers::pi / n), 1e-5)
        << "n=" << n;
  }
}

TEST(Spectral, HypercubeMatchesClosedForm) {
  // lambda_2(A)/m of H_m is (m-2)/m.
  for (unsigned m : {3u, 5u, 7u}) {
    SpectralEstimate est =
        spectral_gap_regular(Hypercube(m).to_graph(), 20000, 1e-12);
    EXPECT_TRUE(est.converged);
    EXPECT_NEAR(est.lambda2, (m - 2.0) / m, 1e-5) << "m=" << m;
  }
}

TEST(Spectral, CompleteGraphHasMaximalGap) {
  GraphBuilder b(8);
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) b.add_edge(u, v);
  }
  SpectralEstimate est = spectral_gap_regular(b.build());
  // K_n: lambda_2(A)/(n-1) = -1/(n-1).
  EXPECT_NEAR(est.lambda2, -1.0 / 7.0, 1e-4);
}

TEST(Spectral, RejectsIrregular) {
  EXPECT_THROW((void)spectral_gap_regular(make_path(5)),
               std::invalid_argument);
}

TEST(Spectral, HyperButterflyProductSpectrumAdditivity) {
  // Cartesian product: adjacency eigenvalues add, so
  //   lambda_2(HB(m,n)) * (m+4) = max(m + 4*lambda_2(B_n), (m-2) + 4)
  // and with lambda_2(B_3) > 1/2 the butterfly term dominates. A direct
  // corollary (verified below): the *normalized* gap shrinks as m grows --
  // each extra cube dimension adds less expansion than degree.
  SpectralEstimate bf = spectral_gap_regular(Butterfly(3).to_graph(), 30000,
                                             1e-11);
  ASSERT_TRUE(bf.converged);
  for (unsigned m : {2u, 4u}) {
    SpectralEstimate hb = spectral_gap_regular(
        HyperButterfly(m, 3).to_graph(), 30000, 1e-11);
    ASSERT_TRUE(hb.converged) << "m=" << m;
    double expect =
        std::max(m + 4.0 * bf.lambda2, (m - 2.0) + 4.0) / (m + 4.0);
    EXPECT_NEAR(hb.lambda2, expect, 1e-4) << "m=" << m;
  }
  SpectralEstimate hb23 =
      spectral_gap_regular(HyperButterfly(2, 3).to_graph(), 30000, 1e-11);
  SpectralEstimate hb43 =
      spectral_gap_regular(HyperButterfly(4, 3).to_graph(), 30000, 1e-11);
  EXPECT_LT(hb43.gap, hb23.gap);
  EXPECT_GT(hb43.gap, 0.0);
}

TEST(Spectral, ButterflyRingDominates) {
  // B_n's level ring bounds its gap near a cycle's: much smaller than the
  // hypercube's at comparable size.
  SpectralEstimate bf = spectral_gap_regular(Butterfly(5).to_graph(), 30000,
                                             1e-10);
  SpectralEstimate hc =
      spectral_gap_regular(Hypercube(7).to_graph(), 20000, 1e-10);
  EXPECT_LT(bf.gap, hc.gap);
}

}  // namespace
}  // namespace hbnet
