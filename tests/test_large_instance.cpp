// Large-instance smoke tests on HB(3,8) -- the paper's Figure-2 instance
// (16384 nodes): every core operation at scale, sampled.
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "core/fault_routing.hpp"
#include "core/hyper_butterfly.hpp"
#include "core/routing.hpp"
#include "graph/disjoint_paths.hpp"

namespace hbnet {
namespace {

class LargeHb : public ::testing::Test {
 protected:
  static const HyperButterfly& instance() {
    static HyperButterfly hb(3, 8);
    return hb;
  }
};

TEST_F(LargeHb, CountsMatchFigure2) {
  const auto& hb = instance();
  EXPECT_EQ(hb.num_nodes(), 16384u);
  EXPECT_EQ(hb.num_edges(), 57344u);
  EXPECT_EQ(hb.degree(), 7u);
}

TEST_F(LargeHb, SampledRoutesAreOptimal) {
  const auto& hb = instance();
  std::mt19937_64 rng(2026);
  std::uniform_int_distribution<HbIndex> pick(0, hb.num_nodes() - 1);
  for (int trial = 0; trial < 12; ++trial) {
    HbNode u = hb.node_at(pick(rng)), v = hb.node_at(pick(rng));
    auto path = hb.route(u, v);
    EXPECT_EQ(path.size(), hb.distance(u, v) + 1);
    EXPECT_EQ(hb_bfs_distance(hb, u, v), hb.distance(u, v));
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_EQ(hb.distance(path[i - 1], path[i]), 1u);
    }
  }
}

TEST_F(LargeHb, DiameterIsFifteen) {
  EXPECT_EQ(hb_diameter_measured(instance()), 15u);  // Figure 2's value
}

TEST_F(LargeHb, DisjointPathsAtScale) {
  const auto& hb = instance();
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<HbIndex> pick(0, hb.num_nodes() - 1);
  for (int trial = 0; trial < 4; ++trial) {
    HbNode u = hb.node_at(pick(rng)), v = hb.node_at(pick(rng));
    if (u == v) continue;
    auto family = hb.disjoint_paths(u, v);
    ASSERT_EQ(family.size(), 7u);
    // Validate structurally without materializing the 16k-node graph:
    // adjacency via distance==1, and pairwise interior disjointness.
    std::unordered_set<HbIndex> interior;
    for (const auto& p : family) {
      ASSERT_TRUE(p.front() == u);
      ASSERT_TRUE(p.back() == v);
      for (std::size_t i = 1; i < p.size(); ++i) {
        ASSERT_EQ(hb.distance(p[i - 1], p[i]), 1u);
        if (i + 1 < p.size()) {
          ASSERT_TRUE(interior.insert(hb.index_of(p[i])).second);
        }
      }
    }
  }
}

TEST_F(LargeHb, FaultRoutingAtScale) {
  const auto& hb = instance();
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<HbIndex> pick(0, hb.num_nodes() - 1);
  HbNode u = hb.node_at(3), v = hb.node_at(hb.num_nodes() - 5);
  HbFaultSet faults;
  while (faults.size() < 6) {  // m+3 = maximal guaranteed
    HbIndex f = pick(rng);
    if (f != hb.index_of(u) && f != hb.index_of(v)) {
      faults.add(hb, hb.node_at(f));
    }
  }
  FaultRouteResult r =
      route_around_faults(hb, u, v, faults, /*bfs_fallback=*/false);
  ASSERT_TRUE(r.ok());
  for (const HbNode& w : r.path) {
    EXPECT_FALSE(faults.contains(hb, w));
  }
}

}  // namespace
}  // namespace hbnet
