// FIG1: regenerates Figure 1 of the paper -- the parameter comparison of
// hypercube, wrapped butterfly, hyper-deBruijn and hyper-butterfly -- for a
// sweep of (m,n), printing "paper formula | measured" cells computed from
// the constructed graphs.
#include <iostream>

#include "analysis/tables.hpp"

int main() {
  std::cout << "Figure 1: Hyper-deBruijn HD(m,n) and Hyper-Butterfly HB(m,n) "
               "compared\n"
            << "(cells are: paper formula | measured on constructed graph)\n";
  for (auto [m, n] : {std::pair{2u, 3u}, std::pair{2u, 4u}, std::pair{3u, 4u},
                      std::pair{3u, 5u}, std::pair{4u, 5u}}) {
    std::cout << "\n=== m=" << m << ", n=" << n << " ===\n";
    hbnet::print_table(std::cout, hbnet::figure1_table(m, n));
  }
  std::cout << "\nNotes:\n"
            << " * HD edges: the paper's closed form ignores the de Bruijn\n"
            << "   self-loop/parallel-edge losses; measured is exact.\n"
            << " * B diameter: Remark 1 (floor(3n/2)); HB diameter formula\n"
            << "   is Theorem 3 (m + ceil(3n/2)) -- measured shows the\n"
            << "   butterfly part is floor(3n/2).\n"
            << " * Fault-tolerance: exact max-flow kappa on small instances,\n"
            << "   sampled lower bound ('<=' prefix = sampled) on large.\n";
  return 0;
}
