// EXT-*: benches for the extension modules -- leader election message/round
// complexity, node-to-set disjoint paths, partition allocator, dimension
// cuts, and Valiant vs native routing under hotspot traffic.
#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <random>

#include "analysis/cuts.hpp"
#include "core/node_to_set.hpp"
#include "core/partition.hpp"
#include "distsim/leader_election.hpp"
#include "analysis/spectral.hpp"
#include "graph/bfs.hpp"
#include "sim/simulator.hpp"
#include "topology/ccc.hpp"
#include "topology/hyper_debruijn.hpp"

namespace {

void election_table() {
  std::cout << "EXT-ELECTION: leader election on HB(m,n)\n"
            << "  m n     N   flood rounds/messages   structured "
               "rounds/messages\n";
  for (auto [m, n] : {std::pair{1u, 3u}, std::pair{2u, 3u}, std::pair{2u, 4u},
                      std::pair{3u, 4u}, std::pair{3u, 5u}}) {
    hbnet::HyperButterfly hb(m, n);
    auto flood = hbnet::flood_max_election(hb.to_graph());
    auto structured = hbnet::hb_structured_election(hb);
    std::cout << "  " << m << " " << n << "  " << hb.num_nodes() << "    "
              << flood.run.rounds << " / " << flood.run.messages
              << "              " << structured.run.rounds << " / "
              << structured.run.messages << "\n";
  }
  std::cout << "(structured = m + floor(3n/2) rounds and O(N(m+n)) messages "
               "-- the companion paper's bound)\n";
}

void cuts_table() {
  std::cout << "\nEXT-VLSI: dimension cuts of HB(2,4) (substituting the "
               "paper's announced VLSI results)\n";
  hbnet::HyperButterfly hb(2, 4);
  for (const auto& c : hbnet::hb_dimension_cuts(hb)) {
    std::cout << "  " << c.name << ": width " << c.width
              << (c.balanced ? " (balanced)" : "") << "\n";
  }
  std::uint64_t ub = hbnet::sampled_bisection_upper_bound(hb.to_graph(), 3, 5);
  std::cout << "  sampled bisection upper bound: " << ub
            << " -> Thompson area >= " << hbnet::thompson_area_lower_bound(ub)
            << "\n";
}

void valiant_table() {
  std::cout << "\nEXT-SIM/VALIANT: native vs Valiant routing on HB(3,5), "
               "p99 latency by traffic pattern (load 0.08)\n"
            << "  pattern         native-p99  valiant-p99\n";
  auto topo = hbnet::make_hyper_butterfly_sim(3, 5);
  for (hbnet::TrafficPattern pattern :
       {hbnet::TrafficPattern::kUniform, hbnet::TrafficPattern::kBitComplement,
        hbnet::TrafficPattern::kBitReversal, hbnet::TrafficPattern::kShuffle,
        hbnet::TrafficPattern::kHotspot}) {
    hbnet::SimConfig cfg;
    cfg.pattern = pattern;
    cfg.injection_rate = 0.08;
    cfg.warmup_cycles = 100;
    cfg.measure_cycles = 300;
    cfg.drain_cycles = 40000;
    hbnet::SimStats native = hbnet::run_simulation(*topo, cfg);
    cfg.routing = hbnet::RoutingMode::kValiant;
    hbnet::SimStats valiant = hbnet::run_simulation(*topo, cfg);
    std::cout << "  " << std::left << std::setw(16) << to_string(pattern)
              << std::right << std::setw(8) << native.latency_percentile(0.99)
              << std::setw(13) << valiant.latency_percentile(0.99) << "\n";
  }
  std::cout << "(Valiant helps when deterministic routes collide -- the\n"
               "adversarial permutations -- and cannot help hotspot, whose\n"
               "congestion is at the destination itself; under benign\n"
               "uniform traffic it just pays the ~2x hop overhead)\n";
}

void extended_comparison() {
  // The five-network comparison at ~matched size (1-2.5k nodes), with the
  // classic degree*diameter cost metric -- extends Figure 1's context with
  // the third bounded-degree family (CCC).
  std::cout << "\nEXT-COMPARE: five networks at matched scale\n"
            << "  network   nodes  deg     diam  deg*diam  avg-dist  "
               "spectral-gap\n";
  struct Row {
    std::string name;
    hbnet::Graph g;
    std::string deg;
  };
  std::vector<Row> rows;
  rows.push_back({"H(11)  ", hbnet::Hypercube(11).to_graph(), "11"});
  rows.push_back({"B(8)   ", hbnet::Butterfly(8).to_graph(), "4"});
  rows.push_back({"CCC(8) ", hbnet::CubeConnectedCycles(8).to_graph(), "3"});
  rows.push_back({"HD(3,8)", hbnet::HyperDeBruijn(3, 8).to_graph(), "5..7"});
  rows.push_back({"HB(3,5)", hbnet::HyperButterfly(3, 5).to_graph(), "7"});
  for (auto& row : rows) {
    // All but HD are vertex transitive; HD at this size is cheap enough for
    // a sampled eccentricity (32 sources) as a lower bound + full diameter.
    unsigned diam = (row.name[0] == 'H' && row.name[1] == 'D')
                        ? hbnet::diameter(row.g)
                        : hbnet::diameter_vertex_transitive(row.g);
    auto [lo, hi] = row.g.degree_range();
    double avg = hbnet::average_distance(row.g, 24);
    std::cout << "  " << row.name << "  " << row.g.num_nodes() << "   "
              << row.deg << "     " << diam << "    " << hi * diam << "       "
              << avg << "    ";
    if (lo == hi) {
      auto est = hbnet::spectral_gap_regular(row.g, 4000, 1e-8);
      std::cout << est.gap << (est.converged ? "" : "~");
    } else {
      std::cout << "-";  // irregular (HD): deflation assumption fails
    }
    std::cout << "\n";
  }
  std::cout << "(cost = max-degree * diameter, the classic VLSI-era figure "
               "of merit; HB sits between the hypercube's fault tolerance "
               "and the bounded-degree families' cost)\n";
}

void BM_NodeToSet(benchmark::State& state) {
  hbnet::HyperButterfly hb(2, static_cast<unsigned>(state.range(0)));
  hbnet::Graph g = hb.to_graph();
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<hbnet::HbIndex> pick(0, hb.num_nodes() - 1);
  for (auto _ : state) {
    hbnet::HbNode u = hb.node_at(pick(rng));
    std::vector<hbnet::HbNode> targets;
    while (targets.size() < hb.degree()) {
      hbnet::HbIndex t = pick(rng);
      if (t != hb.index_of(u)) targets.push_back(hb.node_at(t));
    }
    benchmark::DoNotOptimize(hbnet::node_to_set_paths_on(hb, g, u, targets));
  }
}
BENCHMARK(BM_NodeToSet)->Arg(3)->Arg(5)->Unit(benchmark::kMicrosecond);

void BM_PartitionAllocator(benchmark::State& state) {
  hbnet::HyperButterfly hb(8, 3);
  for (auto _ : state) {
    hbnet::PartitionAllocator alloc(hb);
    std::vector<hbnet::SubHyperButterfly> held;
    for (unsigned k : {4u, 4u, 3u, 2u, 2u, 1u, 5u}) {
      if (auto part = alloc.allocate(k)) held.push_back(*part);
    }
    for (const auto& part : held) alloc.release(part);
    benchmark::DoNotOptimize(alloc.largest_free());
  }
}
BENCHMARK(BM_PartitionAllocator);

void BM_StructuredElection(benchmark::State& state) {
  hbnet::HyperButterfly hb(static_cast<unsigned>(state.range(0)),
                           static_cast<unsigned>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::hb_structured_election(hb));
  }
}
BENCHMARK(BM_StructuredElection)
    ->Args({2, 3})
    ->Args({3, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  election_table();
  cuts_table();
  valiant_table();
  extended_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
