// THM2: construction cost and exact node/edge counts of the constructed
// networks (google-benchmark microbenchmarks + a count audit printed first).
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/hyper_butterfly.hpp"
#include "topology/butterfly.hpp"
#include "topology/hyper_debruijn.hpp"
#include "topology/hypercube.hpp"

namespace {

void audit_counts() {
  std::cout << "THM2 audit: constructed vs closed-form counts\n";
  for (auto [m, n] : {std::pair{2u, 3u}, std::pair{3u, 4u}, std::pair{4u, 5u},
                      std::pair{3u, 8u}}) {
    hbnet::HyperButterfly hb(m, n);
    hbnet::Graph g = hb.to_graph();
    std::cout << "  HB(" << m << "," << n << "): nodes " << g.num_nodes()
              << " (formula " << hb.num_nodes() << "), edges " << g.num_edges()
              << " (formula " << hb.num_edges() << "), regular "
              << (g.is_regular() ? "yes" : "no") << ", degree " << g.degree(0)
              << "\n";
  }
}

void BM_BuildHyperButterfly(benchmark::State& state) {
  const unsigned m = static_cast<unsigned>(state.range(0));
  const unsigned n = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    hbnet::HyperButterfly hb(m, n);
    benchmark::DoNotOptimize(hb.to_graph());
  }
  state.SetLabel("HB(" + std::to_string(m) + "," + std::to_string(n) + ")");
}
BENCHMARK(BM_BuildHyperButterfly)
    ->Args({2, 3})
    ->Args({3, 4})
    ->Args({3, 6})
    ->Args({3, 8})
    ->Unit(benchmark::kMillisecond);

void BM_BuildHypercube(benchmark::State& state) {
  const unsigned m = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::Hypercube(m).to_graph());
  }
}
BENCHMARK(BM_BuildHypercube)->Arg(8)->Arg(11)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_BuildButterfly(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::Butterfly(n).to_graph());
  }
}
BENCHMARK(BM_BuildButterfly)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_BuildHyperDeBruijn(benchmark::State& state) {
  const unsigned m = static_cast<unsigned>(state.range(0));
  const unsigned n = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::HyperDeBruijn(m, n).to_graph());
  }
}
BENCHMARK(BM_BuildHyperDeBruijn)
    ->Args({3, 8})
    ->Args({3, 11})
    ->Args({6, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  audit_counts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
