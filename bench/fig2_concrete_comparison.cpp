// FIG2: regenerates Figure 2 of the paper -- HB(3,8) vs HD(3,11) vs HD(6,8)
// at the matched size of 16384 nodes, including exact diameters computed by
// full all-sources BFS on the two non-vertex-transitive HD instances.
#include <chrono>
#include <iostream>

#include "analysis/tables.hpp"

int main(int argc, char** argv) {
  const bool fast = argc > 1 && std::string(argv[1]) == "--fast";
  std::cout << "Figure 2: comparison at matched node count (16384 nodes)\n"
            << "(cells are: paper value | measured on constructed graph)\n\n";
  auto t0 = std::chrono::steady_clock::now();
  hbnet::ComparisonTable t = hbnet::figure2_table(/*exact_diameters=*/!fast);
  hbnet::print_table(std::cout, t);
  auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0);
  std::cout << "\n(generated in " << dt.count() << " s"
            << (fast ? ", --fast: HD diameters skipped" : "") << ")\n"
            << "\nReading: HB(3,8) trades +1 diameter (15 vs 14) for\n"
            << "regularity and fault tolerance 7 vs 5 (HD(3,11)); against\n"
            << "HD(6,8) it wins on degree (7 vs 8..10) at equal nodes.\n";
  return 0;
}
