// EXT-BCAST: the paper's announced broadcasting extension -- rounds of the
// structured and greedy schedules against the single-port lower bound.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/broadcast.hpp"

namespace {

void broadcast_table() {
  std::cout << "EXT-BCAST: single-port broadcast rounds in HB(m,n)\n"
            << "  m  n  lower-bound  structured(m + butterfly)  greedy\n";
  for (auto [m, n] : {std::pair{1u, 3u}, std::pair{2u, 3u}, std::pair{2u, 4u},
                      std::pair{3u, 4u}, std::pair{3u, 5u}, std::pair{2u, 6u},
                      std::pair{3u, 6u}}) {
    hbnet::HyperButterfly hb(m, n);
    hbnet::HbNode src{0, {0, 0}};
    unsigned lb = hbnet::broadcast_lower_bound(hb);
    auto structured = hbnet::hb_structured_broadcast(hb, src);
    auto greedy = hbnet::hb_greedy_broadcast(hb, src);
    std::cout << "  " << m << "  " << n << "  " << lb << "           "
              << structured.rounds << "                          "
              << greedy.rounds << "\n";
  }
  std::cout << "Lower bound is ceil(log2 N); structured = m rounds binomial\n"
            << "across the cube + one greedy butterfly schedule per layer\n"
            << "(all layers in parallel) -- asymptotically optimal since\n"
            << "rounds(B_n) is O(n) and log2 N = m + n + log2 n.\n";
}

void BM_StructuredBroadcast(benchmark::State& state) {
  hbnet::HyperButterfly hb(static_cast<unsigned>(state.range(0)),
                           static_cast<unsigned>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hbnet::hb_structured_broadcast(hb, hbnet::HbNode{0, {0, 0}}));
  }
}
BENCHMARK(BM_StructuredBroadcast)
    ->Args({2, 4})
    ->Args({3, 6})
    ->Unit(benchmark::kMillisecond);

void BM_GreedyBroadcast(benchmark::State& state) {
  hbnet::HyperButterfly hb(static_cast<unsigned>(state.range(0)),
                           static_cast<unsigned>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hbnet::hb_greedy_broadcast(hb, hbnet::HbNode{0, {0, 0}}));
  }
}
BENCHMARK(BM_GreedyBroadcast)
    ->Args({2, 4})
    ->Args({3, 5})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  broadcast_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
