// RMK10: fault-tolerant routing. Success rate and path stretch of the
// Theorem-5 disjoint-path router as the number of random node faults grows
// past the m+3 guarantee, plus throughput of the fault router.
#include <benchmark/benchmark.h>

#include <iostream>
#include <random>

#include "core/fault_routing.hpp"

namespace {

void fault_sweep() {
  hbnet::HyperButterfly hb(3, 5);  // degree 7, tolerates any 6 faults
  std::cout << "RMK10: HB(3,5) fault sweep, 300 random (pair, fault-set) "
               "trials per row\n"
            << "  faults  family-success  with-bfs-fallback  mean-stretch\n";
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<hbnet::HbIndex> pick(0, hb.num_nodes() - 1);
  for (unsigned faults : {0u, 2u, 4u, 6u, 10u, 20u, 40u}) {
    unsigned family_ok = 0, total_ok = 0, trials = 0;
    double stretch_sum = 0;
    unsigned stretch_n = 0;
    for (int trial = 0; trial < 300; ++trial) {
      hbnet::HbIndex s = pick(rng), t = pick(rng);
      if (s == t) continue;
      hbnet::HbFaultSet fs;
      while (fs.size() < faults) {
        hbnet::HbIndex f = pick(rng);
        if (f == s || f == t) continue;
        fs.add(hb, hb.node_at(f));
      }
      ++trials;
      hbnet::FaultRouteResult nofall = hbnet::route_around_faults(
          hb, hb.node_at(s), hb.node_at(t), fs, /*bfs_fallback=*/false);
      hbnet::FaultRouteResult withfall = hbnet::route_around_faults(
          hb, hb.node_at(s), hb.node_at(t), fs, /*bfs_fallback=*/true);
      family_ok += nofall.ok();
      total_ok += withfall.ok();
      if (withfall.ok()) {
        unsigned base = hb.distance(hb.node_at(s), hb.node_at(t));
        if (base > 0) {
          stretch_sum +=
              static_cast<double>(withfall.path.size() - 1) / base;
          ++stretch_n;
        }
      }
    }
    std::cout << "  " << faults << "       " << family_ok << "/" << trials
              << "          " << total_ok << "/" << trials << "            "
              << (stretch_n ? stretch_sum / stretch_n : 0.0) << "\n";
  }
  std::cout << "Guarantee: with <= m+3 = 6 faults the family always "
               "succeeds; beyond that the BFS fallback covers the gap while\n"
               "the graph remains connected.\n";
}

void BM_FaultRoute(benchmark::State& state) {
  hbnet::HyperButterfly hb(3, 6);
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<hbnet::HbIndex> pick(0, hb.num_nodes() - 1);
  hbnet::HbFaultSet fs;
  while (fs.size() < static_cast<std::size_t>(state.range(0))) {
    fs.add(hb, hb.node_at(pick(rng)));
  }
  for (auto _ : state) {
    hbnet::HbIndex s = pick(rng), t = pick(rng);
    if (s == t || fs.contains(hb, hb.node_at(s)) ||
        fs.contains(hb, hb.node_at(t))) {
      continue;
    }
    benchmark::DoNotOptimize(hbnet::route_around_faults(
        hb, hb.node_at(s), hb.node_at(t), fs, /*bfs_fallback=*/false));
  }
}
BENCHMARK(BM_FaultRoute)->Arg(0)->Arg(3)->Arg(6)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  fault_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
