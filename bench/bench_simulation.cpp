// EXT-SIM: packet-level simulation of the Figure-2 trio (plus hypercube and
// butterfly at matched scale): latency vs offered load, and HB under faults.
// This operationalizes the paper's multiprocessor-architecture motivation.
#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <random>

#include "core/hyper_butterfly.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace {

void latency_vs_load() {
  std::cout << "EXT-SIM: mean latency (cycles) vs offered load, uniform "
               "traffic\n";
  // Smaller matched instances keep the sweep fast: ~2k nodes each.
  std::vector<std::unique_ptr<hbnet::SimTopology>> topos;
  topos.push_back(hbnet::make_hyper_butterfly_sim(3, 5));   // 1280
  topos.push_back(hbnet::make_hyper_debruijn_sim(3, 8));    // 2048
  topos.push_back(hbnet::make_hypercube_sim(11));           // 2048
  topos.push_back(hbnet::make_butterfly_sim(8));            // 2048
  std::cout << std::setw(10) << "load";
  for (const auto& t : topos) std::cout << std::setw(12) << t->name();
  std::cout << "\n";
  for (double load : {0.01, 0.05, 0.10, 0.15, 0.20}) {
    std::cout << std::setw(10) << load;
    for (const auto& t : topos) {
      hbnet::SimConfig cfg;
      cfg.injection_rate = load;
      cfg.warmup_cycles = 100;
      cfg.measure_cycles = 400;
      cfg.drain_cycles = 20000;
      hbnet::SimStats s = hbnet::run_simulation(*t, cfg);
      std::cout << std::setw(12) << std::fixed << std::setprecision(2)
                << s.mean_latency();
      std::cout.unsetf(std::ios::fixed);
    }
    std::cout << "\n";
  }
  std::cout << "(shape: the bounded-degree networks saturate earlier than\n"
            << "the hypercube; HB tracks HD at matched degree class)\n";
}

void latency_histogram_summary() {
  std::cout << "\nEXT-SIM: HB(3,5) latency histogram summary, uniform "
               "traffic\n  load    p50   p90   p99   max\n";
  auto topo = hbnet::make_hyper_butterfly_sim(3, 5);
  for (double load : {0.01, 0.05, 0.10}) {
    hbnet::SimConfig cfg;
    cfg.injection_rate = load;
    cfg.warmup_cycles = 100;
    cfg.measure_cycles = 400;
    cfg.drain_cycles = 20000;
    hbnet::SimStats s = hbnet::run_simulation(*topo, cfg);
    std::cout << "  " << load << "    " << s.latency_percentile(0.5) << "    "
              << s.latency_percentile(0.9) << "    "
              << s.latency_percentile(0.99) << "    " << s.max_latency()
              << "\n";
  }
  std::cout << "(quantiles come from the fixed-bucket obs::Histogram inside\n"
               "SimStats -- constant memory regardless of delivered count)\n";
}

void faulted_hb() {
  std::cout << "\nEXT-SIM: HB(3,5) under random node faults (load 0.05)\n"
            << "  faults  delivered  dropped  mean-latency\n";
  auto topo = hbnet::make_hyper_butterfly_sim(3, 5);
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<std::uint32_t> pick(0, topo->num_nodes() - 1);
  for (unsigned faults : {0u, 3u, 6u, 12u}) {
    std::vector<char> faulty(topo->num_nodes(), 0);
    unsigned placed = 0;
    while (placed < faults) {
      std::uint32_t f = pick(rng);
      if (!faulty[f]) {
        faulty[f] = 1;
        ++placed;
      }
    }
    hbnet::SimConfig cfg;
    cfg.injection_rate = 0.05;
    cfg.warmup_cycles = 100;
    cfg.measure_cycles = 300;
    cfg.drain_cycles = 20000;
    hbnet::SimStats s =
        hbnet::run_simulation(*topo, cfg, faults ? faulty : std::vector<char>{});
    std::cout << "  " << faults << "       " << s.delivered() << "     "
              << s.dropped() << "        " << s.mean_latency() << "\n";
  }
  std::cout << "(with <= m+3 = 6 faults nothing is dropped: Theorem 5 at "
               "work; latency degrades gracefully)\n";
}

void BM_SimulateHb(benchmark::State& state) {
  auto topo = hbnet::make_hyper_butterfly_sim(2, 4);
  hbnet::SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 5000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::run_simulation(*topo, cfg));
  }
}
BENCHMARK(BM_SimulateHb)->Unit(benchmark::kMillisecond);

// Serial vs sharded datapath at equal node count -- HB(2,8), 8192 nodes,
// identical load and horizon. The single-thread pair is the headline
// number in docs/performance.md (the sharded engine's dense sweep +
// implicit routing vs the serial engine's deque queues + materialized
// route vectors); the 2- and 4-thread variants show shard-parallel scaling
// on top.
hbnet::SimConfig matched_cfg() {
  hbnet::SimConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 5000;
  return cfg;
}

void BM_SimSerialHb28(benchmark::State& state) {
  auto topo = hbnet::make_hyper_butterfly_sim(2, 8);
  const hbnet::SimConfig cfg = matched_cfg();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::run_simulation(*topo, cfg));
  }
}
BENCHMARK(BM_SimSerialHb28)->Unit(benchmark::kMillisecond);

void BM_SimShardedHb28(benchmark::State& state) {
  const hbnet::HyperButterfly hb(2, 8);
  const hbnet::SimConfig cfg = matched_cfg();
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hbnet::run_simulation_sharded(hb, cfg, /*shards=*/0, threads));
  }
}
BENCHMARK(BM_SimShardedHb28)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Million-node scale: HB(3,14) = 1,835,008 nodes, the paper's "scalable"
// claim exercised end to end. Uniform and shuffle (transpose-like) drain
// fully; hotspot saturates node 0 at any feasible rate on an instance this
// size, so it runs a short horizon and stops at the cap -- the point is
// that a saturated million-node cycle still costs the same bounded sweep.
void BM_SimShardedMillion(benchmark::State& state) {
  const hbnet::HyperButterfly hb(3, 14);
  hbnet::SimConfig cfg;
  cfg.injection_rate = 0.05;
  switch (state.range(0)) {
    case 0:
      cfg.pattern = hbnet::TrafficPattern::kUniform;
      break;
    case 1:
      cfg.pattern = hbnet::TrafficPattern::kShuffle;
      break;
    default:
      cfg.pattern = hbnet::TrafficPattern::kHotspot;
      break;
  }
  const bool saturating = cfg.pattern == hbnet::TrafficPattern::kHotspot;
  cfg.warmup_cycles = saturating ? 10 : 20;
  cfg.measure_cycles = saturating ? 50 : 100;
  cfg.drain_cycles = saturating ? 200 : 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hbnet::run_simulation_sharded(hb, cfg, /*shards=*/0, /*threads=*/0));
  }
}
BENCHMARK(BM_SimShardedMillion)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  // The narrative tables only run interactively (no benchmark flags):
  // bench_json.sh invokes this binary with --benchmark_filter and wants
  // machine-readable output only.
  const bool interactive = argc == 1;
  benchmark::Initialize(&argc, argv);
  if (interactive) {
    latency_vs_load();
    latency_histogram_summary();
    faulted_hb();
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
