// EXT-CAMPAIGN: scaling of the deterministic fault-injection campaign
// engine across thread counts. One fixed grid (all three fault models, two
// fault levels, repeated trials) is swept on HB(2,4); since the result is
// byte-identical for every thread count (the campaign determinism
// contract), the only thing that changes with --threads is wall clock --
// which is exactly what this benchmark measures.
#include <benchmark/benchmark.h>

#include "campaign/campaign.hpp"

namespace {

hbnet::campaign::CampaignConfig grid_config(unsigned threads) {
  hbnet::campaign::CampaignConfig cfg;
  cfg.m = 2;
  cfg.n = 4;
  cfg.models = {hbnet::campaign::FaultModel::kRandom,
                hbnet::campaign::FaultModel::kAdversarial,
                hbnet::campaign::FaultModel::kEvents};
  cfg.rates = {0.05};
  cfg.fault_counts = {0, 3};
  cfg.trials = 2;
  cfg.seed = 13;
  cfg.sim.warmup_cycles = 50;
  cfg.sim.measure_cycles = 200;
  cfg.sim.drain_cycles = 5000;
  cfg.threads = threads;
  return cfg;
}

void BM_Campaign(benchmark::State& state) {
  const hbnet::campaign::CampaignConfig cfg =
      grid_config(static_cast<unsigned>(state.range(0)));
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    const hbnet::campaign::CampaignResult r =
        hbnet::campaign::run_campaign(cfg);
    delivered = r.metrics.find_counter("campaign.delivered")->value();
    benchmark::DoNotOptimize(delivered);
  }
  state.counters["trials"] =
      static_cast<double>(cfg.models.size() * cfg.rates.size() *
                          cfg.fault_counts.size() * cfg.trials);
  state.counters["delivered"] = static_cast<double>(delivered);
}
BENCHMARK(BM_Campaign)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
