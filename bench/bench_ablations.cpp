// ABLATIONS: head-to-head timings of the library's design choices.
//  * exact covering-walk routing vs BFS shortest path (why the O(n^2)
//    solver exists),
//  * thread-parallel vs serial all-sources diameter (why parallel_bfs
//    exists -- it powers the Figure-2 HD columns),
//  * constructive Theorem-5 family vs generic max-flow extraction on the
//    full product graph (why the construction matters beyond the proof),
//  * structured vs greedy broadcast (rounds are in bench_broadcast; here
//    the planning cost).
#include <benchmark/benchmark.h>

#include <iostream>
#include <random>

#include "core/hyper_butterfly.hpp"
#include "graph/bfs.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/parallel_bfs.hpp"
#include "topology/butterfly.hpp"
#include "topology/hyper_debruijn.hpp"

namespace {

void BM_RouteCoveringWalk(benchmark::State& state) {
  hbnet::Butterfly bf(static_cast<unsigned>(state.range(0)));
  std::mt19937_64 rng(2);
  std::uniform_int_distribution<hbnet::NodeId> pick(0, bf.num_nodes() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bf.route_nodes(bf.node_at(pick(rng)), bf.node_at(pick(rng))));
  }
  state.SetLabel("B(" + std::to_string(state.range(0)) + ") exact solver");
}
BENCHMARK(BM_RouteCoveringWalk)->Arg(8)->Arg(12)->Arg(16);

void BM_RouteBfsReference(benchmark::State& state) {
  hbnet::Butterfly bf(static_cast<unsigned>(state.range(0)));
  hbnet::Graph g = bf.to_graph();
  std::mt19937_64 rng(2);
  std::uniform_int_distribution<hbnet::NodeId> pick(0, bf.num_nodes() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::shortest_path(g, pick(rng), pick(rng)));
  }
  state.SetLabel("B(" + std::to_string(state.range(0)) + ") BFS");
}
BENCHMARK(BM_RouteBfsReference)->Arg(8)->Arg(12);

void BM_DiameterSerial(benchmark::State& state) {
  hbnet::Graph g = hbnet::HyperDeBruijn(2, 7).to_graph();  // 512 nodes
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::diameter(g));
  }
}
BENCHMARK(BM_DiameterSerial)->Unit(benchmark::kMillisecond);

void BM_DiameterParallel(benchmark::State& state) {
  hbnet::Graph g = hbnet::HyperDeBruijn(2, 7).to_graph();
  const unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::parallel_diameter(g, threads));
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_DiameterParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_Theorem5Construction(benchmark::State& state) {
  hbnet::HyperButterfly hb(3, 6);
  std::mt19937_64 rng(4);
  std::uniform_int_distribution<hbnet::HbIndex> pick(0, hb.num_nodes() - 1);
  // Warm the cached butterfly layer so the loop measures construction only.
  (void)hb.butterfly_graph();
  for (auto _ : state) {
    hbnet::HbIndex s = pick(rng), t = pick(rng);
    if (s == t) continue;
    benchmark::DoNotOptimize(hb.disjoint_paths(hb.node_at(s), hb.node_at(t)));
  }
  state.SetLabel("constructive (Thm 5)");
}
BENCHMARK(BM_Theorem5Construction)->Unit(benchmark::kMicrosecond);

void BM_Theorem5ViaFullGraphFlow(benchmark::State& state) {
  hbnet::HyperButterfly hb(3, 6);
  hbnet::Graph g = hb.to_graph();  // the whole 3072-node product graph
  std::mt19937_64 rng(4);
  std::uniform_int_distribution<hbnet::HbIndex> pick(0, hb.num_nodes() - 1);
  for (auto _ : state) {
    hbnet::HbIndex s = pick(rng), t = pick(rng);
    if (s == t) continue;
    benchmark::DoNotOptimize(
        hbnet::flow_disjoint_paths(g, static_cast<hbnet::NodeId>(s),
                                   static_cast<hbnet::NodeId>(t)));
  }
  state.SetLabel("max-flow on product graph");
}
BENCHMARK(BM_Theorem5ViaFullGraphFlow)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "ABLATIONS: design-choice head-to-heads (see labels)\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
