// EXT-WORMHOLE: flit-level wormhole simulation -- the operational face of
// the deadlock analysis (analysis/deadlock.hpp): VC count and VC-class
// discipline vs deadlock and latency on the ring-bearing topologies,
// including the library's own finding that the classical 2-class dateline
// is insufficient for direction-reversing covering-walk routes while the
// 6-class segment-dateline is deadlock free.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "campaign/campaign.hpp"
#include "obs/sink.hpp"
#include "sim/wormhole.hpp"

namespace {

void deadlock_matrix() {
  std::cout << "EXT-WORMHOLE: deadlock vs VC discipline\n"
            << "(B(4), 8-flit worms, buffer depth 1, heavy load)\n"
            << "  vcs  policy            outcome\n";
  auto topo = hbnet::make_butterfly_sim(4);
  struct Case {
    unsigned vcs;
    hbnet::VcPolicy policy;
    const char* name;
  };
  for (const Case& c :
       {Case{1, hbnet::VcPolicy::kAnyFree, "any-free        "},
        Case{2, hbnet::VcPolicy::kAnyFree, "any-free        "},
        Case{2, hbnet::VcPolicy::kDateline, "dateline        "},
        Case{6, hbnet::VcPolicy::kAnyFree, "any-free        "},
        Case{6, hbnet::VcPolicy::kSegmentDateline, "segment-dateline"}}) {
    hbnet::WormholeConfig cfg;
    cfg.vcs = c.vcs;
    cfg.policy = c.policy;
    cfg.buffer_depth = 1;
    cfg.flits_per_packet = 8;
    cfg.injection_rate = 0.30;
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 1500;
    cfg.drain_cycles = 120000;
    cfg.deadlock_patience = 500;
    hbnet::WormholeStats s = hbnet::run_wormhole(*topo, cfg, 4);
    std::cout << "  " << c.vcs << "    " << c.name << "  ";
    if (s.deadlocked) {
      std::cout << "DEADLOCK after " << s.cycles << " cycles ("
                << s.packets.delivered() << " delivered)\n";
    } else {
      std::cout << "completed: " << s.packets.delivered()
                << " delivered, mean latency " << s.packets.mean_latency()
                << "\n";
    }
  }
  std::cout
      << "Findings: any-free deadlocks (cyclic CDG); the textbook 2-class\n"
         "dateline STILL deadlocks because covering-walk routes reverse\n"
         "direction on the level ring; the 6-class segment-dateline\n"
         "(class = 2*segment + wrap) is deadlock free -- see\n"
         "docs/algorithms.md and test_wormhole.cpp.\n";
}

void hb_wormhole_curve() {
  std::cout << "\nEXT-WORMHOLE: HB(2,4) wormhole latency vs load "
               "(6 VCs, segment-dateline)\n"
               "  load    mean-lat  p50  p99  max\n";
  auto topo = hbnet::make_hyper_butterfly_sim(2, 4);
  for (double load : {0.01, 0.03, 0.06}) {
    hbnet::WormholeConfig cfg;
    cfg.vcs = 6;
    cfg.injection_rate = load;
    cfg.warmup_cycles = 100;
    cfg.measure_cycles = 400;
    cfg.drain_cycles = 120000;
    hbnet::WormholeStats s = hbnet::run_wormhole(*topo, cfg, 4);
    std::cout << "  " << load << "    " << s.packets.mean_latency() << "     "
              << s.packets.latency_percentile(0.5) << "   "
              << s.packets.latency_percentile(0.99) << "   "
              << s.packets.max_latency()
              << (s.deadlocked ? "  (DEADLOCK)" : "") << "\n";
  }
}

void hb_link_utilization() {
  std::cout << "\nEXT-WORMHOLE: HB(2,4) per-link utilization at load 0.06 "
               "(obs::Sink telemetry)\n";
  auto topo = hbnet::make_hyper_butterfly_sim(2, 4);
  hbnet::WormholeConfig cfg;
  cfg.vcs = 6;
  cfg.injection_rate = 0.06;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 400;
  cfg.drain_cycles = 120000;
  hbnet::obs::Sink sink;
  hbnet::WormholeStats s = hbnet::run_wormhole(*topo, cfg, 4, nullptr, &sink);
  std::vector<hbnet::obs::LinkStats> links = sink.links();
  std::sort(links.begin(), links.end(),
            [](const hbnet::obs::LinkStats& a, const hbnet::obs::LinkStats& b) {
              return a.forwarded > b.forwarded;
            });
  double util_sum = 0;
  for (const auto& l : links) util_sum += l.utilization(sink.run_cycles());
  std::cout << "  " << links.size() << " active links, mean utilization "
            << (links.empty() ? 0.0 : util_sum / links.size())
            << ", hottest links:\n";
  for (std::size_t i = 0; i < links.size() && i < 3; ++i) {
    std::cout << "    " << links[i].src << " -> " << links[i].dst
              << ": util " << links[i].utilization(sink.run_cycles())
              << ", " << links[i].occupancy() << " buffered flit-cycles\n";
  }
  std::cout << "  (latency histogram p50/p99/max: "
            << s.packets.latency_percentile(0.5) << "/"
            << s.packets.latency_percentile(0.99) << "/"
            << s.packets.max_latency() << ")\n";
}

void BM_Wormhole(benchmark::State& state) {
  auto topo = hbnet::make_butterfly_sim(5);
  hbnet::WormholeConfig cfg;
  cfg.vcs = 6;
  cfg.injection_rate = 0.02;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 60000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::run_wormhole(*topo, cfg, 5));
  }
}
BENCHMARK(BM_Wormhole)->Unit(benchmark::kMillisecond);

/// Saturated-load datapath benchmark: B(5) at 0.3 uniform injection, the
/// configuration the ring-buffer/worklist rewrite is sized for. arg 0 = 0
/// runs telemetry-free; arg 0 = 1 attaches an obs::Sink (the overhead of
/// per-link telemetry must stay a small fraction of the sink-off runtime).
void BM_WormholeHeavyLoad(benchmark::State& state) {
  auto topo = hbnet::make_butterfly_sim(5);
  hbnet::WormholeConfig cfg;
  cfg.vcs = 6;
  cfg.injection_rate = 0.30;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 2000;
  cfg.drain_cycles = 120000;
  const bool with_sink = state.range(0) != 0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    hbnet::obs::Sink sink;
    hbnet::WormholeStats s = hbnet::run_wormhole(
        *topo, cfg, 5, nullptr, with_sink ? &sink : nullptr);
    delivered = s.packets.delivered();
    benchmark::DoNotOptimize(s);
  }
  state.counters["delivered"] = static_cast<double>(delivered);
}
BENCHMARK(BM_WormholeHeavyLoad)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"sink"})
    ->Unit(benchmark::kMillisecond);

/// Fault-adaptive datapath benchmark: HB(2,3) under arg 0 static node
/// faults with the Theorem-5 online re-planner and the escape VC class.
/// arg 0 = 0 is the fault-free adaptive baseline (idle escape class);
/// arg 0 = 5 is the m+3 guarantee bound. The delivered/misroutes/
/// unroutable counters land in BENCH_wormhole.json so the bench gate can
/// watch the fault columns alongside the runtimes.
void BM_WormholeFaultAdaptive(benchmark::State& state) {
  auto topo = hbnet::make_hyper_butterfly_sim(2, 3);
  hbnet::WormholeConfig cfg;
  cfg.vcs = hbnet::vc_classes(hbnet::VcPolicy::kFaultAdaptive);
  cfg.policy = hbnet::VcPolicy::kFaultAdaptive;
  cfg.injection_rate = 0.05;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 2000;
  cfg.drain_cycles = 120000;
  const unsigned fault_count = static_cast<unsigned>(state.range(0));
  hbnet::WormholeFaults wf;
  if (fault_count > 0) {
    wf.nodes.assign(topo->num_nodes(), 0);
    const std::vector<std::uint32_t> dead =
        hbnet::campaign::derived_fault_nodes(1234, topo->num_nodes(),
                                             fault_count);
    for (const std::uint32_t v : dead) wf.nodes[v] = 1;
  }
  hbnet::WormholeStats s;
  for (auto _ : state) {
    s = hbnet::run_wormhole(*topo, cfg, 3, wf.any() ? &wf : nullptr);
    benchmark::DoNotOptimize(s);
  }
  state.counters["delivered"] = static_cast<double>(s.packets.delivered());
  state.counters["misroutes"] = static_cast<double>(s.misroutes);
  state.counters["unroutable"] = static_cast<double>(s.unroutable);
}
BENCHMARK(BM_WormholeFaultAdaptive)
    ->Arg(0)
    ->Arg(5)
    ->ArgNames({"faults"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  deadlock_matrix();
  hb_wormhole_curve();
  hb_link_utilization();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
