// EXT-WORMHOLE: flit-level wormhole simulation -- the operational face of
// the deadlock analysis (analysis/deadlock.hpp): VC count and VC-class
// discipline vs deadlock and latency on the ring-bearing topologies,
// including the library's own finding that the classical 2-class dateline
// is insufficient for direction-reversing covering-walk routes while the
// 6-class segment-dateline is deadlock free.
#include <benchmark/benchmark.h>

#include <iostream>

#include "sim/wormhole.hpp"

namespace {

void deadlock_matrix() {
  std::cout << "EXT-WORMHOLE: deadlock vs VC discipline\n"
            << "(B(4), 8-flit worms, buffer depth 1, heavy load)\n"
            << "  vcs  policy            outcome\n";
  auto topo = hbnet::make_butterfly_sim(4);
  struct Case {
    unsigned vcs;
    hbnet::VcPolicy policy;
    const char* name;
  };
  for (const Case& c :
       {Case{1, hbnet::VcPolicy::kAnyFree, "any-free        "},
        Case{2, hbnet::VcPolicy::kAnyFree, "any-free        "},
        Case{2, hbnet::VcPolicy::kDateline, "dateline        "},
        Case{6, hbnet::VcPolicy::kAnyFree, "any-free        "},
        Case{6, hbnet::VcPolicy::kSegmentDateline, "segment-dateline"}}) {
    hbnet::WormholeConfig cfg;
    cfg.vcs = c.vcs;
    cfg.policy = c.policy;
    cfg.buffer_depth = 1;
    cfg.flits_per_packet = 8;
    cfg.injection_rate = 0.30;
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 1500;
    cfg.drain_cycles = 120000;
    cfg.deadlock_patience = 500;
    hbnet::WormholeStats s = hbnet::run_wormhole(*topo, cfg, 4);
    std::cout << "  " << c.vcs << "    " << c.name << "  ";
    if (s.deadlocked) {
      std::cout << "DEADLOCK after " << s.cycles << " cycles ("
                << s.packets.delivered() << " delivered)\n";
    } else {
      std::cout << "completed: " << s.packets.delivered()
                << " delivered, mean latency " << s.packets.mean_latency()
                << "\n";
    }
  }
  std::cout
      << "Findings: any-free deadlocks (cyclic CDG); the textbook 2-class\n"
         "dateline STILL deadlocks because covering-walk routes reverse\n"
         "direction on the level ring; the 6-class segment-dateline\n"
         "(class = 2*segment + wrap) is deadlock free -- see\n"
         "docs/algorithms.md and test_wormhole.cpp.\n";
}

void hb_wormhole_curve() {
  std::cout << "\nEXT-WORMHOLE: HB(2,4) wormhole latency vs load "
               "(6 VCs, segment-dateline)\n  load    mean-lat  p99\n";
  auto topo = hbnet::make_hyper_butterfly_sim(2, 4);
  for (double load : {0.01, 0.03, 0.06}) {
    hbnet::WormholeConfig cfg;
    cfg.vcs = 6;
    cfg.injection_rate = load;
    cfg.warmup_cycles = 100;
    cfg.measure_cycles = 400;
    cfg.drain_cycles = 120000;
    hbnet::WormholeStats s = hbnet::run_wormhole(*topo, cfg, 4);
    std::cout << "  " << load << "    " << s.packets.mean_latency() << "     "
              << s.packets.latency_percentile(0.99)
              << (s.deadlocked ? "  (DEADLOCK)" : "") << "\n";
  }
}

void BM_Wormhole(benchmark::State& state) {
  auto topo = hbnet::make_butterfly_sim(5);
  hbnet::WormholeConfig cfg;
  cfg.vcs = 6;
  cfg.injection_rate = 0.02;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 60000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::run_wormhole(*topo, cfg, 5));
  }
}
BENCHMARK(BM_Wormhole)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  deadlock_matrix();
  hb_wormhole_curve();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
