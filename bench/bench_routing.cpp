// SEC3: shortest routing. Verifies optimality on a sample (route length ==
// BFS distance) and benchmarks routing throughput of the four networks'
// native algorithms at matched sizes.
#include <benchmark/benchmark.h>

#include <iostream>
#include <random>

#include "core/hyper_butterfly.hpp"
#include "core/routing.hpp"
#include "sim/topology.hpp"

namespace {

void optimality_check() {
  std::cout << "SEC3: routing optimality spot check (route length vs BFS)\n";
  hbnet::HyperButterfly hb(3, 5);
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<hbnet::HbIndex> pick(0, hb.num_nodes() - 1);
  unsigned checked = 0, optimal = 0;
  for (int i = 0; i < 50; ++i) {
    hbnet::HbNode u = hb.node_at(pick(rng)), v = hb.node_at(pick(rng));
    unsigned algo_len = static_cast<unsigned>(hb.route(u, v).size() - 1);
    unsigned bfs = hbnet::hb_bfs_distance(hb, u, v);
    ++checked;
    optimal += (algo_len == bfs);
  }
  std::cout << "  HB(3,5): " << optimal << "/" << checked
            << " sampled routes optimal\n";
}

void BM_RouteHb(benchmark::State& state) {
  hbnet::HyperButterfly hb(static_cast<unsigned>(state.range(0)),
                           static_cast<unsigned>(state.range(1)));
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<hbnet::HbIndex> pick(0, hb.num_nodes() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hb.route(hb.node_at(pick(rng)), hb.node_at(pick(rng))));
  }
  state.SetLabel("HB(" + std::to_string(state.range(0)) + "," +
                 std::to_string(state.range(1)) + ")");
}
BENCHMARK(BM_RouteHb)->Args({3, 8})->Args({4, 10})->Args({6, 12});

void BM_RouteViaSimAdapter(benchmark::State& state) {
  // Matched ~16k-node instances, the Figure-2 trio plus hypercube/butterfly.
  std::unique_ptr<hbnet::SimTopology> topo;
  switch (state.range(0)) {
    case 0:
      topo = hbnet::make_hyper_butterfly_sim(3, 8);
      break;
    case 1:
      topo = hbnet::make_hyper_debruijn_sim(3, 11);
      break;
    case 2:
      topo = hbnet::make_hyper_debruijn_sim(6, 8);
      break;
    case 3:
      topo = hbnet::make_hypercube_sim(14);
      break;
    default:
      topo = hbnet::make_butterfly_sim(10);
      break;
  }
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint32_t> pick(0, topo->num_nodes() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo->route(pick(rng), pick(rng)));
  }
  state.SetLabel(topo->name());
}
BENCHMARK(BM_RouteViaSimAdapter)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  optimality_check();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
