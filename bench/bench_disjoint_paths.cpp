// THM5: the m+4 disjoint-path construction -- validity statistics, length
// distribution against the paper's bounds, and construction throughput.
#include <benchmark/benchmark.h>

#include <iostream>
#include <random>

#include "core/hyper_butterfly.hpp"
#include "graph/disjoint_paths.hpp"

namespace {

void family_statistics() {
  std::cout << "THM5: disjoint path family statistics (random pairs)\n"
            << "  instance   families  all-valid  max-len  mean-len\n";
  for (auto [m, n] : {std::pair{2u, 4u}, std::pair{3u, 5u}, std::pair{3u, 8u}}) {
    hbnet::HyperButterfly hb(m, n);
    hbnet::Graph g = (hb.num_nodes() <= 4096) ? hb.to_graph() : hbnet::Graph();
    std::mt19937_64 rng(3);
    std::uniform_int_distribution<hbnet::HbIndex> pick(0, hb.num_nodes() - 1);
    unsigned families = 0, valid = 0;
    std::size_t max_len = 0;
    double total_len = 0;
    std::size_t paths_counted = 0;
    for (int trial = 0; trial < 40; ++trial) {
      hbnet::HbIndex s = pick(rng), t = pick(rng);
      if (s == t) continue;
      auto family = hb.disjoint_paths(hb.node_at(s), hb.node_at(t));
      ++families;
      bool ok = family.size() == m + 4;
      if (g.num_nodes() != 0) {
        std::vector<hbnet::Path> paths;
        for (const auto& p : family) {
          hbnet::Path q;
          for (const auto& v : p) {
            q.push_back(static_cast<hbnet::NodeId>(hb.index_of(v)));
          }
          paths.push_back(std::move(q));
        }
        ok = ok && hbnet::check_disjoint_paths(g, paths,
                                               static_cast<hbnet::NodeId>(s),
                                               static_cast<hbnet::NodeId>(t))
                       .ok;
      }
      valid += ok;
      for (const auto& p : family) {
        max_len = std::max(max_len, p.size() - 1);
        total_len += static_cast<double>(p.size() - 1);
        ++paths_counted;
      }
    }
    std::cout << "  HB(" << m << "," << n << ")    " << families << "        "
              << valid << "         " << max_len << "       "
              << total_len / static_cast<double>(paths_counted) << "\n";
  }
}

void BM_DisjointPaths(benchmark::State& state) {
  hbnet::HyperButterfly hb(static_cast<unsigned>(state.range(0)),
                           static_cast<unsigned>(state.range(1)));
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<hbnet::HbIndex> pick(0, hb.num_nodes() - 1);
  for (auto _ : state) {
    hbnet::HbIndex s = pick(rng), t = pick(rng);
    if (s == t) continue;
    benchmark::DoNotOptimize(hb.disjoint_paths(hb.node_at(s), hb.node_at(t)));
  }
  state.SetLabel("HB(" + std::to_string(state.range(0)) + "," +
                 std::to_string(state.range(1)) + ")");
}
BENCHMARK(BM_DisjointPaths)
    ->Args({2, 4})
    ->Args({3, 6})
    ->Args({3, 8})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  family_statistics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
