// THM3: diameter of HB(m,n) -- measured (one BFS from the identity, valid by
// vertex transitivity) against the paper's formula m + ceil(3n/2), plus
// timing of the measurement.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/hyper_butterfly.hpp"
#include "core/routing.hpp"

namespace {

void diameter_table() {
  std::cout << "THM3: diameter of HB(m,n)\n"
            << "  m  n  measured  paper(m+ceil(3n/2))  m+floor(3n/2)\n";
  for (auto [m, n] : {std::pair{1u, 3u}, std::pair{2u, 3u}, std::pair{3u, 3u},
                      std::pair{2u, 4u}, std::pair{3u, 4u}, std::pair{2u, 5u},
                      std::pair{3u, 5u}, std::pair{2u, 6u}, std::pair{3u, 6u},
                      std::pair{2u, 7u}, std::pair{3u, 8u}}) {
    hbnet::HyperButterfly hb(m, n);
    unsigned measured = hbnet::hb_diameter_measured(hb);
    std::cout << "  " << m << "  " << n << "  " << measured << "         "
              << hb.diameter_formula() << "                    "
              << (m + 3 * n / 2)
              << (measured == m + 3 * n / 2 ? "  (matches floor form)" : "")
              << "\n";
  }
  std::cout << "The ceil/floor gap exists only for odd n; the measured\n"
            << "butterfly contribution is floor(3n/2) (cf. Remark 1 vs\n"
            << "Theorem 3 in the paper).\n";
}

void BM_DiameterBfs(benchmark::State& state) {
  const unsigned m = static_cast<unsigned>(state.range(0));
  const unsigned n = static_cast<unsigned>(state.range(1));
  hbnet::HyperButterfly hb(m, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::hb_diameter_measured(hb));
  }
  state.SetLabel("HB(" + std::to_string(m) + "," + std::to_string(n) + ")");
}
BENCHMARK(BM_DiameterBfs)
    ->Args({2, 4})
    ->Args({3, 5})
    ->Args({3, 6})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  diameter_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
