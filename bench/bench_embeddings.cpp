// LEM2 / THM4: embedding construction + validation -- even cycles of every
// length, tori, trees and meshes of trees, with timings.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/embeddings.hpp"
#include "graph/embedding_check.hpp"
#include "topology/guest_graphs.hpp"

namespace {

void embedding_audit() {
  std::cout << "LEM2/THM4 audit on HB(3,4) (512 nodes)\n";
  hbnet::HyperButterfly hb(3, 4);
  hbnet::Graph g = hb.to_graph();
  // Every even cycle length.
  unsigned cycles_ok = 0, cycles_total = 0;
  for (std::uint64_t k = 4; k <= hb.num_nodes(); k += 2) {
    auto cyc = hbnet::hb_even_cycle(hb, k);
    bool ok = cyc.size() == k;
    for (std::size_t i = 0; ok && i < cyc.size(); ++i) {
      ok = g.has_edge(
          static_cast<hbnet::NodeId>(hb.index_of(cyc[i])),
          static_cast<hbnet::NodeId>(hb.index_of(cyc[(i + 1) % cyc.size()])));
    }
    ++cycles_total;
    cycles_ok += ok;
  }
  std::cout << "  even cycles k=4..512: " << cycles_ok << "/" << cycles_total
            << " valid\n";
  // Tree.
  {
    auto tree = hbnet::tree_in_hb(hb);
    hbnet::Graph guest = hbnet::make_complete_binary_tree(3 + 4 - 2);
    std::vector<hbnet::NodeId> map;
    for (const auto& v : tree) {
      map.push_back(static_cast<hbnet::NodeId>(hb.index_of(v)));
    }
    auto check = hbnet::check_embedding(guest, g, map);
    std::cout << "  T(" << 3 + 4 - 2 << ") subgraph: "
              << (check.dilation_one ? "valid" : check.error) << "\n";
  }
  // Mesh of trees.
  {
    auto mt = hbnet::mesh_of_trees_in_hb(hb, 1, 3);
    hbnet::Graph guest = hbnet::make_mesh_of_trees(1, 3);
    std::vector<hbnet::NodeId> map;
    for (const auto& v : mt) {
      map.push_back(static_cast<hbnet::NodeId>(hb.index_of(v)));
    }
    auto check = hbnet::check_embedding(guest, g, map);
    std::cout << "  MT(2^1,2^3) subgraph: "
              << (check.dilation_one ? "valid" : check.error) << "\n";
  }
}

void BM_EvenCycle(benchmark::State& state) {
  hbnet::HyperButterfly hb(3, 6);
  const std::uint64_t k = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::hb_even_cycle(hb, k));
  }
}
// HB(3,6) has 6*2^9 = 3072 vertices; the largest arg is the Hamiltonian case.
BENCHMARK(BM_EvenCycle)->Arg(16)->Arg(1024)->Arg(3072)->Unit(benchmark::kMicrosecond);

void BM_TreeInHypercube(benchmark::State& state) {
  const unsigned h = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::tree_in_hypercube(h));
  }
}
BENCHMARK(BM_TreeInHypercube)->Arg(6)->Arg(10)->Arg(14)->Unit(benchmark::kMicrosecond);

void BM_MeshOfTrees(benchmark::State& state) {
  hbnet::HyperButterfly hb(static_cast<unsigned>(state.range(0)) + 2,
                           static_cast<unsigned>(state.range(1)) + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::mesh_of_trees_in_hb(
        hb, static_cast<unsigned>(state.range(0)),
        static_cast<unsigned>(state.range(1))));
  }
}
BENCHMARK(BM_MeshOfTrees)->Args({1, 3})->Args({2, 4})->Args({3, 6})->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  embedding_audit();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
