// COR1: vertex connectivity of the constructed graphs via max-flow --
// kappa(HB) = m+4 (maximal), kappa(HD) = m+2, kappa(B) = 4, kappa(H) = m.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/hyper_butterfly.hpp"
#include "graph/builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/connectivity_sweep.hpp"
#include "graph/sparsify.hpp"
#include "topology/butterfly.hpp"
#include "topology/hb_implicit.hpp"
#include "topology/hyper_debruijn.hpp"
#include "topology/hypercube.hpp"

namespace {

void connectivity_table() {
  std::cout << "COR1: exact vertex connectivity (max-flow) on small "
               "instances\n  network      kappa  degree(min)  maximally-FT\n";
  auto report = [](const std::string& name, const hbnet::Graph& g) {
    std::uint32_t kappa = hbnet::vertex_connectivity(g);
    auto [lo, hi] = g.degree_range();
    (void)hi;
    std::cout << "  " << name << "   " << kappa << "      " << lo << "            "
              << (kappa == lo ? "yes" : "NO") << "\n";
  };
  report("H(4)      ", hbnet::Hypercube(4).to_graph());
  report("B(4)      ", hbnet::Butterfly(4).to_graph());
  report("HD(2,3)   ", hbnet::HyperDeBruijn(2, 3).to_graph());
  report("HB(1,3)   ", hbnet::HyperButterfly(1, 3).to_graph());
  report("HB(2,3)   ", hbnet::HyperButterfly(2, 3).to_graph());
  std::cout << "Note: HD is *not* maximally fault tolerant (kappa = m+2 < "
               "max degree m+4); HB is (kappa = degree = m+4).\n";
  std::cout << "\nSampled kappa lower bound on larger instances:\n";
  {
    hbnet::Graph g = hbnet::HyperButterfly(3, 6).to_graph();
    bool ok = hbnet::check_local_connectivity_sampled(g, 7, 20);
    std::cout << "  HB(3,6): 20 sampled pairs all have >= 7 disjoint paths: "
              << (ok ? "yes" : "NO") << "\n";
  }
}

void BM_MaxDisjointPathsFlow(benchmark::State& state) {
  hbnet::Graph g = hbnet::HyperButterfly(2, static_cast<unsigned>(state.range(0)))
                       .to_graph();
  hbnet::NodeId t = g.num_nodes() / 2 + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::max_disjoint_paths(g, 0, t));
  }
}
BENCHMARK(BM_MaxDisjointPathsFlow)->Arg(3)->Arg(5)->Arg(7)->Unit(benchmark::kMicrosecond);

void BM_VertexConnectivityExact(benchmark::State& state) {
  hbnet::Graph g =
      hbnet::HyperButterfly(1, static_cast<unsigned>(state.range(0))).to_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::vertex_connectivity(g));
  }
}
BENCHMARK(BM_VertexConnectivityExact)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

/// Thread scaling of the exact engine on HB(2,3) under the *generic*
/// Even-Tarjan schedule (what vertex_connectivity runs on an arbitrary
/// graph): the same exact computation at 1/2/4 threads, bit-identical
/// results across thread counts by construction (see docs/performance.md).
void BM_VertexConnectivityThreads(benchmark::State& state) {
  hbnet::Graph g = hbnet::HyperButterfly(2, 3).to_graph();
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::vertex_connectivity(g, threads));
  }
}
BENCHMARK(BM_VertexConnectivityThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

/// The ConnectivitySweep engine on its fast path, driven exactly the way
/// `hbnet_cli analyze --exact-connectivity` drives it: single-source
/// schedule (HB is a Cayley graph, hence vertex transitive), cube-orbit
/// target reduction, structural pruning, per-worker flow-network reuse.
/// Range is (m, threads, sparsify); compare against
/// BM_VertexConnectivityThreads for the source-set-reduction speedup.
/// On HB sparsify is a byte-identity no-op (kappa = degree, so the
/// certificate is the whole graph) -- the 0/1 pair at m=4 measures its
/// overhead; the real arena win is BM_VertexConnectivitySparsifyDense.
void BM_VertexConnectivityEvenTarjan(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  const unsigned n = 3;
  hbnet::Graph g = hbnet::HyperButterfly(m, n).to_graph();
  const auto threads = static_cast<unsigned>(state.range(1));
  const bool sparsify = state.range(2) != 0;
  for (auto _ : state) {
    hbnet::SweepOptions opts;
    opts.threads = threads;
    opts.vertex_transitive = true;
    opts.sparsify = sparsify;
    opts.orbit_rep = [m, n](hbnet::NodeId v) {
      return hbnet::hb_cube_orbit_representative(m, n, v);
    };
    hbnet::ConnectivitySweep sweep(g, opts);
    benchmark::DoNotOptimize(sweep.run().kappa);
  }
}
BENCHMARK(BM_VertexConnectivityEvenTarjan)
    ->Args({2, 1, 0})
    ->Args({2, 2, 0})
    ->Args({2, 4, 0})
    ->Args({3, 1, 0})
    ->Args({3, 2, 0})
    ->Args({3, 4, 0})
    ->Args({4, 1, 0})
    ->Args({4, 1, 1})
    ->Args({4, 4, 1})
    ->ArgNames({"m", "threads", "sparsify"})
    ->Unit(benchmark::kMillisecond);

/// Implicit generator-arithmetic adjacency vs materialized CSR on the same
/// sweep (HB(3,3), single thread): the price of computing each
/// neighborhood on the fly instead of reading it from the CSR arrays.
void BM_VertexConnectivityImplicit(benchmark::State& state) {
  const unsigned m = 3, n = 3;
  const bool implicit = state.range(0) != 0;
  hbnet::Graph g = hbnet::HyperButterfly(m, n).to_graph();
  hbnet::HbImplicitAdjacency imp(m, n);
  hbnet::CsrAdjacency csr(g);
  const hbnet::AdjacencyProvider& adj =
      implicit ? static_cast<const hbnet::AdjacencyProvider&>(imp) : csr;
  for (auto _ : state) {
    hbnet::SweepOptions opts;
    opts.threads = 1;
    opts.vertex_transitive = true;
    opts.orbit_rep = [m, n](hbnet::NodeId v) {
      return hbnet::hb_cube_orbit_representative(m, n, v);
    };
    hbnet::ConnectivitySweep sweep(adj, opts);
    benchmark::DoNotOptimize(sweep.run().kappa);
  }
}
BENCHMARK(BM_VertexConnectivityImplicit)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"implicit"})
    ->Unit(benchmark::kMillisecond);

/// The regime Nagamochi-Ibaraki certificates exist for: kappa far below
/// the minimum degree. Two K_48 cliques + 3 bridges + a degree-3 apex
/// (kappa = 3, 2262 edges): with sparsify the per-worker Dinic arena is
/// built from a <= 3(n-1)-edge certificate instead of the whole graph.
void BM_VertexConnectivitySparsifyDense(benchmark::State& state) {
  hbnet::GraphBuilder b(97);
  for (hbnet::NodeId u = 0; u < 48; ++u) {
    for (hbnet::NodeId v = u + 1; v < 48; ++v) {
      b.add_edge(u, v);
      b.add_edge(u + 48, v + 48);
    }
  }
  for (hbnet::NodeId i = 0; i < 3; ++i) b.add_edge(i, 48 + i);
  for (hbnet::NodeId i = 0; i < 3; ++i) b.add_edge(96, i);
  hbnet::Graph g = b.build();
  const bool sparsify = state.range(0) != 0;
  for (auto _ : state) {
    hbnet::SweepOptions opts;
    opts.threads = 1;
    opts.sparsify = sparsify;
    hbnet::ConnectivitySweep sweep(g, opts);
    benchmark::DoNotOptimize(sweep.run().kappa);
  }
}
BENCHMARK(BM_VertexConnectivitySparsifyDense)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"sparsify"})
    ->Unit(benchmark::kMillisecond);

void BM_EdgeConnectivityThreads(benchmark::State& state) {
  hbnet::Graph g = hbnet::HyperButterfly(2, 3).to_graph();
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbnet::edge_connectivity(g, threads));
  }
}
BENCHMARK(BM_EdgeConnectivityThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  connectivity_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
