file(REMOVE_RECURSE
  "CMakeFiles/hbnet_cli.dir/hbnet_cli.cpp.o"
  "CMakeFiles/hbnet_cli.dir/hbnet_cli.cpp.o.d"
  "hbnet_cli"
  "hbnet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbnet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
