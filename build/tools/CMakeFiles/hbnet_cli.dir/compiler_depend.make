# Empty compiler generated dependencies file for hbnet_cli.
# This may be replaced when dependencies are built.
