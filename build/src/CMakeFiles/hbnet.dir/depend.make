# Empty dependencies file for hbnet.
# This may be replaced when dependencies are built.
