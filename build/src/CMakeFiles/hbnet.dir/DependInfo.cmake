
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cuts.cpp" "src/CMakeFiles/hbnet.dir/analysis/cuts.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/analysis/cuts.cpp.o.d"
  "/root/repo/src/analysis/deadlock.cpp" "src/CMakeFiles/hbnet.dir/analysis/deadlock.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/analysis/deadlock.cpp.o.d"
  "/root/repo/src/analysis/properties.cpp" "src/CMakeFiles/hbnet.dir/analysis/properties.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/analysis/properties.cpp.o.d"
  "/root/repo/src/analysis/spectral.cpp" "src/CMakeFiles/hbnet.dir/analysis/spectral.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/analysis/spectral.cpp.o.d"
  "/root/repo/src/analysis/tables.cpp" "src/CMakeFiles/hbnet.dir/analysis/tables.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/analysis/tables.cpp.o.d"
  "/root/repo/src/core/broadcast.cpp" "src/CMakeFiles/hbnet.dir/core/broadcast.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/core/broadcast.cpp.o.d"
  "/root/repo/src/core/collectives.cpp" "src/CMakeFiles/hbnet.dir/core/collectives.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/core/collectives.cpp.o.d"
  "/root/repo/src/core/disjoint_paths.cpp" "src/CMakeFiles/hbnet.dir/core/disjoint_paths.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/core/disjoint_paths.cpp.o.d"
  "/root/repo/src/core/embeddings.cpp" "src/CMakeFiles/hbnet.dir/core/embeddings.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/core/embeddings.cpp.o.d"
  "/root/repo/src/core/fault_routing.cpp" "src/CMakeFiles/hbnet.dir/core/fault_routing.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/core/fault_routing.cpp.o.d"
  "/root/repo/src/core/hyper_butterfly.cpp" "src/CMakeFiles/hbnet.dir/core/hyper_butterfly.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/core/hyper_butterfly.cpp.o.d"
  "/root/repo/src/core/node_to_set.cpp" "src/CMakeFiles/hbnet.dir/core/node_to_set.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/core/node_to_set.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/CMakeFiles/hbnet.dir/core/partition.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/core/partition.cpp.o.d"
  "/root/repo/src/core/routing.cpp" "src/CMakeFiles/hbnet.dir/core/routing.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/core/routing.cpp.o.d"
  "/root/repo/src/distsim/engine.cpp" "src/CMakeFiles/hbnet.dir/distsim/engine.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/distsim/engine.cpp.o.d"
  "/root/repo/src/distsim/leader_election.cpp" "src/CMakeFiles/hbnet.dir/distsim/leader_election.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/distsim/leader_election.cpp.o.d"
  "/root/repo/src/graph/bfs.cpp" "src/CMakeFiles/hbnet.dir/graph/bfs.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/graph/bfs.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/hbnet.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/cayley.cpp" "src/CMakeFiles/hbnet.dir/graph/cayley.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/graph/cayley.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "src/CMakeFiles/hbnet.dir/graph/connectivity.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/graph/connectivity.cpp.o.d"
  "/root/repo/src/graph/disjoint_paths.cpp" "src/CMakeFiles/hbnet.dir/graph/disjoint_paths.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/graph/disjoint_paths.cpp.o.d"
  "/root/repo/src/graph/embedding_check.cpp" "src/CMakeFiles/hbnet.dir/graph/embedding_check.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/graph/embedding_check.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/hbnet.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/hbnet.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/maxflow.cpp" "src/CMakeFiles/hbnet.dir/graph/maxflow.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/graph/maxflow.cpp.o.d"
  "/root/repo/src/graph/parallel_bfs.cpp" "src/CMakeFiles/hbnet.dir/graph/parallel_bfs.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/graph/parallel_bfs.cpp.o.d"
  "/root/repo/src/graph/subgraph_search.cpp" "src/CMakeFiles/hbnet.dir/graph/subgraph_search.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/graph/subgraph_search.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/hbnet.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/hbnet.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/CMakeFiles/hbnet.dir/sim/topology.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/sim/topology.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "src/CMakeFiles/hbnet.dir/sim/traffic.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/sim/traffic.cpp.o.d"
  "/root/repo/src/sim/wormhole.cpp" "src/CMakeFiles/hbnet.dir/sim/wormhole.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/sim/wormhole.cpp.o.d"
  "/root/repo/src/topology/butterfly.cpp" "src/CMakeFiles/hbnet.dir/topology/butterfly.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/topology/butterfly.cpp.o.d"
  "/root/repo/src/topology/ccc.cpp" "src/CMakeFiles/hbnet.dir/topology/ccc.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/topology/ccc.cpp.o.d"
  "/root/repo/src/topology/debruijn.cpp" "src/CMakeFiles/hbnet.dir/topology/debruijn.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/topology/debruijn.cpp.o.d"
  "/root/repo/src/topology/guest_graphs.cpp" "src/CMakeFiles/hbnet.dir/topology/guest_graphs.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/topology/guest_graphs.cpp.o.d"
  "/root/repo/src/topology/hyper_debruijn.cpp" "src/CMakeFiles/hbnet.dir/topology/hyper_debruijn.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/topology/hyper_debruijn.cpp.o.d"
  "/root/repo/src/topology/hypercube.cpp" "src/CMakeFiles/hbnet.dir/topology/hypercube.cpp.o" "gcc" "src/CMakeFiles/hbnet.dir/topology/hypercube.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
