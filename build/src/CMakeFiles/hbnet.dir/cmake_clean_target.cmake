file(REMOVE_RECURSE
  "libhbnet.a"
)
