# Empty dependencies file for network_simulation.
# This may be replaced when dependencies are built.
