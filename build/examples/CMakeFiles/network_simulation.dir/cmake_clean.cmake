file(REMOVE_RECURSE
  "CMakeFiles/network_simulation.dir/network_simulation.cpp.o"
  "CMakeFiles/network_simulation.dir/network_simulation.cpp.o.d"
  "network_simulation"
  "network_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
