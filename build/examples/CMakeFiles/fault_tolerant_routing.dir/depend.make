# Empty dependencies file for fault_tolerant_routing.
# This may be replaced when dependencies are built.
