# Empty dependencies file for space_sharing.
# This may be replaced when dependencies are built.
