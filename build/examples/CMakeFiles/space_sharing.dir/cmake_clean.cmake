file(REMOVE_RECURSE
  "CMakeFiles/space_sharing.dir/space_sharing.cpp.o"
  "CMakeFiles/space_sharing.dir/space_sharing.cpp.o.d"
  "space_sharing"
  "space_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
