# Empty compiler generated dependencies file for hbnet_tests.
# This may be replaced when dependencies are built.
