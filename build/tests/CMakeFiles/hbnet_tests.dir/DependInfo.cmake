
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_broadcast.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_broadcast.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_broadcast.cpp.o.d"
  "/root/repo/tests/test_butterfly.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_butterfly.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_butterfly.cpp.o.d"
  "/root/repo/tests/test_ccc.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_ccc.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_ccc.cpp.o.d"
  "/root/repo/tests/test_debruijn.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_debruijn.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_debruijn.cpp.o.d"
  "/root/repo/tests/test_disjoint_paths.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_disjoint_paths.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_disjoint_paths.cpp.o.d"
  "/root/repo/tests/test_distsim.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_distsim.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_distsim.cpp.o.d"
  "/root/repo/tests/test_embeddings.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_embeddings.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_embeddings.cpp.o.d"
  "/root/repo/tests/test_fault_routing.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_fault_routing.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_fault_routing.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_hyper_butterfly.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_hyper_butterfly.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_hyper_butterfly.cpp.o.d"
  "/root/repo/tests/test_hypercube.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_hypercube.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_hypercube.cpp.o.d"
  "/root/repo/tests/test_invariants.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_invariants.cpp.o.d"
  "/root/repo/tests/test_io_cuts.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_io_cuts.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_io_cuts.cpp.o.d"
  "/root/repo/tests/test_large_instance.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_large_instance.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_large_instance.cpp.o.d"
  "/root/repo/tests/test_maxflow.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_maxflow.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_maxflow.cpp.o.d"
  "/root/repo/tests/test_node_to_set.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_node_to_set.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_node_to_set.cpp.o.d"
  "/root/repo/tests/test_parallel_deadlock.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_parallel_deadlock.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_parallel_deadlock.cpp.o.d"
  "/root/repo/tests/test_partition.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_partition.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_partition.cpp.o.d"
  "/root/repo/tests/test_random_reference.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_random_reference.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_random_reference.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_spectral.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_spectral.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_spectral.cpp.o.d"
  "/root/repo/tests/test_wormhole.cpp" "tests/CMakeFiles/hbnet_tests.dir/test_wormhole.cpp.o" "gcc" "tests/CMakeFiles/hbnet_tests.dir/test_wormhole.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
