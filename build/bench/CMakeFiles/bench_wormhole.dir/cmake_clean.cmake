file(REMOVE_RECURSE
  "CMakeFiles/bench_wormhole.dir/bench_wormhole.cpp.o"
  "CMakeFiles/bench_wormhole.dir/bench_wormhole.cpp.o.d"
  "bench_wormhole"
  "bench_wormhole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wormhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
