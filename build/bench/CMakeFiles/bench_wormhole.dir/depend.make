# Empty dependencies file for bench_wormhole.
# This may be replaced when dependencies are built.
