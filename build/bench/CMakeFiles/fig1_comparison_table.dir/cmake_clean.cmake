file(REMOVE_RECURSE
  "CMakeFiles/fig1_comparison_table.dir/fig1_comparison_table.cpp.o"
  "CMakeFiles/fig1_comparison_table.dir/fig1_comparison_table.cpp.o.d"
  "fig1_comparison_table"
  "fig1_comparison_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_comparison_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
