# Empty compiler generated dependencies file for fig1_comparison_table.
# This may be replaced when dependencies are built.
