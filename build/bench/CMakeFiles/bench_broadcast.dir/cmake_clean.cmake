file(REMOVE_RECURSE
  "CMakeFiles/bench_broadcast.dir/bench_broadcast.cpp.o"
  "CMakeFiles/bench_broadcast.dir/bench_broadcast.cpp.o.d"
  "bench_broadcast"
  "bench_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
