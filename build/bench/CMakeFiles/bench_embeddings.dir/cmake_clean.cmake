file(REMOVE_RECURSE
  "CMakeFiles/bench_embeddings.dir/bench_embeddings.cpp.o"
  "CMakeFiles/bench_embeddings.dir/bench_embeddings.cpp.o.d"
  "bench_embeddings"
  "bench_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
