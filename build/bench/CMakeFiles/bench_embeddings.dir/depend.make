# Empty dependencies file for bench_embeddings.
# This may be replaced when dependencies are built.
