# Empty dependencies file for fig2_concrete_comparison.
# This may be replaced when dependencies are built.
