// Packet-level comparison of the paper's four networks on synthetic
// multiprocessor traffic -- the operational version of Figures 1/2.
//
//   $ ./network_simulation [load] [pattern]
//     load:    injection rate in packets/node/cycle (default 0.05)
//     pattern: uniform | complement | reversal | shuffle | hotspot
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "sim/simulator.hpp"

namespace {

hbnet::TrafficPattern parse_pattern(const char* s) {
  if (std::strcmp(s, "complement") == 0) {
    return hbnet::TrafficPattern::kBitComplement;
  }
  if (std::strcmp(s, "reversal") == 0) {
    return hbnet::TrafficPattern::kBitReversal;
  }
  if (std::strcmp(s, "shuffle") == 0) return hbnet::TrafficPattern::kShuffle;
  if (std::strcmp(s, "hotspot") == 0) return hbnet::TrafficPattern::kHotspot;
  return hbnet::TrafficPattern::kUniform;
}

}  // namespace

int main(int argc, char** argv) {
  const double load = argc > 1 ? std::atof(argv[1]) : 0.05;
  const hbnet::TrafficPattern pattern =
      argc > 2 ? parse_pattern(argv[2]) : hbnet::TrafficPattern::kUniform;

  std::vector<std::unique_ptr<hbnet::SimTopology>> topos;
  topos.push_back(hbnet::make_hyper_butterfly_sim(3, 5));  // 1280 nodes
  topos.push_back(hbnet::make_hyper_debruijn_sim(3, 8));   // 2048 nodes
  topos.push_back(hbnet::make_hypercube_sim(11));          // 2048 nodes
  topos.push_back(hbnet::make_butterfly_sim(8));           // 2048 nodes
  topos.push_back(hbnet::make_ccc_sim(8));                 // 2048 nodes

  std::cout << "pattern=" << to_string(pattern) << " load=" << load
            << " pkts/node/cycle\n\n";
  std::cout << std::left << std::setw(10) << "network" << std::right
            << std::setw(8) << "nodes" << std::setw(8) << "deg" << std::setw(12)
            << "delivered" << std::setw(10) << "meanlat" << std::setw(8)
            << "p99" << std::setw(10) << "meanhops" << "\n";
  for (const auto& topo : topos) {
    hbnet::SimConfig cfg;
    cfg.injection_rate = load;
    cfg.pattern = pattern;
    cfg.warmup_cycles = 200;
    cfg.measure_cycles = 600;
    cfg.drain_cycles = 30000;
    hbnet::SimStats s = hbnet::run_simulation(*topo, cfg);
    std::cout << std::left << std::setw(10) << topo->name() << std::right
              << std::setw(8) << topo->num_nodes() << std::setw(8)
              << topo->degree_hint() << std::setw(12) << s.delivered()
              << std::setw(10) << std::fixed << std::setprecision(2)
              << s.mean_latency() << std::setw(8) << s.latency_percentile(0.99)
              << std::setw(10) << s.mean_hops() << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "\nInterpretation: at matched size, HB pays slightly more hops\n"
               "than the hypercube (bounded degree) but matches the\n"
               "butterfly/hyper-deBruijn class while adding maximal fault\n"
               "tolerance -- the paper's central trade-off.\n";
  return 0;
}
