// Embedding explorer: materialize and validate the Section-4 embeddings on
// a chosen HB(m,n), printing witnesses.
//
//   $ ./embedding_explorer [m] [n]    (defaults: 3 4)
#include <cstdlib>
#include <iostream>

#include "core/embeddings.hpp"
#include "graph/embedding_check.hpp"
#include "topology/guest_graphs.hpp"

namespace {

template <typename Map>
void validate(const hbnet::HyperButterfly& hb, const hbnet::Graph& host,
              const hbnet::Graph& guest, const Map& layout, const char* what) {
  std::vector<hbnet::NodeId> map;
  for (const auto& v : layout) {
    map.push_back(static_cast<hbnet::NodeId>(hb.index_of(v)));
  }
  auto check = hbnet::check_embedding(guest, host, map);
  std::cout << "  " << what << ": " << guest.num_nodes() << " vertices -> "
            << (check.dilation_one ? "valid dilation-1 subgraph"
                                   : "INVALID: " + check.error)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned m = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 3;
  const unsigned n = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;
  hbnet::HyperButterfly hb(m, n);
  hbnet::Graph host = hb.to_graph();
  std::cout << "HB(" << m << "," << n << ") with " << hb.num_nodes()
            << " nodes embeds (Section 4):\n";

  // Lemma 2: even cycles of every length.
  for (std::uint64_t k : {std::uint64_t{4}, hb.num_nodes() / 2,
                          hb.num_nodes()}) {
    if (k % 2) --k;
    auto cyc = hbnet::hb_even_cycle(hb, k);
    hbnet::Graph guest = hbnet::make_cycle(static_cast<std::uint32_t>(k));
    validate(hb, host, guest, cyc,
             ("C(" + std::to_string(k) + ")").c_str());
  }

  // Wrap-around mesh (torus).
  if (m >= 2) {
    auto grid = hbnet::hb_torus(hb, 4, 2, 0);
    std::vector<hbnet::HbNode> flat;
    for (const auto& row : grid) flat.insert(flat.end(), row.begin(), row.end());
    hbnet::Graph guest =
        hbnet::make_torus(4, static_cast<std::uint32_t>(grid[0].size()));
    validate(hb, host, guest, flat,
             ("M(4," + std::to_string(grid[0].size()) + ") torus").c_str());
  }

  // Complete binary tree.
  {
    auto tree = hbnet::tree_in_hb(hb);
    unsigned h = (m < 2) ? n : m + n - 2;
    validate(hb, host, hbnet::make_complete_binary_tree(h), tree,
             ("T(" + std::to_string(h) + ")").c_str());
  }

  // Mesh of trees (Theorem 4).
  if (m >= 3) {
    for (unsigned p = 1; p <= m - 2; ++p) {
      for (unsigned q = 1; q <= n - 1; ++q) {
        auto mt = hbnet::mesh_of_trees_in_hb(hb, p, q);
        validate(hb, host, hbnet::make_mesh_of_trees(p, q), mt,
                 ("MT(2^" + std::to_string(p) + ",2^" + std::to_string(q) + ")")
                     .c_str());
      }
    }
  }
  return 0;
}
