// Quickstart: build a hyper-butterfly network, inspect its structure, route
// between two nodes, and verify the headline properties from the paper.
//
//   $ ./quickstart [m] [n]      (defaults: m=3, n=4)
#include <cstdlib>
#include <iostream>

#include "core/hyper_butterfly.hpp"
#include "core/routing.hpp"

int main(int argc, char** argv) {
  const unsigned m = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 3;
  const unsigned n = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

  hbnet::HyperButterfly hb(m, n);
  std::cout << "HB(" << m << "," << n << "): " << hb.num_nodes()
            << " nodes, " << hb.num_edges() << " edges, regular of degree "
            << hb.degree() << ", diameter formula " << hb.diameter_formula()
            << " (Theorem 2/3)\n\n";

  // A node is a (hypercube word, butterfly (word, level)) pair. The
  // butterfly part also has the paper's Cayley symbol-label form:
  hbnet::HbNode u{0b000 & ((1u << m) - 1), {0, 0}};
  hbnet::HbNode v{(1u << m) - 1, {(1u << n) - 1, n / 2}};
  std::cout << "u = (cube " << u.cube << ", butterfly label '"
            << hb.butterfly().label(u.bfly) << "')\n";
  std::cout << "v = (cube " << v.cube << ", butterfly label '"
            << hb.butterfly().label(v.bfly) << "')\n";

  // Shortest routing decomposes into a hypercube phase and a butterfly
  // phase (Section 3); the distance is the sum of the two parts (Remark 8).
  std::cout << "\ndistance(u,v) = " << hb.distance(u, v) << "\n";
  std::cout << "route:";
  for (const hbnet::HbNode& w : hb.route(u, v)) {
    std::cout << " (" << w.cube << "," << w.bfly.word << "," << w.bfly.level
              << ")";
  }
  std::cout << "\n";

  // The route length always equals the true BFS distance:
  std::cout << "BFS agrees: "
            << (hbnet::hb_bfs_distance(hb, u, v) == hb.distance(u, v) ? "yes"
                                                                      : "no")
            << "\n";

  // Theorem 5: m+4 node-disjoint parallel paths between any two nodes.
  auto family = hb.disjoint_paths(u, v);
  std::cout << "\nTheorem 5: " << family.size()
            << " internally node-disjoint u-v paths, lengths:";
  for (const auto& p : family) std::cout << " " << p.size() - 1;
  std::cout << "\n";
  return 0;
}
