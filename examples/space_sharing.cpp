// Space sharing a hyper-butterfly machine: the buddy partition allocator
// grants jobs isomorphic sub-HB(m',n) machines (Remark 5 / scalability),
// and each job's traffic runs in its own partition without interference.
//
//   $ ./space_sharing [m] [n]    (defaults: 4 3)
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/partition.hpp"
#include "distsim/leader_election.hpp"

int main(int argc, char** argv) {
  const unsigned m = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const unsigned n = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;
  hbnet::HyperButterfly hb(m, n);
  std::cout << "machine: HB(" << m << "," << n << ") with " << hb.num_nodes()
            << " nodes (" << (1u << m) << " cube layers)\n\n";

  hbnet::PartitionAllocator alloc(hb);
  struct Job {
    const char* name;
    unsigned sub_m;
  };
  const std::vector<Job> jobs = {{"job-A", m - 1}, {"job-B", m - 2},
                                 {"job-C", m - 2}, {"job-D", 1}};
  std::vector<std::pair<const char*, hbnet::SubHyperButterfly>> granted;
  for (const Job& job : jobs) {
    auto part = alloc.allocate(job.sub_m);
    if (!part) {
      std::cout << job.name << ": HB(" << job.sub_m << "," << n
                << ") DENIED (machine full/fragmented)\n";
      continue;
    }
    std::cout << job.name << ": granted HB(" << part->sub_m << "," << n
              << ") at cube prefix " << part->prefix << "  ("
              << (std::uint64_t{1} << part->sub_m) << " layers; "
              << alloc.layers_in_use() << "/" << (1u << m)
              << " layers now in use)\n";
    granted.emplace_back(job.name, *part);
  }

  // Each partition is a genuine HB(m',n): run a leader election *inside*
  // the first granted partition to prove it is fully functional.
  if (!granted.empty()) {
    const auto& [name, part] = granted.front();
    hbnet::HyperButterfly sub(part.sub_m, n);
    auto result = hbnet::hb_structured_election(sub);
    std::cout << "\n" << name << " ran leader election inside its partition: "
              << "leader local-id " << result.leader << " = machine node "
              << sub.node_at(result.leader).cube << "->"
              << part.lift(sub.node_at(result.leader)).cube << " (cube), "
              << result.run.rounds << " rounds, " << result.run.messages
              << " messages\n";
  }

  // Release everything and show coalescing.
  for (const auto& [name, part] : granted) alloc.release(part);
  std::cout << "\nall jobs released; largest allocatable partition: HB("
            << *alloc.largest_free() << "," << n << ") -- fully coalesced\n";
  return 0;
}
