// Fault-tolerant routing demo (Remark 10): knock out up to m+3 random nodes
// and watch every surviving pair remain routable through the Theorem-5
// disjoint-path family.
//
//   $ ./fault_tolerant_routing [m] [n] [faults]   (defaults: 3 4 6)
#include <cstdlib>
#include <iostream>
#include <random>

#include "core/fault_routing.hpp"

int main(int argc, char** argv) {
  const unsigned m = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 3;
  const unsigned n = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;
  const unsigned faults =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : m + 3;

  hbnet::HyperButterfly hb(m, n);
  std::cout << "HB(" << m << "," << n << "), degree " << hb.degree()
            << ": guaranteed to survive any " << hb.degree() - 1
            << " node faults (Corollary 1)\n";
  std::cout << "Injecting " << faults << " random faults\n\n";

  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<hbnet::HbIndex> pick(0, hb.num_nodes() - 1);
  hbnet::HbFaultSet fs;
  while (fs.size() < faults) {
    fs.add(hb, hb.node_at(pick(rng)));
  }

  unsigned attempts = 0, family_hits = 0, fallback_hits = 0, failures = 0;
  double stretch = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    hbnet::HbIndex s = pick(rng), t = pick(rng);
    hbnet::HbNode u = hb.node_at(s), v = hb.node_at(t);
    if (s == t || fs.contains(hb, u) || fs.contains(hb, v)) continue;
    ++attempts;
    hbnet::FaultRouteResult r = hbnet::route_around_faults(hb, u, v, fs);
    if (!r.ok()) {
      ++failures;
      continue;
    }
    (r.used_fallback ? fallback_hits : family_hits) += 1;
    unsigned d = hb.distance(u, v);
    if (d > 0) stretch += static_cast<double>(r.path.size() - 1) / d;
  }
  std::cout << "pairs attempted:        " << attempts << "\n"
            << "routed via family:      " << family_hits << "\n"
            << "routed via BFS fallback:" << fallback_hits << "\n"
            << "unroutable:             " << failures << "\n"
            << "mean stretch:           " << stretch / (family_hits + fallback_hits)
            << "x optimal\n";
  if (faults <= m + 3) {
    std::cout << "\n(faults <= m+3, so 'unroutable' must be 0 and the "
                 "family alone should always succeed)\n";
  }
  return 0;
}
