#!/usr/bin/env sh
# Argv hardening regression test: every malformed numeric token must make
# hbnet_cli print a diagnostic and exit nonzero -- never die on an uncaught
# std::stoul/std::stod exception (which exits 1 via the top-level handler
# but with an unhelpful "error: stoul" message) and never silently accept a
# partial token like "4x".
#
# Usage: test_cli_args.sh <path-to-hbnet_cli>
set -eu

cli=$1
fails=0

# expect_reject <description> <args...>: the command must exit nonzero and
# print something to stderr.
expect_reject() {
  desc=$1
  shift
  if "$cli" "$@" >/dev/null 2>/tmp/hbnet_cli_args_err.$$; then
    echo "FAIL: $desc: expected nonzero exit: $cli $*" >&2
    fails=$((fails + 1))
  elif ! [ -s /tmp/hbnet_cli_args_err.$$ ]; then
    echo "FAIL: $desc: rejected but no diagnostic on stderr: $cli $*" >&2
    fails=$((fails + 1))
  fi
  rm -f /tmp/hbnet_cli_args_err.$$
}

expect_reject "non-numeric m" info x 3
expect_reject "partial-token n" info 2 3x
expect_reject "negative m" info -2 3
expect_reject "empty n" info 2 ""
expect_reject "bad label id" label 2 3 12y
expect_reject "bad route src" route 2 3 0q 5
expect_reject "bad route dst" route 2 3 0 5q
expect_reject "bad disjoint src" disjoint 2 3 zz 5
expect_reject "bad sim rate" sim 2 3 --rate 0.05x
expect_reject "bad sim cycles" sim 2 3 --cycles 10e
expect_reject "bad sim seed" sim 2 3 --seed 1.5
expect_reject "bad sim threads" sim 2 3 --threads two
expect_reject "missing flag value" sim 2 3 --rate
expect_reject "bad analyze threads" analyze 2 3 --threads 4x
expect_reject "bad wormhole vcs" wormhole 2 3 --vcs x6
expect_reject "bad campaign rates" campaign 2 3 --rates 0.05x
expect_reject "bad campaign rate list" campaign 2 3 --rates 0.02,,0.05
expect_reject "bad campaign faults" campaign 2 3 --faults 0,2x
expect_reject "bad campaign trials" campaign 2 3 --trials -1
expect_reject "bad campaign model" campaign 2 3 --models bogus
expect_reject "bad campaign engine" campaign 2 3 --engine bogus
expect_reject "campaign rate out of range" campaign 2 3 --rates 1.5
expect_reject "wormhole campaign with events model" campaign 2 3 --engine wormhole --models events --faults 2
expect_reject "sf campaign with links model" campaign 2 3 --models links --faults 2
expect_reject "bad wormhole fault count" wormhole 2 3 --faults 3x
expect_reject "wormhole faults without adaptive policy" wormhole 2 3 --faults 2
expect_reject "wormhole link faults without adaptive policy" wormhole 2 3 --link-faults 2

# Well-formed commands must still pass.
if ! "$cli" info 2 3 >/dev/null; then
  echo "FAIL: well-formed 'info 2 3' should succeed" >&2
  fails=$((fails + 1))
fi

# The previously rejected fault-injecting wormhole campaign is now the
# supported path (adaptive policy + escape VC): it must succeed.
if ! "$cli" campaign 2 3 --engine wormhole --faults 2 --cycles 50 >/dev/null; then
  echo "FAIL: fault-injecting wormhole campaign should succeed" >&2
  fails=$((fails + 1))
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails argv hardening case(s) failed" >&2
  exit 1
fi
echo "all argv hardening cases passed"
