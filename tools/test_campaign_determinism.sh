#!/usr/bin/env sh
# Campaign determinism contract, enforced end to end through the CLI: the
# merged metrics JSON, the per-cell CSV, and the stdout table must be
# byte-identical for --threads 1, 2, and 8, and across repeat runs.
#
# Usage: test_campaign_determinism.sh <path-to-hbnet_cli>
set -eu

cli=$1
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

run_campaign() {
  threads=$1
  tag=$2
  # The "metrics:"/"csv:" confirmation lines echo the per-tag output paths,
  # so drop them before comparing the table across runs.
  "$cli" campaign 1 3 \
    --models random,adversarial,events --rates 0.03,0.06 --faults 0,2 \
    --trials 2 --seed 9 --cycles 100 --threads "$threads" \
    --metrics-out "$work/m$tag.json" --csv "$work/c$tag.csv" \
    | grep -v -e '^metrics:' -e '^csv:' > "$work/t$tag.txt"
}

run_campaign 1 1
run_campaign 2 2
run_campaign 8 8
run_campaign 2 2b   # repeat run, same config

for ext in json csv; do
  a="$work/m1.$ext"
  [ "$ext" = csv ] && a="$work/c1.$ext"
  for tag in 2 8 2b; do
    b="$work/m$tag.$ext"
    [ "$ext" = csv ] && b="$work/c$tag.$ext"
    if ! cmp -s "$a" "$b"; then
      echo "FAIL: $ext differs between --threads runs ($a vs $b)" >&2
      exit 1
    fi
  done
done
for tag in 2 8 2b; do
  if ! cmp -s "$work/t1.txt" "$work/t$tag.txt"; then
    echo "FAIL: stdout table differs between --threads runs (t1 vs t$tag)" >&2
    exit 1
  fi
done

echo "campaign artifacts byte-identical across thread counts and reruns"
