// hblint -- the project's static checker.
//
// v2 is a small program-analysis pass rather than a purely lexical scanner:
// a tokenizer (lexer.hpp) feeds per-file symbol tables and a repo-wide
// include graph (index.hpp), which a rule engine (rules.hpp) matches
// contract rules against; findings flow through a baseline/suppression
// layer and text or SARIF reporters (report.hpp). It mechanically enforces
// the contracts this library otherwise relies on code review for:
//
//   * the hbnet::par determinism contract -- no nondeterminism sources,
//     no iteration over unordered containers feeding results or telemetry,
//     and no mutable shared state captured by reference into parallel_for /
//     parallel_reduce bodies (rule parallel-capture),
//   * the layering contract -- the subsystem DAG
//     obs/par/check -> core/graph/topology -> sim/analysis/campaign/distsim
//     derived from the include graph (rule layering),
//   * the obs contract -- every engine entry point keeps its trailing
//     `obs::Sink* = nullptr` / `obs::ProgressBoard* = nullptr` observer
//     parameters, headers and definitions agree, and defaults live only in
//     headers (rules sink-default, signature-contract, trace-macro-only),
//   * the canonical-emission contract -- no file/stream writes reachable
//     from a loop over an unordered container (rule emission-order), and no
//     cross-shard arena writes that bypass the sync::Exchange primitives
//     (rule exchange-invariant),
//   * the resource/invariant conventions -- no raw new/delete, no bare
//     assert() in src/.
//
// Diagnostics carry file:line and a rule name. A finding is suppressed by
// putting `hblint: allow(<rule>)` in a comment on the flagged line,
// `hblint: allow-file(<rule>)` anywhere in the file, or by an entry in the
// committed baseline file (tools/hblint/hblint-baseline.txt). Fixture
// files under tests/lint_fixtures/ carry `// hblint-scope:` and
// `// hblint-path:` pragmas so each rule can be exercised outside its real
// directory.
//
// See docs/static_analysis.md for the rule catalogue and rationale.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace hblint {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Which rule set applies to a file. Library code gets the full set; tools
/// and tests skip the library-only rules (wall clocks, Sink defaults, trace
/// macros, bare assert, layering, exchange-invariant).
enum class Scope { kLibrary, kTools, kTests };

struct RuleInfo {
  const char* name;
  const char* description;
};

/// The rule catalogue, in diagnostic order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// Scope derived from the path (tests/ > tools/ > src/; default library).
[[nodiscard]] Scope scope_of_path(const std::string& path);

/// Lints in-memory content with the per-file rules. `path` is used for
/// diagnostics, header detection, and scope selection (unless the content
/// carries `hblint-scope:` / `hblint-path:` pragmas). Cross-file rules
/// (signature mismatches between a header and its .cpp) need lint_tree.
[[nodiscard]] std::vector<Diagnostic> lint_content(const std::string& path,
                                                   const std::string& content);

/// Reads and lints one file; an unreadable file yields a single "io"
/// diagnostic.
[[nodiscard]] std::vector<Diagnostic> lint_file(const std::string& path);

/// Lints a set of files as one program: every per-file rule plus the
/// cross-file rules that need the repo index (signature-contract
/// declaration/definition matching, cross-file emission-order reachability).
/// Diagnostics are sorted by (file, line, rule) and deduplicated.
[[nodiscard]] std::vector<Diagnostic> lint_tree(
    const std::vector<std::string>& files);

/// Expands files and directories into the sorted list of lintable sources
/// (.cpp/.cc/.hpp/.hh/.h), skipping lint_fixtures, build*, and dot
/// directories.
[[nodiscard]] std::vector<std::string> collect_files(
    const std::vector<std::string>& roots);

// ---------------------------------------------------------------------------
// Baseline: known findings committed to the repository. Entries are
// line-number free -- `<rule> <repo-relative-file> <count>` -- so
// unrelated edits do not invalidate them; a (rule, file) group only fails
// the lint when it grows past its baselined count.
// ---------------------------------------------------------------------------

struct Baseline {
  // (rule, repo-relative file) -> tolerated finding count.
  std::map<std::pair<std::string, std::string>, std::size_t> entries;
};

/// Parses baseline text (see serialize_baseline for the format; '#' starts
/// a comment line).
[[nodiscard]] Baseline parse_baseline(const std::string& text);

/// Loads a baseline file; a missing file is an empty baseline.
[[nodiscard]] Baseline load_baseline(const std::string& path);

/// Renders diagnostics as baseline text (sorted, one `<rule> <file>
/// <count>` line per group), suitable for committing.
[[nodiscard]] std::string serialize_baseline(
    const std::vector<Diagnostic>& diags);

struct BaselineSplit {
  std::vector<Diagnostic> unbaselined;
  std::size_t baselined = 0;  // findings absorbed by the baseline
};

/// Splits findings into baselined and unbaselined. A (rule, file) group
/// with more findings than its baselined count is reported whole -- the
/// linter cannot tell old findings from new ones without line pinning.
[[nodiscard]] BaselineSplit apply_baseline(
    const std::vector<Diagnostic>& diags, const Baseline& baseline);

// ---------------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------------

/// Renders diagnostics as a SARIF 2.1.0 log (one run, driver "hblint",
/// every catalogue rule listed, one result per diagnostic with a
/// repo-relative artifact URI and 1-based start line).
[[nodiscard]] std::string sarif_report(const std::vector<Diagnostic>& diags);

}  // namespace hblint
