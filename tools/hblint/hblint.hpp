// hblint -- the project's static checker.
//
// A standalone token-level linter (no libclang) that mechanically enforces
// the contracts this library otherwise relies on code review for:
//
//   * the hbnet::par determinism contract -- no nondeterminism sources
//     (std::rand, time(), std::random_device, wall clocks in library code)
//     and no iteration over unordered containers feeding results or
//     telemetry (iteration-order hazard; extract and sort instead),
//   * the obs contract -- every simulator/broadcast entry point keeps its
//     trailing `obs::Sink* = nullptr` parameter, and hot paths emit traces
//     through the HBNET_TRACE_* macros only,
//   * the resource/invariant conventions -- no raw new/delete, and no bare
//     assert() in src/ (use HBNET_CHECK / HBNET_DCHECK from
//     check/check.hpp).
//
// Diagnostics carry file:line and a rule name. A finding is suppressed by
// putting `hblint: allow(<rule>)` in a comment on the flagged line, or
// `hblint: allow-file(<rule>)` anywhere in the file. Fixture files under
// tests/lint_fixtures/ carry a `// hblint-scope: src|tools|tests` pragma so
// each rule can be exercised outside its real directory.
//
// See docs/static_analysis.md for the rule catalogue and rationale.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hblint {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Which rule set applies to a file. Library code gets the full set; tools
/// and tests skip the library-only rules (wall clocks, Sink defaults, trace
/// macros, bare assert).
enum class Scope { kLibrary, kTools, kTests };

struct RuleInfo {
  const char* name;
  const char* description;
};

/// The rule catalogue, in diagnostic order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// Scope derived from the path (tests/ > tools/ > src/; default library).
[[nodiscard]] Scope scope_of_path(const std::string& path);

/// Lints in-memory content. `path` is used for diagnostics, header
/// detection, and scope selection (unless the content carries an
/// `hblint-scope:` pragma).
[[nodiscard]] std::vector<Diagnostic> lint_content(const std::string& path,
                                                   const std::string& content);

/// Reads and lints one file; an unreadable file yields a single "io"
/// diagnostic.
[[nodiscard]] std::vector<Diagnostic> lint_file(const std::string& path);

/// Expands files and directories into the sorted list of lintable sources
/// (.cpp/.cc/.hpp/.hh/.h), skipping lint_fixtures, build*, and dot
/// directories.
[[nodiscard]] std::vector<std::string> collect_files(
    const std::vector<std::string>& roots);

}  // namespace hblint
