// hblint rule engine: the catalogue, the per-file pass, and the cross-file
// pass. Rules read the symbol tables built by index.hpp; nothing here does
// its own lexing beyond small regexes over blanked text.
#pragma once

#include <vector>

#include "hblint/hblint.hpp"
#include "hblint/index.hpp"

namespace hblint {

/// Runs every per-file rule over one indexed file, appending diagnostics.
/// `repo` supplies cross-file lookups that sharpen per-file rules (the
/// repo-wide stream-writer set for emission-order); pass nullptr when
/// linting a single file in isolation.
void run_file_rules(const FileIndex& fi, const RepoIndex* repo,
                    std::vector<Diagnostic>& out);

/// Runs the rules that only make sense across files: signature-contract
/// matching of header declarations against .cpp definitions.
void run_tree_rules(const RepoIndex& repo, std::vector<Diagnostic>& out);

}  // namespace hblint
