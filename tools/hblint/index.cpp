#include "hblint/index.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>

#include "hblint/lexer.hpp"

namespace hblint {
namespace {

constexpr std::size_t npos = std::string::npos;

/// Keywords that can precede a '(' without naming a function.
bool is_control_keyword(const std::string& word) {
  static const char* const kWords[] = {
      "if",     "for",    "while",    "switch",        "catch",
      "return", "sizeof", "alignof",  "decltype",      "static_assert",
      "assert", "do",     "co_await", "co_return",     "co_yield",
      "new",    "delete", "throw",    "alignas",       "noexcept",
      "else",   "case",   "operator", "static_cast",   "const_cast",
      "defined"};
  for (const char* w : kWords) {
    if (word == w) return true;
  }
  return false;
}

/// Walks backwards from `pos` looking for the opening '(' of the innermost
/// enclosing parameter list. Returns npos when a statement boundary
/// (; { }) appears first -- i.e. `pos` is not inside a parameter list.
std::size_t enclosing_paren_open(const std::string& text, std::size_t pos) {
  int depth = 0;
  const std::size_t limit = pos > 4000 ? pos - 4000 : 0;
  std::size_t i = pos;
  while (i > limit) {
    --i;
    const char c = text[i];
    if (c == ')') ++depth;
    if (c == '(') {
      if (depth == 0) return i;
      --depth;
    }
    if (depth == 0 && (c == ';' || c == '{' || c == '}')) return npos;
  }
  return npos;
}

/// After a parameter list's closing ')', classify the declarator: returns
/// 1 for a definition ('{' possibly after const/noexcept/trailing-return/
/// ctor-init-list), 0 for a declaration (';' or '= default' etc.), -1 when
/// unrecognized.
int classify_after_params(const std::string& text, std::size_t close) {
  std::size_t i = close + 1;
  const std::size_t limit = std::min(text.size(), close + 800);
  while (i < limit) {
    const std::size_t p = lex::next_nonspace(text, i);
    if (p == npos || p >= limit) return -1;
    const char c = text[p];
    if (c == '{') return 1;
    if (c == ';') return 0;
    if (c == '=') return 0;  // = default / = delete / = 0
    if (c == ':') return 1;  // ctor init list
    if (c == '-' && p + 1 < text.size() && text[p + 1] == '>') {
      // Trailing return type: scan to the '{' or ';' that ends it.
      std::size_t q = p + 2;
      while (q < limit && text[q] != '{' && text[q] != ';') ++q;
      if (q >= limit) return -1;
      return text[q] == '{' ? 1 : 0;
    }
    if (lex::is_word(c)) {  // const, noexcept, override, final, ...
      std::size_t q = p;
      while (q < text.size() && lex::is_word(text[q])) ++q;
      // noexcept(...) / requires(...) clause arguments.
      const std::size_t r = lex::next_nonspace(text, q);
      if (r != npos && r < limit && text[r] == '(') {
        const std::size_t rc = lex::match_forward(text, r, '(', ')');
        if (rc == npos) return -1;
        i = rc + 1;
        continue;
      }
      i = q;
      continue;
    }
    return -1;
  }
  return -1;
}

void collect_includes(const std::vector<std::string>& raw_lines,
                      FileIndex& fi) {
  static const std::regex kInclude(R"(^\s*#\s*include\s*\"([^\"]+)\")");
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(raw_lines[i], m, kInclude)) {
      fi.includes.push_back({m[1].str(), i + 1});
    }
  }
}

void collect_functions(FileIndex& fi) {
  const std::string& text = fi.blanked;
  for (std::size_t open = text.find('(');open != npos;
       open = text.find('(', open + 1)) {
    const std::size_t prev = lex::prev_nonspace(text, open);
    if (prev == npos || !lex::is_word(text[prev])) continue;
    std::size_t name_begin = 0;
    const std::string name = lex::word_ending_at(text, prev + 1, &name_begin);
    if (name.empty() || is_control_keyword(name)) continue;
    if (std::isdigit(static_cast<unsigned char>(name.front())) != 0) continue;
    // `operator` overloads and macros expanding to statements are skipped by
    // classify_after_params (no bare '{' follows a macro call statement).
    const std::size_t close = lex::match_forward(text, open, '(', ')');
    if (close == npos) continue;
    if (classify_after_params(text, close) != 1) continue;
    const std::size_t brace = text.find('{', close);
    if (brace == npos) continue;
    const std::size_t body_end = lex::match_forward(text, brace, '{', '}');
    if (body_end == npos) continue;
    FunctionDef fn;
    fn.name = name;
    fn.line = lex::line_of(text, name_begin);
    fn.params_begin = open + 1;
    fn.params_end = close;
    fn.body_begin = brace + 1;
    fn.body_end = body_end;
    fi.functions.push_back(std::move(fn));
  }
}

void collect_observer_sigs(FileIndex& fi) {
  const std::string& text = fi.blanked;
  static const std::regex kObserver(
      R"(\bobs\s*::\s*(Sink|ProgressBoard)\s*\*)");
  std::map<std::size_t, ObserverSig> by_open;  // param-list open -> sig
  auto begin = std::sregex_iterator(text.begin(), text.end(), kObserver);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const auto pos = static_cast<std::size_t>(it->position());
    const std::size_t open = enclosing_paren_open(text, pos);
    if (open == npos) continue;  // struct member / local, not a parameter
    const std::size_t name_end = lex::prev_nonspace(text, open);
    if (name_end == npos || !lex::is_word(text[name_end])) continue;
    std::size_t name_begin = 0;
    const std::string name =
        lex::word_ending_at(text, name_end + 1, &name_begin);
    if (name.empty() || is_control_keyword(name)) continue;
    const std::size_t close = lex::match_forward(text, open, '(', ')');
    if (close == npos || pos > close) continue;
    const int kind_class = classify_after_params(text, close);
    if (kind_class < 0) continue;  // call site or unrecognized declarator

    // The parameter's text runs to the next top-level ',' or the ')'.
    std::size_t end = static_cast<std::size_t>(it->position()) +
                      static_cast<std::size_t>(it->length());
    int depth = 0;
    while (end < close) {
      const char c = text[end];
      if (c == '(' || c == '<' || c == '{' || c == '[') ++depth;
      if (c == ')' || c == '>' || c == '}' || c == ']') --depth;
      if (c == ',' && depth == 0) break;
      ++end;
    }
    const std::string param_tail = text.substr(
        static_cast<std::size_t>(it->position()) +
            static_cast<std::size_t>(it->length()),
        end - (static_cast<std::size_t>(it->position()) +
               static_cast<std::size_t>(it->length())));

    ObserverSig& sig = by_open[open];
    if (sig.name.empty()) {
      sig.name = name;
      sig.line = lex::line_of(text, name_begin);
      sig.is_definition = kind_class == 1;
    }
    ObserverParam p;
    p.kind = (*it)[1].str() == "Sink" ? ObserverKind::kSink
                                      : ObserverKind::kProgressBoard;
    p.has_default = param_tail.find('=') != npos;
    p.pos = pos;
    sig.observers.push_back(p);
  }
  for (auto& [open, sig] : by_open) {
    fi.observer_sigs.push_back(std::move(sig));
  }
}

void collect_unordered_names(FileIndex& fi) {
  const std::string& blanked = fi.blanked;
  static const std::regex kDecl(R"(\bunordered_(map|set)\b)");
  auto begin = std::sregex_iterator(blanked.begin(), blanked.end(), kDecl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::size_t p = static_cast<std::size_t>(it->position()) +
                    static_cast<std::size_t>(it->length());
    while (p < blanked.size() && std::isspace(static_cast<unsigned char>(
                                     blanked[p]))) {
      ++p;
    }
    if (p >= blanked.size() || blanked[p] != '<') continue;
    int depth = 0;
    while (p < blanked.size()) {
      if (blanked[p] == '<') ++depth;
      if (blanked[p] == '>') {
        --depth;
        if (depth == 0) break;
      }
      ++p;
    }
    if (p >= blanked.size()) continue;
    ++p;  // past closing '>'
    while (p < blanked.size() &&
           (std::isspace(static_cast<unsigned char>(blanked[p])) ||
            blanked[p] == '&' || blanked[p] == '*')) {
      ++p;
    }
    std::string name;
    while (p < blanked.size() && lex::is_word(blanked[p])) {
      name.push_back(blanked[p]);
      ++p;
    }
    // `>::iterator` and friends produce no name; `>(...)` casts neither.
    if (!name.empty() &&
        !std::isdigit(static_cast<unsigned char>(name.front()))) {
      fi.unordered_names.push_back(name);
    }
  }
  std::sort(fi.unordered_names.begin(), fi.unordered_names.end());
  fi.unordered_names.erase(
      std::unique(fi.unordered_names.begin(), fi.unordered_names.end()),
      fi.unordered_names.end());
}

void collect_stream_vars(FileIndex& fi) {
  static const std::regex kStreamDecl(
      R"(\b(?:ofstream|ostream|ostringstream|fstream|stringstream)\b\s*&?\s*(\w+))");
  static const std::regex kFileDecl(R"(\bFILE\s*\*\s*(\w+))");
  for (const auto* re : {&kStreamDecl, &kFileDecl}) {
    auto begin = std::sregex_iterator(fi.blanked.begin(), fi.blanked.end(),
                                      *re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      fi.stream_vars.push_back((*it)[1].str());
    }
  }
  std::sort(fi.stream_vars.begin(), fi.stream_vars.end());
  fi.stream_vars.erase(
      std::unique(fi.stream_vars.begin(), fi.stream_vars.end()),
      fi.stream_vars.end());
}

}  // namespace

bool region_writes_stream(const FileIndex& fi, std::size_t begin,
                          std::size_t end) {
  static const std::regex kPrintf(
      R"(\b(?:fprintf|printf|fputs|fputc|fwrite)\s*\()");
  const std::string body = fi.blanked.substr(begin, end - begin);
  if (std::regex_search(body, kPrintf)) return true;
  static const std::regex kShift(R"((\w+)\s*<<)");
  auto it = std::sregex_iterator(body.begin(), body.end(), kShift);
  for (; it != std::sregex_iterator(); ++it) {
    if (std::binary_search(fi.stream_vars.begin(), fi.stream_vars.end(),
                           (*it)[1].str())) {
      return true;
    }
  }
  return false;
}

namespace {

void collect_stream_writers(FileIndex& fi) {
  for (const FunctionDef& fn : fi.functions) {
    if (region_writes_stream(fi, fn.body_begin, fn.body_end)) {
      fi.stream_writers.push_back(fn.name);
    }
  }
  std::sort(fi.stream_writers.begin(), fi.stream_writers.end());
  fi.stream_writers.erase(
      std::unique(fi.stream_writers.begin(), fi.stream_writers.end()),
      fi.stream_writers.end());
}

Suppressions parse_suppressions(const std::vector<std::string>& raw_lines) {
  Suppressions sup;
  static const std::regex kAllow(
      R"(hblint:\s*(allow|allow-file)\(([^)]*)\))");
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    auto begin = std::sregex_iterator(raw_lines[i].begin(),
                                      raw_lines[i].end(), kAllow);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      std::stringstream rules((*it)[2].str());
      std::string rule;
      while (std::getline(rules, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                   rule.end());
        if (rule.empty()) continue;
        if ((*it)[1].str() == "allow-file") {
          sup.file_allows.push_back(rule);
        } else {
          sup.line_allows.emplace_back(rule, i + 1);
        }
      }
    }
  }
  return sup;
}

}  // namespace

bool Suppressions::allows(const std::string& rule, std::size_t line) const {
  for (const auto& r : file_allows) {
    if (r == rule || r == "*") return true;
  }
  for (const auto& [r, l] : line_allows) {
    if (l == line && (r == rule || r == "*")) return true;
  }
  return false;
}

std::string repo_relative(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  std::size_t best = npos;
  for (const char* root : {"src/", "tools/", "tests/"}) {
    const std::string needle = std::string("/") + root;
    const std::size_t at = p.rfind(needle);
    if (at != npos && (best == npos || at + 1 > best)) best = at + 1;
    if (p.rfind(root, 0) == 0 && best == npos) best = 0;
  }
  return best == npos ? p : p.substr(best);
}

std::string subsystem_of(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return {};
  const std::size_t slash = rel.find('/', 4);
  if (slash == npos) return {};
  return rel.substr(4, slash - 4);
}

FileIndex build_file_index(const std::string& path,
                           const std::string& content) {
  FileIndex fi;
  fi.path = path;

  // Fixture pragmas: `hblint-path:` substitutes the path used for
  // scope/subsystem decisions; `hblint-scope:` overrides the scope.
  std::string effective = path;
  static const std::regex kPathPragma(R"(hblint-path:\s*([\w./\\-]+))");
  std::smatch pm;
  if (std::regex_search(content, pm, kPathPragma)) {
    effective = pm[1].str();
  }
  fi.rel = repo_relative(effective);
  fi.subsystem = subsystem_of(fi.rel);
  fi.is_header = effective.ends_with(".hpp") || effective.ends_with(".hh") ||
                 effective.ends_with(".h");
  fi.in_obs = effective.find("obs/") != npos ||
              effective.find("obs\\") != npos;
  fi.scope = scope_of_path(effective);
  static const std::regex kScopePragma(
      R"(hblint-scope:\s*(src|obs|tools|tests))");
  std::smatch m;
  if (std::regex_search(content, m, kScopePragma)) {
    const std::string s = m[1].str();
    fi.scope = (s == "src" || s == "obs") ? Scope::kLibrary
               : s == "tools"             ? Scope::kTools
                                          : Scope::kTests;
    if (s == "src") fi.in_obs = false;
    if (s == "obs") fi.in_obs = true;
  }

  fi.blanked = lex::blank_noncode(content);
  fi.lines = lex::split_lines(fi.blanked);
  const std::vector<std::string> raw_lines = lex::split_lines(content);
  fi.suppressions = parse_suppressions(raw_lines);
  collect_includes(raw_lines, fi);
  collect_functions(fi);
  collect_observer_sigs(fi);
  collect_unordered_names(fi);
  collect_stream_vars(fi);
  collect_stream_writers(fi);
  return fi;
}

RepoIndex build_repo_index(const std::vector<std::string>& paths) {
  RepoIndex repo;
  repo.files.reserve(paths.size());
  for (const std::string& p : paths) {
    // Unreadable files are reported by lint_file/lint_tree; here they just
    // produce an empty index.
    std::string content;
    {
      std::ifstream in(p, std::ios::binary);
      if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        content = buf.str();
      }
    }
    repo.files.push_back(build_file_index(p, content));
  }
  for (const FileIndex& fi : repo.files) {
    for (const std::string& w : fi.stream_writers) {
      repo.stream_writers.insert(w);
    }
    if (!fi.is_header) continue;
    for (const ObserverSig& sig : fi.observer_sigs) {
      std::vector<ObserverKind> kinds;
      kinds.reserve(sig.observers.size());
      for (const ObserverParam& p : sig.observers) kinds.push_back(p.kind);
      auto& sigs = repo.header_sigs[sig.name];
      if (std::find(sigs.begin(), sigs.end(), kinds) == sigs.end()) {
        sigs.push_back(std::move(kinds));
      }
    }
  }
  return repo;
}

}  // namespace hblint
