#include "hblint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <string>

#include "hblint/lexer.hpp"

namespace hblint {
namespace {

constexpr std::size_t npos = std::string::npos;

struct Ctx {
  const FileIndex* fi = nullptr;
  const RepoIndex* repo = nullptr;
  std::vector<Diagnostic>* out = nullptr;

  void report(std::size_t line, const char* rule, std::string message) const {
    out->push_back({fi->path, line, rule, std::move(message)});
  }
  void report_at(std::size_t pos, const char* rule,
                 std::string message) const {
    report(lex::line_of(fi->blanked, pos), rule, std::move(message));
  }
};

/// Applies `re` line by line and reports each match.
void flag_lines(const Ctx& ctx, const std::regex& re, const char* rule,
                const std::string& message) {
  for (std::size_t i = 0; i < ctx.fi->lines.size(); ++i) {
    if (std::regex_search(ctx.fi->lines[i], re)) {
      ctx.report(i + 1, rule, message);
    }
  }
}

// ---------------------------------------------------------------------------
// v1 rules: banned nondeterminism sources, resource conventions, obs
// conventions. Unchanged semantics, now reading the index.
// ---------------------------------------------------------------------------

void rule_banned_sources(const Ctx& ctx) {
  static const std::regex kRand(
      R"((^|[^\w:])(std\s*::\s*)?(rand|srand)\s*\()");
  flag_lines(ctx, kRand, "no-rand",
             "banned nondeterminism source; seed a std::mt19937_64 from the "
             "run's config instead");
  static const std::regex kTime(R"((^|[^\w])(std\s*::\s*)?time\s*\()");
  flag_lines(ctx, kTime, "no-time-seed",
             "time() reads the wall clock; results must be a pure function "
             "of the config/seed");
  static const std::regex kRandomDevice(R"(\brandom_device\b)");
  flag_lines(ctx, kRandomDevice, "no-random-device",
             "std::random_device is nondeterministic; accept a seed and use "
             "std::mt19937_64 (suppress only at a documented seeded-RNG "
             "construction site)");
}

void rule_no_raw_new(const Ctx& ctx) {
  static const std::regex kNew(R"(\bnew\b)");
  flag_lines(ctx, kNew, "no-raw-new",
             "raw new; use a container or std::make_unique");
  // `= delete` (deleted functions) is legal C++ hygiene; only flag delete
  // applied to an operand.
  for (std::size_t i = 0; i < ctx.fi->lines.size(); ++i) {
    const std::string& line = ctx.fi->lines[i];
    for (std::size_t pos = line.find("delete"); pos != npos;
         pos = line.find("delete", pos + 1)) {
      if (pos > 0 && lex::is_word(line[pos - 1])) continue;
      if (pos + 6 < line.size() && lex::is_word(line[pos + 6])) continue;
      std::size_t left = pos;
      while (left > 0 && std::isspace(static_cast<unsigned char>(
                             line[left - 1]))) {
        --left;
      }
      if (left > 0 && line[left - 1] == '=') continue;
      ctx.report(i + 1, "no-raw-new",
                 "raw delete; owning containers/smart pointers free their "
                 "storage themselves");
    }
  }
}

void rule_unordered_iteration(const Ctx& ctx) {
  for (const std::string& name : ctx.fi->unordered_names) {
    const std::regex range_for(R"(for\s*\([^)]*:\s*\*?)" + name +
                               R"(\s*\))");
    flag_lines(ctx, range_for, "unordered-iteration",
               "range-for over unordered container '" + name +
                   "': iteration order is a hash-table implementation "
                   "detail; extract into a vector, sort, then iterate "
                   "(or suppress if order provably cannot reach results "
                   "or telemetry)");
  }
}

/// Entry points whose declarations must keep the trailing
/// `obs::Sink* = nullptr` observability parameter.
const char* const kSinkEntryPoints[] = {
    "run_simulation", "run_simulation_with_fault_events",
    "run_simulation_sharded", "run_wormhole", "run_protocol",
    "route_around_faults", "hb_greedy_broadcast",
    "hb_structured_broadcast",
};

void rule_sink_default(const Ctx& ctx) {
  const std::string& blanked = ctx.fi->blanked;
  // (a) Every `obs::Sink*` parameter in a header must be defaulted to
  // nullptr: a caller must never be forced to thread observability through.
  static const std::regex kSinkParam(R"(obs\s*::\s*Sink\s*\*)");
  static const std::regex kDefaulted(R"(=\s*nullptr)");
  auto begin = std::sregex_iterator(blanked.begin(), blanked.end(),
                                    kSinkParam);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::size_t p = static_cast<std::size_t>(it->position()) +
                    static_cast<std::size_t>(it->length());
    // The parameter's text ends at a top-level ',', ')' or ';'.
    int depth = 0;
    std::size_t end = p;
    while (end < blanked.size()) {
      const char c = blanked[end];
      if (c == '(' || c == '<' || c == '{') ++depth;
      if (c == ')' || c == '>' || c == '}') {
        if (depth == 0) break;
        --depth;
      }
      if ((c == ',' || c == ';') && depth == 0) break;
      ++end;
    }
    const std::string param = blanked.substr(p, end - p);
    if (!std::regex_search(param, kDefaulted)) {
      ctx.report_at(static_cast<std::size_t>(it->position()), "sink-default",
                    "obs::Sink* parameter in a header must default to "
                    "nullptr (observability is opt-in at every call site)");
    }
  }
  // (b) Known simulator/broadcast entry points must carry the parameter at
  // all -- removing it entirely would otherwise pass check (a).
  for (const char* name : kSinkEntryPoints) {
    const std::regex decl(std::string(R"(\b)") + name + R"(\s*\()");
    auto dbegin = std::sregex_iterator(blanked.begin(), blanked.end(), decl);
    for (auto it = dbegin; it != std::sregex_iterator(); ++it) {
      std::size_t open = static_cast<std::size_t>(it->position()) +
                         static_cast<std::size_t>(it->length()) - 1;
      const std::size_t close = lex::match_forward(blanked, open, '(', ')');
      if (close == npos) continue;
      const std::string params = blanked.substr(open, close - open);
      static const std::regex kSinkDefaulted(
          R"(Sink\s*\*\s*\w*\s*=\s*nullptr)");
      if (!std::regex_search(params, kSinkDefaulted)) {
        ctx.report_at(
            static_cast<std::size_t>(it->position()), "sink-default",
            std::string("entry point '") + name +
                "' must keep its trailing `obs::Sink* = nullptr` parameter");
      }
    }
  }
}

void rule_wall_clock(const Ctx& ctx) {
  static const std::regex kClock(
      R"(\b(system_clock|steady_clock|high_resolution_clock|clock_gettime|gettimeofday)\b)");
  flag_lines(ctx, kClock, "no-wall-clock",
             "wall clock in library code; simulators are cycle-based and "
             "deterministic, timing belongs in bench/");
  static const std::regex kChrono(R"(\bchrono\b)");
  flag_lines(ctx, kChrono, "wall-clock-outside-obs",
             "std::chrono outside src/obs/; engines count cycles -- only "
             "the telemetry layer may touch time");
}

void rule_bare_assert(const Ctx& ctx) {
  static const std::regex kAssert(R"(\bassert\s*\()");
  flag_lines(ctx, kAssert, "no-bare-assert",
             "bare assert(); use HBNET_CHECK (always on) or HBNET_DCHECK "
             "(checked builds) from check/check.hpp");
}

void rule_trace_macro_only(const Ctx& ctx) {
  static const std::regex kRecorder(R"(\bTraceRecorder\b)");
  flag_lines(ctx, kRecorder, "trace-macro-only",
             "direct TraceRecorder use in library code; emit through "
             "the HBNET_TRACE_* macros so -DHBNET_TRACE=OFF compiles "
             "the site out");
  static const std::regex kTraceCall(R"((\.|->)\s*trace\s*\(\s*\))");
  flag_lines(ctx, kTraceCall, "trace-macro-only",
             "direct Sink::trace() call in library code; emit through "
             "the HBNET_TRACE_* macros");
}

// ---------------------------------------------------------------------------
// layering: the subsystem DAG, from the include graph.
//
//   tier 0: obs, par, check        (leaf utilities; no upward includes)
//   tier 1: core, graph, topology  (domain: Cayley graphs, HB structure)
//   tier 2: sim, analysis, campaign, distsim (engines and orchestration)
//
// A src/ file may include headers of its own tier or lower, never higher.
// ---------------------------------------------------------------------------

int subsystem_tier(const std::string& sub) {
  static const std::map<std::string, int> kTier = {
      {"obs", 0},  {"par", 0},      {"check", 0},
      {"core", 1}, {"graph", 1},    {"topology", 1},
      {"sim", 2},  {"analysis", 2}, {"campaign", 2},
      {"distsim", 2}};
  const auto it = kTier.find(sub);
  return it == kTier.end() ? -1 : it->second;
}

void rule_layering(const Ctx& ctx) {
  const int my_tier = subsystem_tier(ctx.fi->subsystem);
  if (my_tier < 0) return;  // not under a known src/ subsystem
  for (const IncludeEdge& inc : ctx.fi->includes) {
    const std::size_t slash = inc.target.find('/');
    if (slash == npos) continue;
    const std::string target_sub = inc.target.substr(0, slash);
    const int target_tier = subsystem_tier(target_sub);
    if (target_tier < 0) continue;
    if (target_tier > my_tier) {
      ctx.report(inc.line, "layering",
                 "src/" + ctx.fi->subsystem + " (tier " +
                     std::to_string(my_tier) + ") must not include \"" +
                     inc.target + "\" (tier " +
                     std::to_string(target_tier) +
                     "); the subsystem DAG is obs/par/check -> "
                     "core/graph/topology -> sim/analysis/campaign/distsim");
    }
  }
}

// ---------------------------------------------------------------------------
// parallel-capture: mutable by-reference captures in lambdas handed to
// par::parallel_for / parallel_for_chunks / parallel_reduce.
//
// The determinism contract allows a parallel body to update shared state
// only through order-independent primitives: atomics, per-worker or
// per-index disjoint slots, or the sync::Exchange. A plain `[&]` capture
// written without one of those is exactly the iteration-order bug class
// the contract forbids.
// ---------------------------------------------------------------------------

struct Lambda {
  bool default_ref = false;
  bool default_copy = false;
  std::vector<std::string> ref_captures;
  std::vector<std::string> params;
  std::size_t body_begin = 0, body_end = 0;
};

/// Parses the lambda whose '[' is at `pos`; returns false when `pos` does
/// not start a lambda we can parse.
bool parse_lambda(const std::string& text, std::size_t pos, Lambda& out) {
  const std::size_t cap_end = lex::match_forward(text, pos, '[', ']');
  if (cap_end == npos) return false;
  // Capture items, top-level comma split.
  std::size_t item = pos + 1;
  while (item < cap_end) {
    std::size_t end = item;
    int depth = 0;
    while (end < cap_end) {
      const char c = text[end];
      if (c == '(' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == '}' || c == '>') --depth;
      if (c == ',' && depth == 0) break;
      ++end;
    }
    std::string tok = text.substr(item, end - item);
    const auto strip = [](std::string s) {
      const auto b = s.find_first_not_of(" \t\n");
      const auto e = s.find_last_not_of(" \t\n");
      return b == npos ? std::string() : s.substr(b, e - b + 1);
    };
    tok = strip(tok);
    if (tok == "&") {
      out.default_ref = true;
    } else if (tok == "=") {
      out.default_copy = true;
    } else if (!tok.empty() && tok[0] == '&') {
      std::string name = strip(tok.substr(1));
      const std::size_t eq = name.find('=');  // init capture &x = expr
      if (eq != npos) name = strip(name.substr(0, eq));
      if (!name.empty()) out.ref_captures.push_back(name);
    }
    item = end + 1;
  }
  // Optional parameter list.
  std::size_t p = lex::next_nonspace(text, cap_end + 1);
  if (p != npos && text[p] == '(') {
    const std::size_t close = lex::match_forward(text, p, '(', ')');
    if (close == npos) return false;
    std::size_t seg = p + 1;
    while (seg < close) {
      std::size_t end = seg;
      int depth = 0;
      while (end < close) {
        const char c = text[end];
        if (c == '(' || c == '{' || c == '<' || c == '[') ++depth;
        if (c == ')' || c == '}' || c == '>' || c == ']') --depth;
        if (c == ',' && depth == 0) break;
        ++end;
      }
      // Parameter name: last identifier before any '=' default.
      std::string segment = text.substr(seg, end - seg);
      const std::size_t eq = segment.find('=');
      if (eq != npos) segment = segment.substr(0, eq);
      const auto toks = lex::identifiers(segment, 0, segment.size());
      if (!toks.empty()) out.params.push_back(toks.back().text);
      seg = end + 1;
    }
    p = lex::next_nonspace(text, close + 1);
  }
  // Skip specifiers (mutable, noexcept, -> ret) to the body brace.
  while (p != npos && p < text.size() && text[p] != '{') {
    if (text[p] == ';' || text[p] == ')') return false;
    ++p;
    p = lex::next_nonspace(text, p);
  }
  if (p == npos || p >= text.size()) return false;
  const std::size_t body_end = lex::match_forward(text, p, '{', '}');
  if (body_end == npos) return false;
  out.body_begin = p + 1;
  out.body_end = body_end;
  return true;
}

bool is_decl_ban_word(const std::string& w) {
  static const char* const kBan[] = {
      "return", "co_return", "goto",   "case",   "throw",  "new",
      "delete", "else",      "sizeof", "typename", "using", "namespace",
      "co_yield", "co_await", "in",    "not",    "and",    "or"};
  for (const char* b : kBan) {
    if (w == b) return true;
  }
  return false;
}

/// From the ',' at `pos`, adds the remaining declarators of a
/// multi-declarator statement (`std::vector<N> a, b, c;`): identifier
/// after each top-level comma, skipping initializers, until ';'.
void add_chained_declarators(const std::string& text, std::size_t pos,
                             std::size_t end,
                             std::set<std::string>* locals) {
  while (pos < end && text[pos] == ',') {
    const std::size_t id = lex::next_nonspace(text, pos + 1);
    if (id == npos || id >= end || !lex::is_word(text[id]) ||
        std::isdigit(static_cast<unsigned char>(text[id]))) {
      return;
    }
    std::size_t ie = id;
    while (ie < end && lex::is_word(text[ie])) ++ie;
    locals->insert(text.substr(id, ie - id));
    // Skip the initializer (if any) to the next top-level ',' or the ';'.
    int depth = 0;
    std::size_t p = ie;
    while (p < end) {
      const char c = text[p];
      if (c == '(' || c == '{' || c == '[' || c == '<') ++depth;
      if (c == ')' || c == '}' || c == ']' || c == '>') --depth;
      if (depth == 0 && (c == ',' || c == ';')) break;
      ++p;
    }
    if (p >= end || text[p] == ';') return;
    pos = p;
  }
}

/// Names declared inside [begin, end): token-pair heuristic (previous
/// non-space char belongs to a type-ish token, next non-space char ends a
/// declarator), multi-declarator chains, plus structured bindings.
std::set<std::string> declared_locals(const std::string& text,
                                      std::size_t begin, std::size_t end) {
  std::set<std::string> locals;
  for (const lex::Token& t : lex::identifiers(text, begin, end)) {
    const std::size_t prev = lex::prev_nonspace(text, t.pos);
    if (prev == npos || prev < begin) continue;
    const char pc = text[prev];
    const bool type_ish =
        lex::is_word(pc) || pc == '>' || pc == '*' ||
        (pc == '&' && !(prev > begin && text[prev - 1] == '&'));
    if (!type_ish) continue;
    if (lex::is_word(pc)) {
      const std::string prev_word = lex::word_ending_at(text, prev + 1);
      if (is_decl_ban_word(prev_word)) continue;
    }
    const std::size_t after = t.pos + t.text.size();
    const std::size_t nx = lex::next_nonspace(text, after);
    if (nx == npos) continue;
    const char nc = text[nx];
    const bool ender =
        nc == ';' || nc == ',' || nc == ')' || nc == ':' || nc == '{' ||
        nc == '(' || nc == '[' ||
        (nc == '=' && (nx + 1 >= text.size() || text[nx + 1] != '='));
    if (!ender) continue;
    locals.insert(t.text);
    // `std::vector<N> frontier, fringe;` declares fringe too; same when the
    // first declarator carries an initializer.
    if (nc == ',') {
      add_chained_declarators(text, nx, end, &locals);
    } else if (nc == '=') {
      int depth = 0;
      std::size_t p = nx;
      while (p < end) {
        const char c = text[p];
        if (c == '(' || c == '{' || c == '[' || c == '<') ++depth;
        if (c == ')' || c == '}' || c == ']' || c == '>') --depth;
        if (depth == 0 && (c == ',' || c == ';')) break;
        ++p;
      }
      if (p < end && text[p] == ',') {
        add_chained_declarators(text, p, end, &locals);
      }
    }
  }
  // Structured bindings: auto [a, b] = / auto& [k, v] :
  static const std::regex kBinding(R"(\bauto\s*&{0,2}\s*\[([^\]]*)\])");
  const std::string body = text.substr(begin, end - begin);
  auto it = std::sregex_iterator(body.begin(), body.end(), kBinding);
  for (; it != std::sregex_iterator(); ++it) {
    const std::string inner = (*it)[1].str();
    for (const lex::Token& t : lex::identifiers(inner, 0, inner.size())) {
      locals.insert(t.text);
    }
  }
  return locals;
}

const char* const kMutatingMembers[] = {
    "push_back", "emplace_back", "push", "push_front", "emplace",
    "emplace_front", "pop", "pop_back", "pop_front", "insert", "erase",
    "clear", "resize", "reserve", "assign", "append", "swap", "merge",
    "store", "bump"};

bool is_mutating_member(const std::string& m) {
  for (const char* k : kMutatingMembers) {
    if (m == k) return true;
  }
  return false;
}

/// Classifies the use of the identifier token at `t` inside blanked text:
/// returns true when it is written (assigned, compound-assigned,
/// incremented, or mutated through a member call), filling `subscripts`
/// with the text of any [..] indices between the name and the mutation.
bool is_write_site(const std::string& text, const lex::Token& t,
                   std::vector<std::string>* subscripts) {
  bool pre_incremented = false;
  const std::size_t prev = lex::prev_nonspace(text, t.pos);
  if (prev != npos) {
    const char pc = text[prev];
    if (pc == '.' || pc == '>' || pc == ':' || pc == '~') return false;
    // Pre-increment / pre-decrement (applies through any subscript chain,
    // so keep collecting the indices before returning).
    pre_incremented = (pc == '+' && prev > 0 && text[prev - 1] == '+') ||
                      (pc == '-' && prev > 0 && text[prev - 1] == '-');
  }
  std::size_t p = t.pos + t.text.size();
  // Swallow subscript and subscripted-member chains: name[i].field[j]...
  // (a plain member access with no following subscript is left for the
  // mutating-member-call check below).
  while (true) {
    const std::size_t nx = lex::next_nonspace(text, p);
    if (nx == npos) break;
    if (text[nx] == '.') {
      const std::size_t ms = lex::next_nonspace(text, nx + 1);
      if (ms == npos || !lex::is_word(text[ms])) break;
      std::size_t me = ms;
      while (me < text.size() && lex::is_word(text[me])) ++me;
      const std::size_t after = lex::next_nonspace(text, me);
      if (after == npos || text[after] != '[') break;
      p = me;
      continue;
    }
    if (text[nx] != '[') break;
    const std::size_t close = lex::match_forward(text, nx, '[', ']');
    if (close == npos) return false;
    if (subscripts != nullptr) {
      subscripts->push_back(text.substr(nx + 1, close - nx - 1));
    }
    p = close + 1;
  }
  if (pre_incremented) return true;
  const std::size_t nx = lex::next_nonspace(text, p);
  if (nx == npos) return false;
  const char c = text[nx];
  const char c1 = nx + 1 < text.size() ? text[nx + 1] : '\0';
  const char c2 = nx + 2 < text.size() ? text[nx + 2] : '\0';
  if (c == '=' && c1 != '=') return true;
  if ((c == '+' && c1 == '+') || (c == '-' && c1 == '-')) return true;
  if ((c == '+' || c == '-' || c == '*' || c == '/' || c == '%' ||
       c == '^') &&
      c1 == '=') {
    return true;
  }
  if ((c == '&' && c1 == '=') || (c == '|' && c1 == '=')) return true;
  if ((c == '<' && c1 == '<' && c2 == '=') ||
      (c == '>' && c1 == '>' && c2 == '=')) {
    return true;
  }
  if (c == '.' || (c == '-' && c1 == '>')) {
    const std::size_t mstart = c == '.' ? nx + 1 : nx + 2;
    const std::size_t ms = lex::next_nonspace(text, mstart);
    if (ms == npos || !lex::is_word(text[ms])) return false;
    std::size_t me = ms;
    while (me < text.size() && lex::is_word(text[me])) ++me;
    const std::string member = text.substr(ms, me - ms);
    const std::size_t paren = lex::next_nonspace(text, me);
    if (paren != npos && text[paren] == '(' && is_mutating_member(member)) {
      return true;
    }
  }
  return false;
}

/// True when `name`'s declaration (searched line-wise across the file)
/// mentions one of the order-independent shared-state types.
bool has_sanctioned_type(const FileIndex& fi, const std::string& name) {
  static const char* const kSanctioned[] = {
      "atomic", "mutex", "Exchange", "Slot", "ProgressBoard",
      "FlightRecorder", "condition_variable", "once_flag", "ThreadPool"};
  for (const std::string& line : fi.lines) {
    std::size_t at = line.find(name);
    bool hit = false;
    while (at != npos) {
      const bool left_ok = at == 0 || !lex::is_word(line[at - 1]);
      const std::size_t after = at + name.size();
      const bool right_ok = after >= line.size() || !lex::is_word(line[after]);
      if (left_ok && right_ok) {
        hit = true;
        break;
      }
      at = line.find(name, at + 1);
    }
    if (!hit) continue;
    for (const char* s : kSanctioned) {
      if (line.find(s) != npos) return true;
    }
  }
  return false;
}

void rule_parallel_capture(const Ctx& ctx) {
  if (ctx.fi->subsystem == "par") return;  // the pool implements the API
  const std::string& text = ctx.fi->blanked;
  static const std::regex kCall(
      R"(\b(parallel_for_chunks|parallel_for|parallel_reduce)\s*\()");
  auto begin = std::sregex_iterator(text.begin(), text.end(), kCall);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position()) +
                             static_cast<std::size_t>(it->length()) - 1;
    const std::size_t close = lex::match_forward(text, open, '(', ')');
    if (close == npos) continue;
    // Every lambda literal that is a DIRECT argument of the call: preceded
    // by '(' or ',' at paren depth 1. Lambdas nested deeper (an argument to
    // some call made inside the body) answer to their own enclosing
    // contract, not this one.
    std::vector<std::size_t> lambda_starts;
    {
      int depth = 0;
      for (std::size_t p = open; p < close; ++p) {
        const char c = text[p];
        if (c == '(' || c == '{') ++depth;
        if (c == ')' || c == '}') --depth;
        if (c == '[' && depth == 1) {
          const std::size_t prev = lex::prev_nonspace(text, p);
          if (prev != npos && (text[prev] == '(' || text[prev] == ',')) {
            lambda_starts.push_back(p);
          }
        }
      }
    }
    for (const std::size_t b : lambda_starts) {
      Lambda lam;
      if (!parse_lambda(text, b, lam)) continue;
      if (!lam.default_ref && lam.ref_captures.empty()) continue;
      const std::set<std::string> locals =
          declared_locals(text, lam.body_begin, lam.body_end);
      std::set<std::string> reported;
      for (const lex::Token& t :
           lex::identifiers(text, lam.body_begin, lam.body_end)) {
        if (reported.count(t.text) != 0) continue;
        if (locals.count(t.text) != 0) continue;
        if (std::find(lam.params.begin(), lam.params.end(), t.text) !=
            lam.params.end()) {
          continue;
        }
        const bool captured_by_ref =
            std::find(lam.ref_captures.begin(), lam.ref_captures.end(),
                      t.text) != lam.ref_captures.end() ||
            (lam.default_ref &&
             std::find(lam.params.begin(), lam.params.end(), t.text) ==
                 lam.params.end());
        if (!captured_by_ref) continue;
        std::vector<std::string> subscripts;
        if (!is_write_site(text, t, &subscripts)) continue;
        // Disjoint-slot writes: any index derived from the lambda's own
        // parameters or locals keeps workers on disjoint data.
        bool indexed_locally = false;
        for (const std::string& sub : subscripts) {
          for (const lex::Token& st :
               lex::identifiers(sub, 0, sub.size())) {
            if (locals.count(st.text) != 0 ||
                std::find(lam.params.begin(), lam.params.end(), st.text) !=
                    lam.params.end()) {
              indexed_locally = true;
            }
          }
        }
        if (indexed_locally) continue;
        if (has_sanctioned_type(*ctx.fi, t.text)) continue;
        reported.insert(t.text);
        ctx.report_at(
            t.pos, "parallel-capture",
            "lambda passed to par::parallel_for*/parallel_reduce mutates "
            "by-reference capture '" +
                t.text +
                "' from concurrent workers; the determinism contract "
                "allows only atomics, per-worker/per-index disjoint slots, "
                "or sync::Exchange pushes");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// signature-contract: observer parameters (obs::Sink*, obs::ProgressBoard*)
// agree between header declarations and .cpp definitions, and defaults
// live only in headers. The cross-file half lives in run_tree_rules.
// ---------------------------------------------------------------------------

void rule_signature_contract_file(const Ctx& ctx) {
  for (const ObserverSig& sig : ctx.fi->observer_sigs) {
    if (ctx.fi->is_header) {
      for (const ObserverParam& p : sig.observers) {
        if (p.kind == ObserverKind::kProgressBoard && !p.has_default) {
          ctx.report_at(p.pos, "signature-contract",
                        "obs::ProgressBoard* parameter of '" + sig.name +
                            "' in a header must default to nullptr "
                            "(progress surfaces are opt-in observers)");
        }
      }
    } else {
      for (const ObserverParam& p : sig.observers) {
        if (p.has_default) {
          ctx.report_at(p.pos, "signature-contract",
                        "observer parameter of '" + sig.name +
                            "' carries a default in a .cpp; defaults "
                            "belong in the header declaration only");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// emission-order: extends unordered-iteration one call level. A loop over
// an unordered container (range-for or explicit .begin() iterator loop)
// whose body writes to a file/stream -- directly or by calling a function
// that does -- emits bytes in hash order.
// ---------------------------------------------------------------------------

/// True when [begin, end) calls a function from `writers`.
bool calls_stream_writer(const Ctx& ctx, std::size_t begin,
                         std::size_t end) {
  const std::string& text = ctx.fi->blanked;
  for (const lex::Token& t : lex::identifiers(text, begin, end)) {
    const std::size_t nx = lex::next_nonspace(text, t.pos + t.text.size());
    if (nx == npos || text[nx] != '(') continue;
    if (ctx.repo != nullptr) {
      if (ctx.repo->stream_writers.count(t.text) != 0) return true;
    } else if (std::binary_search(ctx.fi->stream_writers.begin(),
                                  ctx.fi->stream_writers.end(), t.text)) {
      return true;
    }
  }
  return false;
}

void rule_emission_order(const Ctx& ctx) {
  const std::string& text = ctx.fi->blanked;
  for (const std::string& name : ctx.fi->unordered_names) {
    // Both loop shapes over the container; the iterator form is invisible
    // to the plain unordered-iteration rule.
    const std::regex loops(
        R"(for\s*\(([^()]|\([^()]*\))*(:\s*\*?)" + name +
        R"(\s*\)|[^()]*\b)" + name + R"(\s*\.\s*c?begin\s*\(\s*\)))");
    auto it = std::sregex_iterator(text.begin(), text.end(), loops);
    for (; it != std::sregex_iterator(); ++it) {
      const std::size_t for_pos = static_cast<std::size_t>(it->position());
      const std::size_t open = text.find('(', for_pos);
      if (open == npos) continue;
      const std::size_t close = lex::match_forward(text, open, '(', ')');
      if (close == npos) continue;
      std::size_t body_begin = 0, body_end = 0;
      const std::size_t nx = lex::next_nonspace(text, close + 1);
      if (nx == npos) continue;
      if (text[nx] == '{') {
        const std::size_t bend = lex::match_forward(text, nx, '{', '}');
        if (bend == npos) continue;
        body_begin = nx + 1;
        body_end = bend;
      } else {
        body_begin = nx;
        body_end = std::min(text.size(), text.find(';', nx));
      }
      if (region_writes_stream(*ctx.fi, body_begin, body_end) ||
          calls_stream_writer(ctx, body_begin, body_end)) {
        ctx.report_at(for_pos, "emission-order",
                      "file/stream write reachable from a loop over "
                      "unordered container '" +
                          name +
                          "' emits bytes in hash order; extract into a "
                          "vector and sort before writing");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// exchange-invariant: in src/sim, every cross-shard packet move goes
// through sync::Exchange::push. Writing directly into a structure indexed
// by shard_of(...) races with the owning worker and -- even when it
// happens to be safe -- bypasses the ascending-sender delivery order that
// keeps results byte-identical across shard counts.
// ---------------------------------------------------------------------------

void rule_exchange_invariant(const Ctx& ctx) {
  if (ctx.fi->subsystem != "sim") return;
  const std::string& text = ctx.fi->blanked;
  static const std::regex kShardIndex(
      R"((\w+)\s*\[[^\][]*\bshard_of\b[^\]]*\])");
  auto it = std::sregex_iterator(text.begin(), text.end(), kShardIndex);
  for (; it != std::sregex_iterator(); ++it) {
    const std::string base = (*it)[1].str();
    if (has_sanctioned_type(*ctx.fi, base) &&
        !base.empty()) {  // Exchange cells are the sanctioned path
      continue;
    }
    const std::size_t pos = static_cast<std::size_t>(it->position());
    // (a) Mutation directly through the subscript.
    lex::Token t{base, pos};
    if (is_write_site(text, t, nullptr)) {
      ctx.report_at(pos, "exchange-invariant",
                    "direct write into '" + base +
                        "[shard_of(...)]' bypasses the sync::Exchange; "
                        "push through the exchange so delivery stays in "
                        "canonical ascending-sender order");
      continue;
    }
    // (b) Binding a mutable reference to another shard's state.
    const std::size_t prev = lex::prev_nonspace(text, pos);
    if (prev != npos && text[prev] == '=') {
      const std::size_t lhs_end = lex::prev_nonspace(text, prev);
      if (lhs_end != npos && lex::is_word(text[lhs_end])) {
        std::size_t lhs_begin = 0;
        (void)lex::word_ending_at(text, lhs_end + 1, &lhs_begin);
        const std::size_t amp = lex::prev_nonspace(text, lhs_begin);
        if (amp != npos && text[amp] == '&') {
          const std::size_t decl_start =
              text.rfind('\n', amp) == npos ? 0 : text.rfind('\n', amp);
          const std::string decl =
              text.substr(decl_start, amp - decl_start);
          if (decl.find("const") == npos) {
            ctx.report_at(pos, "exchange-invariant",
                          "mutable reference bound to '" + base +
                              "[shard_of(...)]' aliases another shard's "
                              "state; cross-shard moves must go through "
                              "sync::Exchange::push");
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// provider-generic: once a graph algorithm grows an AdjacencyProvider&
// overload, its `const Graph&` twin must be a thin CSR adapter -- delegate
// through CsrAdjacency -- not a second implementation that silently drifts
// from the provider-generic one. Overloads are paired positionally: a
// Graph& parameter at index i pairs with an AdjacencyProvider& parameter
// at the same index in another definition of the same name, so unrelated
// same-name functions (validate(const Graph&) vs
// validate(const SweepState&, const AdjacencyProvider&)) stay exempt.
// ---------------------------------------------------------------------------

struct ProviderOverload {
  std::size_t name_pos = 0;
  std::size_t params_end = 0;  // at the ')'
  std::size_t body_end = 0;    // at the '}' (definitions only)
  std::vector<std::size_t> graph_params;     // parameter indices
  std::vector<std::size_t> provider_params;  // parameter indices
};

void rule_provider_generic(const Ctx& ctx) {
  const std::string& text = ctx.fi->blanked;
  static const std::regex kFn(R"(\b([A-Za-z_]\w*)\s*\()");
  static const std::regex kGraphParam(R"(\bGraph\s*&)");
  std::map<std::string, std::vector<ProviderOverload>> fns;
  auto begin = std::sregex_iterator(text.begin(), text.end(), kFn);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (is_decl_ban_word(name)) continue;
    const std::size_t open = static_cast<std::size_t>(it->position()) +
                             static_cast<std::size_t>(it->length()) - 1;
    const std::size_t close = lex::match_forward(text, open, '(', ')');
    if (close == npos) continue;
    // Parameter segments at top level; classify each.
    ProviderOverload ov;
    ov.name_pos = static_cast<std::size_t>(it->position());
    ov.params_end = close;
    std::size_t seg = open + 1;
    std::size_t index = 0;
    while (seg < close) {
      std::size_t end = seg;
      int depth = 0;
      while (end < close) {
        const char c = text[end];
        if (c == '(' || c == '{' || c == '<' || c == '[') ++depth;
        if (c == ')' || c == '}' || c == '>' || c == ']') --depth;
        if (c == ',' && depth == 0) break;
        ++end;
      }
      const std::string segment = text.substr(seg, end - seg);
      if (segment.find("AdjacencyProvider") != npos) {
        ov.provider_params.push_back(index);
      } else if (std::regex_search(segment, kGraphParam)) {
        ov.graph_params.push_back(index);
      }
      ++index;
      seg = end + 1;
    }
    if (ov.graph_params.empty() && ov.provider_params.empty()) continue;
    // Definition? The signature runs into a '{' (possibly through a
    // member-init list / specifiers) before any ';'. Declarations and call
    // sites are skipped -- the contract binds implementations.
    std::size_t p = close + 1;
    std::size_t brace = npos;
    while (p < text.size()) {
      const char c = text[p];
      if (c == ';' || c == ')' || c == ',') break;
      if (c == '{') {
        brace = p;
        break;
      }
      ++p;
    }
    if (brace == npos) continue;
    ov.body_end = lex::match_forward(text, brace, '{', '}');
    if (ov.body_end == npos) continue;
    fns[name].push_back(std::move(ov));
  }
  for (const auto& [name, overloads] : fns) {
    for (const ProviderOverload& g : overloads) {
      if (g.graph_params.empty() || !g.provider_params.empty()) continue;
      // Positionally paired provider overload of the same name?
      bool paired = false;
      for (const ProviderOverload& pvd : overloads) {
        for (const std::size_t gi : g.graph_params) {
          if (std::find(pvd.provider_params.begin(),
                        pvd.provider_params.end(),
                        gi) != pvd.provider_params.end()) {
            paired = true;
          }
        }
      }
      if (!paired) continue;
      // The Graph& definition, from its parameter list through its body
      // (member-init lists included), must route through CsrAdjacency.
      const std::string region =
          text.substr(g.params_end, g.body_end - g.params_end);
      if (region.find("CsrAdjacency") == npos) {
        ctx.report_at(
            g.name_pos, "provider-generic",
            "'" + name +
                "' has an AdjacencyProvider& overload; the Graph& overload "
                "must delegate through CsrAdjacency instead of "
                "reimplementing the algorithm against the CSR arrays");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Catalogue and drivers.
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"no-rand",
     "std::rand/srand are banned; use a std::mt19937_64 seeded from config"},
    {"no-time-seed",
     "time() is banned (wall-clock seeds break run-to-run determinism)"},
    {"no-random-device",
     "std::random_device is banned outside explicitly suppressed seeded-RNG "
     "construction sites"},
    {"no-wall-clock",
     "wall clocks (system/steady/high_resolution_clock, clock_gettime, ...) "
     "are banned in library code; simulators count cycles, benches use the "
     "benchmark framework"},
    {"wall-clock-outside-obs",
     "std::chrono is confined to src/obs/ (the telemetry layer timestamps "
     "snapshots); every other library file is cycle-based and "
     "deterministic"},
    {"unordered-iteration",
     "no range-for over unordered_map/unordered_set; extract keys, sort, "
     "then iterate"},
    {"sink-default",
     "simulator/broadcast entry points keep a trailing obs::Sink* = nullptr "
     "parameter, and every header Sink* parameter is defaulted"},
    {"trace-macro-only",
     "hot paths emit traces via HBNET_TRACE_* macros only, never by calling "
     "the TraceRecorder directly"},
    {"no-raw-new",
     "no raw new/delete; use containers or std::make_unique"},
    {"no-bare-assert",
     "no bare assert() in src/; use HBNET_CHECK / HBNET_DCHECK "
     "(check/check.hpp)"},
    {"parallel-capture",
     "lambdas passed to par::parallel_for*/parallel_reduce must not mutate "
     "by-reference captures except atomics, per-worker/per-index disjoint "
     "slots, or sync::Exchange pushes"},
    {"layering",
     "the subsystem include DAG is obs/par/check -> core/graph/topology -> "
     "sim/analysis/campaign/distsim; a src/ file never includes a higher "
     "tier"},
    {"signature-contract",
     "observer parameters (obs::Sink*, obs::ProgressBoard*) match between "
     "header declaration and .cpp definition, with defaults only in "
     "headers"},
    {"emission-order",
     "no file/stream write reachable (within one call) from a loop over an "
     "unordered container; extract and sort first"},
    {"exchange-invariant",
     "in src/sim, cross-shard arena/frontier writes must go through the "
     "sync::Exchange primitives (canonical ascending-sender delivery)"},
    {"provider-generic",
     "a Graph& overload of a graph algorithm that also has an "
     "AdjacencyProvider& overload must delegate through CsrAdjacency, not "
     "reimplement the algorithm"},
};

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

void run_file_rules(const FileIndex& fi, const RepoIndex* repo,
                    std::vector<Diagnostic>& out) {
  Ctx ctx;
  ctx.fi = &fi;
  ctx.repo = repo;
  ctx.out = &out;

  rule_banned_sources(ctx);
  rule_no_raw_new(ctx);
  rule_unordered_iteration(ctx);

  if (fi.scope == Scope::kLibrary || fi.scope == Scope::kTools) {
    rule_parallel_capture(ctx);
    rule_emission_order(ctx);
  }

  if (fi.scope == Scope::kLibrary) {
    // The obs/ telemetry layer is the one library component allowed to read
    // clocks (snapshot timestamps, exporter cadence); everywhere else both
    // the clock types and <chrono> itself are banned.
    if (!fi.in_obs) {
      rule_wall_clock(ctx);
      rule_trace_macro_only(ctx);
    }
    rule_bare_assert(ctx);
    rule_layering(ctx);
    rule_signature_contract_file(ctx);
    rule_exchange_invariant(ctx);
    rule_provider_generic(ctx);
    if (fi.is_header) rule_sink_default(ctx);
  }
}

void run_tree_rules(const RepoIndex& repo, std::vector<Diagnostic>& out) {
  // signature-contract, cross-file half: every .cpp definition that carries
  // observer parameters must match some header declaration of the same
  // name (same observer kinds, same order). Internal helpers that never
  // appear in a header are exempt.
  for (const FileIndex& fi : repo.files) {
    if (fi.is_header || fi.scope != Scope::kLibrary) continue;
    for (const ObserverSig& sig : fi.observer_sigs) {
      if (!sig.is_definition) continue;
      const auto it = repo.header_sigs.find(sig.name);
      if (it == repo.header_sigs.end()) continue;
      std::vector<ObserverKind> kinds;
      kinds.reserve(sig.observers.size());
      for (const ObserverParam& p : sig.observers) kinds.push_back(p.kind);
      if (std::find(it->second.begin(), it->second.end(), kinds) ==
          it->second.end()) {
        out.push_back(
            {fi.path, sig.line, "signature-contract",
             "definition of '" + sig.name +
                 "' has observer parameters (Sink*/ProgressBoard*) that "
                 "match no header declaration of that name; keep the "
                 ".hpp and .cpp signatures in sync"});
      }
    }
  }
}

}  // namespace hblint
