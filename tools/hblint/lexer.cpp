#include "hblint/lexer.hpp"

#include <algorithm>
#include <cctype>

namespace hblint::lex {

std::string blank_noncode(const std::string& content) {
  std::string out = content;
  enum class St {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  St st = St::kCode;
  std::string raw_close;  // )delim" of the active raw string
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw string if preceded by R (and that R is not part of an
          // identifier like DIR).
          const bool raw =
              i > 0 && content[i - 1] == 'R' &&
              (i < 2 || (!std::isalnum(static_cast<unsigned char>(
                             content[i - 2])) &&
                         content[i - 2] != '_'));
          if (raw) {
            std::size_t p = i + 1;
            std::string delim;
            while (p < content.size() && content[p] != '(') {
              delim.push_back(content[p]);
              ++p;
            }
            raw_close = ")" + delim + "\"";
            st = St::kRawString;
          } else {
            st = St::kString;
          }
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not character literals.
          const bool digit_sep =
              i > 0 &&
              std::isdigit(static_cast<unsigned char>(content[i - 1])) &&
              std::isalnum(static_cast<unsigned char>(next));
          if (!digit_sep) st = St::kChar;
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < content.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < content.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRawString:
        if (content.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t k = 0; k < raw_close.size(); ++k) {
            if (content[i + k] != '\n') out[i + k] = ' ';
          }
          i += raw_close.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(pos, text.size())),
                            '\n'));
}

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t match_forward(const std::string& text, std::size_t pos,
                          char open, char close) {
  if (pos >= text.size() || text[pos] != open) return std::string::npos;
  int depth = 0;
  for (std::size_t i = pos; i < text.size(); ++i) {
    if (text[i] == open) ++depth;
    if (text[i] == close) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

std::size_t prev_nonspace(const std::string& text, std::size_t pos) {
  std::size_t i = std::min(pos, text.size());
  while (i > 0) {
    --i;
    if (std::isspace(static_cast<unsigned char>(text[i])) == 0) return i;
  }
  return std::string::npos;
}

std::size_t next_nonspace(const std::string& text, std::size_t pos) {
  for (std::size_t i = pos; i < text.size(); ++i) {
    if (std::isspace(static_cast<unsigned char>(text[i])) == 0) return i;
  }
  return std::string::npos;
}

std::string word_ending_at(const std::string& text, std::size_t end,
                           std::size_t* begin_out) {
  std::size_t begin = std::min(end, text.size());
  while (begin > 0 && is_word(text[begin - 1])) --begin;
  if (begin_out != nullptr) *begin_out = begin;
  return text.substr(begin, std::min(end, text.size()) - begin);
}

std::vector<Token> identifiers(const std::string& blanked, std::size_t begin,
                               std::size_t end) {
  std::vector<Token> out;
  end = std::min(end, blanked.size());
  std::size_t i = begin;
  while (i < end) {
    if (is_word(blanked[i]) &&
        std::isdigit(static_cast<unsigned char>(blanked[i])) == 0) {
      std::size_t j = i;
      while (j < end && is_word(blanked[j])) ++j;
      out.push_back({blanked.substr(i, j - i), i});
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace hblint::lex
