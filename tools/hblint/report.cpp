// hblint reporting layer: the committed baseline format and the SARIF
// 2.1.0 export consumed by GitHub code scanning.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "hblint/hblint.hpp"
#include "hblint/index.hpp"

namespace hblint {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  const auto e = s.find_last_not_of(" \t\r\n");
  return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Groups diagnostics by (rule, repo-relative file).
std::map<std::pair<std::string, std::string>, std::size_t> group_counts(
    const std::vector<Diagnostic>& diags) {
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (const Diagnostic& d : diags) {
    ++counts[{d.rule, repo_relative(d.file)}];
  }
  return counts;
}

}  // namespace

Baseline parse_baseline(const std::string& text) {
  Baseline b;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::istringstream fields(t);
    std::string rule, file;
    std::size_t count = 0;
    if (fields >> rule >> file >> count && count > 0) {
      b.entries[{rule, file}] += count;
    }
  }
  return b;
}

Baseline load_baseline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_baseline(ss.str());
}

std::string serialize_baseline(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  out << "# hblint baseline: known findings tolerated by CI.\n"
         "# Format: <rule> <repo-relative-file> <count>\n"
         "# Entries are line-number free so unrelated edits do not\n"
         "# invalidate them; a group fails lint only when it grows past\n"
         "# its baselined count. Regenerate with `hblint --write-baseline`.\n";
  for (const auto& [key, count] : group_counts(diags)) {
    out << key.first << ' ' << key.second << ' ' << count << '\n';
  }
  return out.str();
}

BaselineSplit apply_baseline(const std::vector<Diagnostic>& diags,
                             const Baseline& baseline) {
  BaselineSplit split;
  const auto counts = group_counts(diags);
  for (const Diagnostic& d : diags) {
    const std::pair<std::string, std::string> key{d.rule,
                                                  repo_relative(d.file)};
    const auto it = baseline.entries.find(key);
    const std::size_t tolerated =
        it == baseline.entries.end() ? 0 : it->second;
    if (counts.at(key) <= tolerated) {
      ++split.baselined;
    } else {
      // The group grew: report it whole, since without line pinning the
      // linter cannot tell which findings are the new ones.
      split.unbaselined.push_back(d);
    }
  }
  return split;
}

std::string sarif_report(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  out << "{\n"
         "  \"$schema\": "
         "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
         "Schemata/sarif-schema-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"hblint\",\n"
         "          \"informationUri\": "
         "\"docs/static_analysis.md\",\n"
         "          \"rules\": [\n";
  const std::vector<RuleInfo>& catalogue = rules();
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    out << "            {\"id\": \"" << json_escape(catalogue[i].name)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(catalogue[i].description) << "\"}}"
        << (i + 1 < catalogue.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out << "        {\"ruleId\": \"" << json_escape(d.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(d.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(repo_relative(d.file))
        << "\"}, \"region\": {\"startLine\": " << d.line << "}}}]}"
        << (i + 1 < diags.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
         "    }\n"
         "  ]\n"
         "}\n";
  return out.str();
}

}  // namespace hblint
